#include "txn/txn.h"

namespace orthrus::txn {

hal::Cycles TxnLogic::OpCost(const Txn* t, std::size_t i,
                             storage::Database* db) const {
  ORTHRUS_DCHECK(i < t->accesses.size());
  const storage::Table* table = db->GetTable(t->accesses[i].table);
  return table->RowAccessCost() + table->cost_model().op_compute_cycles;
}

}  // namespace orthrus::txn
