// Transaction representation shared by every engine.
//
// Transactions are one-shot stored procedures (as in the paper's
// evaluation, Section 4.4): parameters are materialized up front, there is
// no client interaction mid-transaction, and the read/write set either
// follows directly from the parameters or is estimated by an OLLP
// reconnaissance pass (Section 3.2).
#ifndef ORTHRUS_TXN_TXN_H_
#define ORTHRUS_TXN_TXN_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/macros.h"
#include "common/rng.h"
#include "common/stats.h"
#include "storage/database.h"

namespace orthrus::txn {

enum class LockMode : std::uint8_t {
  kShared = 0,
  kExclusive = 1,
};

inline bool Conflicts(LockMode a, LockMode b) {
  return a == LockMode::kExclusive || b == LockMode::kExclusive;
}

// One entry of a transaction's access set.
struct Access {
  std::uint32_t table = 0;
  LockMode mode = LockMode::kShared;
  std::uint64_t key = 0;
  void* row = nullptr;  // resolved by the engine once the lock is held
};

class TxnLogic;

// Reusable transaction descriptor. Engines own a small pool of these (one
// per in-flight transaction slot) and recycle them; no allocation happens
// on the hot path.
class Txn {
 public:
  static constexpr std::size_t kParamBytes = 256;

  // Declared access set. Generators fill it via TxnLogic::BuildAccessSet;
  // the order is the procedure's natural (dynamic) access order. Engines
  // that need a different order (deadlock-free: global key order; ORTHRUS:
  // grouped by CC thread) sort their own view.
  std::vector<Access> accesses;

  TxnLogic* logic = nullptr;

  // Wait-die timestamp / age; assigned by the engine at first dispatch and
  // retained across deadlock restarts so old transactions eventually win.
  std::uint64_t timestamp = 0;

  // Cycle at which the engine first dispatched this transaction instance
  // (for commit latency measurement).
  std::uint64_t start_cycles = 0;

  // Number of restarts due to deadlock handling or OLLP mismatch.
  std::uint32_t restarts = 0;

  // Every declared access is kShared. Classified by TxnAdmission at admit
  // time; snapshot-capable engines route such transactions to the
  // lock-free versioned read path (storage/epoch_clock.h) instead of
  // concurrency control.
  bool read_only = false;

  // Inline parameter storage, interpreted by the TxnLogic that owns this
  // transaction type.
  template <typename P>
  P* Params() {
    static_assert(sizeof(P) <= kParamBytes, "enlarge Txn::kParamBytes");
    return reinterpret_cast<P*>(params_);
  }
  template <typename P>
  const P* Params() const {
    static_assert(sizeof(P) <= kParamBytes, "enlarge Txn::kParamBytes");
    return reinterpret_cast<const P*>(params_);
  }

  // Finds the resolved row of the access matching (table, key). Engines may
  // reorder `accesses`, so procedure logic locates its rows by identity
  // rather than by position. Linear scan: access sets are small.
  void* RowFor(std::uint32_t table, std::uint64_t key) const {
    for (const Access& a : accesses) {
      if (a.table == table && a.key == key) return a.row;
    }
    return nullptr;
  }

  void ResetForReuse() {
    accesses.clear();
    logic = nullptr;
    timestamp = 0;
    start_cycles = 0;
    restarts = 0;
    read_only = false;
  }

 private:
  alignas(8) std::uint8_t params_[kParamBytes];
};

// Execution environment handed to stored-procedure logic.
struct ExecContext {
  storage::Database* db = nullptr;
  WorkerStats* stats = nullptr;
  // When false, the engine already charged the per-operation cycle costs
  // while interleaving lock acquisition with execution (the 2PL dynamic
  // model); logic should then perform real memory effects without charging
  // again. When true, logic charges costs as it executes.
  bool charge_cycles = true;

  void ChargeOp(hal::Cycles c) const {
    if (charge_cycles) hal::ConsumeCycles(c);
  }
};

// A transaction *type*: stateless singleton describing how to build the
// access set and how to execute. Parameters live in the Txn.
class TxnLogic {
 public:
  virtual ~TxnLogic() = default;

  // Fills txn->accesses from txn params. May perform unlocked
  // reconnaissance reads against `db` (OLLP); such logic must return true
  // from NeedsReconnaissance and validate its estimate inside Run.
  virtual void BuildAccessSet(Txn* t, storage::Database* db) = 0;

  // True when the access set depends on data (so estimates can go stale and
  // Run may request a re-plan).
  virtual bool NeedsReconnaissance() const { return false; }

  // Executes the procedure. All accesses are locked and rows resolved.
  // Returns false to signal a stale OLLP estimate: the engine must release
  // all locks, rebuild the access set, and retry.
  virtual bool Run(Txn* t, const ExecContext& ctx) = 0;

  // Modeled cycle cost of access i's work (row touch + compute); used by
  // the 2PL engine to interleave execution cost with lock acquisition.
  virtual hal::Cycles OpCost(const Txn* t, std::size_t i,
                             storage::Database* db) const;
};

// Sort helper: canonical global order used by deadlock-free locking
// ("lexicographic" in the paper): by table id, then key.
struct AccessKeyOrder {
  bool operator()(const Access& a, const Access& b) const {
    if (a.table != b.table) return a.table < b.table;
    return a.key < b.key;
  }
};

}  // namespace orthrus::txn

#endif  // ORTHRUS_TXN_TXN_H_
