// Optimistic Lock Location Prediction (OLLP), from Thomson et al.'s Calvin,
// as adopted by ORTHRUS (Section 3.2): transactions whose access sets are
// data-dependent are partially executed in "reconnaissance" mode — no locks,
// reads not assumed consistent — to *estimate* the access footprint. The
// estimate is annotated onto the transaction; at execution time the logic
// re-derives the footprint under locks and, if the estimate was stale,
// aborts so the engine can re-plan with a fresh estimate.
//
// This header centralizes the retry loop engines use around BuildAccessSet
// and the bookkeeping for estimate-mismatch aborts.
#ifndef ORTHRUS_TXN_OLLP_H_
#define ORTHRUS_TXN_OLLP_H_

#include <cstdint>

#include "txn/txn.h"

namespace orthrus::txn {

// Plans (or re-plans) a transaction's access set. Returns the number of
// reconnaissance passes performed (1 for static access sets).
int OllpPlan(Txn* t, storage::Database* db);

// Engines call this when Run returned false (stale estimate): records the
// abort, re-plans, and says whether the transaction may retry. A bounded
// retry budget turns a pathological livelock (estimate never converging)
// into a hard error instead of a silent hang; the paper reports such aborts
// are rare in practice, and our workloads only hit them under test-injected
// index churn.
bool OllpReplanAfterMismatch(Txn* t, storage::Database* db,
                             WorkerStats* stats);

inline constexpr std::uint32_t kMaxOllpRetries = 64;

// Driver-facing planning interface: binds the OLLP entry points to one
// database and counts planning activity. The runtime layer's TxnDriver (and
// ORTHRUS's pipelined admission path) talk to this object instead of the
// free functions, so planning policy can evolve (e.g. cached estimates,
// adaptive reconnaissance depth) without touching any engine.
class OllpPlanner {
 public:
  explicit OllpPlanner(storage::Database* db) : db_(db) {}

  // Plans a freshly admitted transaction's access set.
  void Plan(Txn* t) {
    plans_++;
    OllpPlan(t, db_);
  }

  // Handles a stale-estimate abort; returns whether the transaction may
  // retry (false once the retry budget is exhausted).
  bool Replan(Txn* t, WorkerStats* stats) {
    replans_++;
    return OllpReplanAfterMismatch(t, db_, stats);
  }

  storage::Database* db() const { return db_; }
  std::uint64_t plans() const { return plans_; }
  std::uint64_t replans() const { return replans_; }

 private:
  storage::Database* db_;
  std::uint64_t plans_ = 0;
  std::uint64_t replans_ = 0;
};

}  // namespace orthrus::txn

#endif  // ORTHRUS_TXN_OLLP_H_
