#include "txn/ollp.h"

#include "common/macros.h"

namespace orthrus::txn {

int OllpPlan(Txn* t, storage::Database* db) {
  t->accesses.clear();
  t->logic->BuildAccessSet(t, db);
  return 1;
}

bool OllpReplanAfterMismatch(Txn* t, storage::Database* db,
                             WorkerStats* stats) {
  stats->ollp_aborts++;
  t->restarts++;
  if (t->restarts > kMaxOllpRetries) return false;
  OllpPlan(t, db);
  return true;
}

}  // namespace orthrus::txn
