// Per-worker execution statistics and the CPU-time breakdown used by the
// paper's Figure 10 (Execution / Locking / Waiting).
#ifndef ORTHRUS_COMMON_STATS_H_
#define ORTHRUS_COMMON_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/histogram.h"

namespace orthrus {

// What a worker core is spending its cycles on. Matches the categories in
// the paper's execution-time breakdown (Section 4.4.3).
enum class TimeCategory : int {
  kExecution = 0,  // running transaction logic
  kLocking = 1,    // lock manager work: acquire/release, deadlock handling,
                   // message construction and queue operations
  kWaiting = 2,    // blocked on a lock, or idle-polling with no progress
  kCount = 3,
};

// Statistics accumulated by one worker core. Plain (non-atomic) fields: each
// worker owns its own instance and the harness aggregates after Join().
struct WorkerStats {
  std::uint64_t committed = 0;
  std::uint64_t aborted = 0;        // aborts from deadlock handling
  std::uint64_t backoffs = 0;       // restart backoffs taken after aborts
  std::uint64_t ollp_aborts = 0;    // aborts from stale OLLP estimates
  std::uint64_t deadlocks = 0;      // detected deadlock cycles (graph-based)
  std::uint64_t lock_waits = 0;     // lock requests that had to wait
  std::uint64_t messages_sent = 0;  // ORTHRUS message-passing traffic
  std::uint64_t send_stalls = 0;    // blocking queue sends that hit a full ring
  std::uint64_t send_stall_cycles = 0;  // cycles those sends busy-waited
  std::uint64_t wal_fragments = 0;  // redo-log fragments emitted (wal)
  std::uint64_t wal_wait_cycles = 0;  // cycles waiting on group commit
  // Vectorized CC stage (OrthrusOptions::vectorized_cc): drained batches
  // processed, messages across them (occupancy = msgs / batches), and
  // same-key acquire runs served by a memoized lock lookup instead of a
  // fresh bucket walk. All zero when the knob is off.
  std::uint64_t cc_batches = 0;
  std::uint64_t cc_batch_msgs = 0;
  std::uint64_t cc_key_runs_combined = 0;
  std::uint64_t cycles[static_cast<int>(TimeCategory::kCount)] = {0, 0, 0};
  Histogram txn_latency;  // commit latency in cycles

  void Add(TimeCategory cat, std::uint64_t c) {
    cycles[static_cast<int>(cat)] += c;
  }
  std::uint64_t Get(TimeCategory cat) const {
    return cycles[static_cast<int>(cat)];
  }

  void Merge(const WorkerStats& other);
};

// Aggregated run result produced by the benchmark harness.
struct RunResult {
  WorkerStats total;                // sum over all workers
  std::vector<WorkerStats> per_worker;
  double elapsed_seconds = 0;       // virtual (sim) or wall (native) seconds
  double Throughput() const {
    return elapsed_seconds > 0 ? static_cast<double>(total.committed) /
                                     elapsed_seconds
                               : 0.0;
  }
  double AbortRate() const {
    const double attempts =
        static_cast<double>(total.committed + total.aborted);
    return attempts > 0 ? static_cast<double>(total.aborted) / attempts : 0.0;
  }
  // Fraction of total worker cycles in the given category, in [0,1].
  double TimeFraction(TimeCategory cat) const;

  std::string Summary() const;
};

}  // namespace orthrus

#endif  // ORTHRUS_COMMON_STATS_H_
