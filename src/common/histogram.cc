#include "common/histogram.h"

#include <algorithm>
#include <cstdio>

namespace orthrus {

int Histogram::BucketFor(std::uint64_t value) {
  if (value < kSubBuckets) return static_cast<int>(value);
  const int log2 = 63 - __builtin_clzll(value);
  // Linear interpolation within the power-of-two range using the top bits
  // below the leading bit.
  const int sub = static_cast<int>((value >> (log2 - 2)) & (kSubBuckets - 1));
  int bucket = log2 * kSubBuckets + sub;
  if (bucket >= kNumBuckets) bucket = kNumBuckets - 1;
  return bucket;
}

std::uint64_t Histogram::BucketUpperBound(int bucket) {
  const int log2 = bucket / kSubBuckets;
  const int sub = bucket % kSubBuckets;
  if (log2 == 0) return static_cast<std::uint64_t>(bucket);
  const std::uint64_t base = 1ull << log2;
  return base + (base >> 2) * (sub + 1);
}

void Histogram::Record(std::uint64_t value) {
  buckets_[BucketFor(value)]++;
  count_++;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void Histogram::Merge(const Histogram& other) {
  for (int i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Histogram::Reset() {
  buckets_.fill(0);
  count_ = 0;
  sum_ = 0;
  min_ = ~0ull;
  max_ = 0;
}

double Histogram::Mean() const {
  return count_ == 0 ? 0.0
                     : static_cast<double>(sum_) / static_cast<double>(count_);
}

std::uint64_t Histogram::Percentile(double q) const {
  if (count_ == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const std::uint64_t target =
      static_cast<std::uint64_t>(q * static_cast<double>(count_ - 1)) + 1;
  std::uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= target) return std::min(BucketUpperBound(i), max_);
  }
  return max_;
}

std::string Histogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%.1f p50=%llu p99=%llu max=%llu",
                static_cast<unsigned long long>(count_), Mean(),
                static_cast<unsigned long long>(Percentile(0.50)),
                static_cast<unsigned long long>(Percentile(0.99)),
                static_cast<unsigned long long>(max_));
  return buf;
}

}  // namespace orthrus
