// Common macros and small utilities shared by every module.
#ifndef ORTHRUS_COMMON_MACROS_H_
#define ORTHRUS_COMMON_MACROS_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace orthrus {

// Cache line size assumed by layout decisions and by the simulator's
// coherence model.
inline constexpr std::size_t kCacheLineSize = 64;

#define ORTHRUS_LIKELY(x) __builtin_expect(!!(x), 1)
#define ORTHRUS_UNLIKELY(x) __builtin_expect(!!(x), 0)

// Fatal invariant check that is active in all build types. Database engines
// should never run with checks compiled out: a broken invariant corrupts
// user data silently.
#define ORTHRUS_CHECK(cond)                                                  \
  do {                                                                       \
    if (ORTHRUS_UNLIKELY(!(cond))) {                                         \
      ::std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,        \
                     __LINE__, #cond);                                       \
      ::std::abort();                                                        \
    }                                                                        \
  } while (0)

#define ORTHRUS_CHECK_MSG(cond, msg)                                         \
  do {                                                                       \
    if (ORTHRUS_UNLIKELY(!(cond))) {                                         \
      ::std::fprintf(stderr, "CHECK failed at %s:%d: %s (%s)\n", __FILE__,   \
                     __LINE__, #cond, msg);                                  \
      ::std::abort();                                                        \
    }                                                                        \
  } while (0)

// Debug-only check, compiled out in release hot paths.
#ifndef NDEBUG
#define ORTHRUS_DCHECK(cond) ORTHRUS_CHECK(cond)
#else
#define ORTHRUS_DCHECK(cond) \
  do {                       \
  } while (0)
#endif

// Returns true iff v is a power of two (and nonzero).
constexpr bool IsPowerOfTwo(std::uint64_t v) {
  return v != 0 && (v & (v - 1)) == 0;
}

// Smallest power of two >= v (v must be >= 1).
constexpr std::uint64_t NextPowerOfTwo(std::uint64_t v) {
  std::uint64_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace orthrus

#endif  // ORTHRUS_COMMON_MACROS_H_
