// Common macros and small utilities shared by every module.
#ifndef ORTHRUS_COMMON_MACROS_H_
#define ORTHRUS_COMMON_MACROS_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace orthrus {

// Cache line size assumed by layout decisions and by the simulator's
// coherence model.
inline constexpr std::size_t kCacheLineSize = 64;

#define ORTHRUS_LIKELY(x) __builtin_expect(!!(x), 1)
#define ORTHRUS_UNLIKELY(x) __builtin_expect(!!(x), 0)

// Fatal invariant check that is active in all build types. Database engines
// should never run with checks compiled out: a broken invariant corrupts
// user data silently.
#define ORTHRUS_CHECK(cond)                                                  \
  do {                                                                       \
    if (ORTHRUS_UNLIKELY(!(cond))) {                                         \
      ::std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,        \
                     __LINE__, #cond);                                       \
      ::std::abort();                                                        \
    }                                                                        \
  } while (0)

#define ORTHRUS_CHECK_MSG(cond, msg)                                         \
  do {                                                                       \
    if (ORTHRUS_UNLIKELY(!(cond))) {                                         \
      ::std::fprintf(stderr, "CHECK failed at %s:%d: %s (%s)\n", __FILE__,   \
                     __LINE__, #cond, msg);                                  \
      ::std::abort();                                                        \
    }                                                                        \
  } while (0)

// Debug-only check, compiled out in release hot paths.
#ifndef NDEBUG
#define ORTHRUS_DCHECK(cond) ORTHRUS_CHECK(cond)
#else
#define ORTHRUS_DCHECK(cond) \
  do {                       \
  } while (0)
#endif

// ---------------------------------------------------------------------
// Clang Thread Safety Analysis annotations (-Wthread-safety). No-ops under
// GCC; CI runs a clang lane with -Werror=thread-safety so a lock-discipline
// violation (touching a GUARDED_BY field without its capability, unbalanced
// acquire/release) fails the build. The annotations are compile-time only —
// they change nothing about codegen on either compiler.
//
// Static analysis and the sim race detector split the work: annotations
// prove latch discipline where a latch exists (lock tables, CC buckets);
// the detector checks the message-passing / epoch-handoff protocols whose
// dynamic ownership has no lock to annotate.
#if defined(__clang__)
#define ORTHRUS_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define ORTHRUS_THREAD_ANNOTATION(x)
#endif

// On the class: this type is a lockable capability (e.g. hal::SpinLock).
#define ORTHRUS_CAPABILITY(x) ORTHRUS_THREAD_ANNOTATION(capability(x))
// On an RAII guard class whose constructor acquires and destructor releases.
#define ORTHRUS_SCOPED_CAPABILITY ORTHRUS_THREAD_ANNOTATION(scoped_lockable)
// On a field: may only be touched while holding the named capability.
#define ORTHRUS_GUARDED_BY(x) ORTHRUS_THREAD_ANNOTATION(guarded_by(x))
// On a pointer field: the pointee is guarded (the pointer itself is not).
#define ORTHRUS_PT_GUARDED_BY(x) ORTHRUS_THREAD_ANNOTATION(pt_guarded_by(x))
// On a function: caller must hold the capability.
#define ORTHRUS_REQUIRES(...) \
  ORTHRUS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
// On a function: acquires / releases the capability.
#define ORTHRUS_ACQUIRE(...) \
  ORTHRUS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ORTHRUS_RELEASE(...) \
  ORTHRUS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
// On a function: must NOT be called with the capability held.
#define ORTHRUS_EXCLUDES(...) \
  ORTHRUS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
// On a function: returns a reference to the named capability.
#define ORTHRUS_RETURN_CAPABILITY(x) \
  ORTHRUS_THREAD_ANNOTATION(lock_returned(x))
// Escape hatch for flows the static analysis cannot follow (conditional
// acquisition, capabilities handed across fibers). Use sparingly and say
// why at the use site.
#define ORTHRUS_NO_THREAD_SAFETY_ANALYSIS \
  ORTHRUS_THREAD_ANNOTATION(no_thread_safety_analysis)

// Returns true iff v is a power of two (and nonzero).
constexpr bool IsPowerOfTwo(std::uint64_t v) {
  return v != 0 && (v & (v - 1)) == 0;
}

// Smallest power of two >= v (v must be >= 1).
constexpr std::uint64_t NextPowerOfTwo(std::uint64_t v) {
  std::uint64_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace orthrus

#endif  // ORTHRUS_COMMON_MACROS_H_
