#include "common/rng.h"

#include <cmath>

namespace orthrus {

void Rng::Seed(std::uint64_t seed) {
  if (seed == 0) seed = 0x9E3779B97F4A7C15ull;
  // SplitMix64 to spread the seed across both state words.
  auto mix = [&seed]() {
    seed += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = seed;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  };
  s0_ = mix();
  s1_ = mix();
  if (s0_ == 0 && s1_ == 0) s1_ = 1;
}

ZipfianGenerator::ZipfianGenerator(std::uint64_t n, double theta)
    : n_(n), theta_(theta) {
  ORTHRUS_CHECK(n >= 1);
  ORTHRUS_CHECK(theta >= 0.0 && theta < 1.0);
  zetan_ = Zeta(n, theta);
  alpha_ = 1.0 / (1.0 - theta);
  const double zeta2 = Zeta(2, theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - zeta2 / zetan_);
}

double ZipfianGenerator::Zeta(std::uint64_t n, double theta) {
  double sum = 0.0;
  for (std::uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

std::uint64_t ZipfianGenerator::Next(Rng* rng) {
  const double u = rng->NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const double v = static_cast<double>(n_) *
                   std::pow(eta_ * u - eta_ + 1.0, alpha_);
  std::uint64_t result = static_cast<std::uint64_t>(v);
  if (result >= n_) result = n_ - 1;
  return result;
}

std::uint32_t NuRand(Rng* rng, std::uint32_t a, std::uint32_t x,
                     std::uint32_t y, std::uint32_t c) {
  const std::uint32_t r1 = static_cast<std::uint32_t>(rng->NextU64(a + 1));
  const std::uint32_t r2 =
      static_cast<std::uint32_t>(rng->NextInRange(x, y));
  return (((r1 | r2) + c) % (y - x + 1)) + x;
}

}  // namespace orthrus
