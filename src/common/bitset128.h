// Fixed 128-bit bitset used by the Dreadlocks digest (one bit per worker)
// and the simulator's cache-line sharer tracking. Supports up to 128 logical
// cores, which comfortably covers the paper's 80-core configurations.
#ifndef ORTHRUS_COMMON_BITSET128_H_
#define ORTHRUS_COMMON_BITSET128_H_

#include <cstdint>

#include "common/macros.h"

namespace orthrus {

// A trivially-copyable 2-word bitset. All operations are branch-light so the
// simulator can use it on every memory access.
struct Bitset128 {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  static constexpr int kBits = 128;

  static Bitset128 Single(int bit) {
    Bitset128 b;
    b.Set(bit);
    return b;
  }

  void Set(int bit) {
    ORTHRUS_DCHECK(bit >= 0 && bit < kBits);
    if (bit < 64) {
      lo |= (1ull << bit);
    } else {
      hi |= (1ull << (bit - 64));
    }
  }

  void Clear(int bit) {
    ORTHRUS_DCHECK(bit >= 0 && bit < kBits);
    if (bit < 64) {
      lo &= ~(1ull << bit);
    } else {
      hi &= ~(1ull << (bit - 64));
    }
  }

  bool Test(int bit) const {
    ORTHRUS_DCHECK(bit >= 0 && bit < kBits);
    if (bit < 64) return (lo >> bit) & 1;
    return (hi >> (bit - 64)) & 1;
  }

  void Reset() {
    lo = 0;
    hi = 0;
  }

  void Union(const Bitset128& other) {
    lo |= other.lo;
    hi |= other.hi;
  }

  bool Empty() const { return lo == 0 && hi == 0; }

  int Count() const {
    return __builtin_popcountll(lo) + __builtin_popcountll(hi);
  }

  // True iff any bit other than `bit` is set.
  bool AnyOtherThan(int bit) const {
    Bitset128 copy = *this;
    if (Test(bit)) copy.Clear(bit);
    return !copy.Empty();
  }

  friend bool operator==(const Bitset128& a, const Bitset128& b) {
    return a.lo == b.lo && a.hi == b.hi;
  }
};

}  // namespace orthrus

#endif  // ORTHRUS_COMMON_BITSET128_H_
