// Log-bucketed latency histogram. Cheap to record into (one increment), and
// precise enough for the percentile reporting the benchmark harness prints.
#ifndef ORTHRUS_COMMON_HISTOGRAM_H_
#define ORTHRUS_COMMON_HISTOGRAM_H_

#include <array>
#include <cstdint>
#include <string>

namespace orthrus {

// Records uint64 samples (typically cycles) into power-of-two buckets with
// four linear sub-buckets each, giving <= 25% relative error per bucket.
class Histogram {
 public:
  static constexpr int kSubBuckets = 4;
  static constexpr int kNumBuckets = 64 * kSubBuckets;

  Histogram() = default;

  void Record(std::uint64_t value);

  // Merges another histogram's samples into this one.
  void Merge(const Histogram& other);

  void Reset();

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return max_; }
  double Mean() const;

  // Returns the approximate value at quantile q in [0, 1].
  std::uint64_t Percentile(double q) const;

  // One-line human-readable summary (count/mean/p50/p99/max).
  std::string Summary() const;

 private:
  static int BucketFor(std::uint64_t value);
  static std::uint64_t BucketUpperBound(int bucket);

  std::array<std::uint64_t, kNumBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~0ull;
  std::uint64_t max_ = 0;
};

}  // namespace orthrus

#endif  // ORTHRUS_COMMON_HISTOGRAM_H_
