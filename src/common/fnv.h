// Incremental FNV-1a over 64-bit words, byte-wise. One definition shared
// by every state digest (engine-equivalence table digests, the TPC-C
// canonical digest) so the hash the tests pin and the hash production
// code computes can never drift apart.
#ifndef ORTHRUS_COMMON_FNV_H_
#define ORTHRUS_COMMON_FNV_H_

#include <cstdint>

namespace orthrus {

class Fnv1a {
 public:
  void Mix(std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h_ ^= (v >> (8 * b)) & 0xFF;
      h_ *= 1099511628211ull;  // FNV prime
    }
  }

  std::uint64_t digest() const { return h_; }

 private:
  std::uint64_t h_ = 1469598103934665603ull;  // FNV offset basis
};

}  // namespace orthrus

#endif  // ORTHRUS_COMMON_FNV_H_
