#include "common/stats.h"

#include <cstdio>

namespace orthrus {

void WorkerStats::Merge(const WorkerStats& other) {
  committed += other.committed;
  aborted += other.aborted;
  backoffs += other.backoffs;
  ollp_aborts += other.ollp_aborts;
  deadlocks += other.deadlocks;
  lock_waits += other.lock_waits;
  messages_sent += other.messages_sent;
  send_stalls += other.send_stalls;
  send_stall_cycles += other.send_stall_cycles;
  wal_fragments += other.wal_fragments;
  wal_wait_cycles += other.wal_wait_cycles;
  cc_batches += other.cc_batches;
  cc_batch_msgs += other.cc_batch_msgs;
  cc_key_runs_combined += other.cc_key_runs_combined;
  for (int i = 0; i < static_cast<int>(TimeCategory::kCount); ++i) {
    cycles[i] += other.cycles[i];
  }
  txn_latency.Merge(other.txn_latency);
}

double RunResult::TimeFraction(TimeCategory cat) const {
  std::uint64_t sum = 0;
  for (int i = 0; i < static_cast<int>(TimeCategory::kCount); ++i) {
    sum += total.cycles[i];
  }
  if (sum == 0) return 0.0;
  return static_cast<double>(total.Get(cat)) / static_cast<double>(sum);
}

std::string RunResult::Summary() const {
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      "committed=%llu aborted=%llu tput=%.0f txns/s abort_rate=%.3f "
      "exec=%.1f%% lock=%.1f%% wait=%.1f%%",
      static_cast<unsigned long long>(total.committed),
      static_cast<unsigned long long>(total.aborted), Throughput(),
      AbortRate(), 100.0 * TimeFraction(TimeCategory::kExecution),
      100.0 * TimeFraction(TimeCategory::kLocking),
      100.0 * TimeFraction(TimeCategory::kWaiting));
  return buf;
}

}  // namespace orthrus
