// Deterministic pseudo-random number generation used by workload generators
// and the simulator. We avoid <random> on hot paths: xorshift128+ is a few
// cycles per draw and its state fits in one cache line.
#ifndef ORTHRUS_COMMON_RNG_H_
#define ORTHRUS_COMMON_RNG_H_

#include <cstdint>

#include "common/macros.h"

namespace orthrus {

// xorshift128+ generator. Not cryptographic; plenty for workload synthesis.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { Seed(seed); }

  // Re-seeds the generator. Two generators with the same seed produce the
  // same sequence; a zero seed is remapped to a fixed nonzero constant.
  void Seed(std::uint64_t seed);

  // Uniform draw over the full 64-bit range.
  std::uint64_t Next() {
    std::uint64_t x = s0_;
    const std::uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  // Uniform in [0, bound). bound must be nonzero.
  std::uint64_t NextU64(std::uint64_t bound) {
    ORTHRUS_DCHECK(bound != 0);
    // Multiply-shift rejection-free mapping (Lemire). Slight modulo bias is
    // irrelevant at workload-generation scale but this form avoids division.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

  // Uniform in [lo, hi] inclusive.
  std::uint64_t NextInRange(std::uint64_t lo, std::uint64_t hi) {
    ORTHRUS_DCHECK(lo <= hi);
    return lo + NextU64(hi - lo + 1);
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  // True with probability pct/100.
  bool Percent(unsigned pct) { return NextU64(100) < pct; }

 private:
  std::uint64_t s0_;
  std::uint64_t s1_;
};

// Zipfian distribution over [0, n) with parameter theta, following the
// Gray et al. / YCSB formulation. Used by the skewed-workload extensions.
class ZipfianGenerator {
 public:
  ZipfianGenerator(std::uint64_t n, double theta);

  // Draws a Zipfian-distributed value in [0, n). Lower values are hotter.
  std::uint64_t Next(Rng* rng);

  std::uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  static double Zeta(std::uint64_t n, double theta);

  std::uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
};

// TPC-C's NURand non-uniform distribution: NURand(A, x, y).
std::uint32_t NuRand(Rng* rng, std::uint32_t a, std::uint32_t x,
                     std::uint32_t y, std::uint32_t c);

}  // namespace orthrus

#endif  // ORTHRUS_COMMON_RNG_H_
