// Deterministic happens-before race detection for the simulator.
//
// The simulator runs every fiber on one host thread, so ThreadSanitizer sees
// nothing: a sim-only protocol (equivalence digests, elastic handoffs, WAL
// epoch sealing) can ship a missing release/acquire edge and never crash
// until the same code runs natively. This detector closes that gap with a
// FastTrack-style vector-clock analysis driven from the simulator's own
// event stream:
//
//  * every modeled atomic access (hal::Atomic -> SimPlatform::OnAtomicAccess)
//    is a synchronization operation: loads acquire the line's clock, stores
//    release the accessor's clock into it, RMWs do both;
//  * plain payload accesses (record rows, ring payload words, TCB fields,
//    WAL fragment buffers) are declared with hal::RaceCheck(ptr, bytes,
//    is_write, label) and checked against per-8-byte-granule shadow state.
//
// Two plain accesses to the same granule from different cores, at least one
// a write, with no happens-before path through modeled atomics, is a race —
// reported with both core ids, both labels, and the exact virtual
// timestamps, reproducibly (the sim schedule is deterministic, so the first
// report is always the same one).
//
// The detector never consumes virtual cycles and never yields: turning it on
// cannot perturb the schedule, so a race_detect=on run sees the exact event
// order of the equivalent race_detect=off run.
//
// Layering: this library sits *below* the HAL (orthrus_hal links
// orthrus_analysis) and deliberately knows nothing about platforms or
// fibers; the simulator maps its MemOps onto SyncOp and passes core ids and
// virtual times in.
#ifndef ORTHRUS_ANALYSIS_RACE_DETECTOR_H_
#define ORTHRUS_ANALYSIS_RACE_DETECTOR_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/macros.h"

namespace orthrus::analysis {

// What a modeled atomic access means for the happens-before order.
enum class SyncOp {
  kAcquire,  // atomic load: join the sync var's clock into the core's
  kRelease,  // atomic store: join the core's clock into the sync var's
  kAcqRel,   // atomic RMW: both
};

// One detected race: an unordered pair of conflicting plain accesses.
// `prior` is the access that was already recorded in the shadow state,
// `current` the one that detected the conflict; `current.time` is the exact
// virtual timestamp the race became visible.
struct RaceAccess {
  int core = -1;
  bool is_write = false;
  const char* label = nullptr;     // site label passed to hal::RaceCheck
  std::uint64_t time = 0;          // virtual cycles (core-local clock)
};

struct RaceReport {
  std::uintptr_t addr = 0;         // first byte of the racy 8-byte granule
  RaceAccess prior;
  RaceAccess current;

  std::string ToString() const;
};

class RaceDetector {
 public:
  explicit RaceDetector(int num_cores, std::size_t max_reports = 64);

  // A modeled atomic access to the sync variable identified by `var` (the
  // simulator uses the LineMeta address). Establishes happens-before edges;
  // never reports.
  void OnSyncAccess(const void* var, SyncOp op, int core);

  // A plain (non-atomic) access to [addr, addr+bytes), checked at 8-byte
  // granularity against the shadow state. `time` is the accessor's current
  // virtual clock, used only for reporting.
  void OnPlainAccess(const void* addr, std::size_t bytes, bool is_write,
                     const char* label, int core, std::uint64_t time);

  // Forget all shadow state for [addr, addr+bytes). For memory whose
  // lifetime ends and is legitimately recycled outside the modeled
  // synchronization order (none of the in-tree wiring needs this; seeded
  // tests reuse it to isolate scenarios).
  void ForgetRange(const void* addr, std::size_t bytes);

  const std::vector<RaceReport>& reports() const { return reports_; }
  std::uint64_t races_observed() const { return races_observed_; }

  // When set, the first detected race prints its report and aborts. Used by
  // the CI race arm: any race in a suite that is supposed to be clean fails
  // loudly at the exact virtual timestamp instead of after the run.
  void set_report_fatal(bool fatal) { report_fatal_ = fatal; }

 private:
  using VectorClock = std::vector<std::uint64_t>;

  struct Shadow {
    RaceAccess write;                // last write (core < 0: none yet)
    std::uint64_t write_clock = 0;   // writer's epoch at the write
    // Reads since the last write, at most one per core.
    std::vector<RaceAccess> reads;
    std::vector<std::uint64_t> read_clocks;  // parallel to `reads`
  };

  static void Join(VectorClock& into, const VectorClock& from);
  void Report(std::uintptr_t granule, const RaceAccess& prior,
              const RaceAccess& current);

  int num_cores_;
  std::size_t max_reports_;
  bool report_fatal_ = false;
  std::uint64_t races_observed_ = 0;
  std::vector<VectorClock> core_vc_;             // per-core clocks
  std::unordered_map<const void*, VectorClock> sync_;   // per sync var
  std::unordered_map<std::uintptr_t, Shadow> shadow_;   // per 8B granule
  std::vector<RaceReport> reports_;
};

}  // namespace orthrus::analysis

#endif  // ORTHRUS_ANALYSIS_RACE_DETECTOR_H_
