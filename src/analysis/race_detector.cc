#include "analysis/race_detector.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace orthrus::analysis {

namespace {
constexpr std::uintptr_t kGranuleBytes = 8;

std::uintptr_t FirstGranule(const void* addr) {
  return reinterpret_cast<std::uintptr_t>(addr) / kGranuleBytes;
}

std::uintptr_t LastGranule(const void* addr, std::size_t bytes) {
  const std::uintptr_t a = reinterpret_cast<std::uintptr_t>(addr);
  return (a + (bytes == 0 ? 0 : bytes - 1)) / kGranuleBytes;
}

const char* SafeLabel(const char* label) {
  return label != nullptr ? label : "(unlabeled)";
}
}  // namespace

std::string RaceReport::ToString() const {
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      "data race on %#" PRIxPTR ": core %d %s '%s' @%" PRIu64
      " vs core %d %s '%s' @%" PRIu64,
      addr, current.core, current.is_write ? "write" : "read",
      SafeLabel(current.label), current.time, prior.core,
      prior.is_write ? "write" : "read", SafeLabel(prior.label), prior.time);
  return std::string(buf);
}

RaceDetector::RaceDetector(int num_cores, std::size_t max_reports)
    : num_cores_(num_cores), max_reports_(max_reports) {
  ORTHRUS_CHECK(num_cores >= 1);
  core_vc_.resize(static_cast<std::size_t>(num_cores));
  for (int c = 0; c < num_cores; ++c) {
    core_vc_[c].assign(static_cast<std::size_t>(num_cores), 0);
    // Epochs start at 1: clock 0 in shadow state means "never accessed",
    // and anything recorded before the cores start (there is nothing — the
    // hooks are per-core) would be ordered before all of them.
    core_vc_[c][c] = 1;
  }
}

void RaceDetector::Join(VectorClock& into, const VectorClock& from) {
  if (into.size() < from.size()) into.resize(from.size(), 0);
  for (std::size_t i = 0; i < from.size(); ++i) {
    into[i] = std::max(into[i], from[i]);
  }
}

void RaceDetector::OnSyncAccess(const void* var, SyncOp op, int core) {
  ORTHRUS_DCHECK(core >= 0 && core < num_cores_);
  VectorClock& me = core_vc_[core];
  switch (op) {
    case SyncOp::kAcquire: {
      auto it = sync_.find(var);
      if (it != sync_.end()) Join(me, it->second);
      break;
    }
    case SyncOp::kRelease: {
      Join(sync_[var], me);
      me[static_cast<std::size_t>(core)]++;
      break;
    }
    case SyncOp::kAcqRel: {
      VectorClock& sv = sync_[var];
      Join(me, sv);
      Join(sv, me);
      me[static_cast<std::size_t>(core)]++;
      break;
    }
  }
}

void RaceDetector::OnPlainAccess(const void* addr, std::size_t bytes,
                                 bool is_write, const char* label, int core,
                                 std::uint64_t time) {
  if (bytes == 0) return;
  ORTHRUS_DCHECK(core >= 0 && core < num_cores_);
  const VectorClock& me = core_vc_[core];
  const std::uint64_t my_clock = me[static_cast<std::size_t>(core)];
  const RaceAccess cur{core, is_write, label, time};

  const std::uintptr_t first = FirstGranule(addr);
  const std::uintptr_t last = LastGranule(addr, bytes);
  for (std::uintptr_t g = first; g <= last; ++g) {
    Shadow& s = shadow_[g];

    // Write-write / read-write against the last recorded write.
    if (s.write.core >= 0 && s.write.core != core &&
        s.write_clock > me[static_cast<std::size_t>(s.write.core)]) {
      Report(g * kGranuleBytes, s.write, cur);
    }

    if (is_write) {
      // Write-read against every read since the last write.
      for (std::size_t i = 0; i < s.reads.size(); ++i) {
        const RaceAccess& r = s.reads[i];
        if (r.core != core &&
            s.read_clocks[i] > me[static_cast<std::size_t>(r.core)]) {
          Report(g * kGranuleBytes, r, cur);
        }
      }
      s.write = cur;
      s.write_clock = my_clock;
      s.reads.clear();
      s.read_clocks.clear();
    } else {
      // Record (or refresh) this core's read.
      bool found = false;
      for (std::size_t i = 0; i < s.reads.size(); ++i) {
        if (s.reads[i].core == core) {
          s.reads[i] = cur;
          s.read_clocks[i] = my_clock;
          found = true;
          break;
        }
      }
      if (!found) {
        s.reads.push_back(cur);
        s.read_clocks.push_back(my_clock);
      }
    }
  }
}

void RaceDetector::ForgetRange(const void* addr, std::size_t bytes) {
  if (bytes == 0) return;
  const std::uintptr_t first = FirstGranule(addr);
  const std::uintptr_t last = LastGranule(addr, bytes);
  for (std::uintptr_t g = first; g <= last; ++g) shadow_.erase(g);
}

void RaceDetector::Report(std::uintptr_t granule_addr,
                          const RaceAccess& prior, const RaceAccess& current) {
  races_observed_++;
  // One report per granule: a racy handoff re-detects on every subsequent
  // access pair, which would bury distinct findings under repeats.
  bool seen = false;
  for (const RaceReport& r : reports_) {
    if (r.addr == granule_addr) {
      seen = true;
      break;
    }
  }
  if (!seen && reports_.size() < max_reports_) {
    RaceReport rep;
    rep.addr = granule_addr;
    rep.prior = prior;
    rep.current = current;
    reports_.push_back(rep);
    if (report_fatal_) {
      std::fprintf(stderr, "[race_detect] %s\n",
                   reports_.back().ToString().c_str());
      std::abort();
    }
  }
}

}  // namespace orthrus::analysis
