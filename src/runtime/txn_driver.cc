#include "runtime/txn_driver.h"

#include "wal/wal.h"

namespace orthrus::runtime {

TxnDriver::TxnDriver(const DriverOptions& options, storage::Database* db,
                     workload::TxnSource* source, ExecutionStrategy* strategy,
                     WorkerContext* ctx)
    : admission_(options, db, source, ctx),
      strategy_(strategy),
      ctx_(ctx),
      backoff_(options.backoff != nullptr ? options.backoff
                                          : &default_backoff_) {}

void TxnDriver::Run() {
  txn::Txn t;
  while (admission_.Open(wal_ != nullptr ? wal_->PendingCount() : 0)) {
    if (wal_ != nullptr) {
      // Quantum maintenance first (flush staged fragments, heartbeat the
      // epoch, acknowledge matured commits), then the arena gate: Capture
      // runs under locks and must never block, so admission waits here —
      // outside any lock — until a whole transaction's fragments fit.
      wal_->Poll();
      if (!wal_->AdmitReady()) {
        hal::CpuRelax();
        continue;
      }
    }
    admission_.Admit(&t);
    bool done = false;
    while (!done) {
      switch (strategy_->TryExecute(&t)) {
        case TxnOutcome::kCommitted:
          // With durability on, the strategy's Capture queued the commit
          // as pending; it is counted (and latency-stamped) when its epoch
          // turns durable — see wal::Producer::Poll.
          if (wal_ == nullptr) {
            ctx_->stats.committed++;
            ctx_->stats.txn_latency.Record(hal::Now() - t.start_cycles);
          }
          done = true;
          break;
        case TxnOutcome::kAbort:
          // Deadlock handling killed the attempt. Brief backoff (grows
          // with the restart count, capped) lets the conflicting older
          // transaction finish before we retry.
          ctx_->stats.aborted++;
          ctx_->stats.backoffs++;
          t.restarts++;
          hal::ConsumeCycles(backoff_->Delay(t.restarts, &ctx_->rng));
          hal::CpuRelax();
          break;
        case TxnOutcome::kMismatch:
          // Stale OLLP estimate: re-plan with a fresh reconnaissance pass.
          // A transaction that exhausts its retry budget is dropped.
          if (!admission_.planner()->Replan(&t, &ctx_->stats)) done = true;
          break;
      }
    }
  }
  if (wal_ != nullptr) {
    // Drain the pipeline: every admitted commit must be acknowledged (the
    // group commit that covers it must complete) before the worker leaves.
    const hal::Cycles t0 = hal::Now();
    while (!wal_->Drained()) {
      wal_->Poll();
      hal::CpuRelax();
    }
    ctx_->stats.wal_wait_cycles += hal::Now() - t0;
    wal_->Retire();
  }
}

}  // namespace orthrus::runtime
