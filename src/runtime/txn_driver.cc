#include "runtime/txn_driver.h"

namespace orthrus::runtime {

TxnDriver::TxnDriver(const DriverOptions& options, storage::Database* db,
                     workload::TxnSource* source, ExecutionStrategy* strategy,
                     WorkerContext* ctx)
    : admission_(options, db, source, ctx),
      strategy_(strategy),
      ctx_(ctx),
      backoff_(options.backoff != nullptr ? options.backoff
                                          : &default_backoff_) {}

void TxnDriver::Run() {
  txn::Txn t;
  while (admission_.Open()) {
    admission_.Admit(&t);
    bool done = false;
    while (!done) {
      switch (strategy_->TryExecute(&t)) {
        case TxnOutcome::kCommitted:
          ctx_->stats.committed++;
          ctx_->stats.txn_latency.Record(hal::Now() - t.start_cycles);
          done = true;
          break;
        case TxnOutcome::kAbort:
          // Deadlock handling killed the attempt. Brief backoff (grows
          // with the restart count, capped) lets the conflicting older
          // transaction finish before we retry.
          ctx_->stats.aborted++;
          ctx_->stats.backoffs++;
          t.restarts++;
          hal::ConsumeCycles(backoff_->Delay(t.restarts, &ctx_->rng));
          hal::CpuRelax();
          break;
        case TxnOutcome::kMismatch:
          // Stale OLLP estimate: re-plan with a fresh reconnaissance pass.
          // A transaction that exhausts its retry budget is dropped.
          if (!admission_.planner()->Replan(&t, &ctx_->stats)) done = true;
          break;
      }
    }
  }
}

}  // namespace orthrus::runtime
