// Shared transaction-runtime layer, part 2: the per-worker transaction
// lifecycle.
//
// Every architecture in the paper runs the same loop around its
// concurrency control: pull a transaction from the worker's source, plan
// its access set (OLLP reconnaissance when data-dependent), stamp it,
// try to execute it until it commits — backing off after deadlock aborts
// and re-planning after stale-estimate aborts — all gated by the run
// deadline and an optional per-worker commit cap. Before this layer each
// engine re-implemented that loop; now an engine supplies only an
// ExecutionStrategy (how one attempt acquires locks and runs logic) and
// the TxnDriver owns everything else.
//
// ORTHRUS's execution threads pipeline several transactions and therefore
// cannot use the sequential driver loop; they share the same admission
// front end (TxnAdmission) and planner instead, so admission, stamping,
// gating, and replanning still have exactly one implementation.
#ifndef ORTHRUS_RUNTIME_TXN_DRIVER_H_
#define ORTHRUS_RUNTIME_TXN_DRIVER_H_

#include <cstdint>
#include <memory>

#include "runtime/worker_pool.h"
#include "txn/ollp.h"
#include "txn/txn.h"
#include "workload/workload.h"

namespace orthrus::wal {
class Producer;  // wal/wal.h; the driver layer never needs the definition
}

namespace orthrus::runtime {

// Result of one execution attempt. The strategy must return with no locks
// held in every case.
enum class TxnOutcome {
  kCommitted,  // logic ran and committed
  kAbort,      // deadlock handling killed the attempt; retry after backoff
  kMismatch,   // stale OLLP estimate; re-plan and retry
};

// One attempt at executing a planned transaction. Implementations hold the
// per-worker state they need (lock-table context, partition locks, ...);
// the driver owns retries, backoff, re-planning, and commit accounting.
class ExecutionStrategy {
 public:
  virtual ~ExecutionStrategy() = default;
  virtual TxnOutcome TryExecute(txn::Txn* t) = 0;

  // Durability attachment. When set, a strategy must call
  // wal_->Capture(t, db) after the transaction's logic has succeeded and
  // *before releasing its exclusive locks* — the capture reads the commit
  // epoch and bumps per-row versions under those locks. Commit accounting
  // then moves to the group-commit acknowledgement (see TxnDriver::Run).
  void set_wal(wal::Producer* w) { wal_ = w; }

 protected:
  wal::Producer* wal_ = nullptr;
};

// Restart backoff, configured in one place and ablatable. The default is
// the capped exponential with deterministic per-core jitter that 2PL has
// always used: (base << min(restarts, max_shift)) + FastJitter(jitter).
// `rng` is the worker's seeded stream, for randomized policies; the
// default policy deliberately uses hal::FastJitter instead so simulator
// runs stay bit-reproducible with the pre-runtime-layer engines.
class BackoffPolicy {
 public:
  hal::Cycles base = 100;
  std::uint32_t max_shift = 4;
  hal::Cycles jitter = 256;

  virtual ~BackoffPolicy() = default;

  // `restarts` is the transaction's restart count including the abort that
  // triggered this call.
  virtual hal::Cycles Delay(std::uint32_t restarts, Rng* rng) const {
    (void)rng;
    return (base << (restarts < max_shift ? restarts : max_shift)) +
           hal::FastJitter(jitter);
  }
};

struct DriverOptions {
  // The run deadline is not configured here: it lives in the worker's
  // WorkerClock, which WorkerPool::Spawn begins with the pool's duration —
  // one source of truth for admission gating and elapsed-time reporting.

  // Optional commit cap per worker (0 = unlimited).
  std::uint64_t max_txns_per_worker = 0;

  // Charge source pull + planning to TimeCategory::kExecution. The
  // message-passing engines account admission this way; the
  // shared-everything engines historically did not.
  bool charge_admission = false;

  // Restart backoff; null selects the default capped-jitter policy.
  const BackoffPolicy* backoff = nullptr;

  // Post-crash resume credit, indexed by worker id (null = none). A worker
  // whose previous incarnation already made `(*resume_committed)[w]`
  // transactions durable counts them against its commit cap, so a resumed
  // capped run finishes the remainder instead of re-running the cap.
  const std::vector<std::uint64_t>* resume_committed = nullptr;

  // Backpressure admission: when on, TxnAdmission::InflightCap converts the
  // per-epoch blocking-send stall rate into a reduced inflight cap (AIMD),
  // so a worker whose sends are hitting full rings admits fewer concurrent
  // transactions instead of spinning on the ring. Off by default: the cap
  // is then a constant and no clock is read.
  bool backpressure = false;
  double backpressure_epoch_seconds = 0.001;  // cap-adjustment window
};

// Admission front end: the deadline/cap gate plus pull-plan-stamp of the
// next transaction. Sequential engines use it through TxnDriver; pipelined
// engines (ORTHRUS) drive it directly.
class TxnAdmission {
 public:
  TxnAdmission(const DriverOptions& options, storage::Database* db,
               workload::TxnSource* source, WorkerContext* ctx)
      : options_(options), planner_(db), source_(source), ctx_(ctx) {}

  // True while the worker may start another transaction. `inflight` is the
  // caller's count of admitted-but-unacknowledged commits (the wal pending
  // queue): they count against the cap so a capped durable run admits
  // exactly the cap, not cap-plus-pipeline-depth.
  bool Open(std::uint64_t inflight = 0) const {
    std::uint64_t done = ctx_->stats.committed + inflight;
    if (options_.resume_committed != nullptr) {
      done += (*options_.resume_committed)[static_cast<std::size_t>(
          ctx_->worker_id)];
    }
    return !ctx_->clock.Expired() &&
           (options_.max_txns_per_worker == 0 ||
            done < options_.max_txns_per_worker);
  }

  // Live backpressure signal: blocking-send stalls this worker has hit
  // since the previous call — a windowed delta, not the cumulative count,
  // so an admission controller sees the current stall *rate* rather than a
  // signal that saturates forever after one bad epoch. Reads the folded
  // stats plus the core's live sink (see hal::SpinStallSink).
  std::uint64_t StallsDelta() {
    std::uint64_t n = ctx_->stats.send_stalls;
    const hal::CoreContext* cc = hal::CurrentCore();
    if (cc != nullptr && cc->send_stall_sink != nullptr) {
      n += cc->send_stall_sink->stalls;
    }
    const std::uint64_t delta = n - stalls_seen_;
    stalls_seen_ = n;
    return delta;
  }

  // Backpressure-adjusted concurrent-transaction cap. With backpressure off
  // this returns `base_cap` unconditionally (no clock read, no state). With
  // it on, the cap follows the stall signal with AIMD dynamics, evaluated
  // once per backpressure epoch: any stalls in the window cut the cap by a
  // quarter (a full pipeline into a full ring converts send spinning into
  // queueing delay for every transaction behind it); a clean window adds
  // one slot back, probing toward `base_cap`.
  int InflightCap(int base_cap) {
    if (!options_.backpressure) return base_cap;
    if (cap_ == 0 || cap_ > base_cap) cap_ = base_cap;
    const hal::Cycles now = hal::Now();
    if (epoch_end_ == 0) {
      epoch_end_ = now + EpochCycles();
      (void)StallsDelta();  // baseline the window
      return cap_;
    }
    if (now < epoch_end_) return cap_;
    epoch_end_ = now + EpochCycles();
    if (StallsDelta() > 0) {
      const int cut = cap_ / 4 > 0 ? cap_ / 4 : 1;
      cap_ = cap_ - cut > 0 ? cap_ - cut : 1;
    } else if (cap_ < base_cap) {
      cap_++;
    }
    return cap_;
  }

  // Fills `t` with the next transaction: source pull, OLLP plan, wait-die
  // timestamp (age-ordered, low 16 bits break ties between workers — see
  // kWorkerIdBits; WorkerPool CHECKs that worker ids fit), latency start
  // stamp, restart counter reset.
  void Admit(txn::Txn* t) {
    const hal::Cycles t0 = hal::Now();
    source_->Next(t);
    planner_.Plan(t);
    if (options_.charge_admission) {
      ctx_->stats.Add(TimeCategory::kExecution, hal::Now() - t0);
    }
    t->timestamp = (++ts_counter_ << kWorkerIdBits) |
                   static_cast<std::uint64_t>(ctx_->worker_id);
    t->start_cycles = hal::Now();
    t->restarts = 0;
    t->read_only = Classify(t);
  }

  // Read-only classification: every planned access is kShared. Costs no
  // modeled cycles (plain core-local walk), so engines that ignore the
  // flag are byte-identical to builds without it.
  static bool Classify(const txn::Txn* t) {
    if (t->accesses.empty()) return false;
    for (const txn::Access& a : t->accesses) {
      if (a.mode != txn::LockMode::kShared) return false;
    }
    return true;
  }

  txn::OllpPlanner* planner() { return &planner_; }
  WorkerContext* context() { return ctx_; }

 private:
  hal::Cycles EpochCycles() const {
    hal::CoreContext* cc = hal::CurrentCore();
    const double cps =
        cc != nullptr ? cc->platform->CyclesPerSecond() : 2e9;
    return static_cast<hal::Cycles>(options_.backpressure_epoch_seconds *
                                    cps);
  }

  DriverOptions options_;
  txn::OllpPlanner planner_;
  workload::TxnSource* source_;
  WorkerContext* ctx_;
  std::uint64_t ts_counter_ = 0;
  std::uint64_t stalls_seen_ = 0;  // StallsDelta window base
  int cap_ = 0;                    // backpressure cap (0 = uninitialized)
  hal::Cycles epoch_end_ = 0;      // current backpressure window end
};

// The sequential per-worker loop: admit, attempt until committed (with
// backoff after aborts and re-planning after mismatches), account the
// commit, repeat until the gate closes.
class TxnDriver {
 public:
  TxnDriver(const DriverOptions& options, storage::Database* db,
            workload::TxnSource* source, ExecutionStrategy* strategy,
            WorkerContext* ctx);

  // Runs the loop to completion. The worker's clock must already be begun
  // (WorkerPool::Spawn does this).
  void Run();

  TxnAdmission& admission() { return admission_; }

  // Durability attachment (also set it on the strategy): the driver polls
  // the producer each iteration, gates admission on arena space and the
  // pending pipeline, defers commit accounting to the group-commit ack,
  // and drains + retires the producer before returning.
  void set_wal(wal::Producer* w) { wal_ = w; }

 private:
  TxnAdmission admission_;
  ExecutionStrategy* strategy_;
  WorkerContext* ctx_;
  const BackoffPolicy* backoff_;
  BackoffPolicy default_backoff_;
  wal::Producer* wal_ = nullptr;
};

}  // namespace orthrus::runtime

#endif  // ORTHRUS_RUNTIME_TXN_DRIVER_H_
