// Shared transaction-runtime layer, part 2: the per-worker transaction
// lifecycle.
//
// Every architecture in the paper runs the same loop around its
// concurrency control: pull a transaction from the worker's source, plan
// its access set (OLLP reconnaissance when data-dependent), stamp it,
// try to execute it until it commits — backing off after deadlock aborts
// and re-planning after stale-estimate aborts — all gated by the run
// deadline and an optional per-worker commit cap. Before this layer each
// engine re-implemented that loop; now an engine supplies only an
// ExecutionStrategy (how one attempt acquires locks and runs logic) and
// the TxnDriver owns everything else.
//
// ORTHRUS's execution threads pipeline several transactions and therefore
// cannot use the sequential driver loop; they share the same admission
// front end (TxnAdmission) and planner instead, so admission, stamping,
// gating, and replanning still have exactly one implementation.
#ifndef ORTHRUS_RUNTIME_TXN_DRIVER_H_
#define ORTHRUS_RUNTIME_TXN_DRIVER_H_

#include <cstdint>
#include <memory>

#include "runtime/worker_pool.h"
#include "txn/ollp.h"
#include "txn/txn.h"
#include "workload/workload.h"

namespace orthrus::runtime {

// Result of one execution attempt. The strategy must return with no locks
// held in every case.
enum class TxnOutcome {
  kCommitted,  // logic ran and committed
  kAbort,      // deadlock handling killed the attempt; retry after backoff
  kMismatch,   // stale OLLP estimate; re-plan and retry
};

// One attempt at executing a planned transaction. Implementations hold the
// per-worker state they need (lock-table context, partition locks, ...);
// the driver owns retries, backoff, re-planning, and commit accounting.
class ExecutionStrategy {
 public:
  virtual ~ExecutionStrategy() = default;
  virtual TxnOutcome TryExecute(txn::Txn* t) = 0;
};

// Restart backoff, configured in one place and ablatable. The default is
// the capped exponential with deterministic per-core jitter that 2PL has
// always used: (base << min(restarts, max_shift)) + FastJitter(jitter).
// `rng` is the worker's seeded stream, for randomized policies; the
// default policy deliberately uses hal::FastJitter instead so simulator
// runs stay bit-reproducible with the pre-runtime-layer engines.
class BackoffPolicy {
 public:
  hal::Cycles base = 100;
  std::uint32_t max_shift = 4;
  hal::Cycles jitter = 256;

  virtual ~BackoffPolicy() = default;

  // `restarts` is the transaction's restart count including the abort that
  // triggered this call.
  virtual hal::Cycles Delay(std::uint32_t restarts, Rng* rng) const {
    (void)rng;
    return (base << (restarts < max_shift ? restarts : max_shift)) +
           hal::FastJitter(jitter);
  }
};

struct DriverOptions {
  // The run deadline is not configured here: it lives in the worker's
  // WorkerClock, which WorkerPool::Spawn begins with the pool's duration —
  // one source of truth for admission gating and elapsed-time reporting.

  // Optional commit cap per worker (0 = unlimited).
  std::uint64_t max_txns_per_worker = 0;

  // Charge source pull + planning to TimeCategory::kExecution. The
  // message-passing engines account admission this way; the
  // shared-everything engines historically did not.
  bool charge_admission = false;

  // Restart backoff; null selects the default capped-jitter policy.
  const BackoffPolicy* backoff = nullptr;
};

// Admission front end: the deadline/cap gate plus pull-plan-stamp of the
// next transaction. Sequential engines use it through TxnDriver; pipelined
// engines (ORTHRUS) drive it directly.
class TxnAdmission {
 public:
  TxnAdmission(const DriverOptions& options, storage::Database* db,
               workload::TxnSource* source, WorkerContext* ctx)
      : options_(options), planner_(db), source_(source), ctx_(ctx) {}

  // True while the worker may start another transaction.
  bool Open() const {
    return !ctx_->clock.Expired() &&
           (options_.max_txns_per_worker == 0 ||
            ctx_->stats.committed < options_.max_txns_per_worker);
  }

  // Fills `t` with the next transaction: source pull, OLLP plan, wait-die
  // timestamp (age-ordered, low 16 bits break ties between workers — see
  // kWorkerIdBits; WorkerPool CHECKs that worker ids fit), latency start
  // stamp, restart counter reset.
  void Admit(txn::Txn* t) {
    const hal::Cycles t0 = hal::Now();
    source_->Next(t);
    planner_.Plan(t);
    if (options_.charge_admission) {
      ctx_->stats.Add(TimeCategory::kExecution, hal::Now() - t0);
    }
    t->timestamp = (++ts_counter_ << kWorkerIdBits) |
                   static_cast<std::uint64_t>(ctx_->worker_id);
    t->start_cycles = hal::Now();
    t->restarts = 0;
  }

  txn::OllpPlanner* planner() { return &planner_; }
  WorkerContext* context() { return ctx_; }

 private:
  DriverOptions options_;
  txn::OllpPlanner planner_;
  workload::TxnSource* source_;
  WorkerContext* ctx_;
  std::uint64_t ts_counter_ = 0;
};

// The sequential per-worker loop: admit, attempt until committed (with
// backoff after aborts and re-planning after mismatches), account the
// commit, repeat until the gate closes.
class TxnDriver {
 public:
  TxnDriver(const DriverOptions& options, storage::Database* db,
            workload::TxnSource* source, ExecutionStrategy* strategy,
            WorkerContext* ctx);

  // Runs the loop to completion. The worker's clock must already be begun
  // (WorkerPool::Spawn does this).
  void Run();

  TxnAdmission& admission() { return admission_; }

 private:
  TxnAdmission admission_;
  ExecutionStrategy* strategy_;
  WorkerContext* ctx_;
  const BackoffPolicy* backoff_;
  BackoffPolicy default_backoff_;
};

}  // namespace orthrus::runtime

#endif  // ORTHRUS_RUNTIME_TXN_DRIVER_H_
