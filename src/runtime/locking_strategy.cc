#include "runtime/locking_strategy.h"

namespace orthrus::runtime {

bool LockingStrategy::AcquireOrAbort(const txn::Access& a) {
  hal::Cycles t0 = hal::Now();
  const lock::LockTable::AcquireResult r =
      table_->Acquire(ctx_, a.table, a.key, a.mode, policy_);
  if (r == lock::LockTable::AcquireResult::kWaiting) {
    stats_->Add(TimeCategory::kLocking, hal::Now() - t0);
    if (!table_->Wait(ctx_, policy_)) return false;
    t0 = hal::Now();
  } else if (r == lock::LockTable::AcquireResult::kDie) {
    stats_->Add(TimeCategory::kLocking, hal::Now() - t0);
    return false;
  }
  stats_->Add(TimeCategory::kLocking, hal::Now() - t0);
  return true;
}

void LockingStrategy::AcquireOrdered(const txn::Access& a) {
  const lock::LockTable::AcquireResult r =
      table_->Acquire(ctx_, a.table, a.key, a.mode, policy_);
  if (r == lock::LockTable::AcquireResult::kWaiting) {
    const bool granted = table_->Wait(ctx_, policy_);
    ORTHRUS_CHECK_MSG(granted, "FIFO wait cannot abort");
  } else {
    ORTHRUS_CHECK_MSG(r == lock::LockTable::AcquireResult::kGranted,
                      "ordered acquisition cannot die");
  }
}

void LockingStrategy::ReleaseAllLocks() {
  const hal::Cycles t0 = hal::Now();
  table_->ReleaseAll(ctx_);
  stats_->Add(TimeCategory::kLocking, hal::Now() - t0);
}

}  // namespace orthrus::runtime
