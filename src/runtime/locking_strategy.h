// Shared transaction-runtime layer, part 3: lock-table strategy plumbing.
//
// The shared-everything engines (2PL, deadlock-free) are ExecutionStrategy
// classes over lock::LockTable, and before this header each of them
// re-implemented the acquire → enqueue → policy wait-loop → abort dance —
// including the deadlock-policy plumbing that decides whether a blocked
// request waits or dies. LockingStrategy hoists exactly that plumbing
// behind the strategy interface: concrete strategies describe *when* locks
// are taken and how execution work interleaves with them; the wait loop,
// the DeadlockPolicy hand-off, the per-acquisition kLocking accounting,
// and release-all live here, in one place.
//
// The accounting is deliberately bit-compatible with what the engines
// always did (equivalence digests and sim clocks pin this): blocked time
// is charged to kWaiting inside LockTable::Wait, AcquireOrAbort charges
// the acquire/enqueue spans around it to kLocking, and AcquireOrdered
// leaves accounting to the caller (the deadlock-free engine charges its
// whole acquire phase as one span).
#ifndef ORTHRUS_RUNTIME_LOCKING_STRATEGY_H_
#define ORTHRUS_RUNTIME_LOCKING_STRATEGY_H_

#include "lock/lock_table.h"
#include "runtime/txn_driver.h"

namespace orthrus::runtime {

class LockingStrategy : public ExecutionStrategy {
 protected:
  // `policy` may be null (ordered acquisition needs no deadlock handling);
  // it is shared across workers and not owned.
  LockingStrategy(lock::LockTable* table, lock::WorkerLockCtx* ctx,
                  lock::DeadlockPolicy* policy, WorkerStats* stats)
      : table_(table), ctx_(ctx), policy_(policy), stats_(stats) {}

  // Publishes the transaction's timestamp to the lock manager (wait-die's
  // age; harmless otherwise). Call once per attempt, before any acquire.
  void BeginLockedAttempt(const txn::Txn& t) {
    ctx_->txn_timestamp = t.timestamp;
  }

  // One dynamic-2PL acquisition, policy wait loop included: requests the
  // lock, and if queued behind a conflict runs the configured deadlock
  // policy's wait. Returns false when the policy aborted the attempt (die
  // at request time, or a detected deadlock during the wait); the caller
  // must then release all held locks and report TxnOutcome::kAbort.
  bool AcquireOrAbort(const txn::Access& a);

  // Ordered-acquisition variant: FIFO wait that can never abort (deadlock
  // freedom must be guaranteed by the caller's acquisition order). No
  // stat accounting — the caller owns the timing span.
  void AcquireOrdered(const txn::Access& a);

  // Releases every lock held by the current attempt, charging kLocking.
  void ReleaseAllLocks();

  WorkerStats* stats() { return stats_; }

 private:
  lock::LockTable* table_;
  lock::WorkerLockCtx* ctx_;
  lock::DeadlockPolicy* policy_;
  WorkerStats* stats_;
};

}  // namespace orthrus::runtime

#endif  // ORTHRUS_RUNTIME_LOCKING_STRATEGY_H_
