// Shared transaction-runtime layer, part 1: worker plumbing.
//
// The paper's experiments hold the worker lifecycle constant while varying
// the concurrency-control architecture. This header owns that constant
// part: per-worker clocks, statistics, deterministic per-worker RNG
// streams, spawn/join against a hal::Platform, and the final aggregation
// into a RunResult. Engines describe only *what a worker does* (a
// callback receiving its WorkerContext); everything else lives here, so a
// fairness fix or a new scenario is a one-place edit instead of a four-way
// engine patch.
#ifndef ORTHRUS_RUNTIME_WORKER_POOL_H_
#define ORTHRUS_RUNTIME_WORKER_POOL_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "hal/hal.h"

namespace orthrus::runtime {

// Width of the worker-id tie-break field packed into the low bits of every
// wait-die timestamp (TxnAdmission::Admit). Worker ids beyond this range
// would alias under the mask — two distinct workers' transactions could
// compare equal or, worse, a high id could overflow into the age bits and
// invert the age order — so WorkerPool CHECKs the bound at construction.
// 16 bits covers production core counts (65536 workers) while leaving 48
// bits of age: centuries of admissions at any realistic rate.
inline constexpr int kWorkerIdBits = 16;
inline constexpr int kMaxWorkers = 1 << kWorkerIdBits;

// Per-worker deadline bookkeeping. Begin/Finish run on the worker's own
// logical core so start/end are that core's clock readings.
struct WorkerClock {
  hal::Cycles start = 0;
  hal::Cycles deadline = 0;
  hal::Cycles end = 0;

  void Begin(double duration_seconds, double cycles_per_second) {
    start = hal::Now();
    deadline = start + static_cast<hal::Cycles>(duration_seconds *
                                                cycles_per_second);
  }
  bool Expired() const { return hal::Now() >= deadline; }
  void Finish() { end = hal::Now(); }
};

// Everything a worker owns for the duration of a run. Plain (non-atomic)
// fields: exactly one logical core touches a context while the platform is
// running; the pool aggregates after join.
struct WorkerContext {
  int worker_id = -1;
  WorkerStats stats;
  WorkerClock clock;
  // Deterministic per-worker stream, seeded from (pool seed, worker id).
  // Available to strategies and backoff policies that want randomness
  // without sharing generator state across cores.
  Rng rng;
};

// Owns the worker contexts for one engine run and the spawn/join/aggregate
// plumbing around them. Usage:
//
//   WorkerPool pool(platform, n, options.duration_seconds);
//   for (int w = 0; w < n; ++w)
//     pool.Spawn(w, [&](WorkerContext& ctx) { ...worker body... });
//   return pool.Run();
//
// Spawn wraps the body with the clock Begin/Finish calls every engine used
// to hand-roll; worker `w` runs on logical core `w`.
class WorkerPool {
 public:
  WorkerPool(hal::Platform* platform, int num_workers,
             double duration_seconds, std::uint64_t rng_seed = 0);

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int num_workers() const { return static_cast<int>(workers_.size()); }
  double cycles_per_second() const { return cps_; }

  // Context accessors are valid from construction on, so engines can
  // register per-worker state (e.g. lock-table contexts) before spawning.
  // Addresses are stable for the pool's lifetime.
  WorkerContext& worker(int w) { return workers_[w]; }

  // Registers worker `w` on logical core `w`. All Spawn calls must happen
  // before Run. The body runs with the worker's clock already begun and is
  // followed by clock.Finish().
  void Spawn(int w, std::function<void(WorkerContext&)> body);

  // Runs all workers to completion, then aggregates. Equivalent to
  // RunWorkers() followed by Finalize().
  RunResult Run();

  // Split form for engines that assert invariants between join and
  // aggregation (e.g. ORTHRUS's queue-drain checks). Finalize sums the
  // per-worker stats and reports elapsed time as the span from the
  // earliest worker start to the latest worker end.
  void RunWorkers();
  RunResult Finalize() const;

 private:
  hal::Platform* platform_;
  double duration_seconds_;
  double cps_;
  std::vector<WorkerContext> workers_;
};

}  // namespace orthrus::runtime

#endif  // ORTHRUS_RUNTIME_WORKER_POOL_H_
