// Shared transaction-runtime layer, part 1: worker plumbing.
//
// The paper's experiments hold the worker lifecycle constant while varying
// the concurrency-control architecture. This header owns that constant
// part: per-worker clocks, statistics, deterministic per-worker RNG
// streams, spawn/join against a hal::Platform, and the final aggregation
// into a RunResult. Engines describe only *what a worker does* (a
// callback receiving its WorkerContext); everything else lives here, so a
// fairness fix or a new scenario is a one-place edit instead of a four-way
// engine patch.
//
// Elastic role support: platforms cannot add cores after Run begins, so a
// worker's *role* — not its existence — is what changes at runtime. The
// pool records each worker's assigned role (AssignRole), a ParkGate gives
// a controller a doorbell for activating/deactivating a contiguous prefix
// of a role group between scheduling quanta, and per-epoch stat snapshots
// (WorkerContext::PublishEpochStats / ReadEpochSnapshot) let that
// controller read live commit counters without racing the plain,
// worker-owned accounting that Finalize aggregates after join.
#ifndef ORTHRUS_RUNTIME_WORKER_POOL_H_
#define ORTHRUS_RUNTIME_WORKER_POOL_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "hal/hal.h"

namespace orthrus::runtime {

// Width of the worker-id tie-break field packed into the low bits of every
// wait-die timestamp (TxnAdmission::Admit). Worker ids beyond this range
// would alias under the mask — two distinct workers' transactions could
// compare equal or, worse, a high id could overflow into the age bits and
// invert the age order — so WorkerPool CHECKs the bound at construction.
// 16 bits covers production core counts (65536 workers) while leaving 48
// bits of age: centuries of admissions at any realistic rate.
inline constexpr int kWorkerIdBits = 16;
inline constexpr int kMaxWorkers = 1 << kWorkerIdBits;

// Per-worker deadline bookkeeping. Begin/Finish run on the worker's own
// logical core so start/end are that core's clock readings.
struct WorkerClock {
  hal::Cycles start = 0;
  hal::Cycles deadline = 0;
  hal::Cycles end = 0;

  void Begin(double duration_seconds, double cycles_per_second) {
    start = hal::Now();
    deadline = start + static_cast<hal::Cycles>(duration_seconds *
                                                cycles_per_second);
  }
  bool Expired() const { return hal::Now() >= deadline; }
  void Finish() { end = hal::Now(); }
};

// What a worker core does for an engine. kFlex is the default: the worker
// both runs transactions and manipulates shared CC state (the
// shared-everything engines). Engines with partitioned functionality
// assign kCc / kExec so tools and elastic controllers can tell the groups
// apart without engine-specific id arithmetic.
enum class WorkerRole : std::uint8_t {
  kFlex = 0,
  kCc,
  kExec,
  kLogger,  // durability: drains redo-log fragments, seals group commits
};

// Commit/abort counters published at a quantum boundary, for cross-core
// controller reads (see WorkerContext::PublishEpochStats).
struct EpochSnapshot {
  std::uint64_t committed = 0;
  std::uint64_t aborted = 0;
};

// Everything a worker owns for the duration of a run. Plain (non-atomic)
// fields: exactly one logical core touches a context while the platform is
// running; the pool aggregates after join. The published_* atomics are the
// one exception — epoch-boundary mirrors of the plain counters that a
// controller core may read while the worker keeps running, so elastic
// reallocation decisions never race (or corrupt) the worker-owned stats.
struct WorkerContext {
  int worker_id = -1;
  WorkerRole role = WorkerRole::kFlex;
  WorkerStats stats;
  WorkerClock clock;
  // Deterministic per-worker stream, seeded from (pool seed, worker id).
  // Available to strategies and backoff policies that want randomness
  // without sharing generator state across cores.
  Rng rng;

  // Worker-side: mirror the commit/abort counters for cross-core readers.
  // Call at scheduling-quantum boundaries (two modeled stores).
  void PublishEpochStats() {
    // The plain counters are worker-owned by contract; the tags let the
    // race detector prove it — any other core writing them (a controller
    // shortcutting past the published_* mirrors, a stats-fold touching a
    // live worker) shows up as a report instead of silent corruption.
    hal::RaceCheck(&stats.committed, sizeof(stats.committed), false,
                   "runtime.worker_stats.committed");
    hal::RaceCheck(&stats.aborted, sizeof(stats.aborted), false,
                   "runtime.worker_stats.aborted");
    published_committed_.store(stats.committed);
    published_aborted_.store(stats.aborted);
  }

  // Controller-side: last published snapshot (modeled loads, any core).
  EpochSnapshot ReadEpochSnapshot() {
    return {published_committed_.load(), published_aborted_.load()};
  }

 private:
  hal::Atomic<std::uint64_t> published_committed_{0};
  hal::Atomic<std::uint64_t> published_aborted_{0};
};

// Park/resume doorbell for an elastic role group. The controller sets how
// many of the group's workers should be active; worker `i` runs while
// i < target and parks otherwise. Parking is cooperative — a worker polls
// the gate at quantum boundaries, finishes its in-flight work, and then
// spins (politely, with exponential backoff) in Park() until resumed or
// told to exit — because platforms cannot deschedule a spawned core, only
// the worker itself can.
class ParkGate {
 public:
  explicit ParkGate(int initial_target = 0)
      : target_(static_cast<std::uint64_t>(initial_target)) {}

  ParkGate(const ParkGate&) = delete;
  ParkGate& operator=(const ParkGate&) = delete;

  // Controller side: workers [0, target) of the group should be active.
  void SetTarget(int target) {
    ORTHRUS_DCHECK(target >= 0);
    target_.store(static_cast<std::uint64_t>(target));
  }

  // Worker side (modeled load).
  int target() { return static_cast<int>(target_.load()); }
  bool Active(int index) { return index < target(); }

  // Unmodeled view for tests / teardown assertions.
  int TargetRaw() const { return static_cast<int>(target_.RawLoad()); }

  // Blocks (polite spin) until this worker is active again or
  // `should_exit()` turns true (e.g. the run deadline passed). Returns the
  // cycles spent parked so the caller can charge them to kWaiting.
  template <typename ExitFn>
  hal::Cycles Park(int index, ExitFn&& should_exit) {
    const hal::Cycles t0 = hal::Now();
    hal::IdleBackoff idle(4096);
    while (!Active(index) && !should_exit()) idle.Idle();
    return hal::Now() - t0;
  }

 private:
  hal::Atomic<std::uint64_t> target_;
};

// Owns the worker contexts for one engine run and the spawn/join/aggregate
// plumbing around them. Usage:
//
//   WorkerPool pool(platform, n, options.duration_seconds);
//   for (int w = 0; w < n; ++w)
//     pool.Spawn(w, [&](WorkerContext& ctx) { ...worker body... });
//   return pool.Run();
//
// Spawn wraps the body with the clock Begin/Finish calls every engine used
// to hand-roll; worker `w` runs on logical core `w`.
class WorkerPool {
 public:
  WorkerPool(hal::Platform* platform, int num_workers,
             double duration_seconds, std::uint64_t rng_seed = 0);

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int num_workers() const { return static_cast<int>(workers_.size()); }
  double cycles_per_second() const { return cps_; }

  // Context accessors are valid from construction on, so engines can
  // register per-worker state (e.g. lock-table contexts) before spawning.
  // Addresses are stable for the pool's lifetime.
  WorkerContext& worker(int w) { return workers_[w]; }

  // Role bookkeeping: call before Spawn. Roles do not change what the pool
  // does — they let engines, controllers, and reports tell worker groups
  // apart (e.g. "sum committed over kExec workers") without engine-specific
  // id arithmetic.
  void AssignRole(int w, WorkerRole role) { workers_[w].role = role; }
  WorkerRole role(int w) const { return workers_[w].role; }
  int CountRole(WorkerRole role) const;

  // Topology-aware placement: worker `w` runs on logical core
  // `core_of_worker[w]` instead of core `w`. Must be a permutation of the
  // worker ids (typically Topology::PackGroups output) and must be set
  // before any Spawn. Worker identity — ids, RNG streams, stats — is
  // untouched; only the core a worker's body executes on changes, so on a
  // single-socket (flat) topology the identity map reproduces the
  // placement-free schedule exactly.
  void SetPlacement(std::vector<int> core_of_worker);

  // Registers worker `w` on logical core `w` (or its placed core when
  // SetPlacement was called). All Spawn calls must happen before Run. The
  // body runs with the worker's clock already begun and is followed by
  // clock.Finish().
  void Spawn(int w, std::function<void(WorkerContext&)> body);

  // Runs all workers to completion, then aggregates. Equivalent to
  // RunWorkers() followed by Finalize().
  RunResult Run();

  // Split form for engines that assert invariants between join and
  // aggregation (e.g. ORTHRUS's queue-drain checks). Finalize sums the
  // per-worker stats and reports elapsed time as the span from the
  // earliest worker start to the latest worker end.
  void RunWorkers();
  RunResult Finalize() const;

 private:
  hal::Platform* platform_;
  double duration_seconds_;
  double cps_;
  std::vector<WorkerContext> workers_;
  std::vector<int> core_of_worker_;  // empty = identity
};

}  // namespace orthrus::runtime

#endif  // ORTHRUS_RUNTIME_WORKER_POOL_H_
