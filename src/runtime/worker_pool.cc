#include "runtime/worker_pool.h"

#include <algorithm>
#include <utility>

namespace orthrus::runtime {
namespace {

// SplitMix64 over (seed, worker id): distinct, well-mixed per-worker
// streams even for adjacent ids and a zero pool seed.
std::uint64_t MixSeed(std::uint64_t seed, int worker_id) {
  std::uint64_t z =
      seed + 0x9E3779B97F4A7C15ull * static_cast<std::uint64_t>(worker_id + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

WorkerPool::WorkerPool(hal::Platform* platform, int num_workers,
                       double duration_seconds, std::uint64_t rng_seed)
    : platform_(platform),
      duration_seconds_(duration_seconds),
      cps_(platform->CyclesPerSecond()),
      workers_(num_workers) {
  // Worker ids become wait-die tie-break bits (kWorkerIdBits); an id past
  // the field would silently corrupt transaction age ordering.
  ORTHRUS_CHECK_MSG(num_workers >= 1 && num_workers <= kMaxWorkers,
                    "worker count exceeds the wait-die tie-break range");
  for (int w = 0; w < num_workers; ++w) {
    workers_[w].worker_id = w;
    workers_[w].rng.Seed(MixSeed(rng_seed, w));
  }
}

int WorkerPool::CountRole(WorkerRole role) const {
  int n = 0;
  for (const WorkerContext& w : workers_) n += w.role == role ? 1 : 0;
  return n;
}

void WorkerPool::SetPlacement(std::vector<int> core_of_worker) {
  ORTHRUS_CHECK_MSG(
      core_of_worker.size() == workers_.size(),
      "placement map must cover every worker");
  // Must be a permutation: each worker gets a distinct core in range.
  std::vector<bool> used(workers_.size(), false);
  for (int core : core_of_worker) {
    ORTHRUS_CHECK(core >= 0 && core < static_cast<int>(workers_.size()));
    ORTHRUS_CHECK_MSG(!used[core], "placement maps two workers to one core");
    used[core] = true;
  }
  core_of_worker_ = std::move(core_of_worker);
}

void WorkerPool::Spawn(int w, std::function<void(WorkerContext&)> body) {
  WorkerContext* ctx = &workers_[w];
  const int core = core_of_worker_.empty() ? w : core_of_worker_[w];
  platform_->Spawn(core, [this, ctx, body = std::move(body)]() {
    // Stall-accounting sink for blocking queue sends (observability only;
    // see mp::detail::WedgeSpin). Installed for the body's lifetime and
    // folded into the worker's plain stats afterward.
    hal::SpinStallSink sink;
    hal::CoreContext* core = hal::CurrentCore();
    if (core != nullptr) core->send_stall_sink = &sink;
    ctx->clock.Begin(duration_seconds_, cps_);
    body(*ctx);
    ctx->clock.Finish();
    if (core != nullptr) core->send_stall_sink = nullptr;
    // Last on-core writes to the worker-owned plain stats before Finalize
    // reads them after join; tagged so a straggling cross-core reader
    // (anything but the published_* mirrors) is a detector report.
    hal::RaceCheck(&ctx->stats.send_stalls, sizeof(ctx->stats.send_stalls),
                   true, "runtime.worker_stats.stall_fold");
    ctx->stats.send_stalls += sink.stalls;
    ctx->stats.send_stall_cycles += sink.stall_cycles;
  });
}

RunResult WorkerPool::Run() {
  RunWorkers();
  return Finalize();
}

void WorkerPool::RunWorkers() { platform_->Run(); }

RunResult WorkerPool::Finalize() const {
  RunResult result;
  result.per_worker.reserve(workers_.size());
  hal::Cycles min_start = ~0ull;
  hal::Cycles max_end = 0;
  for (const WorkerContext& w : workers_) {
    result.per_worker.push_back(w.stats);
    result.total.Merge(w.stats);
    min_start = std::min(min_start, w.clock.start);
    max_end = std::max(max_end, w.clock.end);
  }
  if (max_end > min_start) {
    result.elapsed_seconds =
        static_cast<double>(max_end - min_start) / cps_;
  }
  return result;
}

}  // namespace orthrus::runtime
