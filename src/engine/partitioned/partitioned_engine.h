// "Partitioned-store" baseline (Section 4.3): the single-node H-Store /
// VoltDB / HyPer architecture as re-implemented by Tu et al. for Silo's
// comparison. Data is physically partitioned across worker threads, each
// partition has its own (small, cache-friendly) index, and concurrency
// control is a single coarse-grained spinlock per partition.
//
// A transaction acquires the partition locks of every partition it touches,
// in ascending partition order (so partition-lock deadlock is impossible),
// executes, and releases. Single-partition transactions therefore pay one
// uncontended, locally-cached spinlock acquisition and no record-level CC
// at all — which is why this baseline wins Figure 6's 1-partition point and
// collapses as soon as transactions cross partitions.
#ifndef ORTHRUS_ENGINE_PARTITIONED_PARTITIONED_ENGINE_H_
#define ORTHRUS_ENGINE_PARTITIONED_PARTITIONED_ENGINE_H_

#include "engine/engine.h"

namespace orthrus::engine {

class PartitionedEngine final : public Engine {
 public:
  explicit PartitionedEngine(EngineOptions options) : options_(options) {}

  RunResult Run(hal::Platform* platform, storage::Database* db,
                const workload::Workload& workload) override;
  std::string name() const override { return "partitioned-store"; }

 private:
  EngineOptions options_;
};

}  // namespace orthrus::engine

#endif  // ORTHRUS_ENGINE_PARTITIONED_PARTITIONED_ENGINE_H_
