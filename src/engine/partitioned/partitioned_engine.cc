#include "engine/partitioned/partitioned_engine.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "wal/wal.h"

namespace orthrus::engine {
namespace {

// One attempt of H-Store-style partition-level locking: compute the
// transaction's partition footprint, take the coarse per-partition locks
// in ascending order (deadlock free by construction), execute, release.
class PartitionedStrategy final : public runtime::ExecutionStrategy {
 public:
  PartitionedStrategy(std::vector<std::unique_ptr<hal::SpinLock>>* locks,
                      storage::Database* db, WorkerStats* st)
      : locks_(locks), db_(db), st_(st) {
    parts_.reserve(16);
  }

  runtime::TxnOutcome TryExecute(txn::Txn* t) override {
    // Partition footprint, ascending and deduplicated: the ascending order
    // makes partition-lock acquisition deadlock free.
    parts_.clear();
    for (const txn::Access& a : t->accesses) {
      parts_.push_back(db_->partitioner().PartOf(a.key));
    }
    std::sort(parts_.begin(), parts_.end());
    parts_.erase(std::unique(parts_.begin(), parts_.end()), parts_.end());

    hal::Cycles t0 = hal::Now();
    LockFootprint();
    st_->Add(TimeCategory::kLocking, hal::Now() - t0);

    t0 = hal::Now();
    for (txn::Access& a : t->accesses) ResolveRow(db_, &a);
    txn::ExecContext ec{db_, st_, /*charge_cycles=*/true};
    const bool ok = t->logic->Run(t, ec);
    st_->Add(TimeCategory::kExecution, hal::Now() - t0);

    // Durability: capture redo images under the partition locks — the
    // coarse locks cover every row the transaction wrote.
    if (ok && wal_ != nullptr) wal_->Capture(t, db_);

    t0 = hal::Now();
    UnlockFootprint();
    st_->Add(TimeCategory::kLocking, hal::Now() - t0);

    return ok ? runtime::TxnOutcome::kCommitted
              : runtime::TxnOutcome::kMismatch;
  }

 private:
  // A dynamic, data-dependent lock set is outside what the static analysis
  // can follow; safety comes from the ascending acquisition order above.
  void LockFootprint() ORTHRUS_NO_THREAD_SAFETY_ANALYSIS {
    for (int p : parts_) (*locks_)[p]->Lock();
  }
  void UnlockFootprint() ORTHRUS_NO_THREAD_SAFETY_ANALYSIS {
    for (int p : parts_) (*locks_)[p]->Unlock();
  }

  std::vector<std::unique_ptr<hal::SpinLock>>* locks_;
  storage::Database* db_;
  WorkerStats* st_;
  std::vector<int> parts_;
};

}  // namespace

RunResult PartitionedEngine::Run(hal::Platform* platform,
                                 storage::Database* db,
                                 const workload::Workload& workload) {
  const int n = options_.num_cores;
  ORTHRUS_CHECK_MSG(db->partitioner().n == n,
                    "Partitioned-store needs one partition per worker; "
                    "load the database with num_table_partitions == cores");

  // One coarse-grained lock per partition.
  std::vector<std::unique_ptr<hal::SpinLock>> partition_locks;
  partition_locks.reserve(n);
  for (int i = 0; i < n; ++i) {
    partition_locks.push_back(std::make_unique<hal::SpinLock>());
  }

  const int loggers = options_.wal != nullptr ? options_.wal->loggers() : 0;
  runtime::WorkerPool pool(platform, n + loggers, options_.duration_seconds,
                           options_.rng_seed);
  const runtime::DriverOptions dopts = MakeDriverOptions(options_);
  for (int w = 0; w < n; ++w) {
    pool.Spawn(w, [this, db, &workload, &partition_locks,
                   &dopts](runtime::WorkerContext& ctx) {
      std::unique_ptr<workload::TxnSource> source =
          workload.MakeSource(ctx.worker_id);
      PartitionedStrategy strategy(&partition_locks, db, &ctx.stats);
      runtime::TxnDriver driver(dopts, db, source.get(), &strategy, &ctx);
      std::unique_ptr<wal::Producer> producer;
      if (options_.wal != nullptr) {
        producer = std::make_unique<wal::Producer>(options_.wal,
                                                   ctx.worker_id, &ctx);
        strategy.set_wal(producer.get());
        driver.set_wal(producer.get());
      }
      driver.Run();
    });
  }
  for (int l = 0; l < loggers; ++l) {
    const int w = n + l;
    pool.AssignRole(w, runtime::WorkerRole::kLogger);
    pool.Spawn(w, [this, l](runtime::WorkerContext& ctx) {
      options_.wal->RunLogger(l, &ctx);
    });
  }

  RunResult result = pool.Run();
  if (options_.wal != nullptr) {
    ORTHRUS_CHECK_MSG(options_.wal->MeshBacklogRaw() == 0,
                      "wal fragments stranded in the mesh after shutdown");
  }
  return result;
}

}  // namespace orthrus::engine
