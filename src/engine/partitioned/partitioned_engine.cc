#include "engine/partitioned/partitioned_engine.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "txn/ollp.h"

namespace orthrus::engine {

RunResult PartitionedEngine::Run(hal::Platform* platform,
                                 storage::Database* db,
                                 const workload::Workload& workload) {
  const int n = options_.num_cores;
  ORTHRUS_CHECK_MSG(db->partitioner().n == n,
                    "Partitioned-store needs one partition per worker; "
                    "load the database with num_table_partitions == cores");

  // One coarse-grained lock per partition.
  std::vector<std::unique_ptr<hal::SpinLock>> partition_locks;
  partition_locks.reserve(n);
  for (int i = 0; i < n; ++i) {
    partition_locks.push_back(std::make_unique<hal::SpinLock>());
  }

  std::vector<WorkerStats> stats(n);
  std::vector<WorkerClock> clocks(n);
  const double cps = platform->CyclesPerSecond();

  for (int w = 0; w < n; ++w) {
    platform->Spawn(w, [this, w, db, &workload, &partition_locks, &stats,
                        &clocks, cps]() {
      WorkerStats& st = stats[w];
      WorkerClock& clock = clocks[w];
      std::unique_ptr<workload::TxnSource> source = workload.MakeSource(w);
      txn::Txn t;
      std::vector<int> parts;
      parts.reserve(16);
      clock.Begin(options_.duration_seconds, cps);

      while (!clock.Expired() &&
             (options_.max_txns_per_worker == 0 ||
              st.committed < options_.max_txns_per_worker)) {
        source->Next(&t);
        txn::OllpPlan(&t, db);
        t.start_cycles = hal::Now();
        t.restarts = 0;

        bool committed = false;
        while (!committed) {
          // Partition footprint, ascending and deduplicated: the ascending
          // order makes partition-lock acquisition deadlock free.
          parts.clear();
          for (const txn::Access& a : t.accesses) {
            parts.push_back(db->partitioner().PartOf(a.key));
          }
          std::sort(parts.begin(), parts.end());
          parts.erase(std::unique(parts.begin(), parts.end()), parts.end());

          hal::Cycles t0 = hal::Now();
          for (int p : parts) partition_locks[p]->Lock();
          st.Add(TimeCategory::kLocking, hal::Now() - t0);

          t0 = hal::Now();
          for (txn::Access& a : t.accesses) ResolveRow(db, &a);
          txn::ExecContext ec{db, &st, /*charge_cycles=*/true};
          const bool ok = t.logic->Run(&t, ec);
          st.Add(TimeCategory::kExecution, hal::Now() - t0);

          t0 = hal::Now();
          for (int p : parts) partition_locks[p]->Unlock();
          st.Add(TimeCategory::kLocking, hal::Now() - t0);

          if (!ok) {
            if (!txn::OllpReplanAfterMismatch(&t, db, &st)) break;
            continue;
          }
          st.committed++;
          st.txn_latency.Record(hal::Now() - t.start_cycles);
          committed = true;
        }
      }
      clock.Finish();
    });
  }

  platform->Run();
  return FinalizeRun(stats, clocks, cps);
}

}  // namespace orthrus::engine
