#include "engine/sharedcc/sharedcc_engine.h"

#include <algorithm>
#include <memory>
#include <unordered_map>
#include <vector>

#include "runtime/txn_driver.h"
#include "wal/wal.h"

namespace orthrus::engine {
namespace {

using txn::Access;
using txn::LockMode;

constexpr int kMaxAccesses = 40;  // matches the ORTHRUS TCB bound

struct ShardReq;

// Lock state for one key inside a partition shard. Plain memory: every
// access happens under the shard's latch.
struct ShardLock {
  ShardReq* head = nullptr;
  ShardReq* tail = nullptr;
  std::uint32_t queued_total = 0;
  std::uint32_t queued_x = 0;
};

// A worker's request node. Queue links are latch-protected; `granted` is
// the one cross-core word read outside the latch — the waiter spins on it
// locally (the paper's local-spinning FIFO handoff) and the releaser's
// latched grant sweep flips it with a release store. hal::Atomic, not raw
// std::atomic: the handoff line transfer is a real coherence cost the
// simulator must charge, and the store/load pair is the happens-before
// edge the race detector checks row accesses against.
struct ShardReq {
  hal::Atomic<int> granted;
  ShardReq* next = nullptr;
  ShardReq* prev = nullptr;
  ShardLock* lock = nullptr;
  int shard = -1;
  LockMode mode = LockMode::kShared;
};

struct LockKey {
  std::uint32_t table;
  std::uint64_t key;
  bool operator==(const LockKey& o) const {
    return table == o.table && key == o.key;
  }
};

struct LockKeyHash {
  std::size_t operator()(const LockKey& k) const {
    std::uint64_t h = (k.key ^ (static_cast<std::uint64_t>(k.table) << 56)) *
                      0x9E3779B97F4A7C15ull;
    return static_cast<std::size_t>(h ^ (h >> 32));
  }
};

// One lock-space partition: a latch and its local lock queues. Node-based
// map, so ShardLock addresses are stable while requests point at them.
struct alignas(kCacheLineSize) Shard {
  hal::SpinLock latch;
  std::unordered_map<LockKey, ShardLock, LockKeyHash> locks
      ORTHRUS_GUARDED_BY(latch);
};

// One attempt: sort the pre-declared access set by (partition, table,
// key), acquire each lock from its partition shard (FIFO wait on
// conflict; ordered acquisition makes waits deadlock-free), execute with
// everything held, release with a latched grant sweep per shard visit.
class SharedCcStrategy final : public runtime::ExecutionStrategy {
 public:
  SharedCcStrategy(std::vector<Shard>* shards,
                   const storage::Partitioner* part, storage::Database* db,
                   hal::Cycles op_cycles, WorkerStats* stats)
      : shards_(shards),
        part_(part),
        db_(db),
        op_cycles_(op_cycles),
        stats_(stats) {}

  runtime::TxnOutcome TryExecute(txn::Txn* t) override {
    ORTHRUS_CHECK(t->accesses.size() <= kMaxAccesses);
    const storage::Partitioner& part = *part_;
    std::sort(t->accesses.begin(), t->accesses.end(),
              [&part](const Access& a, const Access& b) {
                const int pa = part.PartOf(a.key);
                const int pb = part.PartOf(b.key);
                if (pa != pb) return pa < pb;
                if (a.table != b.table) return a.table < b.table;
                return a.key < b.key;
              });

    hal::Cycles t0 = hal::Now();
    n_held_ = 0;
    for (const Access& a : t->accesses) Acquire(a);
    stats_->Add(TimeCategory::kLocking, hal::Now() - t0);

    t0 = hal::Now();
    for (Access& a : t->accesses) ResolveRow(db_, &a);
    txn::ExecContext ec{db_, stats_, /*charge_cycles=*/true};
    const bool ok = t->logic->Run(t, ec);
    stats_->Add(TimeCategory::kExecution, hal::Now() - t0);

    // Durability: capture redo images while every lock is still held.
    if (ok && wal_ != nullptr) wal_->Capture(t, db_);

    t0 = hal::Now();
    ReleaseAll();
    stats_->Add(TimeCategory::kLocking, hal::Now() - t0);
    return ok ? runtime::TxnOutcome::kCommitted
              : runtime::TxnOutcome::kMismatch;
  }

 private:
  void Acquire(const Access& a) {
    const int p = part_->PartOf(a.key);
    Shard& s = (*shards_)[static_cast<std::size_t>(p)];
    ShardReq* r = &reqs_[n_held_++];
    r->next = r->prev = nullptr;
    r->shard = p;
    r->mode = a.mode;
    s.latch.Lock();
    hal::ConsumeCycles(op_cycles_);
    ShardLock& lock = s.locks[LockKey{a.table, a.key}];
    r->lock = &lock;
    const bool grantable = a.mode == LockMode::kExclusive
                               ? lock.queued_total == 0
                               : lock.queued_x == 0;
    r->prev = lock.tail;
    if (lock.tail != nullptr) {
      lock.tail->next = r;
    } else {
      lock.head = r;
    }
    lock.tail = r;
    lock.queued_total++;
    if (a.mode == LockMode::kExclusive) lock.queued_x++;
    r->granted.store(grantable ? 1 : 0);
    s.latch.Unlock();
    if (!grantable) {
      stats_->lock_waits++;
      const hal::Cycles w0 = hal::Now();
      while (r->granted.load() == 0) {
        hal::CpuRelax();
      }
      stats_->Add(TimeCategory::kWaiting, hal::Now() - w0);
    }
  }

  void ReleaseAll() {
    for (int i = 0; i < n_held_; ++i) {
      ShardReq* r = &reqs_[i];
      Shard& s = (*shards_)[static_cast<std::size_t>(r->shard)];
      s.latch.Lock();
      hal::ConsumeCycles(op_cycles_);
      ShardLock* lock = r->lock;
      ORTHRUS_DCHECK(lock->queued_total > 0);
      lock->queued_total--;
      if (r->mode == LockMode::kExclusive) lock->queued_x--;
      if (r->prev != nullptr) {
        r->prev->next = r->next;
      } else {
        lock->head = r->next;
      }
      if (r->next != nullptr) {
        r->next->prev = r->prev;
      } else {
        lock->tail = r->prev;
      }
      // Grant the now-leading compatible run (strict FIFO, no bypassing).
      bool x_seen = false;
      for (ShardReq* f = lock->head; f != nullptr; f = f->next) {
        if (f->granted.load() == 0) {
          const bool grantable = f->mode == LockMode::kExclusive
                                     ? f == lock->head
                                     : !x_seen;
          if (!grantable) break;
          f->granted.store(1);
        }
        if (f->mode == LockMode::kExclusive) x_seen = true;
      }
      s.latch.Unlock();
    }
    n_held_ = 0;
  }

  std::vector<Shard>* shards_;
  const storage::Partitioner* part_;
  storage::Database* db_;
  hal::Cycles op_cycles_;
  WorkerStats* stats_;
  ShardReq reqs_[kMaxAccesses];
  int n_held_ = 0;
};

}  // namespace

RunResult SharedCcEngine::Run(hal::Platform* platform, storage::Database* db,
                              const workload::Workload& workload) {
  const int n = options_.num_cores;
  const int n_shards = db->partitioner().n;
  ORTHRUS_CHECK(n_shards >= 1);
  std::vector<Shard> shards(static_cast<std::size_t>(n_shards));

  const int loggers = options_.wal != nullptr ? options_.wal->loggers() : 0;
  runtime::WorkerPool pool(platform, n + loggers, options_.duration_seconds,
                           options_.rng_seed);
  const runtime::DriverOptions dopts = MakeDriverOptions(options_);
  for (int w = 0; w < n; ++w) {
    pool.Spawn(w, [this, db, &workload, &shards,
                   &dopts](runtime::WorkerContext& ctx) {
      std::unique_ptr<workload::TxnSource> source =
          workload.MakeSource(ctx.worker_id);
      SharedCcStrategy strategy(&shards, &db->partitioner(), db,
                                cc_op_cycles_, &ctx.stats);
      runtime::TxnDriver driver(dopts, db, source.get(), &strategy, &ctx);
      std::unique_ptr<wal::Producer> producer;
      if (options_.wal != nullptr) {
        producer = std::make_unique<wal::Producer>(options_.wal,
                                                   ctx.worker_id, &ctx);
        strategy.set_wal(producer.get());
        driver.set_wal(producer.get());
      }
      driver.Run();
    });
  }
  for (int l = 0; l < loggers; ++l) {
    const int w = n + l;
    pool.AssignRole(w, runtime::WorkerRole::kLogger);
    pool.Spawn(w, [this, l](runtime::WorkerContext& ctx) {
      options_.wal->RunLogger(l, &ctx);
    });
  }

  RunResult result = pool.Run();
  if (options_.wal != nullptr) {
    ORTHRUS_CHECK_MSG(options_.wal->MeshBacklogRaw() == 0,
                      "wal fragments stranded in the mesh after shutdown");
  }
  return result;
}

}  // namespace orthrus::engine
