// The fifth architecture: shared-CC everywhere.
//
// A design point between ORTHRUS and the shared-everything baselines that
// the paper's Section 3.4 discussion implies but never builds: keep the
// *partitioned lock metadata* (each lock lives in exactly one lock-space
// partition, so its state stays compact and cache-friendly, priced with
// ORTHRUS's cheap per-op cost), but drop the dedicated CC threads and the
// message passing. Every core is both CC and exec: it acquires its own
// transaction's locks directly from the partition shards, synchronizing
// with other cores through one spin latch per partition — synchronization
// exists again, but only among cores touching the same partition at the
// same instant, not on a global structure. Acquisition is ordered by
// (partition, table, key) over the pre-declared access set, so the FIFO
// queues can never deadlock and no deadlock policy is needed.
//
// The whole architecture is a ~100-line runtime::ExecutionStrategy over
// the shared transaction runtime (admission, OLLP planning, replanning,
// accounting all reused), which is exactly the point of that layer.
#ifndef ORTHRUS_ENGINE_SHAREDCC_SHAREDCC_ENGINE_H_
#define ORTHRUS_ENGINE_SHAREDCC_SHAREDCC_ENGINE_H_

#include "engine/engine.h"

namespace orthrus::engine {

class SharedCcEngine final : public Engine {
 public:
  // `cc_op_cycles` mirrors OrthrusOptions::cc_op_cycles: partition-local
  // lock metadata stays cache-resident, so per-op work is cheaper than the
  // big shared lock table's.
  explicit SharedCcEngine(EngineOptions options, hal::Cycles cc_op_cycles = 12)
      : options_(options), cc_op_cycles_(cc_op_cycles) {}

  RunResult Run(hal::Platform* platform, storage::Database* db,
                const workload::Workload& workload) override;
  std::string name() const override { return "sharedcc-everywhere"; }

 private:
  EngineOptions options_;
  hal::Cycles cc_op_cycles_;
};

}  // namespace orthrus::engine

#endif  // ORTHRUS_ENGINE_SHAREDCC_SHAREDCC_ENGINE_H_
