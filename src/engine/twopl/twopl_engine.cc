#include "engine/twopl/twopl_engine.h"

#include <vector>

#include "txn/ollp.h"

namespace orthrus::engine {

TwoPlEngine::TwoPlEngine(EngineOptions options, DeadlockPolicyKind policy)
    : options_(options), policy_kind_(policy) {}

TwoPlEngine::~TwoPlEngine() = default;

std::string TwoPlEngine::name() const {
  switch (policy_kind_) {
    case DeadlockPolicyKind::kWaitDie:
      return "2pl-waitdie";
    case DeadlockPolicyKind::kWaitForGraph:
      return "2pl-waitforgraph";
    case DeadlockPolicyKind::kDreadlocks:
      return "2pl-dreadlocks";
  }
  return "2pl";
}

std::unique_ptr<lock::DeadlockPolicy> TwoPlEngine::MakePolicy() const {
  switch (policy_kind_) {
    case DeadlockPolicyKind::kWaitDie:
      return std::make_unique<lock::WaitDiePolicy>();
    case DeadlockPolicyKind::kWaitForGraph:
      return std::make_unique<lock::WaitForGraphPolicy>(options_.num_cores);
    case DeadlockPolicyKind::kDreadlocks:
      return std::make_unique<lock::DreadlocksPolicy>();
  }
  return nullptr;
}

RunResult TwoPlEngine::Run(hal::Platform* platform, storage::Database* db,
                           const workload::Workload& workload) {
  const int n = options_.num_cores;
  lock::LockTable::Config lt_config;
  lt_config.num_buckets = options_.lock_buckets;
  lt_config.max_lock_heads = options_.max_lock_heads;
  lt_config.max_workers = n;
  lock::LockTable lock_table(lt_config);

  std::vector<WorkerStats> stats(n);
  std::vector<WorkerClock> clocks(n);
  std::unique_ptr<lock::DeadlockPolicy> policy = MakePolicy();

  // Worker contexts are registered up front (single-threaded) so no
  // registration races exist at run time.
  std::vector<lock::WorkerLockCtx*> ctxs(n);
  for (int w = 0; w < n; ++w) ctxs[w] = lock_table.RegisterWorker(w, &stats[w]);

  const double cps = platform->CyclesPerSecond();
  for (int w = 0; w < n; ++w) {
    platform->Spawn(w, [this, w, db, &workload, &lock_table, &stats, &clocks,
                        &ctxs, policy = policy.get(), cps]() {
      WorkerStats& st = stats[w];
      WorkerClock& clock = clocks[w];
      lock::WorkerLockCtx* ctx = ctxs[w];
      std::unique_ptr<workload::TxnSource> source = workload.MakeSource(w);
      txn::Txn t;
      std::uint64_t ts_counter = 0;
      clock.Begin(options_.duration_seconds, cps);

      while (!clock.Expired() &&
             (options_.max_txns_per_worker == 0 ||
              st.committed < options_.max_txns_per_worker)) {
        source->Next(&t);
        txn::OllpPlan(&t, db);
        // Timestamps order transactions by age for wait-die; kept across
        // restarts so old transactions eventually win. Low bits break ties
        // between workers.
        t.timestamp = (++ts_counter << 8) | static_cast<std::uint64_t>(w);
        t.start_cycles = hal::Now();
        t.restarts = 0;

        bool committed = false;
        while (!committed) {
          ctx->txn_timestamp = t.timestamp;
          bool aborted = false;

          // Dynamic 2PL: acquire each lock at the access's turn, then do
          // that access's share of the work while holding it.
          for (std::size_t i = 0; i < t.accesses.size(); ++i) {
            txn::Access& a = t.accesses[i];
            hal::Cycles t0 = hal::Now();
            lock::LockTable::AcquireResult r = lock_table.Acquire(
                ctx, a.table, a.key, a.mode, policy);
            if (r == lock::LockTable::AcquireResult::kWaiting) {
              st.Add(TimeCategory::kLocking, hal::Now() - t0);
              if (!lock_table.Wait(ctx, policy)) {
                aborted = true;
                break;
              }
              t0 = hal::Now();
            } else if (r == lock::LockTable::AcquireResult::kDie) {
              st.Add(TimeCategory::kLocking, hal::Now() - t0);
              aborted = true;
              break;
            }
            st.Add(TimeCategory::kLocking, hal::Now() - t0);

            t0 = hal::Now();
            ResolveRow(db, &a);
            hal::ConsumeCycles(t.logic->OpCost(&t, i, db));
            st.Add(TimeCategory::kExecution, hal::Now() - t0);
          }

          if (aborted) {
            hal::Cycles t0 = hal::Now();
            lock_table.ReleaseAll(ctx);
            st.Add(TimeCategory::kLocking, hal::Now() - t0);
            st.aborted++;
            t.restarts++;
            // Brief jittered backoff before retrying (grows with restart
            // count, capped) to let the conflicting older txn finish.
            hal::ConsumeCycles(
                (100ull << std::min<std::uint32_t>(t.restarts, 4)) +
                hal::FastJitter(256));
            hal::CpuRelax();
            continue;
          }

          // All locks held, per-access work charged: apply the procedure's
          // real memory effects without double-charging cycles.
          hal::Cycles t0 = hal::Now();
          txn::ExecContext ec{db, &st, /*charge_cycles=*/false};
          const bool ok = t.logic->Run(&t, ec);
          st.Add(TimeCategory::kExecution, hal::Now() - t0);

          if (!ok) {
            // Stale OLLP estimate (data-dependent access set changed).
            t0 = hal::Now();
            lock_table.ReleaseAll(ctx);
            st.Add(TimeCategory::kLocking, hal::Now() - t0);
            if (!txn::OllpReplanAfterMismatch(&t, db, &st)) break;
            continue;
          }

          t0 = hal::Now();
          lock_table.ReleaseAll(ctx);
          st.Add(TimeCategory::kLocking, hal::Now() - t0);
          st.committed++;
          st.txn_latency.Record(hal::Now() - t.start_cycles);
          committed = true;
        }
      }
      clock.Finish();
    });
  }

  platform->Run();
  return FinalizeRun(stats, clocks, cps);
}

}  // namespace orthrus::engine
