#include "engine/twopl/twopl_engine.h"

#include <vector>

#include "runtime/locking_strategy.h"
#include "wal/wal.h"

namespace orthrus::engine {
namespace {

// One attempt of conventional dynamic 2PL: acquire each lock at the
// access's turn, do that access's share of the work while holding it, then
// run the procedure's memory effects with all locks held. The acquire /
// policy-wait / abort plumbing lives in runtime::LockingStrategy; this
// class only decides the interleaving.
class TwoPlStrategy final : public runtime::LockingStrategy {
 public:
  TwoPlStrategy(lock::LockTable* lock_table, lock::WorkerLockCtx* ctx,
                lock::DeadlockPolicy* policy, storage::Database* db,
                WorkerStats* st)
      : LockingStrategy(lock_table, ctx, policy, st), db_(db) {}

  runtime::TxnOutcome TryExecute(txn::Txn* t) override {
    BeginLockedAttempt(*t);
    bool aborted = false;

    for (std::size_t i = 0; i < t->accesses.size(); ++i) {
      txn::Access& a = t->accesses[i];
      if (!AcquireOrAbort(a)) {
        aborted = true;
        break;
      }
      const hal::Cycles t0 = hal::Now();
      ResolveRow(db_, &a);
      hal::ConsumeCycles(t->logic->OpCost(t, i, db_));
      stats()->Add(TimeCategory::kExecution, hal::Now() - t0);
    }

    if (aborted) {
      ReleaseAllLocks();
      return runtime::TxnOutcome::kAbort;
    }

    // All locks held, per-access work charged: apply the procedure's real
    // memory effects without double-charging cycles.
    const hal::Cycles t0 = hal::Now();
    txn::ExecContext ec{db_, stats(), /*charge_cycles=*/false};
    const bool ok = t->logic->Run(t, ec);
    stats()->Add(TimeCategory::kExecution, hal::Now() - t0);

    // Durability: capture redo images while the exclusive locks are still
    // held (the commit epoch and per-row versions are only sound there).
    if (ok && wal_ != nullptr) wal_->Capture(t, db_);
    ReleaseAllLocks();
    return ok ? runtime::TxnOutcome::kCommitted
              : runtime::TxnOutcome::kMismatch;
  }

 private:
  storage::Database* db_;
};

}  // namespace

TwoPlEngine::TwoPlEngine(EngineOptions options, DeadlockPolicyKind policy)
    : options_(options), policy_kind_(policy) {}

TwoPlEngine::~TwoPlEngine() = default;

std::string TwoPlEngine::name() const {
  switch (policy_kind_) {
    case DeadlockPolicyKind::kWaitDie:
      return "2pl-waitdie";
    case DeadlockPolicyKind::kWaitForGraph:
      return "2pl-waitforgraph";
    case DeadlockPolicyKind::kDreadlocks:
      return "2pl-dreadlocks";
  }
  return "2pl";
}

std::unique_ptr<lock::DeadlockPolicy> TwoPlEngine::MakePolicy() const {
  switch (policy_kind_) {
    case DeadlockPolicyKind::kWaitDie:
      return std::make_unique<lock::WaitDiePolicy>();
    case DeadlockPolicyKind::kWaitForGraph:
      return std::make_unique<lock::WaitForGraphPolicy>(options_.num_cores);
    case DeadlockPolicyKind::kDreadlocks:
      return std::make_unique<lock::DreadlocksPolicy>();
  }
  return nullptr;
}

RunResult TwoPlEngine::Run(hal::Platform* platform, storage::Database* db,
                           const workload::Workload& workload) {
  const int n = options_.num_cores;
  const int loggers = options_.wal != nullptr ? options_.wal->loggers() : 0;
  lock::LockTable::Config lt_config;
  lt_config.num_buckets = options_.lock_buckets;
  lt_config.max_lock_heads = options_.max_lock_heads;
  lt_config.max_workers = n;
  lock::LockTable lock_table(lt_config);

  runtime::WorkerPool pool(platform, n + loggers, options_.duration_seconds,
                           options_.rng_seed);
  std::unique_ptr<lock::DeadlockPolicy> policy = MakePolicy();

  // Worker contexts are registered up front (single-threaded) so no
  // registration races exist at run time.
  std::vector<lock::WorkerLockCtx*> ctxs(n);
  for (int w = 0; w < n; ++w) {
    ctxs[w] = lock_table.RegisterWorker(w, &pool.worker(w).stats);
  }

  const runtime::DriverOptions dopts = MakeDriverOptions(options_);
  for (int w = 0; w < n; ++w) {
    pool.Spawn(w, [this, db, &workload, &lock_table, &ctxs, &dopts,
                   policy = policy.get()](runtime::WorkerContext& ctx) {
      std::unique_ptr<workload::TxnSource> source =
          workload.MakeSource(ctx.worker_id);
      TwoPlStrategy strategy(&lock_table, ctxs[ctx.worker_id], policy, db,
                             &ctx.stats);
      runtime::TxnDriver driver(dopts, db, source.get(), &strategy, &ctx);
      std::unique_ptr<wal::Producer> producer;
      if (options_.wal != nullptr) {
        producer = std::make_unique<wal::Producer>(options_.wal,
                                                   ctx.worker_id, &ctx);
        strategy.set_wal(producer.get());
        driver.set_wal(producer.get());
      }
      driver.Run();
    });
  }
  for (int l = 0; l < loggers; ++l) {
    const int w = n + l;
    pool.AssignRole(w, runtime::WorkerRole::kLogger);
    pool.Spawn(w, [this, l](runtime::WorkerContext& ctx) {
      options_.wal->RunLogger(l, &ctx);
    });
  }

  RunResult result = pool.Run();
  if (options_.wal != nullptr) {
    ORTHRUS_CHECK_MSG(options_.wal->MeshBacklogRaw() == 0,
                      "wal fragments stranded in the mesh after shutdown");
  }
  return result;
}

}  // namespace orthrus::engine
