// Conventional two-phase locking engine: the paper's archetype of "conflated
// functionality" (Section 2.1). Every worker thread does everything — it
// runs transaction logic *and* manipulates the shared lock manager — so
// workload contention translates directly into physical contention on
// bucket latches and lock-request lists.
//
// Locks are acquired dynamically, one per access in the transaction's
// natural order, interleaved with that access's share of the execution work
// (Section 2.2's dynamic data access). Deadlock handling is pluggable:
// wait-die, wait-for graph, or Dreadlocks.
#ifndef ORTHRUS_ENGINE_TWOPL_TWOPL_ENGINE_H_
#define ORTHRUS_ENGINE_TWOPL_TWOPL_ENGINE_H_

#include <memory>

#include "engine/engine.h"
#include "lock/lock_table.h"

namespace orthrus::engine {

enum class DeadlockPolicyKind {
  kWaitDie,
  kWaitForGraph,
  kDreadlocks,
};

class TwoPlEngine final : public Engine {
 public:
  TwoPlEngine(EngineOptions options, DeadlockPolicyKind policy);
  ~TwoPlEngine() override;

  RunResult Run(hal::Platform* platform, storage::Database* db,
                const workload::Workload& workload) override;
  std::string name() const override;

 private:
  std::unique_ptr<lock::DeadlockPolicy> MakePolicy() const;

  EngineOptions options_;
  DeadlockPolicyKind policy_kind_;
};

}  // namespace orthrus::engine

#endif  // ORTHRUS_ENGINE_TWOPL_TWOPL_ENGINE_H_
