// ORTHRUS: the paper's prototype (Section 3).
//
// Functionality is partitioned across cores: `num_cc` cores run *only*
// concurrency control (each owns a disjoint partition of the lock space and
// keeps its lock meta-data strictly core-local), and the remaining cores
// run *only* transaction logic. The two kinds of cores share no data
// structures; they cooperate exclusively through per-pair latch-free SPSC
// message queues (Section 3.1).
//
// Lock acquisition follows the deadlock-avoidance discipline of Section
// 3.2: a transaction's full lock set is known up front (from analysis or
// OLLP reconnaissance), grouped by owning CC thread, and requested in
// ascending CC-thread order, one CC at a time. With the Section 3.3
// forwarding optimization each CC forwards the transaction directly to the
// next CC in its chain, so a transaction whose locks live on Ncc threads
// costs Ncc+1 messages instead of 2*Ncc; the ablation flag `forwarding`
// turns this off to measure exactly that difference.
//
// Execution threads are asynchronous (Section 3.3): each keeps a bounded
// window of in-flight transactions, starting new ones instead of blocking
// on lock grants. Lock releases are messages too, and are acknowledged
// immediately by CC threads (as in the paper); a transaction's slot is
// recycled once all its release acks arrive.
#ifndef ORTHRUS_ENGINE_ORTHRUS_ORTHRUS_ENGINE_H_
#define ORTHRUS_ENGINE_ORTHRUS_ORTHRUS_ENGINE_H_

#include "engine/engine.h"

namespace orthrus::engine {

struct OrthrusOptions {
  // Cores devoted to concurrency control; the remaining
  // (EngineOptions::num_cores - num_cc) cores execute transactions.
  int num_cc = 4;

  // Maximum transactions an execution thread keeps in flight.
  int max_inflight = 8;

  // Section 3.3 optimization: CC->CC forwarding of lock-acquisition chains.
  bool forwarding = true;

  // Batched message delivery: drain queues a cache line of messages at a
  // time instead of one message per pop. Ablation flag: off isolates the
  // index-publication amortization (every pop publishes the head) — the
  // line-packed payload layout of mp::SpscQueue stays active either way.
  bool batched_mp = true;

  // Sender-side counterpart of batched_mp: stage outgoing messages in a
  // per-(sender, receiver) mp::SendBuffer and flush a payload line per
  // tail publication, with an explicit FlushAll at the end of each
  // scheduling quantum. Ablation flag: off degrades the stage depth to 1,
  // i.e. one tail publication per message — the pre-coalescing behaviour.
  bool coalesced_send = true;

  // Adaptive drain order (mp::DrainOrder::kAdaptive): receivers snapshot
  // their input-queue depths and switch to deepest-first service only when
  // the snapshot is measurably imbalanced (max >= kImbalanceRatio * mean);
  // balanced snapshots keep the fixed sender order. Deterministic, but a
  // different event order than the fixed round-robin the equivalence
  // digests are pinned to, so it is opt-in. Applies to the SPSC meshes
  // only: in elastic mode the exec->CC path is MPSC (messages inside a
  // shard already arrive in global order, so there is no per-sender
  // queue depth to rank) and drains in fixed shard order.
  bool adaptive_drain = false;

  // Adaptive send-flush thresholds (mp::SendBuffer's adaptive_flush):
  // size each (sender, receiver) pair's flush boundary from the measured
  // per-quantum burst depth instead of always staging a full payload
  // line. Cuts the up-to-a-quantum grant latency that quantum-end-only
  // flushing costs at shallow bursts, while deep bursts keep the
  // one-publication-per-line amortization. Changes flush timing, hence
  // event order, so it is opt-in like adaptive_drain.
  bool adaptive_flush = false;

  // Receive-side mirror of adaptive_flush: size each thread's Drain
  // max_batch from the measured per-quantum burst depth
  // (mp::detail::BurstEstimator) instead of always popping up to a full
  // payload line. Shallow steady traffic then publishes the consumer index
  // after every few messages — senders see queue space sooner, cutting
  // blocking-send backpressure — while deep bursts grow the batch back to
  // the full line within a few quanta. Changes delivery granularity, hence
  // event order, so it is opt-in like adaptive_drain.
  bool adaptive_drain_batch = false;

  // CC->exec grant combining: instead of one word per grant, a CC thread
  // stages the grants produced during one scheduling quantum per exec
  // thread and packs up to 7 of them (as in-flight-window slot ids) into a
  // single message word flushed at quantum end. Fewer words on the
  // grant-heavy CC->exec path at the price of up to a quantum of added
  // grant latency — an ablation flag, measured in ablation_batching.
  // Requires max_inflight <= 256 (slot ids must fit one byte).
  bool combined_grants = false;

  // Elastic thread roles: make the CC/exec split a *runtime* property.
  // All (num_cores - num_cc) exec threads are spawned, but only a
  // controller-chosen prefix is active; the rest park (runtime::ParkGate)
  // between scheduling quanta. A closed-loop hill climber
  // (engine::ElasticController, run by CC thread 0) reads live per-epoch
  // commit counts and grows or shrinks the active set each epoch. The CC
  // thread count stays fixed — CC threads own lock-space partitions, which
  // cannot be re-sharded in flight. exec->CC traffic moves from the static
  // per-pair QueueMesh onto the dynamic-sender mp::MultiMesh, with the
  // sender register/retire drain-to-empty protocol at every park/resume.
  // Off by default: with elastic=false the engine runs the exact static
  // mesh path (byte-identical digests and sim clocks).
  bool elastic = false;

  // Floor for the active exec-thread count (elastic mode).
  int elastic_min_exec = 1;

  // Controller epoch length in (virtual or wall) seconds: how often the
  // reallocation decision runs.
  double elastic_epoch_seconds = 0.0002;

  // Active exec threads at start; 0 = all spawned exec threads.
  int elastic_initial_exec = 0;

  // Exec threads moved per controller decision.
  int elastic_step = 1;

  // Shards per CC receiver in the dynamic exec->CC mesh; 0 = adaptive
  // (mp::MultiMesh derives the ring count from the registered-sender
  // population, re-sharding future registrations as exec threads park and
  // resume). More shards cut the reservation-CAS and tail-publication
  // contention among exec senders at the cost of more queues for each CC
  // thread to drain.
  int elastic_shards = 0;

  // Elastic CC population (requires elastic=true): lock-space ownership
  // becomes a runtime-remappable layer (lock::SpaceMap). The lock space is
  // split into `cc_partitions` consistent-hash partitions, each owned by
  // one CC slot; the controller becomes the 2-D sweep-and-hold
  // (engine::ElasticController2D) over (cc_count x exec_count), and CC
  // threads above the target park on a runtime::ParkGate after handing
  // their partitions off under the epoch protocol (drain to empty, shard
  // pointer transfer, map version publication). Off by default; with
  // elastic_cc=false the engine routes partition == CC id exactly as the
  // static path always has (byte-identical digests and sim clocks).
  bool elastic_cc = false;

  // Floor for the active CC-thread count (elastic_cc mode). CC 0 runs the
  // controller and never parks, so the floor is at least 1.
  int elastic_min_cc = 1;

  // Lock partitions for elastic_cc mode; 0 = auto (2 * num_cc). More
  // partitions rebalance in finer steps but split transactions into more
  // acquisition stages (more messages per commit). The database
  // partitioner must be configured with this many partitions. Ignored
  // (and forced to num_cc) when elastic_cc is off.
  int cc_partitions = 0;

  // Relative per-epoch throughput change treated as a plateau.
  double elastic_tolerance = 0.05;

  // Use physically partitioned indexes (SPLIT ORTHRUS, Section 4.3). The
  // database must then be loaded with num_table_partitions == num_cc.
  bool split_index = false;

  // Section 3.4's alternative architecture: instead of partitioning the
  // lock space, all CC threads share one latched lock table and any one of
  // them acquires a transaction's complete lock set (in global key order,
  // so deadlock freedom is preserved; a blocked acquisition is continued by
  // whichever CC thread grants the blocking lock). Synchronization exists
  // again — but only among the CC threads, a much smaller set than all
  // cores, which is exactly the trade the paper describes.
  bool shared_cc_table = false;

  // Modeled CPU work a CC thread spends per lock insert/release. Lower
  // than the shared lock table's per-op cost (lock::LockTable::Config):
  // a CC thread's instructions and meta-data stay cache-resident because
  // the thread does nothing else — the cache-locality benefit of
  // partitioned functionality (Section 2.1 / 3.1).
  hal::Cycles cc_op_cycles = 12;

  // Whole-line reservations for the elastic exec->CC MultiMesh
  // (mp::MpscQueue's line_aligned mode): no two exec senders ever write
  // payload words into the same line, eliminating the mid-line
  // interleaving cost of the shared rings. The capacity bound is
  // multiplied by the line size to absorb padding (see Run()'s mesh
  // sizing); message encodings never produce the 0 word (TCB pointers are
  // 512-aligned non-null), which serves as the skip sentinel. Requires
  // elastic=true; off keeps the historical ring layout bit-for-bit.
  bool line_aligned_mesh = false;

  // Scales the elastic exec->CC mesh capacity relative to its provable
  // bound (1.0 = fully provisioned, never blocks). Values < 1 deliberately
  // under-provision that mesh — and only that mesh; the CC-side meshes CC
  // threads block on stay fully provisioned, so deadlock freedom is
  // unaffected (CC drains exec->CC unconditionally) — to create a real
  // send-stall regime at saturation for backpressure_admission to convert
  // into admission throttling. Bench/ablation use; 1.0 in production.
  double mesh_capacity_factor = 1.0;

  // Backpressure-driven admission (runtime::TxnAdmission::InflightCap):
  // exec threads convert their per-epoch blocking-send stall rate into an
  // AIMD reduction of the in-flight window instead of letting blocking
  // sends spin against full rings. Off by default (fixed window,
  // byte-identical).
  bool backpressure_admission = false;

  // Cap-adjustment window for backpressure_admission, in (virtual) seconds.
  double backpressure_epoch_seconds = 0.0002;

  // Vectorized CC stage: a CC thread drains its input meshes into a flat
  // batch (mp::QueueMesh::DrainInto) and processes the batch as a unit —
  // a prefetch sweep over every request's lock bucket, then in-order
  // processing with same-key run combining (one bucket walk and one grant
  // decision chain per run) and grant accumulation flushed through the
  // combined-grants staging path once per batch. Arrival order — and with
  // it wait-die priority semantics and the per-lock FIFO queues the
  // equivalence digests pin — is untouched: the batch is processed in
  // exactly the order the scalar drain would have delivered. Off by
  // default: the scalar drain path stays byte-identical (sim clocks and
  // digests). Requires max_inflight <= 256 (grant staging uses one-byte
  // slot ids, like combined_grants) and is incompatible with
  // shared_cc_table (whose CC loop is not message-shaped).
  bool vectorized_cc = false;

  // Messages gathered per CC batch (vectorized_cc). Larger batches widen
  // the prefetch sweep, lengthen combinable runs, and amortize the
  // per-quantum flush over more messages, but add up to a batch of
  // queueing delay before the first message is served. The default is
  // sized past the inbox depth a saturated fan-in sustains (~100 messages
  // in ablation_cc_batch), so the cap binds only under overload; a
  // shallow cap forces drain/flush quanta the scalar path never pays and
  // can lose to it outright (the batch-16 column of the ablation).
  int cc_batch = 256;

  // Pass-1 prefetch sweep over the batch's lock buckets (vectorized_cc).
  // Ablation knob: off skips the sweep and the per-op cost stays
  // cc_op_cycles instead of cc_prefetched_op_cycles.
  bool cc_prefetch = true;

  // Same-key run combining (vectorized_cc): adjacent batch entries for one
  // (table, key) reuse the memoized lock lookup, and a release's grant
  // sweep is deferred to the end of its run so one LockHead traversal
  // serves the whole run. Ablation knob.
  bool cc_combine = true;

  // Modeled CPU work per lock op when the batch prefetch sweep covered its
  // bucket (vectorized_cc && cc_prefetch): the demand-miss stalls that
  // dominate cc_op_cycles were overlapped by the sweep, leaving the
  // arithmetic and (now cache-resident) pointer chase.
  hal::Cycles cc_prefetched_op_cycles = 6;

  // Modeled CPU work per lock op served from the same-key memo
  // (vectorized_cc && cc_combine): no hash, no bucket walk — just the
  // queue-node append against an already-resident LockHead.
  hal::Cycles cc_run_op_cycles = 3;

  // Snapshot read path: epoch-versioned storage + CC bypass for read-only
  // transactions. Writers additionally install their committed post-images
  // into two-slot version pairs (storage/table.h) stamped with the global
  // commit epoch; a transaction classified read-only at admission
  // (runtime::TxnAdmission::Classify) then takes zero locks and sends zero
  // CC messages — it copies each row's newest version stamped at or below
  // the stable read epoch straight out of the versioned slabs, inline on
  // its exec thread. Transactions needing OLLP reconnaissance or touching
  // tables with runtime append regions (TPC-C inserts) fall back to the
  // ordinary CC path. Off by default: no version slab is allocated, no
  // epoch is ticked, no cost is charged — sim clocks and equivalence
  // digests stay byte-identical to builds without the feature.
  bool snapshot_reads = false;

  // Commit-epoch advance interval in cycles when snapshot_reads is on and
  // no WAL logger drives the clock; with durability on, the group-commit
  // logger ticks the same clock instead (wal set_epoch_clock) and this
  // knob is unused. Spinner liveness never depends on it (stalled writers
  // and stale readers fold the heartbeat mins directly — EpochClock::
  // FoldMins), so it only trades snapshot staleness against write-path
  // cost: a slower tick keeps repeat installs of a hot row in the
  // same-epoch in-place fast path instead of the copy-and-wait slow path.
  hal::Cycles snapshot_epoch_cycles = 400000;
};

class OrthrusEngine final : public Engine {
 public:
  OrthrusEngine(EngineOptions options, OrthrusOptions orthrus);

  RunResult Run(hal::Platform* platform, storage::Database* db,
                const workload::Workload& workload) override;
  std::string name() const override;

  int num_cc() const { return orthrus_.num_cc; }
  int num_exec() const { return options_.num_cores - orthrus_.num_cc; }

  // Worker-id layout inside RunResult::per_worker: CC threads first.
  bool IsCcWorker(int worker_id) const { return worker_id < orthrus_.num_cc; }

  // Elastic-mode observability for the run that Run() last completed:
  // epochs whose controller decision changed the active exec target, the
  // target in force when the run ended, and the controller's steady-state
  // (hold-phase EWMA) throughput in commits/second — the converged rate
  // with the probing epochs excluded. Zero / num_exec() / 0.0 when the
  // engine ran with elastic=false.
  std::uint64_t reallocations() const { return reallocations_; }
  int final_exec_target() const { return final_exec_target_; }
  double steady_state_throughput() const { return steady_state_throughput_; }

  // elastic_cc observability: CC-population moves (map epochs published)
  // and the CC target in force when the run ended. Zero / num_cc() when
  // the engine ran with elastic_cc=false.
  std::uint64_t cc_reallocations() const { return cc_reallocations_; }
  int final_cc_target() const { return final_cc_target_; }

 private:
  EngineOptions options_;
  OrthrusOptions orthrus_;
  std::uint64_t reallocations_ = 0;
  std::uint64_t cc_reallocations_ = 0;
  int final_exec_target_ = 0;
  int final_cc_target_ = 0;
  double steady_state_throughput_ = 0.0;
};

}  // namespace orthrus::engine

#endif  // ORTHRUS_ENGINE_ORTHRUS_ORTHRUS_ENGINE_H_
