#include "engine/orthrus/orthrus_engine.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "engine/autotune.h"
#include "hal/hal.h"
#include "hal/slab_arena.h"
#include "hal/topology.h"
#include "lock/space_map.h"
#include "mp/multi_mesh.h"
#include "mp/queue_mesh.h"
#include "mp/send_buffer.h"
#include "txn/ollp.h"
#include "wal/wal.h"

namespace orthrus::engine {
namespace {

using txn::Access;
using txn::Conflicts;
using txn::LockMode;
using txn::Txn;

constexpr int kMaxAccesses = 40;   // TPC-C NewOrder peaks at ~18
constexpr int kMaxStages = kMaxAccesses;
static_assert(kMaxStages <= 64, "stage indexes ride in 6 message bits");

// ------------------------------------------------------------- messages

// A message is a pointer to a transaction control block with a small tag in
// the low (alignment) bits — except kGrantCombined, which carries no
// pointer at all: it packs up to kMaxCombinedGrants in-flight-window slot
// ids (one byte each) plus a count, so several grants bound for the same
// exec thread cost one message word.
//
// kRelease additionally carries the index of the stage being released in
// bits [3, 9): with a remappable lock space one CC thread can own several
// of a transaction's stages, so "release my stage" is no longer
// self-describing. TCBs are 512-byte aligned to free those bits.
enum MsgTag : std::uint64_t {
  kAcquire = 0,        // exec->CC or CC->CC: acquire locks for cur_stage
  kRelease = 1,        // exec->CC: release one stage's locks of tcb
  kGrant = 2,          // CC->exec: all stages granted, execute
  kStageDone = 3,      // CC->exec (non-forwarding mode): one stage granted
  kAck = 4,            // CC->exec: release processed
  kGrantCombined = 5,  // CC->exec: packed slot-id grants (combined_grants)
  kTagMask = 7,
};

// kGrantCombined word layout: bits [0,3) tag, bits [3,7) slot count
// (1..kMaxCombinedGrants), byte i+1 the i-th slot id. Slot ids are
// in-flight-window indexes, so combined grants require max_inflight <= 256.
constexpr int kMaxCombinedGrants = 7;

// TCB alignment: 3 tag bits + 6 stage-index bits (kMaxStages <= 64).
constexpr std::uint64_t kTcbAlign = 512;
constexpr std::uint64_t kStageShift = 3;
constexpr std::uint64_t kStageFieldMask = 63;

struct Tcb;

std::uint64_t Encode(Tcb* tcb, MsgTag tag) {
  const std::uint64_t p = reinterpret_cast<std::uint64_t>(tcb);
  ORTHRUS_DCHECK((p & (kTcbAlign - 1)) == 0);
  return p | tag;
}

// Release message: the stage index travels in the low alignment bits so
// any CC thread holding the message knows which stage's shard it targets.
std::uint64_t EncodeRelease(Tcb* tcb, int stage_idx) {
  ORTHRUS_DCHECK(stage_idx >= 0 &&
                 stage_idx <= static_cast<int>(kStageFieldMask));
  return Encode(tcb, kRelease) |
         (static_cast<std::uint64_t>(stage_idx) << kStageShift);
}

Tcb* DecodeTcb(std::uint64_t w) {
  return reinterpret_cast<Tcb*>(w & ~(kTcbAlign - 1));
}

MsgTag DecodeTag(std::uint64_t w) { return static_cast<MsgTag>(w & kTagMask); }

int DecodeStage(std::uint64_t w) {
  return static_cast<int>((w >> kStageShift) & kStageFieldMask);
}

std::uint64_t EncodeCombinedGrant(const std::uint8_t* slots, int count) {
  ORTHRUS_DCHECK(count >= 1 && count <= kMaxCombinedGrants);
  std::uint64_t w =
      kGrantCombined | (static_cast<std::uint64_t>(count) << 3);
  for (int i = 0; i < count; ++i) {
    w |= static_cast<std::uint64_t>(slots[i]) << (8 * (i + 1));
  }
  return w;
}

int DecodeCombinedCount(std::uint64_t w) {
  return static_cast<int>((w >> 3) & 0xF);
}

int DecodeCombinedSlot(std::uint64_t w, int i) {
  return static_cast<int>((w >> (8 * (i + 1))) & 0xFF);
}

struct Tcb;
struct ScLock;
struct CcRequest;

// Lock state for one key in a CC thread's *local* (partitioned-mode) table.
// Plain memory: a single CC thread owns it — exactly how ORTHRUS eliminates
// synchronization and data-movement overhead on lock meta-data (S 3.1).
struct CcLock {
  std::uint64_t key = 0;
  std::uint32_t table = 0;
  bool used = false;
  CcRequest* head = nullptr;
  CcRequest* tail = nullptr;
  // O(1) grant checks / single-pass grant sweeps (see lock::LockHead).
  std::uint32_t queued_total = 0;
  std::uint32_t queued_x = 0;
};

struct CcRequest {
  Tcb* tcb = nullptr;
  CcLock* lock = nullptr;     // partitioned-mode owner lock
  ScLock* sc_lock = nullptr;  // shared-mode owner lock (Section 3.4)
  CcRequest* next = nullptr;
  CcRequest* prev = nullptr;
  std::uint16_t access_idx = 0;
  LockMode mode = LockMode::kShared;
  bool granted = false;
};

// One lock-acquisition stage: the contiguous range of the (sorted) access
// array living in one lock partition. With the static lock space a
// partition IS a CC thread (partition id == CC id); under elastic_cc the
// owning CC thread is resolved through the lock::SpaceMap at send time.
struct Stage {
  std::int32_t part = -1;
  std::uint16_t begin = 0;
  std::uint16_t end = 0;
};

// Transaction control block. Owned by one execution thread's slot; while a
// kAcquire message is in flight the fields below `cur_stage` are logically
// owned by the CC thread holding the message (ownership travels with the
// message, so no field is ever written concurrently). Alignment frees the
// low pointer bits for the tag + stage-index message encoding.
struct alignas(kTcbAlign) Tcb {
  Txn txn;
  int exec_id = -1;
  int slot = -1;
  int n_stages = 0;
  int cur_stage = 0;  // stage being (or about to be) processed
  std::array<Stage, kMaxStages> stages;

  // CC-side bookkeeping for the stage in progress.
  std::uint32_t pending = 0;  // ungranted locks at the current CC
  std::array<CcRequest*, kMaxAccesses> reqs{};

  // Exec-side bookkeeping.
  int pending_acks = 0;
  bool replan_pending = false;
  bool counted_commit = false;

  // Shared-CC mode (Section 3.4): index of the next lock to acquire in
  // global key order, the CC thread handling this transaction, and inline
  // request nodes (all of a transaction's requests live in its TCB, so no
  // cross-thread allocator is needed).
  int next_acq = 0;
  int home_cc = -1;
  std::array<CcRequest, kMaxAccesses> inline_reqs{};
};

// ------------------------------------------- CC-thread-local lock table

// Open-addressing pointer table over pool-allocated CcLock objects. Lock
// objects have stable addresses (queued requests point at them), so growth
// only rehashes the pointer array. Single-threaded; no synchronization.
class CcLockTable {
 public:
  explicit CcLockTable(std::size_t initial_slots = 1 << 14)
      : slots_(NextPowerOfTwo(initial_slots), nullptr) {}

  ~CcLockTable() {
    for (CcRequest* r : req_blocks_) delete[] r;
    for (CcLock* l : lock_blocks_) delete[] l;
  }

  CcLock* FindOrCreate(std::uint32_t table, std::uint64_t key) {
    if ((used_ + 1) * 3 > slots_.size() * 2) Grow();
    std::size_t pos = Hash(table, key) & (slots_.size() - 1);
    while (slots_[pos] != nullptr) {
      if (slots_[pos]->key == key && slots_[pos]->table == table) {
        return slots_[pos];
      }
      pos = (pos + 1) & (slots_.size() - 1);
    }
    CcLock* l = AllocLock();
    l->key = key;
    l->table = table;
    l->head = l->tail = nullptr;
    slots_[pos] = l;
    used_++;
    return l;
  }

  CcRequest* AllocRequest() {
    if (free_ == nullptr) NewRequestBlock();
    CcRequest* r = free_;
    free_ = r->next;
    r->next = r->prev = nullptr;
    r->granted = false;
    return r;
  }

  void FreeRequest(CcRequest* r) {
    r->tcb = nullptr;
    r->lock = nullptr;
    r->prev = nullptr;
    r->next = free_;
    free_ = r;
  }

  // Batch-prefetch hint for (table, key): the slot word, then — when the
  // lock already exists — the lock object behind it (two-level group
  // prefetch). Read-only and cost-free: a pure hardware hint, so sweeping
  // a whole batch of these ahead of processing is always safe.
  void PrefetchFor(std::uint32_t table, std::uint64_t key) const {
    const std::size_t pos = Hash(table, key) & (slots_.size() - 1);
    hal::Prefetch(&slots_[pos]);
    if (slots_[pos] != nullptr) hal::Prefetch(slots_[pos]);
  }

  std::size_t used() const { return used_; }

 private:
  static std::size_t Hash(std::uint32_t table, std::uint64_t key) {
    std::uint64_t h = (key ^ (static_cast<std::uint64_t>(table) << 56)) *
                      0x9E3779B97F4A7C15ull;
    return static_cast<std::size_t>(h ^ (h >> 32));
  }

  void Grow() {
    std::vector<CcLock*> bigger(slots_.size() * 2, nullptr);
    const std::size_t mask = bigger.size() - 1;
    for (CcLock* l : slots_) {
      if (l == nullptr) continue;
      std::size_t pos = Hash(l->table, l->key) & mask;
      while (bigger[pos] != nullptr) pos = (pos + 1) & mask;
      bigger[pos] = l;
    }
    slots_ = std::move(bigger);
  }

  CcLock* AllocLock() {
    constexpr int kBlock = 4096;
    if (next_lock_ == locks_in_block_) {
      // lint:allow-alloc cold path: block pool growth, amortized over 4096
      lock_blocks_.push_back(new CcLock[kBlock]);
      next_lock_ = 0;
      locks_in_block_ = kBlock;
    }
    return &lock_blocks_.back()[next_lock_++];
  }

  void NewRequestBlock() {
    constexpr int kBlock = 1024;
    // lint:allow-alloc cold path: block pool growth, amortized over 1024
    CcRequest* block = new CcRequest[kBlock];
    req_blocks_.push_back(block);
    for (int i = 0; i < kBlock; ++i) {
      block[i].next = free_;
      free_ = &block[i];
    }
  }

  std::vector<CcLock*> slots_;
  std::size_t used_ = 0;
  CcRequest* free_ = nullptr;
  std::vector<CcRequest*> req_blocks_;
  std::vector<CcLock*> lock_blocks_;
  int next_lock_ = 0;
  int locks_in_block_ = 0;
};

// -------------------------------------- shared CC lock table (Section 3.4)

// One latched lock table shared by all CC threads: the paper's alternative
// to partitioning the lock space. A transaction's home CC thread acquires
// its locks one at a time in global key order (deadlock freedom by ordered
// acquisition); when a lock is busy the transaction parks in that lock's
// FIFO queue, and whichever CC thread later grants the lock continues the
// acquisition. Bucket latches are contended only by CC threads.
struct ScLock {
  std::uint32_t table = 0;
  std::uint64_t key = 0;
  CcRequest* head = nullptr;
  CcRequest* tail = nullptr;
  ScLock* next_in_bucket = nullptr;
  std::uint32_t queued_total = 0;
  std::uint32_t queued_x = 0;
};

class SharedCcTable {
 public:
  SharedCcTable(int n_cc, hal::Cycles op_cycles,
                std::size_t n_buckets = 1 << 14,
                std::size_t heads_per_cc = 1 << 18)
      : op_cycles_(op_cycles),
        mask_(NextPowerOfTwo(n_buckets) - 1),
        // lint:allow-alloc setup: built once per run
        buckets_(std::make_unique<Bucket[]>(mask_ + 1)),
        head_pool_(static_cast<std::size_t>(n_cc) * heads_per_cc),
        shard_next_(n_cc),
        shard_end_(n_cc) {
    for (int c = 0; c < n_cc; ++c) {
      shard_next_[c] = c * heads_per_cc;
      shard_end_[c] = (c + 1) * heads_per_cc;
    }
  }

  // Continues tcb's ordered acquisition from tcb->next_acq. Returns true
  // once every lock is granted. Must be called by a CC core.
  bool ContinueAcquire(Tcb* tcb) {
    // Whichever CC thread granted the parked request owns the transaction's
    // acquisition cursor now; the bucket latch hand-off is the sync edge.
    hal::RaceCheck(&tcb->next_acq, sizeof(tcb->next_acq), /*is_write=*/true,
                   "orthrus.tcb.next_acq");
    Txn& t = tcb->txn;
    while (tcb->next_acq < static_cast<int>(t.accesses.size())) {
      const Access& a = t.accesses[tcb->next_acq];
      Bucket* b = &buckets_[Hash(a.table, a.key) & mask_];
      b->latch.Lock();
      hal::ConsumeCycles(op_cycles_);
      ScLock* lock = FindOrCreate(b, a.table, a.key);
      CcRequest* r = &tcb->inline_reqs[tcb->next_acq];
      r->tcb = tcb;
      r->access_idx = static_cast<std::uint16_t>(tcb->next_acq);
      r->mode = a.mode;
      r->next = nullptr;
      r->prev = lock->tail;
      r->sc_lock = lock;
      const bool grantable = a.mode == LockMode::kExclusive
                                 ? lock->queued_total == 0
                                 : lock->queued_x == 0;
      if (lock->tail != nullptr) {
        lock->tail->next = r;
      } else {
        lock->head = r;
      }
      lock->tail = r;
      lock->queued_total++;
      if (a.mode == LockMode::kExclusive) lock->queued_x++;
      r->granted = grantable;
      b->latch.Unlock();
      // Branch on the latch-protected local, never on r->granted after the
      // unlock: a releaser on another CC thread may grant the parked
      // request in that window, and a stale re-read would have this thread
      // and the granter both continue the same transaction.
      if (!grantable) return false;  // parked; a granter will continue us
      tcb->next_acq++;
    }
    return true;
  }

  // Releases every lock tcb holds (indexes [0, next_acq)), collecting the
  // transactions whose parked request became granted; the caller continues
  // them outside the latches.
  void ReleaseAll(Tcb* tcb, std::vector<Tcb*>* runnable) {
    for (int i = 0; i < tcb->next_acq; ++i) {
      CcRequest* r = &tcb->inline_reqs[i];
      ScLock* lock = r->sc_lock;
      Bucket* b = &buckets_[Hash(lock->table, lock->key) & mask_];
      b->latch.Lock();
      hal::ConsumeCycles(op_cycles_);
      Unlink(lock, r);
      bool x_seen = false;
      for (CcRequest* f = lock->head; f != nullptr; f = f->next) {
        if (!f->granted) {
          const bool grantable = f->mode == LockMode::kExclusive
                                     ? f == lock->head
                                     : !x_seen;
          if (!grantable) break;
          f->granted = true;
          hal::RaceCheck(&f->tcb->next_acq, sizeof(f->tcb->next_acq),
                         /*is_write=*/true, "orthrus.tcb.next_acq");
          f->tcb->next_acq++;  // the lock it was parked on
          runnable->push_back(f->tcb);
        }
        if (f->mode == LockMode::kExclusive) x_seen = true;
      }
      b->latch.Unlock();
    }
  }

 private:
  struct alignas(kCacheLineSize) Bucket {
    hal::SpinLock latch;
    ScLock* chain ORTHRUS_GUARDED_BY(latch) = nullptr;
  };

  static std::size_t Hash(std::uint32_t table, std::uint64_t key) {
    std::uint64_t h = (key ^ (static_cast<std::uint64_t>(table) << 56)) *
                      0x9E3779B97F4A7C15ull;
    return static_cast<std::size_t>(h ^ (h >> 32));
  }

  ScLock* FindOrCreate(Bucket* b, std::uint32_t table, std::uint64_t key)
      ORTHRUS_REQUIRES(b->latch) {
    for (ScLock* l = b->chain; l != nullptr; l = l->next_in_bucket) {
      if (l->key == key && l->table == table) return l;
    }
    const int me = hal::CoreId();
    ORTHRUS_CHECK_MSG(shard_next_[me] < shard_end_[me],
                      "shared-CC lock-head shard exhausted");
    ScLock* l = &head_pool_[shard_next_[me]++];
    l->table = table;
    l->key = key;
    l->head = l->tail = nullptr;
    l->queued_total = 0;
    l->queued_x = 0;
    l->next_in_bucket = b->chain;
    b->chain = l;
    return l;
  }

  static void Unlink(ScLock* lock, CcRequest* r) {
    ORTHRUS_DCHECK(lock->queued_total > 0);
    lock->queued_total--;
    if (r->mode == LockMode::kExclusive) lock->queued_x--;
    if (r->prev != nullptr) {
      r->prev->next = r->next;
    } else {
      lock->head = r->next;
    }
    if (r->next != nullptr) {
      r->next->prev = r->prev;
    } else {
      lock->tail = r->prev;
    }
    r->prev = r->next = nullptr;
  }

  hal::Cycles op_cycles_;
  std::size_t mask_;
  std::unique_ptr<Bucket[]> buckets_;
  std::vector<ScLock> head_pool_;
  std::vector<std::size_t> shard_next_;
  std::vector<std::size_t> shard_end_;
};

// --------------------------------------------------------- shared state

using Mesh = mp::QueueMesh<std::uint64_t>;
using MultiMesh = mp::MultiMesh<std::uint64_t>;
using SendBuf = mp::SendBuffer<std::uint64_t>;
using MultiSendBuf = mp::MultiSendBuffer<std::uint64_t>;

// One lock partition's owner-private state (elastic_cc mode). The shard —
// not the CC thread — owns the lock table and the held-request count, so a
// partition handoff moves all of its lock state with one pointer-ownership
// transfer and the teardown accounting stays exact across any number of
// handoffs.
struct CcShard {
  explicit CcShard(std::size_t lock_slots) : locks(lock_slots) {}
  CcLockTable locks;
  std::uint64_t held = 0;  // requests enqueued and not yet released
};

using SpaceMap = lock::SpaceMap<CcShard>;
using Router = lock::LockSpaceRouter<CcShard>;

struct Shared {
  int n_cc = 0;
  int n_exec = 0;
  bool forwarding = true;
  bool combined_grants = false;
  bool adaptive_flush = false;
  bool elastic = false;
  // Messages popped per PopBatch on the receive side; 1 is the unbatched
  // ablation baseline.
  std::size_t drain_batch = Mesh::kDefaultBatch;
  // Messages staged per (sender, receiver) pair before a send buffer
  // flushes; 1 is the per-message-publication ablation baseline
  // (coalesced_send off).
  std::size_t send_stage = SendBuf::kDefaultStage;
  // Sender visit order when draining (adaptive_drain ablation flag).
  mp::DrainOrder drain_order = mp::DrainOrder::kRoundRobin;
  // Receive-side mirror of adaptive_flush: each thread sizes its Drain
  // max_batch from its measured per-quantum burst depth.
  bool adaptive_drain_batch = false;
  hal::Cycles cc_op_cycles = 20;
  // Vectorized CC stage (see OrthrusOptions::vectorized_cc): flat-batch
  // drain, prefetch sweep, same-key run combining, once-per-batch grant
  // flush through the combined-grants staging path.
  bool vectorized_cc = false;
  std::size_t cc_batch = 256;
  bool cc_prefetch = true;
  bool cc_combine = true;
  hal::Cycles cc_prefetched_op_cycles = 6;
  hal::Cycles cc_run_op_cycles = 3;

  // Snapshot read path (OrthrusOptions::snapshot_reads): classified
  // read-only transactions execute lock-free against the epoch-versioned
  // slabs, inline on their exec thread — zero CC messages. Writers install
  // post-images under their held locks in Execute. The epoch clock lives
  // on the database (set up by Run); heartbeat slot = exec id.
  bool snapshot_reads = false;

  // Queue meshes, indexed (sender, receiver).
  Mesh exec_to_cc;  // (exec, cc)  acquire + release (static roles)
  Mesh cc_to_cc;    // (cc, cc)    forward
  Mesh cc_to_exec;  // (cc, exec)  grant / stage-done / ack

  // Elastic mode replaces exec_to_cc with the dynamic-sender MPSC mesh:
  // exec threads come and go (park/resume) without a mesh rebuild. The
  // CC-side meshes stay static — the CC population is fixed, and every
  // cc_to_exec receiver exists for the whole run (a parked exec simply has
  // an empty queue: it drains to empty before retiring).
  MultiMesh exec_to_cc_multi;

  // Elastic-mode doorbell: how many exec threads should be active. Exec
  // thread e runs while e < target; CC thread 0's controller moves it.
  runtime::ParkGate exec_gate;
  hal::Atomic<std::uint64_t> reallocations{0};
  // Exec-thread worker contexts, for the controller's epoch snapshot reads.
  std::vector<runtime::WorkerContext*> exec_ctxs;

  // Elastic CC population (elastic_cc mode): the lock space is n_parts
  // consistent-hash partitions owned through the SpaceMap; CC threads
  // above cc_gate's target hand their partitions off and park. Router
  // slots are worker ids (CC threads first, like everything else).
  bool elastic_cc = false;
  int n_parts = 0;
  SpaceMap* space = nullptr;
  const lock::HashRing* ring = nullptr;
  runtime::ParkGate cc_gate;
  hal::Atomic<std::uint64_t> cc_reallocations{0};

  hal::Atomic<std::uint64_t> execs_done{0};
  hal::Atomic<std::uint64_t> inflight_global{0};

  // Durability (null = off): each exec thread owns wal producer slot
  // exec_id; logger workers ride above the CC/exec cores.
  wal::GroupCommitLog* wal = nullptr;

  // Section 3.4 mode: non-null when CC threads share one latched table.
  std::unique_ptr<SharedCcTable> shared_cc;
};

// ------------------------------------------------------------ CC thread

class CcThread {
 public:
  // `controller` (1-D) or `controller2d` (elastic_cc) is non-null only on
  // the CC thread that runs the elastic reallocation epochs (CC 0);
  // `epoch_cycles` is that controller's decision period in cycles.
  CcThread(int cc_id, Shared* shared, WorkerStats* stats,
           std::size_t lock_slots, ElasticController* controller = nullptr,
           ElasticController2D* controller2d = nullptr,
           hal::Cycles epoch_cycles = 0)
      : cc_id_(cc_id),
        shared_(shared),
        stats_(stats),
        // elastic_cc: lock tables live in the SpaceMap's shards; the
        // thread-local table stays unused (minimal footprint).
        locks_(shared->elastic_cc ? 2 : lock_slots),
        out_cc_(&shared->cc_to_cc, cc_id, shared->send_stage,
                shared->adaptive_flush),
        out_exec_(&shared->cc_to_exec, cc_id, shared->send_stage,
                  shared->adaptive_flush),
        controller_(controller),
        controller2d_(controller2d),
        epoch_cycles_(epoch_cycles) {
    // vectorized_cc stages its grants through the same per-exec stash the
    // combined_grants path flushes, so either knob sizes it.
    if (shared->combined_grants || shared->vectorized_cc) {
      grant_stash_.resize(static_cast<std::size_t>(shared->n_exec));
    }
    if (shared->vectorized_cc) {
      // Setup-time sizing: the flat drain buffer never grows on the hot
      // path (DrainInto stops at its capacity; the remainder stays queued).
      batch_buf_.resize(shared->cc_batch);
    }
    if (shared->elastic_cc) {
      // lint:allow-alloc setup
      router_ = std::make_unique<Router>(shared->space, cc_id);
    }
  }

  void Main() {
    // Polling cached-empty queues costs L1 hits; a small cap keeps grant
    // latency low while still bounding event rates when truly idle.
    hal::IdleBackoff idle(128);
    while (true) {
      // Read the termination predicate *before* draining: if it was true
      // before a drain that found nothing, no message can arrive later.
      const bool maybe_done = RunDrained();
      // elastic_cc quantum preamble: refresh the map view and hand off
      // shards the new epoch moved away; read the park barrier before the
      // drain, so an empty drain after a true barrier proves quiescence
      // (the same read-predicate-then-drain shape as maybe_done).
      bool may_park = false;
      if (shared_->elastic_cc) {
        MaybeRemap();
        may_park = ParkBarrierHolds();
      }
      const bool progress =
          shared_->vectorized_cc ? DrainVectorized() : DrainOnce();
      // End of the scheduling quantum: grants, forwards, and acks staged
      // while handling this quantum's messages go out before we either
      // loop or idle — a staged message must never wait on an idle sender.
      FlushCombinedGrants();
      out_cc_.FlushAll();
      out_exec_.FlushAll();
      if (controller_ != nullptr || controller2d_ != nullptr) {
        MaybeReallocate();
      }
      if (progress) {
        idle.Reset();
        continue;
      }
      if (maybe_done) {
        ORTHRUS_CHECK_MSG(held_ == 0, "CC exiting with locks held");
        ORTHRUS_CHECK_MSG(out_cc_.Pending() == 0 && out_exec_.Pending() == 0,
                          "CC exiting with staged messages");
        ORTHRUS_CHECK_MSG(StashedGrants() == 0,
                          "CC exiting with stashed combined grants");
        break;
      }
      if (may_park) {
        ParkCc();
        idle.Reset();
        continue;
      }
      const hal::Cycles t0 = hal::Now();
      idle.Idle();
      stats_->Add(TimeCategory::kWaiting, hal::Now() - t0);
    }
  }

 private:
  bool RunDrained() {
    return shared_->execs_done.load() ==
               static_cast<std::uint64_t>(shared_->n_exec) &&
           shared_->inflight_global.load() == 0;
  }

  bool DrainOnce() {
    const auto handle = [this](std::uint64_t w) { Handle(w); };
    const std::size_t batch = DrainBatch();
    // Elastic mode: exec senders live on the dynamic MPSC mesh (fan-in is
    // a set of shared shard queues per CC thread, drained in fixed shard
    // order — drain_order does not apply there: messages inside a shard
    // already arrive in global order, so there is no per-sender depth to
    // rank); static mode keeps the per-pair SPSC matrix, where
    // drain_order picks the sender visit order.
    std::size_t n =
        shared_->elastic
            ? shared_->exec_to_cc_multi.Drain(cc_id_, handle, batch)
            : shared_->exec_to_cc.Drain(cc_id_, handle, batch,
                                        shared_->drain_order);
    // The CC->CC mesh carries forwarding chains — and, under elastic_cc,
    // misrouted messages chasing a shard's current owner, which exist
    // whether or not forwarding is on.
    if (shared_->forwarding || shared_->elastic_cc) {
      n += shared_->cc_to_cc.Drain(cc_id_, handle, batch,
                                   shared_->drain_order);
    }
    drain_est_.Observe(shared_->adaptive_drain_batch, n);
    return n != 0;
  }

  // Drain granularity for this quantum: the configured batch, or the
  // burst-depth estimate when adaptive_drain_batch is on (the receive-side
  // mirror of SendBuffer's adaptive_flush).
  std::size_t DrainBatch() const {
    return drain_est_.Batch(shared_->adaptive_drain_batch,
                            shared_->drain_batch);
  }

  // --- vectorized CC stage (vectorized_cc) -----------------------------

  // Batch-shaped counterpart of DrainOnce: gathers up to cc_batch messages
  // into the flat buffer (same mesh visit order and per-sender FIFO as the
  // scalar drain; anything past the cap stays queued for the next quantum)
  // and processes the span as a unit.
  bool DrainVectorized() {
    const std::size_t batch = DrainBatch();
    std::uint64_t* buf = batch_buf_.data();
    const std::size_t cap = batch_buf_.size();
    std::size_t n =
        shared_->elastic
            ? shared_->exec_to_cc_multi.DrainInto(cc_id_, buf, cap, batch)
            : shared_->exec_to_cc.DrainInto(cc_id_, buf, cap, batch,
                                            shared_->drain_order);
    if (shared_->forwarding || shared_->elastic_cc) {
      n += shared_->cc_to_cc.DrainInto(cc_id_, buf + n, cap - n, batch,
                                       shared_->drain_order);
    }
    drain_est_.Observe(shared_->adaptive_drain_batch, n);
    if (n != 0) ProcessBatch(n);
    return n != 0;
  }

  // The gather -> prefetch -> process -> scatter pipeline over one drained
  // span. Messages are handled in exactly the order the scalar drain would
  // have delivered them — the batch view changes how the work is done (one
  // prefetch sweep, memoized same-key lookups, one deferred grant sweep
  // per release run), never what is decided.
  void ProcessBatch(std::size_t n) {
    stats_->cc_batches++;
    stats_->cc_batch_msgs += n;
    // Single-owner staging: only this CC thread ever touches its batch
    // buffer; the tag documents (and, under race_detect, verifies) that.
    hal::RaceCheck(batch_buf_.data(), n * sizeof(std::uint64_t),
                   /*is_write=*/true, "orthrus.cc.batch_buf");
    if (shared_->cc_prefetch) {
      const hal::Cycles t0 = hal::Now();
      PrefetchSweepPass(n);
      stats_->Add(TimeCategory::kLocking, hal::Now() - t0);
    }
    in_batch_ = true;
    ResetMemo();
    for (std::size_t i = 0; i < n; ++i) Handle(batch_buf_[i]);
    FlushGrantSweep();
    in_batch_ = false;
    ResetMemo();
  }

  // Pass one: walk the batch issuing prefetch hints for every request's
  // TCB, lock bucket, and (for releases) queued request nodes, then charge
  // the sweep's overlapped fill window once. Hints only — nothing is
  // decided here, and under elastic_cc only shards this thread currently
  // owns (raw-load check; eventual visibility suffices for a hint) are
  // touched, so no foreign table is ever read mid-mutation.
  void PrefetchSweepPass(std::size_t n) {
    std::size_t lines = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t w = batch_buf_[i];
      Tcb* tcb = DecodeTcb(w);
      hal::Prefetch(tcb);
      lines++;
      const MsgTag tag = DecodeTag(w);
      if (tag == kAcquire) {
        const Stage& stage = tcb->stages[tcb->cur_stage];
        const CcLockTable* locks = TableForPrefetch(stage.part);
        if (locks == nullptr) continue;
        for (std::uint16_t a = stage.begin; a < stage.end; ++a) {
          const Access& acc = tcb->txn.accesses[a];
          locks->PrefetchFor(acc.table, acc.key);
          lines += 2;
        }
      } else if (tag == kRelease) {
        const Stage* stage = StageForRelease(tcb, w);
        if (stage == nullptr) continue;
        for (std::uint16_t a = stage->begin; a < stage->end; ++a) {
          CcRequest* r = tcb->reqs[a];
          if (r != nullptr) {
            hal::Prefetch(r);
            lines++;
          }
        }
      }
    }
    hal::PrefetchSweep(lines);
  }

  // Lock table whose buckets pass one may hint for partition `part`, or
  // null when this thread does not currently own it (the message will be
  // re-routed by Handle anyway).
  const CcLockTable* TableForPrefetch(int part) const {
    if (!shared_->elastic_cc) return &locks_;
    if (shared_->space->ShardOwnerRaw(part) !=
        static_cast<std::uint64_t>(cc_id_)) {
      return nullptr;
    }
    return &shared_->space->shard(part)->locks;
  }

  // The stage a kRelease message addresses: explicit in the message under
  // elastic_cc, this thread's (unique) stage otherwise.
  const Stage* StageForRelease(Tcb* tcb, std::uint64_t w) const {
    if (shared_->elastic_cc) {
      const Stage& stage = tcb->stages[DecodeStage(w)];
      return shared_->space->ShardOwnerRaw(stage.part) ==
                     static_cast<std::uint64_t>(cc_id_)
                 ? &stage
                 : nullptr;
    }
    for (int s = 0; s < tcb->n_stages; ++s) {
      if (tcb->stages[s].part == cc_id_) return &tcb->stages[s];
    }
    return nullptr;
  }

  // Same-key memo (cc_combine): the last (table, key) resolved this batch
  // and the lock it mapped to. A hit must match the exact table instance
  // plus (table, key) — then staleness is impossible to get wrong: CcLock
  // objects are pool-allocated (never freed or moved) and FindOrCreate is
  // deterministic, so whatever the memo remembers is still the answer.
  void ResetMemo() {
    memo_locks_ = nullptr;
    last_lock_ = nullptr;
    last_table_ = 0;
    last_key_ = 0;
  }

  void SetMemo(CcLockTable* locks, std::uint32_t table, std::uint64_t key,
               CcLock* lock) {
    memo_locks_ = locks;
    last_table_ = table;
    last_key_ = key;
    last_lock_ = lock;
  }

  // Flushes the deferred release grant sweep (cc_combine): one
  // GrantFollowers pass serves a whole same-lock release run. Grants are
  // monotone in unlinks — nothing between the deferral and the flush can
  // make a grantable follower ungrantable — so one final sweep grants
  // exactly what incremental sweeps would have. The pending pointer is
  // cleared *before* the sweep: GrantFollowers can advance a transaction
  // into AcquireStage on this same thread (elastic_cc local continue),
  // which may legally re-enter the deferral machinery.
  void FlushGrantSweep() {
    CcLock* lock = grant_pending_;
    if (lock == nullptr) return;
    grant_pending_ = nullptr;
    GrantFollowers(lock);
  }

  // --- elastic_cc: epoch handoff, retire, resume -----------------------

  // Quantum-boundary epoch work: refresh the routing view and hand off
  // every shard we own whose owner under the current map is another CC
  // slot. The sweep runs every quantum, NOT just when the epoch moved: a
  // shard can be relinquished *to us* under an older map after we already
  // observed the newest one (the relinquisher lagged), and no further
  // version change would ever re-trigger a change-gated sweep — the shard
  // would strand on us while every message for it self-requeues at the
  // map's owner. The guard scan uses raw loads (eventual visibility is
  // enough, it re-runs every quantum, and the steady-state scan must not
  // bill modeled traffic); a hit is confirmed with an acquire load so the
  // previous owner's shard writes happen-before our release-store to the
  // next owner — without that acquire a plain-read-then-store would break
  // the transfer chain's ordering. We are the only thread that may touch
  // an owned shard, and we hold no reference into it between messages, so
  // the release-store inside Relinquish is the entire transfer.
  void MaybeRemap() {
    router_->Refresh();
    for (int p = 0; p < shared_->n_parts; ++p) {
      const int owner = router_->OwnerOf(p);
      if (owner == cc_id_) continue;
      if (shared_->space->ShardOwnerRaw(p) !=
          static_cast<std::uint64_t>(cc_id_)) {
        continue;
      }
      if (shared_->space->ShardOwner(p) ==
          static_cast<std::uint64_t>(cc_id_)) {
        shared_->space->Relinquish(p, static_cast<std::uint64_t>(owner));
      }
    }
  }

  // The drain-to-empty retire barrier (see lock::SpaceMap): this slot may
  // park only when the controller retired it, every router has observed an
  // epoch at or past our view (so nothing routes here anymore), our own
  // view maps no partition here, and no shard handoff still names us.
  // The own-view check closes the claim window: the gate can drop between
  // our Refresh and this read (a reactivate-then-retire pair of epochs),
  // in which case our table — and every router's table at that same stale
  // version, which the observation barrier would accept — can still route
  // partitions to us even though no shard word names us yet. Refusing to
  // park until a refresh adopts a map that excludes us forces the barrier
  // to be evaluated at (at least) the retirement epoch. Ordering matters:
  // the observation barrier is read before the ownership scan, so a
  // transfer initiated under an older view is either visible to the scan
  // or impossible.
  bool ParkBarrierHolds() {
    if (cc_id_ == 0) return false;  // the controller thread never parks
    if (shared_->cc_gate.Active(cc_id_)) return false;
    if (!shared_->space->AllObservedAtLeast(router_->version())) {
      return false;
    }
    for (int p = 0; p < shared_->n_parts; ++p) {
      if (router_->OwnerOf(p) == cc_id_) return false;
      if (shared_->space->ShardOwner(p) ==
          static_cast<std::uint64_t>(cc_id_)) {
        return false;
      }
    }
    return true;
  }

  void ParkCc() {
    ORTHRUS_CHECK_MSG(out_cc_.Pending() == 0 && out_exec_.Pending() == 0 &&
                          StashedGrants() == 0,
                      "CC parking with staged messages");
    router_->Deactivate();
    // The park predicate also watches the shard owner words: if the
    // target briefly rose and fell again while this thread never got a
    // quantum (possible only under native scheduling), a peer may have
    // relinquished a shard *to* us during the active window. Only the
    // owner may relinquish, so we must wake, hand the shard onward under
    // the current map (MaybeRemap at the next quantum top), and only
    // then re-park — otherwise every message for that shard would chase
    // an owner that never runs. Raw loads: eventual visibility is all
    // the wake-up needs, and the spin must not bill modeled traffic.
    const hal::Cycles parked = shared_->cc_gate.Park(
        cc_id_, [this] { return RunDrained() || OwnsAnyShardRaw(); });
    stats_->Add(TimeCategory::kWaiting, parked);
    // No refresh here: the next quantum's MaybeRemap rebuilds the view
    // (Deactivate zeroed the cached version) and runs the relinquish
    // sweep, which is how a shard handed to us mid-park is passed onward.
  }

  bool OwnsAnyShardRaw() const {
    for (int p = 0; p < shared_->n_parts; ++p) {
      if (shared_->space->ShardOwnerRaw(p) ==
          static_cast<std::uint64_t>(cc_id_)) {
        return true;
      }
    }
    return false;
  }

  // --- elastic reallocation epochs (controller CC thread only) ---------

  // Once per epoch: read the exec threads' published commit counters,
  // feed the measured commit *rate* to the controller, and ring the park
  // gate when the target moves. Runs between quanta, so a decision never
  // interleaves with message handling. The sample is normalized by the
  // interval actually elapsed — epochs only end at quantum boundaries, so
  // a long quantum stretches one; an unnormalized count would inflate
  // that epoch's sample in proportion and skew the sweep's comparison.
  void MaybeReallocate() {
    const hal::Cycles now = hal::Now();
    if (next_epoch_ == 0) {  // first quantum: anchor the epoch clock
      next_epoch_ = now + epoch_cycles_;
      last_epoch_now_ = now;
      return;
    }
    if (now < next_epoch_) return;
    next_epoch_ = now + epoch_cycles_;
    std::uint64_t committed = 0;
    for (runtime::WorkerContext* w : shared_->exec_ctxs) {
      committed += w->ReadEpochSnapshot().committed;
    }
    const double elapsed = static_cast<double>(now - last_epoch_now_);
    const double rate =
        static_cast<double>(committed - last_epoch_committed_) / elapsed;
    last_epoch_committed_ = committed;
    last_epoch_now_ = now;
    // Controller debugging/bench observability (host-side, unmodeled).
    static const bool trace = std::getenv("ORTHRUS_ELASTIC_TRACE") != nullptr;
    if (controller2d_ != nullptr) {
      // 2-D reallocation: exec moves ring the exec gate exactly as the 1-D
      // controller's; CC moves publish a new lock-space epoch first, so a
      // resumed CC thread's first Refresh sees a map that includes it and
      // a retiring one sees the map that excludes it.
      const ElasticController2D::Target before = controller2d_->target();
      const ElasticController2D::Target t = controller2d_->Step(rate);
      if (t.exec != before.exec) {
        shared_->exec_gate.SetTarget(t.exec);
        shared_->reallocations.fetch_add(1);
      }
      if (t.cc != before.cc) {
        shared_->space->Publish(
            shared_->ring->OwnersFor(shared_->n_parts, t.cc));
        shared_->cc_gate.SetTarget(t.cc);
        shared_->cc_reallocations.fetch_add(1);
        shared_->reallocations.fetch_add(1);
      }
      if (trace) {
        std::fprintf(
            stderr,
            "[elastic2d] epoch@%llu rate=%.3g/cycle cc %d->%d exec %d->%d\n",
            static_cast<unsigned long long>(now), rate, before.cc, t.cc,
            before.exec, t.exec);
      }
      return;
    }
    const int before = controller_->target();
    const int target = controller_->Step(rate);  // commits per cycle
    if (target != before) {
      shared_->exec_gate.SetTarget(target);
      shared_->reallocations.fetch_add(1);
    }
    if (trace) {
      std::fprintf(stderr,
                   "[elastic] epoch@%llu rate=%.3g/cycle target %d->%d\n",
                   static_cast<unsigned long long>(now), rate, before,
                   target);
    }
  }

  // --- combined grants -------------------------------------------------

  std::size_t StashedGrants() const {
    std::size_t n = 0;
    for (const auto& s : grant_stash_) n += s.size();
    return n;
  }

  // Packs each exec thread's stashed grant slots into words of up to
  // kMaxCombinedGrants and stages them for the quantum flush.
  void FlushCombinedGrants() {
    if (!shared_->combined_grants && !shared_->vectorized_cc) return;
    for (int e = 0; e < shared_->n_exec; ++e) {
      std::vector<std::uint8_t>& stash =
          grant_stash_[static_cast<std::size_t>(e)];
      std::size_t i = 0;
      while (i < stash.size()) {
        const int count = static_cast<int>(
            std::min<std::size_t>(kMaxCombinedGrants, stash.size() - i));
        out_exec_.Send(e, EncodeCombinedGrant(&stash[i], count));
        stats_->messages_sent++;
        i += static_cast<std::size_t>(count);
      }
      stash.clear();
    }
  }

  void Handle(std::uint64_t word) {
    const hal::Cycles t0 = hal::Now();
    Tcb* tcb = DecodeTcb(word);
    const MsgTag tag = DecodeTag(word);
    if (shared_->elastic_cc) {
      // Receipt authority check: only the shard's current owner may touch
      // its lock state. A message that lands elsewhere (stale sender view,
      // or a handoff store not yet observed) is re-routed under *this
      // thread's current map view* — never the raw shard-owner word: the
      // retire barrier only covers router views (all observed >= the
      // retirement epoch), so an owner-word target could name a CC slot
      // that relinquishes and parks before the forward lands. Under the
      // router view the forward may reach the new owner before the shard
      // does; it then self-requeues there (ShardOwner still the source)
      // until the relinquish lands — bounded by the source's next quantum
      // refresh, and never addressed to a parked slot.
      const int part = tag == kAcquire
                           ? tcb->stages[tcb->cur_stage].part
                           : tag == kRelease
                                 ? tcb->stages[DecodeStage(word)].part
                                 : -1;
      if (part >= 0 && shared_->space->ShardOwner(part) !=
                           static_cast<std::uint64_t>(cc_id_)) {
        out_cc_.Send(router_->OwnerOf(part), word);
        stats_->messages_sent++;
        stats_->Add(TimeCategory::kLocking, hal::Now() - t0);
        return;
      }
    }
    switch (tag) {
      case kAcquire:
        ProcessAcquire(tcb);
        break;
      case kRelease:
        ProcessRelease(tcb, word);
        break;
      default:
        ORTHRUS_CHECK_MSG(false, "unexpected message at CC thread");
    }
    stats_->Add(TimeCategory::kLocking, hal::Now() - t0);
  }

  // Enqueues the current stage's lock requests into the stage partition's
  // table. Returns true when every lock was granted immediately; otherwise
  // records tcb->pending (a later release's grant sweep advances it).
  bool AcquireStage(Tcb* tcb) {
    // Race-detector tags (free when race_detect is off): the CC thread
    // holding the in-flight kAcquire owns cur_stage, the stage entry, and
    // the stage's reqs slice; the mesh message that carried the tcb here is
    // the happens-before edge. Tag granularity is the stage slice, never
    // the whole tcb — other CC threads legally touch their own disjoint
    // slices concurrently during release fan-out.
    hal::RaceCheck(&tcb->cur_stage, sizeof(tcb->cur_stage),
                   /*is_write=*/false, "orthrus.tcb.stage");
    const Stage& stage = tcb->stages[tcb->cur_stage];
    hal::RaceCheck(&stage, sizeof(stage), /*is_write=*/false,
                   "orthrus.tcb.stages");
    hal::RaceCheck(&tcb->reqs[stage.begin],
                   sizeof(CcRequest*) *
                       static_cast<std::size_t>(stage.end - stage.begin),
                   /*is_write=*/true, "orthrus.tcb.reqs");
    ORTHRUS_DCHECK(shared_->elastic_cc || stage.part == cc_id_);
    CcShard* shard =
        shared_->elastic_cc ? shared_->space->shard(stage.part) : nullptr;
    CcLockTable& locks = shard != nullptr ? shard->locks : locks_;
    std::uint32_t pending = 0;
    for (std::uint16_t i = stage.begin; i < stage.end; ++i) {
      const Access& a = tcb->txn.accesses[i];
      CcLock* lock;
      if (!in_batch_) {
        // Scalar path: untouched — one full-cost lookup per request.
        hal::ConsumeCycles(shared_->cc_op_cycles);
        lock = locks.FindOrCreate(a.table, a.key);
      } else if (shared_->cc_combine && memo_locks_ == &locks &&
                 last_table_ == a.table && last_key_ == a.key) {
        // Same-key run: reuse the memoized lock — no hash, no probe walk.
        hal::ConsumeCycles(shared_->cc_run_op_cycles);
        lock = last_lock_;
        stats_->cc_key_runs_combined++;
      } else {
        // Batch mode: the pass-one sweep (when on) already pulled the
        // bucket and lock lines in, leaving only the resident walk.
        hal::ConsumeCycles(shared_->cc_prefetch
                               ? shared_->cc_prefetched_op_cycles
                               : shared_->cc_op_cycles);
        lock = locks.FindOrCreate(a.table, a.key);
      }
      // A deferred release sweep on this same lock must grant before we
      // enqueue behind it — the sweep must see the queue state the
      // releases left, not one with our request appended.
      if (lock == grant_pending_) FlushGrantSweep();
      CcRequest* r = locks.AllocRequest();
      r->tcb = tcb;
      r->lock = lock;
      r->access_idx = i;
      r->mode = a.mode;
      // FIFO enqueue; counters make the grant check O(1).
      const bool grantable = a.mode == LockMode::kExclusive
                                 ? lock->queued_total == 0
                                 : lock->queued_x == 0;
      r->prev = lock->tail;
      if (lock->tail != nullptr) {
        lock->tail->next = r;
      } else {
        lock->head = r;
      }
      lock->tail = r;
      lock->queued_total++;
      if (a.mode == LockMode::kExclusive) lock->queued_x++;
      r->granted = grantable;
      if (!r->granted) {
        pending++;
        stats_->lock_waits++;
      }
      tcb->reqs[i] = r;
      if (shard != nullptr) {
        shard->held++;
      } else {
        held_++;
      }
      if (in_batch_ && shared_->cc_combine) {
        SetMemo(&locks, a.table, a.key, lock);
      }
    }
    if (pending != 0) {
      hal::RaceCheck(&tcb->pending, sizeof(tcb->pending), /*is_write=*/true,
                     "orthrus.tcb.pending");
      tcb->pending = pending;
    }
    return pending == 0;
  }

  void ProcessAcquire(Tcb* tcb) {
    if (shared_->shared_cc != nullptr) {
      if (shared_->shared_cc->ContinueAcquire(tcb)) SendGrant(tcb);
      return;
    }
    if (AcquireStage(tcb)) Advance(tcb);
  }

  void ProcessRelease(Tcb* tcb, std::uint64_t word) {
    if (shared_->shared_cc != nullptr) {
      runnable_.clear();
      shared_->shared_cc->ReleaseAll(tcb, &runnable_);
      out_exec_.Send(tcb->exec_id, Encode(tcb, kAck));
      stats_->messages_sent++;
      // Continue the transactions our release unblocked; any that complete
      // their lock set are handed to their execution threads.
      for (Tcb* t : runnable_) {
        if (shared_->shared_cc->ContinueAcquire(t)) SendGrant(t);
      }
      return;
    }
    if (shared_->elastic_cc) {
      // Stage-addressed release: the message names the stage, so a thread
      // that owns several of the transaction's partitions releases exactly
      // the one this message is for — one ack per release message.
      const Stage& stage = tcb->stages[DecodeStage(word)];
      CcShard* shard = shared_->space->shard(stage.part);
      ReleaseStage(tcb, stage, shard->locks, shard->held);
    } else {
      // Find our stage (stage lists are tiny; partition id == CC id).
      for (int s = 0; s < tcb->n_stages; ++s) {
        const Stage& stage = tcb->stages[s];
        if (stage.part != cc_id_) continue;
        ReleaseStage(tcb, stage, locks_, held_);
        break;
      }
    }
    // Release requests are satisfied and acknowledged immediately
    // (Section 3.1).
    out_exec_.Send(tcb->exec_id, Encode(tcb, kAck));
    stats_->messages_sent++;
  }

  // Releases one stage's requests from `locks` (the stage partition's
  // table under elastic_cc, the thread-local table otherwise), granting
  // unblocked followers and updating the matching held-lock counter.
  void ReleaseStage(Tcb* tcb, const Stage& stage, CcLockTable& locks,
                    std::uint64_t& held) {
    // Concurrent releases of *other* stages are legal; this tag covers only
    // this stage's slice (disjoint 8-byte granules per request pointer).
    hal::RaceCheck(&stage, sizeof(stage), /*is_write=*/false,
                   "orthrus.tcb.stages");
    hal::RaceCheck(&tcb->reqs[stage.begin],
                   sizeof(CcRequest*) *
                       static_cast<std::size_t>(stage.end - stage.begin),
                   /*is_write=*/true, "orthrus.tcb.reqs");
    for (std::uint16_t i = stage.begin; i < stage.end; ++i) {
      CcRequest* r = tcb->reqs[i];
      ORTHRUS_DCHECK(r != nullptr && r->lock != nullptr);
      CcLock* lock = r->lock;
      if (!in_batch_) {
        // Scalar path: untouched — unlink, sweep, recycle, per request.
        hal::ConsumeCycles(shared_->cc_op_cycles);
        Unlink(r);
        GrantFollowers(lock);
      } else if (shared_->cc_combine) {
        // Batched release: defer the grant sweep so one GrantFollowers
        // pass serves a whole same-lock run. A different lock's deferred
        // sweep flushes first — at most one lock is ever pending.
        if (lock == last_lock_ && memo_locks_ == &locks) {
          hal::ConsumeCycles(shared_->cc_run_op_cycles);
          stats_->cc_key_runs_combined++;
        } else {
          hal::ConsumeCycles(shared_->cc_prefetch
                                 ? shared_->cc_prefetched_op_cycles
                                 : shared_->cc_op_cycles);
        }
        Unlink(r);
        if (grant_pending_ != nullptr && grant_pending_ != lock) {
          FlushGrantSweep();
        }
        grant_pending_ = lock;
        SetMemo(&locks, lock->table, lock->key, lock);
      } else {
        hal::ConsumeCycles(shared_->cc_prefetch
                               ? shared_->cc_prefetched_op_cycles
                               : shared_->cc_op_cycles);
        Unlink(r);
        GrantFollowers(lock);
      }
      locks.FreeRequest(r);
      tcb->reqs[i] = nullptr;
      ORTHRUS_DCHECK(held > 0);
      held--;
    }
  }

  [[maybe_unused]] static bool NoConflictAhead(const CcRequest* r) {
    for (const CcRequest* p = r->prev; p != nullptr; p = p->prev) {
      if (Conflicts(r->mode, p->mode)) return false;
    }
    return true;
  }

  static void Unlink(CcRequest* r) {
    CcLock* lock = r->lock;
    ORTHRUS_DCHECK(lock->queued_total > 0);
    lock->queued_total--;
    if (r->mode == LockMode::kExclusive) lock->queued_x--;
    if (r->prev != nullptr) {
      r->prev->next = r->next;
    } else {
      lock->head = r->next;
    }
    if (r->next != nullptr) {
      r->next->prev = r->prev;
    } else {
      lock->tail = r->prev;
    }
    r->prev = r->next = nullptr;
  }

  void GrantFollowers(CcLock* lock) {
    bool x_seen = false;
    for (CcRequest* r = lock->head; r != nullptr; r = r->next) {
      if (!r->granted) {
        const bool grantable = r->mode == LockMode::kExclusive
                                   ? r == lock->head
                                   : !x_seen;
        if (!grantable) break;
        r->granted = true;
        Tcb* t = r->tcb;
        hal::RaceCheck(&t->pending, sizeof(t->pending), /*is_write=*/true,
                       "orthrus.tcb.pending");
        ORTHRUS_DCHECK(t->pending > 0);
        if (--t->pending == 0) Advance(t);
      }
      if (r->mode == LockMode::kExclusive) x_seen = true;
    }
  }

  void SendGrant(Tcb* tcb) {
    if (shared_->combined_grants || shared_->vectorized_cc) {
      // Stash the grant as a slot id; FlushCombinedGrants packs this exec
      // thread's quantum of grants into words at quantum end. This is the
      // vectorized stage's single-pass grant flush: grants produced while
      // processing a batch accumulate here and publish once.
      grant_stash_[static_cast<std::size_t>(tcb->exec_id)].push_back(
          static_cast<std::uint8_t>(tcb->slot));
      return;
    }
    out_exec_.Send(tcb->exec_id, Encode(tcb, kGrant));
    stats_->messages_sent++;
  }

  // All locks of tcb's current stage are granted: forward along the chain
  // (Section 3.3), continue locally when this thread also owns the next
  // stage's shard (elastic_cc — a self-addressed message would be pure
  // overhead), or hand back to the execution thread.
  void Advance(Tcb* tcb) {
    for (;;) {
      const int next = tcb->cur_stage + 1;
      if (next >= tcb->n_stages) {
        SendGrant(tcb);
        return;
      }
      if (!shared_->forwarding) {
        // Ablation mode: the execution thread mediates every hop, paying
        // two message delays per CC thread (2*Ncc total).
        out_exec_.Send(tcb->exec_id, Encode(tcb, kStageDone));
        stats_->messages_sent++;
        return;
      }
      hal::RaceCheck(&tcb->cur_stage, sizeof(tcb->cur_stage),
                     /*is_write=*/true, "orthrus.tcb.stage");
      tcb->cur_stage = next;
      const int part = tcb->stages[next].part;
      if (shared_->elastic_cc) {
        if (shared_->space->ShardOwner(part) ==
            static_cast<std::uint64_t>(cc_id_)) {
          if (AcquireStage(tcb)) continue;  // granted: keep advancing
          return;  // queued behind a conflict in our own shard
        }
        out_cc_.Send(router_->OwnerOf(part), Encode(tcb, kAcquire));
      } else {
        out_cc_.Send(part, Encode(tcb, kAcquire));
      }
      stats_->messages_sent++;
      return;
    }
  }

  int cc_id_;
  Shared* shared_;
  WorkerStats* stats_;
  CcLockTable locks_;
  // Outgoing staging buffers (one per destination mesh); flushed at the
  // end of every scheduling quantum in Main.
  SendBuf out_cc_;
  SendBuf out_exec_;
  // Elastic-epoch controller state (CC 0 only; null elsewhere).
  ElasticController* controller_;
  ElasticController2D* controller2d_;
  hal::Cycles epoch_cycles_;
  // elastic_cc: this thread's cached lock-space view (null otherwise).
  std::unique_ptr<Router> router_;
  // adaptive_drain_batch: per-quantum burst depths on the receive side.
  mp::detail::DrainBatchPolicy drain_est_;
  hal::Cycles next_epoch_ = 0;
  hal::Cycles last_epoch_now_ = 0;
  std::uint64_t last_epoch_committed_ = 0;
  // Per-exec-thread grant stash (combined_grants and vectorized_cc modes),
  // cleared every quantum by FlushCombinedGrants.
  std::vector<std::vector<std::uint8_t>> grant_stash_;
  std::uint64_t held_ = 0;
  std::vector<Tcb*> runnable_;  // scratch for shared-mode release grants
  // --- vectorized CC state (vectorized_cc; all inert otherwise) --------
  // Flat drain buffer (ctor-sized, single owner), the in-batch flag that
  // gates every vectorized branch so the scalar path stays byte-identical,
  // the same-key memo, and the lock whose release grant sweep is deferred.
  std::vector<std::uint64_t> batch_buf_;
  bool in_batch_ = false;
  CcLockTable* memo_locks_ = nullptr;
  CcLock* last_lock_ = nullptr;
  std::uint32_t last_table_ = 0;
  std::uint64_t last_key_ = 0;
  CcLock* grant_pending_ = nullptr;
};

// ----------------------------------------------------------- exec thread

class ExecThread {
 public:
  // TCBs are address-stable for the run and non-trivially destructible
  // (Txn holds vectors), so arena-placed ones are destroyed in place while
  // the arena keeps the storage; heap ones delete normally.
  struct TcbDeleter {
    bool in_arena = false;
    void operator()(Tcb* t) const {
      if (in_arena) {
        t->~Tcb();
      } else {
        delete t;
      }
    }
  };

  // `arena`, when non-null, places this thread's 512-aligned TCBs on its
  // home node (NUMA placement; see Run). Null keeps heap TCBs.
  ExecThread(int exec_id, Shared* shared, storage::Database* db,
             const workload::Workload& workload,
             runtime::WorkerContext* worker,
             const runtime::DriverOptions& driver_options, int max_inflight,
             hal::SlabArena* arena = nullptr)
      : exec_id_(exec_id),
        shared_(shared),
        db_(db),
        worker_(worker),
        stats_(&worker->stats),
        max_inflight_(max_inflight),
        source_(workload.MakeSource(shared->n_cc + exec_id)),
        admission_(driver_options, db, source_.get(), worker) {
    // Elastic mode stages exec->CC sends for the dynamic MPSC mesh;
    // static mode keeps the per-pair SPSC buffer. Exactly one exists.
    if (shared_->elastic) {
      // Shard hint = exec id: stable for the thread's lifetime, spreads
      // senders evenly across the mesh's shards.
      out_cc_multi_ = std::make_unique<MultiSendBuf>(  // lint:allow-alloc setup
          &shared->exec_to_cc_multi, exec_id, shared->send_stage,
          shared->adaptive_flush);
    } else {
      out_cc_ = std::make_unique<SendBuf>(  // lint:allow-alloc setup
          &shared->exec_to_cc, exec_id,
                                          shared->send_stage,
                                          shared->adaptive_flush);
    }
    if (shared_->elastic_cc) {
      // Router slots are worker ids: CC threads first, then exec threads.
      router_ = std::make_unique<Router>(  // lint:allow-alloc setup
          shared->space, shared->n_cc + exec_id);
    }
    if (shared_->snapshot_reads) {
      // Snapshot eligibility per table (fixed population + versions on)
      // and the per-access staging buffer readers copy versions into.
      // Run() enabled the version slabs before constructing exec threads.
      std::uint32_t max_stride = 8;
      table_snapshot_ok_.resize(db->num_tables());  // lint:allow-alloc setup
      for (std::size_t i = 0; i < db->num_tables(); ++i) {
        const storage::Table* tbl =
            db->GetTable(static_cast<std::uint32_t>(i));
        max_stride = std::max(max_stride, tbl->row_stride());
        table_snapshot_ok_[i] =
            tbl->versions_enabled() && !tbl->has_append_region();
      }
      snap_stride_ = max_stride;
      snap_scratch_.resize(  // lint:allow-alloc setup
          static_cast<std::size_t>(kMaxAccesses) * max_stride);
    }
    tcbs_.reserve(static_cast<std::size_t>(max_inflight));
    for (int i = 0; i < max_inflight; ++i) {
      // lint:allow-alloc setup: in-flight window built before the run
      Tcb* t = arena != nullptr
                   ? new (arena->Allocate(sizeof(Tcb), alignof(Tcb))) Tcb()
                   : new Tcb();  // lint:allow-alloc setup
      tcbs_.emplace_back(t, TcbDeleter{arena != nullptr});
      t->exec_id = exec_id_;
      t->slot = i;
      free_slots_.push_back(i);
    }
  }

  // Pipelined counterpart of runtime::TxnDriver::Run: the admission front
  // end (gate, pull, plan, stamp) and replanning are the shared runtime's;
  // only the in-flight window and the grant/ack event loop are ORTHRUS's
  // own. Runs with the worker's clock already begun (WorkerPool::Spawn).
  //
  // Elastic lifecycle: the thread registers as a mesh sender up front and
  // stays registered while active. When the controller's target drops
  // below this thread's index it stops admitting, drains its in-flight
  // window to empty, flushes every staged line, retires from the mesh, and
  // parks on the gate; resume re-registers and re-opens admission. The
  // drain-to-empty ordering is what guarantees no message is ever lost or
  // stranded across a reallocation epoch.
  void Main() {
    if (shared_->elastic) {
      shared_->exec_to_cc_multi.RegisterSender();
      out_cc_multi_->Rebind();
    }
    // The wal producer registers with the log's mesh and publishes its
    // epoch heartbeat from its constructor, so it must be built on-core
    // (ExecThread itself is constructed before the workers start).
    std::unique_ptr<wal::Producer> wal_owned;
    if (shared_->wal != nullptr) {
      wal_owned =  // lint:allow-alloc setup: once, before the first txn
          std::make_unique<wal::Producer>(shared_->wal, exec_id_, worker_);
      wal_ = wal_owned.get();
    }
    hal::IdleBackoff idle(256);
    while (true) {
      // elastic_cc: adopt the latest lock-space epoch before issuing or
      // releasing anything this quantum (one modeled load when unchanged).
      if (shared_->elastic_cc) router_->Refresh();
      // Snapshot epoch heartbeats: the quantum top is a transaction
      // boundary for this thread — no install or snapshot read is in
      // flight (both complete synchronously inside Execute /
      // ExecuteSnapshot), so both heartbeats may advance. Pipelined
      // transactions still holding locks are fine: their installs load
      // the commit epoch later, inside Execute, so it is >= the writer
      // heartbeat published here. Without a WAL logger driving the clock,
      // also offer an interval-gated tick.
      if (shared_->snapshot_reads) {
        storage::EpochClock* clock = db_->epoch_clock();
        clock->PublishIdle(exec_id_, &epoch_cache_);
        if (shared_->wal == nullptr) clock->MaybeTick(hal::Now());
      }
      // Durability quantum maintenance: flush staged fragments, publish
      // the epoch heartbeat, acknowledge matured group commits.
      if (wal_ != nullptr) wal_->Poll();
      bool progress = PollGrants();
      if (!shared_->elastic || shared_->exec_gate.Active(exec_id_)) {
        progress |= IssueNew();
      }
      // End of the scheduling quantum: acquires and releases staged while
      // polling/issuing go out before we either loop or idle.
      FlushOut();
      if (shared_->elastic) PublishStatsIfChanged();
      if (progress) {
        idle.Reset();
        continue;
      }
      if (Stopping() && inflight_ == 0 && WalDrained()) break;
      if (shared_->elastic && inflight_ == 0 && WalDrained() &&
          !shared_->exec_gate.Active(exec_id_)) {
        ParkUntilResumedOrStopping();
        idle.Reset();
        continue;
      }
      const hal::Cycles t0 = hal::Now();
      idle.Idle();
      stats_->Add(TimeCategory::kWaiting, hal::Now() - t0);
    }
    ORTHRUS_CHECK_MSG(OutPending() == 0,
                      "exec exiting with staged messages");
    // Drop out of the epoch mins: a finished thread's frozen heartbeats
    // must not pin the read epoch or the reader floor for stragglers.
    if (shared_->snapshot_reads) db_->epoch_clock()->Retire(exec_id_);
    if (wal_ != nullptr) wal_->Retire();
    if (shared_->elastic_cc) {
      // Drop out of the epoch barriers: a retiring CC thread must not
      // wait on the observed version of a finished exec thread.
      router_->Deactivate();
    }
    if (shared_->elastic) {
      worker_->PublishEpochStats();
      shared_->exec_to_cc_multi.RetireSender();
    }
    shared_->execs_done.fetch_add(1);
  }

 private:
  // With durability on, the commit cap must count every admitted-but-not-
  // yet-durable transaction: captured commits waiting on group commit
  // (PendingCount) and admitted transactions still in the lock pipeline
  // (wal_uncaptured_ — disjoint from the pending queue, which a
  // transaction only enters at Capture). Without it a capped run would
  // admit cap-plus-pipeline-depth. Durability off keeps the historical
  // committed-only gate, bit-identical to pre-wal runs.
  bool Stopping() const {
    return !admission_.Open(
        wal_ != nullptr ? wal_->PendingCount() + wal_uncaptured_ : 0);
  }

  bool WalDrained() const { return wal_ == nullptr || wal_->Drained(); }

  // --- exec->CC send path (static SPSC or elastic MPSC) ----------------

  void SendCc(int cc, std::uint64_t w) {
    if (out_cc_multi_ != nullptr) {
      out_cc_multi_->Send(cc, w);
    } else {
      out_cc_->Send(cc, w);
    }
  }

  void FlushOut() {
    if (out_cc_multi_ != nullptr) {
      out_cc_multi_->FlushAll();
    } else {
      out_cc_->FlushAll();
    }
  }

  std::size_t OutPending() const {
    return out_cc_multi_ != nullptr ? out_cc_multi_->Pending()
                                    : out_cc_->Pending();
  }

  // --- elastic park / resume -------------------------------------------

  // Mirror the commit counter for the controller when it moved (two
  // modeled stores per change, nothing when idle).
  void PublishStatsIfChanged() {
    if (stats_->committed != last_published_committed_) {
      last_published_committed_ = stats_->committed;
      worker_->PublishEpochStats();
    }
  }

  void ParkUntilResumedOrStopping() {
    // Drain-to-empty before retiring: the quantum flush above emptied the
    // staging arrays, and inflight_ == 0 means no grant, ack, or release
    // involving this thread is outstanding anywhere in the mesh.
    ORTHRUS_CHECK_MSG(OutPending() == 0,
                      "exec parking with staged messages");
    worker_->PublishEpochStats();
    // Park the wal producer first: it flushes its staged fragments,
    // publishes the done sentinel (so loggers stop waiting on this
    // thread's epoch heartbeat), and retires from the log mesh. The park
    // gate only opens with the pending queue drained (see Main).
    if (wal_ != nullptr) wal_->Park();
    if (shared_->elastic_cc) router_->Deactivate();
    // A parked thread must not freeze the epoch mins (its heartbeats would
    // pin the read epoch and the reader floor for the whole park, stalling
    // every installing writer); retire the slot and rejoin on resume.
    if (shared_->snapshot_reads) db_->epoch_clock()->Retire(exec_id_);
    shared_->exec_to_cc_multi.RetireSender();
    const hal::Cycles parked =
        shared_->exec_gate.Park(exec_id_, [this] { return Stopping(); });
    stats_->Add(TimeCategory::kWaiting, parked);
    if (shared_->snapshot_reads) {
      // Rejoin the mins at current values. The publish cache still holds
      // pre-park values, so reset it to the retired sentinels first —
      // otherwise PublishIdle could skip the store that un-retires us.
      epoch_cache_.wh = storage::EpochClock::kRetired;
      epoch_cache_.rh = storage::EpochClock::kRetired;
      db_->epoch_clock()->PublishIdle(exec_id_, &epoch_cache_);
    }
    shared_->exec_to_cc_multi.RegisterSender();
    out_cc_multi_->Rebind();
    if (wal_ != nullptr) wal_->Resume();
    if (shared_->elastic_cc) router_->Refresh();
  }

  bool PollGrants() {
    const std::size_t n = shared_->cc_to_exec.Drain(
        exec_id_,
        [this](std::uint64_t w) {
          switch (DecodeTag(w)) {
            case kGrant:
              Execute(DecodeTcb(w));
              break;
            case kGrantCombined:
              // Packed slot ids: every listed in-flight window slot has
              // its full lock set granted.
              for (int i = 0; i < DecodeCombinedCount(w); ++i) {
                Execute(tcbs_[DecodeCombinedSlot(w, i)].get());
              }
              break;
            case kStageDone: {
              // Non-forwarding mode: we mediate the next hop ourselves.
              Tcb* tcb = DecodeTcb(w);
              hal::RaceCheck(&tcb->cur_stage, sizeof(tcb->cur_stage),
                             /*is_write=*/true, "orthrus.tcb.stage");
              tcb->cur_stage++;
              ORTHRUS_DCHECK(tcb->cur_stage < tcb->n_stages);
              SendAcquire(tcb, RouteTo(tcb->stages[tcb->cur_stage].part));
              break;
            }
            case kAck:
              OnAck(DecodeTcb(w));
              break;
            default:
              ORTHRUS_CHECK_MSG(false, "unexpected message at exec thread");
          }
        },
        drain_est_.Batch(shared_->adaptive_drain_batch,
                         shared_->drain_batch),
        shared_->drain_order);
    drain_est_.Observe(shared_->adaptive_drain_batch, n);
    return n != 0;
  }

  // Resolves a lock partition to the CC thread that owns it: identity for
  // the static lock space, the cached SpaceMap view under elastic_cc.
  int RouteTo(int part) const {
    return shared_->elastic_cc ? router_->OwnerOf(part) : part;
  }

  bool IssueNew() {
    bool issued = false;
    // Backpressure admission: the cap tracks the AIMD window when the mode
    // is on and equals max_inflight_ (making the check redundant with the
    // free-slot test) when off — no clock read, byte-identical.
    const int cap = admission_.InflightCap(max_inflight_);
    while (!free_slots_.empty() && inflight_ < cap && !Stopping()) {
      // Durability admission gate: every admitted transaction will Capture
      // into the fragment arena when its grant arrives — regardless of
      // arena pressure at that moment — so admission reserves a worst-case
      // fragment footprint for each uncaptured in-flight transaction plus
      // the one about to be admitted.
      if (wal_ != nullptr && !wal_->AdmitReady(wal_uncaptured_ + 1)) break;
      const int slot = free_slots_.back();
      free_slots_.pop_back();
      Tcb* tcb = tcbs_[slot].get();
      admission_.Admit(&tcb->txn);  // pull + plan (reconnaissance) + stamp
      // Snapshot bypass: a classified read-only transaction never enters
      // the CC mesh — it executes lock-free against the versioned slabs
      // right here and its slot recycles immediately. It also never
      // touches the WAL pipeline (nothing to capture), so the uncaptured
      // counter stays untouched.
      if (shared_->snapshot_reads && tcb->txn.read_only &&
          SnapshotEligible(tcb->txn)) {
        ExecuteSnapshot(tcb);
        free_slots_.push_back(slot);
        issued = true;
        continue;
      }
      if (wal_ != nullptr) wal_uncaptured_++;
      tcb->replan_pending = false;
      tcb->counted_commit = false;
      Dispatch(tcb);
      issued = true;
    }
    return issued;
  }

  // Sorts accesses into CC-thread order and starts the acquisition chain.
  // In shared-CC mode the sort is the global key order and a single home CC
  // thread (round robin) handles the whole transaction.
  void Dispatch(Tcb* tcb) {
    const hal::Cycles t0 = hal::Now();
    Txn& t = tcb->txn;
    ORTHRUS_CHECK(t.accesses.size() <= kMaxAccesses);
    if (shared_->shared_cc != nullptr) {
      std::sort(t.accesses.begin(), t.accesses.end(), txn::AccessKeyOrder());
      hal::RaceCheck(&tcb->next_acq, sizeof(tcb->next_acq), /*is_write=*/true,
                     "orthrus.tcb.next_acq");
      tcb->next_acq = 0;
      tcb->home_cc = static_cast<int>(rr_counter_++ %
                                      static_cast<std::uint64_t>(shared_->n_cc));
      inflight_++;
      shared_->inflight_global.fetch_add(1);
      SendAcquire(tcb, tcb->home_cc);
      stats_->Add(TimeCategory::kLocking, hal::Now() - t0);
      return;
    }
    const storage::Partitioner& part = db_->partitioner();
    std::sort(t.accesses.begin(), t.accesses.end(),
              [&part](const Access& a, const Access& b) {
                const int pa = part.PartOf(a.key);
                const int pb = part.PartOf(b.key);
                if (pa != pb) return pa < pb;
                if (a.table != b.table) return a.table < b.table;
                return a.key < b.key;
              });
    tcb->n_stages = 0;
    for (std::size_t i = 0; i < t.accesses.size(); ++i) {
      const int p = part.PartOf(t.accesses[i].key);
      if (tcb->n_stages == 0 || tcb->stages[tcb->n_stages - 1].part != p) {
        ORTHRUS_CHECK(tcb->n_stages < kMaxStages);
        Stage& s = tcb->stages[tcb->n_stages++];
        s.part = p;
        s.begin = static_cast<std::uint16_t>(i);
        s.end = static_cast<std::uint16_t>(i + 1);
      } else {
        tcb->stages[tcb->n_stages - 1].end =
            static_cast<std::uint16_t>(i + 1);
      }
    }
    ORTHRUS_CHECK(tcb->n_stages > 0);
    // Slot reuse: the previous occupant's CC-side touches happen-before
    // this dispatch via the ack messages that freed the slot.
    hal::RaceCheck(&tcb->cur_stage, sizeof(tcb->cur_stage), /*is_write=*/true,
                   "orthrus.tcb.stage");
    hal::RaceCheck(&tcb->stages[0],
                   sizeof(Stage) * static_cast<std::size_t>(tcb->n_stages),
                   /*is_write=*/true, "orthrus.tcb.stages");
    tcb->cur_stage = 0;
    inflight_++;
    shared_->inflight_global.fetch_add(1);
    SendAcquire(tcb, RouteTo(tcb->stages[0].part));
    stats_->Add(TimeCategory::kLocking, hal::Now() - t0);
  }

  void SendAcquire(Tcb* tcb, int cc) {
    SendCc(cc, Encode(tcb, kAcquire));
    stats_->messages_sent++;
  }

  // All locks granted: run the procedure, then release everything.
  void Execute(Tcb* tcb) {
    hal::Cycles t0 = hal::Now();
    Txn& t = tcb->txn;
    for (Access& a : t.accesses) ResolveRow(db_, &a);
    txn::ExecContext ec{db_, stats_, /*charge_cycles=*/true};
    const bool ok = t.logic->Run(&t, ec);
    stats_->Add(TimeCategory::kExecution, hal::Now() - t0);

    if (ok) {
      if (wal_ != nullptr) {
        // Capture redo images now, while every lock is still held: the
        // releases below are messages, and the CC threads only drop the
        // locks when they process them. Commit accounting moves to the
        // group-commit acknowledgement (Producer::Poll).
        wal_->Capture(&t, db_);
        wal_uncaptured_--;
      } else {
        stats_->committed++;
        stats_->txn_latency.Record(hal::Now() - t.start_cycles);
      }
      tcb->counted_commit = true;
      // Version install, still under every lock (the releases below are
      // messages; CC threads only drop the locks when they process them):
      // the post-images the logic just wrote become the newest committed
      // versions, stamped with the current commit epoch. The writer
      // heartbeat is published before the stamp is used, pinning the read
      // epoch below it until this thread's next quantum boundary.
      if (shared_->snapshot_reads) {
        storage::EpochClock* clock = db_->epoch_clock();
        const std::uint64_t e = clock->CommitEpoch();
        clock->PublishWriter(exec_id_, e, &epoch_cache_);
        for (Access& a : t.accesses) {
          if (a.mode != txn::LockMode::kExclusive) continue;
          storage::Table* tbl = db_->GetTable(a.table);
          if (!tbl->versions_enabled()) continue;
          tbl->InstallVersion(tbl->SlotOfRow(a.row), e, clock, exec_id_,
                              &epoch_cache_);
        }
      }
    } else {
      tcb->replan_pending = true;  // stale OLLP estimate: re-plan after acks
    }

    t0 = hal::Now();
    hal::RaceCheck(&tcb->pending_acks, sizeof(tcb->pending_acks),
                   /*is_write=*/true, "orthrus.tcb.acks");
    if (shared_->shared_cc != nullptr) {
      tcb->pending_acks = 1;
      SendCc(tcb->home_cc, Encode(tcb, kRelease));
      stats_->messages_sent++;
    } else {
      // One stage-addressed release per stage. Under elastic_cc several
      // stages may route to the same CC thread; the stage index in the
      // message keeps every release-ack pair 1:1.
      tcb->pending_acks = tcb->n_stages;
      for (int s = 0; s < tcb->n_stages; ++s) {
        SendCc(RouteTo(tcb->stages[s].part), EncodeRelease(tcb, s));
        stats_->messages_sent++;
      }
    }
    stats_->Add(TimeCategory::kLocking, hal::Now() - t0);
  }

  // --- snapshot read path ----------------------------------------------

  // Reconnaissance-planned transactions validate estimates against live
  // rows (their Run may demand a re-plan, which the lock-free path cannot
  // service), and appended rows materialize outside the version protocol;
  // both fall back to ordinary CC.
  bool SnapshotEligible(const Txn& t) const {
    if (t.logic->NeedsReconnaissance()) return false;
    for (const Access& a : t.accesses) {
      if (!table_snapshot_ok_[a.table]) return false;
    }
    return true;
  }

  // Lock-free snapshot execution: load the read epoch once, copy each
  // row's newest version stamped at or below it into the staging buffer,
  // run the logic against the copies. Zero locks, zero messages.
  void ExecuteSnapshot(Tcb* tcb) {
    const hal::Cycles t0 = hal::Now();
    Txn& t = tcb->txn;
    storage::EpochClock* clock = db_->epoch_clock();
    std::uint64_t r = clock->ReadEpoch();
    for (;;) {
      bool fresh = true;
      for (std::size_t i = 0; i < t.accesses.size(); ++i) {
        Access& a = t.accesses[i];
        ResolveRow(db_, &a);
        storage::Table* tbl = db_->GetTable(a.table);
        std::uint8_t* dst = snap_scratch_.data() + i * snap_stride_;
        if (!tbl->SnapshotRead(tbl->SlotOfRow(a.row), r, dst)) {
          fresh = false;
          break;
        }
        a.row = dst;
      }
      if (fresh) break;
      // A row advanced twice past `r`: abandon the attempt, publish the
      // reader heartbeat (licensing the floor past the abandoned reads),
      // and restart the whole read set at a fresher epoch — refreshing a
      // single row would observe mixed epochs.
      clock->PublishIdle(exec_id_, &epoch_cache_);
      // Fold the read epoch forward ourselves — a stale row means writers
      // have moved past r, and waiting for the next tick to notice would
      // stall this reader for the whole tick interval.
      clock->FoldMins();
      if (shared_->wal == nullptr) clock->MaybeTick(hal::Now());
      hal::CpuRelax();
      r = clock->ReadEpoch();
    }
    txn::ExecContext ec{db_, stats_, /*charge_cycles=*/true};
    const bool ok = t.logic->Run(&t, ec);
    // Gated on !NeedsReconnaissance, so the plan cannot be stale.
    ORTHRUS_CHECK_MSG(ok, "snapshot read-only txn demanded a re-plan");
    // Read-only commits are trivially durable (no redo): they bypass the
    // WAL pipeline, so they are counted here even with durability on.
    stats_->committed++;
    stats_->txn_latency.Record(hal::Now() - t.start_cycles);
    stats_->Add(TimeCategory::kExecution, hal::Now() - t0);
  }

  void OnAck(Tcb* tcb) {
    hal::RaceCheck(&tcb->pending_acks, sizeof(tcb->pending_acks),
                   /*is_write=*/true, "orthrus.tcb.acks");
    ORTHRUS_DCHECK(tcb->pending_acks > 0);
    if (--tcb->pending_acks > 0) return;
    if (tcb->replan_pending) {
      tcb->replan_pending = false;
      if (admission_.planner()->Replan(&tcb->txn, stats_)) {
        // Re-dispatch the same transaction with the fresh estimate. The
        // slot stays occupied; inflight counters already include it.
        inflight_--;
        shared_->inflight_global.fetch_add(
            static_cast<std::uint64_t>(-1));
        Dispatch(tcb);
        return;
      }
    }
    inflight_--;
    shared_->inflight_global.fetch_add(static_cast<std::uint64_t>(-1));
    free_slots_.push_back(tcb->slot);
  }

  int exec_id_;
  Shared* shared_;
  storage::Database* db_;
  runtime::WorkerContext* worker_;
  WorkerStats* stats_;
  int max_inflight_;
  std::unique_ptr<workload::TxnSource> source_;
  runtime::TxnAdmission admission_;
  // Outgoing staging buffer toward the CC threads; flushed at the end of
  // every scheduling quantum in Main. Exactly one is non-null: the
  // per-pair SPSC buffer (static roles) or the MPSC buffer (elastic).
  std::unique_ptr<SendBuf> out_cc_;
  std::unique_ptr<MultiSendBuf> out_cc_multi_;
  std::vector<std::unique_ptr<Tcb, TcbDeleter>> tcbs_;
  std::vector<int> free_slots_;
  int inflight_ = 0;
  // Durability (null when off): producer owned by Main's frame — it must
  // be constructed and destroyed on-core. wal_uncaptured_ counts admitted
  // transactions that have not reached Capture yet (see IssueNew).
  wal::Producer* wal_ = nullptr;
  std::uint64_t wal_uncaptured_ = 0;
  std::uint64_t last_published_committed_ = 0;
  std::uint64_t rr_counter_ = 0;  // shared-CC home assignment
  // elastic_cc: this thread's cached lock-space view (null otherwise).
  std::unique_ptr<Router> router_;
  // Snapshot read path (empty / default unless shared_->snapshot_reads):
  // per-table eligibility, the version staging buffer, and the heartbeat
  // publish cache for epoch clock slot exec_id_.
  std::vector<bool> table_snapshot_ok_;
  std::vector<std::uint8_t> snap_scratch_;
  std::uint32_t snap_stride_ = 0;
  storage::EpochClock::PublishCache epoch_cache_;
  // adaptive_drain_batch: per-quantum burst depths on the receive side.
  mp::detail::DrainBatchPolicy drain_est_;
};

}  // namespace

OrthrusEngine::OrthrusEngine(EngineOptions options, OrthrusOptions orthrus)
    : options_(options), orthrus_(orthrus) {
  ORTHRUS_CHECK(orthrus_.num_cc >= 1);
  ORTHRUS_CHECK(options_.num_cores > orthrus_.num_cc);
  ORTHRUS_CHECK(orthrus_.max_inflight >= 1);
  if (orthrus_.combined_grants) {
    // Combined grants address in-flight window slots with one byte each.
    ORTHRUS_CHECK_MSG(orthrus_.max_inflight <= 256,
                      "combined_grants needs max_inflight <= 256");
  }
  if (orthrus_.elastic) {
    ORTHRUS_CHECK(orthrus_.elastic_min_exec >= 1);
    ORTHRUS_CHECK(orthrus_.elastic_min_exec <=
                  options_.num_cores - orthrus_.num_cc);
    ORTHRUS_CHECK(orthrus_.elastic_epoch_seconds > 0);
    ORTHRUS_CHECK(orthrus_.elastic_step >= 1);
  }
  if (orthrus_.elastic_cc) {
    // Elastic CC counts ride on the elastic infrastructure (MPSC mesh,
    // park gates, epoch controller) and a partitioned lock space.
    ORTHRUS_CHECK_MSG(orthrus_.elastic, "elastic_cc requires elastic");
    ORTHRUS_CHECK_MSG(!orthrus_.shared_cc_table,
                      "elastic_cc partitions the lock space; the shared "
                      "CC table has no partitions to hand off");
    ORTHRUS_CHECK_MSG(!orthrus_.split_index,
                      "split indexes pin storage to a fixed CC count");
    ORTHRUS_CHECK(orthrus_.elastic_min_cc >= 1);
    ORTHRUS_CHECK(orthrus_.elastic_min_cc <= orthrus_.num_cc);
    ORTHRUS_CHECK(orthrus_.cc_partitions == 0 ||
                  orthrus_.cc_partitions >= orthrus_.num_cc);
  }
  if (orthrus_.line_aligned_mesh) {
    // Whole-line reservations only exist on the dynamic MPSC mesh; the
    // static per-pair SPSC queues have one producer and no interleaving.
    ORTHRUS_CHECK_MSG(orthrus_.elastic,
                      "line_aligned_mesh shapes the elastic exec->CC mesh");
  }
  ORTHRUS_CHECK(orthrus_.mesh_capacity_factor > 0.0 &&
                orthrus_.mesh_capacity_factor <= 1.0);
  if (orthrus_.mesh_capacity_factor < 1.0) {
    // Deadlock-safety argument for under-provisioning (see the header)
    // only covers the elastic exec->CC mesh.
    ORTHRUS_CHECK_MSG(orthrus_.elastic,
                      "mesh_capacity_factor shapes the elastic mesh");
  }
  if (orthrus_.backpressure_admission) {
    ORTHRUS_CHECK(orthrus_.backpressure_epoch_seconds > 0);
  }
  if (orthrus_.vectorized_cc) {
    // Grant staging packs in-flight window slots one byte each (the same
    // encoding combined_grants uses).
    ORTHRUS_CHECK_MSG(orthrus_.max_inflight <= 256,
                      "vectorized_cc needs max_inflight <= 256");
    ORTHRUS_CHECK_MSG(!orthrus_.shared_cc_table,
                      "the shared CC table's loop is not message-shaped; "
                      "vectorized_cc batches the partitioned drain");
    ORTHRUS_CHECK(orthrus_.cc_batch >= 1);
  }
}

std::string OrthrusEngine::name() const {
  std::string n = orthrus_.split_index ? "split-orthrus" : "orthrus";
  if (!orthrus_.forwarding) n += "-nofwd";
  if (!orthrus_.batched_mp) n += "-nobatch";
  if (!orthrus_.coalesced_send) n += "-nocoalesce";
  if (orthrus_.adaptive_drain) n += "-adaptive";
  if (orthrus_.adaptive_flush) n += "-aflush";
  if (orthrus_.combined_grants) n += "-cgrant";
  if (orthrus_.shared_cc_table) n += "-sharedcc";
  if (orthrus_.elastic) n += "-elastic";
  if (orthrus_.elastic_cc) n += "cc";
  if (orthrus_.adaptive_drain_batch) n += "-adbatch";
  if (orthrus_.line_aligned_mesh) n += "-linemesh";
  if (orthrus_.backpressure_admission) n += "-bp";
  if (orthrus_.vectorized_cc) n += "-veccc";
  if (orthrus_.snapshot_reads) n += "-snap";
  return n;
}

RunResult OrthrusEngine::Run(hal::Platform* platform, storage::Database* db,
                             const workload::Workload& workload) {
  const int n_cc = orthrus_.num_cc;
  const int n_exec = options_.num_cores - n_cc;
  // Lock partitions: with elastic_cc the lock space is split finer than
  // the CC population so ownership can rebalance in sub-thread steps; the
  // static path keeps the historical partition == CC identity.
  const int n_parts =
      orthrus_.elastic_cc
          ? (orthrus_.cc_partitions > 0 ? orthrus_.cc_partitions : 2 * n_cc)
          : n_cc;
  if (!orthrus_.shared_cc_table) {
    ORTHRUS_CHECK_MSG(db->partitioner().n == n_parts,
                      "ORTHRUS needs the database partitioner configured "
                      "with one partition per lock partition (== CC thread "
                      "on the static path)");
  }

  // Durability: one wal producer per exec thread (CC threads never commit),
  // logger workers above the CC/exec cores. Admission reserves a worst-case
  // arena footprint per in-flight transaction (see ExecThread::IssueNew),
  // so the arena must fit the whole pipeline or admission wedges shut.
  const int loggers = options_.wal != nullptr ? options_.wal->loggers() : 0;
  if (options_.wal != nullptr) {
    ORTHRUS_CHECK_MSG(options_.wal->n_producers() == n_exec,
                      "ORTHRUS durability needs one wal producer slot per "
                      "exec thread (n_producers == num_cores - num_cc)");
    ORTHRUS_CHECK_MSG(
        static_cast<std::uint64_t>(options_.wal->options().arena_records) >=
            (static_cast<std::uint64_t>(orthrus_.max_inflight) + 1) *
                wal::kMaxTxnFragments,
        "wal fragment arena too small for the in-flight window: need "
        "arena_records >= (max_inflight + 1) * kMaxTxnFragments");
  }

  // ---- NUMA placement. Active only when the caller supplied a real
  // multi-socket topology; null or flat keeps every allocation and every
  // worker->core assignment exactly as before (byte-identical runs). The
  // shared-CC table opts out: it shards its latch state by hal::CoreId(),
  // which a non-identity worker->core map would send out of range.
  //
  // Policy (the paper's data-locality argument taken to the socket level):
  // group 0 = CC threads plus the log streams they feed, packed together
  // on socket 0 so the lock partitions, the CC-side mesh rings, and the
  // CC<->CC forwarding chains never cross the interconnect; group 1 = exec
  // threads, filling the remaining cores socket-major, with each exec
  // thread's grant-queue rings and TCBs carved from its own node's arena.
  const hal::Topology* topo = options_.topology;
  const bool placement =
      topo != nullptr && !topo->flat() && !orthrus_.shared_cc_table;
  std::vector<int> core_of_worker;    // worker id -> core id
  std::vector<int> socket_of_worker;  // worker id -> modeled socket
  hal::NodeArenaSet arenas;  // outlives Shared: rings point into the slabs
  if (placement) {
    std::vector<std::vector<int>> groups(2);
    for (int c = 0; c < n_cc; ++c) groups[0].push_back(c);
    for (int l = 0; l < loggers; ++l) {
      groups[0].push_back(options_.num_cores + l);
    }
    for (int e = 0; e < n_exec; ++e) groups[1].push_back(n_cc + e);
    core_of_worker = topo->PackGroups(groups);
    socket_of_worker.resize(core_of_worker.size());
    for (std::size_t w = 0; w < core_of_worker.size(); ++w) {
      socket_of_worker[w] = topo->SocketOf(core_of_worker[w]);
    }
  }

  Shared shared;
  shared.n_cc = n_cc;
  shared.n_exec = n_exec;
  shared.wal = options_.wal;
  shared.forwarding = orthrus_.forwarding;
  shared.combined_grants = orthrus_.combined_grants;
  shared.adaptive_flush = orthrus_.adaptive_flush;
  shared.elastic = orthrus_.elastic;
  shared.elastic_cc = orthrus_.elastic_cc;
  shared.n_parts = n_parts;
  shared.adaptive_drain_batch = orthrus_.adaptive_drain_batch;
  shared.cc_op_cycles = orthrus_.cc_op_cycles;
  shared.vectorized_cc = orthrus_.vectorized_cc;
  shared.cc_batch = static_cast<std::size_t>(orthrus_.cc_batch);
  shared.cc_prefetch = orthrus_.cc_prefetch;
  shared.cc_combine = orthrus_.cc_combine;
  shared.cc_prefetched_op_cycles = orthrus_.cc_prefetched_op_cycles;
  shared.cc_run_op_cycles = orthrus_.cc_run_op_cycles;
  shared.snapshot_reads = orthrus_.snapshot_reads;
  if (orthrus_.snapshot_reads) {
    // Version pairs + epoch clock, (re)seeded from the current main slabs
    // (after a WAL recovery this folds the replayed images into the
    // snapshot baseline). One heartbeat slot per exec thread; CC threads
    // and loggers never install or read versions. With durability on, the
    // group-commit logger ticks the clock on its epoch cadence; otherwise
    // exec threads offer interval-gated ticks.
    db->EnableSnapshotVersions(n_exec, orthrus_.snapshot_epoch_cycles);
    if (options_.wal != nullptr) {
      options_.wal->set_epoch_clock(db->epoch_clock());
    }
  }
  if (orthrus_.shared_cc_table) {
    shared.shared_cc =  // lint:allow-alloc setup
        std::make_unique<SharedCcTable>(n_cc, orthrus_.cc_op_cycles);
  }

  // Queue capacities: provable upper bounds on outstanding messages per
  // pair, doubled for slack (Mesh::Send CHECK-fails if these are wrong).
  //
  // elastic_cc loosens two of the static bounds. A transaction's stages
  // are per *partition*, and one CC thread can own many partitions, so a
  // single (sender, cc) pair may carry up to kMaxStages concurrent
  // releases per in-flight transaction instead of one; and misrouted
  // messages transiting the cc->cc mesh during a handoff window add up to
  // the total outstanding lock-path message count to any one pair.
  const std::size_t inflight = static_cast<std::size_t>(orthrus_.max_inflight);
  const std::size_t per_txn_msgs =
      orthrus_.elastic_cc ? static_cast<std::size_t>(kMaxStages) + 1 : 2;
  const std::size_t aq_cap = NextPowerOfTwo(2 * inflight + 4);
  const std::size_t fq_cap = NextPowerOfTwo(
      per_txn_msgs * inflight * static_cast<std::size_t>(n_exec) + 4);
  const std::size_t gq_cap =
      NextPowerOfTwo(per_txn_msgs * inflight + 4);

  // Per-receiver ring placement: a receiver's rings live on its node. The
  // vectors stay empty (and the meshes get null) when placement is off.
  std::vector<Mesh::ReceiverPlacement> cc_recv;
  std::vector<Mesh::ReceiverPlacement> exec_recv;
  std::vector<MultiMesh::ReceiverPlacement> cc_recv_multi;
  if (placement) {
    for (int c = 0; c < n_cc; ++c) {
      const int s = socket_of_worker[static_cast<std::size_t>(c)];
      cc_recv.push_back({arenas.ForNode(s), s});
      cc_recv_multi.push_back({arenas.ForNode(s), s});
    }
    for (int e = 0; e < n_exec; ++e) {
      const int s = socket_of_worker[static_cast<std::size_t>(n_cc + e)];
      exec_recv.push_back({arenas.ForNode(s), s});
    }
  }

  if (orthrus_.elastic) {
    // Shard the dynamic mesh so exec senders do not all serialize on one
    // reservation index per CC thread. 0 = adaptive: the mesh derives the
    // ring count from the registered-sender population (capped at 8 — the
    // same knee the static auto policy used: measured on the hot64 sweep,
    // contention falls off fastest up to 8 shards and extra shards past
    // that only add drain polls).
    const int shards = orthrus_.elastic_shards;
    // A shard's ring is shared by the senders hashing onto it; with
    // adaptive sharding the population of one ring is bounded only by the
    // full sender count, so the bound is the per-sender bound times that.
    const std::size_t senders_per_shard =
        shards > 0
            ? static_cast<std::size_t>((n_exec + shards - 1) / shards)
            : static_cast<std::size_t>(n_exec);
    std::size_t mcap = per_txn_msgs * inflight * senders_per_shard + 4;
    if (orthrus_.line_aligned_mesh) {
      // Whole-line reservations pad every push to a line boundary, so the
      // outstanding-slot bound inflates by up to a line per send.
      mcap *= MultiMesh::kDefaultBatch;
    }
    if (orthrus_.mesh_capacity_factor < 1.0) {
      // Deliberate under-provisioning (backpressure benches): sends that
      // exceed the scaled ring spin until the CC drains — never deadlock,
      // since CC threads drain this mesh unconditionally every quantum.
      mcap = static_cast<std::size_t>(static_cast<double>(mcap) *
                                      orthrus_.mesh_capacity_factor);
    }
    const std::size_t mcap_floor =
        orthrus_.line_aligned_mesh ? MultiMesh::kDefaultBatch : 1;
    if (mcap < mcap_floor) mcap = mcap_floor;
    shared.exec_to_cc_multi.Reset(
        n_cc, NextPowerOfTwo(mcap), shards, orthrus_.line_aligned_mesh,
        /*skip=*/0, placement ? &cc_recv_multi : nullptr);
  } else {
    shared.exec_to_cc.Reset(n_exec, n_cc, aq_cap,
                            placement ? &cc_recv : nullptr);
  }
  shared.cc_to_cc.Reset(n_cc, n_cc, fq_cap, placement ? &cc_recv : nullptr);
  shared.cc_to_exec.Reset(n_cc, n_exec, gq_cap,
                          placement ? &exec_recv : nullptr);
  if (!orthrus_.batched_mp) shared.drain_batch = 1;
  if (!orthrus_.coalesced_send) shared.send_stage = 1;
  if (orthrus_.adaptive_drain) {
    // Measured-imbalance trigger: deepest-first only when a receiver's
    // depth snapshot is actually skewed (see mp::DrainOrder::kAdaptive).
    shared.drain_order = mp::DrainOrder::kAdaptive;
  }

  runtime::WorkerPool pool(platform, options_.num_cores + loggers,
                           options_.duration_seconds, options_.rng_seed);
  for (int c = 0; c < n_cc; ++c) {
    pool.AssignRole(c, runtime::WorkerRole::kCc);
  }
  for (int e = 0; e < n_exec; ++e) {
    pool.AssignRole(n_cc + e, runtime::WorkerRole::kExec);
  }
  for (int l = 0; l < loggers; ++l) {
    pool.AssignRole(options_.num_cores + l, runtime::WorkerRole::kLogger);
  }
  if (placement) pool.SetPlacement(core_of_worker);
  runtime::DriverOptions dopts =
      MakeDriverOptions(options_, /*charge_admission=*/true);
  dopts.backpressure = orthrus_.backpressure_admission;
  dopts.backpressure_epoch_seconds = orthrus_.backpressure_epoch_seconds;

  // Elastic controller: CC thread 0 runs the reallocation epochs against
  // the exec threads' published commit counters. Constructed only in
  // elastic mode — its config CHECKs must not judge elastic_* knobs that
  // a non-elastic run never uses. elastic_cc swaps in the 2-D grid
  // controller and stands up the remappable lock space.
  std::unique_ptr<ElasticController> controller;
  std::unique_ptr<ElasticController2D> controller2d;
  lock::HashRing ring(std::max(n_cc, 1));
  SpaceMap space;
  hal::Cycles epoch_cycles = 0;
  if (orthrus_.elastic) {
    shared.exec_ctxs.reserve(static_cast<std::size_t>(n_exec));
    for (int e = 0; e < n_exec; ++e) {
      shared.exec_ctxs.push_back(&pool.worker(n_cc + e));
    }
    epoch_cycles = static_cast<hal::Cycles>(orthrus_.elastic_epoch_seconds *
                                            platform->CyclesPerSecond());
    ORTHRUS_CHECK(epoch_cycles > 0);
  }
  if (orthrus_.elastic_cc) {
    ElasticController2D::Config ec;
    ec.min_cc = orthrus_.elastic_min_cc;
    ec.max_cc = n_cc;
    ec.min_exec = orthrus_.elastic_min_exec;
    ec.max_exec = n_exec;
    ec.exec_step = orthrus_.elastic_step;
    ec.initial_exec = orthrus_.elastic_initial_exec;
    ec.tolerance = orthrus_.elastic_tolerance;
    // lint:allow-alloc setup
    controller2d = std::make_unique<ElasticController2D>(ec);
    const ElasticController2D::Target t0 = controller2d->target();
    shared.exec_gate.SetTarget(t0.exec);
    shared.cc_gate.SetTarget(t0.cc);
    // One router slot per worker (CC threads then exec threads); shards
    // start under the initial map so the first quantum claims nothing.
    const std::size_t cc_lock_shard_slots = 1 << 14;
    space.Reset(n_parts, ring.OwnersFor(n_parts, t0.cc), n_cc + n_exec,
                [cc_lock_shard_slots](int) {
                  // lint:allow-alloc setup: shards built before the run
                  return std::make_unique<CcShard>(cc_lock_shard_slots);
                });
    shared.space = &space;
    shared.ring = &ring;
  } else if (orthrus_.elastic) {
    ElasticController::Config ec;
    ec.min_active = orthrus_.elastic_min_exec;
    ec.max_active = n_exec;
    ec.initial = orthrus_.elastic_initial_exec > 0
                     ? orthrus_.elastic_initial_exec
                     : n_exec;
    ec.step = orthrus_.elastic_step;
    ec.tolerance = orthrus_.elastic_tolerance;
    // lint:allow-alloc setup
    controller = std::make_unique<ElasticController>(ec);
    shared.exec_gate.SetTarget(controller->target());
  }

  // CC lock tables start small and grow (address-stable) as each partition's
  // key footprint materializes.
  const std::size_t cc_lock_slots = 1 << 14;

  std::vector<std::unique_ptr<CcThread>> cc_threads;
  std::vector<std::unique_ptr<ExecThread>> exec_threads;
  for (int c = 0; c < n_cc; ++c) {
    cc_threads.push_back(std::make_unique<CcThread>(  // lint:allow-alloc setup
        c, &shared, &pool.worker(c).stats, cc_lock_slots,
        c == 0 ? controller.get() : nullptr,
        c == 0 ? controller2d.get() : nullptr, epoch_cycles));
  }
  for (int e = 0; e < n_exec; ++e) {
    hal::SlabArena* tcb_arena =
        placement ? arenas.ForNode(
                        socket_of_worker[static_cast<std::size_t>(n_cc + e)])
                  : nullptr;
    // lint:allow-alloc setup
    exec_threads.push_back(std::make_unique<ExecThread>(
        e, &shared, db, workload, &pool.worker(n_cc + e), dopts,
        orthrus_.max_inflight, tcb_arena));
  }

  for (int c = 0; c < n_cc; ++c) {
    CcThread* t = cc_threads[c].get();
    pool.Spawn(c, [t](runtime::WorkerContext&) { t->Main(); });
  }
  for (int e = 0; e < n_exec; ++e) {
    ExecThread* t = exec_threads[e].get();
    pool.Spawn(n_cc + e, [t](runtime::WorkerContext&) { t->Main(); });
  }
  for (int l = 0; l < loggers; ++l) {
    pool.Spawn(options_.num_cores + l,
               [this, l](runtime::WorkerContext& ctx) {
                 options_.wal->RunLogger(l, &ctx);
               });
  }

  pool.RunWorkers();
  if (options_.wal != nullptr) {
    ORTHRUS_CHECK_MSG(options_.wal->MeshBacklogRaw() == 0,
                      "wal fragments stranded in the mesh after shutdown");
  }

  // Consistency: every queue fully drained, every elastic sender retired,
  // and — across any number of partition handoffs — every lock released
  // (the shard-resident held counts survive ownership moves exactly).
  ORTHRUS_CHECK(shared.exec_to_cc.SizeRawTotal() == 0);
  ORTHRUS_CHECK(shared.exec_to_cc_multi.SizeRawTotal() == 0);
  ORTHRUS_CHECK(shared.cc_to_cc.SizeRawTotal() == 0);
  ORTHRUS_CHECK(shared.cc_to_exec.SizeRawTotal() == 0);
  ORTHRUS_CHECK(shared.exec_to_cc_multi.ActiveSendersRaw() == 0);
  if (orthrus_.elastic_cc) {
    for (int p = 0; p < n_parts; ++p) {
      ORTHRUS_CHECK_MSG(space.shard(p)->held == 0,
                        "lock-space shard torn down with locks held");
      ORTHRUS_CHECK_MSG(space.ShardOwnerRaw(p) <
                            static_cast<std::uint64_t>(n_cc),
                        "lock-space shard owned by an invalid CC slot");
    }
  }

  reallocations_ = shared.reallocations.RawLoad();
  cc_reallocations_ = shared.cc_reallocations.RawLoad();
  if (controller2d != nullptr) {
    final_exec_target_ = controller2d->target().exec;
    final_cc_target_ = controller2d->target().cc;
    steady_state_throughput_ =
        controller2d->hold_throughput() * platform->CyclesPerSecond();
  } else {
    final_exec_target_ =
        controller != nullptr ? controller->target() : n_exec;
    final_cc_target_ = n_cc;
    // The controller's hold EWMA is in commits per cycle (rate-normalized
    // epoch samples); scale to commits per second for reporting.
    steady_state_throughput_ = controller != nullptr
                                   ? controller->hold_throughput() *
                                         platform->CyclesPerSecond()
                                   : 0.0;
  }

  return pool.Finalize();
}

}  // namespace orthrus::engine
