// Engine interface: a transaction-processing architecture that runs a
// workload on a platform and reports throughput plus the CPU-time breakdown
// of Figure 10. Four implementations reproduce the paper's systems:
//
//   TwoPlEngine          — conventional 2PL, dynamic lock acquisition,
//                          pluggable deadlock handling (Section 4 baseline)
//   DeadlockFreeEngine   — ordered acquisition over pre-declared read/write
//                          sets ("Deadlock free locking")
//   PartitionedEngine    — H-Store-style partition-level locking
//                          ("Partitioned-store")
//   OrthrusEngine        — partitioned functionality: dedicated concurrency-
//                          control cores + execution cores communicating by
//                          message passing (the paper's contribution)
//
// The transaction lifecycle itself (admission, OLLP planning, deadline and
// commit-cap gating, restart backoff, stat accounting) is shared: it lives
// in src/runtime/, and the shared-everything engines are thin
// runtime::ExecutionStrategy implementations over it. See
// runtime/txn_driver.h for how to add a new architecture.
#ifndef ORTHRUS_ENGINE_ENGINE_H_
#define ORTHRUS_ENGINE_ENGINE_H_

#include <cstdint>
#include <string>

#include "common/stats.h"
#include "hal/hal.h"
#include "hal/topology.h"
#include "runtime/txn_driver.h"
#include "runtime/worker_pool.h"
#include "storage/database.h"
#include "txn/txn.h"
#include "workload/workload.h"

namespace orthrus::wal {
class GroupCommitLog;  // wal/wal.h; engines only hold the pointer here
}

namespace orthrus::engine {

struct EngineOptions {
  int num_cores = 4;

  // Run length in (virtual or wall) seconds. Workers stop starting new
  // transactions at the deadline and drain in-flight work.
  double duration_seconds = 0.005;

  // Optional commit cap per worker (0 = unlimited); used by tests that want
  // bounded runs independent of timing.
  std::uint64_t max_txns_per_worker = 0;

  // Lock-table sizing for the shared-everything engines.
  std::uint64_t lock_buckets = 1 << 16;
  std::uint64_t max_lock_heads = 1 << 22;

  // Seed for the runtime layer's per-worker RNG streams (backoff policies
  // and randomized strategies; the defaults never draw from them).
  std::uint64_t rng_seed = 0;

  // Optional override of the restart backoff (null = the default capped
  // exponential with deterministic jitter). Not owned.
  const runtime::BackoffPolicy* backoff = nullptr;

  // Durability. Null = off: no logger cores are spawned, no commit path
  // touches wal state, and runs are byte-identical to a build without the
  // subsystem. Non-null = a caller-owned group-commit log constructed for
  // this run (wal::GroupCommitLog(opts, db, n_producers) with n_producers
  // matching this engine's transaction-running worker count); the engine
  // spawns `wal->loggers()` extra cores past num_cores for the logger
  // role, emits redo fragments on every commit, and acknowledges commits
  // only when their epoch is durable.
  wal::GroupCommitLog* wal = nullptr;

  // Post-crash resume credit, indexed by transaction-worker id (null =
  // none): transactions a previous incarnation already made durable. They
  // count against max_txns_per_worker, and the caller's TxnSource must
  // skip the same prefix per worker. See wal::RecoveryResult.
  const std::vector<std::uint64_t>* resume_committed = nullptr;

  // Socket/core topology for NUMA-aware placement (hal::Topology). Null or
  // flat (num_sockets() <= 1) = placement off: workers run on their
  // identity cores and nothing is arena-placed, byte-identical to a build
  // without the subsystem. Multi-socket: engines that support placement
  // co-locate CC threads with the lock partitions and log streams they own
  // and put exec threads' mesh rings on their home node. Not owned.
  const hal::Topology* topology = nullptr;
};

// Maps the engine-level options onto the runtime layer's driver knobs.
inline runtime::DriverOptions MakeDriverOptions(const EngineOptions& o,
                                                bool charge_admission = false) {
  runtime::DriverOptions d;
  d.max_txns_per_worker = o.max_txns_per_worker;
  d.charge_admission = charge_admission;
  d.backoff = o.backoff;
  d.resume_committed = o.resume_committed;
  return d;
}

class Engine {
 public:
  virtual ~Engine() = default;

  // Runs the workload. `db` must already be loaded with a partitioning
  // consistent with this engine's configuration. `platform` must be fresh
  // (one Run per platform instance).
  virtual RunResult Run(hal::Platform* platform, storage::Database* db,
                        const workload::Workload& workload) = 0;

  virtual std::string name() const = 0;
};

// Resolves the row pointer for an access, charging the modeled index-probe
// cost. Routes to the right sub-index when the table is split.
inline void ResolveRow(storage::Database* db, txn::Access* a) {
  storage::Table* t = db->GetTable(a->table);
  const int p =
      t->num_partitions() > 1 ? db->partitioner().PartOf(a->key) : 0;
  a->row = t->Lookup(a->key, p);
  ORTHRUS_CHECK_MSG(a->row != nullptr, "access to missing key");
}

}  // namespace orthrus::engine

#endif  // ORTHRUS_ENGINE_ENGINE_H_
