// Engine interface: a transaction-processing architecture that runs a
// workload on a platform and reports throughput plus the CPU-time breakdown
// of Figure 10. Four implementations reproduce the paper's systems:
//
//   TwoPlEngine          — conventional 2PL, dynamic lock acquisition,
//                          pluggable deadlock handling (Section 4 baseline)
//   DeadlockFreeEngine   — ordered acquisition over pre-declared read/write
//                          sets ("Deadlock free locking")
//   PartitionedEngine    — H-Store-style partition-level locking
//                          ("Partitioned-store")
//   OrthrusEngine        — partitioned functionality: dedicated concurrency-
//                          control cores + execution cores communicating by
//                          message passing (the paper's contribution)
#ifndef ORTHRUS_ENGINE_ENGINE_H_
#define ORTHRUS_ENGINE_ENGINE_H_

#include <cstdint>
#include <string>

#include "common/stats.h"
#include "hal/hal.h"
#include "storage/database.h"
#include "txn/txn.h"
#include "workload/workload.h"

namespace orthrus::engine {

struct EngineOptions {
  int num_cores = 4;

  // Run length in (virtual or wall) seconds. Workers stop starting new
  // transactions at the deadline and drain in-flight work.
  double duration_seconds = 0.005;

  // Optional commit cap per worker (0 = unlimited); used by tests that want
  // bounded runs independent of timing.
  std::uint64_t max_txns_per_worker = 0;

  // Lock-table sizing for the shared-everything engines.
  std::uint64_t lock_buckets = 1 << 16;
  std::uint64_t max_lock_heads = 1 << 22;
};

class Engine {
 public:
  virtual ~Engine() = default;

  // Runs the workload. `db` must already be loaded with a partitioning
  // consistent with this engine's configuration. `platform` must be fresh
  // (one Run per platform instance).
  virtual RunResult Run(hal::Platform* platform, storage::Database* db,
                        const workload::Workload& workload) = 0;

  virtual std::string name() const = 0;
};

// Resolves the row pointer for an access, charging the modeled index-probe
// cost. Routes to the right sub-index when the table is split.
inline void ResolveRow(storage::Database* db, txn::Access* a) {
  storage::Table* t = db->GetTable(a->table);
  const int p =
      t->num_partitions() > 1 ? db->partitioner().PartOf(a->key) : 0;
  a->row = t->Lookup(a->key, p);
  ORTHRUS_CHECK_MSG(a->row != nullptr, "access to missing key");
}

// Shared helper: per-worker deadline bookkeeping.
struct WorkerClock {
  hal::Cycles start = 0;
  hal::Cycles deadline = 0;
  hal::Cycles end = 0;

  void Begin(double duration_seconds, double cycles_per_second) {
    start = hal::Now();
    deadline = start + static_cast<hal::Cycles>(duration_seconds *
                                                cycles_per_second);
  }
  bool Expired() const { return hal::Now() >= deadline; }
  void Finish() { end = hal::Now(); }
};

// Aggregates per-worker stats and computes elapsed time as the span from
// the earliest worker start to the latest worker end.
RunResult FinalizeRun(const std::vector<WorkerStats>& stats,
                      const std::vector<WorkerClock>& clocks,
                      double cycles_per_second);

}  // namespace orthrus::engine

#endif  // ORTHRUS_ENGINE_ENGINE_H_
