// The sixth architecture: epoch-snapshot MVCC over partitioned lock shards.
//
// Writers run exactly the shared-CC write path (ordered acquisition over
// latched partition shards — engine/sharedcc) and additionally install the
// committed post-image into the row's two-slot version pair under their X
// locks, stamped with the global commit epoch (storage/epoch_clock.h).
// Read-only transactions — classified at admission (TxnAdmission) — take
// zero locks and touch no shard: they load the stable read epoch once and
// copy each row's newest version stamped at or below it straight out of the
// versioned slabs. That is the Silo/Hekaton-lineage snapshot recipe the
// paper's related work points at, and it is what lets read-mostly curves
// scale with cores instead of serializing behind writers.
//
// Snapshot reads are bypassed (falling back to locking) for transactions
// that need reconnaissance or touch tables with runtime append regions
// (TPC-C's inserts): appended rows materialize outside the version
// protocol, so only fixed-population tables serve snapshots.
#ifndef ORTHRUS_ENGINE_MVCC_MVCC_ENGINE_H_
#define ORTHRUS_ENGINE_MVCC_MVCC_ENGINE_H_

#include "engine/engine.h"

namespace orthrus::engine {

class MvccEngine final : public Engine {
 public:
  // `cc_op_cycles` prices shard lock metadata like SharedCcEngine.
  // `epoch_tick_cycles` is the commit-epoch advance interval when no WAL
  // drives the clock; with durability on, the group-commit logger ticks
  // the same clock instead (wal::GroupCommitLog::set_epoch_clock). It only
  // trades snapshot staleness against write-path cost (spinners fold the
  // heartbeat mins directly; see OrthrusOptions::snapshot_epoch_cycles).
  explicit MvccEngine(EngineOptions options, hal::Cycles cc_op_cycles = 12,
                      hal::Cycles epoch_tick_cycles = 400000)
      : options_(options),
        cc_op_cycles_(cc_op_cycles),
        epoch_tick_cycles_(epoch_tick_cycles) {}

  RunResult Run(hal::Platform* platform, storage::Database* db,
                const workload::Workload& workload) override;
  std::string name() const override { return "mvcc-snapshot"; }

 private:
  EngineOptions options_;
  hal::Cycles cc_op_cycles_;
  hal::Cycles epoch_tick_cycles_;
};

}  // namespace orthrus::engine

#endif  // ORTHRUS_ENGINE_MVCC_MVCC_ENGINE_H_
