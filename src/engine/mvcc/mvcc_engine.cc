#include "engine/mvcc/mvcc_engine.h"

#include <algorithm>
#include <memory>
#include <unordered_map>
#include <vector>

#include "runtime/txn_driver.h"
#include "storage/epoch_clock.h"
#include "wal/wal.h"

namespace orthrus::engine {
namespace {

using txn::Access;
using txn::LockMode;

constexpr int kMaxAccesses = 40;  // matches the ORTHRUS TCB bound

struct ShardReq;

// Lock state for one key inside a partition shard. Plain memory: every
// access happens under the shard's latch. (Same machinery as
// engine/sharedcc — the write path *is* shared-CC, plus version installs.)
struct ShardLock {
  ShardReq* head = nullptr;
  ShardReq* tail = nullptr;
  std::uint32_t queued_total = 0;
  std::uint32_t queued_x = 0;
};

// A worker's request node; `granted` is the local-spin FIFO handoff word
// (see sharedcc_engine.cc for why it is a modeled atomic).
struct ShardReq {
  hal::Atomic<int> granted;
  ShardReq* next = nullptr;
  ShardReq* prev = nullptr;
  ShardLock* lock = nullptr;
  int shard = -1;
  LockMode mode = LockMode::kShared;
};

struct LockKey {
  std::uint32_t table;
  std::uint64_t key;
  bool operator==(const LockKey& o) const {
    return table == o.table && key == o.key;
  }
};

struct LockKeyHash {
  std::size_t operator()(const LockKey& k) const {
    std::uint64_t h = (k.key ^ (static_cast<std::uint64_t>(k.table) << 56)) *
                      0x9E3779B97F4A7C15ull;
    return static_cast<std::size_t>(h ^ (h >> 32));
  }
};

struct alignas(kCacheLineSize) Shard {
  hal::SpinLock latch;
  std::unordered_map<LockKey, ShardLock, LockKeyHash> locks
      ORTHRUS_GUARDED_BY(latch);
};

// Writers: sort by (partition, table, key), acquire from the partition
// shards (ordered, deadlock-free), execute, install the committed
// post-images into the version pairs, release. Classified read-only
// transactions skip all of that: one read-epoch load, then a lock-free
// versioned copy per row. Every wait loop in this strategy publishes the
// worker's epoch heartbeats — that is what keeps the read epoch and the
// reader floor advancing (and the floor spin in Table::InstallVersion
// finite) no matter which worker is stuck behind which.
class MvccStrategy final : public runtime::ExecutionStrategy {
 public:
  MvccStrategy(std::vector<Shard>* shards, const storage::Partitioner* part,
               storage::Database* db, hal::Cycles op_cycles, int hb_slot,
               bool wal_ticks, WorkerStats* stats)
      : shards_(shards),
        part_(part),
        db_(db),
        clock_(db->epoch_clock()),
        op_cycles_(op_cycles),
        hb_slot_(hb_slot),
        wal_ticks_(wal_ticks),
        stats_(stats) {
    std::uint32_t max_stride = 8;
    table_snapshot_ok_.resize(db->num_tables());
    for (std::size_t i = 0; i < db->num_tables(); ++i) {
      const storage::Table* t = db->GetTable(static_cast<std::uint32_t>(i));
      max_stride = std::max(max_stride, t->row_stride());
      // Appended rows (TPC-C inserts) materialize outside the version
      // protocol, so tables with append regions fall back to locking.
      table_snapshot_ok_[i] =
          t->versions_enabled() && !t->has_append_region();
    }
    scratch_stride_ = max_stride;
    scratch_.resize(static_cast<std::size_t>(kMaxAccesses) * max_stride);
  }

  runtime::TxnOutcome TryExecute(txn::Txn* t) override {
    ORTHRUS_CHECK(t->accesses.size() <= kMaxAccesses);
    // Transaction boundary: no install or snapshot read in flight, so both
    // heartbeats may advance; tick the clock if no WAL logger does.
    Heartbeat();
    if (t->read_only && SnapshotEligible(t)) return SnapshotExecute(t);

    const storage::Partitioner& part = *part_;
    std::sort(t->accesses.begin(), t->accesses.end(),
              [&part](const Access& a, const Access& b) {
                const int pa = part.PartOf(a.key);
                const int pb = part.PartOf(b.key);
                if (pa != pb) return pa < pb;
                if (a.table != b.table) return a.table < b.table;
                return a.key < b.key;
              });

    hal::Cycles t0 = hal::Now();
    n_held_ = 0;
    for (const Access& a : t->accesses) Acquire(a);
    stats_->Add(TimeCategory::kLocking, hal::Now() - t0);

    t0 = hal::Now();
    for (Access& a : t->accesses) ResolveRow(db_, &a);
    txn::ExecContext ec{db_, stats_, /*charge_cycles=*/true};
    const bool ok = t->logic->Run(t, ec);
    stats_->Add(TimeCategory::kExecution, hal::Now() - t0);

    // Durability: capture redo images while every lock is still held.
    if (ok && wal_ != nullptr) wal_->Capture(t, db_);
    // Version install: also under the X locks — the post-images just
    // written by the logic become the newest committed versions.
    if (ok) InstallVersions(t);

    t0 = hal::Now();
    ReleaseAll();
    stats_->Add(TimeCategory::kLocking, hal::Now() - t0);
    return ok ? runtime::TxnOutcome::kCommitted
              : runtime::TxnOutcome::kMismatch;
  }

 private:
  void Heartbeat() {
    clock_->PublishIdle(hb_slot_, &cache_);
    if (!wal_ticks_) clock_->MaybeTick(hal::Now());
  }

  bool SnapshotEligible(const txn::Txn* t) const {
    if (t->logic->NeedsReconnaissance()) return false;
    for (const Access& a : t->accesses) {
      if (!table_snapshot_ok_[a.table]) return false;
    }
    return true;
  }

  runtime::TxnOutcome SnapshotExecute(txn::Txn* t) {
    hal::Cycles t0 = hal::Now();
    std::uint64_t r = clock_->ReadEpoch();
    for (;;) {
      bool fresh = true;
      for (std::size_t i = 0; i < t->accesses.size(); ++i) {
        Access& a = t->accesses[i];
        ResolveRow(db_, &a);
        storage::Table* tbl = db_->GetTable(a.table);
        std::uint8_t* dst = scratch_.data() + i * scratch_stride_;
        if (!tbl->SnapshotRead(tbl->SlotOfRow(a.row), r, dst)) {
          fresh = false;
          break;
        }
        a.row = dst;
      }
      if (fresh) break;
      // A row advanced twice past `r`: abandon this attempt, publish the
      // reader heartbeat (licensing the floor to move past the abandoned
      // reads), and restart the whole read set at a fresher epoch — a
      // per-row refresh would observe mixed epochs.
      Heartbeat();
      // A stale row means writers have moved past `r`; fold the read epoch
      // forward now rather than waiting out the tick interval.
      clock_->FoldMins();
      hal::CpuRelax();
      r = clock_->ReadEpoch();
    }
    txn::ExecContext ec{db_, stats_, /*charge_cycles=*/true};
    const bool ok = t->logic->Run(t, ec);
    stats_->Add(TimeCategory::kExecution, hal::Now() - t0);
    if (!ok) return runtime::TxnOutcome::kMismatch;
    if (wal_ != nullptr) {
      // Read-only commits are trivially durable (no redo), so they never
      // enter the WAL pipeline; the driver only counts commits on the
      // no-WAL path, so count here.
      stats_->committed++;
      stats_->txn_latency.Record(hal::Now() - t->start_cycles);
    }
    return runtime::TxnOutcome::kCommitted;
  }

  void InstallVersions(txn::Txn* t) {
    const std::uint64_t e = clock_->CommitEpoch();
    clock_->PublishWriter(hb_slot_, e, &cache_);
    for (Access& a : t->accesses) {
      if (a.mode != LockMode::kExclusive) continue;
      storage::Table* tbl = db_->GetTable(a.table);
      if (!tbl->versions_enabled()) continue;
      tbl->InstallVersion(tbl->SlotOfRow(a.row), e, clock_, hb_slot_,
                          &cache_);
    }
  }

  void Acquire(const Access& a) {
    const int p = part_->PartOf(a.key);
    Shard& s = (*shards_)[static_cast<std::size_t>(p)];
    ShardReq* r = &reqs_[n_held_++];
    r->next = r->prev = nullptr;
    r->shard = p;
    r->mode = a.mode;
    s.latch.Lock();
    hal::ConsumeCycles(op_cycles_);
    ShardLock& lock = s.locks[LockKey{a.table, a.key}];
    r->lock = &lock;
    const bool grantable = a.mode == LockMode::kExclusive
                               ? lock.queued_total == 0
                               : lock.queued_x == 0;
    r->prev = lock.tail;
    if (lock.tail != nullptr) {
      lock.tail->next = r;
    } else {
      lock.head = r;
    }
    lock.tail = r;
    lock.queued_total++;
    if (a.mode == LockMode::kExclusive) lock.queued_x++;
    r->granted.store(grantable ? 1 : 0);
    s.latch.Unlock();
    if (!grantable) {
      stats_->lock_waits++;
      const hal::Cycles w0 = hal::Now();
      while (r->granted.load() == 0) {
        // Keep the epoch machinery live while blocked: the lock holder
        // may be spinning on the reader floor, which needs our
        // heartbeats (and someone ticking) to advance.
        Heartbeat();
        hal::CpuRelax();
      }
      stats_->Add(TimeCategory::kWaiting, hal::Now() - w0);
    }
  }

  void ReleaseAll() {
    for (int i = 0; i < n_held_; ++i) {
      ShardReq* r = &reqs_[i];
      Shard& s = (*shards_)[static_cast<std::size_t>(r->shard)];
      s.latch.Lock();
      hal::ConsumeCycles(op_cycles_);
      ShardLock* lock = r->lock;
      ORTHRUS_DCHECK(lock->queued_total > 0);
      lock->queued_total--;
      if (r->mode == LockMode::kExclusive) lock->queued_x--;
      if (r->prev != nullptr) {
        r->prev->next = r->next;
      } else {
        lock->head = r->next;
      }
      if (r->next != nullptr) {
        r->next->prev = r->prev;
      } else {
        lock->tail = r->prev;
      }
      bool x_seen = false;
      for (ShardReq* f = lock->head; f != nullptr; f = f->next) {
        if (f->granted.load() == 0) {
          const bool grantable = f->mode == LockMode::kExclusive
                                     ? f == lock->head
                                     : !x_seen;
          if (!grantable) break;
          f->granted.store(1);
        }
        if (f->mode == LockMode::kExclusive) x_seen = true;
      }
      s.latch.Unlock();
    }
    n_held_ = 0;
  }

  std::vector<Shard>* shards_;
  const storage::Partitioner* part_;
  storage::Database* db_;
  storage::EpochClock* clock_;
  hal::Cycles op_cycles_;
  int hb_slot_;
  bool wal_ticks_;
  WorkerStats* stats_;
  storage::EpochClock::PublishCache cache_;
  std::vector<bool> table_snapshot_ok_;
  std::vector<std::uint8_t> scratch_;  // snapshot staging, setup-sized
  std::uint32_t scratch_stride_ = 0;
  ShardReq reqs_[kMaxAccesses];
  int n_held_ = 0;
};

}  // namespace

RunResult MvccEngine::Run(hal::Platform* platform, storage::Database* db,
                          const workload::Workload& workload) {
  const int n = options_.num_cores;
  const int n_shards = db->partitioner().n;
  ORTHRUS_CHECK(n_shards >= 1);
  std::vector<Shard> shards(static_cast<std::size_t>(n_shards));

  // Version pairs + epoch clock, (re)seeded from the current main slabs —
  // after a WAL recovery this folds the replayed images into the snapshot
  // baseline.
  db->EnableSnapshotVersions(n, epoch_tick_cycles_);
  const bool wal_ticks = options_.wal != nullptr;
  if (wal_ticks) options_.wal->set_epoch_clock(db->epoch_clock());

  const int loggers = options_.wal != nullptr ? options_.wal->loggers() : 0;
  runtime::WorkerPool pool(platform, n + loggers, options_.duration_seconds,
                           options_.rng_seed);
  const runtime::DriverOptions dopts = MakeDriverOptions(options_);
  for (int w = 0; w < n; ++w) {
    pool.Spawn(w, [this, db, &workload, &shards, &dopts,
                   wal_ticks](runtime::WorkerContext& ctx) {
      std::unique_ptr<workload::TxnSource> source =
          workload.MakeSource(ctx.worker_id);
      MvccStrategy strategy(&shards, &db->partitioner(), db, cc_op_cycles_,
                            ctx.worker_id, wal_ticks, &ctx.stats);
      runtime::TxnDriver driver(dopts, db, source.get(), &strategy, &ctx);
      std::unique_ptr<wal::Producer> producer;
      if (options_.wal != nullptr) {
        producer = std::make_unique<wal::Producer>(options_.wal,
                                                   ctx.worker_id, &ctx);
        strategy.set_wal(producer.get());
        driver.set_wal(producer.get());
      }
      driver.Run();
      // Drop out of the epoch mins: a finished worker must not freeze the
      // read epoch (or the reader floor) for stragglers still installing.
      db->epoch_clock()->Retire(ctx.worker_id);
    });
  }
  for (int l = 0; l < loggers; ++l) {
    const int w = n + l;
    pool.AssignRole(w, runtime::WorkerRole::kLogger);
    pool.Spawn(w, [this, l](runtime::WorkerContext& ctx) {
      options_.wal->RunLogger(l, &ctx);
    });
  }

  RunResult result = pool.Run();
  if (options_.wal != nullptr) {
    ORTHRUS_CHECK_MSG(options_.wal->MeshBacklogRaw() == 0,
                      "wal fragments stranded in the mesh after shutdown");
  }
  return result;
}

}  // namespace orthrus::engine
