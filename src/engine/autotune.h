// Thread-allocation auto-tuning (Section 4.2).
//
// ORTHRUS must split a fixed core budget between concurrency-control and
// execution threads; Figure 5 shows the throughput consequences of getting
// it wrong (too few exec threads under-use the CC threads, and vice versa).
// The paper points out that ORTHRUS's staged (SEDA) structure makes the
// split a tunable resource-allocation knob. Two policies live here:
//
//  * AutotuneThreadSplit — offline: probe candidate splits with short
//    deterministic simulator runs of the actual workload, pick the best.
//  * ElasticController — online: the same hill climb run closed-loop
//    against *live* per-epoch throughput. OrthrusOptions::elastic feeds it
//    one epoch's committed-transaction count at a time and it answers with
//    the active exec-thread target for the next epoch; the engine parks or
//    resumes exec threads to match (runtime::ParkGate). This is what turns
//    the offline probe into runtime CC↔exec reallocation as contention
//    shifts.
#ifndef ORTHRUS_ENGINE_AUTOTUNE_H_
#define ORTHRUS_ENGINE_AUTOTUNE_H_

#include <vector>

#include "engine/orthrus/orthrus_engine.h"

namespace orthrus::engine {

struct AutotuneResult {
  int best_num_cc = 0;
  double best_throughput = 0;
  // One entry per probed candidate, in probe order.
  struct Probe {
    int num_cc;
    double throughput;
  };
  std::vector<Probe> probes;
};

struct AutotuneOptions {
  // Candidate CC-thread counts; empty = powers of two up to half the cores.
  std::vector<int> candidates;
  // Virtual seconds per probe run.
  double probe_seconds = 0.002;
  OrthrusOptions orthrus;  // num_cc is overridden per probe
};

// Probes candidate CC/exec splits of `total_cores` on fresh simulator
// instances running `workload`, and returns the split with the highest
// measured throughput. Loads a fresh database per probe via the workload
// (unsplit tables; the database partitioner is set to the probed CC count).
// Note: use partition-agnostic workloads (uniform key placement) — the
// probe overrides the database partitioner per candidate, which would
// disagree with a generator targeting a fixed partition universe.
AutotuneResult AutotuneThreadSplit(int total_cores,
                                   workload::Workload* workload,
                                   AutotuneOptions options = {});

// ---------------------------------------------------------------------
// Closed-loop thread-allocation controller.
//
// The online counterpart of AutotuneThreadSplit, with the same shape:
// probe candidates, pick the best — but against *live* epoch throughput
// (any monotone utility; the engine feeds the measured commit rate,
// commits per cycle, so samples stay comparable even when a long
// scheduling quantum stretches an epoch), so it keeps working when the
// workload shifts mid-run. Naive
// per-epoch hill climbing does not survive contact with real epoch
// measurements: the gradient per one-thread move (a few percent) is
// smaller than per-epoch noise, so a climber either random-walks or
// freezes on a false plateau. Instead:
//
//   * SWEEP: walk the target from max_active down to min_active in `step`
//     decrements, one epoch per candidate, recording each epoch's
//     throughput sample.
//   * HOLD: jump to the smallest candidate whose sample was within half
//     of `tolerance` of the best sample (ties favor freeing threads; the
//     band is half-width because each sample is one noisy epoch and
//     equivalence slack compounds with that noise toward
//     under-allocation) and stay there, tracking an EWMA of held
//     throughput.
//   * RE-SWEEP: if measured throughput stays below (1 - 4*tolerance) of
//     the hold EWMA for `drift_epochs` consecutive epochs — a workload
//     shift, not noise — restart the sweep from max_active.
//
// Pure integer/double state fed only by the measurements, so a
// deterministic simulator run produces a deterministic reallocation
// trace.
class ElasticController {
 public:
  enum class Phase { kSweep, kHold };

  struct Config {
    int min_active = 1;   // never park below this many exec threads
    int max_active = 1;   // the spawned exec-thread population
    int initial = 1;      // starting target (clamped to [min, max])
    int step = 1;         // exec threads stepped between sweep candidates
    // Noise scale. Candidates within half this relative distance of the
    // best sweep sample count as equivalent (the smallest wins); falling
    // 4x this below the hold baseline counts as drift.
    double tolerance = 0.05;
    // Consecutive degraded epochs before a re-sweep.
    int drift_epochs = 2;
  };

  explicit ElasticController(const Config& config);

  int target() const { return target_; }
  Phase phase() const { return phase_; }
  int decisions() const { return decisions_; }
  int moves() const { return moves_; }
  int sweeps_completed() const { return sweeps_completed_; }
  // EWMA of the per-epoch throughput samples while holding (0 until the
  // first hold epoch ends), in whatever unit Step() was fed — the
  // converged steady-state estimate.
  double hold_throughput() const { return hold_ewma_; }

  // Feed the finished epoch's throughput measurement (taken while the
  // current target was in force); returns the target for the next epoch.
  int Step(double epoch_throughput);

 private:
  int Clamp(int t) const;
  void BeginSweep();

  Config cfg_;
  int target_;
  Phase phase_ = Phase::kSweep;
  // One sample per sweep candidate, in probe order (descending targets).
  struct Sample {
    int target;
    double throughput;
  };
  std::vector<Sample> samples_;
  double hold_ewma_ = 0.0;
  bool has_hold_baseline_ = false;
  int degraded_epochs_ = 0;
  int decisions_ = 0;
  int moves_ = 0;
  int sweeps_completed_ = 0;
};

// ---------------------------------------------------------------------
// Two-dimensional (cc_count x exec_count) allocation controller.
//
// With lock-space ownership remappable at run time (lock::SpaceMap), the
// CC population is as elastic as the exec population, and the controller
// can search the full Figure-5 allocation plane instead of one axis of it.
// The policy is the same sweep-and-hold that survived epoch noise in the
// 1-D controller, lifted to a grid walk:
//
//   * SWEEP: walk (cc, exec) candidates — cc from max_cc down to min_cc in
//     cc_step decrements, and for each cc the exec axis from max_exec down
//     to min_exec in exec_step decrements — one epoch per grid point.
//   * HOLD: jump to the candidate within half of `tolerance` of the best
//     sample that frees the most threads (smallest cc+exec; ties prefer
//     fewer CC threads — an idle CC thread is pure overhead, an idle exec
//     thread at least polls its own queues), track the hold EWMA.
//   * RE-SWEEP: on `drift_epochs` consecutive epochs below
//     (1 - 4*tolerance) of the hold EWMA, restart from the grid corner.
//
// Deliberately a separate class from ElasticController: the 1-D policy is
// the pinned behaviour of the elastic_cc=false path, and sharing state
// machines would couple the byte-identical path to 2-D changes.
class ElasticController2D {
 public:
  enum class Phase { kSweep, kHold };

  struct Target {
    int cc = 1;
    int exec = 1;
  };

  struct Config {
    int min_cc = 1;
    int max_cc = 1;
    int min_exec = 1;
    int max_exec = 1;
    int cc_step = 1;
    int exec_step = 1;
    // Starting targets (0 = the respective max).
    int initial_cc = 0;
    int initial_exec = 0;
    double tolerance = 0.05;
    int drift_epochs = 2;
  };

  explicit ElasticController2D(const Config& config);

  Target target() const { return target_; }
  Phase phase() const { return phase_; }
  int decisions() const { return decisions_; }
  int moves() const { return moves_; }
  int sweeps_completed() const { return sweeps_completed_; }
  double hold_throughput() const { return hold_ewma_; }

  // Feed the finished epoch's throughput (measured under the current
  // target); returns the target for the next epoch.
  Target Step(double epoch_throughput);

 private:
  void BeginSweep();
  // Advances target_ to the next grid point; false when the sweep is done.
  bool NextCandidate();

  Config cfg_;
  Target target_;
  Phase phase_ = Phase::kSweep;
  struct Sample {
    Target target;
    double throughput;
  };
  std::vector<Sample> samples_;
  double hold_ewma_ = 0.0;
  bool has_hold_baseline_ = false;
  int degraded_epochs_ = 0;
  int decisions_ = 0;
  int moves_ = 0;
  int sweeps_completed_ = 0;
};

}  // namespace orthrus::engine

#endif  // ORTHRUS_ENGINE_AUTOTUNE_H_
