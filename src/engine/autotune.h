// Thread-allocation auto-tuning (Section 4.2).
//
// ORTHRUS must split a fixed core budget between concurrency-control and
// execution threads; Figure 5 shows the throughput consequences of getting
// it wrong (too few exec threads under-use the CC threads, and vice versa).
// The paper points out that ORTHRUS's staged (SEDA) structure makes the
// split a tunable resource-allocation knob. This helper implements the
// obvious policy: probe candidate splits with short deterministic simulator
// runs of the actual workload and pick the best.
#ifndef ORTHRUS_ENGINE_AUTOTUNE_H_
#define ORTHRUS_ENGINE_AUTOTUNE_H_

#include <vector>

#include "engine/orthrus/orthrus_engine.h"

namespace orthrus::engine {

struct AutotuneResult {
  int best_num_cc = 0;
  double best_throughput = 0;
  // One entry per probed candidate, in probe order.
  struct Probe {
    int num_cc;
    double throughput;
  };
  std::vector<Probe> probes;
};

struct AutotuneOptions {
  // Candidate CC-thread counts; empty = powers of two up to half the cores.
  std::vector<int> candidates;
  // Virtual seconds per probe run.
  double probe_seconds = 0.002;
  OrthrusOptions orthrus;  // num_cc is overridden per probe
};

// Probes candidate CC/exec splits of `total_cores` on fresh simulator
// instances running `workload`, and returns the split with the highest
// measured throughput. Loads a fresh database per probe via the workload
// (unsplit tables; the database partitioner is set to the probed CC count).
// Note: use partition-agnostic workloads (uniform key placement) — the
// probe overrides the database partitioner per candidate, which would
// disagree with a generator targeting a fixed partition universe.
AutotuneResult AutotuneThreadSplit(int total_cores,
                                   workload::Workload* workload,
                                   AutotuneOptions options = {});

}  // namespace orthrus::engine

#endif  // ORTHRUS_ENGINE_AUTOTUNE_H_
