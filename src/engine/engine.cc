#include "engine/engine.h"

#include <algorithm>

namespace orthrus::engine {

RunResult FinalizeRun(const std::vector<WorkerStats>& stats,
                      const std::vector<WorkerClock>& clocks,
                      double cycles_per_second) {
  RunResult result;
  result.per_worker = stats;
  for (const WorkerStats& s : stats) result.total.Merge(s);
  hal::Cycles min_start = ~0ull;
  hal::Cycles max_end = 0;
  for (const WorkerClock& c : clocks) {
    min_start = std::min(min_start, c.start);
    max_end = std::max(max_end, c.end);
  }
  if (max_end > min_start) {
    result.elapsed_seconds =
        static_cast<double>(max_end - min_start) / cycles_per_second;
  }
  return result;
}

}  // namespace orthrus::engine
