#include "engine/autotune.h"

#include "hal/sim_platform.h"

namespace orthrus::engine {

AutotuneResult AutotuneThreadSplit(int total_cores,
                                   workload::Workload* workload,
                                   AutotuneOptions options) {
  ORTHRUS_CHECK(total_cores >= 2);
  std::vector<int> candidates = options.candidates;
  if (candidates.empty()) {
    for (int c = 1; c < total_cores; c *= 2) candidates.push_back(c);
  }

  AutotuneResult result;
  for (int num_cc : candidates) {
    if (num_cc < 1 || num_cc >= total_cores) continue;

    storage::Database db;
    workload->Load(&db, 1);
    db.partitioner().n = num_cc;

    EngineOptions eo;
    eo.num_cores = total_cores;
    eo.duration_seconds = options.probe_seconds;
    OrthrusOptions oo = options.orthrus;
    oo.num_cc = num_cc;
    OrthrusEngine engine(eo, oo);

    hal::SimPlatform sim(total_cores);
    const RunResult r = engine.Run(&sim, &db, *workload);
    const double tput = r.Throughput();
    result.probes.push_back({num_cc, tput});
    if (tput > result.best_throughput) {
      result.best_throughput = tput;
      result.best_num_cc = num_cc;
    }
  }
  ORTHRUS_CHECK_MSG(!result.probes.empty(), "no valid autotune candidates");
  return result;
}

}  // namespace orthrus::engine
