#include "engine/autotune.h"

#include <algorithm>

#include "hal/sim_platform.h"

namespace orthrus::engine {

AutotuneResult AutotuneThreadSplit(int total_cores,
                                   workload::Workload* workload,
                                   AutotuneOptions options) {
  ORTHRUS_CHECK(total_cores >= 2);
  std::vector<int> candidates = options.candidates;
  if (candidates.empty()) {
    for (int c = 1; c < total_cores; c *= 2) candidates.push_back(c);
  }

  AutotuneResult result;
  for (int num_cc : candidates) {
    if (num_cc < 1 || num_cc >= total_cores) continue;

    storage::Database db;
    workload->Load(&db, 1);
    db.partitioner().n = num_cc;

    EngineOptions eo;
    eo.num_cores = total_cores;
    eo.duration_seconds = options.probe_seconds;
    OrthrusOptions oo = options.orthrus;
    oo.num_cc = num_cc;
    OrthrusEngine engine(eo, oo);

    hal::SimPlatform sim(total_cores);
    const RunResult r = engine.Run(&sim, &db, *workload);
    const double tput = r.Throughput();
    result.probes.push_back({num_cc, tput});
    if (tput > result.best_throughput) {
      result.best_throughput = tput;
      result.best_num_cc = num_cc;
    }
  }
  ORTHRUS_CHECK_MSG(!result.probes.empty(), "no valid autotune candidates");
  return result;
}

ElasticController::ElasticController(const Config& config) : cfg_(config) {
  ORTHRUS_CHECK(cfg_.min_active >= 1);
  ORTHRUS_CHECK(cfg_.max_active >= cfg_.min_active);
  ORTHRUS_CHECK(cfg_.step >= 1);
  ORTHRUS_CHECK(cfg_.drift_epochs >= 1);
  target_ = Clamp(cfg_.initial);
  samples_.reserve(static_cast<std::size_t>(
      (cfg_.max_active - cfg_.min_active) / cfg_.step + 2));
}

int ElasticController::Clamp(int t) const {
  if (t < cfg_.min_active) return cfg_.min_active;
  if (t > cfg_.max_active) return cfg_.max_active;
  return t;
}

void ElasticController::BeginSweep() {
  phase_ = Phase::kSweep;
  samples_.clear();
  hold_ewma_ = 0.0;
  has_hold_baseline_ = false;
  degraded_epochs_ = 0;
  target_ = cfg_.max_active;
}

int ElasticController::Step(double epoch_throughput) {
  // Controller state is single-owner by contract: exactly one core (the
  // controller CC thread) calls Step, between scheduling quanta; the
  // cross-core inputs all arrive through the published_* atomics read by
  // MaybeReallocate. The tag turns a second caller core into a race
  // report instead of silent state corruption.
  hal::RaceCheck(&decisions_, sizeof(decisions_), /*is_write=*/true,
                 "elastic.controller.state");
  decisions_++;
  const int before = target_;
  if (phase_ == Phase::kSweep) {
    // The finished epoch ran with target_; that is this candidate's sample.
    samples_.push_back({target_, epoch_throughput});
    if (target_ - cfg_.step >= cfg_.min_active) {
      target_ -= cfg_.step;
    } else if (target_ > cfg_.min_active) {
      target_ = cfg_.min_active;  // last candidate: the floor itself
    } else {
      // Sweep complete: settle on the smallest candidate within half a
      // tolerance of the best sample — equivalent throughput with fewer
      // threads wins, but "equivalent" is kept tight because each sample
      // is a single noisy epoch and every bit of slack compounds with
      // that noise toward under-allocation.
      double best = 0.0;
      for (const Sample& s : samples_) best = std::max(best, s.throughput);
      int chosen = cfg_.max_active;
      for (const Sample& s : samples_) {  // descending targets
        if (s.throughput >= best * (1.0 - 0.5 * cfg_.tolerance)) {
          chosen = s.target;
        }
      }
      target_ = chosen;
      // The baseline is seeded from the first *held* epoch, not from the
      // winning sweep sample: a sample that won partly on upward noise
      // would otherwise sit above anything the held target can sustain
      // and trigger a spurious re-sweep loop.
      hold_ewma_ = 0.0;
      has_hold_baseline_ = false;
      degraded_epochs_ = 0;
      phase_ = Phase::kHold;
      sweeps_completed_++;
    }
  } else if (!has_hold_baseline_) {
    // First held epoch: the baseline (an explicit flag — a zero-commit
    // transition epoch must not be mistaken for "no baseline yet" forever,
    // nor a near-zero one be allowed to disable drift detection: the EWMA
    // below recovers from a small seed within a few epochs).
    hold_ewma_ = epoch_throughput;
    has_hold_baseline_ = true;
  } else {
    // Holding. Persistent degradation below the held baseline means the
    // workload moved; re-probe the whole range. Single bad epochs are
    // noise and only nudge the EWMA.
    if (hold_ewma_ > 0.0 &&
        epoch_throughput < hold_ewma_ * (1.0 - 4.0 * cfg_.tolerance)) {
      if (++degraded_epochs_ >= cfg_.drift_epochs) {
        BeginSweep();
        if (target_ != before) moves_++;
        return target_;
      }
    } else {
      degraded_epochs_ = 0;
    }
    hold_ewma_ = (7.0 * hold_ewma_ + epoch_throughput) / 8.0;
  }
  if (target_ != before) moves_++;
  return target_;
}

ElasticController2D::ElasticController2D(const Config& config)
    : cfg_(config) {
  ORTHRUS_CHECK(cfg_.min_cc >= 1 && cfg_.max_cc >= cfg_.min_cc);
  ORTHRUS_CHECK(cfg_.min_exec >= 1 && cfg_.max_exec >= cfg_.min_exec);
  ORTHRUS_CHECK(cfg_.cc_step >= 1 && cfg_.exec_step >= 1);
  ORTHRUS_CHECK(cfg_.drift_epochs >= 1);
  const auto clamp = [](int v, int lo, int hi) {
    return v < lo ? lo : (v > hi ? hi : v);
  };
  target_.cc = clamp(cfg_.initial_cc > 0 ? cfg_.initial_cc : cfg_.max_cc,
                     cfg_.min_cc, cfg_.max_cc);
  target_.exec =
      clamp(cfg_.initial_exec > 0 ? cfg_.initial_exec : cfg_.max_exec,
            cfg_.min_exec, cfg_.max_exec);
  samples_.reserve(static_cast<std::size_t>(
      ((cfg_.max_cc - cfg_.min_cc) / cfg_.cc_step + 2) *
      ((cfg_.max_exec - cfg_.min_exec) / cfg_.exec_step + 2)));
}

void ElasticController2D::BeginSweep() {
  phase_ = Phase::kSweep;
  samples_.clear();
  hold_ewma_ = 0.0;
  has_hold_baseline_ = false;
  degraded_epochs_ = 0;
  target_ = {cfg_.max_cc, cfg_.max_exec};
}

bool ElasticController2D::NextCandidate() {
  // Inner axis: exec down to its floor; then reset exec and step cc.
  if (target_.exec - cfg_.exec_step >= cfg_.min_exec) {
    target_.exec -= cfg_.exec_step;
    return true;
  }
  if (target_.exec > cfg_.min_exec) {
    target_.exec = cfg_.min_exec;
    return true;
  }
  target_.exec = cfg_.max_exec;
  if (target_.cc - cfg_.cc_step >= cfg_.min_cc) {
    target_.cc -= cfg_.cc_step;
    return true;
  }
  if (target_.cc > cfg_.min_cc) {
    target_.cc = cfg_.min_cc;
    return true;
  }
  return false;  // both axes at their floors: grid exhausted
}

ElasticController2D::Target ElasticController2D::Step(
    double epoch_throughput) {
  // Same single-owner contract (and tag) as the 1-D controller.
  hal::RaceCheck(&decisions_, sizeof(decisions_), /*is_write=*/true,
                 "elastic.controller.state");
  decisions_++;
  const Target before = target_;
  if (phase_ == Phase::kSweep) {
    samples_.push_back({target_, epoch_throughput});
    if (!NextCandidate()) {
      // Grid exhausted: hold the candidate within half a tolerance of the
      // best sample that frees the most threads. The band is half-width
      // for the same reason as the 1-D controller: single-epoch samples
      // are noisy and slack compounds toward under-allocation.
      double best = 0.0;
      for (const Sample& s : samples_) best = std::max(best, s.throughput);
      Target chosen = {cfg_.max_cc, cfg_.max_exec};
      int chosen_total = cfg_.max_cc + cfg_.max_exec + 1;
      for (const Sample& s : samples_) {
        if (s.throughput < best * (1.0 - 0.5 * cfg_.tolerance)) continue;
        // Fewest threads wins; equal totals prefer fewer CC threads (an
        // idle CC thread is pure overhead). Equal total and equal cc
        // imply equal exec, so no further tie-break exists.
        const int total = s.target.cc + s.target.exec;
        const bool better =
            total < chosen_total ||
            (total == chosen_total && s.target.cc < chosen.cc);
        if (better) {
          chosen = s.target;
          chosen_total = total;
        }
      }
      target_ = chosen;
      hold_ewma_ = 0.0;
      has_hold_baseline_ = false;
      degraded_epochs_ = 0;
      phase_ = Phase::kHold;
      sweeps_completed_++;
    }
  } else if (!has_hold_baseline_) {
    hold_ewma_ = epoch_throughput;
    has_hold_baseline_ = true;
  } else {
    if (hold_ewma_ > 0.0 &&
        epoch_throughput < hold_ewma_ * (1.0 - 4.0 * cfg_.tolerance)) {
      if (++degraded_epochs_ >= cfg_.drift_epochs) {
        BeginSweep();
        if (target_.cc != before.cc || target_.exec != before.exec) moves_++;
        return target_;
      }
    } else {
      degraded_epochs_ = 0;
    }
    hold_ewma_ = (7.0 * hold_ewma_ + epoch_throughput) / 8.0;
  }
  if (target_.cc != before.cc || target_.exec != before.exec) moves_++;
  return target_;
}

}  // namespace orthrus::engine
