// "Deadlock free locking" baseline (Sections 3.2 and 4): conventional
// shared-everything 2PL *except* that each transaction's read/write set is
// known before execution (via analysis or OLLP reconnaissance) and all
// locks are acquired in a canonical global order in advance of execution.
// Ordered acquisition over FIFO queues makes deadlock impossible, so no
// deadlock-handling logic runs at all — isolating the cost of deadlock
// handling from the cost of lock management itself.
//
// With `split_index` the engine uses physically partitioned indexes
// ("Split Deadlock-free", Section 4.3) to isolate cache-locality effects.
#ifndef ORTHRUS_ENGINE_DEADLOCKFREE_DEADLOCKFREE_ENGINE_H_
#define ORTHRUS_ENGINE_DEADLOCKFREE_DEADLOCKFREE_ENGINE_H_

#include "engine/engine.h"
#include "lock/lock_table.h"

namespace orthrus::engine {

class DeadlockFreeEngine final : public Engine {
 public:
  explicit DeadlockFreeEngine(EngineOptions options, bool split_index = false)
      : options_(options), split_index_(split_index) {}

  RunResult Run(hal::Platform* platform, storage::Database* db,
                const workload::Workload& workload) override;
  std::string name() const override {
    return split_index_ ? "split-deadlock-free" : "deadlock-free";
  }

  bool split_index() const { return split_index_; }

 private:
  EngineOptions options_;
  bool split_index_;
};

}  // namespace orthrus::engine

#endif  // ORTHRUS_ENGINE_DEADLOCKFREE_DEADLOCKFREE_ENGINE_H_
