#include "engine/deadlockfree/deadlockfree_engine.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "runtime/locking_strategy.h"
#include "wal/wal.h"

namespace orthrus::engine {
namespace {

// One attempt of deadlock-free locking: sort the pre-declared access set
// into the canonical global order, acquire everything (FIFO wait via
// runtime::LockingStrategy with a null deadlock policy — deadlock freedom
// by construction), then execute with all locks held.
class DeadlockFreeStrategy final : public runtime::LockingStrategy {
 public:
  DeadlockFreeStrategy(lock::LockTable* lock_table, lock::WorkerLockCtx* ctx,
                       storage::Database* db, WorkerStats* st)
      : LockingStrategy(lock_table, ctx, /*policy=*/nullptr, st), db_(db) {}

  runtime::TxnOutcome TryExecute(txn::Txn* t) override {
    std::sort(t->accesses.begin(), t->accesses.end(), txn::AccessKeyOrder());

    // Phase 1: acquire everything, charged as one kLocking span (waits
    // inside it are additionally charged to kWaiting by the lock table).
    hal::Cycles t0 = hal::Now();
    for (const txn::Access& a : t->accesses) AcquireOrdered(a);
    stats()->Add(TimeCategory::kLocking, hal::Now() - t0);

    // Phase 2: execute with all locks held.
    t0 = hal::Now();
    for (txn::Access& a : t->accesses) ResolveRow(db_, &a);
    txn::ExecContext ec{db_, stats(), /*charge_cycles=*/true};
    const bool ok = t->logic->Run(t, ec);
    stats()->Add(TimeCategory::kExecution, hal::Now() - t0);

    // Durability: capture redo images before the locks drop.
    if (ok && wal_ != nullptr) wal_->Capture(t, db_);
    ReleaseAllLocks();
    return ok ? runtime::TxnOutcome::kCommitted
              : runtime::TxnOutcome::kMismatch;
  }

 private:
  storage::Database* db_;
};

}  // namespace

RunResult DeadlockFreeEngine::Run(hal::Platform* platform,
                                  storage::Database* db,
                                  const workload::Workload& workload) {
  const int n = options_.num_cores;
  const int loggers = options_.wal != nullptr ? options_.wal->loggers() : 0;
  lock::LockTable::Config lt_config;
  lt_config.num_buckets = options_.lock_buckets;
  lt_config.max_lock_heads = options_.max_lock_heads;
  lt_config.max_workers = n;
  lock::LockTable lock_table(lt_config);

  runtime::WorkerPool pool(platform, n + loggers, options_.duration_seconds,
                           options_.rng_seed);
  std::vector<lock::WorkerLockCtx*> ctxs(n);
  for (int w = 0; w < n; ++w) {
    ctxs[w] = lock_table.RegisterWorker(w, &pool.worker(w).stats);
  }

  const runtime::DriverOptions dopts = MakeDriverOptions(options_);
  for (int w = 0; w < n; ++w) {
    pool.Spawn(w, [this, db, &workload, &lock_table, &ctxs,
                   &dopts](runtime::WorkerContext& ctx) {
      std::unique_ptr<workload::TxnSource> source =
          workload.MakeSource(ctx.worker_id);
      DeadlockFreeStrategy strategy(&lock_table, ctxs[ctx.worker_id], db,
                                    &ctx.stats);
      runtime::TxnDriver driver(dopts, db, source.get(), &strategy, &ctx);
      std::unique_ptr<wal::Producer> producer;
      if (options_.wal != nullptr) {
        producer = std::make_unique<wal::Producer>(options_.wal,
                                                   ctx.worker_id, &ctx);
        strategy.set_wal(producer.get());
        driver.set_wal(producer.get());
      }
      driver.Run();
    });
  }
  for (int l = 0; l < loggers; ++l) {
    const int w = n + l;
    pool.AssignRole(w, runtime::WorkerRole::kLogger);
    pool.Spawn(w, [this, l](runtime::WorkerContext& ctx) {
      options_.wal->RunLogger(l, &ctx);
    });
  }

  RunResult result = pool.Run();
  if (options_.wal != nullptr) {
    ORTHRUS_CHECK_MSG(options_.wal->MeshBacklogRaw() == 0,
                      "wal fragments stranded in the mesh after shutdown");
  }
  return result;
}

}  // namespace orthrus::engine
