#include "engine/deadlockfree/deadlockfree_engine.h"

#include <algorithm>
#include <vector>

#include "txn/ollp.h"

namespace orthrus::engine {

RunResult DeadlockFreeEngine::Run(hal::Platform* platform,
                                  storage::Database* db,
                                  const workload::Workload& workload) {
  const int n = options_.num_cores;
  lock::LockTable::Config lt_config;
  lt_config.num_buckets = options_.lock_buckets;
  lt_config.max_lock_heads = options_.max_lock_heads;
  lt_config.max_workers = n;
  lock::LockTable lock_table(lt_config);

  std::vector<WorkerStats> stats(n);
  std::vector<WorkerClock> clocks(n);
  std::vector<lock::WorkerLockCtx*> ctxs(n);
  for (int w = 0; w < n; ++w) ctxs[w] = lock_table.RegisterWorker(w, &stats[w]);

  const double cps = platform->CyclesPerSecond();
  for (int w = 0; w < n; ++w) {
    platform->Spawn(w, [this, w, db, &workload, &lock_table, &stats, &clocks,
                        &ctxs, cps]() {
      WorkerStats& st = stats[w];
      WorkerClock& clock = clocks[w];
      lock::WorkerLockCtx* ctx = ctxs[w];
      std::unique_ptr<workload::TxnSource> source = workload.MakeSource(w);
      txn::Txn t;
      clock.Begin(options_.duration_seconds, cps);

      while (!clock.Expired() &&
             (options_.max_txns_per_worker == 0 ||
              st.committed < options_.max_txns_per_worker)) {
        source->Next(&t);
        txn::OllpPlan(&t, db);
        t.start_cycles = hal::Now();
        t.restarts = 0;

        bool committed = false;
        while (!committed) {
          // Canonical global order: deadlock freedom by construction.
          std::sort(t.accesses.begin(), t.accesses.end(),
                    txn::AccessKeyOrder());

          // Phase 1: acquire everything (FIFO wait, no deadlock handling).
          hal::Cycles t0 = hal::Now();
          for (std::size_t i = 0; i < t.accesses.size(); ++i) {
            const txn::Access& a = t.accesses[i];
            lock::LockTable::AcquireResult r = lock_table.Acquire(
                ctx, a.table, a.key, a.mode, /*policy=*/nullptr);
            if (r == lock::LockTable::AcquireResult::kWaiting) {
              const bool granted = lock_table.Wait(ctx, /*policy=*/nullptr);
              ORTHRUS_CHECK_MSG(granted, "FIFO wait cannot abort");
            }
          }
          st.Add(TimeCategory::kLocking, hal::Now() - t0);

          // Phase 2: execute with all locks held.
          t0 = hal::Now();
          for (txn::Access& a : t.accesses) ResolveRow(db, &a);
          txn::ExecContext ec{db, &st, /*charge_cycles=*/true};
          const bool ok = t.logic->Run(&t, ec);
          st.Add(TimeCategory::kExecution, hal::Now() - t0);

          if (!ok) {
            t0 = hal::Now();
            lock_table.ReleaseAll(ctx);
            st.Add(TimeCategory::kLocking, hal::Now() - t0);
            if (!txn::OllpReplanAfterMismatch(&t, db, &st)) break;
            continue;
          }

          t0 = hal::Now();
          lock_table.ReleaseAll(ctx);
          st.Add(TimeCategory::kLocking, hal::Now() - t0);
          st.committed++;
          st.txn_latency.Record(hal::Now() - t.start_cycles);
          committed = true;
        }
      }
      clock.Finish();
    });
  }

  platform->Run();
  return FinalizeRun(stats, clocks, cps);
}

}  // namespace orthrus::engine
