#include "hal/sim_platform.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "analysis/race_detector.h"

namespace orthrus::hal {

SimPlatform::SimPlatform(int num_cores, SimConfig config)
    : num_cores_(num_cores), config_(config), cores_(num_cores) {
  ORTHRUS_CHECK(num_cores >= 1 && num_cores <= Bitset128::kBits);
  ORTHRUS_CHECK(config_.sockets >= 1);
  if (config_.race_detect) {
    detector_ = std::make_unique<analysis::RaceDetector>(num_cores);
    detector_->set_report_fatal(config_.race_report_fatal);
  }
  for (int i = 0; i < num_cores; ++i) {
    cores_[i].context.platform = this;
    cores_[i].context.core_id = i;
    cores_[i].context.jitter_state = 0x9E3779B97F4A7C15ull * (i + 1) + 1;
    cores_[i].context.race_check = config_.race_detect;
  }
}

SimPlatform::~SimPlatform() = default;

void SimPlatform::Spawn(int core_id, std::function<void()> fn) {
  ORTHRUS_CHECK(core_id >= 0 && core_id < num_cores_);
  ORTHRUS_CHECK_MSG(!cores_[core_id].spawned, "core spawned twice");
  ORTHRUS_CHECK_MSG(!ran_, "Spawn after Run");
  cores_[core_id].fiber = std::make_unique<Fiber>(
      std::move(fn), config_.fiber_stack_bytes);
  cores_[core_id].spawned = true;
  ready_.push(Event{0, seq_++, core_id});
}

void SimPlatform::Run() {
  ORTHRUS_CHECK_MSG(!ran_, "Run called twice");
  ran_ = true;
  // Diagnostics: ORTHRUS_SIM_DEBUG=1 prints progress every 20M events.
  const bool debug = std::getenv("ORTHRUS_SIM_DEBUG") != nullptr;
  std::uint64_t next_report = 20'000'000;
  while (!ready_.empty()) {
    if (debug && stats_.scheduling_events >= next_report) {
      std::fprintf(stderr, "[sim] events=%lluM clock=%lluK rmws=%lluM\n",
                   (unsigned long long)(stats_.scheduling_events / 1000000),
                   (unsigned long long)(clock_ / 1000),
                   (unsigned long long)(stats_.atomic_rmws / 1000000));
      next_report += 20'000'000;
    }
    const Event ev = ready_.top();
    ready_.pop();
    SimCore& core = cores_[ev.core];
    ORTHRUS_DCHECK(ev.time >= clock_);
    clock_ = ev.time;
    current_ = ev.core;
    SetCurrentCore(&core.context);
    stats_.scheduling_events++;
    core.fiber->SwitchIn(&sched_sp_);
    SetCurrentCore(nullptr);
    current_ = -1;
    // A finished fiber simply does not re-enqueue itself.
  }
  // All cores ran to completion. Settle the global clock to the latest
  // completion time (cycle charges after a core's final yield would
  // otherwise be invisible to it).
  for (int i = 0; i < num_cores_; ++i) {
    if (cores_[i].spawned) {
      ORTHRUS_CHECK_MSG(cores_[i].fiber->done(),
                        "core suspended forever (missing CpuRelax in a spin "
                        "loop, or deadlock)");
      clock_ = std::max(clock_, cores_[i].local_now);
    }
  }
}

Cycles SimPlatform::Now() {
  ORTHRUS_DCHECK(current_ >= 0);
  return cores_[current_].local_now;
}

void SimPlatform::ConsumeCycles(Cycles n) {
  ORTHRUS_DCHECK(current_ >= 0);
  cores_[current_].local_now += n;
}

void SimPlatform::Yield() {
  const int core_id = current_;
  SimCore& core = cores_[core_id];
  ready_.push(Event{core.local_now, seq_++, core_id});
  Fiber::SwitchOut(core.fiber->mutable_sp(), sched_sp_);
  // Resumed: the scheduler has re-installed our CoreContext.
  ORTHRUS_DCHECK(current_ == core_id);
}

void SimPlatform::CpuRelax() {
  ORTHRUS_DCHECK(current_ >= 0);
  cores_[current_].local_now += config_.relax_cycles;
  Yield();
}

void SimPlatform::OnAtomicAccess(LineMeta* line, MemOp op) {
  ORTHRUS_DCHECK(current_ >= 0);
  // Reorder: the access must be applied in virtual-time order relative to
  // other cores' accesses, so suspend until this core is the earliest.
  Yield();

  SimCore& core = cores_[current_];
  const int me = current_;
  const Cycles t = core.local_now;

  // Happens-before bookkeeping (race_detect only): modeled atomics with
  // acquire/release semantics are the sync edges plain-payload accesses are
  // checked against. mp ring payload lines opt out (LineMeta::sync_var) —
  // their words are relaxed, ordered only by the queue indices. No cycles
  // are charged: detection must not move the schedule.
  if (detector_ != nullptr && line->sync_var) {
    detector_->OnSyncAccess(
        line,
        op == MemOp::kLoad    ? analysis::SyncOp::kAcquire
        : op == MemOp::kStore ? analysis::SyncOp::kRelease
                              : analysis::SyncOp::kAcqRel,
        me);
  }

  const bool exclusive_here = line->owner == me && line->readers.Test(me) &&
                              !line->readers.AnyOtherThan(me);
  // Multi-socket model: a transfer is same-socket when the line's current
  // location — its owner, or its placed home node while unowned — shares a
  // socket with the requester. Single-socket configs never take this path,
  // keeping their cost arithmetic identical to the pre-NUMA model.
  bool local_transfer = false;
  if (config_.sockets > 1) {
    const int loc_socket = line->owner >= 0
                               ? SocketOf(line->owner)
                               : static_cast<int>(line->home);
    local_transfer = loc_socket >= 0 && loc_socket == SocketOf(me);
  }

  // Every cross-socket transfer flows through the shared coherence fabric,
  // which has finite aggregate capacity. Returns the queueing delay
  // suffered. Same-socket transfers never touch it.
  auto charge_interconnect = [&](Cycles start) -> Cycles {
    const Cycles begin = std::max(start, interconnect_busy_until_);
    interconnect_busy_until_ = begin + config_.interconnect_service_cycles;
    stats_.interconnect_stall_cycles += begin - start;
    return begin - start;
  };

  // Cost of pulling the line to this core, distance-aware.
  auto transfer_cost = [&](Cycles start) -> Cycles {
    if (local_transfer) {
      stats_.local_transfers++;
      return config_.local_transfer_cycles;
    }
    stats_.remote_transfers++;
    return config_.remote_transfer_cycles + charge_interconnect(start);
  };

  switch (op) {
    case MemOp::kRmw: {
      stats_.atomic_rmws++;
      // Atomic RMWs must own the line for their full service time; pending
      // operations on the line serialize behind each other. This is the
      // mechanism behind contended-latch collapse (Figure 1).
      const Cycles start = std::max(t, line->busy_until);
      stats_.rmw_stall_cycles += start - t;
      Cycles cost;
      if (exclusive_here) {
        cost = config_.l1_hit_cycles;
      } else {
        int sharers = line->readers.Count();
        if (line->readers.Test(me)) sharers--;
        cost = transfer_cost(start) +
               config_.invalidate_per_sharer * static_cast<Cycles>(sharers);
      }
      line->busy_until = start + config_.rmw_service_cycles;
      line->owner = static_cast<std::int16_t>(me);
      line->readers.Reset();
      line->readers.Set(me);
      core.local_now = start + cost;
      break;
    }
    case MemOp::kStore: {
      stats_.atomic_stores++;
      // Plain (release) stores drain through the store buffer: the core
      // does not stall on the line transfer, but the line is still briefly
      // occupied by the resulting coherence transaction and sharers lose
      // their copies. The transfer still consumes fabric capacity (charged
      // to the line, not the core).
      Cycles fabric_delay = 0;
      if (!exclusive_here) {
        if (local_transfer) {
          stats_.local_transfers++;
        } else {
          stats_.remote_transfers++;
          fabric_delay = charge_interconnect(t);
        }
      }
      line->busy_until = std::max(t, line->busy_until) + fabric_delay +
                         config_.store_service_cycles;
      line->owner = static_cast<std::int16_t>(me);
      line->readers.Reset();
      line->readers.Set(me);
      core.local_now =
          t + (exclusive_here ? config_.l1_hit_cycles
                              : config_.store_buffer_cycles);
      break;
    }
    case MemOp::kLoad: {
      stats_.atomic_reads++;
      // Reads wait for in-flight line occupancy but do not extend it.
      const Cycles start = std::max(t, line->busy_until);
      Cycles cost;
      if (line->readers.Test(me)) {
        cost = config_.l1_hit_cycles;
      } else {
        cost = transfer_cost(start);
        line->readers.Set(me);
      }
      core.local_now = start + cost;
      break;
    }
  }
}

void SimPlatform::OnStorageSync(StorageMeta* device, std::uint64_t bytes) {
  ORTHRUS_DCHECK(current_ >= 0);
  // Syncs are ordering points like atomic accesses: apply in virtual-time
  // order so device occupancy is charged deterministically.
  Yield();
  SimCore& core = cores_[current_];
  const Cycles t = core.local_now;
  // The device finishes in-flight syncs first (fsyncs on one log device
  // serialize), then streams this batch out.
  const Cycles start = std::max(t, device->busy_until);
  const Cycles lines = (static_cast<Cycles>(bytes) + 63) / 64;
  const Cycles service = config_.storage_sync_base_cycles +
                         config_.storage_sync_line_cycles * lines;
  device->busy_until = start + service;
  stats_.storage_syncs++;
  stats_.storage_sync_bytes += bytes;
  stats_.storage_stall_cycles += start - t;
  // The caller blocks until its data is stable — that is the whole point of
  // a sync, and what group commit amortizes.
  core.local_now = start + service;
}

void SimPlatform::OnPlainAccess(const void* addr, std::size_t bytes,
                                bool is_write, const char* label) {
  // Not a scheduling point and charges nothing: plain accesses are already
  // paid for via ConsumeCycles by the callers, and the detector must see
  // the same event order whether it is on or off. Reached only from a
  // running core (hal::RaceCheck gates on CoreContext::race_check, which is
  // only set when the detector exists).
  ORTHRUS_DCHECK(current_ >= 0 && detector_ != nullptr);
  detector_->OnPlainAccess(addr, bytes, is_write, label, current_,
                           cores_[current_].local_now);
}

void SimPlatform::OnPrefetchSweep(std::size_t lines) {
  // One flat fill window per sweep, regardless of line count: the fills
  // overlap, which is the benefit prefetching buys over demand misses. Not
  // a scheduling point — like ConsumeCycles, it just advances the local
  // clock, so a path that never sweeps is byte-identical.
  ORTHRUS_DCHECK(current_ >= 0);
  cores_[current_].local_now += config_.prefetch_sweep_cycles;
  stats_.prefetch_sweeps++;
  stats_.prefetch_lines += lines;
}

}  // namespace orthrus::hal
