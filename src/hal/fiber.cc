#include "hal/fiber.h"

#include <cstdlib>

#include "common/macros.h"

namespace orthrus::hal {

Fiber::Fiber(Entry entry, std::size_t stack_size)
    : entry_(std::move(entry)) {
  ORTHRUS_CHECK(stack_size >= 16 * 1024);
  stack_ = std::make_unique<std::uint8_t[]>(stack_size);

  std::uintptr_t top =
      reinterpret_cast<std::uintptr_t>(stack_.get() + stack_size);
  top &= ~static_cast<std::uintptr_t>(15);  // 16-byte alignment
  std::uint64_t* p = reinterpret_cast<std::uint64_t*>(top);
#if defined(__aarch64__)
  // Build the initial frame fiber_swap_aarch64.S expects: a zeroed
  // 160-byte callee-saved register file with the x30 slot aimed at the
  // trampoline and the x19 slot carrying the fiber pointer.
  std::uint64_t* frame = p - 20;  // 160 bytes, keeps sp 16-aligned
  for (int i = 0; i < 20; ++i) frame[i] = 0;
  frame[0] = reinterpret_cast<std::uint64_t>(this);  // x19
  frame[11] =
      reinterpret_cast<std::uint64_t>(&orthrus_fiber_trampoline);  // x30
  sp_ = frame;
#else
  // Build the initial frame fiber_swap.S expects: six callee-saved
  // register slots below a return address pointing at the trampoline. %r12
  // carries the fiber pointer into the trampoline.
  *(p - 1) = 0;  // alignment pad / fake caller frame
  *(p - 2) = reinterpret_cast<std::uint64_t>(&orthrus_fiber_trampoline);
  *(p - 3) = 0;                                      // rbp
  *(p - 4) = 0;                                      // rbx
  *(p - 5) = reinterpret_cast<std::uint64_t>(this);  // r12
  *(p - 6) = 0;                                      // r13
  *(p - 7) = 0;                                      // r14
  *(p - 8) = 0;                                      // r15
  sp_ = p - 8;
#endif
}

Fiber::~Fiber() {
  // A fiber must not be destroyed while suspended mid-execution unless it
  // already ran to completion; destroying a live fiber would leak whatever
  // its stack owns. Platforms join all cores before tearing down.
}

void Fiber::SwitchIn(void** save_sp) {
  ORTHRUS_DCHECK(!done_);
  exit_sp_slot_ = save_sp;
  orthrus_fiber_swap(save_sp, sp_);
}

void Fiber::SwitchOut(void** save_sp, void* to_sp) {
  orthrus_fiber_swap(save_sp, to_sp);
}

void Fiber::Entrypoint(Fiber* self) {
  self->entry_();
  self->done_ = true;
  // Return to whoever resumed us most recently. The saved context lives in
  // the slot the resumer passed to SwitchIn.
  void* dummy;
  orthrus_fiber_swap(&dummy, *self->exit_sp_slot_);
  // Unreachable: a finished fiber is never switched into again.
  std::abort();
}

}  // namespace orthrus::hal

extern "C" void orthrus_fiber_entry(void* fiber) {
  orthrus::hal::Fiber::Entrypoint(static_cast<orthrus::hal::Fiber*>(fiber));
  std::abort();  // Entrypoint never returns.
}
