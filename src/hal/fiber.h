// Stackful fibers backing the simulator's logical cores. A fiber is a
// cooperatively-scheduled execution context with its own stack; switching
// costs a few dozen nanoseconds (hand-written register swap, no syscalls),
// which is what makes simulating millions of scheduling events per second
// feasible on the single-core host.
#ifndef ORTHRUS_HAL_FIBER_H_
#define ORTHRUS_HAL_FIBER_H_

#include <cstdint>
#include <functional>
#include <memory>

// Assembly entry points (fiber_swap.S).
extern "C" {
void orthrus_fiber_swap(void** save_sp, void* restore_sp);
void orthrus_fiber_trampoline();
// C++ landing pad invoked by the trampoline; defined in fiber.cc.
void orthrus_fiber_entry(void* fiber);
}

namespace orthrus::hal {

class Fiber {
 public:
  using Entry = std::function<void()>;

  // Creates a suspended fiber that will run `entry` on first activation.
  explicit Fiber(Entry entry, std::size_t stack_size = 256 * 1024);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  // Switches from the calling context into this fiber; the caller's context
  // is saved into *save_sp and control returns here when the fiber switches
  // back out (via SwitchOut) or finishes.
  void SwitchIn(void** save_sp);

  // Switches from inside a fiber back to the context saved at to_sp,
  // recording the fiber's own context so it can be resumed later.
  static void SwitchOut(void** save_sp, void* to_sp);

  bool done() const { return done_; }
  void** mutable_sp() { return &sp_; }

 private:
  friend void ::orthrus_fiber_entry(void* fiber);

  // Called (via the asm trampoline) on first activation. Runs the entry
  // function, marks the fiber done and returns control to the resumer.
  static void Entrypoint(Fiber* self);

  std::unique_ptr<std::uint8_t[]> stack_;
  void* sp_ = nullptr;
  // Slot holding the most recent resumer's saved context; the fiber returns
  // through it when the entry function finishes. Set by SwitchIn.
  void** exit_sp_slot_ = nullptr;
  Entry entry_;
  bool done_ = false;
};

}  // namespace orthrus::hal

#endif  // ORTHRUS_HAL_FIBER_H_
