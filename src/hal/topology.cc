#include "hal/topology.h"

#include <algorithm>
#include <thread>

#include "common/macros.h"

#if defined(__linux__)
#include <sched.h>

#include <cstdio>
#endif

namespace orthrus::hal {

// Builder shared by the factories; fills the private members directly.
struct TopologyBuilder {
  static Topology Build(std::vector<int> socket_of, int sockets) {
    ORTHRUS_CHECK(sockets >= 1);
    Topology t;
    t.cores_on_.resize(sockets);
    for (int core = 0; core < static_cast<int>(socket_of.size()); ++core) {
      ORTHRUS_CHECK(socket_of[core] >= 0 && socket_of[core] < sockets);
      t.cores_on_[socket_of[core]].push_back(core);
    }
    t.socket_of_ = std::move(socket_of);
    return t;
  }
};

Topology Topology::Flat(int cores) {
  ORTHRUS_CHECK(cores >= 1);
  return TopologyBuilder::Build(std::vector<int>(cores, 0), 1);
}

Topology Topology::Modeled(int cores, int sockets) {
  ORTHRUS_CHECK(cores >= 1);
  if (sockets <= 1) return Flat(cores);
  if (sockets > cores) sockets = cores;
  std::vector<int> socket_of(cores);
  for (int core = 0; core < cores; ++core) socket_of[core] = core % sockets;
  return TopologyBuilder::Build(std::move(socket_of), sockets);
}

Topology Topology::Discover() {
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
#if defined(__linux__)
  cpu_set_t mask;
  CPU_ZERO(&mask);
  bool have_mask = sched_getaffinity(0, sizeof(mask), &mask) == 0;
  std::vector<int> cpus;
  for (int cpu = 0; cpu < CPU_SETSIZE; ++cpu) {
    if (!have_mask) {
      if (cpu >= static_cast<int>(hw)) break;
      cpus.push_back(cpu);
    } else if (CPU_ISSET(cpu, &mask)) {
      cpus.push_back(cpu);
    }
  }
  if (cpus.empty()) return Flat(static_cast<int>(hw));

  std::vector<int> package(cpus.size(), 0);
  bool any = false;
  for (std::size_t i = 0; i < cpus.size(); ++i) {
    char path[128];
    std::snprintf(path, sizeof(path),
                  "/sys/devices/system/cpu/cpu%d/topology/physical_package_id",
                  cpus[i]);
    std::FILE* f = std::fopen(path, "r");
    if (f == nullptr) continue;
    int id = 0;
    if (std::fscanf(f, "%d", &id) == 1 && id >= 0) {
      package[i] = id;
      any = true;
    }
    std::fclose(f);
  }
  if (!any) return Flat(static_cast<int>(cpus.size()));

  // Compact package ids to dense socket indices in first-seen order.
  std::vector<int> ids;
  std::vector<int> socket_of(cpus.size());
  for (std::size_t i = 0; i < cpus.size(); ++i) {
    auto it = std::find(ids.begin(), ids.end(), package[i]);
    if (it == ids.end()) {
      ids.push_back(package[i]);
      it = ids.end() - 1;
    }
    socket_of[i] = static_cast<int>(it - ids.begin());
  }
  return TopologyBuilder::Build(std::move(socket_of),
                                static_cast<int>(ids.size()));
#else
  return Flat(static_cast<int>(hw));
#endif
}

Topology Topology::Make(const TopologyOptions& opts, int cores) {
  if (opts.discover) return Discover();
  if (opts.sockets > 1) return Modeled(cores, opts.sockets);
  return Flat(cores < 1 ? 1 : cores);
}

std::vector<int> Topology::PackGroups(
    const std::vector<std::vector<int>>& groups) const {
  std::size_t workers = 0;
  for (const auto& g : groups) workers += g.size();

  // Socket-major enumeration: all of socket 0's cores, then socket 1's...
  std::vector<int> order;
  order.reserve(socket_of_.size());
  for (const auto& cores : cores_on_) {
    order.insert(order.end(), cores.begin(), cores.end());
  }
  ORTHRUS_CHECK_MSG(workers <= order.size(),
                    "more workers than topology cores");

  std::vector<int> core_of_worker(workers, 0);
  std::size_t next = 0;
  for (const auto& g : groups) {
    for (int worker : g) {
      ORTHRUS_CHECK(worker >= 0 && worker < static_cast<int>(workers));
      core_of_worker[worker] = order[next++];
    }
  }
  return core_of_worker;
}

}  // namespace orthrus::hal
