// NUMA-aware slab allocator backing the engine's long-lived flat arrays:
// table row slabs, LineRing blocks, lock-table buckets, and 512-aligned
// TCBs. Carves line-aligned chunks out of mmap'd slabs; optionally binds
// slabs to a NUMA node (raw mbind syscall, best effort) and requests 2 MB
// huge pages (MAP_HUGETLB with a plain-page fallback).
//
// There is no per-object free: everything lives until the arena dies, which
// matches how the engine uses these arrays (allocated once in Run(), torn
// down when the engine exits). Objects placed here via AllocateArray are
// value-initialized; non-trivially-destructible objects must be destroyed
// manually by the owner before the arena goes away.

#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace orthrus::hal {

struct SlabArenaOptions {
  int node = -1;            // >= 0: prefer this NUMA node (mbind, best effort)
  bool huge_pages = false;  // try MAP_HUGETLB first, fall back silently
  std::size_t slab_bytes = 2u << 20;  // granularity of mmap reservations
};

class SlabArena {
 public:
  explicit SlabArena(SlabArenaOptions opts = {});
  ~SlabArena();

  SlabArena(const SlabArena&) = delete;
  SlabArena& operator=(const SlabArena&) = delete;

  // Zeroed storage (mmap pages start zeroed and the bump pointer never
  // reuses space). Alignment must be a power of two, at most 4096.
  void* Allocate(std::size_t bytes, std::size_t align = 64);

  // Value-initialized array of T. T's destructor is NOT run by the arena.
  template <typename T>
  T* AllocateArray(std::size_t n) {
    static_assert(alignof(T) <= 4096, "alignment beyond page size");
    std::size_t align = alignof(T) < 64 ? 64 : alignof(T);
    T* p = static_cast<T*>(Allocate(n * sizeof(T), align));
    for (std::size_t i = 0; i < n; ++i) new (p + i) T();
    return p;
  }

  int node() const { return opts_.node; }
  std::size_t slabs() const { return slabs_.size(); }
  std::size_t bytes_reserved() const { return bytes_reserved_; }
  std::size_t bytes_used() const { return bytes_used_; }
  // True if at least one slab actually got MAP_HUGETLB pages.
  bool huge_pages_active() const { return huge_pages_active_; }

 private:
  struct Slab {
    void* base = nullptr;
    std::size_t bytes = 0;
  };

  void NewSlab(std::size_t min_bytes);

  SlabArenaOptions opts_;
  std::vector<Slab> slabs_;
  std::uint8_t* cursor_ = nullptr;
  std::uint8_t* limit_ = nullptr;
  std::size_t bytes_reserved_ = 0;
  std::size_t bytes_used_ = 0;
  bool huge_pages_active_ = false;
};

// Lazily materialized per-node arenas, so placement code can say "give me
// the arena for socket s" without pre-deciding how many sockets exist.
class NodeArenaSet {
 public:
  explicit NodeArenaSet(SlabArenaOptions base = {}) : base_(base) {}

  // Arena bound to `node`; node < 0 yields a single unbound arena.
  SlabArena* ForNode(int node) {
    std::size_t slot = node < 0 ? 0 : static_cast<std::size_t>(node) + 1;
    if (slot >= arenas_.size()) arenas_.resize(slot + 1);
    if (arenas_[slot] == nullptr) {
      SlabArenaOptions opts = base_;
      opts.node = node < 0 ? -1 : node;
      arenas_[slot] = std::make_unique<SlabArena>(opts);
    }
    return arenas_[slot].get();
  }

 private:
  SlabArenaOptions base_;
  std::vector<std::unique_ptr<SlabArena>> arenas_;  // [0]=unbound, [n+1]=node n
};

}  // namespace orthrus::hal
