#include "hal/hal.h"

namespace orthrus::hal {

namespace {
// Identifies the logical core for the calling OS thread. Under simulation
// all fibers share one OS thread and the scheduler rewrites this on every
// fiber switch; under the native platform each spawned thread sets it once.
thread_local CoreContext* tls_current_core = nullptr;
}  // namespace

CoreContext* CurrentCore() { return tls_current_core; }

void SetCurrentCore(CoreContext* ctx) { tls_current_core = ctx; }

}  // namespace orthrus::hal
