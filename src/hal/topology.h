// Socket/core topology used for NUMA-aware placement decisions.
//
// Two sources:
//   * Modeled(cores, sockets): a deterministic synthetic topology whose
//     core->socket map matches SimConfig::sockets (core i lives on socket
//     i % sockets, mirroring Linux's round-robin package enumeration), so
//     placement decisions made against it are reproducible in the sim.
//   * Discover(): the native machine, from sysfs physical_package_id
//     restricted to the current affinity mask; falls back to a flat
//     single-socket view when sysfs is unavailable.
//
// A flat topology (num_sockets() <= 1) is the "placement off" state: every
// consumer must behave exactly as if no topology were supplied.

#pragma once

#include <vector>

namespace orthrus::hal {

// Engine-facing knobs. The default (sockets == 0) means "no modeled
// topology": placement stays disabled unless discovery is requested and
// finds a real multi-socket machine.
struct TopologyOptions {
  int sockets = 0;      // >1: model this many sockets over the worker count
  bool discover = false;  // native: read the machine topology from sysfs
  bool pin_threads = false;  // native: pthread_setaffinity_np workers
};

class Topology {
 public:
  // Single socket holding `cores` cores; placement decisions are identity.
  static Topology Flat(int cores);

  // Synthetic topology: core i sits on socket i % sockets. This matches
  // SimPlatform's SocketOf so sim runs and placement agree on distances.
  static Topology Modeled(int cores, int sockets);

  // Native discovery via /sys/devices/system/cpu/cpu*/topology/
  // physical_package_id over the process affinity mask. Falls back to
  // Flat(hardware_concurrency) when sysfs is missing (non-Linux, chroot).
  static Topology Discover();

  // Resolve options against a concrete worker count.
  static Topology Make(const TopologyOptions& opts, int cores);

  int num_cores() const { return static_cast<int>(socket_of_.size()); }
  int num_sockets() const { return static_cast<int>(cores_on_.size()); }
  bool flat() const { return num_sockets() <= 1; }

  int SocketOf(int core) const { return socket_of_[core]; }
  const std::vector<int>& CoresOn(int socket) const {
    return cores_on_[socket];
  }

  // Place worker groups onto cores. Workers are named by their position in
  // the concatenation of `groups`; the result maps worker id -> core id.
  // Cores are consumed in socket-major order (all of socket 0, then socket
  // 1, ...), each group contiguously, so the first group — CC threads plus
  // the log streams they own — lands together on socket 0 and later groups
  // (exec threads) fill the remaining sockets. On a flat topology
  // socket-major order is just 0..N-1, so the mapping degenerates to
  // identity when groups are emitted in worker-id order.
  std::vector<int> PackGroups(
      const std::vector<std::vector<int>>& groups) const;

 private:
  friend struct TopologyBuilder;

  std::vector<int> socket_of_;             // core -> socket
  std::vector<std::vector<int>> cores_on_;  // socket -> cores (ascending)
};

}  // namespace orthrus::hal
