// Deterministic discrete-event multicore simulator.
//
// Logical cores are fibers scheduled in virtual-time order. Computation is
// declared with ConsumeCycles; atomic operations are the synchronization
// points at which fibers are (re)ordered and charged cache-coherence costs:
//
//  * a core re-reading a line it already shares pays an L1 hit;
//  * reading or writing a line owned elsewhere pays a transfer latency;
//  * writes invalidate sharers (cost grows with sharer count);
//  * atomic read-modify-writes additionally *occupy* the line for a service
//    interval, so contended RMWs on one line serialize no matter how many
//    cores issue them.
//
// Those three mechanisms are exactly the overheads the paper attributes to
// conflated functionality (Section 2.1): synchronization cost on contended
// meta-data, data movement between cores, and the resulting collapse of
// latch-based structures at high core counts.
#ifndef ORTHRUS_HAL_SIM_PLATFORM_H_
#define ORTHRUS_HAL_SIM_PLATFORM_H_

#include <memory>
#include <queue>
#include <vector>

#include "hal/fiber.h"
#include "hal/hal.h"

namespace orthrus::analysis {
class RaceDetector;
}  // namespace orthrus::analysis

namespace orthrus::hal {

// Cost model. Defaults approximate the paper's testbed — an 8-socket Intel
// E7-8850 at ~2 GHz, where a contended line transfer crosses the socket
// interconnect (hundreds of cycles) and atomic RMWs on one line serialize.
// Shapes (not absolute numbers) are what matter for the reproduction.
struct SimConfig {
  double ghz = 2.0;                  // cycles -> seconds conversion
  Cycles l1_hit_cycles = 2;          // access to a locally cached line
  Cycles remote_transfer_cycles = 200;  // cross-socket line transfer
  Cycles rmw_service_cycles = 120;   // line occupancy per atomic RMW
  Cycles store_buffer_cycles = 6;    // core-visible cost of a plain store
  Cycles store_service_cycles = 40;  // line occupancy per plain store
  Cycles invalidate_per_sharer = 25; // added write cost per invalidated sharer
  // Aggregate coherence-fabric capacity: every remote line transfer also
  // occupies the (shared) interconnect for this long. 4 cycles at 2 GHz
  // caps the machine at ~333M line transfers/s — the resource whose
  // saturation flattens otherwise conflict-free workloads at high core
  // counts (Figure 1).
  Cycles interconnect_service_cycles = 6;
  // Modeled socket count. 1 (the default) keeps the flat machine: every
  // transfer is "remote" and the cost arithmetic is bit-for-bit what it was
  // before sockets existed. With sockets > 1, core i lives on socket
  // i % sockets (Linux's round-robin package enumeration), transfers whose
  // endpoints share a socket cost local_transfer_cycles, and — key for the
  // Figure-1 saturation story — same-socket transfers stay off the shared
  // cross-socket interconnect entirely.
  int sockets = 1;
  Cycles local_transfer_cycles = 60;  // same-socket line transfer
  Cycles relax_cycles = 40;          // one CpuRelax pause
  // Stable-storage sync model (wal group commit). A sync stalls the caller
  // for a fixed device latency plus a per-line streaming cost, and occupies
  // the device for that long — concurrent syncs on one device serialize,
  // exactly how line transfers occupy the interconnect above. 16K cycles at
  // 2 GHz is ~8 µs, the right shape for a battery-backed / NVMe log device
  // (a group commit amortizes it over the whole batch).
  Cycles storage_sync_base_cycles = 16000;
  Cycles storage_sync_line_cycles = 4;   // per 64B written since last sync
  // Prefetch sweep model (hal::PrefetchSweep). A batch of prefetches issued
  // ahead of processing overlaps its line fills: the sweep charges this flat
  // window once per batch — roughly one memory-latency exposure (the default
  // matches local_transfer_cycles) — instead of a serial miss per line. The
  // *benefit* shows up indirectly: code paths written against a prefetched
  // batch declare cheaper per-op ConsumeCycles. Charged only when a sweep is
  // actually issued, so paths that never prefetch are byte-identical.
  Cycles prefetch_sweep_cycles = 60;
  std::size_t fiber_stack_bytes = 256 * 1024;
  // Happens-before race detection (analysis::RaceDetector): modeled atomic
  // accesses become vector-clock sync edges and hal::RaceCheck'd plain
  // accesses are verified against them. Detection charges no cycles and
  // never yields, so turning it on does not perturb the schedule — and off
  // (the default) the detector is never constructed and every hook is a
  // single untaken branch: clocks and digests stay byte-identical.
  bool race_detect = false;
  // With race_detect: print and abort on the first race instead of
  // accumulating reports. The CI race arm runs the engine suites this way
  // so a regression fails at the exact virtual timestamp it happens.
  bool race_report_fatal = false;
};

// Aggregate simulator counters (for micro-benchmarks and tests).
struct SimStats {
  std::uint64_t scheduling_events = 0;
  std::uint64_t atomic_reads = 0;
  std::uint64_t atomic_stores = 0;
  std::uint64_t atomic_rmws = 0;
  std::uint64_t remote_transfers = 0;   // cross-socket (all, when sockets==1)
  std::uint64_t local_transfers = 0;    // same-socket (sockets > 1 only)
  std::uint64_t rmw_stall_cycles = 0;  // cycles spent waiting on busy lines
  std::uint64_t interconnect_stall_cycles = 0;
  std::uint64_t storage_syncs = 0;
  std::uint64_t storage_sync_bytes = 0;
  std::uint64_t storage_stall_cycles = 0;  // queueing behind a busy device
  std::uint64_t prefetch_sweeps = 0;       // hal::PrefetchSweep batches
  std::uint64_t prefetch_lines = 0;        // lines covered by those sweeps
};

class SimPlatform final : public Platform {
 public:
  explicit SimPlatform(int num_cores, SimConfig config = SimConfig());
  ~SimPlatform() override;

  int num_cores() const override { return num_cores_; }
  bool is_simulated() const override { return true; }
  void Spawn(int core_id, std::function<void()> fn) override;
  void Run() override;
  double CyclesPerSecond() const override { return config_.ghz * 1e9; }

  Cycles Now() override;
  void ConsumeCycles(Cycles n) override;
  void CpuRelax() override;
  void OnAtomicAccess(LineMeta* line, MemOp op) override;
  void OnStorageSync(StorageMeta* device, std::uint64_t bytes) override;
  void OnPlainAccess(const void* addr, std::size_t bytes, bool is_write,
                     const char* label) override;
  void OnPrefetchSweep(std::size_t lines) override;

  // Virtual time of the most recently dispatched event.
  Cycles GlobalClock() const { return clock_; }
  const SimStats& stats() const { return stats_; }
  const SimConfig& config() const { return config_; }

  // Race detector, or nullptr unless SimConfig::race_detect. Inspect its
  // reports() after Run() — the schedule is deterministic, so the first
  // report of a given seed/config is always the same race.
  analysis::RaceDetector* race_detector() { return detector_.get(); }

  // Modeled socket of a core (0 on a single-socket config). Matches
  // Topology::Modeled(num_cores, config.sockets) so placement decisions and
  // the cost model agree on distances.
  int SocketOf(int core) const {
    return config_.sockets <= 1 ? 0 : core % config_.sockets;
  }

 private:
  struct SimCore {
    std::unique_ptr<Fiber> fiber;
    Cycles local_now = 0;
    CoreContext context;
    bool spawned = false;
  };

  struct Event {
    Cycles time;
    std::uint64_t seq;
    int core;
    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  // Suspends the current fiber, re-enqueueing it at its local clock, and
  // returns once the scheduler hands control back (i.e. once every other
  // fiber with an earlier virtual time has run).
  void Yield();

  int num_cores_;
  SimConfig config_;
  std::vector<SimCore> cores_;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> ready_;
  std::uint64_t seq_ = 0;
  Cycles clock_ = 0;
  Cycles interconnect_busy_until_ = 0;
  int current_ = -1;     // core id of the running fiber, -1 in scheduler
  void* sched_sp_ = nullptr;
  bool ran_ = false;
  SimStats stats_;
  std::unique_ptr<analysis::RaceDetector> detector_;  // race_detect only
};

}  // namespace orthrus::hal

#endif  // ORTHRUS_HAL_SIM_PLATFORM_H_
