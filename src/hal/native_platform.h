// Real-hardware platform: logical cores are std::threads, atomics are plain
// std::atomics, time is the wall clock. Used by the test suite to validate
// engine thread-safety with true concurrency, and by downstream users on
// real many-core machines (where one would also pin threads to cores).
#ifndef ORTHRUS_HAL_NATIVE_PLATFORM_H_
#define ORTHRUS_HAL_NATIVE_PLATFORM_H_

#include <chrono>
#include <functional>
#include <thread>
#include <vector>

#include "hal/hal.h"

namespace orthrus::hal {

class NativePlatform final : public Platform {
 public:
  explicit NativePlatform(int num_cores);
  ~NativePlatform() override;

  int num_cores() const override { return num_cores_; }
  bool is_simulated() const override { return false; }
  void Spawn(int core_id, std::function<void()> fn) override;
  void Run() override;

  // Opt-in: pin each spawned worker thread to OS CPU (core_id % nproc) via
  // pthread_setaffinity_np before it runs. Off by default — tests routinely
  // run more logical cores than the host has, and pinning there would just
  // serialize them. Call before Run.
  void SetPinThreads(bool pin) { pin_threads_ = pin; }
  double CyclesPerSecond() const override { return kGhz * 1e9; }

  Cycles Now() override;
  void ConsumeCycles(Cycles n) override;
  void CpuRelax() override;
  void OnAtomicAccess(LineMeta* line, MemOp op) override;

  // On real hardware the hal::Prefetch calls preceding the sweep already
  // issued the prefetch instructions; the sweep itself has nothing left to
  // do (no cost model to charge).
  void OnPrefetchSweep(std::size_t lines) override { (void)lines; }

 private:
  // Nominal rate used to convert wall nanoseconds into "cycles" so that
  // engine code can use one time unit on both platforms.
  static constexpr double kGhz = 2.0;

  struct NativeCore {
    std::function<void()> fn;
    CoreContext context;
    bool spawned = false;
  };

  int num_cores_;
  std::vector<NativeCore> cores_;
  std::vector<std::thread> threads_;
  std::chrono::steady_clock::time_point epoch_;
  bool ran_ = false;
  bool pin_threads_ = false;
};

}  // namespace orthrus::hal

#endif  // ORTHRUS_HAL_NATIVE_PLATFORM_H_
