#include "hal/slab_arena.h"

#include <cstring>

#include "common/macros.h"

#if defined(__linux__) || defined(__APPLE__)
#include <sys/mman.h>

#include <unistd.h>
#define ORTHRUS_SLAB_MMAP 1
#endif

#if defined(__linux__)
#include <sys/syscall.h>
#endif

namespace orthrus::hal {

namespace {

constexpr std::size_t kHugePageBytes = 2u << 20;

std::size_t RoundUp(std::size_t v, std::size_t align) {
  return (v + align - 1) & ~(align - 1);
}

// Best-effort MPOL_PREFERRED binding via the raw syscall: libnuma is not a
// dependency we can take, and a failed bind (no NUMA support, node out of
// range, kernel without CONFIG_NUMA) must degrade to first-touch, not fail.
void BindToNode(void* addr, std::size_t len, int node) {
#if defined(__linux__) && defined(SYS_mbind)
  if (node < 0 || node >= 64) return;
  constexpr int kMpolPreferred = 1;
  unsigned long nodemask = 1ul << node;
  syscall(SYS_mbind, addr, len, kMpolPreferred, &nodemask,
          static_cast<unsigned long>(64 + 1), 0u);
#else
  (void)addr;
  (void)len;
  (void)node;
#endif
}

}  // namespace

SlabArena::SlabArena(SlabArenaOptions opts) : opts_(opts) {
  if (opts_.slab_bytes < (1u << 16)) opts_.slab_bytes = 1u << 16;
  opts_.slab_bytes = RoundUp(opts_.slab_bytes, 4096);
}

SlabArena::~SlabArena() {
  for (const Slab& slab : slabs_) {
#if defined(ORTHRUS_SLAB_MMAP)
    munmap(slab.base, slab.bytes);
#else
    ::operator delete(slab.base, std::align_val_t(4096));
#endif
  }
}

void SlabArena::NewSlab(std::size_t min_bytes) {
  std::size_t bytes = RoundUp(min_bytes > opts_.slab_bytes ? min_bytes
                                                           : opts_.slab_bytes,
                              4096);
  void* base = nullptr;
#if defined(ORTHRUS_SLAB_MMAP)
#if defined(MAP_HUGETLB)
  if (opts_.huge_pages) {
    std::size_t huge = RoundUp(bytes, kHugePageBytes);
    base = mmap(nullptr, huge, PROT_READ | PROT_WRITE,
                MAP_PRIVATE | MAP_ANONYMOUS | MAP_HUGETLB, -1, 0);
    if (base == MAP_FAILED) {
      base = nullptr;  // no hugetlb pool configured; fall back below
    } else {
      bytes = huge;
      huge_pages_active_ = true;
    }
  }
#endif
  if (base == nullptr) {
    base = mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    ORTHRUS_CHECK_MSG(base != MAP_FAILED, "SlabArena mmap failed");
  }
#else
  base = ::operator new(bytes, std::align_val_t(4096));
  std::memset(base, 0, bytes);
#endif
  BindToNode(base, bytes, opts_.node);
  slabs_.push_back(Slab{base, bytes});
  cursor_ = static_cast<std::uint8_t*>(base);
  limit_ = cursor_ + bytes;
  bytes_reserved_ += bytes;
}

void* SlabArena::Allocate(std::size_t bytes, std::size_t align) {
  ORTHRUS_CHECK(align != 0 && (align & (align - 1)) == 0 && align <= 4096);
  if (bytes == 0) bytes = 1;
  std::uint8_t* p =
      reinterpret_cast<std::uint8_t*>(RoundUp(
          reinterpret_cast<std::uintptr_t>(cursor_), align));
  if (p == nullptr || p + bytes > limit_) {
    // Slab bases are page-aligned, so a fresh slab satisfies any align.
    NewSlab(bytes);
    p = cursor_;
  }
  cursor_ = p + bytes;
  bytes_used_ += bytes;
  return p;
}

}  // namespace orthrus::hal
