// Hardware abstraction layer.
//
// Every engine in this repository is written against this small API instead
// of raw std::thread / std::atomic. Two implementations exist:
//
//  * SimPlatform (sim_platform.h): a deterministic discrete-event multicore
//    simulator. Logical cores are fibers; atomic operations are charged
//    cache-coherence costs; time is virtual. This is how we reproduce the
//    paper's 80-core experiments on a 1-core host.
//  * NativePlatform (native_platform.h): real std::threads and real atomics,
//    used by the test suite to prove the engines are genuinely thread-safe
//    and by downstream users on real many-core machines.
//
// The contract engines must follow:
//  - all cross-core shared mutable state lives in hal::Atomic<T> (or
//    structures built from it, e.g. hal::SpinLock, mp::SpscQueue);
//  - spin loops call hal::CpuRelax() every iteration;
//  - modeled computation (transaction logic, record copies) is declared via
//    hal::ConsumeCycles(n);
//  - data that is protected by logical locks (record payloads) may use plain
//    memory: the engine's own locking discipline makes it race-free.
#ifndef ORTHRUS_HAL_HAL_H_
#define ORTHRUS_HAL_HAL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <type_traits>

#include "common/bitset128.h"
#include "common/macros.h"

namespace orthrus::hal {

using Cycles = std::uint64_t;

class Platform;

// Sink for blocking-send stall accounting (see mp::detail::WedgeSpin). A
// worker installs a pointer to its own plain counters; the queue layer adds
// to them whenever a blocking Send busy-waits on a full ring. Plain memory:
// each sink belongs to exactly one core.
struct SpinStallSink {
  std::uint64_t stalls = 0;   // blocking sends that had to wait
  Cycles stall_cycles = 0;    // virtual cycles spent waiting
};

// Identity of the logical core the calling context is running on.
struct CoreContext {
  Platform* platform = nullptr;
  int core_id = -1;
  // Per-core PCG-style state for spin-loop jitter (see FastJitter).
  std::uint64_t jitter_state = 0x9E3779B97F4A7C15ull;
  // Optional stall-accounting sink for blocking queue sends (observability
  // only: installing one never changes modeled costs).
  SpinStallSink* send_stall_sink = nullptr;
  // True only under SimConfig::race_detect: hal::RaceCheck forwards plain
  // accesses to the platform's race detector. One predictable branch when
  // off — RaceCheck costs nothing in production paths.
  bool race_check = false;
};

// Returns the current logical core, or nullptr when called from setup code
// outside any core (e.g. while loading tables).
CoreContext* CurrentCore();

// Installs/clears the current core. Platform-internal.
void SetCurrentCore(CoreContext* ctx);

// Kind of memory operation, for the simulator's cost model. Plain stores
// retire through the store buffer (the core does not stall on the line
// transfer), while atomic read-modify-writes must own the line for their
// full service time — which is why contended RMWs serialize and contended
// stores mostly do not.
enum class MemOp { kLoad, kStore, kRmw };

// Simulator metadata for one cache line. Embedded in every hal::Atomic so a
// modeled access needs no hash lookups. Ignored by the native platform.
struct LineMeta {
  std::int16_t owner = -1;   // core that last wrote the line
  // Modeled NUMA socket of the line's backing memory, or -1 when unplaced.
  // Consulted only by a multi-socket SimConfig, and only when no core owns
  // the line yet (after that the owner's socket decides transfer distance).
  std::int8_t home = -1;
  // Whether accesses through this line establish happens-before edges for
  // the race detector (SimConfig::race_detect). True for every hal::Atomic —
  // their loads/stores really are acquire/release. mp::detail::LineRing
  // clears it on its payload lines: the payload words are *relaxed*, their
  // ordering is carried by the queue-index atomics, so treating the payload
  // touch itself as a sync edge would mask exactly the publication races the
  // detector exists to find. Fits in struct padding; the cost model never
  // reads it.
  bool sync_var = true;
  Bitset128 readers;         // cores holding a (possibly shared) copy
  Cycles busy_until = 0;     // line occupied by in-flight atomic RMWs
};

// Simulator metadata for one durable storage device (a log stream's backing
// file). Embedded in the owning structure, mirroring LineMeta: a stable-
// storage sync is modeled as occupancy of the device, so concurrent syncs
// against one device serialize the way fsyncs on one disk do. Ignored by
// the native platform (whose "device" is process memory in this repo).
struct StorageMeta {
  Cycles busy_until = 0;     // device occupied by in-flight syncs
};

class Platform {
 public:
  virtual ~Platform() = default;

  virtual int num_cores() const = 0;
  virtual bool is_simulated() const = 0;

  // Registers logical core `core_id` to run `fn`. All Spawn calls must
  // happen before Run.
  virtual void Spawn(int core_id, std::function<void()> fn) = 0;

  // Runs all spawned cores to completion (joins threads / drains the event
  // loop). May be called once.
  virtual void Run() = 0;

  // Nominal clock rate used to convert cycles to seconds in reports.
  virtual double CyclesPerSecond() const = 0;

  // --- Hooks invoked from running cores -------------------------------

  // Current core's clock (virtual cycles under simulation).
  virtual Cycles Now() = 0;

  // Declares n cycles of computation by the current core.
  virtual void ConsumeCycles(Cycles n) = 0;

  // Polite spin-wait pause; a scheduling point under simulation.
  virtual void CpuRelax() = 0;

  // Charges the coherence cost of an atomic access to `line`. Called by
  // hal::Atomic before performing the underlying operation.
  virtual void OnAtomicAccess(LineMeta* line, MemOp op) = 0;

  // Charges the cost of forcing `bytes` of buffered log data to stable
  // storage on `device`. The calling core stalls for the sync latency the
  // same way fsync callers do; the device serializes concurrent syncs. A
  // no-op on the native platform.
  virtual void OnStorageSync(StorageMeta* device, std::uint64_t bytes) {
    (void)device;
    (void)bytes;
  }

  // Declares a *plain* (non-atomic) access to shared payload memory for
  // race detection. Charges no cycles and is not a scheduling point; the
  // default (and the native platform, where TSan covers plain memory) is a
  // no-op. Reached only through hal::RaceCheck, which gates on
  // CoreContext::race_check.
  virtual void OnPlainAccess(const void* addr, std::size_t bytes,
                             bool is_write, const char* label) {
    (void)addr;
    (void)bytes;
    (void)is_write;
    (void)label;
  }

  // Declares that the current core just issued a prefetch sweep covering
  // `lines` cache lines (see hal::PrefetchSweep). The simulator charges one
  // batched fill window — the overlapped line transfers pay roughly a
  // single memory-latency cost instead of `lines` serial misses, which is
  // the whole point of sweeping prefetches ahead of a batch. The default
  // (and the native platform, where the real prefetch instructions already
  // ran) is a no-op. Not a scheduling point.
  virtual void OnPrefetchSweep(std::size_t lines) { (void)lines; }
};

// ---------------------------------------------------------------------
// Free functions used on hot paths. All degrade to cheap no-ops when not on
// a logical core (setup/teardown code).

inline void ConsumeCycles(Cycles n) {
  CoreContext* cc = CurrentCore();
  if (cc != nullptr) cc->platform->ConsumeCycles(n);
}

inline void CpuRelax() {
  CoreContext* cc = CurrentCore();
  if (cc != nullptr) cc->platform->CpuRelax();
}

inline Cycles Now() {
  CoreContext* cc = CurrentCore();
  return cc != nullptr ? cc->platform->Now() : 0;
}

// Declares a stable-storage sync by the current core (no-op off-core).
inline void OnStorageSync(StorageMeta* device, std::uint64_t bytes) {
  CoreContext* cc = CurrentCore();
  if (cc != nullptr) cc->platform->OnStorageSync(device, bytes);
}

// Id of the calling logical core, or -1 outside any core.
inline int CoreId() {
  CoreContext* cc = CurrentCore();
  return cc != nullptr ? cc->core_id : -1;
}

// Hints the hardware to pull `addr`'s line toward the calling core. A pure
// hardware hint: no modeled cost, no scheduling point, no side effect under
// simulation — the sim charges prefetch benefit per *sweep* (below), not
// per line, so a stray Prefetch can never perturb a modeled clock.
inline void Prefetch(const void* addr) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(addr);
#else
  (void)addr;
#endif
}

// Declares that the calling core just swept `lines` prefetches ahead of a
// batch it is about to process (no-op off-core and when lines == 0). Under
// simulation this charges the batched fill window once — see
// Platform::OnPrefetchSweep; on the native platform the Prefetch calls
// themselves did the work.
inline void PrefetchSweep(std::size_t lines) {
  CoreContext* cc = CurrentCore();
  if (cc != nullptr && lines != 0) cc->platform->OnPrefetchSweep(lines);
}

// Declares a plain access to cross-core payload memory — record rows under
// logical locks, ring payload words, TCB fields riding messages, WAL
// fragment buffers — so the simulator's race detector can verify the
// protecting protocol actually orders it. `label` names the site in race
// reports (use a stable string literal, e.g. "kv.row"). Free when the
// detector is off (one branch) and off-core (setup/loader code: skipped).
inline void RaceCheck(const void* addr, std::size_t bytes, bool is_write,
                      const char* label) {
  CoreContext* cc = CurrentCore();
  if (cc != nullptr && ORTHRUS_UNLIKELY(cc->race_check)) {
    cc->platform->OnPlainAccess(addr, bytes, is_write, label);
  }
}

// Cheap deterministic per-core jitter in [0, bound). Spin loops add it to
// their backoff so that, under the *deterministic* simulator, competing
// cores cannot phase-lock into periodic patterns where one core loses every
// latch race forever — real hardware breaks such ties with timing noise,
// the simulator breaks them with per-core pseudo-randomness (runs remain
// reproducible).
inline Cycles FastJitter(Cycles bound) {
  CoreContext* cc = CurrentCore();
  if (cc == nullptr || bound == 0) return 0;
  cc->jitter_state =
      cc->jitter_state * 6364136223846793005ull + 1442695040888963407ull;
  return static_cast<Cycles>((cc->jitter_state >> 33) % bound);
}

// ---------------------------------------------------------------------
// hal::Atomic<T>: a std::atomic whose accesses are charged coherence costs
// under simulation. Aligned to a cache line so each instance models one
// line, matching how contended metadata behaves on real hardware.

template <typename T>
class alignas(kCacheLineSize) Atomic {
  static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8,
                "hal::Atomic models single-line word-sized state");

 public:
  Atomic() : v_{} {}
  explicit Atomic(T v) : v_(v) {}

  Atomic(const Atomic&) = delete;
  Atomic& operator=(const Atomic&) = delete;

  T load() {
    Touch(MemOp::kLoad);
    return v_.load(std::memory_order_acquire);
  }

  void store(T v) {
    Touch(MemOp::kStore);
    v_.store(v, std::memory_order_release);
  }

  T fetch_add(T d) {
    Touch(MemOp::kRmw);
    return v_.fetch_add(d, std::memory_order_acq_rel);
  }

  T exchange(T v) {
    Touch(MemOp::kRmw);
    return v_.exchange(v, std::memory_order_acq_rel);
  }

  bool compare_exchange(T& expected, T desired) {
    Touch(MemOp::kRmw);
    return v_.compare_exchange_strong(expected, desired,
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire);
  }

  // Unmodeled accesses for single-threaded setup / teardown / verification
  // code. Never use these from a running core for cross-core state.
  T RawLoad() const { return v_.load(std::memory_order_relaxed); }
  void RawStore(T v) { v_.store(v, std::memory_order_relaxed); }

  // Setup-time NUMA placement tag for the simulator's distance model.
  void SetHomeRaw(int socket) {
    line_.home = static_cast<std::int8_t>(socket);
  }

 private:
  void Touch(MemOp op) {
    CoreContext* cc = CurrentCore();
    if (cc != nullptr) cc->platform->OnAtomicAccess(&line_, op);
  }

  std::atomic<T> v_;
  LineMeta line_;
};

// ---------------------------------------------------------------------
// Ticket spinlock over modeled atomics. Used for lock-table bucket latches
// and partition locks. FIFO handoff matters: under extreme arrival rates an
// unfair test-and-set latch can starve a holder of a *logical* lock trying
// to release it, wedging the whole system — a pathology fair latches (and
// production lock managers) avoid. Under simulation the ticket counter's
// serialized RMWs and the handoff invalidations produce the contention
// behaviour behind the paper's Figure 1.

class ORTHRUS_CAPABILITY("mutex") SpinLock {
 public:
  SpinLock() = default;

  void Lock() ORTHRUS_ACQUIRE() {
    const std::uint32_t my = next_.fetch_add(1);
    Cycles backoff = 0;
    while (serving_.load() != my) {
      ConsumeCycles(backoff + FastJitter(64));
      CpuRelax();
      backoff = backoff < 256 ? backoff + 32 : 256;
    }
  }

  void Unlock() ORTHRUS_RELEASE() {
    // Only the holder writes `serving_`, so the increment is race-free; the
    // RMW's invalidation of all spinning waiters is the modeled handoff.
    serving_.fetch_add(1);
  }

  // Setup-time (unmodeled) check, for tests.
  bool IsLockedRaw() const {
    return next_.RawLoad() != serving_.RawLoad();
  }

  // Setup-time NUMA placement tag (both ticket lines) for the sim model.
  void SetHomeRaw(int socket) {
    next_.SetHomeRaw(socket);
    serving_.SetHomeRaw(socket);
  }

 private:
  Atomic<std::uint32_t> next_{0};
  Atomic<std::uint32_t> serving_{0};
};

// RAII guard for SpinLock.
class ORTHRUS_SCOPED_CAPABILITY SpinLockGuard {
 public:
  explicit SpinLockGuard(SpinLock& l) ORTHRUS_ACQUIRE(l) : l_(l) {
    l_.Lock();
  }
  ~SpinLockGuard() ORTHRUS_RELEASE() { l_.Unlock(); }
  SpinLockGuard(const SpinLockGuard&) = delete;
  SpinLockGuard& operator=(const SpinLockGuard&) = delete;

 private:
  SpinLock& l_;
};

// ---------------------------------------------------------------------
// Exponential idle backoff for polling loops. Under simulation an idle core
// that polls every ~30 cycles would flood the event queue; backing off to a
// bounded cap keeps event counts proportional to useful work while adding
// at most `cap` cycles of wakeup latency (the same trade real systems make).

class IdleBackoff {
 public:
  explicit IdleBackoff(Cycles cap = 2048) : cap_(cap) {}

  // Call when an iteration made no progress.
  void Idle() {
    ConsumeCycles(current_);
    CpuRelax();
    current_ = current_ < cap_ ? current_ * 2 : cap_;
  }

  // Call when progress was made.
  void Reset() { current_ = kBase; }

 private:
  static constexpr Cycles kBase = 32;
  Cycles cap_;
  Cycles current_ = kBase;
};

}  // namespace orthrus::hal

#endif  // ORTHRUS_HAL_HAL_H_
