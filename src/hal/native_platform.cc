#include "hal/native_platform.h"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace orthrus::hal {

namespace {

// Best-effort affinity pin; a failure (cgroup mask, exotic libc) is not an
// error — the thread just runs unpinned, as before.
void PinCurrentThread(int core_id) {
#if defined(__linux__)
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) return;
  cpu_set_t mask;
  CPU_ZERO(&mask);
  CPU_SET(static_cast<unsigned>(core_id) % hw, &mask);
  pthread_setaffinity_np(pthread_self(), sizeof(mask), &mask);
#else
  (void)core_id;
#endif
}

}  // namespace

NativePlatform::NativePlatform(int num_cores)
    : num_cores_(num_cores),
      cores_(num_cores),
      epoch_(std::chrono::steady_clock::now()) {
  ORTHRUS_CHECK(num_cores >= 1);
  for (int i = 0; i < num_cores; ++i) {
    cores_[i].context.platform = this;
    cores_[i].context.core_id = i;
    cores_[i].context.jitter_state = 0x9E3779B97F4A7C15ull * (i + 1) + 1;
  }
}

NativePlatform::~NativePlatform() {
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void NativePlatform::Spawn(int core_id, std::function<void()> fn) {
  ORTHRUS_CHECK(core_id >= 0 && core_id < num_cores_);
  ORTHRUS_CHECK_MSG(!cores_[core_id].spawned, "core spawned twice");
  ORTHRUS_CHECK_MSG(!ran_, "Spawn after Run");
  cores_[core_id].fn = std::move(fn);
  cores_[core_id].spawned = true;
}

void NativePlatform::Run() {
  ORTHRUS_CHECK_MSG(!ran_, "Run called twice");
  ran_ = true;
  threads_.reserve(num_cores_);
  for (int i = 0; i < num_cores_; ++i) {
    if (!cores_[i].spawned) continue;
    NativeCore* core = &cores_[i];
    const bool pin = pin_threads_;
    threads_.emplace_back([core, pin]() {
      if (pin) PinCurrentThread(core->context.core_id);
      SetCurrentCore(&core->context);
      core->fn();
      SetCurrentCore(nullptr);
    });
  }
  for (std::thread& t : threads_) t.join();
  threads_.clear();
}

Cycles NativePlatform::Now() {
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - epoch_)
                      .count();
  return static_cast<Cycles>(static_cast<double>(ns) * kGhz);
}

void NativePlatform::ConsumeCycles(Cycles /*n*/) {
  // Real computation happens for real on this platform; declared cycles are
  // a modeling concept and cost nothing here.
}

void NativePlatform::CpuRelax() {
  // On an oversubscribed host (including the 1-core CI box) a pure PAUSE
  // spin can starve the lock holder; yielding keeps spin loops live-lock
  // free at the cost of some latency, which tests do not depend on.
  std::this_thread::yield();
}

void NativePlatform::OnAtomicAccess(LineMeta* /*line*/, MemOp /*op*/) {
  // Real coherence hardware does the modeling here.
}

}  // namespace orthrus::hal
