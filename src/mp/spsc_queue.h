// Latch-free single-producer / single-consumer ring buffer — the message-
// passing substrate of Section 3.1.
//
// The paper's key observation: a single shared input queue per concurrency-
// control thread would reintroduce the very synchronization bottleneck the
// design is trying to remove, so each (sender, receiver) pair gets its own
// queue with exactly one writer and one reader. With one writer and one
// reader, a Lamport ring buffer needs no atomic read-modify-writes at all:
// the producer only stores to the tail, the consumer only stores to the
// head, and each side caches the other's index so steady-state operations
// touch remote state only when the cached view is exhausted.
#ifndef ORTHRUS_MP_SPSC_QUEUE_H_
#define ORTHRUS_MP_SPSC_QUEUE_H_

#include <cstdint>
#include <memory>
#include <type_traits>

#include "common/macros.h"
#include "hal/hal.h"

namespace orthrus::mp {

template <typename T>
class SpscQueue {
  static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8,
                "queue payloads are word-sized messages");

 public:
  // Capacity must be a power of two (index masking).
  explicit SpscQueue(std::size_t capacity)
      : capacity_(capacity),
        mask_(capacity - 1),
        slots_(std::make_unique<Slot[]>(capacity)) {
    ORTHRUS_CHECK(IsPowerOfTwo(capacity));
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  std::size_t capacity() const { return capacity_; }

  // Producer side. Returns false when the queue is full.
  bool TryEnqueue(T value) {
    if (tail_local_ - head_cache_ >= capacity_) {
      head_cache_ = head_.load();
      if (tail_local_ - head_cache_ >= capacity_) return false;
    }
    slots_[tail_local_ & mask_].v.store(value);
    tail_local_++;
    tail_.store(tail_local_);
    return true;
  }

  // Consumer side. Returns false when the queue is empty.
  bool TryDequeue(T* out) {
    if (head_local_ == tail_cache_) {
      tail_cache_ = tail_.load();
      if (head_local_ == tail_cache_) return false;
    }
    *out = slots_[head_local_ & mask_].v.load();
    head_local_++;
    head_.store(head_local_);
    return true;
  }

  // Consumer-side emptiness probe (refreshes the cached tail).
  bool Empty() {
    if (head_local_ != tail_cache_) return false;
    tail_cache_ = tail_.load();
    return head_local_ == tail_cache_;
  }

  // Unmodeled size snapshot for tests / teardown assertions only.
  std::size_t SizeRaw() const {
    return static_cast<std::size_t>(tail_.RawLoad() - head_.RawLoad());
  }

 private:
  struct Slot {
    hal::Atomic<T> v;
  };

  const std::size_t capacity_;
  const std::size_t mask_;
  std::unique_ptr<Slot[]> slots_;

  // Shared indices (each written by exactly one side).
  hal::Atomic<std::uint64_t> head_{0};  // written by consumer
  hal::Atomic<std::uint64_t> tail_{0};  // written by producer

  // Producer-private state (plain memory: single owner).
  alignas(kCacheLineSize) std::uint64_t tail_local_ = 0;
  std::uint64_t head_cache_ = 0;

  // Consumer-private state.
  alignas(kCacheLineSize) std::uint64_t head_local_ = 0;
  std::uint64_t tail_cache_ = 0;
};

}  // namespace orthrus::mp

#endif  // ORTHRUS_MP_SPSC_QUEUE_H_
