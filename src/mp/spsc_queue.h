// Latch-free single-producer / single-consumer ring buffer — the message-
// passing substrate of Section 3.1.
//
// The paper's key observation: a single shared input queue per concurrency-
// control thread would reintroduce the very synchronization bottleneck the
// design is trying to remove, so each (sender, receiver) pair gets its own
// queue with exactly one writer and one reader. With one writer and one
// reader, a Lamport ring buffer needs no atomic read-modify-writes at all:
// the producer only stores to the tail, the consumer only stores to the
// head, and each side caches the other's index so steady-state operations
// touch remote state only when the cached view is exhausted.
//
// Payload words are packed into cache-line blocks (detail::LineRing), so a
// burst of messages costs one modeled line transfer per kMsgsPerLine
// messages rather than one per message, and the batched PushBatch/PopBatch
// operations additionally publish the shared index once per batch instead
// of once per message. The unbatched TryEnqueue/TryDequeue remain for
// callers that need per-message delivery (and as the ablation baseline).
#ifndef ORTHRUS_MP_SPSC_QUEUE_H_
#define ORTHRUS_MP_SPSC_QUEUE_H_

#include <cstdint>

#include "common/macros.h"
#include "hal/hal.h"
#include "mp/line_ring.h"

namespace orthrus::mp {

template <typename T>
class SpscQueue {
 public:
  // Messages sharing one (modeled) cache line of payload.
  static constexpr std::size_t kMsgsPerLine = detail::LineRing<T>::kMsgsPerLine;

  // Capacity must be a power of two (index masking). The optional (arena,
  // home_socket) pair NUMA-places the payload blocks on the receiver's node
  // and tags them for the sim's distance model (see detail::LineRing).
  explicit SpscQueue(std::size_t capacity, hal::SlabArena* arena = nullptr,
                     int home_socket = -1)
      : capacity_(capacity), ring_(capacity, arena, home_socket) {
    if (home_socket >= 0) {
      tail_.SetHomeRaw(home_socket);
      head_.SetHomeRaw(home_socket);
    }
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  std::size_t capacity() const { return capacity_; }

  // Producer side. Returns false when the queue is full.
  bool TryEnqueue(T value) {
    if (tail_local_ - head_cache_ >= capacity_) {
      head_cache_ = head_.load();
      if (tail_local_ - head_cache_ >= capacity_) return false;
    }
    ring_.Store(tail_local_, value);
    tail_local_++;
    tail_.store(tail_local_);
    return true;
  }

  // Producer side, batched: enqueues up to `n` values, publishing the tail
  // index once for the whole batch. Returns how many were enqueued (0 when
  // full, a partial batch when the ring is nearly full).
  std::size_t PushBatch(const T* values, std::size_t n) {
    if (n == 0) return 0;
    std::size_t free_slots =
        capacity_ - static_cast<std::size_t>(tail_local_ - head_cache_);
    if (free_slots < n) {
      head_cache_ = head_.load();
      free_slots =
          capacity_ - static_cast<std::size_t>(tail_local_ - head_cache_);
      if (free_slots == 0) return 0;
    }
    const std::size_t count = n < free_slots ? n : free_slots;
    for (std::size_t i = 0; i < count; ++i) {
      ring_.Store(tail_local_ + i, values[i]);
    }
    tail_local_ += count;
    tail_.store(tail_local_);
    return count;
  }

  // Consumer side. Returns false when the queue is empty.
  bool TryDequeue(T* out) {
    if (head_local_ == tail_cache_) {
      tail_cache_ = tail_.load();
      if (head_local_ == tail_cache_) return false;
    }
    *out = ring_.Load(head_local_);
    head_local_++;
    head_.store(head_local_);
    return true;
  }

  // Consumer side, batched: dequeues up to `n` values, publishing the head
  // index once for the whole batch. Returns how many were dequeued (0 when
  // empty, a partial batch when fewer than `n` are waiting).
  std::size_t PopBatch(T* out, std::size_t n) {
    if (n == 0) return 0;
    std::size_t avail = static_cast<std::size_t>(tail_cache_ - head_local_);
    if (avail < n) {
      tail_cache_ = tail_.load();
      avail = static_cast<std::size_t>(tail_cache_ - head_local_);
      if (avail == 0) return 0;
    }
    const std::size_t count = n < avail ? n : avail;
    for (std::size_t i = 0; i < count; ++i) {
      out[i] = ring_.Load(head_local_ + i);
    }
    head_local_ += count;
    head_.store(head_local_);
    return count;
  }

  // Consumer-side occupancy: refreshes the cached tail and returns how
  // many messages are currently poppable. Costs one (possibly remote) load
  // of the shared tail index — the price QueueMesh's deepest-first drain
  // pays for knowing queue depths.
  std::size_t SizeConsumer() {
    tail_cache_ = tail_.load();
    return static_cast<std::size_t>(tail_cache_ - head_local_);
  }

  // Consumer-side emptiness probe (refreshes the cached tail).
  bool Empty() {
    if (head_local_ != tail_cache_) return false;
    tail_cache_ = tail_.load();
    return head_local_ == tail_cache_;
  }

  // Unmodeled size snapshot for tests / teardown assertions only.
  std::size_t SizeRaw() const {
    return static_cast<std::size_t>(tail_.RawLoad() - head_.RawLoad());
  }

 private:
  const std::size_t capacity_;
  detail::LineRing<T> ring_;

  // Shared indices (each written by exactly one side).
  hal::Atomic<std::uint64_t> head_{0};  // written by consumer
  hal::Atomic<std::uint64_t> tail_{0};  // written by producer

  // Producer-private state (plain memory: single owner).
  alignas(kCacheLineSize) std::uint64_t tail_local_ = 0;
  std::uint64_t head_cache_ = 0;

  // Consumer-private state.
  alignas(kCacheLineSize) std::uint64_t head_local_ = 0;
  std::uint64_t tail_cache_ = 0;
};

}  // namespace orthrus::mp

#endif  // ORTHRUS_MP_SPSC_QUEUE_H_
