// Latch-free single-producer / single-consumer ring buffer — the message-
// passing substrate of Section 3.1.
//
// The paper's key observation: a single shared input queue per concurrency-
// control thread would reintroduce the very synchronization bottleneck the
// design is trying to remove, so each (sender, receiver) pair gets its own
// queue with exactly one writer and one reader. With one writer and one
// reader, a Lamport ring buffer needs no atomic read-modify-writes at all:
// the producer only stores to the tail, the consumer only stores to the
// head, and each side caches the other's index so steady-state operations
// touch remote state only when the cached view is exhausted.
//
// Messages are word-sized, so a cache line carries kMsgsPerLine of them.
// The ring packs payload words contiguously into line-sized blocks (one
// modeled coherence line per block) instead of one line per slot: a burst
// of messages then costs one line transfer per kMsgsPerLine messages
// rather than one per message, and the batched PushBatch/PopBatch
// operations additionally publish the shared index once per batch instead
// of once per message. The unbatched TryEnqueue/TryDequeue remain for
// callers that need per-message delivery (and as the ablation baseline).
#ifndef ORTHRUS_MP_SPSC_QUEUE_H_
#define ORTHRUS_MP_SPSC_QUEUE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <type_traits>

#include "common/macros.h"
#include "hal/hal.h"

namespace orthrus::mp {

template <typename T>
class SpscQueue {
  static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8 &&
                    IsPowerOfTwo(sizeof(T)),
                "queue payloads are word-sized messages");

 public:
  // Messages sharing one (modeled) cache line of payload.
  static constexpr std::size_t kMsgsPerLine = kCacheLineSize / sizeof(T);

  // Capacity must be a power of two (index masking).
  explicit SpscQueue(std::size_t capacity)
      : capacity_(capacity),
        mask_(capacity - 1),
        word_mask_(WordsPerLine(capacity) - 1),
        line_shift_(Log2(WordsPerLine(capacity))),
        lines_(std::make_unique<Line[]>(capacity / WordsPerLine(capacity))) {
    ORTHRUS_CHECK(IsPowerOfTwo(capacity));
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  std::size_t capacity() const { return capacity_; }

  // Producer side. Returns false when the queue is full.
  bool TryEnqueue(T value) {
    if (tail_local_ - head_cache_ >= capacity_) {
      head_cache_ = head_.load();
      if (tail_local_ - head_cache_ >= capacity_) return false;
    }
    StoreSlot(tail_local_, value);
    tail_local_++;
    tail_.store(tail_local_);
    return true;
  }

  // Producer side, batched: enqueues up to `n` values, publishing the tail
  // index once for the whole batch. Returns how many were enqueued (0 when
  // full, a partial batch when the ring is nearly full).
  std::size_t PushBatch(const T* values, std::size_t n) {
    if (n == 0) return 0;
    std::size_t free_slots =
        capacity_ - static_cast<std::size_t>(tail_local_ - head_cache_);
    if (free_slots < n) {
      head_cache_ = head_.load();
      free_slots =
          capacity_ - static_cast<std::size_t>(tail_local_ - head_cache_);
      if (free_slots == 0) return 0;
    }
    const std::size_t count = n < free_slots ? n : free_slots;
    for (std::size_t i = 0; i < count; ++i) {
      StoreSlot(tail_local_ + i, values[i]);
    }
    tail_local_ += count;
    tail_.store(tail_local_);
    return count;
  }

  // Consumer side. Returns false when the queue is empty.
  bool TryDequeue(T* out) {
    if (head_local_ == tail_cache_) {
      tail_cache_ = tail_.load();
      if (head_local_ == tail_cache_) return false;
    }
    *out = LoadSlot(head_local_);
    head_local_++;
    head_.store(head_local_);
    return true;
  }

  // Consumer side, batched: dequeues up to `n` values, publishing the head
  // index once for the whole batch. Returns how many were dequeued (0 when
  // empty, a partial batch when fewer than `n` are waiting).
  std::size_t PopBatch(T* out, std::size_t n) {
    if (n == 0) return 0;
    std::size_t avail = static_cast<std::size_t>(tail_cache_ - head_local_);
    if (avail < n) {
      tail_cache_ = tail_.load();
      avail = static_cast<std::size_t>(tail_cache_ - head_local_);
      if (avail == 0) return 0;
    }
    const std::size_t count = n < avail ? n : avail;
    for (std::size_t i = 0; i < count; ++i) {
      out[i] = LoadSlot(head_local_ + i);
    }
    head_local_ += count;
    head_.store(head_local_);
    return count;
  }

  // Consumer-side occupancy: refreshes the cached tail and returns how
  // many messages are currently poppable. Costs one (possibly remote) load
  // of the shared tail index — the price QueueMesh's deepest-first drain
  // pays for knowing queue depths.
  std::size_t SizeConsumer() {
    tail_cache_ = tail_.load();
    return static_cast<std::size_t>(tail_cache_ - head_local_);
  }

  // Consumer-side emptiness probe (refreshes the cached tail).
  bool Empty() {
    if (head_local_ != tail_cache_) return false;
    tail_cache_ = tail_.load();
    return head_local_ == tail_cache_;
  }

  // Unmodeled size snapshot for tests / teardown assertions only.
  std::size_t SizeRaw() const {
    return static_cast<std::size_t>(tail_.RawLoad() - head_.RawLoad());
  }

 private:
  // A line-sized block of payload words plus the simulator's coherence
  // metadata for it. Payload accesses are relaxed std::atomics: the
  // release-store / acquire-load of the shared index orders them (Lamport),
  // and the explicit Touch charges the modeled line cost — exactly what
  // hal::Atomic does, but at one line per kMsgsPerLine messages instead of
  // one line per message.
  struct alignas(kCacheLineSize) Line {
    std::atomic<T> words[kMsgsPerLine];
    hal::LineMeta meta;
  };

  // Rings smaller than a line still work: they use a single block with
  // capacity words. Maps 0 to 1 so that an illegal capacity reaches the
  // constructor's power-of-two CHECK instead of dividing by zero in the
  // member initializers.
  static constexpr std::size_t WordsPerLine(std::size_t capacity) {
    if (capacity == 0) return 1;
    return capacity < kMsgsPerLine ? capacity : kMsgsPerLine;
  }

  static constexpr std::size_t Log2(std::size_t v) {
    std::size_t s = 0;
    while ((std::size_t{1} << s) < v) ++s;
    return s;
  }

  static void TouchLine(hal::LineMeta* meta, hal::MemOp op) {
    hal::CoreContext* cc = hal::CurrentCore();
    if (cc != nullptr) cc->platform->OnAtomicAccess(meta, op);
  }

  void StoreSlot(std::uint64_t idx, T value) {
    const std::size_t pos = static_cast<std::size_t>(idx) & mask_;
    Line& line = lines_[pos >> line_shift_];
    TouchLine(&line.meta, hal::MemOp::kStore);
    line.words[pos & word_mask_].store(value, std::memory_order_relaxed);
  }

  T LoadSlot(std::uint64_t idx) {
    const std::size_t pos = static_cast<std::size_t>(idx) & mask_;
    Line& line = lines_[pos >> line_shift_];
    TouchLine(&line.meta, hal::MemOp::kLoad);
    return line.words[pos & word_mask_].load(std::memory_order_relaxed);
  }

  const std::size_t capacity_;
  const std::size_t mask_;
  const std::size_t word_mask_;
  const std::size_t line_shift_;
  std::unique_ptr<Line[]> lines_;

  // Shared indices (each written by exactly one side).
  hal::Atomic<std::uint64_t> head_{0};  // written by consumer
  hal::Atomic<std::uint64_t> tail_{0};  // written by producer

  // Producer-private state (plain memory: single owner).
  alignas(kCacheLineSize) std::uint64_t tail_local_ = 0;
  std::uint64_t head_cache_ = 0;

  // Consumer-private state.
  alignas(kCacheLineSize) std::uint64_t head_local_ = 0;
  std::uint64_t tail_cache_ = 0;
};

}  // namespace orthrus::mp

#endif  // ORTHRUS_MP_SPSC_QUEUE_H_
