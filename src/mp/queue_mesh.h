// QueueMesh: the full (sender x receiver) matrix of SPSC queues that wires
// a set of message-passing threads together (Section 3.1). ORTHRUS needs
// three of these — exec->CC (acquire/release), CC->CC (forwarding), and
// CC->exec (grant/ack) — and before this abstraction each engine wired the
// matrices by hand. The mesh owns the queues, routes (sender, receiver)
// pairs, and provides the two operations the hot path is built from:
//
//  * Send: blocking enqueue with a wedge diagnostic. Queue capacities are
//    provable bounds on outstanding messages per pair, so a full queue that
//    stays full is a protocol bug, not backpressure.
//  * Drain: batched delivery of everything addressed to one receiver.
//    Messages are popped PopBatch-wise (up to a cache line per pop), so a
//    burst from one sender costs one index publication and ~one payload
//    line transfer per kMsgsPerLine messages instead of one per message.
//    `max_batch = 1` degrades to per-message delivery — the ablation
//    baseline for measuring exactly that difference.
#ifndef ORTHRUS_MP_QUEUE_MESH_H_
#define ORTHRUS_MP_QUEUE_MESH_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/macros.h"
#include "hal/hal.h"
#include "mp/spsc_queue.h"

namespace orthrus::mp {

// Order in which Drain visits the queues addressed to a receiver.
enum class DrainOrder {
  // Fixed sender order 0..N-1. The default: zero bookkeeping, and the
  // bit-stable event order the engine equivalence digests are pinned to.
  kRoundRobin,
  // Snapshot consumer-visible depths, then serve the deepest queue first
  // (ties broken by sender id, so the order stays deterministic). Under
  // bursty or skewed fan-in the deepest queue bounds the burst's drain
  // latency and marks the sender closest to blocking on a full queue, so
  // serving it first cuts tail latency and Send backpressure. Costs one
  // tail-index load per sender up front. Senders whose queues were empty
  // at snapshot time are still visited, last and in ascending id order,
  // so one Drain call never delivers less than the round-robin path.
  kDeepestFirst,
  // Measured-imbalance trigger: snapshot depths as kDeepestFirst does,
  // but pay the sort and the reordering only when the snapshot is
  // actually skewed — at least two non-empty senders, a burst deeper
  // than one message, and max depth >= kImbalanceRatio * the mean depth
  // over non-empty senders. Balanced and sparse snapshots are served in
  // plain sender order.
  // This replaces a static "always deepest-first" policy with one driven
  // by what the receiver observes, per drain, at no extra modeled cost —
  // the depth snapshot was already paid for.
  kAdaptive,
};

template <typename T>
class QueueMesh {
 public:
  static constexpr std::size_t kDefaultBatch = SpscQueue<T>::kMsgsPerLine;

  // kAdaptive switches to deepest-first when the snapshot's max depth is
  // at least this multiple of the mean depth over non-empty senders. 2 is
  // deliberately low-drama: a single dominant burst trips it, steady
  // balanced traffic never does.
  static constexpr std::size_t kImbalanceRatio = 2;

  QueueMesh() = default;

  QueueMesh(int senders, int receivers, std::size_t capacity) {
    Reset(senders, receivers, capacity);
  }

  QueueMesh(const QueueMesh&) = delete;
  QueueMesh& operator=(const QueueMesh&) = delete;

  // NUMA placement for one receiver's column of queues (see SpscQueue).
  struct ReceiverPlacement {
    hal::SlabArena* arena = nullptr;
    int home_socket = -1;
  };

  // (Re)builds the matrix. All queues share one capacity: the caller's
  // provable per-pair bound on outstanding messages. `placement`, when
  // non-null, has one entry per receiver and places each receiver's queues
  // on its node.
  void Reset(int senders, int receivers, std::size_t capacity,
             const std::vector<ReceiverPlacement>* placement = nullptr) {
    ORTHRUS_CHECK(senders >= 1 && receivers >= 1);
    ORTHRUS_CHECK(placement == nullptr ||
                  placement->size() == static_cast<std::size_t>(receivers));
    senders_ = senders;
    receivers_ = receivers;
    queues_.clear();
    queues_.reserve(static_cast<std::size_t>(senders) * receivers);
    for (int i = 0; i < senders * receivers; ++i) {
      const ReceiverPlacement p = placement != nullptr
                                      ? (*placement)[i % receivers]
                                      : ReceiverPlacement{};
      queues_.push_back(  // lint:allow-alloc setup
          std::make_unique<SpscQueue<T>>(capacity, p.arena, p.home_socket));
    }
    // Per-receiver depth scratch, pre-sized so the adaptive drain never
    // allocates on the hot path. Each receiver thread touches only its own
    // cache-line-aligned entry.
    depth_scratch_.assign(static_cast<std::size_t>(receivers),
                          ReceiverScratch{});
    for (ReceiverScratch& s : depth_scratch_) {
      s.depths.reserve(static_cast<std::size_t>(senders));
    }
  }

  int senders() const { return senders_; }
  int receivers() const { return receivers_; }

  SpscQueue<T>& at(int sender, int receiver) {
    ORTHRUS_DCHECK(sender >= 0 && sender < senders_);
    ORTHRUS_DCHECK(receiver >= 0 && receiver < receivers_);
    return *queues_[static_cast<std::size_t>(sender) * receivers_ + receiver];
  }

  // Blocking send on the (sender, receiver) pair's queue. Spins (politely)
  // while full; CHECK-fails if the queue stays full long enough that the
  // capacity bound must have been violated.
  void Send(int sender, int receiver, T value) {
    SpscQueue<T>& q = at(sender, receiver);
    detail::WedgeSpin spin;
    while (!q.TryEnqueue(value)) spin.Pause();
  }

  // Drains every queue addressed to `receiver`, invoking fn(message) on
  // each message in per-sender FIFO order. Every sender is visited at
  // least once regardless of `order`, so a single call always delivers the
  // same multiset the round-robin path would. Pops in batches of up to
  // `max_batch` (clamped to [1, one payload line]; callers commonly loop
  // until Drain returns 0, so a zero batch must clamp up rather than
  // silently deliver nothing forever). Returns messages delivered.
  // `order` picks the sender visit order; see DrainOrder.
  template <typename Fn>
  std::size_t Drain(int receiver, Fn&& fn,
                    std::size_t max_batch = kDefaultBatch,
                    DrainOrder order = DrainOrder::kRoundRobin) {
    ORTHRUS_DCHECK(max_batch >= 1);
    std::size_t batch = max_batch < kDefaultBatch ? max_batch : kDefaultBatch;
    if (batch == 0) batch = 1;
    T buf[kDefaultBatch];
    std::size_t delivered = 0;
    // Pops one sender's queue until empty, shared by both visit orders.
    const auto drain_queue = [&](SpscQueue<T>& q) {
      std::size_t n;
      while ((n = q.PopBatch(buf, batch)) != 0) {
        for (std::size_t i = 0; i < n; ++i) fn(buf[i]);
        delivered += n;
      }
    };
    if (order != DrainOrder::kRoundRobin && senders_ > 1) {
      ReceiverScratch& scratch = depth_scratch_[receiver];
      std::vector<DepthEntry>& depths = scratch.depths;
      depths.clear();
      std::size_t max_depth = 0;
      std::size_t total = 0;
      int nonzero = 0;
      for (int s = 0; s < senders_; ++s) {
        const std::size_t d = at(s, receiver).SizeConsumer();
        // Empty-at-snapshot senders stay in the list: the comparator sorts
        // them last (ascending id), so messages landing mid-drain are
        // still picked up by the final sweep.
        depths.push_back({d, s});
        total += d;
        if (d != 0) nonzero++;
        if (d > max_depth) max_depth = d;
      }
      // Reordering can only help when there are at least two competing
      // non-empty senders and an actual burst (depth > 1): a sparse
      // snapshot — e.g. one lone message among many empty queues, the
      // steady state of a lightly loaded receiver — gains nothing from a
      // sort, so it must not pay for one. The mean is taken over the
      // non-empty senders for the same reason: in an engine-shaped mesh
      // most senders are idle at any instant, and counting the empties
      // would drag the mean toward zero and classify nearly-balanced
      // active traffic as skewed.
      const bool deepest =
          order == DrainOrder::kDeepestFirst ||
          (nonzero > 1 && max_depth > 1 &&
           max_depth * static_cast<std::size_t>(nonzero) >=
               kImbalanceRatio * total);
      if (deepest) std::sort(depths.begin(), depths.end());
      scratch.last_deepest = deepest;
      for (const DepthEntry& e : depths) {
        drain_queue(at(e.sender, receiver));
      }
      return delivered;
    }
    for (int s = 0; s < senders_; ++s) {
      drain_queue(at(s, receiver));
    }
    return delivered;
  }

  // Drain-to-batch view: pops everything addressed to `receiver` directly
  // into the caller's flat buffer instead of invoking a per-message
  // callback, visiting senders in exactly the order Drain would (including
  // the snapshot/adaptive reorder), and stopping once `max_out` messages
  // have been gathered — the remainder stays queued for the next call.
  // Returns the number of messages written to `out`. This is the CC stage's
  // vectorized intake: the receiver gets one contiguous span it can sweep
  // with prefetches and process as a unit (gather -> prefetch -> process ->
  // scatter) rather than a message at a time.
  std::size_t DrainInto(int receiver, T* out, std::size_t max_out,
                        std::size_t max_batch = kDefaultBatch,
                        DrainOrder order = DrainOrder::kRoundRobin) {
    ORTHRUS_DCHECK(max_batch >= 1);
    std::size_t batch = max_batch < kDefaultBatch ? max_batch : kDefaultBatch;
    if (batch == 0) batch = 1;
    std::size_t filled = 0;
    // Pops one sender's queue until empty or the output span is full.
    const auto drain_queue = [&](SpscQueue<T>& q) {
      std::size_t n;
      while (filled < max_out &&
             (n = q.PopBatch(out + filled,
                             std::min(batch, max_out - filled))) != 0) {
        filled += n;
      }
    };
    if (order != DrainOrder::kRoundRobin && senders_ > 1) {
      ReceiverScratch& scratch = depth_scratch_[receiver];
      std::vector<DepthEntry>& depths = scratch.depths;
      depths.clear();
      std::size_t max_depth = 0;
      std::size_t total = 0;
      int nonzero = 0;
      for (int s = 0; s < senders_; ++s) {
        const std::size_t d = at(s, receiver).SizeConsumer();
        depths.push_back({d, s});
        total += d;
        if (d != 0) nonzero++;
        if (d > max_depth) max_depth = d;
      }
      const bool deepest =
          order == DrainOrder::kDeepestFirst ||
          (nonzero > 1 && max_depth > 1 &&
           max_depth * static_cast<std::size_t>(nonzero) >=
               kImbalanceRatio * total);
      if (deepest) std::sort(depths.begin(), depths.end());
      scratch.last_deepest = deepest;
      for (const DepthEntry& e : depths) {
        drain_queue(at(e.sender, receiver));
      }
      return filled;
    }
    for (int s = 0; s < senders_; ++s) {
      drain_queue(at(s, receiver));
    }
    return filled;
  }

  // Whether the receiver's most recent snapshot-based Drain (kDeepestFirst
  // or kAdaptive) actually reordered senders. Observability for tests and
  // benches; meaningless after a kRoundRobin drain.
  bool LastDrainWasDeepest(int receiver) const {
    return depth_scratch_[static_cast<std::size_t>(receiver)].last_deepest;
  }

  // Unmodeled aggregate occupancy, for teardown assertions.
  std::size_t SizeRawTotal() const {
    std::size_t total = 0;
    for (const auto& q : queues_) total += q->SizeRaw();
    return total;
  }

 private:
  // Deepest first, ties by sender id: a total order, so the adaptive drain
  // stays deterministic.
  struct DepthEntry {
    std::size_t depth;
    int sender;
    bool operator<(const DepthEntry& o) const {
      if (depth != o.depth) return depth > o.depth;
      return sender < o.sender;
    }
  };

  // Line-aligned so adjacent receivers' vector headers never share a cache
  // line (each receiver mutates its header on every adaptive drain).
  struct alignas(kCacheLineSize) ReceiverScratch {
    std::vector<DepthEntry> depths;
    bool last_deepest = false;
  };

  int senders_ = 0;
  int receivers_ = 0;
  std::vector<std::unique_ptr<SpscQueue<T>>> queues_;
  std::vector<ReceiverScratch> depth_scratch_;
};

}  // namespace orthrus::mp

#endif  // ORTHRUS_MP_QUEUE_MESH_H_
