// QueueMesh: the full (sender x receiver) matrix of SPSC queues that wires
// a set of message-passing threads together (Section 3.1). ORTHRUS needs
// three of these — exec->CC (acquire/release), CC->CC (forwarding), and
// CC->exec (grant/ack) — and before this abstraction each engine wired the
// matrices by hand. The mesh owns the queues, routes (sender, receiver)
// pairs, and provides the two operations the hot path is built from:
//
//  * Send: blocking enqueue with a wedge diagnostic. Queue capacities are
//    provable bounds on outstanding messages per pair, so a full queue that
//    stays full is a protocol bug, not backpressure.
//  * Drain: batched delivery of everything addressed to one receiver.
//    Messages are popped PopBatch-wise (up to a cache line per pop), so a
//    burst from one sender costs one index publication and ~one payload
//    line transfer per kMsgsPerLine messages instead of one per message.
//    `max_batch = 1` degrades to per-message delivery — the ablation
//    baseline for measuring exactly that difference.
#ifndef ORTHRUS_MP_QUEUE_MESH_H_
#define ORTHRUS_MP_QUEUE_MESH_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/macros.h"
#include "hal/hal.h"
#include "mp/spsc_queue.h"

namespace orthrus::mp {

// Order in which Drain visits the queues addressed to a receiver.
enum class DrainOrder {
  // Fixed sender order 0..N-1. The default: zero bookkeeping, and the
  // bit-stable event order the engine equivalence digests are pinned to.
  kRoundRobin,
  // Snapshot consumer-visible depths, then serve the deepest queue first
  // (ties broken by sender id, so the order stays deterministic). Under
  // bursty or skewed fan-in the deepest queue bounds the burst's drain
  // latency and marks the sender closest to blocking on a full queue, so
  // serving it first cuts tail latency and Send backpressure. Costs one
  // tail-index load per sender up front.
  kDeepestFirst,
};

template <typename T>
class QueueMesh {
 public:
  static constexpr std::size_t kDefaultBatch = SpscQueue<T>::kMsgsPerLine;

  QueueMesh() = default;

  QueueMesh(int senders, int receivers, std::size_t capacity) {
    Reset(senders, receivers, capacity);
  }

  QueueMesh(const QueueMesh&) = delete;
  QueueMesh& operator=(const QueueMesh&) = delete;

  // (Re)builds the matrix. All queues share one capacity: the caller's
  // provable per-pair bound on outstanding messages.
  void Reset(int senders, int receivers, std::size_t capacity) {
    ORTHRUS_CHECK(senders >= 1 && receivers >= 1);
    senders_ = senders;
    receivers_ = receivers;
    queues_.clear();
    queues_.reserve(static_cast<std::size_t>(senders) * receivers);
    for (int i = 0; i < senders * receivers; ++i) {
      queues_.push_back(std::make_unique<SpscQueue<T>>(capacity));
    }
    // Per-receiver depth scratch, pre-sized so the adaptive drain never
    // allocates on the hot path. Each receiver thread touches only its own
    // cache-line-aligned entry.
    depth_scratch_.assign(static_cast<std::size_t>(receivers),
                          ReceiverScratch{});
    for (ReceiverScratch& s : depth_scratch_) {
      s.depths.reserve(static_cast<std::size_t>(senders));
    }
  }

  int senders() const { return senders_; }
  int receivers() const { return receivers_; }

  SpscQueue<T>& at(int sender, int receiver) {
    ORTHRUS_DCHECK(sender >= 0 && sender < senders_);
    ORTHRUS_DCHECK(receiver >= 0 && receiver < receivers_);
    return *queues_[static_cast<std::size_t>(sender) * receivers_ + receiver];
  }

  // Blocking send on the (sender, receiver) pair's queue. Spins (politely)
  // while full; CHECK-fails if the queue stays full long enough that the
  // capacity bound must have been violated.
  void Send(int sender, int receiver, T value) {
    SpscQueue<T>& q = at(sender, receiver);
    std::uint64_t spins = 0;
    while (!q.TryEnqueue(value)) {
      hal::CpuRelax();
      ORTHRUS_CHECK_MSG(++spins < (1ull << 26),
                        "message queue wedged: capacity bound violated");
    }
  }

  // Drains every queue addressed to `receiver`, invoking fn(message) on
  // each message in per-sender FIFO order. Pops in batches of up to
  // `max_batch` (clamped to one payload line). Returns messages delivered.
  // `order` picks the sender visit order; see DrainOrder.
  template <typename Fn>
  std::size_t Drain(int receiver, Fn&& fn,
                    std::size_t max_batch = kDefaultBatch,
                    DrainOrder order = DrainOrder::kRoundRobin) {
    const std::size_t batch =
        max_batch < kDefaultBatch ? max_batch : kDefaultBatch;
    T buf[kDefaultBatch];
    std::size_t delivered = 0;
    if (order == DrainOrder::kDeepestFirst && senders_ > 1) {
      std::vector<DepthEntry>& depths = depth_scratch_[receiver].depths;
      depths.clear();
      for (int s = 0; s < senders_; ++s) {
        const std::size_t d = at(s, receiver).SizeConsumer();
        if (d != 0) depths.push_back({d, s});
      }
      std::sort(depths.begin(), depths.end());
      for (const DepthEntry& e : depths) {
        SpscQueue<T>& q = at(e.sender, receiver);
        std::size_t n;
        while ((n = q.PopBatch(buf, batch)) != 0) {
          for (std::size_t i = 0; i < n; ++i) fn(buf[i]);
          delivered += n;
        }
      }
      return delivered;
    }
    for (int s = 0; s < senders_; ++s) {
      SpscQueue<T>& q = at(s, receiver);
      std::size_t n;
      while ((n = q.PopBatch(buf, batch)) != 0) {
        for (std::size_t i = 0; i < n; ++i) fn(buf[i]);
        delivered += n;
      }
    }
    return delivered;
  }

  // Unmodeled aggregate occupancy, for teardown assertions.
  std::size_t SizeRawTotal() const {
    std::size_t total = 0;
    for (const auto& q : queues_) total += q->SizeRaw();
    return total;
  }

 private:
  // Deepest first, ties by sender id: a total order, so the adaptive drain
  // stays deterministic.
  struct DepthEntry {
    std::size_t depth;
    int sender;
    bool operator<(const DepthEntry& o) const {
      if (depth != o.depth) return depth > o.depth;
      return sender < o.sender;
    }
  };

  // Line-aligned so adjacent receivers' vector headers never share a cache
  // line (each receiver mutates its header on every adaptive drain).
  struct alignas(kCacheLineSize) ReceiverScratch {
    std::vector<DepthEntry> depths;
  };

  int senders_ = 0;
  int receivers_ = 0;
  std::vector<std::unique_ptr<SpscQueue<T>>> queues_;
  std::vector<ReceiverScratch> depth_scratch_;
};

}  // namespace orthrus::mp

#endif  // ORTHRUS_MP_QUEUE_MESH_H_
