// Line-packed ring storage shared by the queue implementations in mp/.
//
// Messages are word-sized, so a cache line carries kMsgsPerLine of them.
// Instead of dedicating one modeled coherence line per slot, payload words
// are packed contiguously into line-sized blocks: a burst of messages then
// costs one line transfer per kMsgsPerLine messages rather than one per
// message. Payload accesses are relaxed std::atomics — the queue's
// release-store / acquire-load of its shared index orders them (Lamport),
// and the explicit Touch charges the modeled line cost — exactly what
// hal::Atomic does, but at one line per kMsgsPerLine messages instead of
// one line per message.
//
// LineRing is storage only: it owns no indices and enforces no protocol.
// SpscQueue (one writer) and MpscQueue (CAS-reserved writers) both layer
// their index discipline over the same blocks, so the payload cost model
// stays identical across queue flavours.
#ifndef ORTHRUS_MP_LINE_RING_H_
#define ORTHRUS_MP_LINE_RING_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <type_traits>

#include "common/macros.h"
#include "hal/hal.h"
#include "hal/slab_arena.h"

namespace orthrus::mp::detail {

template <typename T>
class LineRing {
  static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8 &&
                    IsPowerOfTwo(sizeof(T)),
                "queue payloads are word-sized messages");

 public:
  // Messages sharing one (modeled) cache line of payload.
  static constexpr std::size_t kMsgsPerLine = kCacheLineSize / sizeof(T);

  // Capacity must be a power of two (index masking).
  //
  // An optional arena places the blocks on the receiver's NUMA node; the
  // home tag additionally tells the simulator's distance model which
  // modeled socket the blocks live on (-1 = unplaced). Both default to the
  // historical heap path, which allocation-for-allocation is what the arena
  // produces too — Line is trivially destructible either way.
  explicit LineRing(std::size_t capacity, hal::SlabArena* arena = nullptr,
                    int home_socket = -1)
      : capacity_(capacity),
        mask_(capacity - 1),
        word_mask_(WordsPerLine(capacity) - 1),
        line_shift_(Log2(WordsPerLine(capacity))) {
    ORTHRUS_CHECK(IsPowerOfTwo(capacity));
    const std::size_t n = capacity / WordsPerLine(capacity);
    if (arena != nullptr) {
      lines_ = arena->AllocateArray<Line>(n);
    } else {
      owned_lines_ = std::make_unique<Line[]>(n);  // lint:allow-alloc setup
      lines_ = owned_lines_.get();
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (home_socket >= 0) {
        lines_[i].meta.home = static_cast<std::int8_t>(home_socket);
      }
      // Payload touches are coherence charges, not synchronization: the
      // words are relaxed, ordered only by the owning queue's index
      // atomics. The race detector checks them as plain data instead
      // (RaceCheck below) — see LineMeta::sync_var.
      lines_[i].meta.sync_var = false;
    }
  }

  LineRing(const LineRing&) = delete;
  LineRing& operator=(const LineRing&) = delete;

  std::size_t capacity() const { return capacity_; }

  void Store(std::uint64_t idx, T value) {
    const std::size_t pos = static_cast<std::size_t>(idx) & mask_;
    Line& line = lines_[pos >> line_shift_];
    TouchLine(&line.meta, hal::MemOp::kStore);
    hal::RaceCheck(&line.words[pos & word_mask_], sizeof(T), /*is_write=*/true,
                   "mp.ring.word");
    line.words[pos & word_mask_].store(value, std::memory_order_relaxed);
  }

  T Load(std::uint64_t idx) {
    const std::size_t pos = static_cast<std::size_t>(idx) & mask_;
    Line& line = lines_[pos >> line_shift_];
    TouchLine(&line.meta, hal::MemOp::kLoad);
    hal::RaceCheck(&line.words[pos & word_mask_], sizeof(T),
                   /*is_write=*/false, "mp.ring.word");
    return line.words[pos & word_mask_].load(std::memory_order_relaxed);
  }

 private:
  // A line-sized block of payload words plus the simulator's coherence
  // metadata for it.
  struct alignas(kCacheLineSize) Line {
    // Raw std::atomic is deliberate here: the line is modeled explicitly
    // via TouchLine against `meta`, amortizing one hal::Atomic-equivalent
    // charge over kMsgsPerLine words (the whole point of line packing).
    std::atomic<T> words[kMsgsPerLine];  // lint:allow-raw-atomic
    hal::LineMeta meta;
  };

  // Rings smaller than a line still work: they use a single block with
  // capacity words. Maps 0 to 1 so that an illegal capacity reaches the
  // constructor's power-of-two CHECK instead of dividing by zero in the
  // member initializers.
  static constexpr std::size_t WordsPerLine(std::size_t capacity) {
    if (capacity == 0) return 1;
    return capacity < kMsgsPerLine ? capacity : kMsgsPerLine;
  }

  static constexpr std::size_t Log2(std::size_t v) {
    std::size_t s = 0;
    while ((std::size_t{1} << s) < v) ++s;
    return s;
  }

  static void TouchLine(hal::LineMeta* meta, hal::MemOp op) {
    hal::CoreContext* cc = hal::CurrentCore();
    if (cc != nullptr) cc->platform->OnAtomicAccess(meta, op);
  }

  const std::size_t capacity_;
  const std::size_t mask_;
  const std::size_t word_mask_;
  const std::size_t line_shift_;
  std::unique_ptr<Line[]> owned_lines_;  // heap fallback (no arena)
  Line* lines_ = nullptr;
};

// Polite spin for blocking sends. Queue capacities are provable bounds on
// outstanding messages per pair, so a full queue that stays full is a
// protocol bug, not backpressure: the spin CHECK-fails once the wait has
// outlived any legal protocol state. Shared by QueueMesh::Send,
// MultiMesh::Send, and the SendBuffer flushes so the diagnostic and its
// bound live in one place.
//
// The tight bound is sound only under the simulator, where fibers are
// never preempted. On native hardware the OS can park a consumer (or an
// MPSC producer that reserved slots but has not yet published the tail,
// keeping the ring apparently full) across many scheduling quanta — the
// same reasoning behind MpscQueue::PushBatch's unbounded native
// tail-publication wait — so the native bound is ~2^6 times looser:
// seconds of continuous spinning, beyond any plausible preemption stall,
// while still turning a genuine protocol wedge into a crisp CHECK
// failure instead of a silent CI-timeout hang.
class WedgeSpin {
 public:
  WedgeSpin() {
    hal::CoreContext* core = hal::CurrentCore();
    const bool simulated =
        core != nullptr && core->platform->is_simulated();
    bound_ = simulated ? (1ull << 26) : (1ull << 32);
    sink_ = core != nullptr ? core->send_stall_sink : nullptr;
  }

  // Stall accounting: a blocking send that had to pause at least once counts
  // as one stall, and its wait is charged to the core's registered sink so
  // backpressure is observable (see WorkerStats::send_stalls). Timestamps
  // are taken lazily — a send that never blocks reads no clock — so an
  // installed sink changes nothing about modeled costs.
  ~WedgeSpin() {
    if (sink_ != nullptr && spins_ > 0) {
      sink_->stalls++;
      sink_->stall_cycles += hal::Now() - started_at_;
    }
  }

  void Pause() {
    if (spins_ == 0 && sink_ != nullptr) started_at_ = hal::Now();
    hal::CpuRelax();
    ORTHRUS_CHECK_MSG(++spins_ < bound_,
                      "message queue wedged: capacity bound violated");
  }

 private:
  std::uint64_t bound_ = 1ull << 26;
  std::uint64_t spins_ = 0;
  hal::Cycles started_at_ = 0;
  hal::SpinStallSink* sink_ = nullptr;
};

}  // namespace orthrus::mp::detail

#endif  // ORTHRUS_MP_LINE_RING_H_
