// SendBuffer: sender-side batching over a QueueMesh.
//
// The mesh's receive side has been batched since the queues were built —
// Drain pops up to a cache line of messages per head publication — but a
// sender calling QueueMesh::Send still publishes its tail index once per
// message, so the coherence amortization of Section 3.1 only ran one way.
// SendBuffer closes that gap: each sender stages outgoing messages in a
// plain-memory array per (sender, receiver) pair and flushes them with one
// PushBatch — one tail publication and ~one payload-line transfer per
// staging-array's worth of messages instead of one publication each.
//
// The staging arrays are sender-private plain memory, so staging a message
// costs no modeled coherence traffic at all; the shared queue is touched
// only at flush time. A pair auto-flushes when its staging array fills
// (default: one payload line, the point past which a bigger batch buys no
// further line amortization); the owner must call FlushAll() at the end of
// each scheduling quantum so staged messages never outlive the sender's
// attention — an unflushed grant is a stalled transaction.
//
// Flush boundaries can instead be sized from the measured burst depth
// (`adaptive_flush`): when a sender's bursts toward a receiver run shallow
// — the common case for grant/ack traffic at low fan-in — waiting for a
// full line means every message sits staged until the quantum-end
// FlushAll, paying up to a quantum of latency for amortization that never
// materializes. Each (sender, receiver) pair keeps a BurstEstimator fed
// with the messages staged per quantum and flushes once the stage reaches
// the estimated burst depth; deep bursts grow the estimate back to the
// full line within a few quanta, so steady line-sized traffic keeps the
// one-publication-per-line behaviour exactly.
//
// Flush is blocking like QueueMesh::Send: queue capacities are provable
// bounds on outstanding messages (staging does not increase them — a
// staged message was "outstanding" the moment the protocol produced it),
// so a partial PushBatch retries until the receiver makes room and a
// queue that stays full is a protocol bug, not backpressure.
//
// MultiSendBuffer is the same staging layer over a MultiMesh: one staging
// array per receiver, flushed with MpscQueue::PushBatch (one CAS + one
// tail publication per flushed line instead of one per message). It is
// what an elastic sender population stages through; see MultiMesh's
// sender-lifecycle contract for the retire protocol. Both buffers share
// one implementation (detail::SendStaging); a concrete buffer only
// resolves which queue a receiver's stage flushes into.
#ifndef ORTHRUS_MP_SEND_BUFFER_H_
#define ORTHRUS_MP_SEND_BUFFER_H_

#include <cstdint>
#include <vector>

#include "common/macros.h"
#include "hal/hal.h"
#include "mp/multi_mesh.h"
#include "mp/queue_mesh.h"

namespace orthrus::mp {
namespace detail {

// Integer EWMA of per-quantum burst depths toward one receiver, used to
// size adaptive flush thresholds. Asymmetric rounding: estimates climb
// (ceil) faster than they decay (floor), so a workload returning to deep
// bursts recovers full-line staging in a few quanta while shallow phases
// still pull the threshold down. Deterministic — pure integer state fed
// only by observed counts.
class BurstEstimator {
 public:
  // Feed the number of messages staged toward the receiver during one
  // scheduling quantum (callers skip empty quanta).
  void Observe(std::size_t burst_depth) {
    ORTHRUS_DCHECK(burst_depth >= 1);
    if (est_ == 0) {
      est_ = burst_depth;
    } else if (burst_depth > est_) {
      est_ = (3 * est_ + burst_depth + 3) / 4;  // ceil: climb fast
    } else {
      est_ = (3 * est_ + burst_depth) / 4;  // floor: decay gradually
    }
    if (est_ < 1) est_ = 1;
  }

  // Flush threshold in [1, cap]; before the first observation the full
  // line (`cap`) is used, i.e. exactly the non-adaptive behaviour.
  std::size_t Threshold(std::size_t cap) const {
    if (est_ == 0 || est_ >= cap) return cap;
    return est_;
  }

  std::size_t estimate() const { return est_; }

 private:
  std::size_t est_ = 0;
};

// Receive-side batch policy: a BurstEstimator paired with its opt-in
// flag and fallback, so every consumer sizing its drains adaptively
// applies the same contract — threshold from the measured burst depth
// when adaptive (the fallback until the first observation), and only
// non-empty drains feed the estimate.
class DrainBatchPolicy {
 public:
  std::size_t Batch(bool adaptive, std::size_t fallback) const {
    return adaptive ? est_.Threshold(fallback) : fallback;
  }
  void Observe(bool adaptive, std::size_t delivered) {
    if (adaptive && delivered != 0) est_.Observe(delivered);
  }
  const BurstEstimator& estimator() const { return est_; }

 private:
  BurstEstimator est_;
};

// The shared staging engine behind SendBuffer and MultiSendBuffer: the
// per-receiver staging matrix, flush thresholds (fixed or burst-adaptive),
// quantum bookkeeping, and the message/publication counters. The derived
// buffer contributes exactly one thing through CRTP: `queue(receiver)`,
// the ring a receiver's stage flushes into.
template <typename T, typename Derived>
class SendStaging {
 public:
  std::size_t stage_capacity() const { return stage_; }
  bool adaptive_flush() const { return adaptive_; }

  // Stages `value` for `receiver`; flushes the pair once its stage reaches
  // the flush threshold (the full stage, or the measured burst depth when
  // adaptive).
  void Send(int receiver, T value) {
    ORTHRUS_DCHECK(receiver >= 0 && receiver < receivers_);
    const std::size_t r = static_cast<std::size_t>(receiver);
    std::size_t& n = counts_[r];
    slots_[r * stage_ + n] = value;
    messages_++;
    if (adaptive_) quantum_msgs_[r]++;
    if (++n >= FlushThreshold(r)) Flush(receiver);
  }

  // Pushes everything staged for `receiver` into its queue, retrying
  // partial batches until the whole stage is enqueued.
  void Flush(int receiver) {
    std::size_t& n = counts_[static_cast<std::size_t>(receiver)];
    if (n == 0) return;
    const T* buf = &slots_[static_cast<std::size_t>(receiver) * stage_];
    auto& q = static_cast<Derived*>(this)->queue(receiver);
    std::size_t pushed = 0;
    detail::WedgeSpin spin;
    while (pushed < n) {
      const std::size_t k = q.PushBatch(buf + pushed, n - pushed);
      if (k == 0) {
        spin.Pause();
        continue;
      }
      publications_++;
      pushed += k;
    }
    n = 0;
  }

  // Flushes every pair, in ascending receiver order (deterministic under
  // the simulator). Call at the end of each scheduling quantum; this is
  // also where the adaptive threshold observes the quantum's burst depths.
  void FlushAll() {
    for (int r = 0; r < receivers_; ++r) {
      Flush(r);
      if (adaptive_) {
        const std::size_t i = static_cast<std::size_t>(r);
        if (quantum_msgs_[i] != 0) bursts_[i].Observe(quantum_msgs_[i]);
        quantum_msgs_[i] = 0;
      }
    }
  }

  // Messages staged but not yet flushed (all receivers).
  std::size_t Pending() const {
    std::size_t total = 0;
    for (std::size_t n : counts_) total += n;
    return total;
  }

  // Total messages accepted by Send().
  std::uint64_t messages() const { return messages_; }

  // Tail-index publications performed (successful PushBatch calls). The
  // amortization the buffer exists for: messages() / publications() is the
  // average messages per publication, vs. exactly 1 for unbuffered Send.
  std::uint64_t publications() const { return publications_; }

  // Current flush threshold toward `receiver` (== stage_capacity() when
  // not adaptive or before the first observation). Test observability.
  std::size_t FlushThreshold(std::size_t receiver) const {
    return adaptive_ ? bursts_[receiver].Threshold(stage_) : stage_;
  }

 protected:
  SendStaging(int receivers, std::size_t stage_capacity, bool adaptive_flush)
      : receivers_(receivers),
        stage_(stage_capacity < 1 ? 1 : stage_capacity),
        adaptive_(adaptive_flush),
        slots_(static_cast<std::size_t>(receivers) * stage_),
        counts_(static_cast<std::size_t>(receivers), 0),
        // Quantum bookkeeping exists only when the adaptive threshold
        // consumes it; the default path pays nothing for it.
        quantum_msgs_(adaptive_flush ? static_cast<std::size_t>(receivers)
                                     : 0),
        bursts_(adaptive_flush ? static_cast<std::size_t>(receivers) : 0) {}

  SendStaging(const SendStaging&) = delete;
  SendStaging& operator=(const SendStaging&) = delete;

 private:
  const int receivers_;
  const std::size_t stage_;
  const bool adaptive_;
  // Flat [receiver][stage_] staging matrix + per-receiver fill counts.
  // Plain memory: exactly one thread owns a buffer.
  std::vector<T> slots_;
  std::vector<std::size_t> counts_;
  // Messages staged per receiver in the current quantum (adaptive-flush
  // burst measurement; reset by FlushAll). Empty when not adaptive.
  std::vector<std::size_t> quantum_msgs_;
  std::vector<BurstEstimator> bursts_;
  std::uint64_t messages_ = 0;
  std::uint64_t publications_ = 0;
};

}  // namespace detail

template <typename T>
class SendBuffer final
    : public detail::SendStaging<T, SendBuffer<T>> {
 public:
  // Stage one payload line per pair by default: flushes then publish the
  // tail once per line, matching the receive side's per-line pops.
  static constexpr std::size_t kDefaultStage = SpscQueue<T>::kMsgsPerLine;

  // `stage_capacity = 1` degrades to exactly QueueMesh::Send's per-message
  // publication behaviour — the ablation baseline. `adaptive_flush` sizes
  // the per-receiver flush threshold from the measured burst depth instead
  // of always staging a full line.
  SendBuffer(QueueMesh<T>* mesh, int sender,
             std::size_t stage_capacity = kDefaultStage,
             bool adaptive_flush = false)
      : detail::SendStaging<T, SendBuffer<T>>(mesh->receivers(),
                                              stage_capacity, adaptive_flush),
        mesh_(mesh),
        sender_(sender) {
    ORTHRUS_CHECK(sender >= 0 && sender < mesh->senders());
  }

  int sender() const { return sender_; }

  SpscQueue<T>& queue(int receiver) { return mesh_->at(sender_, receiver); }

 private:
  QueueMesh<T>* mesh_;
  const int sender_;
};

// Sender-side staging over a MultiMesh. Senders are anonymous; a thread
// owns its buffer, and the MultiMesh retire protocol requires
// Pending() == 0 before the owner retires. `shard_hint` picks which of
// the mesh's per-receiver shards this sender flushes into (reduced modulo
// the shard count); it must stay fixed for the buffer's lifetime so the
// sender's own messages stay FIFO.
template <typename T>
class MultiSendBuffer final
    : public detail::SendStaging<T, MultiSendBuffer<T>> {
 public:
  static constexpr std::size_t kDefaultStage = MpscQueue<T>::kMsgsPerLine;

  explicit MultiSendBuffer(MultiMesh<T>* mesh, int shard_hint = 0,
                           std::size_t stage_capacity = kDefaultStage,
                           bool adaptive_flush = false)
      : detail::SendStaging<T, MultiSendBuffer<T>>(
            mesh->receivers(), stage_capacity, adaptive_flush),
        mesh_(mesh),
        hint_(shard_hint),
        // Resolve through the routing modulus even at construction: on an
        // adaptive mesh the raw allocated-ring count (kMaxAutoShards) can
        // exceed the drain high-water, and a ring above it would strand
        // anything sent before the first Rebind().
        shard_(mesh->RingForHint(shard_hint)) {}

  int shard() const { return shard_; }

  // Re-resolves the ring for this buffer's hint under the mesh's current
  // routing modulus. Call right after each RegisterSender on an adaptive
  // mesh: the modulus tracks the sender population, and the drain-to-empty
  // retire contract guarantees nothing of ours is left on the old ring.
  void Rebind() { shard_ = mesh_->RingForHint(hint_); }

  MpscQueue<T>& queue(int receiver) { return mesh_->at(receiver, shard_); }

 private:
  MultiMesh<T>* mesh_;
  const int hint_;
  int shard_;
};

}  // namespace orthrus::mp

#endif  // ORTHRUS_MP_SEND_BUFFER_H_
