// SendBuffer: sender-side batching over a QueueMesh.
//
// The mesh's receive side has been batched since the queues were built —
// Drain pops up to a cache line of messages per head publication — but a
// sender calling QueueMesh::Send still publishes its tail index once per
// message, so the coherence amortization of Section 3.1 only ran one way.
// SendBuffer closes that gap: each sender stages outgoing messages in a
// plain-memory array per (sender, receiver) pair and flushes them with one
// PushBatch — one tail publication and ~one payload-line transfer per
// staging-array's worth of messages instead of one publication each.
//
// The staging arrays are sender-private plain memory, so staging a message
// costs no modeled coherence traffic at all; the shared queue is touched
// only at flush time. A pair auto-flushes when its staging array fills
// (default: one payload line, the point past which a bigger batch buys no
// further line amortization); the owner must call FlushAll() at the end of
// each scheduling quantum so staged messages never outlive the sender's
// attention — an unflushed grant is a stalled transaction.
//
// Flush is blocking like QueueMesh::Send: queue capacities are provable
// bounds on outstanding messages (staging does not increase them — a
// staged message was "outstanding" the moment the protocol produced it),
// so a partial PushBatch retries until the receiver makes room and a
// queue that stays full is a protocol bug, not backpressure.
#ifndef ORTHRUS_MP_SEND_BUFFER_H_
#define ORTHRUS_MP_SEND_BUFFER_H_

#include <cstdint>
#include <vector>

#include "common/macros.h"
#include "hal/hal.h"
#include "mp/queue_mesh.h"

namespace orthrus::mp {

template <typename T>
class SendBuffer {
 public:
  // Stage one payload line per pair by default: flushes then publish the
  // tail once per line, matching the receive side's per-line pops.
  static constexpr std::size_t kDefaultStage = SpscQueue<T>::kMsgsPerLine;

  // `stage_capacity = 1` degrades to exactly QueueMesh::Send's per-message
  // publication behaviour — the ablation baseline.
  SendBuffer(QueueMesh<T>* mesh, int sender,
             std::size_t stage_capacity = kDefaultStage)
      : mesh_(mesh),
        sender_(sender),
        stage_(stage_capacity < 1 ? 1 : stage_capacity),
        slots_(static_cast<std::size_t>(mesh->receivers()) * stage_),
        counts_(static_cast<std::size_t>(mesh->receivers()), 0) {
    ORTHRUS_CHECK(sender >= 0 && sender < mesh->senders());
  }

  SendBuffer(const SendBuffer&) = delete;
  SendBuffer& operator=(const SendBuffer&) = delete;

  int sender() const { return sender_; }
  std::size_t stage_capacity() const { return stage_; }

  // Stages `value` for `receiver`; flushes the pair if its array is full.
  void Send(int receiver, T value) {
    ORTHRUS_DCHECK(receiver >= 0 && receiver < mesh_->receivers());
    std::size_t& n = counts_[static_cast<std::size_t>(receiver)];
    slots_[static_cast<std::size_t>(receiver) * stage_ + n] = value;
    messages_++;
    if (++n == stage_) Flush(receiver);
  }

  // Pushes everything staged for `receiver` into the mesh queue, retrying
  // partial batches until the whole stage is enqueued.
  void Flush(int receiver) {
    std::size_t& n = counts_[static_cast<std::size_t>(receiver)];
    if (n == 0) return;
    const T* buf = &slots_[static_cast<std::size_t>(receiver) * stage_];
    SpscQueue<T>& q = mesh_->at(sender_, receiver);
    std::size_t pushed = 0;
    detail::WedgeSpin spin;
    while (pushed < n) {
      const std::size_t k = q.PushBatch(buf + pushed, n - pushed);
      if (k == 0) {
        spin.Pause();
        continue;
      }
      publications_++;
      pushed += k;
    }
    n = 0;
  }

  // Flushes every pair, in ascending receiver order (deterministic under
  // the simulator). Call at the end of each scheduling quantum.
  void FlushAll() {
    for (int r = 0; r < mesh_->receivers(); ++r) Flush(r);
  }

  // Messages staged but not yet flushed (all receivers).
  std::size_t Pending() const {
    std::size_t total = 0;
    for (std::size_t n : counts_) total += n;
    return total;
  }

  // Total messages accepted by Send().
  std::uint64_t messages() const { return messages_; }

  // Tail-index publications performed (successful PushBatch calls). The
  // amortization the buffer exists for: messages() / publications() is the
  // average messages per publication, vs. exactly 1 for unbuffered Send.
  std::uint64_t publications() const { return publications_; }

 private:
  QueueMesh<T>* mesh_;
  const int sender_;
  const std::size_t stage_;
  // Flat [receiver][stage_] staging matrix + per-receiver fill counts.
  // Plain memory: exactly one thread owns a SendBuffer.
  std::vector<T> slots_;
  std::vector<std::size_t> counts_;
  std::uint64_t messages_ = 0;
  std::uint64_t publications_ = 0;
};

}  // namespace orthrus::mp

#endif  // ORTHRUS_MP_SEND_BUFFER_H_
