// MultiMesh: the dynamically-sized counterpart of QueueMesh. Instead of a
// full (sender x receiver) matrix of SPSC queues — which bakes the sender
// population into the mesh at construction time — each receiver owns one
// multi-producer queue (mp::MpscQueue) that any thread may send into. That
// is the prerequisite for dynamic execution-thread counts: spinning up a
// new sender needs no mesh rebuild and no sender id registration.
//
// The trade, priced by the simulator's cost model: every Send pays a CAS
// on the receiver's shared reservation index, the synchronization the
// per-pair SPSC design exists to avoid, and fan-in FIFO is global arrival
// order rather than per-sender round-robin (one sender's messages still
// arrive in its send order — a single producer's reservations are
// ordered). Drain keeps the batched shape of QueueMesh::Drain: up to
// `max_batch` messages per head publication, clamped to one payload line.
//
// Sharding: with one ring per receiver, every producer contends on the
// same reservation CAS, publishes its tail through one global
// reservation-order chain, and interleaves its payload words into lines
// other producers are writing — at tens of senders the serialization
// chain, not the queue work, dominates. A mesh built with `shards` > 1
// gives each receiver that many independent rings; senders hash (shard
// hint modulo shards) onto one, cutting every contended structure by the
// shard factor, and receivers drain shards in fixed order. Per-SENDER
// FIFO still holds (a sender's messages stay in one shard); global
// arrival order across shards does not, which callers already could not
// assume across senders. A sender that retires and later re-registers may
// land on a different shard, so cross-registration FIFO requires the
// retire protocol below (drain-to-empty makes the point moot: nothing of
// the sender's outlives its registration).
//
// Sender lifecycle: senders are anonymous to the queues, but an elastic
// engine needs to reason about the population ("have all current senders
// retired?", teardown assertions), so the mesh keeps an active-sender
// count behind RegisterSender/RetireSender. The retire contract is the
// drain-to-empty epoch protocol: before calling RetireSender a sender
// must have flushed every staged line it owns (MultiSendBuffer::Pending()
// == 0) and have no outstanding request that could generate a reply to
// it. Registration is cheap (one modeled RMW), so a parked sender
// re-registers on resume rather than holding its slot while idle.
#ifndef ORTHRUS_MP_MULTI_MESH_H_
#define ORTHRUS_MP_MULTI_MESH_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/macros.h"
#include "hal/hal.h"
#include "mp/mpsc_queue.h"

namespace orthrus::mp {

template <typename T>
class MultiMesh {
 public:
  static constexpr std::size_t kDefaultBatch = MpscQueue<T>::kMsgsPerLine;

  MultiMesh() = default;

  MultiMesh(int receivers, std::size_t capacity, int shards = 1) {
    Reset(receivers, capacity, shards);
  }

  MultiMesh(const MultiMesh&) = delete;
  MultiMesh& operator=(const MultiMesh&) = delete;

  // (Re)builds the per-receiver queues. `capacity` is the caller's provable
  // bound on outstanding messages addressed to one receiver *per shard* —
  // across the senders that hash onto that shard, since they share its
  // ring. `shards` rings per receiver (see the sharding note above).
  void Reset(int receivers, std::size_t capacity, int shards = 1) {
    ORTHRUS_CHECK(receivers >= 1);
    ORTHRUS_CHECK(shards >= 1);
    active_senders_.RawStore(0);
    registrations_total_.RawStore(0);
    shards_ = shards;
    queues_.clear();
    queues_.reserve(static_cast<std::size_t>(receivers) * shards);
    for (int i = 0; i < receivers * shards; ++i) {
      queues_.push_back(std::make_unique<MpscQueue<T>>(capacity));
    }
  }

  int receivers() const {
    return static_cast<int>(queues_.size()) / shards_;
  }
  int shards() const { return shards_; }

  MpscQueue<T>& at(int receiver, int shard = 0) {
    ORTHRUS_DCHECK(receiver >= 0 && receiver < receivers());
    ORTHRUS_DCHECK(shard >= 0 && shard < shards_);
    return *queues_[static_cast<std::size_t>(receiver) * shards_ + shard];
  }

  // Blocking send from any thread. Spins (politely) while full;
  // CHECK-fails if the queue stays full long enough that the capacity
  // bound must have been violated. `shard_hint` is reduced modulo the
  // shard count; a sender must use one hint for its whole registration so
  // its own messages stay FIFO.
  void Send(int receiver, T value, int shard_hint = 0) {
    MpscQueue<T>& q = at(receiver, shard_hint % shards_);
    detail::WedgeSpin spin;
    while (!q.TryEnqueue(value)) spin.Pause();
  }

  // Drains the receiver's queues (all shards, fixed shard order), invoking
  // fn(message) on each message in per-shard arrival order. Pops in
  // batches of up to `max_batch` (clamped to [1, one payload line]).
  // Returns messages delivered.
  template <typename Fn>
  std::size_t Drain(int receiver, Fn&& fn,
                    std::size_t max_batch = kDefaultBatch) {
    ORTHRUS_DCHECK(max_batch >= 1);
    std::size_t batch = max_batch < kDefaultBatch ? max_batch : kDefaultBatch;
    if (batch == 0) batch = 1;  // release builds: never wedge a caller that
                                // loops until progress
    T buf[kDefaultBatch];
    std::size_t delivered = 0;
    for (int s = 0; s < shards_; ++s) {
      MpscQueue<T>& q = at(receiver, s);
      std::size_t n;
      while ((n = q.PopBatch(buf, batch)) != 0) {
        for (std::size_t i = 0; i < n; ++i) fn(buf[i]);
        delivered += n;
      }
    }
    return delivered;
  }

  // --- sender lifecycle -------------------------------------------------
  //
  // A thread that will send into the mesh registers first; when it parks
  // or exits it retires. Retiring requires the drain-to-empty protocol:
  // the caller must have flushed all staged lines (its MultiSendBuffer is
  // empty) before the RetireSender call, so a retired sender can never
  // strand messages invisible to receivers.

  // Joins the active sender population. Returns the population size
  // including this sender.
  int RegisterSender() {
    registrations_total_.fetch_add(1);
    return static_cast<int>(active_senders_.fetch_add(1)) + 1;
  }

  // Leaves the active sender population. Everything this sender staged
  // must already be flushed into the queues.
  void RetireSender() {
    const std::uint64_t prev =
        active_senders_.fetch_add(static_cast<std::uint64_t>(-1));
    ORTHRUS_CHECK_MSG(prev > 0, "RetireSender without a matching register");
  }

  // Modeled view of the current population (any thread).
  int ActiveSenders() { return static_cast<int>(active_senders_.load()); }

  // Unmodeled views for teardown assertions and tests.
  int ActiveSendersRaw() const {
    return static_cast<int>(active_senders_.RawLoad());
  }
  std::uint64_t RegistrationsTotalRaw() const {
    return registrations_total_.RawLoad();
  }

  // Unmodeled aggregate occupancy, for teardown assertions.
  std::size_t SizeRawTotal() const {
    std::size_t total = 0;
    for (const auto& q : queues_) total += q->SizeRaw();
    return total;
  }

 private:
  int shards_ = 1;
  std::vector<std::unique_ptr<MpscQueue<T>>> queues_;
  hal::Atomic<std::uint64_t> active_senders_{0};
  hal::Atomic<std::uint64_t> registrations_total_{0};
};

}  // namespace orthrus::mp

#endif  // ORTHRUS_MP_MULTI_MESH_H_
