// MultiMesh: the dynamically-sized counterpart of QueueMesh. Instead of a
// full (sender x receiver) matrix of SPSC queues — which bakes the sender
// population into the mesh at construction time — each receiver owns one
// multi-producer queue (mp::MpscQueue) that any thread may send into. That
// is the prerequisite for dynamic execution-thread counts: spinning up a
// new sender needs no mesh rebuild and no sender id registration.
//
// The trade, priced by the simulator's cost model: every Send pays a CAS
// on the receiver's shared reservation index, the synchronization the
// per-pair SPSC design exists to avoid, and fan-in FIFO is global arrival
// order rather than per-sender round-robin (one sender's messages still
// arrive in its send order — a single producer's reservations are
// ordered). Drain keeps the batched shape of QueueMesh::Drain: up to
// `max_batch` messages per head publication, clamped to one payload line.
#ifndef ORTHRUS_MP_MULTI_MESH_H_
#define ORTHRUS_MP_MULTI_MESH_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/macros.h"
#include "hal/hal.h"
#include "mp/mpsc_queue.h"

namespace orthrus::mp {

template <typename T>
class MultiMesh {
 public:
  static constexpr std::size_t kDefaultBatch = MpscQueue<T>::kMsgsPerLine;

  MultiMesh() = default;

  MultiMesh(int receivers, std::size_t capacity) { Reset(receivers, capacity); }

  MultiMesh(const MultiMesh&) = delete;
  MultiMesh& operator=(const MultiMesh&) = delete;

  // (Re)builds the per-receiver queues. `capacity` is the caller's provable
  // bound on outstanding messages addressed to one receiver — across all
  // senders, since they share the ring.
  void Reset(int receivers, std::size_t capacity) {
    ORTHRUS_CHECK(receivers >= 1);
    queues_.clear();
    queues_.reserve(static_cast<std::size_t>(receivers));
    for (int r = 0; r < receivers; ++r) {
      queues_.push_back(std::make_unique<MpscQueue<T>>(capacity));
    }
  }

  int receivers() const { return static_cast<int>(queues_.size()); }

  MpscQueue<T>& at(int receiver) {
    ORTHRUS_DCHECK(receiver >= 0 && receiver < receivers());
    return *queues_[static_cast<std::size_t>(receiver)];
  }

  // Blocking send from any thread. Spins (politely) while full;
  // CHECK-fails if the queue stays full long enough that the capacity
  // bound must have been violated.
  void Send(int receiver, T value) {
    MpscQueue<T>& q = at(receiver);
    detail::WedgeSpin spin;
    while (!q.TryEnqueue(value)) spin.Pause();
  }

  // Drains the receiver's queue, invoking fn(message) on each message in
  // arrival order. Pops in batches of up to `max_batch` (clamped to
  // [1, one payload line]). Returns messages delivered.
  template <typename Fn>
  std::size_t Drain(int receiver, Fn&& fn,
                    std::size_t max_batch = kDefaultBatch) {
    ORTHRUS_DCHECK(max_batch >= 1);
    std::size_t batch = max_batch < kDefaultBatch ? max_batch : kDefaultBatch;
    if (batch == 0) batch = 1;  // release builds: never wedge a caller that
                                // loops until progress
    T buf[kDefaultBatch];
    std::size_t delivered = 0;
    MpscQueue<T>& q = at(receiver);
    std::size_t n;
    while ((n = q.PopBatch(buf, batch)) != 0) {
      for (std::size_t i = 0; i < n; ++i) fn(buf[i]);
      delivered += n;
    }
    return delivered;
  }

  // Unmodeled aggregate occupancy, for teardown assertions.
  std::size_t SizeRawTotal() const {
    std::size_t total = 0;
    for (const auto& q : queues_) total += q->SizeRaw();
    return total;
  }

 private:
  std::vector<std::unique_ptr<MpscQueue<T>>> queues_;
};

}  // namespace orthrus::mp

#endif  // ORTHRUS_MP_MULTI_MESH_H_
