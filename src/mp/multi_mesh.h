// MultiMesh: the dynamically-sized counterpart of QueueMesh. Instead of a
// full (sender x receiver) matrix of SPSC queues — which bakes the sender
// population into the mesh at construction time — each receiver owns one
// multi-producer queue (mp::MpscQueue) that any thread may send into. That
// is the prerequisite for dynamic execution-thread counts: spinning up a
// new sender needs no mesh rebuild and no sender id registration.
//
// The trade, priced by the simulator's cost model: every Send pays a CAS
// on the receiver's shared reservation index, the synchronization the
// per-pair SPSC design exists to avoid, and fan-in FIFO is global arrival
// order rather than per-sender round-robin (one sender's messages still
// arrive in its send order — a single producer's reservations are
// ordered). Drain keeps the batched shape of QueueMesh::Drain: up to
// `max_batch` messages per head publication, clamped to one payload line.
//
// Sharding: with one ring per receiver, every producer contends on the
// same reservation CAS, publishes its tail through one global
// reservation-order chain, and interleaves its payload words into lines
// other producers are writing — at tens of senders the serialization
// chain, not the queue work, dominates. A mesh built with `shards` > 1
// gives each receiver that many independent rings; senders hash (shard
// hint modulo shards) onto one, cutting every contended structure by the
// shard factor, and receivers drain shards in fixed order. Per-SENDER
// FIFO still holds (a sender's messages stay in one shard); global
// arrival order across shards does not, which callers already could not
// assume across senders. A sender that retires and later re-registers may
// land on a different shard, so cross-registration FIFO requires the
// retire protocol below (drain-to-empty makes the point moot: nothing of
// the sender's outlives its registration).
//
// Sender lifecycle: senders are anonymous to the queues, but an elastic
// engine needs to reason about the population ("have all current senders
// retired?", teardown assertions), so the mesh keeps an active-sender
// count behind RegisterSender/RetireSender. The retire contract is the
// drain-to-empty epoch protocol: before calling RetireSender a sender
// must have flushed every staged line it owns (MultiSendBuffer::Pending()
// == 0) and have no outstanding request that could generate a reply to
// it. Registration is cheap (one modeled RMW), so a parked sender
// re-registers on resume rather than holding its slot while idle.
#ifndef ORTHRUS_MP_MULTI_MESH_H_
#define ORTHRUS_MP_MULTI_MESH_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/macros.h"
#include "hal/hal.h"
#include "mp/mpsc_queue.h"

namespace orthrus::mp {

template <typename T>
class MultiMesh {
 public:
  static constexpr std::size_t kDefaultBatch = MpscQueue<T>::kMsgsPerLine;

  // Ring-count ceiling in adaptive mode (shards = 0): the measured knee —
  // contention falls off fastest up to 8 rings, and rings past the sender
  // population only add drain polls, which is exactly what the adaptive
  // policy exists to avoid.
  static constexpr int kMaxAutoShards = 8;

  // NUMA placement for one receiver's rings: the arena backing the payload
  // blocks and the modeled socket they live on (see MpscQueue). Optional.
  struct ReceiverPlacement {
    hal::SlabArena* arena = nullptr;
    int home_socket = -1;
  };

  MultiMesh() = default;

  MultiMesh(int receivers, std::size_t capacity, int shards = 1) {
    Reset(receivers, capacity, shards);
  }

  MultiMesh(const MultiMesh&) = delete;
  MultiMesh& operator=(const MultiMesh&) = delete;

  // (Re)builds the per-receiver queues. `capacity` is the caller's provable
  // bound on outstanding messages addressed to one receiver *per shard* —
  // across the senders that hash onto that shard, since they share its
  // ring. `shards` rings per receiver (see the sharding note above).
  //
  // `shards == 0` selects *adaptive* sharding: kMaxAutoShards rings are
  // allocated, but the routing modulus follows the registered-sender
  // population — RegisterSender raises it toward min(kMaxAutoShards,
  // population), RetireSender lowers it for future registrations. A
  // sender resolves its ring once per registration (RingForHint), so its
  // own messages stay FIFO; receivers drain up to the high-water ring
  // count, which only grows while the mesh is live — a ring that ever
  // carried a sender may still hold undrained messages. Note the capacity
  // bound: with an adaptive modulus any ring may in the worst case serve
  // the whole population, so size `capacity` for all senders on one ring.
  // `line_aligned`/`skip` select MpscQueue's whole-line reservation mode
  // for every ring (capacity bounds must then be multiplied by
  // kMsgsPerLine; `skip` must be a value no sender ever enqueues).
  // `placement`, when non-null, must have one entry per receiver and NUMA-
  // places each receiver's rings. Defaults reproduce the historical mesh
  // exactly.
  void Reset(int receivers, std::size_t capacity, int shards = 1,
             bool line_aligned = false, T skip = T(),
             const std::vector<ReceiverPlacement>* placement = nullptr) {
    ORTHRUS_CHECK(receivers >= 1);
    ORTHRUS_CHECK(shards >= 0);
    ORTHRUS_CHECK(placement == nullptr ||
                  placement->size() == static_cast<std::size_t>(receivers));
    active_senders_.RawStore(0);
    registrations_total_.RawStore(0);
    adaptive_ = shards == 0;
    shards_ = adaptive_ ? kMaxAutoShards : shards;
    route_shards_.RawStore(adaptive_ ? 1 : static_cast<std::uint64_t>(shards_));
    drain_shards_.RawStore(adaptive_ ? 1 : static_cast<std::uint64_t>(shards_));
    queues_.clear();
    queues_.reserve(static_cast<std::size_t>(receivers) * shards_);
    for (int i = 0; i < receivers * shards_; ++i) {
      const ReceiverPlacement p =
          placement != nullptr ? (*placement)[i / shards_]
                               : ReceiverPlacement{};
      queues_.push_back(std::make_unique<MpscQueue<T>>(  // lint:allow-alloc setup
          capacity, line_aligned, skip, p.arena, p.home_socket));
    }
  }

  int receivers() const {
    return static_cast<int>(queues_.size()) / shards_;
  }
  int shards() const { return shards_; }
  bool adaptive() const { return adaptive_; }

  // Current routing modulus / drain high-water (tests, observability).
  int RouteShardsRaw() const {
    return static_cast<int>(route_shards_.RawLoad());
  }
  int DrainShardsRaw() const {
    return static_cast<int>(drain_shards_.RawLoad());
  }

  MpscQueue<T>& at(int receiver, int shard = 0) {
    ORTHRUS_DCHECK(receiver >= 0 && receiver < receivers());
    ORTHRUS_DCHECK(shard >= 0 && shard < shards_);
    return *queues_[static_cast<std::size_t>(receiver) * shards_ + shard];
  }

  // Resolves a stable shard hint to a ring under the *current* routing
  // modulus (one modeled load). A sender must resolve once per
  // registration and keep the result until it retires, so its own
  // messages stay FIFO across re-sharding.
  int RingForHint(int shard_hint) {
    return shard_hint % static_cast<int>(route_shards_.load());
  }

  // Blocking send from any thread. Spins (politely) while full;
  // CHECK-fails if the queue stays full long enough that the capacity
  // bound must have been violated. `shard_hint` is reduced by the routing
  // modulus at call time; on a fixed-shard mesh one hint therefore pins
  // one ring and the sender's stream stays FIFO. On an *adaptive* mesh
  // the modulus can move between two Sends (a concurrent register or
  // retire), splitting a raw sender's stream across rings — so raw Send
  // there is for tests and single-shot messages only; a FIFO sender must
  // stage through MultiSendBuffer, which resolves its ring exactly once
  // per registration (Rebind) as RingForHint's contract requires.
  void Send(int receiver, T value, int shard_hint = 0) {
    MpscQueue<T>& q =
        at(receiver, adaptive_ ? RingForHint(shard_hint)
                               : shard_hint % shards_);
    detail::WedgeSpin spin;
    while (!q.TryEnqueue(value)) spin.Pause();
  }

  // Drains the receiver's queues (all live shards, fixed shard order),
  // invoking fn(message) on each message in per-shard arrival order. Pops
  // in batches of up to `max_batch` (clamped to [1, one payload line]).
  // Returns messages delivered.
  template <typename Fn>
  std::size_t Drain(int receiver, Fn&& fn,
                    std::size_t max_batch = kDefaultBatch) {
    ORTHRUS_DCHECK(max_batch >= 1);
    std::size_t batch = max_batch < kDefaultBatch ? max_batch : kDefaultBatch;
    if (batch == 0) batch = 1;  // release builds: never wedge a caller that
                                // loops until progress
    const int live =
        adaptive_ ? static_cast<int>(drain_shards_.load()) : shards_;
    T buf[kDefaultBatch];
    std::size_t delivered = 0;
    for (int s = 0; s < live; ++s) {
      MpscQueue<T>& q = at(receiver, s);
      std::size_t n;
      while ((n = q.PopBatch(buf, batch)) != 0) {
        for (std::size_t i = 0; i < n; ++i) fn(buf[i]);
        delivered += n;
      }
    }
    return delivered;
  }

  // Drain-to-batch view: pops everything addressed to `receiver` directly
  // into the caller's flat buffer (same fixed shard order as Drain),
  // stopping once `max_out` messages have been gathered — the remainder
  // stays queued. Returns the number of messages written to `out`. See
  // QueueMesh::DrainInto for the vectorized-intake rationale.
  std::size_t DrainInto(int receiver, T* out, std::size_t max_out,
                        std::size_t max_batch = kDefaultBatch) {
    ORTHRUS_DCHECK(max_batch >= 1);
    std::size_t batch = max_batch < kDefaultBatch ? max_batch : kDefaultBatch;
    if (batch == 0) batch = 1;
    const int live =
        adaptive_ ? static_cast<int>(drain_shards_.load()) : shards_;
    std::size_t filled = 0;
    for (int s = 0; s < live && filled < max_out; ++s) {
      MpscQueue<T>& q = at(receiver, s);
      std::size_t n;
      while (filled < max_out &&
             (n = q.PopBatch(out + filled,
                             batch < max_out - filled ? batch
                                                      : max_out - filled)) !=
                 0) {
        filled += n;
      }
    }
    return filled;
  }

  // --- sender lifecycle -------------------------------------------------
  //
  // A thread that will send into the mesh registers first; when it parks
  // or exits it retires. Retiring requires the drain-to-empty protocol:
  // the caller must have flushed all staged lines (its MultiSendBuffer is
  // empty) before the RetireSender call, so a retired sender can never
  // strand messages invisible to receivers.

  // Joins the active sender population. Returns the population size
  // including this sender. In adaptive mode this is also the re-shard
  // point: the routing modulus tracks the population.
  int RegisterSender() {
    registrations_total_.fetch_add(1);
    const int pop = static_cast<int>(active_senders_.fetch_add(1)) + 1;
    if (adaptive_) Reshard(pop);
    return pop;
  }

  // Leaves the active sender population. Everything this sender staged
  // must already be flushed into the queues.
  void RetireSender() {
    const std::uint64_t prev =
        active_senders_.fetch_add(static_cast<std::uint64_t>(-1));
    ORTHRUS_CHECK_MSG(prev > 0, "RetireSender without a matching register");
    if (adaptive_) Reshard(static_cast<int>(prev) - 1);
  }

  // Modeled view of the current population (any thread).
  int ActiveSenders() { return static_cast<int>(active_senders_.load()); }

  // Unmodeled views for teardown assertions and tests.
  int ActiveSendersRaw() const {
    return static_cast<int>(active_senders_.RawLoad());
  }
  std::uint64_t RegistrationsTotalRaw() const {
    return registrations_total_.RawLoad();
  }

  // Unmodeled aggregate occupancy, for teardown assertions.
  std::size_t SizeRawTotal() const {
    std::size_t total = 0;
    for (const auto& q : queues_) total += q->SizeRaw();
    return total;
  }

 private:
  // Adaptive re-shard toward min(kMaxAutoShards, population). Invariant:
  // the routing modulus never exceeds the drain high-water — a route store
  // of v is preceded (same thread) by a raise of the high-water to >= v,
  // and the high-water only grows — so every routable ring is drained.
  void Reshard(int population) {
    const std::uint64_t desired = static_cast<std::uint64_t>(
        population < 1 ? 1
                       : (population > kMaxAutoShards ? kMaxAutoShards
                                                      : population));
    std::uint64_t hw = drain_shards_.load();
    while (hw < desired && !drain_shards_.compare_exchange(hw, desired)) {
    }
    route_shards_.store(desired);
  }

  int shards_ = 1;
  bool adaptive_ = false;
  std::vector<std::unique_ptr<MpscQueue<T>>> queues_;
  hal::Atomic<std::uint64_t> active_senders_{0};
  hal::Atomic<std::uint64_t> registrations_total_{0};
  hal::Atomic<std::uint64_t> route_shards_{1};
  hal::Atomic<std::uint64_t> drain_shards_{1};
};

}  // namespace orthrus::mp

#endif  // ORTHRUS_MP_MULTI_MESH_H_
