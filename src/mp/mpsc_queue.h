// Latch-free multi-producer / single-consumer ring buffer.
//
// The SPSC mesh fixes the sender population at construction time: every
// (sender, receiver) pair owns a queue, so adding an execution thread means
// rebuilding every matrix. MpscQueue relaxes exactly the producer side —
// any number of anonymous producers share one ring per receiver — which is
// what a mesh needs to support dynamic core counts (MultiMesh).
//
// Protocol: producers CAS-reserve a range of slots on a shared reservation
// index, write their payload words into the reserved range, then publish
// the shared tail in reservation order (each producer waits until the tail
// reaches its reserved start before bumping it past its range — a short,
// bounded wait, since every predecessor only has its own payload left to
// write). The consumer side is identical to SpscQueue: one reader, cached
// tail, one head publication per pop/batch. Payload words live in the same
// line-packed blocks (detail::LineRing), so the per-message coherence cost
// model matches the SPSC queue exactly; what changes is the producers' CAS
// on the reservation index — the synchronization the paper's per-pair
// design avoids, priced here so meshes can trade it for flexibility.
#ifndef ORTHRUS_MP_MPSC_QUEUE_H_
#define ORTHRUS_MP_MPSC_QUEUE_H_

#include <cstdint>

#include "common/macros.h"
#include "hal/hal.h"
#include "mp/line_ring.h"

namespace orthrus::mp {

template <typename T>
class MpscQueue {
 public:
  static constexpr std::size_t kMsgsPerLine = detail::LineRing<T>::kMsgsPerLine;

  // Capacity must be a power of two (index masking).
  explicit MpscQueue(std::size_t capacity)
      : capacity_(capacity), ring_(capacity) {}

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  std::size_t capacity() const { return capacity_; }

  // Producer side (any thread). Returns false when the queue is full.
  bool TryEnqueue(T value) { return PushBatch(&value, 1) == 1; }

  // Producer side, batched: reserves up to `n` slots with one CAS, writes
  // them, and publishes the tail once for the whole batch. Returns how many
  // were enqueued (0 when full, a partial batch when nearly full).
  std::size_t PushBatch(const T* values, std::size_t n) {
    if (n == 0) return 0;
    std::uint64_t start = reserve_.load();
    std::size_t count;
    for (;;) {
      const std::size_t free_slots =
          capacity_ - static_cast<std::size_t>(start - head_.load());
      if (free_slots == 0) return 0;
      count = n < free_slots ? n : free_slots;
      // Failure refreshes `start` with the current reservation index.
      if (reserve_.compare_exchange(start, start + count)) break;
    }
    for (std::size_t i = 0; i < count; ++i) {
      ring_.Store(start + i, values[i]);
    }
    // Publish in reservation order: the tail must sweep past every
    // predecessor's range before ours becomes visible, or the consumer
    // would read slots that are reserved but not yet written. The wait is
    // bounded by peer progress (a predecessor only has its own payload
    // left to write), so it is CHECK-bounded only under the simulator,
    // where fibers are never preempted and a long stall really is a
    // protocol bug; on native hardware the OS may preempt a reserving
    // producer for arbitrarily long, and no spin bound is sound.
    hal::CoreContext* core = hal::CurrentCore();
    const bool bounded =
        core != nullptr && core->platform->is_simulated();
    std::uint64_t spins = 0;
    while (tail_.load() != start) {
      hal::CpuRelax();
      if (bounded) {
        ORTHRUS_CHECK_MSG(++spins < (1ull << 26),
                          "mpsc tail publication stalled: a reserving "
                          "producer died mid-push");
      }
    }
    tail_.store(start + count);
    return count;
  }

  // Consumer side (single thread). Returns false when the queue is empty.
  bool TryDequeue(T* out) {
    if (head_local_ == tail_cache_) {
      tail_cache_ = tail_.load();
      if (head_local_ == tail_cache_) return false;
    }
    *out = ring_.Load(head_local_);
    head_local_++;
    head_.store(head_local_);
    return true;
  }

  // Consumer side, batched: dequeues up to `n` values, publishing the head
  // once for the whole batch.
  std::size_t PopBatch(T* out, std::size_t n) {
    if (n == 0) return 0;
    std::size_t avail = static_cast<std::size_t>(tail_cache_ - head_local_);
    if (avail < n) {
      tail_cache_ = tail_.load();
      avail = static_cast<std::size_t>(tail_cache_ - head_local_);
      if (avail == 0) return 0;
    }
    const std::size_t count = n < avail ? n : avail;
    for (std::size_t i = 0; i < count; ++i) {
      out[i] = ring_.Load(head_local_ + i);
    }
    head_local_ += count;
    head_.store(head_local_);
    return count;
  }

  // Consumer-side occupancy (refreshes the cached tail).
  std::size_t SizeConsumer() {
    tail_cache_ = tail_.load();
    return static_cast<std::size_t>(tail_cache_ - head_local_);
  }

  // Consumer-side emptiness probe (refreshes the cached tail).
  bool Empty() {
    if (head_local_ != tail_cache_) return false;
    tail_cache_ = tail_.load();
    return head_local_ == tail_cache_;
  }

  // Unmodeled size snapshot for tests / teardown assertions only.
  std::size_t SizeRaw() const {
    return static_cast<std::size_t>(tail_.RawLoad() - head_.RawLoad());
  }

 private:
  const std::size_t capacity_;
  detail::LineRing<T> ring_;

  // Shared indices. `reserve_` is CAS-bumped by producers to claim slots;
  // `tail_` publishes written slots to the consumer; `head_` is written by
  // the consumer only.
  hal::Atomic<std::uint64_t> reserve_{0};
  hal::Atomic<std::uint64_t> tail_{0};
  hal::Atomic<std::uint64_t> head_{0};

  // Consumer-private state (plain memory: single owner).
  alignas(kCacheLineSize) std::uint64_t head_local_ = 0;
  std::uint64_t tail_cache_ = 0;
};

}  // namespace orthrus::mp

#endif  // ORTHRUS_MP_MPSC_QUEUE_H_
