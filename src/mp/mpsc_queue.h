// Latch-free multi-producer / single-consumer ring buffer.
//
// The SPSC mesh fixes the sender population at construction time: every
// (sender, receiver) pair owns a queue, so adding an execution thread means
// rebuilding every matrix. MpscQueue relaxes exactly the producer side —
// any number of anonymous producers share one ring per receiver — which is
// what a mesh needs to support dynamic core counts (MultiMesh).
//
// Protocol: producers CAS-reserve a range of slots on a shared reservation
// index, write their payload words into the reserved range, then publish
// the shared tail in reservation order (each producer waits until the tail
// reaches its reserved start before bumping it past its range — a short,
// bounded wait, since every predecessor only has its own payload left to
// write). The consumer side is identical to SpscQueue: one reader, cached
// tail, one head publication per pop/batch. Payload words live in the same
// line-packed blocks (detail::LineRing), so the per-message coherence cost
// model matches the SPSC queue exactly; what changes is the producers' CAS
// on the reservation index — the synchronization the paper's per-pair
// design avoids, priced here so meshes can trade it for flexibility.
#ifndef ORTHRUS_MP_MPSC_QUEUE_H_
#define ORTHRUS_MP_MPSC_QUEUE_H_

#include <cstdint>

#include "common/macros.h"
#include "hal/hal.h"
#include "mp/line_ring.h"

namespace orthrus::mp {

template <typename T>
class MpscQueue {
 public:
  static constexpr std::size_t kMsgsPerLine = detail::LineRing<T>::kMsgsPerLine;

  // Capacity must be a power of two (index masking).
  //
  // `line_aligned` (opt-in): every reservation is rounded up to a whole
  // payload line, the unused tail filled with `skip` sentinels the
  // consumer silently discards. Reservations then start and end on line
  // boundaries, so no two producers ever write payload words into the
  // same line — eliminating the mid-line interleaving that bills each of
  // two concurrent producers a coherence transfer for the other's line.
  // The trade: up to kMsgsPerLine - 1 slots of padding per push (worst at
  // single-message sends), so capacity bounds must be multiplied by the
  // line size, and `skip` must be a value no producer ever enqueues.
  // The optional (arena, home_socket) pair NUMA-places the payload blocks
  // and tags them for the sim's distance model — see detail::LineRing. The
  // queue's own index lines stay wherever the queue object lives; receivers
  // construct their meshes, so first-touch already puts those right.
  explicit MpscQueue(std::size_t capacity, bool line_aligned = false,
                     T skip = T(), hal::SlabArena* arena = nullptr,
                     int home_socket = -1)
      : capacity_(capacity),
        line_aligned_(line_aligned),
        skip_(skip),
        ring_(capacity, arena, home_socket) {
    if (home_socket >= 0) {
      reserve_.SetHomeRaw(home_socket);
      tail_.SetHomeRaw(home_socket);
      head_.SetHomeRaw(home_socket);
    }
    if (line_aligned) {
      // A power-of-two capacity >= one line is automatically a whole
      // number of lines, which the alignment invariant needs.
      ORTHRUS_CHECK(capacity >= kMsgsPerLine);
    }
  }

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  std::size_t capacity() const { return capacity_; }
  bool line_aligned() const { return line_aligned_; }

  // Producer side (any thread). Returns false when the queue is full.
  bool TryEnqueue(T value) { return PushBatch(&value, 1) == 1; }

  // Producer side, batched: reserves up to `n` slots with one CAS, writes
  // them, and publishes the tail once for the whole batch. Returns how many
  // were enqueued (0 when full, a partial batch when nearly full).
  std::size_t PushBatch(const T* values, std::size_t n) {
    if (n == 0) return 0;
    std::uint64_t start = reserve_.load();
    std::size_t count;
    std::size_t reserved;
    for (;;) {
      const std::size_t free_slots =
          capacity_ - static_cast<std::size_t>(start - head_.load());
      if (!line_aligned_) {
        if (free_slots == 0) return 0;
        count = n < free_slots ? n : free_slots;
        reserved = count;
      } else {
        // Whole-line reservations: the range must end on a line boundary,
        // so a partial trailing line of free space is unusable. `start`
        // is always line-aligned (inductively: every reservation advances
        // it by a line multiple).
        ORTHRUS_DCHECK(start % kMsgsPerLine == 0);
        const std::size_t free_lines = free_slots / kMsgsPerLine;
        if (free_lines == 0) return 0;
        count = n < free_lines * kMsgsPerLine ? n : free_lines * kMsgsPerLine;
        reserved = (count + kMsgsPerLine - 1) / kMsgsPerLine * kMsgsPerLine;
      }
      // Failure refreshes `start` with the current reservation index.
      if (reserve_.compare_exchange(start, start + reserved)) break;
    }
    for (std::size_t i = 0; i < count; ++i) {
      ring_.Store(start + i, values[i]);
    }
    for (std::size_t i = count; i < reserved; ++i) {
      ring_.Store(start + i, skip_);
    }
    // Publish in reservation order: the tail must sweep past every
    // predecessor's range before ours becomes visible, or the consumer
    // would read slots that are reserved but not yet written. The wait is
    // bounded by peer progress (a predecessor only has its own payload
    // left to write), so it is CHECK-bounded only under the simulator,
    // where fibers are never preempted and a long stall really is a
    // protocol bug; on native hardware the OS may preempt a reserving
    // producer for arbitrarily long, and no spin bound is sound.
    hal::CoreContext* core = hal::CurrentCore();
    const bool bounded =
        core != nullptr && core->platform->is_simulated();
    std::uint64_t spins = 0;
    while (tail_.load() != start) {
      hal::CpuRelax();
      if (bounded) {
        ORTHRUS_CHECK_MSG(++spins < (1ull << 26),
                          "mpsc tail publication stalled: a reserving "
                          "producer died mid-push");
      }
    }
    tail_.store(start + reserved);
    return count;
  }

  // Consumer side (single thread). Returns false when the queue is empty.
  // In line-aligned mode padding sentinels are consumed and discarded. An
  // empty poll that consumed nothing stays read-only — publishing an
  // unchanged head would dirty a line every producer reads for its
  // free-slot check.
  bool TryDequeue(T* out) {
    const std::uint64_t scanned_from = head_local_;
    for (;;) {
      if (head_local_ == tail_cache_) {
        tail_cache_ = tail_.load();
        if (head_local_ == tail_cache_) {
          if (head_local_ != scanned_from) head_.store(head_local_);
          return false;
        }
      }
      *out = ring_.Load(head_local_);
      head_local_++;
      if (!line_aligned_ || !(*out == skip_)) {
        head_.store(head_local_);
        return true;
      }
    }
  }

  // Consumer side, batched: dequeues up to `n` values, publishing the head
  // once for the whole batch. In line-aligned mode padding sentinels are
  // consumed (they free their slots) but not delivered; a return of 0
  // still means the queue was drained empty.
  std::size_t PopBatch(T* out, std::size_t n) {
    if (n == 0) return 0;
    std::size_t got = 0;
    std::uint64_t scanned_from = head_local_;
    for (;;) {
      std::size_t avail =
          static_cast<std::size_t>(tail_cache_ - head_local_);
      if (avail == 0 || got + avail < n) {
        tail_cache_ = tail_.load();
        avail = static_cast<std::size_t>(tail_cache_ - head_local_);
        if (avail == 0) break;
      }
      if (!line_aligned_) {
        const std::size_t count = (n - got) < avail ? (n - got) : avail;
        for (std::size_t i = 0; i < count; ++i) {
          out[got + i] = ring_.Load(head_local_ + i);
        }
        head_local_ += count;
        got += count;
        break;  // one contiguous grab, exactly the historical behaviour
      }
      // Skip-aware scan: deliver real values, discard padding, stop once
      // the caller's batch is full or the snapshot is exhausted.
      while (avail != 0 && got < n) {
        const T v = ring_.Load(head_local_);
        head_local_++;
        avail--;
        if (!(v == skip_)) out[got++] = v;
      }
      if (got == n) break;
    }
    if (head_local_ != scanned_from) head_.store(head_local_);
    return got;
  }

  // Consumer-side occupancy (refreshes the cached tail).
  std::size_t SizeConsumer() {
    tail_cache_ = tail_.load();
    return static_cast<std::size_t>(tail_cache_ - head_local_);
  }

  // Consumer-side emptiness probe (refreshes the cached tail).
  bool Empty() {
    if (head_local_ != tail_cache_) return false;
    tail_cache_ = tail_.load();
    return head_local_ == tail_cache_;
  }

  // Unmodeled size snapshot for tests / teardown assertions only.
  std::size_t SizeRaw() const {
    return static_cast<std::size_t>(tail_.RawLoad() - head_.RawLoad());
  }

 private:
  const std::size_t capacity_;
  const bool line_aligned_;
  const T skip_{};
  detail::LineRing<T> ring_;

  // Shared indices. `reserve_` is CAS-bumped by producers to claim slots;
  // `tail_` publishes written slots to the consumer; `head_` is written by
  // the consumer only.
  hal::Atomic<std::uint64_t> reserve_{0};
  hal::Atomic<std::uint64_t> tail_{0};
  hal::Atomic<std::uint64_t> head_{0};

  // Consumer-private state (plain memory: single owner).
  alignas(kCacheLineSize) std::uint64_t head_local_ = 0;
  std::uint64_t tail_cache_ = 0;
};

}  // namespace orthrus::mp

#endif  // ORTHRUS_MP_MPSC_QUEUE_H_
