// Dreadlocks deadlock detection (Koskinen & Herlihy, as used in Shore-MT;
// Section 4.1). Each worker publishes a digest — a bitmap over workers that
// represents the transitive closure of its wait-for set. A waiter spins on
// its blocker's digest, unioning it into its own; observing its own bit in
// the blocker's digest proves a cycle.
//
// The published digest is two 64-bit modeled atomics. Waiters re-reading a
// blocker's digest after every update is precisely the cache-coherence
// traffic the paper blames for Dreadlocks' overhead on TPC-C (Section
// 4.4.1): every digest write invalidates every spinning reader.
#include "lock/lock_table.h"

#include "common/bitset128.h"

namespace orthrus::lock {

namespace {

void PublishDigest(WorkerLockCtx* ctx, const Bitset128& d) {
  ctx->digest_lo.store(d.lo);
  ctx->digest_hi.store(d.hi);
}

}  // namespace

bool DreadlocksPolicy::OnBlock(WorkerLockCtx* me, Request* /*req*/) {
  PublishDigest(me, Bitset128::Single(me->worker_id));
  return true;
}

bool DreadlocksPolicy::WaitForGrant(WorkerLockCtx* me, Request* req,
                                    LockTable* table) {
  Bitset128 mine = Bitset128::Single(me->worker_id);
  int iter = 0;
  hal::Cycles backoff = 0;
  while (true) {
    if (req->granted.load() != 0) return true;

    WorkerLockCtx* blocker = me->blocker;
    if (blocker != nullptr) {
      Bitset128 theirs;
      theirs.lo = blocker->digest_lo.load();
      theirs.hi = blocker->digest_hi.load();
      if (theirs.Test(me->worker_id)) {
        return false;  // we are in our own transitive closure: deadlock
      }
      const Bitset128 before = mine;
      mine.Union(theirs);
      mine.Set(blocker->worker_id);
      if (!(mine == before)) PublishDigest(me, mine);
    }

    hal::ConsumeCycles(backoff + hal::FastJitter(64));
    hal::CpuRelax();
    backoff = backoff < 512 ? backoff + 64 : 512;
    if (++iter % 32 == 0) {
      table->RefreshBlocker(me);
      // Blocker may have changed; restart the closure from scratch so bits
      // from a stale blocker do not linger as false-positive fuel.
      mine = Bitset128::Single(me->worker_id);
      PublishDigest(me, mine);
    }
  }
}

void DreadlocksPolicy::OnWaitEnd(WorkerLockCtx* me) {
  PublishDigest(me, Bitset128::Single(me->worker_id));
}

}  // namespace orthrus::lock
