// Wait-for graph deadlock detection (Section 4.1), in the partitioned,
// latch-free style of Yu et al.: each worker owns exactly one outgoing
// wait-for cell (it waits on at most one lock at a time), and detection is
// a latch-free pointer chase across other workers' cells. Edges read during
// the chase can be momentarily stale, which can cause rare false positives
// or delayed detection — the same trade the original makes; correctness is
// preserved because a detected "cycle" only ever aborts the requester.
#include "lock/lock_table.h"

namespace orthrus::lock {

namespace {

std::uint64_t AsWord(WorkerLockCtx* ctx) {
  return reinterpret_cast<std::uint64_t>(ctx);
}

WorkerLockCtx* AsCtx(std::uint64_t word) {
  return reinterpret_cast<WorkerLockCtx*>(word);
}

}  // namespace

bool WaitForGraphPolicy::OnBlock(WorkerLockCtx* me, Request* /*req*/) {
  // Publish the edge me -> blocker. `me->blocker` was resolved by Acquire
  // under the bucket latch just before this call.
  me->waits_for.store(AsWord(me->blocker));
  return true;
}

bool WaitForGraphPolicy::WaitForGrant(WorkerLockCtx* me, Request* req,
                                      LockTable* table) {
  int iter = 0;
  hal::Cycles backoff = 0;
  while (true) {
    if (req->granted.load() != 0) return true;

    // Chase outgoing edges from our blocker; bounded by worker count since
    // a simple (cycle-free) path cannot be longer.
    WorkerLockCtx* cur = me->blocker;
    for (int depth = 0; cur != nullptr && depth < max_workers_; ++depth) {
      if (cur == me) return false;  // cycle through us: deadlock
      cur = AsCtx(cur->waits_for.load());
    }

    hal::ConsumeCycles(backoff + hal::FastJitter(64));
    hal::CpuRelax();
    backoff = backoff < 512 ? backoff + 64 : 512;
    if (++iter % 32 == 0) {
      // The queue ahead of us may have changed (blocker released or
      // aborted); re-resolve and republish our edge.
      table->RefreshBlocker(me);
      me->waits_for.store(AsWord(me->blocker));
    }
  }
}

void WaitForGraphPolicy::OnWaitEnd(WorkerLockCtx* me) {
  me->waits_for.store(0);
}

}  // namespace orthrus::lock
