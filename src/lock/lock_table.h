// Shared-everything lock manager used by the 2PL and Deadlock-free locking
// baselines. Faithful to the paper's tuned 2PL implementation (Section 4):
//
//  * a hash table of lock-request lists with **per-bucket latches** (no
//    global latch, no intention locks — only record-grained logical locks);
//  * **no memory allocator interaction** on the hot path: request nodes come
//    from per-worker freelists, lock heads from a pre-sized pool with a bump
//    allocator, and both are recycled for the whole run;
//  * strict FIFO grant order per lock (no bypassing), which gives
//    starvation freedom and, combined with ordered acquisition, deadlock
//    freedom for the Deadlock-free baseline.
//
// Deadlock handling is pluggable (DeadlockPolicy): wait-die, wait-for
// graph, and Dreadlocks implement the three mechanisms evaluated in
// Section 4.1. The default policy waits forever (correct only under
// ordered acquisition).
#ifndef ORTHRUS_LOCK_LOCK_TABLE_H_
#define ORTHRUS_LOCK_LOCK_TABLE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/macros.h"
#include "common/stats.h"
#include "hal/hal.h"
#include "hal/slab_arena.h"
#include "txn/txn.h"

namespace orthrus::lock {

using txn::Conflicts;
using txn::LockMode;

struct LockHead;
struct Request;
class DeadlockPolicy;

// Per-worker lock-manager state. Stable address for the whole run (other
// workers read the digest / waits-for fields while this worker waits).
struct WorkerLockCtx {
  WorkerLockCtx() = default;
  // Out-of-line: owned_requests needs the complete Request type to delete.
  ~WorkerLockCtx();

  WorkerLockCtx(const WorkerLockCtx&) = delete;
  WorkerLockCtx& operator=(const WorkerLockCtx&) = delete;

  int worker_id = -1;
  WorkerStats* stats = nullptr;

  // Timestamp ("age") of the currently running transaction; smaller is
  // older. Used by wait-die.
  std::uint64_t txn_timestamp = 0;

  // --- Dreadlocks digest (Koskinen & Herlihy): the transitive closure of
  // the workers this worker waits on, published as a 128-bit set so other
  // waiters can union it without latches.
  hal::Atomic<std::uint64_t> digest_lo{0};
  hal::Atomic<std::uint64_t> digest_hi{0};

  // --- Wait-for graph: since a worker waits on at most one lock at a time,
  // its outgoing wait-for edges are summarized by the single nearest
  // blocking worker; cycle detection is pointer chasing over these cells.
  // Stores the blocker's WorkerLockCtx* (0 when not waiting).
  hal::Atomic<std::uint64_t> waits_for{0};

  // Requests held by the current transaction, for ReleaseAll.
  std::vector<Request*> acquired;

  // Private freelist of request nodes (single owner, no sync). Nodes are
  // owned by `owned_requests` below, so teardown frees them even if a test
  // leaves requests queued.
  Request* free_requests = nullptr;
  std::vector<std::unique_ptr<Request>> owned_requests;

  // Private shard of the lock-head pool (bump allocation, no sync): the
  // paper's "never interacts with a memory allocator" rule — a shared bump
  // counter would itself become a contended line.
  LockHead* head_shard = nullptr;
  std::uint64_t head_shard_left = 0;

  // While blocked: the request being waited on and the nearest conflicting
  // blocker's context (advisory; may go stale and is refreshed during the
  // wait loop).
  Request* waiting_request = nullptr;
  WorkerLockCtx* blocker = nullptr;
};

// One queued lock request. Queue linkage is protected by the bucket latch;
// `granted` is written by releasers and spun on by the owner.
struct Request {
  WorkerLockCtx* owner = nullptr;
  LockHead* head = nullptr;
  Request* next = nullptr;
  Request* prev = nullptr;
  std::uint64_t owner_ts = 0;  // owner's txn timestamp at enqueue
  LockMode mode = LockMode::kShared;
  hal::Atomic<std::uint32_t> granted{0};
};

// Lock state for one (table, key). Lives for the whole run once created
// (lock heads are recycled, never freed, so no cross-worker deallocation).
struct LockHead {
  std::uint32_t table = 0;
  std::uint64_t key = 0;
  Request* queue_head = nullptr;
  Request* queue_tail = nullptr;
  LockHead* next_in_bucket = nullptr;
  // Queue composition counters: make the arrival grant check O(1) and the
  // release grant sweep a single early-terminating pass. (S is grantable
  // iff no X is queued ahead; X iff nothing is ahead.)
  std::uint32_t queued_total = 0;
  std::uint32_t queued_x = 0;
};

class LockTable {
 public:
  struct Config {
    std::uint64_t num_buckets = 1 << 16;     // rounded up to a power of two
    std::uint64_t max_lock_heads = 1 << 22;  // pool size
    int max_workers = 128;
    // Fixed CPU work per acquire/release. Includes the instruction- and
    // data-cache refetches a worker pays because lock-manager code and
    // meta-data evict transaction-logic lines (and vice versa) — the cache
    // pollution cost of conflated functionality (Section 2.1).
    hal::Cycles lock_op_cycles = 35;
    // Cost of touching one queued request node while holding the bucket
    // latch. Queue nodes are written by the cores that own them, so walking
    // a contended lock's queue ping-pongs their lines; this is the
    // data-movement overhead of Section 2.1, and it makes latch hold times
    // grow with contention (the feedback loop behind Figure 1's collapse).
    hal::Cycles node_touch_cycles = 40;
    // Arena backing the bucket array and lock-head pool (NUMA node binding;
    // both types are trivially destructible, so the arena's no-free model
    // fits). Must outlive the table. Null keeps owned heap arrays.
    hal::SlabArena* arena = nullptr;
    // Modeled socket the bucket latch lines live on (-1 = unplaced); only a
    // multi-socket SimConfig consults it.
    int home_socket = -1;
  };

  enum class AcquireResult {
    kGranted,  // lock held
    kWaiting,  // request enqueued; call Wait()
    kDie,      // policy aborted the transaction at request time (wait-die)
  };

  explicit LockTable(Config config);
  ~LockTable();

  LockTable(const LockTable&) = delete;
  LockTable& operator=(const LockTable&) = delete;

  // Registers worker `id` and returns its context. Call once per worker
  // before the run starts.
  WorkerLockCtx* RegisterWorker(int id, WorkerStats* stats);

  // Requests a lock for ctx's current transaction. On kWaiting the request
  // is queued FIFO; the caller must invoke Wait() next.
  AcquireResult Acquire(WorkerLockCtx* ctx, std::uint32_t table,
                        std::uint64_t key, LockMode mode,
                        DeadlockPolicy* policy);

  // One entry of a vectorized acquire batch. `result` is written by
  // AcquireBatch; everything else is caller input. Entries whose result is
  // kWaiting have their request queued exactly as Acquire would — the
  // caller decides when (and in what order) to Wait on them.
  struct BatchRequest {
    WorkerLockCtx* ctx = nullptr;
    std::uint32_t table = 0;
    std::uint64_t key = 0;
    LockMode mode = LockMode::kShared;
    AcquireResult result = AcquireResult::kDie;
  };

  // Vectorized acquire: processes `reqs[0..n)` in order with the same
  // grant/wait/die semantics as calling Acquire n times, but batch-shaped —
  // pass one prefetches every request's bucket (one hal::PrefetchSweep);
  // pass two processes in order, and adjacent requests for the same
  // (table, key) are served as a *run*: one latch hold, one hash-chain
  // walk, one grant decision per member against the queue state its
  // predecessors left (followers charge node-touch instead of full
  // lock-op cost). Holding the latch across a run is a legal interleaving
  // of the sequential calls — no other worker could have intervened in a
  // way the sequential semantics forbid. `prefetch` / `combine` gate the
  // two passes independently (ablation knobs). Allocates nothing.
  void AcquireBatch(BatchRequest* reqs, std::size_t n, DeadlockPolicy* policy,
                    bool prefetch = true, bool combine = true);

  // Blocks (spins) until the pending request is granted. Returns false if
  // the policy detected a deadlock; the request has then been removed and
  // the caller must release all held locks and restart the transaction.
  bool Wait(WorkerLockCtx* ctx, DeadlockPolicy* policy);

  // Releases every lock held by ctx's current transaction, waking queued
  // waiters that become grantable.
  void ReleaseAll(WorkerLockCtx* ctx);

  // Number of locks ctx currently holds.
  std::size_t HeldCount(const WorkerLockCtx* ctx) const {
    return ctx->acquired.size();
  }

  // Re-resolves the nearest conflicting blocker of a waiting request
  // (policies call this periodically so detection follows queue changes).
  void RefreshBlocker(WorkerLockCtx* ctx);

  const Config& config() const { return config_; }
  std::uint64_t lock_heads_in_use() const;

 private:
  struct alignas(kCacheLineSize) Bucket {
    hal::SpinLock latch;
    LockHead* heads ORTHRUS_GUARDED_BY(latch) = nullptr;
  };

  Bucket* BucketFor(std::uint32_t table, std::uint64_t key);
  // Finds or creates the lock head (allocating from ctx's pool shard);
  // bucket latch must be held.
  LockHead* FindOrCreateHead(WorkerLockCtx* ctx, Bucket* b,
                             std::uint32_t table, std::uint64_t key)
      ORTHRUS_REQUIRES(b->latch);
  // True iff no conflicting request precedes `req` in its queue (O(q);
  // used by detection logic and debug checks — the grant paths use the
  // LockHead counters instead).
  bool NoConflictAhead(const Request* req) const;
  // Nearest conflicting request ahead of req, or nullptr.
  static Request* NearestBlockerOf(Request* req);
  // Grants every newly-grantable waiter in the queue, charging node-touch
  // cost per request walked. Latch must be held.
  void GrantFollowers(LockHead* head);
  // Removes req from its queue and recycles it. Latch must be held.
  void Unlink(LockHead* head, Request* req);

  Request* AllocRequest(WorkerLockCtx* ctx);
  void FreeRequest(WorkerLockCtx* ctx, Request* req);

  Config config_;
  std::uint64_t bucket_mask_;
  std::unique_ptr<Bucket[]> owned_buckets_;     // heap fallback (no arena)
  std::unique_ptr<LockHead[]> owned_head_pool_;
  Bucket* buckets_ = nullptr;
  LockHead* head_pool_ = nullptr;
  std::uint64_t heads_per_worker_ = 0;
  std::vector<std::unique_ptr<WorkerLockCtx>> workers_;
};

// ---------------------------------------------------------------------
// Deadlock policies (Section 4.1).

class DeadlockPolicy {
 public:
  virtual ~DeadlockPolicy() = default;

  // Called under the bucket latch when `req` has conflicting requests
  // ahead. Returns false to abort the requesting transaction immediately
  // (wait-die's "die"); the lock table then unlinks the request.
  virtual bool OnBlock(WorkerLockCtx* /*me*/, Request* /*req*/) {
    return true;
  }

  // Spin until req->granted, running detection logic. Returns false when a
  // deadlock involving `me` was detected (the caller unlinks and aborts).
  // The default is a pure FIFO wait that never aborts — safe only when the
  // caller guarantees deadlock freedom by ordered acquisition.
  virtual bool WaitForGrant(WorkerLockCtx* me, Request* req,
                            LockTable* table);

  // Cleanup after a wait ends (granted or aborted).
  virtual void OnWaitEnd(WorkerLockCtx* /*me*/) {}

  virtual const char* name() const { return "fifo-wait"; }
};

// Wait-die (Section 4.1): a requester may wait only on strictly older
// transactions; otherwise it dies (aborts) immediately. Timestamps are
// assigned per transaction and retained across restarts.
class WaitDiePolicy : public DeadlockPolicy {
 public:
  bool OnBlock(WorkerLockCtx* me, Request* req) override;
  const char* name() const override { return "wait-die"; }
};

// Wait-for graph deadlock detection (Section 4.1, Yu et al. style): each
// worker owns its local edge; detection chases edges without latches and
// aborts the requester when the chase returns to it.
class WaitForGraphPolicy : public DeadlockPolicy {
 public:
  explicit WaitForGraphPolicy(int max_workers) : max_workers_(max_workers) {}
  bool OnBlock(WorkerLockCtx* me, Request* req) override;
  bool WaitForGrant(WorkerLockCtx* me, Request* req,
                    LockTable* table) override;
  void OnWaitEnd(WorkerLockCtx* me) override;
  const char* name() const override { return "wait-for-graph"; }

 private:
  int max_workers_;
};

// Dreadlocks (Koskinen & Herlihy, Section 4.1): each worker publishes a
// digest — the transitive closure of workers it waits on, as a bitmap. A
// waiter unions its blocker's digest into its own; finding itself in the
// blocker's digest means a cycle.
class DreadlocksPolicy : public DeadlockPolicy {
 public:
  bool OnBlock(WorkerLockCtx* me, Request* req) override;
  bool WaitForGrant(WorkerLockCtx* me, Request* req,
                    LockTable* table) override;
  void OnWaitEnd(WorkerLockCtx* me) override;
  const char* name() const override { return "dreadlocks"; }
};

}  // namespace orthrus::lock

#endif  // ORTHRUS_LOCK_LOCK_TABLE_H_
