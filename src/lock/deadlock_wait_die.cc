// Wait-die deadlock avoidance (Section 4.1).
//
// A requester may wait only on transactions strictly older than itself
// (smaller timestamp); otherwise it dies immediately. Since every wait edge
// then points from an older to a younger transaction, timestamps strictly
// increase along any wait chain and a cycle is impossible. The cost is
// false positives: young transactions die even when no deadlock exists —
// exactly the behaviour Figure 4 measures.
#include "lock/lock_table.h"

namespace orthrus::lock {

bool WaitDiePolicy::OnBlock(WorkerLockCtx* me, Request* req) {
  // Walk every conflicting request ahead of us (granted or waiting): we may
  // wait only if we are older than all of them. Comparing against waiters
  // too — not just holders — preserves the old->young invariant
  // transitively through FIFO queues.
  for (const Request* r = req->prev; r != nullptr; r = r->prev) {
    if (!Conflicts(req->mode, r->mode)) continue;
    if (r->owner_ts <= me->txn_timestamp) {
      return false;  // younger (or tied): die
    }
  }
  return true;
}

}  // namespace orthrus::lock
