#include "lock/lock_table.h"

namespace orthrus::lock {

LockTable::LockTable(Config config) : config_(config) {
  const std::uint64_t n = NextPowerOfTwo(config_.num_buckets);
  config_.num_buckets = n;
  bucket_mask_ = n - 1;
  if (config_.arena != nullptr) {
    buckets_ = config_.arena->AllocateArray<Bucket>(n);
    head_pool_ =
        config_.arena->AllocateArray<LockHead>(config_.max_lock_heads);
  } else {
    owned_buckets_ = std::make_unique<Bucket[]>(n);  // lint:allow-alloc setup
    owned_head_pool_ =  // lint:allow-alloc setup
        std::make_unique<LockHead[]>(config_.max_lock_heads);
    buckets_ = owned_buckets_.get();
    head_pool_ = owned_head_pool_.get();
  }
  if (config_.home_socket >= 0) {
    for (std::uint64_t i = 0; i < n; ++i) {
      buckets_[i].latch.SetHomeRaw(config_.home_socket);
    }
  }
  heads_per_worker_ = config_.max_lock_heads /
                      static_cast<std::uint64_t>(config_.max_workers);
  ORTHRUS_CHECK(heads_per_worker_ >= 1);
  workers_.resize(config_.max_workers);
}

LockTable::~LockTable() = default;

WorkerLockCtx::~WorkerLockCtx() = default;

WorkerLockCtx* LockTable::RegisterWorker(int id, WorkerStats* stats) {
  ORTHRUS_CHECK(id >= 0 && id < config_.max_workers);
  ORTHRUS_CHECK_MSG(workers_[id] == nullptr, "worker registered twice");
  workers_[id] = std::make_unique<WorkerLockCtx>();  // lint:allow-alloc setup
  WorkerLockCtx* ctx = workers_[id].get();
  ctx->worker_id = id;
  ctx->stats = stats;
  ctx->acquired.reserve(64);
  ctx->head_shard = &head_pool_[static_cast<std::uint64_t>(id) *
                                heads_per_worker_];
  ctx->head_shard_left = heads_per_worker_;
  return ctx;
}

LockTable::Bucket* LockTable::BucketFor(std::uint32_t table,
                                        std::uint64_t key) {
  std::uint64_t h = (key ^ (static_cast<std::uint64_t>(table) << 56)) *
                    0x9E3779B97F4A7C15ull;
  h ^= h >> 32;
  return &buckets_[h & bucket_mask_];
}

LockHead* LockTable::FindOrCreateHead(WorkerLockCtx* ctx, Bucket* b,
                                      std::uint32_t table,
                                      std::uint64_t key) {
  for (LockHead* h = b->heads; h != nullptr; h = h->next_in_bucket) {
    if (h->key == key && h->table == table) return h;
  }
  ORTHRUS_CHECK_MSG(ctx->head_shard_left > 0, "lock-head shard exhausted");
  LockHead* h = ctx->head_shard++;
  ctx->head_shard_left--;
  h->table = table;
  h->key = key;
  h->queue_head = nullptr;
  h->queue_tail = nullptr;
  h->queued_total = 0;
  h->queued_x = 0;
  h->next_in_bucket = b->heads;
  b->heads = h;
  return h;
}

bool LockTable::NoConflictAhead(const Request* req) const {
  for (const Request* r = req->prev; r != nullptr; r = r->prev) {
    hal::ConsumeCycles(config_.node_touch_cycles);
    if (Conflicts(req->mode, r->mode)) return false;
  }
  return true;
}

Request* LockTable::NearestBlockerOf(Request* req) {
  for (Request* r = req->prev; r != nullptr; r = r->prev) {
    if (Conflicts(req->mode, r->mode)) return r;
  }
  return nullptr;
}

void LockTable::GrantFollowers(LockHead* head) {
  // Single pass: track whether any exclusive request precedes the cursor;
  // once a request stays ungrantable, everything behind it is blocked by
  // the same (or more) predecessors, so the sweep stops.
  bool x_seen = false;
  for (Request* r = head->queue_head; r != nullptr; r = r->next) {
    hal::ConsumeCycles(config_.node_touch_cycles);
    if (r->granted.RawLoad() == 0) {
      const bool grantable = r->mode == LockMode::kExclusive
                                 ? r == head->queue_head
                                 : !x_seen;
      if (!grantable) break;
      // Modeled store: transfers the flag's line to the waiter's core —
      // this is the paper's "data movement overhead" at work.
      r->granted.store(1);
    }
    if (r->mode == LockMode::kExclusive) x_seen = true;
  }
}

void LockTable::Unlink(LockHead* head, Request* req) {
  ORTHRUS_DCHECK(head->queued_total > 0);
  head->queued_total--;
  if (req->mode == LockMode::kExclusive) head->queued_x--;
  if (req->prev != nullptr) {
    req->prev->next = req->next;
  } else {
    head->queue_head = req->next;
  }
  if (req->next != nullptr) {
    req->next->prev = req->prev;
  } else {
    head->queue_tail = req->prev;
  }
  req->prev = nullptr;
  req->next = nullptr;
}

Request* LockTable::AllocRequest(WorkerLockCtx* ctx) {
  Request* r = ctx->free_requests;
  if (r != nullptr) {
    ctx->free_requests = r->next;
  } else {
    // Cold path: grows the worker's private pool. Never recurs for a key
    // once the pool has warmed to the worker's maximum footprint.
    // lint:allow-alloc cold path: pool growth, bounded by max footprint
    ctx->owned_requests.push_back(std::make_unique<Request>());
    r = ctx->owned_requests.back().get();
  }
  r->next = nullptr;
  r->prev = nullptr;
  r->granted.RawStore(0);
  return r;
}

void LockTable::FreeRequest(WorkerLockCtx* ctx, Request* req) {
  req->head = nullptr;
  req->prev = nullptr;
  req->next = ctx->free_requests;
  ctx->free_requests = req;
}

LockTable::AcquireResult LockTable::Acquire(WorkerLockCtx* ctx,
                                            std::uint32_t table,
                                            std::uint64_t key, LockMode mode,
                                            DeadlockPolicy* policy) {
  Bucket* bucket = BucketFor(table, key);
  Request* req = AllocRequest(ctx);
  req->owner = ctx;
  req->mode = mode;
  req->owner_ts = ctx->txn_timestamp;

  bucket->latch.Lock();
  // The hash-chain walk and queue manipulation happen while the latch is
  // held — latch hold time covering list work is what turns workload
  // contention into physical contention (Section 2.1).
  hal::ConsumeCycles(config_.lock_op_cycles);
  LockHead* head = FindOrCreateHead(ctx, bucket, table, key);
  req->head = head;
  // FIFO enqueue; the counters make the grant check O(1).
  const bool grantable = mode == LockMode::kExclusive
                             ? head->queued_total == 0
                             : head->queued_x == 0;
  req->prev = head->queue_tail;
  if (head->queue_tail != nullptr) {
    head->queue_tail->next = req;
  } else {
    head->queue_head = req;
  }
  head->queue_tail = req;
  head->queued_total++;
  if (mode == LockMode::kExclusive) head->queued_x++;

  if (grantable) {
    ORTHRUS_DCHECK(NoConflictAhead(req));
    req->granted.RawStore(1);
    bucket->latch.Unlock();
    ctx->acquired.push_back(req);
    return AcquireResult::kGranted;
  }

  ctx->stats->lock_waits++;
  ctx->waiting_request = req;
  Request* blocker = NearestBlockerOf(req);
  ctx->blocker = blocker != nullptr ? blocker->owner : nullptr;
  const bool may_wait = policy == nullptr || policy->OnBlock(ctx, req);
  if (!may_wait) {
    Unlink(head, req);
    GrantFollowers(head);
    bucket->latch.Unlock();
    FreeRequest(ctx, req);
    ctx->waiting_request = nullptr;
    ctx->blocker = nullptr;
    return AcquireResult::kDie;
  }
  bucket->latch.Unlock();
  ctx->acquired.push_back(req);
  return AcquireResult::kWaiting;
}

void LockTable::AcquireBatch(BatchRequest* reqs, std::size_t n,
                             DeadlockPolicy* policy, bool prefetch,
                             bool combine) {
  // Pass 1: sweep prefetches over every request's bucket, then declare the
  // sweep so the simulator charges one overlapped fill window instead of a
  // serial miss per bucket walk.
  if (prefetch) {
    for (std::size_t i = 0; i < n; ++i) {
      hal::Prefetch(BucketFor(reqs[i].table, reqs[i].key));
    }
    hal::PrefetchSweep(n);
  }
  // Pass 2: in arrival order; adjacent same-key requests form a run served
  // under one latch hold with one hash-chain walk. Each member's grant
  // decision reads the queue counters its predecessors just updated, so
  // the outcome per request is identical to n sequential Acquire calls.
  std::size_t i = 0;
  while (i < n) {
    std::size_t run_end = i + 1;
    if (combine) {
      while (run_end < n && reqs[run_end].table == reqs[i].table &&
             reqs[run_end].key == reqs[i].key) {
        run_end++;
      }
    }
    const std::size_t run_start = i;
    Bucket* bucket = BucketFor(reqs[i].table, reqs[i].key);
    bucket->latch.Lock();
    hal::ConsumeCycles(config_.lock_op_cycles);
    LockHead* head =
        FindOrCreateHead(reqs[i].ctx, bucket, reqs[i].table, reqs[i].key);
    for (; i < run_end; ++i) {
      BatchRequest& br = reqs[i];
      // Run followers ride the leader's bucket walk: one node touch, not a
      // full lock op.
      if (i != run_start) hal::ConsumeCycles(config_.node_touch_cycles);
      Request* req = AllocRequest(br.ctx);
      req->owner = br.ctx;
      req->mode = br.mode;
      req->owner_ts = br.ctx->txn_timestamp;
      req->head = head;
      const bool grantable = br.mode == LockMode::kExclusive
                                 ? head->queued_total == 0
                                 : head->queued_x == 0;
      req->prev = head->queue_tail;
      if (head->queue_tail != nullptr) {
        head->queue_tail->next = req;
      } else {
        head->queue_head = req;
      }
      head->queue_tail = req;
      head->queued_total++;
      if (br.mode == LockMode::kExclusive) head->queued_x++;

      if (grantable) {
        ORTHRUS_DCHECK(NoConflictAhead(req));
        req->granted.RawStore(1);
        br.ctx->acquired.push_back(req);
        br.result = AcquireResult::kGranted;
        continue;
      }
      br.ctx->stats->lock_waits++;
      br.ctx->waiting_request = req;
      Request* blocker = NearestBlockerOf(req);
      br.ctx->blocker = blocker != nullptr ? blocker->owner : nullptr;
      const bool may_wait = policy == nullptr || policy->OnBlock(br.ctx, req);
      if (!may_wait) {
        Unlink(head, req);
        GrantFollowers(head);
        FreeRequest(br.ctx, req);
        br.ctx->waiting_request = nullptr;
        br.ctx->blocker = nullptr;
        br.result = AcquireResult::kDie;
        continue;
      }
      br.ctx->acquired.push_back(req);
      br.result = AcquireResult::kWaiting;
    }
    bucket->latch.Unlock();
  }
}

bool LockTable::Wait(WorkerLockCtx* ctx, DeadlockPolicy* policy) {
  Request* req = ctx->waiting_request;
  ORTHRUS_CHECK(req != nullptr);
  static DeadlockPolicy fifo_wait;
  DeadlockPolicy* p = policy != nullptr ? policy : &fifo_wait;
  const hal::Cycles wait_start = hal::Now();
  const bool granted = p->WaitForGrant(ctx, req, this);
  p->OnWaitEnd(ctx);
  ctx->stats->Add(TimeCategory::kWaiting, hal::Now() - wait_start);
  ctx->waiting_request = nullptr;
  ctx->blocker = nullptr;
  if (granted) return true;

  // Deadlock: remove the request. It may have been granted between the
  // policy's decision and taking the latch; in that rare race we still
  // abort (the transaction restarts), we just also wake followers.
  ctx->stats->deadlocks++;
  Bucket* bucket = BucketFor(req->head->table, req->head->key);
  bucket->latch.Lock();
  LockHead* head = req->head;
  Unlink(head, req);
  GrantFollowers(head);
  bucket->latch.Unlock();
  ORTHRUS_CHECK(!ctx->acquired.empty() && ctx->acquired.back() == req);
  ctx->acquired.pop_back();
  FreeRequest(ctx, req);
  return false;
}

void LockTable::ReleaseAll(WorkerLockCtx* ctx) {
  for (Request* req : ctx->acquired) {
    Bucket* bucket = BucketFor(req->head->table, req->head->key);
    bucket->latch.Lock();
    hal::ConsumeCycles(config_.lock_op_cycles);
    LockHead* head = req->head;
    Unlink(head, req);
    GrantFollowers(head);
    bucket->latch.Unlock();
    FreeRequest(ctx, req);
  }
  ctx->acquired.clear();
}

void LockTable::RefreshBlocker(WorkerLockCtx* ctx) {
  Request* req = ctx->waiting_request;
  if (req == nullptr) return;
  Bucket* bucket = BucketFor(req->head->table, req->head->key);
  bucket->latch.Lock();
  Request* blocker = NearestBlockerOf(req);
  ctx->blocker = blocker != nullptr ? blocker->owner : nullptr;
  bucket->latch.Unlock();
}

// ------------------------------------------------------------- policies

bool DeadlockPolicy::WaitForGrant(WorkerLockCtx* /*me*/, Request* req,
                                  LockTable* /*table*/) {
  hal::Cycles backoff = 0;
  while (req->granted.load() == 0) {
    hal::ConsumeCycles(backoff + hal::FastJitter(64));
    hal::CpuRelax();
    backoff = backoff < 512 ? backoff + 32 : 512;
  }
  return true;
}

std::uint64_t LockTable::lock_heads_in_use() const {
  std::uint64_t used = 0;
  for (const auto& w : workers_) {
    if (w != nullptr) used += heads_per_worker_ - w->head_shard_left;
  }
  return used;
}

}  // namespace orthrus::lock
