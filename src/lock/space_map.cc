#include "lock/space_map.h"

#include <algorithm>

namespace orthrus::lock {
namespace {

// splitmix64 finalizer: cheap, well-distributed, and stable across
// platforms — ring layouts must reproduce bit-for-bit in every process.
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

HashRing::HashRing(int max_slots, int replicas) : max_slots_(max_slots) {
  ORTHRUS_CHECK(max_slots >= 1);
  ORTHRUS_CHECK(replicas >= 1);
  points_.reserve(static_cast<std::size_t>(max_slots) * replicas);
  for (int s = 0; s < max_slots; ++s) {
    for (int r = 0; r < replicas; ++r) {
      const std::uint64_t seed =
          (static_cast<std::uint64_t>(s) << 32) | static_cast<std::uint32_t>(r);
      points_.push_back({Mix64(seed), s});
    }
  }
  std::sort(points_.begin(), points_.end());
}

int HashRing::OwnerOf(int partition, int active) const {
  ORTHRUS_CHECK(active >= 1 && active <= max_slots_);
  const std::uint64_t h =
      Mix64(0xC0FFEEull ^ static_cast<std::uint64_t>(partition));
  // First ring point at or after h whose slot is active; wrap around.
  std::size_t idx =
      static_cast<std::size_t>(std::lower_bound(points_.begin(), points_.end(),
                                                Point{h, -1}) -
                               points_.begin());
  for (std::size_t n = 0; n < points_.size(); ++n) {
    const Point& p = points_[(idx + n) % points_.size()];
    if (p.slot < active) return p.slot;
  }
  ORTHRUS_CHECK_MSG(false, "consistent-hash ring has no active slot");
  return 0;
}

std::vector<std::uint32_t> HashRing::OwnersFor(int partitions,
                                               int active) const {
  std::vector<std::uint32_t> owners(static_cast<std::size_t>(partitions));
  for (int p = 0; p < partitions; ++p) {
    owners[static_cast<std::size_t>(p)] =
        static_cast<std::uint32_t>(OwnerOf(p, active));
  }
  return owners;
}

}  // namespace orthrus::lock
