// Lock-space ownership as a first-class, runtime-remappable layer.
//
// ORTHRUS partitions the lock space across CC threads (Section 3.1). The
// original engine hard-wired that mapping — partition id == CC id, fixed at
// startup — which makes the CC population a compile-time property of a run:
// the elastic controller could only move *execution* threads. This header
// turns partition ownership into a subsystem of its own:
//
//  * HashRing — a consistent-hash assignment of P lock partitions onto the
//    active prefix [0, k) of a CC-slot population. Stable under resizing:
//    activating or retiring one slot moves only the partitions that slot
//    gains or loses; every other partition keeps its owner. That stability
//    is what makes runtime CC scaling affordable — a k -> k-1 step hands
//    off ~P/k partitions instead of reshuffling all of them.
//
//  * SpaceMap<Shard> — the authoritative ownership state: one Shard (the
//    owner-private lock table plus bookkeeping) per partition, an atomic
//    per-shard owner word, a published routing table, and a monotonically
//    increasing map *version* (the handoff epoch). Two views coexist by
//    design: the routing table is a hint senders may read stale; the
//    per-shard owner word is the authority receivers must check before
//    touching a shard.
//
//  * LockSpaceRouter — a thread's cached view of the routing table.
//    Refresh() costs one modeled atomic load per scheduling quantum and
//    copies the table only when the epoch moved; OwnerOf() is then a plain
//    array read on the hot send path. Each router publishes the version it
//    has observed, which gives retiring owners their drain barrier (below).
//
// The handoff protocol (one partition moving from CC a to CC b):
//
//   1. The controller publishes a new owner table and bumps the version.
//   2. a notices the epoch moved at its next quantum boundary (Refresh),
//      and — as the shard's sole owner, at a point where it is touching no
//      shard state — release-stores the shard's owner word to b. This is
//      the entire transfer: the shard *pointer* changes hands, never the
//      lock state behind it, so no request is lost or duplicated.
//   3. Senders route by their cached table. A message that reaches a CC
//      which does not own the target shard (stale sender view, or the
//      owner store not yet observed) is forwarded to the shard's current
//      owner — it chases the ownership chain, which settles one epoch
//      after the last relinquish.
//   4. A CC slot leaving the active set parks only after (a) it owns no
//      shard, (b) every registered router has observed a version at or
//      past its retirement epoch — so no sender can still be routing new
//      messages to it — and (c) a final drain found its queues empty: the
//      same drain-to-empty retire contract the elastic exec threads use
//      against mp::MultiMesh.
//
// The release/acquire pair on the owner word is the only synchronization a
// handoff needs: everything the source wrote into the shard happens-before
// any access by a thread that has observed itself as the owner.
#ifndef ORTHRUS_LOCK_SPACE_MAP_H_
#define ORTHRUS_LOCK_SPACE_MAP_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/macros.h"
#include "hal/hal.h"

namespace orthrus::lock {

// Consistent-hash ring: P partitions -> the active prefix [0, k) of
// `max_slots` CC slots. Pure deterministic arithmetic (no state beyond the
// precomputed ring), so every thread computes identical tables.
class HashRing {
 public:
  // `replicas` ring points per slot; more replicas smooth the partition
  // counts per slot at the cost of a longer ring walk on resize.
  explicit HashRing(int max_slots, int replicas = 16);

  int max_slots() const { return max_slots_; }

  // Owner of `partition` when slots [0, active) are active. Stability: the
  // owner changes across `active` counts only when the partition's nearest
  // active ring point changes — i.e. only partitions adjacent to the
  // activated/retired slot's points move.
  int OwnerOf(int partition, int active) const;

  // Full owner table for `partitions` partitions at `active` slots.
  std::vector<std::uint32_t> OwnersFor(int partitions, int active) const;

 private:
  struct Point {
    std::uint64_t where;
    int slot;
    bool operator<(const Point& o) const {
      if (where != o.where) return where < o.where;
      return slot < o.slot;  // total order: deterministic tie-break
    }
  };

  int max_slots_;
  std::vector<Point> points_;  // sorted
};

// Authoritative lock-space ownership. `Shard` is whatever the owner keeps
// per partition (ORTHRUS: the partition's CC lock table plus held-lock
// accounting); SpaceMap owns the shards so their addresses are stable for
// the whole run while ownership moves across threads.
template <typename Shard>
class SpaceMap {
 public:
  // Observed-version sentinel for routers that are parked, retired, or not
  // yet started: they hold no cached table, so they can never route by a
  // stale epoch and count as "past" every barrier.
  static constexpr std::uint64_t kInactive = ~0ull;

  SpaceMap() = default;
  SpaceMap(const SpaceMap&) = delete;
  SpaceMap& operator=(const SpaceMap&) = delete;

  // Builds the shards and seeds ownership + routing from `owners`, with
  // `routers` observation slots (one per thread that will ever route).
  // Must run before any concurrent access (raw stores).
  template <typename MakeShard>
  void Reset(int partitions, const std::vector<std::uint32_t>& owners,
             int routers, MakeShard&& make) {
    ORTHRUS_CHECK(partitions >= 1);
    ORTHRUS_CHECK(owners.size() == static_cast<std::size_t>(partitions));
    ORTHRUS_CHECK(routers >= 1);
    partitions_ = partitions;
    routers_ = routers;
    shards_.clear();
    shards_.reserve(static_cast<std::size_t>(partitions));
    for (int p = 0; p < partitions; ++p) shards_.push_back(make(p));
    owner_ = std::make_unique<hal::Atomic<std::uint64_t>[]>(  // lint:allow-alloc setup
        static_cast<std::size_t>(partitions));
    route_ = std::make_unique<hal::Atomic<std::uint64_t>[]>(  // lint:allow-alloc setup
        static_cast<std::size_t>(partitions));
    for (int p = 0; p < partitions; ++p) {
      owner_[p].RawStore(owners[static_cast<std::size_t>(p)]);
      route_[p].RawStore(owners[static_cast<std::size_t>(p)]);
    }
    observed_ = std::make_unique<hal::Atomic<std::uint64_t>[]>(  // lint:allow-alloc setup
        static_cast<std::size_t>(routers));
    for (int r = 0; r < routers; ++r) observed_[r].RawStore(kInactive);
    version_.RawStore(1);
  }

  int partitions() const { return partitions_; }
  int routers() const { return routers_; }
  Shard* shard(int p) { return shards_[static_cast<std::size_t>(p)].get(); }

  // --- routing hints (the published table; senders may read it stale) ---

  std::uint64_t version() { return version_.load(); }
  std::uint64_t VersionRaw() const { return version_.RawLoad(); }
  std::uint64_t RouteOf(int p) { return route_[p].load(); }

  // Controller side: publish a new owner table as a new epoch. Table
  // stores precede the version bump, so a router that sees the new
  // version copies a table at least as new.
  std::uint64_t Publish(const std::vector<std::uint32_t>& owners) {
    ORTHRUS_DCHECK(owners.size() == static_cast<std::size_t>(partitions_));
    for (int p = 0; p < partitions_; ++p) {
      route_[p].store(owners[static_cast<std::size_t>(p)]);
    }
    return version_.fetch_add(1) + 1;
  }

  // --- shard ownership (authoritative; single-writer transfer chain) ---

  // Acquire-load of the owner word: a thread observing itself here may
  // touch the shard, and sees every write the previous owner made.
  std::uint64_t ShardOwner(int p) { return owner_[p].load(); }
  std::uint64_t ShardOwnerRaw(int p) const { return owner_[p].RawLoad(); }

  // Called by the shard's *current owner* only, at a point where it holds
  // no reference into the shard: hands the shard to `to`.
  void Relinquish(int p, std::uint64_t to) { owner_[p].store(to); }

  // --- the epoch barrier ------------------------------------------------

  void PublishObserved(int router_slot, std::uint64_t v) {
    observed_[router_slot].store(v);
  }

  // True when every registered router has observed a map version >= v.
  // Once true, no router can still be routing by a table older than v, so
  // a slot that owns nothing under every table >= v can never receive a
  // freshly-routed message again (forwards chase shard owners, which by
  // then never name it either).
  bool AllObservedAtLeast(std::uint64_t v) {
    for (int r = 0; r < routers_; ++r) {
      if (observed_[r].load() < v) return false;
    }
    return true;
  }

 private:
  int partitions_ = 0;
  int routers_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<hal::Atomic<std::uint64_t>[]> owner_;
  std::unique_ptr<hal::Atomic<std::uint64_t>[]> route_;
  std::unique_ptr<hal::Atomic<std::uint64_t>[]> observed_;
  hal::Atomic<std::uint64_t> version_{1};
};

// A thread's cached view of the routing table. Hot-path lookups are plain
// array reads; the shared map is touched once per Refresh (one modeled
// load, plus a table copy only when the epoch actually moved).
template <typename Shard>
class LockSpaceRouter {
 public:
  LockSpaceRouter(SpaceMap<Shard>* map, int slot)
      : map_(map),
        slot_(slot),
        owners_(static_cast<std::size_t>(map->partitions()), 0) {
    ORTHRUS_CHECK(slot >= 0 && slot < map->routers());
  }

  // Call once per scheduling quantum. Returns true when the view changed
  // (the caller then re-examines shard ownership — see the handoff
  // protocol in the header comment).
  bool Refresh() {
    std::uint64_t v = map_->version();
    if (v == version_) return false;
    // Re-read the version after copying: a publish that lands mid-copy
    // leaves a torn table (old and new entries mixed) tagged with the old
    // version, so retry until the copy brackets a stable version.
    for (;;) {
      for (int p = 0; p < map_->partitions(); ++p) {
        owners_[static_cast<std::size_t>(p)] =
            static_cast<std::uint32_t>(map_->RouteOf(p));
      }
      const std::uint64_t check = map_->version();
      if (check == v) break;
      v = check;
    }
    version_ = v;
    map_->PublishObserved(slot_, v);
    return true;
  }

  int OwnerOf(int p) const {
    return static_cast<int>(owners_[static_cast<std::size_t>(p)]);
  }
  std::uint64_t version() const { return version_; }

  // Park/retire side: drop out of epoch barriers (we hold no live cached
  // view once parked; the first post-resume Refresh rebuilds it).
  void Deactivate() {
    version_ = 0;  // map versions start at 1: forces the next Refresh
    map_->PublishObserved(slot_, SpaceMap<Shard>::kInactive);
  }

 private:
  SpaceMap<Shard>* map_;
  int slot_;
  std::uint64_t version_ = 0;
  std::vector<std::uint32_t> owners_;
};

}  // namespace orthrus::lock

#endif  // ORTHRUS_LOCK_SPACE_MAP_H_
