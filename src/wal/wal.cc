#include "wal/wal.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <utility>

#include "common/fnv.h"

namespace orthrus::wal {
namespace {

// Modeled cost of capturing after-images at commit time: the memcpy into
// the fragment arena (per 64B line) plus per-fragment bookkeeping.
constexpr hal::Cycles kCaptureCyclesPerLine = 2;
constexpr hal::Cycles kFragmentOverheadCycles = 30;

constexpr std::uint32_t kFrameHeaderBytes = 16;  // [len][kind][check]

std::size_t NextPow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

std::uint64_t FrameCheck(std::uint32_t kind, const std::uint8_t* payload,
                         std::uint32_t len) {
  Fnv1a h;
  h.Mix((static_cast<std::uint64_t>(kind) << 32) | len);
  for (std::uint32_t i = 0; i < len; i += 8) {
    std::uint64_t w = 0;
    const std::uint32_t n = len - i < 8 ? len - i : 8;
    std::memcpy(&w, payload + i, n);
    h.Mix(w);
  }
  return h.digest();
}

// --- PartitionLogBuffer ------------------------------------------------

void PartitionLogBuffer::AppendFrame(std::uint32_t kind,
                                     const std::uint8_t* payload,
                                     std::uint32_t len) {
  // Stream-ownership proxy for the race detector: exactly one logger may
  // append at a time (handoffs carry the SpaceMap owner-word release/
  // acquire pair). `this` stands in for the heap bytes the vector moves.
  hal::RaceCheck(this, sizeof(void*), /*is_write=*/true, "wal.stream");
  const std::uint64_t check = FrameCheck(kind, payload, len);
  const std::size_t at = bytes_.size();
  bytes_.resize(at + kFrameHeaderBytes + len);
  std::memcpy(bytes_.data() + at, &len, 4);
  std::memcpy(bytes_.data() + at + 4, &kind, 4);
  std::memcpy(bytes_.data() + at + 8, &check, 8);
  std::memcpy(bytes_.data() + at + kFrameHeaderBytes, payload, len);
}

void PartitionLogBuffer::AppendFragment(const FragmentMsg& frag) {
  // Payload = disk header + the write-image stream, laid out contiguously.
  std::uint8_t buf[sizeof(FragmentDiskHeader) + kMaxFragmentPayload];
  std::memcpy(buf, &frag.hdr, sizeof(FragmentDiskHeader));
  std::memcpy(buf + sizeof(FragmentDiskHeader), frag.payload,
              frag.payload_bytes);
  AppendFrame(kFragmentFrame, buf,
              static_cast<std::uint32_t>(sizeof(FragmentDiskHeader)) +
                  frag.payload_bytes);
}

void PartitionLogBuffer::AppendSeal(std::uint64_t epoch) {
  AppendFrame(kSealFrame, reinterpret_cast<const std::uint8_t*>(&epoch),
              sizeof(epoch));
}

void PartitionLogBuffer::Sync() {
  hal::RaceCheck(this, sizeof(void*), /*is_write=*/true, "wal.stream");
  const std::uint64_t delta = bytes_.size() - synced_bytes_;
  hal::OnStorageSync(&device_, delta);
  synced_bytes_ = bytes_.size();
  syncs_.push_back(SyncPoint{synced_bytes_, hal::Now()});
}

std::vector<std::uint8_t> PartitionLogBuffer::CrashImageAt(
    hal::Cycles t) const {
  std::uint64_t stable = 0;
  for (const SyncPoint& s : syncs_) {
    if (s.completed_at <= t) stable = s.stable_bytes;
  }
  return std::vector<std::uint8_t>(bytes_.begin(),
                                   bytes_.begin() +
                                       static_cast<std::ptrdiff_t>(stable));
}

// --- GroupCommitLog ----------------------------------------------------

GroupCommitLog::GroupCommitLog(const DurabilityOptions& opts,
                               storage::Database* db, int n_producers)
    : opts_(opts),
      db_(db),
      n_producers_(n_producers),
      partitions_(db->partitioner().n) {
  ORTHRUS_CHECK(opts_.loggers >= 1);
  ORTHRUS_CHECK(n_producers_ >= 1);
  ORTHRUS_CHECK(partitions_ >= 1);
  // The admission gate reserves kMaxTxnFragments slots per in-flight txn;
  // the arena must leave room for at least one pipelined transaction.
  ORTHRUS_CHECK_MSG(opts_.arena_records >= 2 * kMaxTxnFragments,
                    "wal arena too small for one pipelined transaction");
  epoch_.RawStore(1);
  published_ = std::make_unique<hal::Atomic<std::uint64_t>[]>(
      static_cast<std::size_t>(n_producers_));
  sealed_ = std::make_unique<hal::Atomic<std::uint64_t>[]>(
      static_cast<std::size_t>(partitions_));
  lock::HashRing ring(opts_.loggers);
  base_owners_ = ring.OwnersFor(partitions_, opts_.loggers);
  map_.Reset(partitions_, base_owners_, n_producers_ + opts_.loggers,
             [](int) { return std::make_unique<PartitionLogBuffer>(); });
  const std::size_t capacity = NextPow2(std::max<std::size_t>(
      64, static_cast<std::size_t>(n_producers_) *
              static_cast<std::size_t>(opts_.arena_records)));
  mesh_.Reset(opts_.loggers, capacity, /*shards=*/1);
  row_versions_.reserve(db->num_tables());
  for (std::size_t t = 0; t < db->num_tables(); ++t) {
    row_versions_.emplace_back(db->GetTable(static_cast<std::uint32_t>(t))
                                   ->capacity(),
                               0);
  }
}

std::vector<std::vector<std::uint8_t>> GroupCommitLog::FinalImages() {
  std::vector<std::vector<std::uint8_t>> out;
  out.reserve(static_cast<std::size_t>(partitions_));
  for (int p = 0; p < partitions_; ++p) out.push_back(map_.shard(p)->bytes());
  return out;
}

std::vector<std::vector<std::uint8_t>> GroupCommitLog::CrashImagesAt(
    hal::Cycles t) {
  std::vector<std::vector<std::uint8_t>> out;
  out.reserve(static_cast<std::size_t>(partitions_));
  for (int p = 0; p < partitions_; ++p) {
    out.push_back(map_.shard(p)->CrashImageAt(t));
  }
  return out;
}

void GroupCommitLog::RunLogger(int logger_index, runtime::WorkerContext* ctx) {
  (void)ctx;
  hal::Platform* pf = hal::CurrentCore()->platform;
  const hal::Cycles interval = std::max<hal::Cycles>(
      1, static_cast<hal::Cycles>(opts_.group_commit_seconds *
                                  pf->CyclesPerSecond()));
  const std::uint64_t me = static_cast<std::uint64_t>(logger_index);
  lock::LockSpaceRouter<PartitionLogBuffer> router(
      &map_, n_producers_ + logger_index);
  router.Refresh();

  // Fragments that arrived for partitions this logger does not (yet) own:
  // routed under a newer table than the shard-owner handoff has caught up
  // with. Held until acquisition; the seal protocol guarantees their
  // epochs stay above every seal the old owner can still issue, so the
  // arena slots behind these pointers cannot be recycled underneath us.
  std::vector<std::vector<const FragmentMsg*>> stash(
      static_cast<std::size_t>(partitions_));
  std::size_t stashed_total = 0;

  // Partitions we own but the published table routes elsewhere: sealing is
  // frozen (a seal now could miss fragments already routed to the new
  // owner); relinquished once every router observed the new table and one
  // further drain has emptied anything still routed here.
  std::vector<char> leaving(static_cast<std::size_t>(partitions_), 0);
  int leaving_count = 0;
  std::uint64_t barrier_version = 0;

  std::uint64_t rebalance_shift = 0;
  std::uint64_t last_rebalance_epoch = 0;
  std::uint64_t last_durable = 0;
  hal::Cycles next_epoch_at = hal::Now() + interval;
  hal::IdleBackoff idle(4096);

  for (;;) {
    bool progress = false;
    const std::uint64_t retired = retired_.load();

    // 1. Epoch clock (logger 0 only). Rebalances ride epoch boundaries.
    // The clock freezes once every producer has permanently retired: a
    // producer only retires with its pending queue drained, so everything
    // it ever captured is already sealed and durable — further epochs
    // would only keep the shutdown condition below from ever holding.
    if (logger_index == 0 &&
        retired != static_cast<std::uint64_t>(n_producers_)) {
      const hal::Cycles now = hal::Now();
      if (now >= next_epoch_at) {
        const std::uint64_t e = epoch_.fetch_add(1) + 1;
        next_epoch_at = now + interval;
        progress = true;
        // Snapshot clock rides the same cadence: each WAL epoch advance
        // also advances the commit epoch and folds the heartbeat minima
        // into the read epoch / reader floor (storage/epoch_clock.h).
        if (epoch_clock_ != nullptr) epoch_clock_->Tick();
        // Rotate only once the previous handoff chain has fully settled:
        // every shard-owner word equals the routed table. A rotation
        // published mid-handoff can route a partition away from an
        // incoming owner that never acquired it, stranding its stashed
        // fragments at a logger the old table will never hand the shard
        // to — the seal then misses those fragments and their arena slots
        // recycle underneath the stash. Not yet settled = retry at the
        // next epoch tick.
        bool due = opts_.rebalance_epochs != 0 &&
                   e - last_rebalance_epoch >= opts_.rebalance_epochs;
        for (int p = 0; due && p < partitions_; ++p) {
          due = map_.ShardOwner(p) == map_.RouteOf(p);
        }
        if (due) {
          last_rebalance_epoch = e;
          ++rebalance_shift;
          std::vector<std::uint32_t> owners(base_owners_);
          for (std::uint32_t& o : owners) {
            o = static_cast<std::uint32_t>(
                (o + rebalance_shift) %
                static_cast<std::uint64_t>(opts_.loggers));
          }
          map_.Publish(owners);
        }
      }
    }

    // 2. Routing refresh + owner/route reconciliation. The scan runs every
    // iteration, not just when Refresh reports a version change: a logger
    // whose thread starts after a publish imports the new table with its
    // first Refresh and never sees a transition, and a barrier can complete
    // around a not-yet-started logger (its router slot is still inactive).
    // Either way this logger can find itself owning a partition the current
    // table routes elsewhere without ever witnessing the version move —
    // sealing such a partition would miss fragments already routed to its
    // new home, and never relinquishing it wedges that home's stash forever.
    router.Refresh();
    for (int p = 0; p < partitions_; ++p) {
      const bool mine = map_.ShardOwner(p) == me;
      const bool still_mine =
          static_cast<std::uint64_t>(router.OwnerOf(p)) == me;
      if (mine && !still_mine && !leaving[p]) {
        leaving[p] = 1;
        ++leaving_count;
        barrier_version = router.version();
      } else if (mine && still_mine && leaving[p]) {
        leaving[p] = 0;  // routed back before the handoff completed
        --leaving_count;
      }
    }

    // 3. Seal candidate, read BEFORE draining: every producer flushes its
    // staged fragments before publishing an epoch, so once we have read
    // published epochs, a drain is guaranteed to surface every fragment
    // with epoch <= candidate that is routed to us. Producers that parked
    // or retired publish the done sentinel and bound nothing; the current
    // epoch minus one bounds everyone (a resuming producer publishes
    // before it captures, and the publish-then-capture order makes the
    // bound sound — see Producer::Resume).
    const std::uint64_t e_now = epoch_.load();
    std::uint64_t candidate = e_now - 1;
    for (int i = 0; i < n_producers_; ++i) {
      const std::uint64_t pub = published_[i].load();
      const std::uint64_t lim =
          pub == kDonePublished ? e_now - 1 : (pub == 0 ? 0 : pub - 1);
      candidate = std::min(candidate, lim);
    }

    // 3b. Handoff barrier, checked before the drain so the subsequent
    // relinquish provably follows a drain that ran with no stale-routed
    // sender left: anything routed here under the old table is already in
    // our ring and this quantum's drain appends it.
    const bool barrier_ok =
        leaving_count != 0 && map_.AllObservedAtLeast(barrier_version);

    // 4. Drain fragments: append to owned streams, stash the rest.
    const std::size_t drained = mesh_.Drain(logger_index, [&](std::uint64_t v) {
      const auto* f = reinterpret_cast<const FragmentMsg*>(v);
      // The producer's whole-slot write must happen-before this read (the
      // mesh indices are the edge); slot reuse is additionally ordered by
      // durable_epoch_ (see Producer::AllocSlot).
      hal::RaceCheck(f, sizeof(FragmentMsg), /*is_write=*/false, "wal.frag");
      const int p = static_cast<int>(f->hdr.partition);
      ORTHRUS_DCHECK(p >= 0 && p < partitions_);
      if (map_.ShardOwner(p) == me) {
        map_.shard(p)->AppendFragment(*f);
      } else {
        stash[static_cast<std::size_t>(p)].push_back(f);
        ++stashed_total;
      }
    });
    if (drained != 0) progress = true;

    // 5. Apply stashes for partitions we have (since) acquired.
    if (stashed_total != 0) {
      for (int p = 0; p < partitions_; ++p) {
        auto& s = stash[static_cast<std::size_t>(p)];
        if (s.empty() || map_.ShardOwner(p) != me) continue;
        for (const FragmentMsg* f : s) map_.shard(p)->AppendFragment(*f);
        stashed_total -= s.size();
        s.clear();
        progress = true;
      }
    }

    // 6. Complete handoffs: everything routed here under the old table has
    // been appended (barrier + this drain), so the streams can change
    // hands. The release-store publishes every appended byte to the new
    // owner.
    if (barrier_ok) {
      for (int p = 0; p < partitions_; ++p) {
        if (!leaving[p]) continue;
        map_.Relinquish(p, static_cast<std::uint64_t>(router.OwnerOf(p)));
        leaving[p] = 0;
        --leaving_count;
        progress = true;
      }
    }

    // 7. Seal owned streams at the candidate. The version re-check closes
    // the window between a table publish and our next Refresh: if the map
    // moved since we cached our view, a fragment with epoch <= candidate
    // could already be routed to the new owner, so we skip sealing this
    // quantum (the refresh above picks it up next time). Candidate was
    // computed before this check — see the handoff proof in wal.h.
    if (map_.version() == router.version()) {
      for (int p = 0; p < partitions_; ++p) {
        if (leaving[p] || map_.ShardOwner(p) != me) continue;
        PartitionLogBuffer* shard = map_.shard(p);
        if (candidate > shard->last_sealed) {
          shard->AppendSeal(candidate);
          shard->Sync();
          shard->last_sealed = candidate;
          sealed_[p].store(candidate);
          progress = true;
        }
      }
    }

    // 8. Global durable epoch (logger 0): the minimum sealed epoch across
    // all partition streams — an epoch is durable only when every stream
    // that could hold one of its fragments has sealed past it.
    if (logger_index == 0) {
      std::uint64_t durable = ~0ull;
      for (int p = 0; p < partitions_; ++p) {
        durable = std::min(durable, sealed_[p].load());
      }
      if (durable != 0 && durable != ~0ull && durable != last_durable) {
        durable_epoch_.store(durable);
        last_durable = durable;
        progress = true;
      }
    }

    // 9. Shutdown: all producers permanently retired (their pending
    // commits matured, which implies every fragment is sealed), nothing
    // drained, no stash, no handoff in flight.
    if (!progress && stashed_total == 0 && leaving_count == 0 &&
        retired == static_cast<std::uint64_t>(n_producers_)) {
      break;
    }

    if (progress) {
      idle.Reset();
      hal::CpuRelax();
    } else {
      idle.Idle();
    }
  }

  // Drop out of handoff barriers before exiting: a rotation published just
  // before the last producer retired can reach a peer logger *after* this
  // one's final Refresh, and that peer's relinquish barrier waits on every
  // router — an exited logger that still pins its last observed version
  // would wedge the peer forever.
  router.Deactivate();
}

// --- Producer ----------------------------------------------------------

Producer::Producer(GroupCommitLog* log, int producer_id,
                   runtime::WorkerContext* ctx)
    : log_(log),
      id_(producer_id),
      ctx_(ctx),
      arena_records_(log->opts_.arena_records),
      router_(&log->map_, producer_id),
      out_(&log->mesh_, /*shard_hint=*/producer_id),
      arena_(std::make_unique<FragmentMsg[]>(
          static_cast<std::size_t>(log->opts_.arena_records))) {
  ORTHRUS_CHECK(producer_id >= 0 && producer_id < log->n_producers_);
  Resume();
}

Producer::~Producer() {
  ORTHRUS_CHECK_MSG(retired_, "wal producer destroyed without Retire()");
}

FragmentMsg* Producer::AllocSlot() {
  for (int attempt = 0; attempt < 2; ++attempt) {
    for (int i = 0; i < arena_records_; ++i) {
      const int idx = (alloc_cursor_ + i) % arena_records_;
      FragmentMsg& f = arena_[static_cast<std::size_t>(idx)];
      // epoch 0 = never used; otherwise the slot is free once its epoch is
      // durable (the logger consumed and sealed it before granting that).
      if (f.hdr.epoch <= durable_cache_) {
        alloc_cursor_ = (idx + 1) % arena_records_;
        return &f;
      }
    }
    durable_cache_ = log_->durable_epoch_.load();
  }
  ORTHRUS_CHECK_MSG(false,
                    "wal fragment arena exhausted: AdmitReady gate violated");
  return nullptr;
}

void Producer::Capture(txn::Txn* t, storage::Database* db) {
  ORTHRUS_CHECK(active_);
  // The commit epoch, read while the transaction still holds its exclusive
  // locks: any dependent transaction acquires later and reads a later (or
  // equal) epoch, so epoch order respects dependency order.
  const std::uint64_t epoch = log_->epoch_.load();
  const storage::Partitioner& parts = db->partitioner();

  std::uint32_t writes_total = 0;
  for (const txn::Access& a : t->accesses) {
    if (a.mode == txn::LockMode::kExclusive) ++writes_total;
  }

  int nparts = 0;
  std::uint32_t plist[kMaxTxnFragments];
  FragmentMsg* frags[kMaxTxnFragments];
  hal::Cycles copy_cost = 0;

  for (const txn::Access& a : t->accesses) {
    if (a.mode != txn::LockMode::kExclusive) continue;
    const std::uint32_t p = static_cast<std::uint32_t>(parts.PartOf(a.key));
    int fi = -1;
    for (int i = 0; i < nparts; ++i) {
      if (plist[i] == p) {
        fi = i;
        break;
      }
    }
    if (fi < 0) {
      ORTHRUS_CHECK(nparts < kMaxTxnFragments);
      fi = nparts++;
      plist[fi] = p;
      FragmentMsg* f = AllocSlot();
      // Whole-slot write tag: reuse is only legal once the consuming
      // logger's epoch went durable, so any earlier logger read must be
      // ordered before this via durable_epoch_.
      hal::RaceCheck(f, sizeof(FragmentMsg), /*is_write=*/true, "wal.frag");
      f->hdr = FragmentDiskHeader{epoch,
                                  next_seq_,
                                  static_cast<std::uint32_t>(id_),
                                  p,
                                  writes_total,
                                  0};
      f->payload_bytes = 0;
      frags[fi] = f;
    }
    FragmentMsg* f = frags[fi];
    storage::Table* tbl = db->GetTable(a.table);
    const std::uint32_t len = tbl->row_bytes();
    const std::uint64_t slot = tbl->SlotOfRow(a.row);
    // Per-row version under the row's X lock: recovery replays
    // max-version-wins, which makes cross-fragment arrival order moot.
    std::uint64_t& ver = log_->row_versions_[a.table][slot];
    ++ver;
    const WriteImageHeader wh{a.table, len, slot, ver};
    const std::uint32_t padded = (len + 7u) & ~7u;
    ORTHRUS_CHECK_MSG(
        f->payload_bytes + sizeof(wh) + padded <= kMaxFragmentPayload,
        "wal fragment payload overflow: enlarge kMaxFragmentPayload");
    std::memcpy(f->payload + f->payload_bytes, &wh, sizeof(wh));
    std::uint8_t* img = f->payload + f->payload_bytes + sizeof(wh);
    if (padded != len) std::memset(img + len, 0, padded - len);
    std::memcpy(img, a.row, len);
    f->payload_bytes += static_cast<std::uint32_t>(sizeof(wh)) + padded;
    f->hdr.n_writes++;
    copy_cost += kCaptureCyclesPerLine * ((len + 63) / 64);
  }

  if (nparts == 0) {
    // Read-only commit: an empty fragment keeps this producer's durable
    // prefix dense, so recovery's per-producer counts (the resume credit)
    // see every commit, not just the writing ones.
    FragmentMsg* f = AllocSlot();
    hal::RaceCheck(f, sizeof(FragmentMsg), /*is_write=*/true, "wal.frag");
    const std::uint32_t p =
        t->accesses.empty()
            ? 0
            : static_cast<std::uint32_t>(parts.PartOf(t->accesses[0].key));
    f->hdr = FragmentDiskHeader{
        epoch, next_seq_, static_cast<std::uint32_t>(id_), p, 0, 0};
    f->payload_bytes = 0;
    plist[0] = p;
    frags[0] = f;
    nparts = 1;
  }

  for (int i = 0; i < nparts; ++i) {
    out_.Send(router_.OwnerOf(static_cast<int>(plist[i])),
              reinterpret_cast<std::uint64_t>(frags[i]));
    ctx_->stats.wal_fragments++;
  }
  outstanding_ += static_cast<std::uint64_t>(nparts);
  pending_.push_back(PendingCommit{epoch, t->start_cycles,
                                   static_cast<std::uint32_t>(nparts)});
  next_seq_++;
  hal::ConsumeCycles(copy_cost +
                     kFragmentOverheadCycles *
                         static_cast<hal::Cycles>(nparts));
}

void Producer::Mature() {
  if (pending_.empty()) return;
  durable_cache_ = log_->durable_epoch_.load();
  const hal::Cycles now = hal::Now();
  while (!pending_.empty() && pending_.front().epoch <= durable_cache_) {
    ctx_->stats.committed++;
    ctx_->stats.txn_latency.Record(now - pending_.front().start);
    outstanding_ -= pending_.front().fragments;
    pending_.pop_front();
  }
}

void Producer::Poll() {
  ORTHRUS_CHECK(active_);
  router_.Refresh();
  // Flush BEFORE publishing: the published epoch is the logger's proof
  // that every fragment of earlier epochs is already visible in its ring.
  out_.FlushAll();
  log_->published_[id_].store(log_->epoch_.load());
  Mature();
}

void Producer::Park() {
  ORTHRUS_CHECK(active_);
  ORTHRUS_CHECK_MSG(pending_.empty(), "wal Park with commits in flight");
  out_.FlushAll();
  ORTHRUS_CHECK(out_.Pending() == 0);
  log_->published_[id_].store(GroupCommitLog::kDonePublished);
  log_->mesh_.RetireSender();
  router_.Deactivate();
  active_ = false;
}

void Producer::Resume() {
  ORTHRUS_CHECK(!active_ && !retired_);
  log_->mesh_.RegisterSender();
  out_.Rebind();
  router_.Refresh();
  // Publish before any capture: the seal candidate is bounded by the
  // current epoch minus one only because a producer that can emit a
  // fragment at epoch e has published a value <= e beforehand.
  log_->published_[id_].store(log_->epoch_.load());
  active_ = true;
}

void Producer::Retire() {
  ORTHRUS_CHECK_MSG(pending_.empty(), "wal Retire with commits in flight");
  ORTHRUS_CHECK(!retired_);
  if (active_) Park();
  retired_ = true;
  log_->retired_.fetch_add(1);
}

// --- Recovery ----------------------------------------------------------

namespace {

struct TxnAccumulator {
  std::uint64_t epoch = 0;
  std::uint32_t writes_total = 0;
  std::uint32_t writes_seen = 0;
};

}  // namespace

RecoveryResult Recover(const std::vector<std::vector<std::uint8_t>>& logs,
                       int n_producers, storage::Database* db) {
  RecoveryResult r;
  r.durable_per_producer.assign(static_cast<std::size_t>(n_producers), 0);

  // Pass 1: frame validation (torn tails truncate at the first bad frame)
  // and the durable epoch: min over partitions of the largest sealed epoch.
  std::vector<std::size_t> valid_bytes(logs.size(), 0);
  std::uint64_t durable = ~0ull;
  for (std::size_t p = 0; p < logs.size(); ++p) {
    const std::vector<std::uint8_t>& log = logs[p];
    std::uint64_t sealed = 0;
    std::size_t off = 0;
    while (off + kFrameHeaderBytes <= log.size()) {
      std::uint32_t len = 0;
      std::uint32_t kind = 0;
      std::uint64_t check = 0;
      std::memcpy(&len, log.data() + off, 4);
      std::memcpy(&kind, log.data() + off + 4, 4);
      std::memcpy(&check, log.data() + off + 8, 8);
      if ((kind != kFragmentFrame && kind != kSealFrame) ||
          off + kFrameHeaderBytes + len > log.size() ||
          FrameCheck(kind, log.data() + off + kFrameHeaderBytes, len) !=
              check) {
        break;  // torn or corrupt: discard this frame and everything after
      }
      if (kind == kSealFrame && len == sizeof(std::uint64_t)) {
        std::uint64_t e = 0;
        std::memcpy(&e, log.data() + off + kFrameHeaderBytes, 8);
        sealed = std::max(sealed, e);
      }
      off += kFrameHeaderBytes + len;
    }
    valid_bytes[p] = off;
    if (off < log.size()) r.frames_dropped++;
    durable = std::min(durable, sealed);
  }
  if (logs.empty() || durable == ~0ull) durable = 0;
  r.durable_epoch = durable;

  // Pass 2: replay fragments with epoch <= durable, max-version-wins, and
  // account per-producer durable prefixes.
  std::vector<std::vector<std::uint64_t>> applied(db->num_tables());
  for (std::size_t t = 0; t < db->num_tables(); ++t) {
    applied[t].assign(
        db->GetTable(static_cast<std::uint32_t>(t))->capacity(), 0);
  }
  std::map<std::pair<std::uint32_t, std::uint64_t>, TxnAccumulator> txns;

  for (std::size_t p = 0; p < logs.size(); ++p) {
    const std::vector<std::uint8_t>& log = logs[p];
    std::size_t off = 0;
    while (off < valid_bytes[p]) {
      std::uint32_t len = 0;
      std::uint32_t kind = 0;
      std::memcpy(&len, log.data() + off, 4);
      std::memcpy(&kind, log.data() + off + 4, 4);
      const std::uint8_t* payload = log.data() + off + kFrameHeaderBytes;
      off += kFrameHeaderBytes + len;
      if (kind != kFragmentFrame) continue;
      ORTHRUS_CHECK(len >= sizeof(FragmentDiskHeader));
      FragmentDiskHeader hdr;
      std::memcpy(&hdr, payload, sizeof(hdr));
      if (hdr.epoch > durable) {
        r.fragments_skipped++;
        continue;
      }
      ORTHRUS_CHECK(hdr.producer < static_cast<std::uint32_t>(n_producers));
      TxnAccumulator& acc = txns[{hdr.producer, hdr.producer_seq}];
      if (acc.writes_seen == 0 && acc.epoch == 0) {
        acc.epoch = hdr.epoch;
        acc.writes_total = hdr.txn_writes_total;
      } else {
        ORTHRUS_CHECK_MSG(acc.epoch == hdr.epoch &&
                              acc.writes_total == hdr.txn_writes_total,
                          "wal recovery: inconsistent fragments for one txn");
      }
      acc.writes_seen += hdr.n_writes;

      const std::uint8_t* w = payload + sizeof(FragmentDiskHeader);
      const std::uint8_t* end = payload + len;
      for (std::uint32_t i = 0; i < hdr.n_writes; ++i) {
        ORTHRUS_CHECK(w + sizeof(WriteImageHeader) <= end);
        WriteImageHeader wh;
        std::memcpy(&wh, w, sizeof(wh));
        const std::uint32_t padded = (wh.len + 7u) & ~7u;
        ORTHRUS_CHECK(w + sizeof(WriteImageHeader) + padded <= end);
        ORTHRUS_CHECK(wh.table < db->num_tables());
        storage::Table* tbl = db->GetTable(wh.table);
        ORTHRUS_CHECK(wh.slot < tbl->capacity());
        ORTHRUS_CHECK(wh.len == tbl->row_bytes());
        std::uint64_t& av = applied[wh.table][wh.slot];
        if (wh.version > av) {
          void* dst = tbl->RowBySlot(wh.slot);
          // Recovery owns the database exclusively (post-join, or a fresh
          // database before any engine run); all other recovery state —
          // frame offsets, the applied-version matrix, the accumulator map
          // — is function-local. Tagging the one shared-structure write
          // (the row image) turns an engine run racing Recover on the same
          // database into a detector report.
          hal::RaceCheck(dst, wh.len, /*is_write=*/true, "wal.recover.row");
          std::memcpy(dst, w + sizeof(WriteImageHeader), wh.len);
          av = wh.version;
          r.writes_applied++;
        }
        w += sizeof(WriteImageHeader) + padded;
      }
    }
  }

  // Per-producer accounting: the durable transactions of each producer must
  // be complete (every fragment present — the seal contract) and form a
  // dense prefix of its commit order (epochs are monotone per producer).
  std::vector<std::uint64_t> max_seq(static_cast<std::size_t>(n_producers),
                                     0);
  std::vector<bool> any(static_cast<std::size_t>(n_producers), false);
  for (const auto& [key, acc] : txns) {
    ORTHRUS_CHECK_MSG(acc.writes_seen == acc.writes_total,
                      "wal recovery: durable epoch covers an incomplete txn");
    r.txns_replayed++;
    const std::size_t prod = key.first;
    max_seq[prod] = std::max(max_seq[prod], key.second);
    any[prod] = true;
    r.durable_per_producer[prod]++;
  }
  for (int i = 0; i < n_producers; ++i) {
    const std::size_t s = static_cast<std::size_t>(i);
    ORTHRUS_CHECK_MSG(
        !any[s] || r.durable_per_producer[s] == max_seq[s] + 1,
        "wal recovery: durable transactions are not a dense prefix");
  }
  return r;
}

}  // namespace orthrus::wal
