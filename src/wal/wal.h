// Crash-consistent durability: a per-partition redo log with group commit.
//
// The paper's separation of concurrency control from execution maps onto
// logging the same way it maps onto locking: partition the log by lock-space
// partition, give each partition's stream exactly one owner at a time, and
// move everything across cores by message passing. Concretely:
//
//  * Commit paths emit *fragments* — the transaction's after-images grouped
//    by lock-space partition — as pointer messages over an mp::MultiMesh to
//    a dedicated logger role (runtime::WorkerRole::kLogger). Sender-side
//    staging (mp::MultiSendBuffer) is the group-commit batching we already
//    have for lock traffic, reused verbatim.
//
//  * Commit ordering uses Silo-style epochs (Tu et al., SOSP'13): a global
//    epoch counter advances on a virtual-time interval; every committing
//    transaction reads the epoch *while still holding its exclusive locks*,
//    so epoch order respects dependency order (if T2 read T1's writes, T2
//    acquired after T1's release and read an epoch >= T1's). Durability is
//    granted to whole epochs, which makes the durable set dependency-closed
//    — no committed-but-durable transaction can depend on a lost one.
//
//  * Replay order inside an epoch is reconstructed from per-row version
//    counters, bumped under the row's X lock at capture time: recovery
//    applies an after-image iff its version exceeds the row's last applied
//    version (max-version-wins), so fragments can be replayed in any order,
//    any number of times, with the same result.
//
//  * A transaction's commit is *acknowledged* (counted, latency-stamped)
//    only once its epoch is durable: every partition log it could have
//    touched has appended a seal frame for that epoch and synced to stable
//    storage (hal::Platform::OnStorageSync models the fsync cost; see
//    SimConfig::storage_sync_base_cycles). Workers pipeline: they keep
//    executing while earlier commits await their group commit, bounded by
//    the fragment arena (backpressure instead of unbounded buffering).
//
//  * Log-stream ownership lives in a lock::SpaceMap<PartitionLogBuffer>:
//    the same publish / observe-barrier / relinquish protocol that moves
//    lock partitions across CC threads moves log partitions across loggers
//    (DurabilityOptions::rebalance_epochs exercises it), so elastic scaling
//    and durability compose.
//
// Frame format (per partition log, byte stream):
//   [u32 payload_len][u32 kind][u64 fnv_check][payload]
// kinds: kFragmentFrame (one transaction's writes for one partition),
// kSealFrame (epoch seal: every fragment of epochs <= e for this partition
// precedes this frame). Torn tails truncate at the first bad frame.
// Recovery computes the durable epoch D = min over partitions of the
// largest sealed epoch, replays exactly the fragments with epoch <= D, and
// reports per-producer durable transaction counts (a prefix of each
// producer's commit order — epochs are monotone per producer).
#ifndef ORTHRUS_WAL_WAL_H_
#define ORTHRUS_WAL_WAL_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "common/macros.h"
#include "hal/hal.h"
#include "lock/space_map.h"
#include "mp/multi_mesh.h"
#include "mp/send_buffer.h"
#include "runtime/worker_pool.h"
#include "storage/database.h"
#include "txn/txn.h"

namespace orthrus::wal {

struct DurabilityOptions {
  // Dedicated logger workers (extra cores past the engine's txn workers).
  int loggers = 1;

  // Epoch length: the group-commit interval. Commit-ack latency is one to
  // two epochs; every partition log syncs at most once per epoch.
  double group_commit_seconds = 20e-6;

  // Fragment arena slots per producer. A slot is reusable once its epoch is
  // durable, so this bounds a producer's pipelined (committed-not-durable)
  // transactions; admission stalls when fewer than kMaxTxnFragments slots
  // are free — backpressure, not unbounded buffering.
  int arena_records = 192;

  // Test knob: every N epochs, rotate partition-log ownership across the
  // loggers through the lock::SpaceMap handoff protocol (0 = never).
  std::uint64_t rebalance_epochs = 0;
};

// Upper bound on fragments one transaction can emit (one per touched
// partition), matching the ORTHRUS engine's per-transaction access cap with
// headroom. Admission reserves this many arena slots per in-flight txn.
inline constexpr int kMaxTxnFragments = 48;

// Payload bytes per fragment: write-image headers plus row after-images.
inline constexpr std::size_t kMaxFragmentPayload = 4096;

enum FrameKind : std::uint32_t {
  kFragmentFrame = 1,
  kSealFrame = 2,
};

// One write's after-image inside a fragment payload: header, then `len`
// bytes of row payload padded to 8-byte alignment.
struct WriteImageHeader {
  std::uint32_t table;
  std::uint32_t len;
  std::uint64_t slot;     // row slot (stable across reload; pointers die)
  std::uint64_t version;  // per-row version, bumped under the row's X lock
};

// On-log fragment header (start of a kFragmentFrame payload).
struct FragmentDiskHeader {
  std::uint64_t epoch;
  std::uint64_t producer_seq;       // txn index within the producer, from 0
  std::uint32_t producer;
  std::uint32_t partition;
  std::uint32_t txn_writes_total;   // across all the txn's fragments
  std::uint32_t n_writes;           // in this fragment
};

// In-memory fragment record: one arena slot. The pointer is the mesh
// message; the slot is free for reuse once its epoch is durable (the logger
// has, by then, copied it into the partition log and synced).
struct FragmentMsg {
  FragmentDiskHeader hdr{};
  std::uint32_t payload_bytes = 0;
  std::uint8_t payload[kMaxFragmentPayload];
};

// FNV-1a over (kind, len, payload), the frame checksum. Shared with
// recovery so torn-tail detection and the writer can never drift.
std::uint64_t FrameCheck(std::uint32_t kind, const std::uint8_t* payload,
                         std::uint32_t len);

// A stable-storage sync point: everything up to `stable_bytes` was durable
// once the sync completed at `completed_at`. Crash injection truncates a
// log to the largest watermark at or before the kill time.
struct SyncPoint {
  std::uint64_t stable_bytes = 0;
  hal::Cycles completed_at = 0;
};

// One partition's redo-log stream. Owner-private plain memory: exactly one
// logger appends at a time, and ownership transfers carry a release/acquire
// pair (lock::SpaceMap::Relinquish / ShardOwner), so the successor sees
// every byte its predecessor wrote.
class PartitionLogBuffer {
 public:
  PartitionLogBuffer() { bytes_.reserve(1 << 16); }

  void AppendFrame(std::uint32_t kind, const std::uint8_t* payload,
                   std::uint32_t len);
  void AppendFragment(const FragmentMsg& frag);
  void AppendSeal(std::uint64_t epoch);

  // Forces unsynced bytes to stable storage (modeled device latency) and
  // records the sync point. Called when a seal frame lands.
  void Sync();

  std::uint64_t last_sealed = 0;  // owner-private seal cursor

  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  const std::vector<SyncPoint>& syncs() const { return syncs_; }
  std::uint64_t synced_bytes() const { return synced_bytes_; }

  // The on-disk image had the process been killed at virtual time `t`:
  // the prefix covered by the last sync completed at or before `t`.
  std::vector<std::uint8_t> CrashImageAt(hal::Cycles t) const;

 private:
  std::vector<std::uint8_t> bytes_;
  std::vector<SyncPoint> syncs_;
  std::uint64_t synced_bytes_ = 0;
  hal::StorageMeta device_;  // the stream's modeled log device
};

class Producer;

// The shared durability state for one engine run: the epoch clock, the
// fragment mesh, partition-log ownership, per-producer published epochs,
// per-partition sealed epochs, and the global durable epoch. Construct
// before Run (off-core); producers and loggers attach from their cores.
class GroupCommitLog {
 public:
  // Sentinel published by a producer that has parked or retired: it will
  // emit nothing until it publishes a real epoch again, so it never holds
  // the seal candidate back.
  static constexpr std::uint64_t kDonePublished = ~0ull;

  // Partitions = db->partitioner().n (the lock-space partitioning every
  // engine already routes by). Producer ids must be dense in
  // [0, n_producers).
  GroupCommitLog(const DurabilityOptions& opts, storage::Database* db,
                 int n_producers);

  GroupCommitLog(const GroupCommitLog&) = delete;
  GroupCommitLog& operator=(const GroupCommitLog&) = delete;

  int n_producers() const { return n_producers_; }
  int loggers() const { return opts_.loggers; }
  int partitions() const { return partitions_; }
  const DurabilityOptions& options() const { return opts_; }

  // Logger worker body: drains fragments into owned partition logs, seals
  // epochs, syncs, publishes durability. Logger 0 additionally advances the
  // epoch clock and the global durable epoch, and drives rebalances. Runs
  // until every producer has retired and all streams are settled.
  void RunLogger(int logger_index, runtime::WorkerContext* ctx);

  // Snapshot tie-in: when set, logger 0 ticks this commit-epoch clock
  // (storage/epoch_clock.h) on the same cadence as — and immediately after
  // — each WAL epoch advance, so the snapshot read epoch rides the group
  // commit interval instead of needing worker-driven ticks. The WAL epoch
  // counter and the snapshot commit epoch remain separate counters (the
  // redo log's max-version-wins replay never consults version slabs, which
  // are runtime-only state reseeded from the recovered main slab by
  // Database::EnableSnapshotVersions). Call before Run, off-core.
  void set_epoch_clock(storage::EpochClock* clock) { epoch_clock_ = clock; }

  // --- post-run / test inspection (off-core) ---------------------------

  std::uint64_t DurableEpochRaw() const { return durable_epoch_.RawLoad(); }
  std::uint64_t EpochRaw() const { return epoch_.RawLoad(); }
  PartitionLogBuffer* log(int p) { return map_.shard(p); }

  // Per-partition log images: as-is (clean shutdown) or as-if killed at
  // virtual time `t` (truncated to each stream's last durable sync).
  std::vector<std::vector<std::uint8_t>> FinalImages();
  std::vector<std::vector<std::uint8_t>> CrashImagesAt(hal::Cycles t);

  // Unmodeled teardown assertion: nothing left in flight.
  std::size_t MeshBacklogRaw() const { return mesh_.SizeRawTotal(); }

 private:
  friend class Producer;

  DurabilityOptions opts_;
  storage::Database* db_;
  int n_producers_;
  int partitions_;

  storage::EpochClock* epoch_clock_ = nullptr;   // optional snapshot clock

  hal::Atomic<std::uint64_t> epoch_{0};          // seeded to 1 in ctor
  hal::Atomic<std::uint64_t> durable_epoch_{0};
  hal::Atomic<std::uint64_t> retired_{0};
  std::unique_ptr<hal::Atomic<std::uint64_t>[]> published_;  // per producer
  std::unique_ptr<hal::Atomic<std::uint64_t>[]> sealed_;     // per partition

  lock::SpaceMap<PartitionLogBuffer> map_;
  mp::MultiMesh<std::uint64_t> mesh_;  // FragmentMsg* as u64, to loggers
  std::vector<std::uint32_t> base_owners_;

  // Per-(table, slot) version counters, bumped under the row's X lock at
  // capture. Plain memory: the X lock serializes writers of a row.
  std::vector<std::vector<std::uint64_t>> row_versions_;
};

// A committing worker's attachment to the GroupCommitLog: fragment arena,
// send staging, routing view, pending (committed-not-yet-durable) queue.
// One per producer, constructed on the producer's own core.
class Producer {
 public:
  Producer(GroupCommitLog* log, int producer_id, runtime::WorkerContext* ctx);
  ~Producer();

  Producer(const Producer&) = delete;
  Producer& operator=(const Producer&) = delete;

  // True when the arena can absorb `reserve_txns` whole transactions. Gate
  // admission on this: Capture itself never blocks (it runs under locks).
  // Sequential drivers reserve for the one transaction they are about to
  // admit; pipelined engines must reserve for every admitted-but-not-yet-
  // captured transaction too, since each of those will Capture when its
  // grant arrives regardless of arena pressure.
  bool AdmitReady(std::uint64_t reserve_txns = 1) const {
    return outstanding_ + reserve_txns * kMaxTxnFragments <=
           static_cast<std::uint64_t>(arena_records_);
  }

  // Called with the transaction's exclusive locks still held, after its
  // logic succeeded: reads the commit epoch, copies the after-images into
  // per-partition fragments, stages them toward their partition's logger,
  // and queues the commit as pending. The driver acknowledges it (counts
  // committed, records latency) when the epoch turns durable.
  void Capture(txn::Txn* t, storage::Database* db);

  // Quantum maintenance: refresh routing, flush staged fragments, publish
  // the epoch heartbeat, acknowledge matured commits into ctx->stats. Call
  // once per driver iteration / scheduling quantum.
  void Poll();

  std::uint64_t PendingCount() const { return pending_.size(); }
  bool Drained() const { return pending_.empty(); }

  // Permanent exit: requires Drained(). Flushes, publishes the done
  // sentinel, retires from the mesh, deactivates the router, and counts
  // toward logger shutdown.
  void Retire();

  // Elastic park/resume (ORTHRUS exec threads): Park is Retire without the
  // shutdown count; Resume re-registers and resumes heartbeats.
  void Park();
  void Resume();

 private:
  FragmentMsg* AllocSlot();
  void Mature();

  struct PendingCommit {
    std::uint64_t epoch;
    hal::Cycles start;
    std::uint32_t fragments;
  };

  GroupCommitLog* log_;
  int id_;
  runtime::WorkerContext* ctx_;
  int arena_records_;
  lock::LockSpaceRouter<PartitionLogBuffer> router_;
  mp::MultiSendBuffer<std::uint64_t> out_;
  std::unique_ptr<FragmentMsg[]> arena_;
  int alloc_cursor_ = 0;
  std::uint64_t outstanding_ = 0;  // arena slots not yet durable
  std::uint64_t next_seq_ = 0;
  std::uint64_t durable_cache_ = 0;
  std::deque<PendingCommit> pending_;
  bool active_ = false;
  bool retired_ = false;
};

// --- Recovery ----------------------------------------------------------

struct RecoveryResult {
  std::uint64_t durable_epoch = 0;
  std::uint64_t txns_replayed = 0;
  std::uint64_t writes_applied = 0;
  std::uint64_t frames_dropped = 0;      // torn/corrupt tail frames
  std::uint64_t fragments_skipped = 0;   // intact but past the durable epoch
  std::vector<std::uint64_t> durable_per_producer;
};

// Replays per-partition log images into `db`, which must be freshly loaded
// by the same deterministic loader as the original run (slot numbers are
// the row addresses). Handles torn tails (truncate at the first bad frame)
// and applies after-images max-version-wins, so replay is idempotent and
// order-independent. durable_per_producer[p] is the length of producer p's
// durable commit prefix — the resume credit for a post-crash run.
RecoveryResult Recover(const std::vector<std::vector<std::uint8_t>>& logs,
                       int n_producers, storage::Database* db);

}  // namespace orthrus::wal

#endif  // ORTHRUS_WAL_WAL_H_
