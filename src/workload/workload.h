// Workload abstraction: loads data and produces per-worker transaction
// streams. Sources are deterministic functions of (workload seed, worker
// id), so runs are reproducible across engines and platforms.
#ifndef ORTHRUS_WORKLOAD_WORKLOAD_H_
#define ORTHRUS_WORKLOAD_WORKLOAD_H_

#include <memory>
#include <string>

#include "storage/database.h"
#include "txn/txn.h"

namespace orthrus::workload {

// Per-worker transaction stream. Next() fills parameters and logic; the
// engine then plans the access set (txn::OllpPlan), which may involve
// reconnaissance reads.
class TxnSource {
 public:
  virtual ~TxnSource() = default;
  virtual void Next(txn::Txn* t) = 0;
};

class Workload {
 public:
  virtual ~Workload() = default;

  // Populates `db` with tables and rows. `num_table_partitions` > 1 builds
  // physically partitioned ("split") indexes, used by Partitioned-store and
  // the SPLIT engine variants; the database's partitioner is configured to
  // match.
  virtual void Load(storage::Database* db, int num_table_partitions) = 0;

  virtual std::unique_ptr<TxnSource> MakeSource(int worker_id) const = 0;

  virtual std::string name() const = 0;
};

}  // namespace orthrus::workload

#endif  // ORTHRUS_WORKLOAD_WORKLOAD_H_
