// Named YCSB configurations from the paper's appendix (Figures 11 and 12):
// 10-operation transactions over a single 10M x 1000B table (scaled down by
// default; see DESIGN.md), read-only or read-modify-write, under low
// contention (all keys uniform) or high contention (2 keys from a 64-record
// hot set, acquired first). ORTHRUS placement variants: single partition,
// dual partition, or random.
#ifndef ORTHRUS_WORKLOAD_YCSB_H_
#define ORTHRUS_WORKLOAD_YCSB_H_

#include <memory>

#include "workload/micro.h"

namespace orthrus::workload {

enum class YcsbContention { kLow, kHigh };
enum class YcsbOp { kReadOnly, kRmw };
enum class YcsbPlacement { kSingle, kDual, kRandom };

struct YcsbSpec {
  YcsbContention contention = YcsbContention::kLow;
  YcsbOp op = YcsbOp::kRmw;
  YcsbPlacement placement = YcsbPlacement::kRandom;
  int num_partitions = 1;        // the engine's partition universe
  bool local_affinity = false;   // H-Store-style home-partition execution
  std::uint64_t num_records = 100000;
  std::uint32_t row_bytes = 100;
  std::uint64_t hot_records = 64;  // paper's appendix setting
  std::uint64_t seed = 42;
};

// Materializes the KvConfig for a YCSB spec.
KvConfig MakeYcsbConfig(const YcsbSpec& spec);

std::unique_ptr<KvWorkload> MakeYcsbWorkload(const YcsbSpec& spec);

}  // namespace orthrus::workload

#endif  // ORTHRUS_WORKLOAD_YCSB_H_
