// TPC-C stored procedures: NewOrder and Payment (Section 4.4).
//
// Locking footprint (matching the paper's description):
//   NewOrder: S(warehouse), X(district), S(customer), X(stock) per line.
//             Item reads are unlocked (read-only table). Order / NewOrder /
//             OrderLine inserts go to per-district rings whose slot is
//             derived from next_o_id, which the district X lock guards.
//   Payment:  X(warehouse), X(district), X(customer). 60% of Payments find
//             the customer through the last-name secondary index; that read
//             happens in OLLP reconnaissance (BuildAccessSet) and is
//             re-validated under locks in Run, aborting on a stale match.
#include "workload/tpcc/tpcc_workload.h"

#include <algorithm>

#include "common/macros.h"
#include "hal/hal.h"

namespace orthrus::workload::tpcc {

namespace {

// Declares a locked row access to the simulator's race detector before
// handing out the typed pointer. `is_write` mirrors the lock mode the
// access set annotated for this row; the detector then proves the engine's
// grant/release protocol actually orders conflicting accesses. The OLLP
// reconnaissance reads in BuildAccessSet are *not* checked: they are
// deliberately unsynchronized estimates, re-validated under locks in Run.
template <typename Row>
Row* CheckedRow(void* row, bool is_write, const char* label) {
  hal::RaceCheck(row, sizeof(Row), is_write, label);
  return static_cast<Row*>(row);
}

template <typename Row>
const Row* CheckedRowRead(const void* row, const char* label) {
  hal::RaceCheck(row, sizeof(Row), /*is_write=*/false, label);
  return static_cast<const Row*>(row);
}

class NewOrderLogic final : public txn::TxnLogic {
 public:
  explicit NewOrderLogic(TpccAux* aux) : aux_(aux) {}

  void BuildAccessSet(txn::Txn* t, storage::Database* /*db*/) override {
    const NewOrderParams* p = t->Params<NewOrderParams>();
    t->accesses.reserve(3 + p->ol_cnt);
    t->accesses.push_back({kWarehouse, txn::LockMode::kShared,
                           WarehouseKey(p->w), nullptr});
    t->accesses.push_back({kDistrict, txn::LockMode::kExclusive,
                           DistrictKey(p->w, p->d), nullptr});
    t->accesses.push_back({kCustomer, txn::LockMode::kShared,
                           CustomerKey(p->w, p->d, p->c), nullptr});
    for (int j = 0; j < p->ol_cnt; ++j) {
      t->accesses.push_back({kStock, txn::LockMode::kExclusive,
                             StockKey(p->supply_w[j], p->item_id[j]),
                             nullptr});
    }
  }

  bool Run(txn::Txn* t, const txn::ExecContext& ctx) override {
    const NewOrderParams* p = t->Params<NewOrderParams>();
    storage::Table* items = ctx.db->GetTable(kItem);
    const hal::Cycles row_op =
        items->cost_model().op_compute_cycles;

    auto* wr = CheckedRow<WarehouseRow>(
        t->RowFor(kWarehouse, WarehouseKey(p->w)), /*is_write=*/false,
        "tpcc.warehouse");
    auto* dr = CheckedRow<DistrictRow>(
        t->RowFor(kDistrict, DistrictKey(p->w, p->d)), /*is_write=*/true,
        "tpcc.district");
    [[maybe_unused]] auto* cr = CheckedRow<CustomerRow>(
        t->RowFor(kCustomer, CustomerKey(p->w, p->d, p->c)),
        /*is_write=*/false, "tpcc.customer");
    ORTHRUS_DCHECK(wr != nullptr && dr != nullptr && cr != nullptr);

    ctx.ChargeOp(ctx.db->GetTable(kWarehouse)->RowAccessCost() + row_op);
    ctx.ChargeOp(ctx.db->GetTable(kDistrict)->RowAccessCost() + row_op);
    ctx.ChargeOp(ctx.db->GetTable(kCustomer)->RowAccessCost() + row_op);

    // Allocate the order id under the district X lock.
    const std::uint32_t o_id = dr->next_o_id++;
    const int ring = aux_->DistrictIndex(p->w, p->d);
    const int cap = aux_->scale.order_ring_capacity;
    const int slot = static_cast<int>(o_id % static_cast<std::uint32_t>(cap));

    std::uint64_t total = 0;
    std::uint32_t all_local = 1;
    std::uint64_t qty_sum = 0;
    for (int j = 0; j < p->ol_cnt; ++j) {
      // Item price: unlocked read of the read-only Item table.
      const auto* ir = static_cast<const ItemRow*>(
          ctx.charge_cycles ? items->Lookup(ItemKey(p->item_id[j]))
                            : items->LookupRaw(ItemKey(p->item_id[j])));
      ORTHRUS_DCHECK(ir != nullptr);
      auto* sr = CheckedRow<StockRow>(
          t->RowFor(kStock, StockKey(p->supply_w[j], p->item_id[j])),
          /*is_write=*/true, "tpcc.stock");
      ORTHRUS_DCHECK(sr != nullptr);
      ctx.ChargeOp(ctx.db->GetTable(kStock)->RowAccessCost() + row_op);

      const std::uint32_t qty = static_cast<std::uint32_t>(p->quantity[j]);
      if (sr->quantity >= qty + 10) {
        sr->quantity -= qty;
      } else {
        sr->quantity = sr->quantity + 91 - qty;  // spec's restock rule
      }
      sr->ytd += qty;
      sr->order_cnt++;
      if (p->supply_w[j] != p->w) {
        sr->remote_cnt++;
        all_local = 0;
      }
      qty_sum += qty;

      const std::uint64_t amount =
          static_cast<std::uint64_t>(qty) * ir->price_cents;
      total += amount;
      OrderLineRec& ol =
          aux_->order_lines[ring][static_cast<std::size_t>(slot) *
                                      aux_->scale.max_items_per_order +
                                  j];
      hal::RaceCheck(&ol, sizeof(ol), /*is_write=*/true, "tpcc.orderline_ring");
      ol.i_id = static_cast<std::uint32_t>(p->item_id[j]);
      ol.supply_w = static_cast<std::uint32_t>(p->supply_w[j]);
      ol.quantity = qty;
      ol.amount_cents = static_cast<std::uint32_t>(amount);
    }

    // Apply warehouse + district tax.
    total = total * (10000 + wr->tax_bp + dr->tax_bp) / 10000;

    OrderRec& order = aux_->orders[ring][slot];
    hal::RaceCheck(&order, sizeof(order), /*is_write=*/true,
                   "tpcc.order_ring");
    order.o_id = o_id;
    order.c_id = static_cast<std::uint32_t>(p->c);
    order.ol_cnt = static_cast<std::uint32_t>(p->ol_cnt);
    order.all_local = all_local;
    order.total_cents = total;
    ctx.ChargeOp(2 * row_op);  // order + new-order inserts

    TpccTallies::Tally& tally = aux_->tallies.per_core[hal::CoreId() & 127];
    tally.neworders++;
    tally.ordered_qty += qty_sum;
    return true;
  }

 private:
  TpccAux* aux_;
};

class PaymentLogic final : public txn::TxnLogic {
 public:
  explicit PaymentLogic(TpccAux* aux) : aux_(aux) {}

  bool NeedsReconnaissance() const override { return true; }

  void BuildAccessSet(txn::Txn* t, storage::Database* /*db*/) override {
    PaymentParams* p = t->Params<PaymentParams>();
    if (p->by_last_name) {
      // OLLP reconnaissance: unlocked secondary-index read yielding an
      // *estimate* of the customer key (Section 3.2).
      const std::uint64_t est = aux_->customers_by_name.LookupMidpoint(
          LastNameAttr(p->c_w, p->c_d, p->name_code));
      ORTHRUS_CHECK_MSG(est != storage::SecondaryIndex::kNoMatch,
                        "last-name lookup found no customer");
      p->resolved_c_key = est;
    } else {
      p->resolved_c_key = CustomerKey(p->c_w, p->c_d, p->c);
    }
    t->accesses.reserve(3);
    t->accesses.push_back({kWarehouse, txn::LockMode::kExclusive,
                           WarehouseKey(p->w), nullptr});
    t->accesses.push_back({kDistrict, txn::LockMode::kExclusive,
                           DistrictKey(p->w, p->d), nullptr});
    t->accesses.push_back(
        {kCustomer, txn::LockMode::kExclusive, p->resolved_c_key, nullptr});
  }

  bool Run(txn::Txn* t, const txn::ExecContext& ctx) override {
    const PaymentParams* p = t->Params<PaymentParams>();
    const hal::Cycles row_op =
        ctx.db->GetTable(kWarehouse)->cost_model().op_compute_cycles;

    // Validate the OLLP estimate before any write: if the index now points
    // at a different customer, the access annotation is stale and the
    // engine must re-plan.
    if (p->by_last_name) {
      const std::uint64_t now = aux_->customers_by_name.LookupMidpoint(
          LastNameAttr(p->c_w, p->c_d, p->name_code));
      if (now != p->resolved_c_key) return false;
    }

    auto* wr = CheckedRow<WarehouseRow>(
        t->RowFor(kWarehouse, WarehouseKey(p->w)), /*is_write=*/true,
        "tpcc.warehouse");
    auto* dr = CheckedRow<DistrictRow>(
        t->RowFor(kDistrict, DistrictKey(p->w, p->d)), /*is_write=*/true,
        "tpcc.district");
    auto* cr = CheckedRow<CustomerRow>(t->RowFor(kCustomer, p->resolved_c_key),
                                       /*is_write=*/true, "tpcc.customer");
    ORTHRUS_DCHECK(wr != nullptr && dr != nullptr && cr != nullptr);

    ctx.ChargeOp(ctx.db->GetTable(kWarehouse)->RowAccessCost() + row_op);
    ctx.ChargeOp(ctx.db->GetTable(kDistrict)->RowAccessCost() + row_op);
    ctx.ChargeOp(ctx.db->GetTable(kCustomer)->RowAccessCost() + row_op);

    const std::uint64_t amount =
        static_cast<std::uint64_t>(p->amount_cents);
    wr->ytd_cents += amount;
    dr->ytd_cents += amount;
    cr->balance_cents -= static_cast<std::int64_t>(amount);
    cr->ytd_payment_cents += amount;
    cr->payment_cnt++;

    // History insert, guarded by the district X lock.
    const int ring = aux_->DistrictIndex(p->w, p->d);
    const int cap = aux_->scale.order_ring_capacity;
    HistoryRec& h =
        aux_->history[ring][dr->history_cnt % static_cast<std::uint32_t>(cap)];
    hal::RaceCheck(&h, sizeof(h), /*is_write=*/true, "tpcc.history_ring");
    dr->history_cnt++;
    h.amount_cents = amount;
    h.c_w = static_cast<std::uint32_t>(p->c_w);
    h.c_d = static_cast<std::uint32_t>(p->c_d);
    h.c_id = static_cast<std::uint32_t>(p->resolved_c_key & 0xFFFFF);
    ctx.ChargeOp(row_op);

    TpccTallies::Tally& tally = aux_->tallies.per_core[hal::CoreId() & 127];
    tally.payments++;
    tally.payment_cents += amount;
    return true;
  }

 private:
  TpccAux* aux_;
};

// OrderStatus (extension beyond the paper's subset): read-only query of a
// customer's balance and most recent order. S locks on the district (pins
// the order ring against concurrent inserts/deliveries) and the customer;
// 60% locate the customer by last name (OLLP, like Payment).
class OrderStatusLogic final : public txn::TxnLogic {
 public:
  explicit OrderStatusLogic(TpccAux* aux) : aux_(aux) {}

  bool NeedsReconnaissance() const override { return true; }

  void BuildAccessSet(txn::Txn* t, storage::Database* /*db*/) override {
    OrderStatusParams* p = t->Params<OrderStatusParams>();
    if (p->by_last_name) {
      const std::uint64_t est = aux_->customers_by_name.LookupMidpoint(
          LastNameAttr(p->w, p->d, p->name_code));
      ORTHRUS_CHECK_MSG(est != storage::SecondaryIndex::kNoMatch,
                        "last-name lookup found no customer");
      p->resolved_c_key = est;
    } else {
      p->resolved_c_key = CustomerKey(p->w, p->d, p->c);
    }
    t->accesses.push_back({kDistrict, txn::LockMode::kShared,
                           DistrictKey(p->w, p->d), nullptr});
    t->accesses.push_back(
        {kCustomer, txn::LockMode::kShared, p->resolved_c_key, nullptr});
  }

  bool Run(txn::Txn* t, const txn::ExecContext& ctx) override {
    const OrderStatusParams* p = t->Params<OrderStatusParams>();
    const hal::Cycles row_op =
        ctx.db->GetTable(kCustomer)->cost_model().op_compute_cycles;
    if (p->by_last_name) {
      const std::uint64_t now = aux_->customers_by_name.LookupMidpoint(
          LastNameAttr(p->w, p->d, p->name_code));
      if (now != p->resolved_c_key) return false;  // stale OLLP estimate
    }
    const auto* dr = CheckedRowRead<DistrictRow>(
        t->RowFor(kDistrict, DistrictKey(p->w, p->d)), "tpcc.district");
    const auto* cr = CheckedRowRead<CustomerRow>(
        t->RowFor(kCustomer, p->resolved_c_key), "tpcc.customer");
    ORTHRUS_DCHECK(dr != nullptr && cr != nullptr);
    ctx.ChargeOp(ctx.db->GetTable(kDistrict)->RowAccessCost() + row_op);
    ctx.ChargeOp(ctx.db->GetTable(kCustomer)->RowAccessCost() + row_op);

    // Scan the ring backwards for the customer's most recent order; the
    // district S lock keeps the ring stable.
    const int ring = aux_->DistrictIndex(p->w, p->d);
    const int cap = aux_->scale.order_ring_capacity;
    const std::uint32_t c_id =
        static_cast<std::uint32_t>(p->resolved_c_key & 0xFFFFF);
    std::uint64_t sink = cr->balance_cents >= 0
                             ? static_cast<std::uint64_t>(cr->balance_cents)
                             : 0;
    const std::uint32_t newest = dr->next_o_id;
    const std::uint32_t scan =
        std::min<std::uint32_t>(newest - 1, static_cast<std::uint32_t>(cap));
    for (std::uint32_t back = 1; back <= scan; ++back) {
      const OrderRec& o = aux_->orders[ring][(newest - back) % cap];
      hal::RaceCheck(&o, sizeof(o), /*is_write=*/false, "tpcc.order_ring");
      ctx.ChargeOp(row_op);
      if (o.c_id == c_id) {
        sink ^= o.total_cents;
        break;
      }
    }
    sink_ = sink;

    TpccTallies::Tally& tally = aux_->tallies.per_core[hal::CoreId() & 127];
    tally.order_statuses++;
    return true;
  }

 private:
  TpccAux* aux_;
  std::uint64_t sink_ = 0;
};

// Delivery (extension): processes the oldest undelivered order of each of
// the warehouse's districts — X(district) plus X(customer) per delivered
// order. The customer is read from the order ring at the delivery cursor
// during reconnaissance; a concurrent Delivery moving the cursor makes the
// estimate stale, which Run detects under locks (a *naturally occurring*
// OLLP abort, unlike Payment's index-stability case).
class DeliveryLogic final : public txn::TxnLogic {
 public:
  explicit DeliveryLogic(TpccAux* aux) : aux_(aux) {}

  bool NeedsReconnaissance() const override { return true; }

  // One past the newest order this Delivery may consume. Without seeded
  // orders that is next_o_id (deliver anything placed so far). With
  // seeded_orders > 0 — the cross-engine equivalence mode — the cursor is
  // capped at the load-time frontier: once the seeded backlog is
  // exhausted, a district reports nothing to deliver instead of consuming
  // a runtime order, whose contents (and thus the credited customer)
  // depend on the commit interleaving. That cap is what keeps the
  // delivered order multiset load-deterministic for *any* number of
  // committed Deliveries, not only runs that stop short of the backlog.
  std::uint32_t DeliverableEnd(const DistrictRow& dr) const {
    if (aux_->scale.seeded_orders <= 0) return dr.next_o_id;
    const std::uint32_t frontier =
        1 + static_cast<std::uint32_t>(aux_->scale.seeded_orders);
    return std::min(dr.next_o_id, frontier);
  }

  void BuildAccessSet(txn::Txn* t, storage::Database* db) override {
    DeliveryParams* p = t->Params<DeliveryParams>();
    const int d_count = aux_->scale.districts_per_warehouse;
    const int cap = aux_->scale.order_ring_capacity;
    for (int d = 0; d < d_count; ++d) {
      t->accesses.push_back({kDistrict, txn::LockMode::kExclusive,
                             DistrictKey(p->w, d), nullptr});
      // Unlocked reconnaissance reads of the cursor and the order ring.
      const auto* dr = static_cast<const DistrictRow*>(
          db->GetTable(kDistrict)->LookupRaw(DistrictKey(p->w, d)));
      ORTHRUS_DCHECK(dr != nullptr);
      p->observed_cursor[d] = dr->delivered_o_id;
      if (dr->delivered_o_id < DeliverableEnd(*dr)) {
        const int ring = aux_->DistrictIndex(p->w, d);
        const OrderRec& o = aux_->orders[ring][dr->delivered_o_id % cap];
        p->customer_key[d] = CustomerKey(p->w, d,
                                         static_cast<int>(o.c_id));
        t->accesses.push_back({kCustomer, txn::LockMode::kExclusive,
                               p->customer_key[d], nullptr});
      } else {
        p->customer_key[d] = DeliveryParams::kNoCustomer;
      }
    }
  }

  bool Run(txn::Txn* t, const txn::ExecContext& ctx) override {
    const DeliveryParams* p = t->Params<DeliveryParams>();
    const int d_count = aux_->scale.districts_per_warehouse;
    const int cap = aux_->scale.order_ring_capacity;
    const hal::Cycles row_op =
        ctx.db->GetTable(kDistrict)->cost_model().op_compute_cycles;

    // Validate the whole estimate before any write.
    for (int d = 0; d < d_count; ++d) {
      const auto* dr = CheckedRowRead<DistrictRow>(
          t->RowFor(kDistrict, DistrictKey(p->w, d)), "tpcc.district");
      ORTHRUS_DCHECK(dr != nullptr);
      if (dr->delivered_o_id != p->observed_cursor[d]) return false;
      const bool has_order = dr->delivered_o_id < DeliverableEnd(*dr);
      const bool planned = p->customer_key[d] != DeliveryParams::kNoCustomer;
      if (has_order != planned) return false;
      if (planned) {
        const int ring = aux_->DistrictIndex(p->w, d);
        const OrderRec& o = aux_->orders[ring][dr->delivered_o_id % cap];
        hal::RaceCheck(&o, sizeof(o), /*is_write=*/false, "tpcc.order_ring");
        if (CustomerKey(p->w, d, static_cast<int>(o.c_id)) !=
            p->customer_key[d]) {
          return false;
        }
      }
    }

    TpccTallies::Tally& tally = aux_->tallies.per_core[hal::CoreId() & 127];
    for (int d = 0; d < d_count; ++d) {
      auto* dr = CheckedRow<DistrictRow>(
          t->RowFor(kDistrict, DistrictKey(p->w, d)), /*is_write=*/true,
          "tpcc.district");
      ctx.ChargeOp(ctx.db->GetTable(kDistrict)->RowAccessCost() + row_op);
      if (p->customer_key[d] == DeliveryParams::kNoCustomer) continue;
      const int ring = aux_->DistrictIndex(p->w, d);
      const OrderRec& o = aux_->orders[ring][dr->delivered_o_id % cap];
      hal::RaceCheck(&o, sizeof(o), /*is_write=*/false, "tpcc.order_ring");
      auto* cr = CheckedRow<CustomerRow>(t->RowFor(kCustomer,
                                                   p->customer_key[d]),
                                         /*is_write=*/true, "tpcc.customer");
      ORTHRUS_DCHECK(cr != nullptr);
      ctx.ChargeOp(ctx.db->GetTable(kCustomer)->RowAccessCost() + row_op);
      cr->balance_cents += static_cast<std::int64_t>(o.total_cents);
      dr->delivered_o_id++;
      tally.orders_delivered++;
      tally.delivered_cents += o.total_cents;
    }
    tally.deliveries++;
    return true;
  }

 private:
  TpccAux* aux_;
};

// StockLevel (extension): read-only — counts recently-ordered items whose
// stock fell below a threshold. S(district) pins the ring; S(stock) per
// distinct item of the most recent orders. Access set is data-dependent on
// the ring contents, hence OLLP.
class StockLevelLogic final : public txn::TxnLogic {
 public:
  explicit StockLevelLogic(TpccAux* aux) : aux_(aux) {}

  bool NeedsReconnaissance() const override { return true; }

  void BuildAccessSet(txn::Txn* t, storage::Database* db) override {
    StockLevelParams* p = t->Params<StockLevelParams>();
    const int cap = aux_->scale.order_ring_capacity;
    const auto* dr = static_cast<const DistrictRow*>(
        db->GetTable(kDistrict)->LookupRaw(DistrictKey(p->w, p->d)));
    ORTHRUS_DCHECK(dr != nullptr);
    p->observed_next_o_id = dr->next_o_id;
    p->n_items = 0;
    const int ring = aux_->DistrictIndex(p->w, p->d);
    const std::uint32_t newest = dr->next_o_id;
    const std::uint32_t scan = std::min<std::uint32_t>(
        newest - 1,
        static_cast<std::uint32_t>(aux_->scale.stock_level_orders));
    for (std::uint32_t back = 1; back <= scan; ++back) {
      const std::uint32_t o_id = newest - back;
      const OrderRec& o = aux_->orders[ring][o_id % cap];
      const std::uint32_t lines =
          std::min<std::uint32_t>(o.ol_cnt, aux_->scale.max_items_per_order);
      for (std::uint32_t j = 0; j < lines && p->n_items < 32; ++j) {
        const OrderLineRec& ol =
            aux_->order_lines[ring][static_cast<std::size_t>(o_id % cap) *
                                        aux_->scale.max_items_per_order +
                                    j];
        bool fresh = true;
        for (int m = 0; m < p->n_items; ++m) {
          fresh &= (p->items[m] != static_cast<std::int32_t>(ol.i_id));
        }
        if (fresh) p->items[p->n_items++] = static_cast<std::int32_t>(ol.i_id);
      }
    }
    t->accesses.push_back({kDistrict, txn::LockMode::kShared,
                           DistrictKey(p->w, p->d), nullptr});
    for (int m = 0; m < p->n_items; ++m) {
      t->accesses.push_back({kStock, txn::LockMode::kShared,
                             StockKey(p->w, p->items[m]), nullptr});
    }
  }

  bool Run(txn::Txn* t, const txn::ExecContext& ctx) override {
    const StockLevelParams* p = t->Params<StockLevelParams>();
    const hal::Cycles row_op =
        ctx.db->GetTable(kStock)->cost_model().op_compute_cycles;
    const auto* dr = CheckedRowRead<DistrictRow>(
        t->RowFor(kDistrict, DistrictKey(p->w, p->d)), "tpcc.district");
    ORTHRUS_DCHECK(dr != nullptr);
    // A ring that moved since reconnaissance invalidates the item estimate.
    if (dr->next_o_id != p->observed_next_o_id) return false;
    ctx.ChargeOp(ctx.db->GetTable(kDistrict)->RowAccessCost() + row_op);

    std::uint64_t low = 0;
    for (int m = 0; m < p->n_items; ++m) {
      const auto* sr = CheckedRowRead<StockRow>(
          t->RowFor(kStock, StockKey(p->w, p->items[m])), "tpcc.stock");
      ORTHRUS_DCHECK(sr != nullptr);
      ctx.ChargeOp(ctx.db->GetTable(kStock)->RowAccessCost() + row_op);
      if (sr->quantity < p->threshold) low++;
    }

    TpccTallies::Tally& tally = aux_->tallies.per_core[hal::CoreId() & 127];
    tally.stock_levels++;
    tally.low_stock_seen += low;
    return true;
  }

 private:
  TpccAux* aux_;
};

}  // namespace

std::unique_ptr<txn::TxnLogic> MakeNewOrderLogic(TpccAux* aux) {
  return std::make_unique<NewOrderLogic>(aux);
}

std::unique_ptr<txn::TxnLogic> MakePaymentLogic(TpccAux* aux) {
  return std::make_unique<PaymentLogic>(aux);
}

std::unique_ptr<txn::TxnLogic> MakeOrderStatusLogic(TpccAux* aux) {
  return std::make_unique<OrderStatusLogic>(aux);
}

std::unique_ptr<txn::TxnLogic> MakeDeliveryLogic(TpccAux* aux) {
  return std::make_unique<DeliveryLogic>(aux);
}

std::unique_ptr<txn::TxnLogic> MakeStockLevelLogic(TpccAux* aux) {
  return std::make_unique<StockLevelLogic>(aux);
}

}  // namespace orthrus::workload::tpcc
