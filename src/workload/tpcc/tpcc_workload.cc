#include "workload/tpcc/tpcc_workload.h"

#include <algorithm>

#include "common/fnv.h"
#include "common/rng.h"

namespace orthrus::workload::tpcc {

// --------------------------------------------------------------- source

class TpccWorkload::Source final : public TxnSource {
 public:
  struct LogicSet {
    txn::TxnLogic* new_order;
    txn::TxnLogic* payment;
    txn::TxnLogic* order_status;
    txn::TxnLogic* delivery;
    txn::TxnLogic* stock_level;
  };

  Source(const TpccAux* aux, LogicSet logic, int worker_id)
      : aux_(aux),
        logic_(logic),
        rng_(aux->scale.seed * 0x2545F4914F6CDD1Dull + 17 + worker_id) {}

  void Next(txn::Txn* t) override {
    t->ResetForReuse();
    const TpccMix& mix = aux_->scale.mix;
    const int roll = static_cast<int>(rng_.NextU64(100));
    if (roll < mix.new_order) {
      FillNewOrder(t);
    } else if (roll < mix.new_order + mix.payment) {
      FillPayment(t);
    } else if (roll < mix.new_order + mix.payment + mix.order_status) {
      FillOrderStatus(t);
    } else if (roll <
               mix.new_order + mix.payment + mix.order_status + mix.delivery) {
      FillDelivery(t);
    } else {
      FillStockLevel(t);
    }
  }

 private:
  void FillNewOrder(txn::Txn* t) {
    const TpccScale& s = aux_->scale;
    t->logic = logic_.new_order;
    NewOrderParams* p = t->Params<NewOrderParams>();
    p->w = static_cast<std::int32_t>(rng_.NextU64(s.warehouses));
    p->d = static_cast<std::int32_t>(rng_.NextU64(s.districts_per_warehouse));
    p->c = static_cast<std::int32_t>(
        NuRand(&rng_, 1023, 0, s.customers_per_district - 1, 123) %
        s.customers_per_district);
    p->ol_cnt = static_cast<std::int32_t>(rng_.NextInRange(5, 15));
    // Paper: 10% of NewOrder transactions span two warehouses.
    const bool remote = s.warehouses > 1 && rng_.Percent(10);
    const int remote_j =
        remote ? static_cast<int>(rng_.NextU64(p->ol_cnt)) : -1;
    for (int j = 0; j < p->ol_cnt; ++j) {
      // Distinct items via NURand with rejection.
      std::int32_t item;
      bool fresh;
      do {
        item = static_cast<std::int32_t>(
            NuRand(&rng_, 8191, 0, s.items - 1, 57) % s.items);
        fresh = true;
        for (int m = 0; m < j; ++m) fresh &= (p->item_id[m] != item);
      } while (!fresh);
      p->item_id[j] = item;
      p->quantity[j] = static_cast<std::int32_t>(rng_.NextInRange(1, 10));
      if (j == remote_j) {
        std::int32_t other;
        do {
          other = static_cast<std::int32_t>(rng_.NextU64(s.warehouses));
        } while (other == p->w);
        p->supply_w[j] = other;
      } else {
        p->supply_w[j] = p->w;
      }
    }
  }

  void FillPayment(txn::Txn* t) {
    const TpccScale& s = aux_->scale;
    t->logic = logic_.payment;
    PaymentParams* p = t->Params<PaymentParams>();
    p->w = static_cast<std::int32_t>(rng_.NextU64(s.warehouses));
    p->d = static_cast<std::int32_t>(rng_.NextU64(s.districts_per_warehouse));
    // Paper / spec: 15% of Payments pay for a customer of another warehouse.
    if (s.warehouses > 1 && rng_.Percent(15)) {
      do {
        p->c_w = static_cast<std::int32_t>(rng_.NextU64(s.warehouses));
      } while (p->c_w == p->w);
      p->c_d = static_cast<std::int32_t>(
          rng_.NextU64(s.districts_per_warehouse));
    } else {
      p->c_w = p->w;
      p->c_d = p->d;
    }
    // 60% select the customer by last name (secondary index + OLLP).
    p->by_last_name = rng_.Percent(60) ? 1 : 0;
    const int effective_names =
        std::min(s.last_names, s.customers_per_district);
    if (p->by_last_name) {
      p->c = -1;
      p->name_code = static_cast<std::int32_t>(
          NuRand(&rng_, 255, 0, effective_names - 1, 201) % effective_names);
    } else {
      p->c = static_cast<std::int32_t>(
          NuRand(&rng_, 1023, 0, s.customers_per_district - 1, 123) %
          s.customers_per_district);
      p->name_code = -1;
    }
    p->amount_cents = static_cast<std::int64_t>(rng_.NextInRange(100, 500000));
    p->resolved_c_key = 0;
  }

  void FillOrderStatus(txn::Txn* t) {
    const TpccScale& s = aux_->scale;
    t->logic = logic_.order_status;
    OrderStatusParams* p = t->Params<OrderStatusParams>();
    p->w = static_cast<std::int32_t>(rng_.NextU64(s.warehouses));
    p->d = static_cast<std::int32_t>(rng_.NextU64(s.districts_per_warehouse));
    p->by_last_name = rng_.Percent(60) ? 1 : 0;
    const int effective_names =
        std::min(s.last_names, s.customers_per_district);
    if (p->by_last_name) {
      p->c = -1;
      p->name_code = static_cast<std::int32_t>(
          NuRand(&rng_, 255, 0, effective_names - 1, 201) % effective_names);
    } else {
      p->c = static_cast<std::int32_t>(
          NuRand(&rng_, 1023, 0, s.customers_per_district - 1, 123) %
          s.customers_per_district);
      p->name_code = -1;
    }
    p->resolved_c_key = 0;
  }

  void FillDelivery(txn::Txn* t) {
    const TpccScale& s = aux_->scale;
    t->logic = logic_.delivery;
    DeliveryParams* p = t->Params<DeliveryParams>();
    p->w = static_cast<std::int32_t>(rng_.NextU64(s.warehouses));
    p->carrier = static_cast<std::int32_t>(rng_.NextInRange(1, 10));
  }

  void FillStockLevel(txn::Txn* t) {
    const TpccScale& s = aux_->scale;
    t->logic = logic_.stock_level;
    StockLevelParams* p = t->Params<StockLevelParams>();
    p->w = static_cast<std::int32_t>(rng_.NextU64(s.warehouses));
    p->d = static_cast<std::int32_t>(rng_.NextU64(s.districts_per_warehouse));
    p->threshold = static_cast<std::uint32_t>(rng_.NextInRange(10, 20));
  }

  const TpccAux* aux_;
  LogicSet logic_;
  Rng rng_;
};

// ------------------------------------------------------------- workload

TpccWorkload::TpccWorkload(TpccScale scale) {
  const TpccMix& m = scale.mix;
  ORTHRUS_CHECK_MSG(m.new_order + m.payment + m.order_status + m.delivery +
                            m.stock_level ==
                        100,
                    "TPC-C mix must sum to 100%");
  aux_ = std::make_unique<TpccAux>();
  aux_->scale = scale;
  new_order_logic_ = MakeNewOrderLogic(aux_.get());
  payment_logic_ = MakePaymentLogic(aux_.get());
  order_status_logic_ = MakeOrderStatusLogic(aux_.get());
  delivery_logic_ = MakeDeliveryLogic(aux_.get());
  stock_level_logic_ = MakeStockLevelLogic(aux_.get());
}

TpccWorkload::~TpccWorkload() = default;

std::string TpccWorkload::name() const {
  return "tpcc-w" + std::to_string(aux_->scale.warehouses);
}

void TpccWorkload::Load(storage::Database* db, int num_table_partitions) {
  LoadTpccDatabase(db, aux_.get(), num_table_partitions);
}

std::unique_ptr<TxnSource> TpccWorkload::MakeSource(int worker_id) const {
  Source::LogicSet logic{new_order_logic_.get(), payment_logic_.get(),
                         order_status_logic_.get(), delivery_logic_.get(),
                         stock_level_logic_.get()};
  return std::make_unique<Source>(aux_.get(), logic, worker_id);
}

// ---------------------------------------------------------- consistency

std::uint64_t TpccWorkload::TotalWarehouseYtd(
    const storage::Database& db) const {
  const storage::Table* t = db.GetTable(kWarehouse);
  std::uint64_t sum = 0;
  for (std::uint64_t s = 0; s < t->size(); ++s) {
    sum += static_cast<const WarehouseRow*>(t->RowBySlot(s))->ytd_cents;
  }
  return sum;
}

std::uint64_t TpccWorkload::TotalOrdersPlaced(
    const storage::Database& db) const {
  const storage::Table* t = db.GetTable(kDistrict);
  // Seeded orders advance next_o_id at load time; only the delta beyond
  // them counts committed NewOrders.
  const std::uint64_t initial =
      1 + static_cast<std::uint64_t>(aux_->scale.seeded_orders);
  std::uint64_t sum = 0;
  for (std::uint64_t s = 0; s < t->size(); ++s) {
    sum += static_cast<const DistrictRow*>(t->RowBySlot(s))->next_o_id -
           initial;
  }
  return sum;
}

std::int64_t TpccWorkload::TotalCustomerBalance(
    const storage::Database& db) const {
  const storage::Table* t = db.GetTable(kCustomer);
  std::int64_t sum = 0;
  for (std::uint64_t s = 0; s < t->size(); ++s) {
    sum += static_cast<const CustomerRow*>(t->RowBySlot(s))->balance_cents;
  }
  return sum;
}

std::uint64_t TpccWorkload::TotalStockYtd(const storage::Database& db) const {
  const storage::Table* t = db.GetTable(kStock);
  std::uint64_t sum = 0;
  for (std::uint64_t s = 0; s < t->size(); ++s) {
    sum += static_cast<const StockRow*>(t->RowBySlot(s))->ytd;
  }
  return sum;
}

std::uint64_t TpccWorkload::TotalOrdersDelivered(
    const storage::Database& db) const {
  const storage::Table* t = db.GetTable(kDistrict);
  std::uint64_t sum = 0;
  for (std::uint64_t s = 0; s < t->size(); ++s) {
    sum +=
        static_cast<const DistrictRow*>(t->RowBySlot(s))->delivered_o_id - 1;
  }
  return sum;
}

std::uint64_t TpccWorkload::CanonicalDigest(
    const storage::Database& db) const {
  Fnv1a fnv;
  const auto mix = [&fnv](std::uint64_t v) { fnv.Mix(v); };
  // Named columns only: row padding and ring-placement state are not part
  // of the canonical image. Slot order is the (deterministic) load order.
  const storage::Table* warehouse = db.GetTable(kWarehouse);
  for (std::uint64_t s = 0; s < warehouse->size(); ++s) {
    const auto* r = static_cast<const WarehouseRow*>(warehouse->RowBySlot(s));
    mix(r->ytd_cents);
    mix(r->tax_bp);
  }
  const storage::Table* district = db.GetTable(kDistrict);
  for (std::uint64_t s = 0; s < district->size(); ++s) {
    const auto* r = static_cast<const DistrictRow*>(district->RowBySlot(s));
    mix(r->ytd_cents);
    mix(r->tax_bp);
    mix(r->next_o_id);
    mix(r->history_cnt);
    mix(r->delivered_o_id);
  }
  const storage::Table* customer = db.GetTable(kCustomer);
  for (std::uint64_t s = 0; s < customer->size(); ++s) {
    const auto* r = static_cast<const CustomerRow*>(customer->RowBySlot(s));
    mix(static_cast<std::uint64_t>(r->balance_cents));
    mix(r->ytd_payment_cents);
    mix(r->payment_cnt);
    mix(r->last_name_code);
    mix(r->credit_ok);
  }
  const storage::Table* stock = db.GetTable(kStock);
  for (std::uint64_t s = 0; s < stock->size(); ++s) {
    const auto* r = static_cast<const StockRow*>(stock->RowBySlot(s));
    mix(r->quantity);
    mix(r->ytd);
    mix(r->order_cnt);
    mix(r->remote_cnt);
  }
  return fnv.digest();
}

std::uint64_t TpccWorkload::CanonicalRingDigest(
    const storage::Database& db) const {
  // Order-id-independent image of the order rings: which o_id a committed
  // NewOrder drew — hence which slot its record landed in — depends on the
  // commit interleaving, but the *multiset* of order contents per district
  // does not. Hash each live order's content (customer, line count,
  // locality, total, and its order lines) without its o_id or slot, and
  // combine the per-order hashes with a wrapping sum per district (the
  // commutative multiset step); district sums then mix in district order.
  const storage::Table* district = db.GetTable(kDistrict);
  const int cap = aux_->scale.order_ring_capacity;
  const int max_items = aux_->scale.max_items_per_order;
  Fnv1a outer;
  for (std::uint64_t s = 0; s < district->size(); ++s) {
    const auto* dr = static_cast<const DistrictRow*>(district->RowBySlot(s));
    const int ring = static_cast<int>(s);  // district slot order == ring
    const std::uint32_t next = dr->next_o_id;
    const std::uint32_t oldest =
        next > static_cast<std::uint32_t>(cap) ? next - cap : 1;
    std::uint64_t district_sum = 0;
    for (std::uint32_t o = oldest; o < next; ++o) {
      const std::size_t slot = o % static_cast<std::uint32_t>(cap);
      const OrderRec& rec = aux_->orders[ring][slot];
      Fnv1a h;
      h.Mix(rec.c_id);
      h.Mix(rec.ol_cnt);
      h.Mix(rec.all_local);
      h.Mix(rec.total_cents);
      const std::uint32_t lines = std::min<std::uint32_t>(
          rec.ol_cnt, static_cast<std::uint32_t>(max_items));
      for (std::uint32_t j = 0; j < lines; ++j) {
        const OrderLineRec& ol =
            aux_->order_lines[ring][slot * static_cast<std::size_t>(
                                               max_items) +
                                    j];
        h.Mix(ol.i_id);
        h.Mix(ol.supply_w);
        h.Mix(ol.quantity);
        h.Mix(ol.amount_cents);
      }
      district_sum += h.digest();  // wrapping sum: commutative
    }
    outer.Mix(district_sum);
  }
  return outer.digest();
}

}  // namespace orthrus::workload::tpcc
