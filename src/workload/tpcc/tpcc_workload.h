// TPC-C workload (NewOrder + Payment, 50/50 mix) as evaluated in Section
// 4.4 of the paper:
//
//  * one-shot stored procedures, no client think time;
//  * 10% of NewOrder and 15% of Payment transactions span two warehouses,
//    so ~12.5% of transactions need locks from two CC threads;
//  * 60% of Payments locate the customer by last name through a secondary
//    index — a data-dependent access set resolved by OLLP reconnaissance
//    (Section 3.2) and validated at execution time.
#ifndef ORTHRUS_WORKLOAD_TPCC_TPCC_WORKLOAD_H_
#define ORTHRUS_WORKLOAD_TPCC_TPCC_WORKLOAD_H_

#include <memory>
#include <vector>

#include "storage/secondary_index.h"
#include "txn/txn.h"
#include "workload/tpcc/tpcc_schema.h"
#include "workload/workload.h"

namespace orthrus::workload::tpcc {

// Per-core commit tallies for consistency checking. Each core writes only
// its own cache-padded slot; sums are read at verification time.
struct TpccTallies {
  struct alignas(64) Tally {
    std::uint64_t neworders = 0;
    std::uint64_t payments = 0;
    std::uint64_t payment_cents = 0;
    std::uint64_t ordered_qty = 0;
    std::uint64_t order_statuses = 0;
    std::uint64_t deliveries = 0;           // committed Delivery txns
    std::uint64_t orders_delivered = 0;     // orders they delivered
    std::uint64_t delivered_cents = 0;      // credited to customer balances
    std::uint64_t stock_levels = 0;
    std::uint64_t low_stock_seen = 0;
  };
  Tally per_core[128];

  Tally Sum() const {
    Tally t;
    for (const Tally& s : per_core) {
      t.neworders += s.neworders;
      t.payments += s.payments;
      t.payment_cents += s.payment_cents;
      t.ordered_qty += s.ordered_qty;
      t.order_statuses += s.order_statuses;
      t.deliveries += s.deliveries;
      t.orders_delivered += s.orders_delivered;
      t.delivered_cents += s.delivered_cents;
      t.stock_levels += s.stock_levels;
      t.low_stock_seen += s.low_stock_seen;
    }
    return t;
  }
};

// Mutable auxiliary state outside the lock-managed tables: append rings for
// orders/order-lines/history (placement guarded by district locks) and the
// customer last-name secondary index (read-only after load).
struct TpccAux {
  TpccScale scale;

  // Ring storage indexed [w * districts + d][slot].
  std::vector<std::vector<OrderRec>> orders;
  std::vector<std::vector<OrderLineRec>> order_lines;  // slot*max_items + j
  std::vector<std::vector<HistoryRec>> history;

  storage::SecondaryIndex customers_by_name;

  TpccTallies tallies;

  int DistrictIndex(int w, int d) const {
    return w * scale.districts_per_warehouse + d;
  }
};

// Per-transaction parameters.
struct NewOrderParams {
  std::int32_t w, d, c;
  std::int32_t ol_cnt;
  std::int32_t item_id[15];
  std::int32_t supply_w[15];
  std::int32_t quantity[15];
};

struct OrderStatusParams {
  std::int32_t w, d;
  std::int32_t c;  // -1 when selected by last name
  std::int32_t by_last_name;
  std::int32_t name_code;
  std::uint64_t resolved_c_key;  // OLLP annotation
};

// Delivery processes the oldest undelivered order of every district of one
// warehouse. The customer owed each order is data-dependent (read from the
// order ring at the delivery cursor), so the access set is an OLLP estimate
// that can go stale when a concurrent Delivery advances the cursor.
struct DeliveryParams {
  std::int32_t w;
  std::int32_t carrier;
  // Reconnaissance results, one per district: the cursor observed and the
  // customer key estimated from it (kNoCustomer when nothing to deliver).
  static constexpr std::uint64_t kNoCustomer = ~0ull;
  std::uint32_t observed_cursor[10];
  std::uint64_t customer_key[10];
};

struct StockLevelParams {
  std::int32_t w, d;
  std::uint32_t threshold;
  // Reconnaissance: next_o_id observed and the distinct item ids collected
  // from the most recent orders.
  std::uint32_t observed_next_o_id;
  std::int32_t n_items;
  std::int32_t items[32];
};

struct PaymentParams {
  std::int32_t w, d;        // the paying terminal's warehouse/district
  std::int32_t c_w, c_d;    // the customer's home warehouse/district
  std::int32_t c;           // customer id; -1 when selected by last name
  std::int32_t by_last_name;
  std::int32_t name_code;
  std::int64_t amount_cents;
  // OLLP annotation: the customer key the reconnaissance pass estimated.
  std::uint64_t resolved_c_key;
};

class TpccWorkload final : public Workload {
 public:
  explicit TpccWorkload(TpccScale scale);
  ~TpccWorkload() override;

  void Load(storage::Database* db, int num_table_partitions) override;
  std::unique_ptr<TxnSource> MakeSource(int worker_id) const override;
  std::string name() const override;

  TpccAux* aux() const { return aux_.get(); }
  const TpccScale& scale() const { return aux_->scale; }

  // --- Consistency checks (setup/teardown time; see tpcc_test.cc) -------

  // Sum of warehouse YTD minus the initial value == total Payment amounts.
  std::uint64_t TotalWarehouseYtd(const storage::Database& db) const;
  // Sum over districts of (next_o_id - initial) == committed NewOrders.
  std::uint64_t TotalOrdersPlaced(const storage::Database& db) const;
  // Sum of customer balances (negative of total payments, plus order
  // totals are not applied to balance in the NewOrder subset).
  std::int64_t TotalCustomerBalance(const storage::Database& db) const;
  // Sum of stock YTD == total quantity ordered by committed NewOrders.
  std::uint64_t TotalStockYtd(const storage::Database& db) const;
  // Sum over districts of (delivered_o_id - initial) == committed
  // deliveries' order count.
  std::uint64_t TotalOrdersDelivered(const storage::Database& db) const;

  // Canonical digest of the lock-managed tables: FNV-1a over the
  // interleaving-independent columns of warehouse, district, customer, and
  // stock rows in slot order. Committed transactions are commutative on
  // these columns (sums and counters over huge initial stock), so two runs
  // that commit the same transaction multiset digest identically no matter
  // how each architecture interleaved them — the property the cross-engine
  // equivalence test pins. The append rings (orders, order lines, history)
  // are deliberately excluded: their slot contents depend on commit order.
  std::uint64_t CanonicalDigest(const storage::Database& db) const;

  // Order-id-independent canonical digest of the order rings: the multiset
  // of live order *contents* per district (commutative per-order hashing;
  // o_id and slot placement excluded). Interleaving-independent even for
  // workloads that append to the rings, which is what lets Delivery and
  // StockLevel join the cross-engine equivalence mix when combined with
  // TpccScale::seeded_orders (deliveries must consume seeded orders only).
  std::uint64_t CanonicalRingDigest(const storage::Database& db) const;

  static constexpr std::uint64_t kInitialStockQuantity = 1ull << 20;

 private:
  class Source;

  std::unique_ptr<TpccAux> aux_;
  std::unique_ptr<txn::TxnLogic> new_order_logic_;
  std::unique_ptr<txn::TxnLogic> payment_logic_;
  std::unique_ptr<txn::TxnLogic> order_status_logic_;
  std::unique_ptr<txn::TxnLogic> delivery_logic_;
  std::unique_ptr<txn::TxnLogic> stock_level_logic_;
};

// Stored-procedure logic (exposed for focused unit tests).
std::unique_ptr<txn::TxnLogic> MakeNewOrderLogic(TpccAux* aux);
std::unique_ptr<txn::TxnLogic> MakePaymentLogic(TpccAux* aux);
std::unique_ptr<txn::TxnLogic> MakeOrderStatusLogic(TpccAux* aux);
std::unique_ptr<txn::TxnLogic> MakeDeliveryLogic(TpccAux* aux);
std::unique_ptr<txn::TxnLogic> MakeStockLevelLogic(TpccAux* aux);

// Loader (exposed for tests that want a database without the workload).
void LoadTpccDatabase(storage::Database* db, TpccAux* aux,
                      int num_table_partitions);

}  // namespace orthrus::workload::tpcc

#endif  // ORTHRUS_WORKLOAD_TPCC_TPCC_WORKLOAD_H_
