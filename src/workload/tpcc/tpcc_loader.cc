// TPC-C database population. Deterministic given TpccScale::seed.
#include "common/rng.h"
#include "workload/tpcc/tpcc_workload.h"

namespace orthrus::workload::tpcc {

void LoadTpccDatabase(storage::Database* db, TpccAux* aux,
                      int num_table_partitions) {
  const TpccScale& s = aux->scale;
  const int parts = std::max(1, num_table_partitions);
  db->partitioner().mode = storage::Partitioner::Mode::kWarehouseHigh32;
  // The caller overrides `n` to the engine's partition count; default to
  // the table partition count so split loads route consistently.
  db->partitioner().n = parts;

  Rng rng(s.seed);
  const std::uint32_t pad = s.row_padding;
  const int w_count = s.warehouses;
  const int d_count = s.districts_per_warehouse;
  const int c_count = s.customers_per_district;

  storage::Table* warehouse = db->CreateTable(
      kWarehouse, "warehouse", w_count, sizeof(WarehouseRow) + pad, parts);
  storage::Table* district =
      db->CreateTable(kDistrict, "district",
                      static_cast<std::uint64_t>(w_count) * d_count,
                      sizeof(DistrictRow) + pad, parts);
  storage::Table* customer = db->CreateTable(
      kCustomer, "customer",
      static_cast<std::uint64_t>(w_count) * d_count * c_count,
      sizeof(CustomerRow) + pad, parts);
  storage::Table* stock =
      db->CreateTable(kStock, "stock",
                      static_cast<std::uint64_t>(w_count) * s.items,
                      sizeof(StockRow) + pad, parts);
  storage::Table* item =
      db->CreateTable(kItem, "item", s.items, sizeof(ItemRow) + pad, 1);

  auto part_of = [&](std::uint64_t key) {
    return parts > 1 ? db->partitioner().PartOf(key) : 0;
  };

  for (int i = 0; i < s.items; ++i) {
    ItemRow* row = static_cast<ItemRow*>(item->Insert(ItemKey(i), 0));
    row->price_cents = static_cast<std::uint32_t>(rng.NextInRange(100, 10000));
    row->name_hash = static_cast<std::uint32_t>(rng.Next());
  }

  for (int w = 0; w < w_count; ++w) {
    WarehouseRow* wr = static_cast<WarehouseRow*>(
        warehouse->Insert(WarehouseKey(w), part_of(WarehouseKey(w))));
    wr->ytd_cents = 0;
    wr->tax_bp = static_cast<std::uint32_t>(rng.NextU64(2001));

    for (int i = 0; i < s.items; ++i) {
      const std::uint64_t key = StockKey(w, i);
      StockRow* sr = static_cast<StockRow*>(stock->Insert(key, part_of(key)));
      sr->quantity = TpccWorkload::kInitialStockQuantity;
      sr->ytd = 0;
      sr->order_cnt = 0;
      sr->remote_cnt = 0;
    }

    for (int d = 0; d < d_count; ++d) {
      const std::uint64_t dkey = DistrictKey(w, d);
      DistrictRow* dr =
          static_cast<DistrictRow*>(district->Insert(dkey, part_of(dkey)));
      dr->ytd_cents = 0;
      dr->tax_bp = static_cast<std::uint32_t>(rng.NextU64(2001));
      dr->next_o_id = 1;
      dr->history_cnt = 0;
      dr->delivered_o_id = 1;

      for (int c = 0; c < c_count; ++c) {
        const std::uint64_t ckey = CustomerKey(w, d, c);
        CustomerRow* cr =
            static_cast<CustomerRow*>(customer->Insert(ckey, part_of(ckey)));
        cr->balance_cents = 0;
        cr->ytd_payment_cents = 0;
        cr->payment_cnt = 0;
        // Deterministic last-name assignment: code = c mod effective-names.
        // Guarantees every code in [0, effective) exists in every district,
        // so generators can draw codes without consulting the database, and
        // posting lists stay multi-customer as in the spec.
        const int effective_names = std::min(s.last_names, c_count);
        cr->last_name_code = static_cast<std::uint32_t>(c % effective_names);
        cr->credit_ok = rng.Percent(90) ? 1 : 0;
        aux->customers_by_name.Add(LastNameAttr(w, d, cr->last_name_code),
                                   ckey);
      }
    }
  }
  aux->customers_by_name.Finalize();

  // Append rings.
  const int rings = w_count * d_count;
  aux->orders.assign(rings, std::vector<OrderRec>(s.order_ring_capacity));
  aux->order_lines.assign(
      rings, std::vector<OrderLineRec>(
                 static_cast<std::size_t>(s.order_ring_capacity) *
                 s.max_items_per_order));
  aux->history.assign(rings,
                      std::vector<HistoryRec>(s.order_ring_capacity));

  // Seeded undelivered orders (see TpccScale::seeded_orders): fill ring
  // slots [1, seeded] of every district with deterministic order content
  // and advance next_o_id past them; delivered_o_id stays at 1, so
  // Delivery consumes these load-time orders first.
  if (s.seeded_orders > 0) {
    ORTHRUS_CHECK_MSG(s.seeded_orders < s.order_ring_capacity,
                      "seeded orders must fit the order ring");
    for (int w = 0; w < w_count; ++w) {
      for (int d = 0; d < d_count; ++d) {
        auto* dr = static_cast<DistrictRow*>(db->GetTable(kDistrict)->Lookup(
            DistrictKey(w, d), part_of(DistrictKey(w, d))));
        dr->next_o_id = 1 + static_cast<std::uint32_t>(s.seeded_orders);
        const int ring = aux->DistrictIndex(w, d);
        for (int o = 1; o <= s.seeded_orders; ++o) {
          OrderRec& rec =
              aux->orders[ring][o % s.order_ring_capacity];
          rec.o_id = static_cast<std::uint32_t>(o);
          rec.c_id = static_cast<std::uint32_t>(rng.NextU64(c_count));
          // Clamp to the configured line stride: the ring's line storage
          // has exactly max_items_per_order slots per order.
          const std::uint64_t max_lines = static_cast<std::uint64_t>(
              std::min(15, s.max_items_per_order));
          rec.ol_cnt = static_cast<std::uint32_t>(
              rng.NextInRange(std::min<std::uint64_t>(5, max_lines),
                              max_lines));
          rec.all_local = 1;
          rec.total_cents = 0;
          for (std::uint32_t j = 0; j < rec.ol_cnt; ++j) {
            OrderLineRec& ol =
                aux->order_lines[ring]
                                [static_cast<std::size_t>(
                                     o % s.order_ring_capacity) *
                                     s.max_items_per_order +
                                 j];
            ol.i_id = static_cast<std::uint32_t>(rng.NextU64(s.items));
            ol.supply_w = static_cast<std::uint32_t>(w);
            ol.quantity = static_cast<std::uint32_t>(rng.NextInRange(1, 10));
            const auto* ir = static_cast<const ItemRow*>(
                item->Lookup(ItemKey(static_cast<int>(ol.i_id)), 0));
            ol.amount_cents = ol.quantity * ir->price_cents;
            rec.total_cents += ol.amount_cents;
          }
        }
      }
    }
  }
}

}  // namespace orthrus::workload::tpcc
