// TPC-C schema (the NewOrder + Payment subset the paper evaluates,
// Section 4.4), with configurable scale so the ~10 GB spec-sized database
// fits the reproduction host. The schema is tree-structured: every lockable
// table except the read-only Item table hangs off Warehouse via its
// warehouse id, which is why partitioning by warehouse puts all of one
// transaction's locks on one concurrency-control thread (modulo the 10% /
// 15% remote-warehouse transactions the spec requires).
#ifndef ORTHRUS_WORKLOAD_TPCC_TPCC_SCHEMA_H_
#define ORTHRUS_WORKLOAD_TPCC_TPCC_SCHEMA_H_

#include <cstdint>

namespace orthrus::workload::tpcc {

// Catalog ids of the lockable tables.
enum TableId : std::uint32_t {
  kWarehouse = 0,
  kDistrict = 1,
  kCustomer = 2,
  kStock = 3,
  kItem = 4,  // read-only: never locked (paper Section 4.4)
  kNumTables = 5,
};

// Transaction mix in percent; must sum to 100. The paper's evaluation uses
// the NewOrder/Payment 50/50 subset (Section 4.4); the full five-type mix
// (approximating the spec's weights) is provided as an extension.
struct TpccMix {
  int new_order = 50;
  int payment = 50;
  int order_status = 0;
  int delivery = 0;
  int stock_level = 0;
};

inline TpccMix FullTpccMix() { return TpccMix{45, 43, 4, 4, 4}; }

struct TpccScale {
  int warehouses = 16;
  int districts_per_warehouse = 10;
  int customers_per_district = 300;  // spec: 3000
  int items = 10000;                 // spec: 100000
  // Ring capacity for orders per district; old orders are overwritten once
  // the ring wraps (benchmark runs care about rates, not history depth).
  int order_ring_capacity = 4096;
  int max_items_per_order = 15;
  // Extra payload padding on lockable rows, modeling the spec's fat rows.
  std::uint32_t row_padding = 48;
  std::uint64_t seed = 7;
  // Number of distinct last names customers are spread over (spec: 1000
  // generated syllable triples).
  int last_names = 1000;
  TpccMix mix;
  // StockLevel examines the items of this many recent orders (spec: 20;
  // scaled so access sets stay bounded).
  int stock_level_orders = 2;
  // Undelivered orders pre-loaded into every district's ring (the spec
  // loads 3000 orders per district, ~900 undelivered). Deliveries then
  // consume load-deterministic orders instead of racing NewOrder for
  // whatever committed first, which is what lets Delivery join the
  // cross-engine equivalence mix. The Delivery cursor is additionally
  // capped at the seeded frontier whenever this is > 0: once the backlog
  // is exhausted a district reports nothing to deliver rather than
  // consuming an interleaving-dependent runtime order, so the delivered
  // contents (and every customer credit) stay load-deterministic for any
  // number of committed Deliveries (see DeliveryLogic::DeliverableEnd).
  int seeded_orders = 0;
};

// --- Key encoding: warehouse id lives in the high 32 bits so that the
// kWarehouseHigh32 partitioner routes every lock of a warehouse to one
// partition. Item keys are plain item ids (never locked).

inline std::uint64_t WarehouseKey(int w) {
  return static_cast<std::uint64_t>(w) << 32;
}
inline std::uint64_t DistrictKey(int w, int d) {
  return (static_cast<std::uint64_t>(w) << 32) |
         static_cast<std::uint64_t>(d);
}
inline std::uint64_t CustomerKey(int w, int d, int c) {
  return (static_cast<std::uint64_t>(w) << 32) |
         (static_cast<std::uint64_t>(d) << 20) | static_cast<std::uint64_t>(c);
}
inline std::uint64_t StockKey(int w, int i) {
  return (static_cast<std::uint64_t>(w) << 32) |
         static_cast<std::uint64_t>(i);
}
inline std::uint64_t ItemKey(int i) { return static_cast<std::uint64_t>(i); }

// Secondary-index attribute for Payment-by-last-name lookups.
inline std::uint64_t LastNameAttr(int w, int d, int name_code) {
  return (static_cast<std::uint64_t>(w) << 32) |
         (static_cast<std::uint64_t>(d) << 20) |
         static_cast<std::uint64_t>(name_code);
}

// --- Row layouts (money in integer cents; rates in basis points). Rows are
// embedded at the head of each table row; row_padding bytes follow.

struct WarehouseRow {
  std::uint64_t ytd_cents;
  std::uint32_t tax_bp;  // sales tax, basis points (0..2000)
};

struct DistrictRow {
  std::uint64_t ytd_cents;
  std::uint32_t tax_bp;
  std::uint32_t next_o_id;      // order-id allocator; guarded by the X lock
  std::uint32_t history_cnt;    // per-district history ring cursor
  std::uint32_t delivered_o_id; // next order to deliver (Delivery cursor)
};

struct CustomerRow {
  std::int64_t balance_cents;
  std::uint64_t ytd_payment_cents;
  std::uint32_t payment_cnt;
  std::uint32_t last_name_code;
  std::uint32_t credit_ok;  // 1 = GC, 0 = BC
};

struct StockRow {
  std::uint32_t quantity;
  std::uint32_t ytd;         // total quantity sold
  std::uint32_t order_cnt;
  std::uint32_t remote_cnt;
};

struct ItemRow {
  std::uint32_t price_cents;
  std::uint32_t name_hash;
};

// --- Non-locked append structures (their placement is derived from
// counters already guarded by the district X lock, so no extra CC needed).

struct OrderRec {
  std::uint32_t o_id;
  std::uint32_t c_id;
  std::uint32_t ol_cnt;
  std::uint32_t all_local;
  std::uint64_t total_cents;
};

struct OrderLineRec {
  std::uint32_t i_id;
  std::uint32_t supply_w;
  std::uint32_t quantity;
  std::uint32_t amount_cents;
};

struct HistoryRec {
  std::uint64_t amount_cents;
  std::uint32_t c_w;
  std::uint32_t c_d;
  std::uint32_t c_id;
};

}  // namespace orthrus::workload::tpcc

#endif  // ORTHRUS_WORKLOAD_TPCC_TPCC_SCHEMA_H_
