#include "workload/ycsb.h"

namespace orthrus::workload {

KvConfig MakeYcsbConfig(const YcsbSpec& spec) {
  KvConfig c;
  c.num_records = spec.num_records;
  c.row_bytes = spec.row_bytes;
  c.ops_per_txn = 10;
  c.read_only = spec.op == YcsbOp::kReadOnly;
  c.hot_records = spec.contention == YcsbContention::kHigh ? spec.hot_records
                                                           : 0;
  c.hot_ops = 2;
  c.num_partitions = spec.num_partitions;
  c.local_affinity = spec.local_affinity;
  c.seed = spec.seed;
  switch (spec.placement) {
    case YcsbPlacement::kSingle:
      c.placement = KvConfig::Placement::kFixedCount;
      c.partitions_per_txn = 1;
      break;
    case YcsbPlacement::kDual:
      c.placement = KvConfig::Placement::kFixedCount;
      c.partitions_per_txn = 2;
      break;
    case YcsbPlacement::kRandom:
      c.placement = KvConfig::Placement::kUniform;
      break;
  }
  return c;
}

std::unique_ptr<KvWorkload> MakeYcsbWorkload(const YcsbSpec& spec) {
  return std::make_unique<KvWorkload>(MakeYcsbConfig(spec));
}

}  // namespace orthrus::workload
