// Key-value microbenchmark used throughout the paper's evaluation:
//
//  * Figures 1 and 4 and the YCSB appendix: 10-operation transactions
//    (read-only or read-modify-write) over a single table; high contention
//    picks 2 keys from a small hot set and 8 from the cold remainder, with
//    hot locks acquired first.
//  * Figures 5-7: uniform transactions with controlled partition
//    footprints (all keys on 1 partition, on exactly k partitions, or a
//    configurable percentage of 2-partition transactions).
//
// Keys are record ids; partition of a key is key % num_partitions, so the
// generator can target partitions by sampling residue classes.
#ifndef ORTHRUS_WORKLOAD_MICRO_H_
#define ORTHRUS_WORKLOAD_MICRO_H_

#include <memory>

#include "txn/txn.h"
#include "workload/workload.h"

namespace orthrus::workload {

struct KvConfig {
  std::uint64_t num_records = 100000;
  std::uint32_t row_bytes = 100;
  int ops_per_txn = 10;
  bool read_only = false;

  // Mixed read/write stream: this percentage of transactions are
  // read-only (all-kShared access sets, classified at admission so
  // snapshot-capable engines serve them lock-free); the rest are RMW.
  // 0 keeps the single-logic streams bit-identical to before the knob
  // existed (no extra rng draw); requires read_only == false.
  int pct_read_only = 0;

  // Contention: 0 = uniform (low contention). Otherwise each transaction
  // takes `hot_ops` distinct keys from [0, hot_records) — acquired first —
  // and the remainder from the cold range.
  std::uint64_t hot_records = 0;
  int hot_ops = 2;

  // Zipfian skew over the whole key space (kUniform placement only;
  // mutually exclusive with hot_records). theta in [0,1): 0 disables.
  // Low key ids are hotter, so with modulo partitioning the skew also
  // imbalances load across lock partitions — the utilization-imbalance
  // scenario Section 3.3 discusses for CC threads.
  double zipf_theta = 0.0;

  // Partition placement.
  enum class Placement {
    kUniform,     // keys uniform over the table (any partition footprint)
    kFixedCount,  // keys constrained to exactly `partitions_per_txn` parts
    kPctMulti,    // `pct_multi`% of txns touch 2 partitions, rest touch 1
  };
  Placement placement = Placement::kUniform;
  int num_partitions = 1;
  int partitions_per_txn = 1;
  int pct_multi = 0;

  // When true, a transaction's first (home) partition is the generating
  // worker's own partition (worker_id % num_partitions) — the H-Store
  // execution model, where single-partition work stays on its owner core.
  // When false the home partition is drawn uniformly (ORTHRUS's CC threads
  // are not execution homes).
  bool local_affinity = false;

  std::uint64_t seed = 42;
};

class KvWorkload final : public Workload {
 public:
  explicit KvWorkload(KvConfig config);
  ~KvWorkload() override;

  void Load(storage::Database* db, int num_table_partitions) override;
  std::unique_ptr<TxnSource> MakeSource(int worker_id) const override;
  std::string name() const override;

  const KvConfig& config() const { return config_; }

  // Verification: sum of all per-row RMW counters (equals 10x committed
  // transactions for a pure-RMW run). Setup-time only.
  std::uint64_t SumCounters(const storage::Database& db) const;

  static constexpr std::uint32_t kTableId = 0;

 private:
  class Source;
  class RmwLogic;
  class ReadLogic;

  KvConfig config_;
  std::unique_ptr<txn::TxnLogic> logic_;
  std::unique_ptr<txn::TxnLogic> read_logic_;  // non-null iff pct_read_only
};

}  // namespace orthrus::workload

#endif  // ORTHRUS_WORKLOAD_MICRO_H_
