#include "workload/micro.h"

#include <algorithm>
#include <cstring>

#include "common/rng.h"

namespace orthrus::workload {

namespace {

// Parameters materialized per transaction.
struct KvParams {
  static constexpr int kMaxOps = 16;
  int n_ops = 0;
  std::uint64_t keys[kMaxOps];
};

// Number of record ids congruent to `residue` (mod n) in [0, count).
std::uint64_t ResidueCount(std::uint64_t count, int n, int residue) {
  const std::uint64_t r = static_cast<std::uint64_t>(residue);
  if (r >= count) return 0;
  return (count - r + static_cast<std::uint64_t>(n) - 1) /
         static_cast<std::uint64_t>(n);
}

}  // namespace

// --------------------------------------------------------------- logic

class KvWorkload::RmwLogic final : public txn::TxnLogic {
 public:
  void BuildAccessSet(txn::Txn* t, storage::Database* /*db*/) override {
    const KvParams* p = t->Params<KvParams>();
    t->accesses.reserve(p->n_ops);
    for (int i = 0; i < p->n_ops; ++i) {
      t->accesses.push_back({kTableId, txn::LockMode::kExclusive, p->keys[i],
                             nullptr});
    }
  }

  bool Run(txn::Txn* t, const txn::ExecContext& ctx) override {
    storage::Table* table = ctx.db->GetTable(kTableId);
    const hal::Cycles op_cost =
        table->RowAccessCost() + table->cost_model().op_compute_cycles;
    for (const txn::Access& a : t->accesses) {
      ctx.ChargeOp(op_cost);
      // Read-modify-write: bump the row's op counter (verifiable effect)
      // and fold a byte of payload so reads are not dead code.
      std::uint64_t* row = static_cast<std::uint64_t*>(a.row);
      hal::RaceCheck(row, 2 * sizeof(std::uint64_t), /*is_write=*/true,
                     "kv.row");
      row[0] += 1;
      row[1] ^= a.key;
    }
    return true;
  }
};

class KvWorkload::ReadLogic final : public txn::TxnLogic {
 public:
  void BuildAccessSet(txn::Txn* t, storage::Database* /*db*/) override {
    const KvParams* p = t->Params<KvParams>();
    t->accesses.reserve(p->n_ops);
    for (int i = 0; i < p->n_ops; ++i) {
      t->accesses.push_back({kTableId, txn::LockMode::kShared, p->keys[i],
                             nullptr});
    }
  }

  bool Run(txn::Txn* t, const txn::ExecContext& ctx) override {
    storage::Table* table = ctx.db->GetTable(kTableId);
    const hal::Cycles op_cost =
        table->RowAccessCost() + table->cost_model().op_compute_cycles;
    std::uint64_t sink = 0;
    for (const txn::Access& a : t->accesses) {
      ctx.ChargeOp(op_cost);
      const std::uint64_t* row = static_cast<const std::uint64_t*>(a.row);
      hal::RaceCheck(&row[1], sizeof(std::uint64_t), /*is_write=*/false,
                     "kv.row");
      sink ^= row[1];
    }
    // Keep the reads observable.
    sink_ = sink;
    return true;
  }

 private:
  std::uint64_t sink_ = 0;
};

// --------------------------------------------------------------- source

class KvWorkload::Source final : public TxnSource {
 public:
  Source(const KvConfig& config, txn::TxnLogic* logic,
         txn::TxnLogic* read_logic, int worker_id)
      : config_(config),
        logic_(logic),
        read_logic_(read_logic),
        rng_(config.seed * 0x9E3779B97F4A7C15ull + 0xABCD + worker_id),
        worker_id_(worker_id) {
    if (config_.zipf_theta > 0.0) {
      zipf_ = std::make_unique<ZipfianGenerator>(config_.num_records,
                                                 config_.zipf_theta);
    }
  }

  void Next(txn::Txn* t) override {
    t->ResetForReuse();
    // Mixed streams draw the transaction kind first; pure streams skip the
    // draw entirely so their key sequences stay bit-identical to builds
    // without the pct_read_only knob.
    t->logic =
        read_logic_ != nullptr &&
                rng_.Percent(static_cast<unsigned>(config_.pct_read_only))
            ? read_logic_
            : logic_;
    KvParams* p = t->Params<KvParams>();
    p->n_ops = config_.ops_per_txn;
    ORTHRUS_CHECK(config_.ops_per_txn <= KvParams::kMaxOps);

    switch (config_.placement) {
      case KvConfig::Placement::kUniform:
        FillUniform(p);
        break;
      case KvConfig::Placement::kFixedCount:
        FillPartitioned(p, config_.partitions_per_txn);
        break;
      case KvConfig::Placement::kPctMulti:
        FillPartitioned(
            p, rng_.Percent(static_cast<unsigned>(config_.pct_multi)) ? 2 : 1);
        break;
    }
  }

 private:
  // Hot/cold split over the whole key space (used by kUniform) or within a
  // partition's residue class.
  void FillUniform(KvParams* p) {
    const std::uint64_t n = config_.num_records;
    const std::uint64_t hot = config_.hot_records;
    int i = 0;
    if (hot > 0) {
      for (int h = 0; h < config_.hot_ops; ++h) {
        p->keys[i] = DistinctDraw(p, i, 0, hot);
        ++i;
      }
    }
    for (; i < p->n_ops; ++i) {
      p->keys[i] = DistinctDraw(p, i, hot, n);
    }
  }

  // Constrains all keys to exactly `k` partitions (residue classes).
  void FillPartitioned(KvParams* p, int k) {
    const int parts = config_.num_partitions;
    ORTHRUS_DCHECK(k >= 1 && k <= parts);
    ORTHRUS_DCHECK(k <= p->n_ops);
    int chosen[KvParams::kMaxOps];
    chosen[0] = config_.local_affinity
                    ? worker_id_ % parts
                    : static_cast<int>(rng_.NextU64(parts));
    for (int j = 1; j < k; ++j) {
      bool dup = true;
      while (dup) {
        chosen[j] = static_cast<int>(rng_.NextU64(parts));
        dup = false;
        for (int m = 0; m < j; ++m) dup |= (chosen[m] == chosen[j]);
      }
    }
    // Every chosen partition receives at least one key; remaining ops are
    // spread round-robin so a k-partition transaction really touches k.
    const std::uint64_t hot = config_.hot_records;
    for (int i = 0; i < p->n_ops; ++i) {
      const int part = chosen[i % k];
      const bool is_hot = hot > 0 && i < config_.hot_ops;
      p->keys[i] = DrawInPartition(p, i, part, is_hot);
    }
  }

  // Distinct uniform draw from id range [lo, hi). When Zipfian skew is
  // configured and the draw spans the whole table (no hot/cold split), the
  // draw is Zipfian instead.
  std::uint64_t DistinctDraw(KvParams* p, int filled, std::uint64_t lo,
                             std::uint64_t hi) {
    ORTHRUS_DCHECK(hi > lo);
    while (true) {
      const std::uint64_t k =
          (zipf_ != nullptr && lo == 0 && hi == config_.num_records)
              ? zipf_->Next(&rng_)
              : rng_.NextInRange(lo, hi - 1);
      if (IsFresh(p, filled, k)) return k;
    }
  }

  // Distinct draw of a key in partition `part` (key % parts == part), from
  // the hot range when is_hot, else from the cold range.
  std::uint64_t DrawInPartition(KvParams* p, int filled, int part,
                                bool is_hot) {
    const int parts = config_.num_partitions;
    const std::uint64_t hot = config_.hot_records;
    while (true) {
      std::uint64_t k;
      if (is_hot) {
        const std::uint64_t count = ResidueCount(hot, parts, part);
        ORTHRUS_CHECK_MSG(count > 0, "hot set too small for partition count");
        k = static_cast<std::uint64_t>(part) +
            rng_.NextU64(count) * static_cast<std::uint64_t>(parts);
      } else {
        // Cold ids are [hot, n). Draw over the partition's full residue
        // class and reject ids that fall in the hot prefix.
        const std::uint64_t count =
            ResidueCount(config_.num_records, parts, part);
        k = static_cast<std::uint64_t>(part) +
            rng_.NextU64(count) * static_cast<std::uint64_t>(parts);
        if (hot > 0 && k < hot) continue;
      }
      if (IsFresh(p, filled, k)) return k;
    }
  }

  // True iff k differs from the `filled` keys already placed in p->keys.
  static bool IsFresh(const KvParams* p, int filled, std::uint64_t k) {
    for (int m = 0; m < filled; ++m) {
      if (p->keys[m] == k) return false;
    }
    return true;
  }

  KvConfig config_;
  txn::TxnLogic* logic_;
  txn::TxnLogic* read_logic_;
  Rng rng_;
  int worker_id_;
  std::unique_ptr<ZipfianGenerator> zipf_;
};

// ------------------------------------------------------------- workload

KvWorkload::KvWorkload(KvConfig config) : config_(config) {
  ORTHRUS_CHECK(config_.ops_per_txn <= KvParams::kMaxOps);
  ORTHRUS_CHECK(config_.hot_ops <= config_.ops_per_txn);
  if (config_.zipf_theta > 0.0) {
    ORTHRUS_CHECK_MSG(config_.hot_records == 0,
                      "zipfian skew and hot/cold split are exclusive");
    ORTHRUS_CHECK_MSG(config_.placement == KvConfig::Placement::kUniform,
                      "zipfian skew requires uniform placement");
  }
  if (config_.hot_records > 0) {
    ORTHRUS_CHECK(config_.hot_records < config_.num_records);
  }
  if (config_.read_only) {
    logic_ = std::make_unique<ReadLogic>();
  } else {
    logic_ = std::make_unique<RmwLogic>();
  }
  if (config_.pct_read_only > 0) {
    ORTHRUS_CHECK_MSG(!config_.read_only,
                      "pct_read_only mixes reads into an RMW stream; a "
                      "read-only stream has nothing to mix");
    ORTHRUS_CHECK(config_.pct_read_only <= 100);
    read_logic_ = std::make_unique<ReadLogic>();
  }
}

KvWorkload::~KvWorkload() = default;

std::string KvWorkload::name() const {
  std::string n = config_.read_only ? "kv-read" : "kv-rmw";
  if (config_.pct_read_only > 0) {
    n += "-r" + std::to_string(config_.pct_read_only);
  }
  if (config_.hot_records > 0) {
    n += "-hot" + std::to_string(config_.hot_records);
  }
  return n;
}

void KvWorkload::Load(storage::Database* db, int num_table_partitions) {
  // The run-time partition universe (lock routing for ORTHRUS, data routing
  // for Partitioned-store, key targeting for the generator) is
  // config_.num_partitions. Split tables must be built with exactly that
  // count, because index routing reuses the same partitioner.
  const int table_parts = std::max(1, num_table_partitions);
  if (table_parts > 1) {
    ORTHRUS_CHECK_MSG(table_parts == config_.num_partitions,
                      "split index partition count must equal the workload's "
                      "partition universe");
  }
  db->partitioner().n = config_.num_partitions;
  db->partitioner().mode = storage::Partitioner::Mode::kModulo;
  storage::Table* table = db->CreateTable(
      kTableId, "kv", config_.num_records, config_.row_bytes, table_parts);
  for (std::uint64_t k = 0; k < config_.num_records; ++k) {
    const int part = table_parts > 1 ? db->partitioner().PartOf(k) : 0;
    std::uint64_t* row = static_cast<std::uint64_t*>(table->Insert(k, part));
    row[0] = 0;                // RMW counter
    row[1] = k * 2654435761u;  // payload word
  }
}

std::unique_ptr<TxnSource> KvWorkload::MakeSource(int worker_id) const {
  return std::make_unique<Source>(config_, logic_.get(), read_logic_.get(),
                                  worker_id);
}

std::uint64_t KvWorkload::SumCounters(const storage::Database& db) const {
  const storage::Table* table = db.GetTable(kTableId);
  std::uint64_t sum = 0;
  for (std::uint64_t slot = 0; slot < table->size(); ++slot) {
    sum += static_cast<const std::uint64_t*>(table->RowBySlot(slot))[0];
  }
  return sum;
}

}  // namespace orthrus::workload
