#include "storage/database.h"

namespace orthrus::storage {

Table* Database::CreateTable(std::uint32_t id, std::string name,
                             std::uint64_t capacity, std::uint32_t row_bytes,
                             int num_partitions) {
  ORTHRUS_CHECK_MSG(id == tables_.size(), "table ids must be dense");
  // lint:allow-alloc schema setup, before any worker runs
  tables_.push_back(std::make_unique<Table>(id, std::move(name), capacity,
                                            row_bytes, num_partitions,
                                            arena_));
  return tables_.back().get();
}

}  // namespace orthrus::storage
