// Fixed-capacity in-memory table: a slab of rows plus an open-addressing
// hash index from 64-bit keys to row slots.
//
// Loading is single-threaded (setup time). At run time the primary index is
// read-only — TPC-C's inserts (orders, order lines, history) go to append
// regions whose placement is derived from counters already protected by the
// workload's own logical locks, so the index needs no latching. This mirrors
// the paper's scope: it studies concurrency control, explicitly leaving
// index contention to complementary work (PLP).
//
// A table can be built "split" into per-partition sub-indexes (Section 4.3's
// SPLIT variants): same data, but each partition's index is small enough to
// stay cache-resident, which lowers the modeled probe cost.
#ifndef ORTHRUS_STORAGE_TABLE_H_
#define ORTHRUS_STORAGE_TABLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/macros.h"
#include "hal/slab_arena.h"
#include "storage/epoch_clock.h"
#include "storage/storage_cost.h"

namespace orthrus::storage {

inline constexpr std::uint64_t kNoSlot = ~0ull;

class Table {
 public:
  // `id`: catalog id. `capacity`: max rows. `row_bytes`: payload size.
  // `num_partitions` > 1 builds a split (physically partitioned) index;
  // partition of a key is supplied by the caller at insert/lookup time so
  // the table stays agnostic of the partitioning function. `arena`, when
  // non-null, backs the row slab (NUMA node binding / huge pages — see
  // hal::SlabArena); it must outlive the table. Null keeps the owned heap
  // slab.
  Table(std::uint32_t id, std::string name, std::uint64_t capacity,
        std::uint32_t row_bytes, int num_partitions = 1,
        hal::SlabArena* arena = nullptr);

  std::uint32_t id() const { return id_; }
  const std::string& name() const { return name_; }
  std::uint64_t capacity() const { return capacity_; }
  std::uint64_t size() const { return size_; }
  std::uint32_t row_bytes() const { return row_bytes_; }
  // Slab stride per row: row_bytes rounded up to 8-byte alignment, so the
  // word-granular access every workload performs is never misaligned even
  // for odd payload sizes (100B YCSB rows, 1000B paper-scale rows).
  std::uint32_t row_stride() const { return row_stride_; }
  int num_partitions() const { return num_partitions_; }

  // --- Setup-time API (single-threaded) --------------------------------

  // Inserts a new key, returning its row pointer. Aborts on duplicate key
  // or capacity overflow: loaders are deterministic, so either is a bug.
  void* Insert(std::uint64_t key, int partition = 0);

  // --- Run-time API ----------------------------------------------------

  // Returns the row for `key` or nullptr. Charges the modeled probe cost.
  void* Lookup(std::uint64_t key, int partition = 0);

  // Probe without the modeled charge (verification / loaders).
  void* LookupRaw(std::uint64_t key, int partition = 0) const;

  // Slot number of a row pointer previously returned by Lookup/Insert/
  // RowBySlot. Used by the redo log to address rows stably across processes
  // (pointers die with the process; slots survive into a reloaded slab).
  std::uint64_t SlotOfRow(const void* row) const {
    const auto* p = static_cast<const std::uint8_t*>(row);
    ORTHRUS_DCHECK(p >= rows_ && p < rows_ + capacity_ * row_stride_);
    return static_cast<std::uint64_t>(p - rows_) / row_stride_;
  }

  // Row address by slot number (append-region style access).
  void* RowBySlot(std::uint64_t slot) {
    ORTHRUS_DCHECK(slot < capacity_);
    return rows_ + slot * row_stride_;
  }
  const void* RowBySlot(std::uint64_t slot) const {
    ORTHRUS_DCHECK(slot < capacity_);
    return rows_ + slot * row_stride_;
  }

  // Allocates `n` fresh slots from the tail of the slab without touching the
  // hash index. Setup-time only; used to reserve append regions.
  std::uint64_t ReserveSlots(std::uint64_t n);

  // True when ReserveSlots has carved out an append region: rows appended
  // there at run time materialize outside the version protocol, so
  // snapshot-capable engines route transactions touching this table to
  // their locking path instead.
  bool has_append_region() const { return reserved_ > 0; }

  // Modeled cost of touching one row of this table.
  hal::Cycles RowAccessCost() const { return row_cost_; }

  // Modeled cost of one index probe (depends on split configuration).
  hal::Cycles ProbeCost() const { return probe_cost_; }

  const StorageCostModel& cost_model() const { return cost_model_; }
  void set_cost_model(const StorageCostModel& m);

  // --- Snapshot version pairs (epoch-stamped) --------------------------
  //
  // Opt-in two-slot versioned storage for lock-free snapshot reads. The
  // main slab stays authoritative and is never read by snapshot readers;
  // each row additionally owns two version slots (newest committed image
  // and its predecessor) plus one atomic meta word packing
  // (active slot, newest stamp S, previous stamp P). Writers install the
  // post-image under their X lock; readers at read epoch R copy whichever
  // slot's stamp is the newest <= R. Slot reuse is gated on
  // EpochClock::ReaderFloor() (see epoch_clock.h for the protocol and its
  // race-freedom/liveness argument). When versions are disabled nothing is
  // allocated and no path charges anything: byte-identical to a build
  // without this feature.

  // Setup-time (single-threaded): allocates the version slabs and meta and
  // seeds every row's slot 0 with the current main image at stamp
  // EpochClock::kSeedEpoch - 1. Idempotent: calling it again reseeds from
  // the main slab (used after WAL recovery replays into the main rows).
  void EnableVersions();
  bool versions_enabled() const { return version_meta_ != nullptr; }

  // Writer-side install, under the caller's X lock on the row, after the
  // transaction logic has written the main image. `epoch` is the commit
  // epoch loaded via `clock` after publishing the caller's writer
  // heartbeat (EpochClock::PublishWriter) — that publication order is what
  // keeps the read epoch below `epoch` until the caller's next idle
  // publish. May spin on the reader floor; the spin publishes the caller's
  // reader heartbeat and offers ticks, so it cannot deadlock.
  void InstallVersion(std::uint64_t slot, std::uint64_t epoch,
                      EpochClock* clock, int hb_slot,
                      EpochClock::PublishCache* cache);

  // Reader-side snapshot copy at read epoch `read_epoch`: copies the
  // newest version stamped <= read_epoch into `dst` (row_stride() bytes).
  // Returns false when both slots are newer — the row was written twice
  // since `read_epoch`; the caller must refresh its read epoch and restart
  // the whole transaction's read set (a partial refresh would mix epochs).
  bool SnapshotRead(std::uint64_t slot, std::uint64_t read_epoch, void* dst);

  // Modeled costs of the two versioned paths (0 until EnableVersions).
  hal::Cycles VersionInstallCost() const { return version_install_cost_; }
  hal::Cycles SnapshotReadCost() const { return snapshot_read_cost_; }

 private:
  struct Index {
    std::vector<std::uint64_t> keys;   // kNoSlot-keyed sentinel = empty
    std::vector<std::uint64_t> slots;
    std::uint64_t mask = 0;
    std::uint64_t used = 0;
  };

  static std::uint64_t HashKey(std::uint64_t key);
  void RecomputeCosts();

  // Version meta packing: bit 63 = active slot, bits [31,62) = newest
  // stamp S, bits [0,31) = previous stamp P. 31 bits per epoch stamp is
  // ~2e9 group-commit intervals — unreachable in any modeled run (checked
  // at install).
  static constexpr std::uint64_t kStampMask = (1ull << 31) - 1;
  static std::uint64_t PackMeta(std::uint64_t active, std::uint64_t s,
                                std::uint64_t p) {
    return (active << 63) | (s << 31) | p;
  }
  std::uint8_t* VersionSlot(std::uint64_t slot, std::uint64_t which) {
    return version_rows_.get() + (slot * 2 + which) * row_stride_;
  }

  std::uint32_t id_;
  std::string name_;
  std::uint64_t capacity_;
  std::uint32_t row_bytes_;
  std::uint32_t row_stride_;
  int num_partitions_;
  std::uint64_t size_ = 0;       // rows inserted through the index
  std::uint64_t reserved_ = 0;   // slots handed out by ReserveSlots
  std::unique_ptr<std::uint8_t[]> owned_rows_;  // heap fallback (no arena)
  std::uint8_t* rows_ = nullptr;
  std::vector<Index> indexes_;   // one per partition
  StorageCostModel cost_model_;
  hal::Cycles probe_cost_ = 0;
  hal::Cycles row_cost_ = 0;
  // Snapshot version pairs (null/0 unless EnableVersions was called).
  std::unique_ptr<std::uint8_t[]> version_rows_;  // 2 slots per row
  std::unique_ptr<hal::Atomic<std::uint64_t>[]> version_meta_;
  hal::Cycles version_install_cost_ = 0;
  hal::Cycles snapshot_read_cost_ = 0;
};

}  // namespace orthrus::storage

#endif  // ORTHRUS_STORAGE_TABLE_H_
