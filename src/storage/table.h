// Fixed-capacity in-memory table: a slab of rows plus an open-addressing
// hash index from 64-bit keys to row slots.
//
// Loading is single-threaded (setup time). At run time the primary index is
// read-only — TPC-C's inserts (orders, order lines, history) go to append
// regions whose placement is derived from counters already protected by the
// workload's own logical locks, so the index needs no latching. This mirrors
// the paper's scope: it studies concurrency control, explicitly leaving
// index contention to complementary work (PLP).
//
// A table can be built "split" into per-partition sub-indexes (Section 4.3's
// SPLIT variants): same data, but each partition's index is small enough to
// stay cache-resident, which lowers the modeled probe cost.
#ifndef ORTHRUS_STORAGE_TABLE_H_
#define ORTHRUS_STORAGE_TABLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/macros.h"
#include "hal/slab_arena.h"
#include "storage/storage_cost.h"

namespace orthrus::storage {

inline constexpr std::uint64_t kNoSlot = ~0ull;

class Table {
 public:
  // `id`: catalog id. `capacity`: max rows. `row_bytes`: payload size.
  // `num_partitions` > 1 builds a split (physically partitioned) index;
  // partition of a key is supplied by the caller at insert/lookup time so
  // the table stays agnostic of the partitioning function. `arena`, when
  // non-null, backs the row slab (NUMA node binding / huge pages — see
  // hal::SlabArena); it must outlive the table. Null keeps the owned heap
  // slab.
  Table(std::uint32_t id, std::string name, std::uint64_t capacity,
        std::uint32_t row_bytes, int num_partitions = 1,
        hal::SlabArena* arena = nullptr);

  std::uint32_t id() const { return id_; }
  const std::string& name() const { return name_; }
  std::uint64_t capacity() const { return capacity_; }
  std::uint64_t size() const { return size_; }
  std::uint32_t row_bytes() const { return row_bytes_; }
  // Slab stride per row: row_bytes rounded up to 8-byte alignment, so the
  // word-granular access every workload performs is never misaligned even
  // for odd payload sizes (100B YCSB rows, 1000B paper-scale rows).
  std::uint32_t row_stride() const { return row_stride_; }
  int num_partitions() const { return num_partitions_; }

  // --- Setup-time API (single-threaded) --------------------------------

  // Inserts a new key, returning its row pointer. Aborts on duplicate key
  // or capacity overflow: loaders are deterministic, so either is a bug.
  void* Insert(std::uint64_t key, int partition = 0);

  // --- Run-time API ----------------------------------------------------

  // Returns the row for `key` or nullptr. Charges the modeled probe cost.
  void* Lookup(std::uint64_t key, int partition = 0);

  // Probe without the modeled charge (verification / loaders).
  void* LookupRaw(std::uint64_t key, int partition = 0) const;

  // Slot number of a row pointer previously returned by Lookup/Insert/
  // RowBySlot. Used by the redo log to address rows stably across processes
  // (pointers die with the process; slots survive into a reloaded slab).
  std::uint64_t SlotOfRow(const void* row) const {
    const auto* p = static_cast<const std::uint8_t*>(row);
    ORTHRUS_DCHECK(p >= rows_ && p < rows_ + capacity_ * row_stride_);
    return static_cast<std::uint64_t>(p - rows_) / row_stride_;
  }

  // Row address by slot number (append-region style access).
  void* RowBySlot(std::uint64_t slot) {
    ORTHRUS_DCHECK(slot < capacity_);
    return rows_ + slot * row_stride_;
  }
  const void* RowBySlot(std::uint64_t slot) const {
    ORTHRUS_DCHECK(slot < capacity_);
    return rows_ + slot * row_stride_;
  }

  // Allocates `n` fresh slots from the tail of the slab without touching the
  // hash index. Setup-time only; used to reserve append regions.
  std::uint64_t ReserveSlots(std::uint64_t n);

  // Modeled cost of touching one row of this table.
  hal::Cycles RowAccessCost() const { return row_cost_; }

  // Modeled cost of one index probe (depends on split configuration).
  hal::Cycles ProbeCost() const { return probe_cost_; }

  const StorageCostModel& cost_model() const { return cost_model_; }
  void set_cost_model(const StorageCostModel& m);

 private:
  struct Index {
    std::vector<std::uint64_t> keys;   // kNoSlot-keyed sentinel = empty
    std::vector<std::uint64_t> slots;
    std::uint64_t mask = 0;
    std::uint64_t used = 0;
  };

  static std::uint64_t HashKey(std::uint64_t key);
  void RecomputeCosts();

  std::uint32_t id_;
  std::string name_;
  std::uint64_t capacity_;
  std::uint32_t row_bytes_;
  std::uint32_t row_stride_;
  int num_partitions_;
  std::uint64_t size_ = 0;       // rows inserted through the index
  std::uint64_t reserved_ = 0;   // slots handed out by ReserveSlots
  std::unique_ptr<std::uint8_t[]> owned_rows_;  // heap fallback (no arena)
  std::uint8_t* rows_ = nullptr;
  std::vector<Index> indexes_;   // one per partition
  StorageCostModel cost_model_;
  hal::Cycles probe_cost_ = 0;
  hal::Cycles row_cost_ = 0;
};

}  // namespace orthrus::storage

#endif  // ORTHRUS_STORAGE_TABLE_H_
