#include "storage/secondary_index.h"

#include <algorithm>

#include "common/macros.h"

namespace orthrus::storage {

void SecondaryIndex::Add(std::uint64_t attr, std::uint64_t primary_key) {
  ORTHRUS_CHECK_MSG(!finalized_, "Add after Finalize");
  map_[attr].push_back(primary_key);
}

void SecondaryIndex::Finalize() {
  for (auto& [attr, postings] : map_) {
    std::sort(postings.begin(), postings.end());
  }
  finalized_ = true;
}

const std::vector<std::uint64_t>& SecondaryIndex::Lookup(std::uint64_t attr) {
  ORTHRUS_DCHECK(finalized_);
  hal::ConsumeCycles(probe_cost_);
  auto it = map_.find(attr);
  return it == map_.end() ? empty_ : it->second;
}

std::uint64_t SecondaryIndex::LookupMidpoint(std::uint64_t attr) {
  const std::vector<std::uint64_t>& postings = Lookup(attr);
  if (postings.empty()) return kNoMatch;
  // TPC-C 2.5.2.2: position ceil(n/2), 1-based.
  return postings[(postings.size() + 1) / 2 - 1];
}

void SecondaryIndex::OverrideForTest(std::uint64_t attr,
                                     std::vector<std::uint64_t> postings) {
  map_[attr] = std::move(postings);
}

}  // namespace orthrus::storage
