#include "storage/epoch_clock.h"

namespace orthrus::storage {

void EpochClock::Reset(int n_slots, hal::Cycles tick_interval_cycles) {
  ORTHRUS_CHECK(n_slots > 0);
  ORTHRUS_CHECK(tick_interval_cycles > 0);
  n_slots_ = n_slots;
  tick_interval_ = tick_interval_cycles;
  // Reset is single-threaded setup; all run-time paths only load/store the
  // counters allocated here. (lint:allow-alloc on each site below.)
  // lint:allow-alloc setup
  commit_epoch_ = std::make_unique<hal::Atomic<std::uint64_t>>(kSeedEpoch);
  read_epoch_ =  // lint:allow-alloc setup
      std::make_unique<hal::Atomic<std::uint64_t>>(kSeedEpoch - 1);
  reader_floor_ =  // lint:allow-alloc setup
      std::make_unique<hal::Atomic<std::uint64_t>>(kSeedEpoch - 1);
  // lint:allow-alloc setup
  next_tick_ = std::make_unique<hal::Atomic<hal::Cycles>>(0);
  // lint:allow-alloc setup
  writer_hb_ = std::make_unique<hal::Atomic<std::uint64_t>[]>(
      static_cast<std::size_t>(n_slots));
  // lint:allow-alloc setup
  reader_hb_ = std::make_unique<hal::Atomic<std::uint64_t>[]>(
      static_cast<std::size_t>(n_slots));
  for (int i = 0; i < n_slots; i++) {
    // Fresh workers start at the seed view; Reset is single-threaded.
    writer_hb_[i].RawStore(kSeedEpoch);
    reader_hb_[i].RawStore(kSeedEpoch - 1);
  }
}

void EpochClock::Tick() {
  commit_epoch_->fetch_add(1);
  FoldMins();
}

void EpochClock::FoldMins() {
  std::uint64_t min_wh = kRetired;
  std::uint64_t min_rh = kRetired;
  for (int i = 0; i < n_slots_; i++) {
    const std::uint64_t wh = writer_hb_[i].load();
    if (wh < min_wh) min_wh = wh;
    const std::uint64_t rh = reader_hb_[i].load();
    if (rh < min_rh) min_rh = rh;
  }
  // All slots retired: freeze the fold (teardown).
  if (min_wh == kRetired) return;
  // Monotone max-stores: ticks are normally serialized (single logger or
  // MaybeTick's claim), but a WAL logger and an engine-side MaybeTick may
  // coexist, so never let a stale fold move either value backwards.
  const std::uint64_t want_r = min_wh - 1;
  std::uint64_t cur = read_epoch_->load();
  while (cur < want_r && !read_epoch_->compare_exchange(cur, want_r)) {
  }
  if (min_rh != kRetired) {
    cur = reader_floor_->load();
    while (cur < min_rh && !reader_floor_->compare_exchange(cur, min_rh)) {
    }
  }
}

bool EpochClock::MaybeTick(hal::Cycles now) {
  hal::Cycles due = next_tick_->load();
  if (now < due) return false;
  if (!next_tick_->compare_exchange(due, now + tick_interval_)) return false;
  Tick();
  return true;
}

}  // namespace orthrus::storage
