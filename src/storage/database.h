// Database catalog: owns tables and the partitioning function shared by the
// engines (which partition either locks or data by it).
#ifndef ORTHRUS_STORAGE_DATABASE_H_
#define ORTHRUS_STORAGE_DATABASE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/macros.h"
#include "storage/epoch_clock.h"
#include "storage/table.h"

namespace orthrus::storage {

// Maps (table, key) to a partition in [0, n). Engines use it to route lock
// requests to concurrency-control threads (ORTHRUS) or data to physical
// partitions (Partitioned-store); workloads use it to construct transactions
// with controlled partition footprints.
struct Partitioner {
  enum class Mode {
    kModulo,          // partition = key % n  (flat key spaces: micro, YCSB)
    kWarehouseHigh32  // partition = (key >> 32) % n  (TPC-C tree schema)
  };

  int n = 1;
  Mode mode = Mode::kModulo;

  int PartOf(std::uint64_t key) const {
    const std::uint64_t basis =
        mode == Mode::kWarehouseHigh32 ? (key >> 32) : key;
    return static_cast<int>(basis % static_cast<std::uint64_t>(n));
  }
};

class Database {
 public:
  Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // Creates a table; `id` must equal the next unused catalog id so that
  // table ids double as dense vector indexes.
  Table* CreateTable(std::uint32_t id, std::string name,
                     std::uint64_t capacity, std::uint32_t row_bytes,
                     int num_partitions = 1);

  Table* GetTable(std::uint32_t id) {
    ORTHRUS_DCHECK(id < tables_.size());
    return tables_[id].get();
  }
  const Table* GetTable(std::uint32_t id) const {
    ORTHRUS_DCHECK(id < tables_.size());
    return tables_[id].get();
  }

  std::size_t num_tables() const { return tables_.size(); }

  Partitioner& partitioner() { return partitioner_; }
  const Partitioner& partitioner() const { return partitioner_; }

  // Arena backing row slabs of tables created *after* this call (NUMA node
  // binding / huge pages). Must outlive the database. Null (the default)
  // keeps per-table heap slabs.
  void set_arena(hal::SlabArena* arena) { arena_ = arena; }
  hal::SlabArena* arena() const { return arena_; }

  // Setup-time (engine Run start): (re)seeds version pairs on every table
  // and resets the shared epoch clock. Safe to call again on the same
  // database — a rerun (or a post-recovery run) starts from a fresh
  // snapshot baseline built from the current main slabs. Leaves the
  // database untouched when never called: the snapshot machinery is pure
  // opt-in.
  void EnableSnapshotVersions(int n_hb_slots,
                              hal::Cycles tick_interval_cycles) {
    for (auto& t : tables_) t->EnableVersions();
    epoch_clock_.Reset(n_hb_slots, tick_interval_cycles);
  }
  bool snapshots_enabled() const { return epoch_clock_.enabled(); }
  EpochClock* epoch_clock() { return &epoch_clock_; }

 private:
  std::vector<std::unique_ptr<Table>> tables_;
  Partitioner partitioner_;
  hal::SlabArena* arena_ = nullptr;
  EpochClock epoch_clock_;
};

}  // namespace orthrus::storage

#endif  // ORTHRUS_STORAGE_DATABASE_H_
