// Global epoch clock for snapshot reads (Silo-style, PR-6's group-commit
// epoch recipe applied to versioned storage).
//
// Three monotone counters, all modeled atomics:
//
//  * commit epoch E — advanced by the ticker (the WAL group-commit logger
//    when durability is on, any worker's interval-gated MaybeTick otherwise).
//    Writers load it under their X locks and stamp the versions they install.
//  * read epoch R — the stable snapshot: every transaction that stamped a
//    version <= R has fully committed and published it. Maintained as
//    (min writer heartbeat) - 1: a worker publishes its writer heartbeat
//    wh := E at install time (and wh := commit epoch whenever it has no
//    install in flight), so an in-flight writer always pins R below its
//    stamp. Snapshot readers load R once per transaction and see a
//    consistent cut: mixed-epoch rows are impossible because nothing
//    stamped <= R is still being written.
//  * reader floor F — (min reader heartbeat): a worker publishes its reader
//    heartbeat rh := R' (the read epoch it observed) only when it has no
//    snapshot read in flight, so every live reader's snapshot is >= F.
//    Writers use F to gate version-slot reuse: a slot whose successor
//    version is stamped S may be overwritten only once F >= S, i.e. once no
//    live reader can still need anything older than S.
//
// Race-detector cleanliness: every data edge of the protocol runs through
// these atomics. A reader's plain copy of a version slab happens-before the
// slab's eventual reuse via reader-heartbeat release -> ticker acquire ->
// floor release -> installing writer's acquire; a writer's plain install
// happens-before every later read via the per-row meta word it releases
// after copying (storage/table.h). No validated/seqlock reads anywhere, so
// the PR-8 vector-clock detector proves the protocol race-free rather than
// flagging benign races.
//
// Liveness: a writer spinning for F >= S keeps publishing its reader
// heartbeat (it has no snapshot read in flight) and keeps offering ticks,
// and lock waiters keep publishing both heartbeats. In any stalled state the
// in-flight writer with the smallest stamp E_min needs only F >= S where
// S < E_min, and every in-flight writer heartbeat is its own stamp
// >= E_min >= S + 1, so the read epoch — and with it every reader
// heartbeat — can always reach S. Induction on E_min: no deadlock.
#ifndef ORTHRUS_STORAGE_EPOCH_CLOCK_H_
#define ORTHRUS_STORAGE_EPOCH_CLOCK_H_

#include <cstdint>
#include <memory>

#include "common/macros.h"
#include "hal/hal.h"

namespace orthrus::storage {

class EpochClock {
 public:
  // First epoch writers stamp; loaded rows are seeded at kSeedEpoch - 1 so
  // the initial read epoch (0) already serves every loaded image.
  static constexpr std::uint64_t kSeedEpoch = 1;
  // Heartbeat sentinel for a retired slot (dropped from the mins).
  static constexpr std::uint64_t kRetired = ~0ull;

  // Per-worker cache of the last published heartbeat values, so a quiet
  // boundary costs two shared (L1-resident) loads and no stores.
  struct PublishCache {
    std::uint64_t wh = 0;
    std::uint64_t rh = 0;
  };

  // Setup-time (single-threaded). `n_slots` heartbeat slots, one per worker
  // that runs transactions; `tick_interval_cycles` gates MaybeTick.
  void Reset(int n_slots, hal::Cycles tick_interval_cycles);

  int n_slots() const { return n_slots_; }
  bool enabled() const { return n_slots_ > 0; }

  // --- run-time, modeled accesses --------------------------------------

  std::uint64_t CommitEpoch() { return commit_epoch_->load(); }
  std::uint64_t ReadEpoch() { return read_epoch_->load(); }
  std::uint64_t ReaderFloor() { return reader_floor_->load(); }

  // Idle-point heartbeat: no install and no snapshot read in flight on
  // `slot`. Publishes wh := commit epoch and rh := read epoch (stores only
  // on change, via `cache`).
  void PublishIdle(int slot, PublishCache* cache) {
    PublishWriter(slot, CommitEpoch(), cache);
    PublishReader(slot, ReadEpoch(), cache);
  }

  // Install-time heartbeat: the worker is about to stamp versions with
  // `epoch` and must pin the read epoch below it until its next publish.
  // Legal any time before the stamp is used; monotone per slot.
  void PublishWriter(int slot, std::uint64_t epoch, PublishCache* cache) {
    ORTHRUS_DCHECK(slot >= 0 && slot < n_slots_);
    if (epoch != cache->wh) {
      writer_hb_[slot].store(epoch);
      cache->wh = epoch;
    }
  }

  // Reader heartbeat: no snapshot read in flight on `slot` (between
  // transactions, in lock-wait loops, or while a writer spins on the
  // floor). Never call mid-snapshot — a live reader's epoch must stay
  // >= its worker's last published rh.
  void PublishReader(int slot, std::uint64_t read_epoch, PublishCache* cache) {
    ORTHRUS_DCHECK(slot >= 0 && slot < n_slots_);
    if (read_epoch != cache->rh) {
      reader_hb_[slot].store(read_epoch);
      cache->rh = read_epoch;
    }
  }

  // Permanently drops `slot` from both mins (worker exit).
  void Retire(int slot) {
    ORTHRUS_DCHECK(slot >= 0 && slot < n_slots_);
    writer_hb_[slot].store(kRetired);
    reader_hb_[slot].store(kRetired);
  }

  // Advances the commit epoch and folds heartbeats into the read epoch and
  // reader floor. Single-caller cadence: the WAL group-commit logger when
  // durability is on (wal::GroupCommitLog::set_epoch_clock), else whoever
  // wins MaybeTick.
  void Tick();

  // Folds the heartbeat mins into the read epoch and reader floor WITHOUT
  // advancing the commit epoch. Any spinner may call it: a writer stalled
  // on the floor or a reader whose snapshot went stale converges as soon
  // as the other workers have published, instead of waiting out the tick
  // interval — which also advances E and would manufacture the next stall.
  // Monotone CAS-max stores, so concurrent folds (or a racing Tick) are
  // safe, and the fold's acquire-of-heartbeats / release-of-floor keeps the
  // detector's happens-before chain identical to the ticker's.
  void FoldMins();

  // Interval-gated Tick; any worker may offer one. Returns whether this
  // call ticked.
  bool MaybeTick(hal::Cycles now);

 private:
  int n_slots_ = 0;
  hal::Cycles tick_interval_ = 0;
  std::unique_ptr<hal::Atomic<std::uint64_t>> commit_epoch_;
  std::unique_ptr<hal::Atomic<std::uint64_t>> read_epoch_;
  std::unique_ptr<hal::Atomic<std::uint64_t>> reader_floor_;
  std::unique_ptr<hal::Atomic<hal::Cycles>> next_tick_;
  std::unique_ptr<hal::Atomic<std::uint64_t>[]> writer_hb_;
  std::unique_ptr<hal::Atomic<std::uint64_t>[]> reader_hb_;
};

}  // namespace orthrus::storage

#endif  // ORTHRUS_STORAGE_EPOCH_CLOCK_H_
