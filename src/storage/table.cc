#include "storage/table.h"

#include <cstring>

namespace orthrus::storage {

namespace {
// Sentinel stored in Index::keys for an empty cell. Valid keys equal to the
// sentinel are rejected at insert.
constexpr std::uint64_t kEmptyKey = ~0ull;
}  // namespace

Table::Table(std::uint32_t id, std::string name, std::uint64_t capacity,
             std::uint32_t row_bytes, int num_partitions,
             hal::SlabArena* arena)
    : id_(id),
      name_(std::move(name)),
      capacity_(capacity),
      row_bytes_(row_bytes),
      row_stride_((row_bytes + 7u) & ~7u),
      num_partitions_(num_partitions) {
  ORTHRUS_CHECK(capacity >= 1);
  ORTHRUS_CHECK(row_bytes >= 8);
  ORTHRUS_CHECK(num_partitions >= 1);
  if (arena != nullptr) {
    // Arena storage is already zeroed (fresh mmap pages, no reuse).
    rows_ = static_cast<std::uint8_t*>(
        arena->Allocate(capacity * row_stride_, kCacheLineSize));
  } else {
    // lint:allow-alloc schema setup, before any worker runs
    owned_rows_ = std::make_unique<std::uint8_t[]>(capacity * row_stride_);
    std::memset(owned_rows_.get(), 0, capacity * row_stride_);
    rows_ = owned_rows_.get();
  }

  // Size each partition's index for the worst case (all rows in one
  // partition would still fit); 2x occupancy headroom keeps probes short.
  const std::uint64_t per_part =
      NextPowerOfTwo(2 * (capacity / num_partitions + 1));
  indexes_.resize(num_partitions);
  for (Index& idx : indexes_) {
    idx.keys.assign(per_part, kEmptyKey);
    idx.slots.assign(per_part, kNoSlot);
    idx.mask = per_part - 1;
  }
  RecomputeCosts();
}

void Table::set_cost_model(const StorageCostModel& m) {
  cost_model_ = m;
  RecomputeCosts();
}

void Table::RecomputeCosts() {
  // Bytes of index metadata a probe walks over: keys + slots arrays of one
  // partition's index (the unit that competes for a core's cache).
  const std::uint64_t per_part_bytes =
      (indexes_.empty() ? 0
                        : indexes_[0].keys.size() * 2 * sizeof(std::uint64_t));
  probe_cost_ = cost_model_.ProbeCost(per_part_bytes);
  row_cost_ = cost_model_.RowCost(row_bytes_);
  if (versions_enabled()) {
    version_install_cost_ = cost_model_.version_install_cycles + row_cost_;
    snapshot_read_cost_ = cost_model_.snapshot_read_cycles + row_cost_;
  }
}

void Table::EnableVersions() {
  if (version_meta_ == nullptr) {
    // Setup-time slabs: single-threaded enable, before any worker runs.
    version_rows_ =  // lint:allow-alloc setup
        std::make_unique<std::uint8_t[]>(capacity_ * 2 * row_stride_);
    version_meta_ =  // lint:allow-alloc setup
        std::make_unique<hal::Atomic<std::uint64_t>[]>(capacity_);
  }
  // (Re)seed slot 0 of every row from the main slab at the pre-first
  // epoch: after WAL recovery this folds the replayed images into the
  // snapshot baseline, exactly like a fresh load.
  for (std::uint64_t s = 0; s < capacity_; s++) {
    std::memcpy(VersionSlot(s, 0), RowBySlot(s), row_stride_);
    version_meta_[s].RawStore(PackMeta(0, EpochClock::kSeedEpoch - 1,
                                       EpochClock::kSeedEpoch - 1));
  }
  RecomputeCosts();
}

void Table::InstallVersion(std::uint64_t slot, std::uint64_t epoch,
                           EpochClock* clock, int hb_slot,
                           EpochClock::PublishCache* cache) {
  ORTHRUS_DCHECK(versions_enabled());
  ORTHRUS_DCHECK(slot < capacity_);
  ORTHRUS_CHECK_MSG(epoch <= kStampMask, "epoch overflows the stamp field");
  hal::ConsumeCycles(version_install_cost_);
  const std::uint64_t meta = version_meta_[slot].load();
  const std::uint64_t active = meta >> 63;
  const std::uint64_t s = (meta >> 31) & kStampMask;
  std::uint8_t* dst = nullptr;
  std::uint64_t next_meta = 0;
  if (s == epoch) {
    // Same-epoch re-install: overwrite the active slot in place. No live
    // snapshot can be reading it — the read epoch stays below `epoch`
    // until every epoch-`epoch` writer (including us, via the writer
    // heartbeat published before this install) publishes a newer one.
    dst = VersionSlot(slot, active);
    next_meta = meta;  // same stamps; the store is a pure release republish
  } else {
    // Install into the older slot. Reuse is gated on the reader floor:
    // once every worker's reader heartbeat is >= S, no live reader's
    // snapshot predates S, so nothing can still need the version being
    // dropped. The spin publishes our own reader heartbeat (we have no
    // snapshot read in flight) and offers ticks; epoch_clock.h proves this
    // makes the wait finite.
    while (clock->ReaderFloor() < s) {
      clock->PublishReader(hb_slot, clock->ReadEpoch(), cache);
      // Fold the mins ourselves instead of waiting out the tick interval:
      // the stall ends as soon as every worker has published, and the
      // commit epoch stays put (ticking here would shrink the same-epoch
      // fast path above and manufacture the next slow install).
      clock->FoldMins();
      clock->MaybeTick(hal::Now());
      hal::CpuRelax();
    }
    dst = VersionSlot(slot, 1 - active);
    next_meta = PackMeta(1 - active, epoch, s);
  }
  hal::RaceCheck(dst, row_stride_, /*is_write=*/true,
                 "storage.version.install");
  std::memcpy(dst, RowBySlot(slot), row_stride_);
  // Epoch-stamp publication: the release that orders the copy above before
  // every future snapshot read of this row.
  version_meta_[slot].store(next_meta);
}

bool Table::SnapshotRead(std::uint64_t slot, std::uint64_t read_epoch,
                         void* dst) {
  ORTHRUS_DCHECK(versions_enabled());
  ORTHRUS_DCHECK(slot < capacity_);
  hal::ConsumeCycles(snapshot_read_cost_);
  const std::uint64_t meta = version_meta_[slot].load();
  const std::uint64_t active = meta >> 63;
  const std::uint64_t s = (meta >> 31) & kStampMask;
  const std::uint64_t p = meta & kStampMask;
  std::uint64_t which = 0;
  if (s <= read_epoch) {
    which = active;
  } else if (p <= read_epoch) {
    which = 1 - active;
  } else {
    return false;  // written twice since read_epoch: snapshot too old
  }
  const std::uint8_t* src = VersionSlot(slot, which);
  hal::RaceCheck(src, row_stride_, /*is_write=*/false,
                 "storage.version.read");
  std::memcpy(dst, src, row_stride_);
  return true;
}

std::uint64_t Table::HashKey(std::uint64_t key) {
  // Fibonacci hashing with an extra xor-fold; cheap and well-spread for the
  // structured keys TPC-C uses.
  std::uint64_t h = key * 0x9E3779B97F4A7C15ull;
  return h ^ (h >> 29);
}

void* Table::Insert(std::uint64_t key, int partition) {
  ORTHRUS_CHECK(key != kEmptyKey);
  ORTHRUS_CHECK(partition >= 0 && partition < num_partitions_);
  ORTHRUS_CHECK_MSG(size_ + reserved_ < capacity_, "table full");
  Index& idx = indexes_[partition];
  ORTHRUS_CHECK_MSG(idx.used * 2 <= idx.mask + 1, "index overfull");
  std::uint64_t pos = HashKey(key) & idx.mask;
  while (idx.keys[pos] != kEmptyKey) {
    ORTHRUS_CHECK_MSG(idx.keys[pos] != key, "duplicate key");
    pos = (pos + 1) & idx.mask;
  }
  const std::uint64_t slot = size_++;
  idx.keys[pos] = key;
  idx.slots[pos] = slot;
  idx.used++;
  return RowBySlot(slot);
}

void* Table::Lookup(std::uint64_t key, int partition) {
  hal::ConsumeCycles(probe_cost_);
  return LookupRaw(key, partition);
}

void* Table::LookupRaw(std::uint64_t key, int partition) const {
  ORTHRUS_DCHECK(partition >= 0 && partition < num_partitions_);
  const Index& idx = indexes_[partition];
  std::uint64_t pos = HashKey(key) & idx.mask;
  while (idx.keys[pos] != kEmptyKey) {
    if (idx.keys[pos] == key) {
      return const_cast<Table*>(this)->RowBySlot(idx.slots[pos]);
    }
    pos = (pos + 1) & idx.mask;
  }
  return nullptr;
}

std::uint64_t Table::ReserveSlots(std::uint64_t n) {
  ORTHRUS_CHECK_MSG(size_ + reserved_ + n <= capacity_,
                    "append region exceeds table capacity");
  // Reserved slots grow down from the top of the slab so they never collide
  // with index-inserted rows growing up from slot 0.
  reserved_ += n;
  return capacity_ - reserved_;
}

}  // namespace orthrus::storage
