#include "storage/table.h"

#include <cstring>

namespace orthrus::storage {

namespace {
// Sentinel stored in Index::keys for an empty cell. Valid keys equal to the
// sentinel are rejected at insert.
constexpr std::uint64_t kEmptyKey = ~0ull;
}  // namespace

Table::Table(std::uint32_t id, std::string name, std::uint64_t capacity,
             std::uint32_t row_bytes, int num_partitions,
             hal::SlabArena* arena)
    : id_(id),
      name_(std::move(name)),
      capacity_(capacity),
      row_bytes_(row_bytes),
      row_stride_((row_bytes + 7u) & ~7u),
      num_partitions_(num_partitions) {
  ORTHRUS_CHECK(capacity >= 1);
  ORTHRUS_CHECK(row_bytes >= 8);
  ORTHRUS_CHECK(num_partitions >= 1);
  if (arena != nullptr) {
    // Arena storage is already zeroed (fresh mmap pages, no reuse).
    rows_ = static_cast<std::uint8_t*>(
        arena->Allocate(capacity * row_stride_, kCacheLineSize));
  } else {
    owned_rows_ = std::make_unique<std::uint8_t[]>(capacity * row_stride_);
    std::memset(owned_rows_.get(), 0, capacity * row_stride_);
    rows_ = owned_rows_.get();
  }

  // Size each partition's index for the worst case (all rows in one
  // partition would still fit); 2x occupancy headroom keeps probes short.
  const std::uint64_t per_part =
      NextPowerOfTwo(2 * (capacity / num_partitions + 1));
  indexes_.resize(num_partitions);
  for (Index& idx : indexes_) {
    idx.keys.assign(per_part, kEmptyKey);
    idx.slots.assign(per_part, kNoSlot);
    idx.mask = per_part - 1;
  }
  RecomputeCosts();
}

void Table::set_cost_model(const StorageCostModel& m) {
  cost_model_ = m;
  RecomputeCosts();
}

void Table::RecomputeCosts() {
  // Bytes of index metadata a probe walks over: keys + slots arrays of one
  // partition's index (the unit that competes for a core's cache).
  const std::uint64_t per_part_bytes =
      (indexes_.empty() ? 0
                        : indexes_[0].keys.size() * 2 * sizeof(std::uint64_t));
  probe_cost_ = cost_model_.ProbeCost(per_part_bytes);
  row_cost_ = cost_model_.RowCost(row_bytes_);
}

std::uint64_t Table::HashKey(std::uint64_t key) {
  // Fibonacci hashing with an extra xor-fold; cheap and well-spread for the
  // structured keys TPC-C uses.
  std::uint64_t h = key * 0x9E3779B97F4A7C15ull;
  return h ^ (h >> 29);
}

void* Table::Insert(std::uint64_t key, int partition) {
  ORTHRUS_CHECK(key != kEmptyKey);
  ORTHRUS_CHECK(partition >= 0 && partition < num_partitions_);
  ORTHRUS_CHECK_MSG(size_ + reserved_ < capacity_, "table full");
  Index& idx = indexes_[partition];
  ORTHRUS_CHECK_MSG(idx.used * 2 <= idx.mask + 1, "index overfull");
  std::uint64_t pos = HashKey(key) & idx.mask;
  while (idx.keys[pos] != kEmptyKey) {
    ORTHRUS_CHECK_MSG(idx.keys[pos] != key, "duplicate key");
    pos = (pos + 1) & idx.mask;
  }
  const std::uint64_t slot = size_++;
  idx.keys[pos] = key;
  idx.slots[pos] = slot;
  idx.used++;
  return RowBySlot(slot);
}

void* Table::Lookup(std::uint64_t key, int partition) {
  hal::ConsumeCycles(probe_cost_);
  return LookupRaw(key, partition);
}

void* Table::LookupRaw(std::uint64_t key, int partition) const {
  ORTHRUS_DCHECK(partition >= 0 && partition < num_partitions_);
  const Index& idx = indexes_[partition];
  std::uint64_t pos = HashKey(key) & idx.mask;
  while (idx.keys[pos] != kEmptyKey) {
    if (idx.keys[pos] == key) {
      return const_cast<Table*>(this)->RowBySlot(idx.slots[pos]);
    }
    pos = (pos + 1) & idx.mask;
  }
  return nullptr;
}

std::uint64_t Table::ReserveSlots(std::uint64_t n) {
  ORTHRUS_CHECK_MSG(size_ + reserved_ + n <= capacity_,
                    "append region exceeds table capacity");
  // Reserved slots grow down from the top of the slab so they never collide
  // with index-inserted rows growing up from slot 0.
  reserved_ += n;
  return capacity_ - reserved_;
}

}  // namespace orthrus::storage
