// Cost model for storage operations under simulation.
//
// Record payloads and index probes are represented as declared cycle costs
// (hal::ConsumeCycles) rather than per-line modeled accesses: modeling every
// payload byte as a cache line would make simulation quadratically slower
// while adding nothing to the contention story the paper is about. The one
// storage effect that *is* performance-relevant to the paper is the cache
// footprint of indexes (Section 4.3's SPLIT variants), which this model
// captures by making probe cost grow with the log of the index's size
// relative to the cache hierarchy.
#ifndef ORTHRUS_STORAGE_STORAGE_COST_H_
#define ORTHRUS_STORAGE_STORAGE_COST_H_

#include <cmath>
#include <cstdint>

#include "hal/hal.h"

namespace orthrus::storage {

struct StorageCostModel {
  // Index probe: base hash+compare work plus a miss penalty that grows as
  // the index outgrows the per-core cache (~1 MiB modeled capacity).
  hal::Cycles probe_base_cycles = 12;
  hal::Cycles probe_miss_cycles = 9;       // per doubling beyond cache size
  std::uint64_t cached_index_bytes = 1ull << 20;

  // Row access: per-64-byte-line cost of touching payload data.
  hal::Cycles row_line_cycles = 12;

  // Fixed computation per logical operation inside a stored procedure.
  hal::Cycles op_compute_cycles = 60;

  // Snapshot version pairs (Table::EnableVersions). An install copies the
  // committed row image into a version slot (per-line cost below, plus this
  // fixed stamp/publish overhead); a snapshot read copies the chosen
  // version out. Charged only on the versioned paths, so runs that never
  // enable versions are byte-identical.
  hal::Cycles version_install_cycles = 30;
  hal::Cycles snapshot_read_cycles = 10;

  hal::Cycles ProbeCost(std::uint64_t index_bytes) const {
    if (index_bytes <= cached_index_bytes) return probe_base_cycles;
    const double doublings = std::log2(static_cast<double>(index_bytes) /
                                       static_cast<double>(cached_index_bytes));
    return probe_base_cycles +
           static_cast<hal::Cycles>(doublings * probe_miss_cycles);
  }

  hal::Cycles RowCost(std::uint32_t row_bytes) const {
    const std::uint32_t lines = (row_bytes + 63) / 64;
    return static_cast<hal::Cycles>(lines) * row_line_cycles;
  }
};

}  // namespace orthrus::storage

#endif  // ORTHRUS_STORAGE_STORAGE_COST_H_
