// Secondary index mapping a non-unique attribute hash to primary keys.
// TPC-C's Payment-by-last-name path reads this index to find the customer;
// since the read happens before locks are taken, it is the OLLP
// reconnaissance read of Section 3.2 (the access-set estimate it yields is
// validated again at execution time).
//
// The index is bulk-built at load time and read-only during runs, matching
// the paper's scope (index contention is out of scope / PLP territory). A
// test hook can mutate entries to force OLLP estimate mismatches.
#ifndef ORTHRUS_STORAGE_SECONDARY_INDEX_H_
#define ORTHRUS_STORAGE_SECONDARY_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "hal/hal.h"

namespace orthrus::storage {

class SecondaryIndex {
 public:
  explicit SecondaryIndex(hal::Cycles probe_cost = 40)
      : probe_cost_(probe_cost) {}

  // Setup-time: registers primary_key under attribute value `attr`.
  void Add(std::uint64_t attr, std::uint64_t primary_key);

  // Setup-time: sorts all posting lists; must be called before lookups.
  void Finalize();

  // Returns the posting list for `attr` (sorted ascending), or an empty
  // list. Charges the modeled probe cost when called from a core.
  const std::vector<std::uint64_t>& Lookup(std::uint64_t attr);

  // TPC-C rule: pick the entry at position ceil(n/2) (1-based) of the list
  // ordered by first name — our lists are sorted by primary key, which
  // encodes the same ordering. Returns kNoMatch on empty.
  static constexpr std::uint64_t kNoMatch = ~0ull;
  std::uint64_t LookupMidpoint(std::uint64_t attr);

  // Test hook: overwrite the posting list for `attr` (simulates a stale
  // OLLP estimate caused by a concurrent index mutation).
  void OverrideForTest(std::uint64_t attr,
                       std::vector<std::uint64_t> postings);

  std::size_t num_attrs() const { return map_.size(); }

 private:
  std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> map_;
  std::vector<std::uint64_t> empty_;
  hal::Cycles probe_cost_;
  bool finalized_ = false;
};

}  // namespace orthrus::storage

#endif  // ORTHRUS_STORAGE_SECONDARY_INDEX_H_
