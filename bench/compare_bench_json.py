#!/usr/bin/env python3
"""Diff two directories of nightly BENCH_*.json artifacts.

Usage: compare_bench_json.py BASELINE_DIR CURRENT_DIR [--threshold PCT]

Matches data points by (figure, series, x) and fails (exit 1) when any
point regresses by more than the threshold (default 10%) in throughput
(drop) or p99 commit latency (rise). Points present on only one side are
reported but never fail the run — figures and sweeps are allowed to come
and go. An empty or missing baseline directory exits 0 so the first
nightly after this gate lands (or after an artifact-retention gap) passes.

Latency guard: points whose baseline p99 is under --min-p99-us (default
1 us) are skipped for the latency check — sub-microsecond sim latencies
are dominated by quantization and flap far beyond any useful threshold.
"""

import argparse
import json
import os
import sys


def load_points(directory):
    """Returns {(figure, series, x): record} for every BENCH_*.json."""
    points = {}
    if not os.path.isdir(directory):
        return points
    for name in sorted(os.listdir(directory)):
        if not (name.startswith("BENCH_") and name.endswith(".json")):
            continue
        path = os.path.join(directory, name)
        try:
            with open(path) as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"warning: skipping unreadable {path}: {e}")
            continue
        figure = doc.get("figure", name)
        for p in doc.get("points", []):
            key = (figure, p.get("series", ""), str(p.get("x", "")))
            points[key] = p
    return points


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=10.0,
                    help="regression threshold in percent (default 10)")
    ap.add_argument("--min-p99-us", type=float, default=1.0,
                    help="skip latency check below this baseline p99")
    args = ap.parse_args()

    base = load_points(args.baseline)
    curr = load_points(args.current)
    if not base:
        print(f"no baseline points under {args.baseline}; passing")
        return 0
    if not curr:
        print(f"error: no current points under {args.current}")
        return 1

    tol = args.threshold / 100.0
    regressions = []
    compared = 0
    for key, b in sorted(base.items()):
        c = curr.get(key)
        label = "/".join(key)
        if c is None:
            print(f"note: point gone: {label}")
            continue
        compared += 1
        bt = b.get("throughput_txns_per_sec", 0.0)
        ct = c.get("throughput_txns_per_sec", 0.0)
        if bt > 0 and ct < bt * (1.0 - tol):
            regressions.append(
                f"{label}: throughput {bt:.0f} -> {ct:.0f} txns/s "
                f"({100.0 * (ct - bt) / bt:+.1f}%)")
        bl = b.get("p99_commit_latency_us", 0.0)
        cl = c.get("p99_commit_latency_us", 0.0)
        if bl >= args.min_p99_us and cl > bl * (1.0 + tol):
            regressions.append(
                f"{label}: p99 {bl:.2f} -> {cl:.2f} us "
                f"({100.0 * (cl - bl) / bl:+.1f}%)")
    for key in sorted(set(curr) - set(base)):
        print(f"note: new point: {'/'.join(key)}")

    print(f"compared {compared} points at ±{args.threshold:.0f}%")
    if regressions:
        print(f"\n{len(regressions)} regression(s):")
        for r in regressions:
            print(f"  FAIL {r}")
        return 1
    print("no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
