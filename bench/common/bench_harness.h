// Shared benchmark harness: builds a fresh database + simulator per data
// point, runs an engine, and prints paper-style rows.
//
// Environment knobs:
//   ORTHRUS_BENCH_MS      virtual milliseconds per data point (default 5)
//   ORTHRUS_BENCH_RECORDS table size for the KV workloads (default 200000)
//   ORTHRUS_PAPER_SCALE   set to 1 for paper-sized tables (10M x 1000B) —
//                         needs tens of GB and long runs; off by default.
//   ORTHRUS_PAPER_SCALE_RECORDS
//                         overrides the paper-scale row count (keeps the
//                         1000B rows); lets CI run the paper configuration
//                         on hosts that cannot hold the full 10M rows.
//   ORTHRUS_BENCH_MAX_CORES
//                         caps the simulated core counts in scaling sweeps
//                         (0 = no cap); the scaled-down nightly uses this
//                         to bound wall time.
#ifndef ORTHRUS_BENCH_COMMON_BENCH_HARNESS_H_
#define ORTHRUS_BENCH_COMMON_BENCH_HARNESS_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "engine/deadlockfree/deadlockfree_engine.h"
#include "engine/orthrus/orthrus_engine.h"
#include "engine/partitioned/partitioned_engine.h"
#include "engine/sharedcc/sharedcc_engine.h"
#include "engine/twopl/twopl_engine.h"
#include "hal/sim_platform.h"
#include "workload/micro.h"
#include "workload/tpcc/tpcc_workload.h"
#include "workload/ycsb.h"

namespace orthrus::bench {

inline double EnvDouble(const char* name, double def) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atof(v) : def;
}

inline std::uint64_t EnvU64(const char* name, std::uint64_t def) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::strtoull(v, nullptr, 10) : def;
}

inline double PointSeconds() {
  return EnvDouble("ORTHRUS_BENCH_MS", 5.0) / 1000.0;
}

inline bool PaperScale() { return EnvU64("ORTHRUS_PAPER_SCALE", 0) != 0; }

inline std::uint64_t KvRecords() {
  if (PaperScale()) return EnvU64("ORTHRUS_PAPER_SCALE_RECORDS", 10'000'000);
  return EnvU64("ORTHRUS_BENCH_RECORDS", 200'000);
}

inline std::uint32_t KvRowBytes() { return PaperScale() ? 1000 : 100; }

// Filters a scaling sweep's core counts through ORTHRUS_BENCH_MAX_CORES.
// A cap below the smallest configured point falls back to that smallest
// point rather than the raw cap: the figure drivers derive engine shapes
// (e.g. ORTHRUS CC/exec splits) from their own core lists, and an
// arbitrary small count could produce an invalid configuration.
inline std::vector<int> CoreSweep(std::vector<int> defaults) {
  const int cap = static_cast<int>(EnvU64("ORTHRUS_BENCH_MAX_CORES", 0));
  if (cap <= 0) return defaults;
  std::vector<int> out;
  for (int c : defaults) {
    if (c <= cap) out.push_back(c);
  }
  if (out.empty() && !defaults.empty()) {
    out.push_back(*std::min_element(defaults.begin(), defaults.end()));
  }
  return out;
}

inline engine::EngineOptions BenchOptions(int cores) {
  engine::EngineOptions o;
  o.num_cores = cores;
  o.duration_seconds = PointSeconds();
  o.lock_buckets = 1 << 16;
  return o;
}

// Runs `eng` on a fresh database loaded from `wl`. `table_partitions` > 1
// builds split indexes; `partitioner_n` overrides the partition universe
// after load when nonzero (e.g. ORTHRUS CC count over unsplit tables).
inline RunResult RunPoint(engine::Engine* eng, workload::Workload* wl,
                          int cores, int table_partitions,
                          int partitioner_n = 0) {
  storage::Database db;
  wl->Load(&db, table_partitions);
  if (partitioner_n != 0) db.partitioner().n = partitioner_n;
  hal::SimPlatform sim(cores);
  return eng->Run(&sim, &db, *wl);
}

// Prints one series row: label followed by throughput values in Mtxns/s.
inline void PrintHeader(const std::string& title, const std::string& xlabel,
                        const std::vector<std::string>& xs) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("%-22s", xlabel.c_str());
  for (const std::string& x : xs) std::printf("%12s", x.c_str());
  std::printf("\n");
}

inline void PrintRow(const std::string& label,
                     const std::vector<double>& tputs) {
  std::printf("%-22s", label.c_str());
  for (double t : tputs) std::printf("%12.3f", t / 1e6);
  std::printf("\n");
}

inline void PrintNote(const std::string& note) {
  std::printf("%s\n", note.c_str());
}

}  // namespace orthrus::bench

#endif  // ORTHRUS_BENCH_COMMON_BENCH_HARNESS_H_
