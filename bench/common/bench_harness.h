// Shared benchmark harness: builds a fresh database + simulator per data
// point, runs an engine, and prints paper-style rows.
//
// Environment knobs:
//   ORTHRUS_BENCH_MS      virtual milliseconds per data point (default 5)
//   ORTHRUS_BENCH_RECORDS table size for the KV workloads (default 200000)
//   ORTHRUS_PAPER_SCALE   set to 1 for paper-sized tables (10M x 1000B) —
//                         needs tens of GB and long runs; off by default.
//   ORTHRUS_PAPER_SCALE_RECORDS
//                         overrides the paper-scale row count (keeps the
//                         1000B rows); lets CI run the paper configuration
//                         on hosts that cannot hold the full 10M rows.
//   ORTHRUS_BENCH_MAX_CORES
//                         caps the simulated core counts in scaling sweeps
//                         (0 = no cap); the scaled-down nightly uses this
//                         to bound wall time.
//   ORTHRUS_BENCH_JSON_DIR
//                         when set, each figure driver also writes
//                         <dir>/BENCH_<figure>.json with one record per
//                         (series, x) point — throughput and p99 commit
//                         latency — so the nightly can archive trend data.
//                         Unset: no filesystem effects.
#ifndef ORTHRUS_BENCH_COMMON_BENCH_HARNESS_H_
#define ORTHRUS_BENCH_COMMON_BENCH_HARNESS_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "engine/deadlockfree/deadlockfree_engine.h"
#include "engine/mvcc/mvcc_engine.h"
#include "engine/orthrus/orthrus_engine.h"
#include "engine/partitioned/partitioned_engine.h"
#include "engine/sharedcc/sharedcc_engine.h"
#include "engine/twopl/twopl_engine.h"
#include "hal/sim_platform.h"
#include "workload/micro.h"
#include "workload/tpcc/tpcc_workload.h"
#include "workload/ycsb.h"

namespace orthrus::bench {

inline double EnvDouble(const char* name, double def) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atof(v) : def;
}

inline std::uint64_t EnvU64(const char* name, std::uint64_t def) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::strtoull(v, nullptr, 10) : def;
}

inline double PointSeconds() {
  return EnvDouble("ORTHRUS_BENCH_MS", 5.0) / 1000.0;
}

inline bool PaperScale() { return EnvU64("ORTHRUS_PAPER_SCALE", 0) != 0; }

inline std::uint64_t KvRecords() {
  if (PaperScale()) return EnvU64("ORTHRUS_PAPER_SCALE_RECORDS", 10'000'000);
  return EnvU64("ORTHRUS_BENCH_RECORDS", 200'000);
}

inline std::uint32_t KvRowBytes() { return PaperScale() ? 1000 : 100; }

// Filters a scaling sweep's core counts through ORTHRUS_BENCH_MAX_CORES.
// A cap below the smallest configured point falls back to that smallest
// point rather than the raw cap: the figure drivers derive engine shapes
// (e.g. ORTHRUS CC/exec splits) from their own core lists, and an
// arbitrary small count could produce an invalid configuration.
inline std::vector<int> CoreSweep(std::vector<int> defaults) {
  const int cap = static_cast<int>(EnvU64("ORTHRUS_BENCH_MAX_CORES", 0));
  if (cap <= 0) return defaults;
  std::vector<int> out;
  for (int c : defaults) {
    if (c <= cap) out.push_back(c);
  }
  if (out.empty() && !defaults.empty()) {
    out.push_back(*std::min_element(defaults.begin(), defaults.end()));
  }
  return out;
}

inline engine::EngineOptions BenchOptions(int cores) {
  engine::EngineOptions o;
  o.num_cores = cores;
  o.duration_seconds = PointSeconds();
  o.lock_buckets = 1 << 16;
  return o;
}

// Runs `eng` on a fresh database loaded from `wl`. `table_partitions` > 1
// builds split indexes; `partitioner_n` overrides the partition universe
// after load when nonzero (e.g. ORTHRUS CC count over unsplit tables).
inline RunResult RunPoint(engine::Engine* eng, workload::Workload* wl,
                          int cores, int table_partitions,
                          int partitioner_n = 0) {
  storage::Database db;
  wl->Load(&db, table_partitions);
  if (partitioner_n != 0) db.partitioner().n = partitioner_n;
  hal::SimPlatform sim(cores);
  return eng->Run(&sim, &db, *wl);
}

// Prints one series row: label followed by throughput values in Mtxns/s.
inline void PrintHeader(const std::string& title, const std::string& xlabel,
                        const std::vector<std::string>& xs) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("%-22s", xlabel.c_str());
  for (const std::string& x : xs) std::printf("%12s", x.c_str());
  std::printf("\n");
}

inline void PrintRow(const std::string& label,
                     const std::vector<double>& tputs) {
  std::printf("%-22s", label.c_str());
  for (double t : tputs) std::printf("%12.3f", t / 1e6);
  std::printf("\n");
}

inline void PrintNote(const std::string& note) {
  std::printf("%s\n", note.c_str());
}

// --- Machine-readable per-figure output (nightly trend data). ---
//
// Drivers call JsonFigure("fig12_ycsb_rmw") once and JsonPoint(...) per
// data point; the report is written when the process exits. All of it is
// inert unless ORTHRUS_BENCH_JSON_DIR is set.

struct JsonRecord {
  std::string series;
  std::string x;
  double throughput_txns_per_sec;
  double p99_commit_latency_us;
  double abort_rate;
  std::uint64_t committed;
  double elapsed_seconds;
};

class JsonReport {
 public:
  static JsonReport& Instance() {
    static JsonReport r;
    return r;
  }

  void SetFigure(const std::string& name) { figure_ = name; }

  void Add(const std::string& series, const std::string& x,
           const RunResult& r) {
    if (std::getenv("ORTHRUS_BENCH_JSON_DIR") == nullptr) return;
    JsonRecord rec;
    rec.series = series;
    rec.x = x;
    rec.throughput_txns_per_sec = r.Throughput();
    // txn_latency records cycles; SimPlatform's default clock converts to
    // wall time at SimConfig::ghz. cycles / (ghz * 1e3) = microseconds.
    rec.p99_commit_latency_us =
        static_cast<double>(r.total.txn_latency.Percentile(0.99)) /
        (hal::SimConfig{}.ghz * 1e3);
    rec.abort_rate = r.AbortRate();
    rec.committed = r.total.committed;
    rec.elapsed_seconds = r.elapsed_seconds;
    records_.push_back(std::move(rec));
  }

  ~JsonReport() { Write(); }

 private:
  void Write() {
    const char* dir = std::getenv("ORTHRUS_BENCH_JSON_DIR");
    if (dir == nullptr || figure_.empty() || records_.empty()) return;
    const std::string path =
        std::string(dir) + "/BENCH_" + figure_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
      return;
    }
    std::fprintf(f, "{\n  \"figure\": \"%s\",\n", figure_.c_str());
    std::fprintf(f, "  \"paper_scale\": %s,\n",
                 PaperScale() ? "true" : "false");
    std::fprintf(f, "  \"points\": [\n");
    for (std::size_t i = 0; i < records_.size(); ++i) {
      const JsonRecord& r = records_[i];
      std::fprintf(f,
                   "    {\"series\": \"%s\", \"x\": \"%s\", "
                   "\"throughput_txns_per_sec\": %.1f, "
                   "\"p99_commit_latency_us\": %.3f, "
                   "\"abort_rate\": %.6f, "
                   "\"committed\": %llu, "
                   "\"elapsed_seconds\": %.6f}%s\n",
                   r.series.c_str(), r.x.c_str(),
                   r.throughput_txns_per_sec, r.p99_commit_latency_us,
                   r.abort_rate,
                   static_cast<unsigned long long>(r.committed),
                   r.elapsed_seconds,
                   i + 1 < records_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
  }

  std::string figure_;
  std::vector<JsonRecord> records_;
};

inline void JsonFigure(const std::string& name) {
  JsonReport::Instance().SetFigure(name);
}

inline void JsonPoint(const std::string& series, const std::string& x,
                      const RunResult& r) {
  JsonReport::Instance().Add(series, x, r);
}

}  // namespace orthrus::bench

#endif  // ORTHRUS_BENCH_COMMON_BENCH_HARNESS_H_
