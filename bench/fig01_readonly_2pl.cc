// Figure 1: scalability of short read-only transactions under two-phase
// locking on a high-contention workload (2 hot keys from a 64-record hot
// set + 8 cold keys per transaction).
//
// Expected shape: despite the workload being conflict free (readers never
// block readers), 2PL stops scaling at mid core counts and declines toward
// 80 cores — synchronization and data-movement overhead on the lock
// manager's bucket latches and request lists, not logical conflicts.
#include <vector>

#include "bench/common/bench_harness.h"

int main() {
  using namespace orthrus;
  using namespace orthrus::bench;

  JsonFigure("fig01_readonly_2pl");
  const std::vector<int> core_counts = CoreSweep({10, 20, 40, 60, 80});
  std::vector<std::string> xs;
  for (int c : core_counts) xs.push_back(std::to_string(c));
  PrintHeader("Figure 1: read-only 2PL scalability (high contention)",
              "throughput (M/s) @cores", xs);

  workload::KvConfig kv;
  kv.num_records = KvRecords();
  kv.row_bytes = KvRowBytes();
  kv.read_only = true;
  kv.hot_records = 64;
  kv.seed = 1;

  std::vector<double> tputs;
  for (int cores : core_counts) {
    workload::KvWorkload wl(kv);
    engine::TwoPlEngine eng(BenchOptions(cores),
                            engine::DeadlockPolicyKind::kDreadlocks);
    RunResult r = RunPoint(&eng, &wl, cores, /*table_partitions=*/1);
    JsonPoint("two-phase-locking", std::to_string(cores), r);
    tputs.push_back(r.Throughput());
  }
  PrintRow("two-phase-locking", tputs);
  PrintNote("(paper: peaks near 40 cores, declines at 80 despite zero "
            "logical conflicts)");
  return 0;
}
