// Component micro-benchmarks (google-benchmark): real-time costs of the
// building blocks on the host machine — SPSC queue ops, lock-table
// acquire/release, RNG draws, fiber switches, and simulator event
// dispatch. These measure the *infrastructure itself* (wall-clock), unlike
// the fig* binaries which measure *simulated* engine throughput.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "hal/fiber.h"
#include "hal/sim_platform.h"
#include "lock/lock_table.h"
#include "mp/multi_mesh.h"
#include "mp/queue_mesh.h"
#include "mp/send_buffer.h"
#include "mp/spsc_queue.h"

namespace {

using namespace orthrus;

void BM_RngNext(benchmark::State& state) {
  Rng rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.Next());
  }
}
BENCHMARK(BM_RngNext);

void BM_ZipfianNext(benchmark::State& state) {
  Rng rng(42);
  ZipfianGenerator zipf(1000000, 0.9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Next(&rng));
  }
}
BENCHMARK(BM_ZipfianNext);

void BM_SpscEnqueueDequeue(benchmark::State& state) {
  mp::SpscQueue<std::uint64_t> q(1024);
  std::uint64_t v = 0;
  for (auto _ : state) {
    q.TryEnqueue(1);
    q.TryDequeue(&v);
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SpscEnqueueDequeue);

// Batched counterpart of BM_SpscEnqueueDequeue moving the same number of
// messages per items_processed: compare the two rows' items/s to see the
// index-publication amortization (the batched row must not be slower).
void BM_SpscBatchEnqueueDequeue(benchmark::State& state) {
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  mp::SpscQueue<std::uint64_t> q(1024);
  std::uint64_t buf[64];
  for (std::size_t i = 0; i < batch; ++i) buf[i] = i;
  for (auto _ : state) {
    q.PushBatch(buf, batch);
    q.PopBatch(buf, batch);
    benchmark::DoNotOptimize(buf[0]);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_SpscBatchEnqueueDequeue)->Arg(8)->Arg(64);

// Mesh fan-in: drain a burst from `senders` queues, batched vs. one
// message per pop (max_batch=1). items/s compares delivery hot paths.
void BM_QueueMeshDrain(benchmark::State& state) {
  const int senders = static_cast<int>(state.range(0));
  const std::size_t max_batch = static_cast<std::size_t>(state.range(1));
  constexpr std::size_t kBurst = 32;  // messages per sender per iteration
  mp::QueueMesh<std::uint64_t> mesh(senders, 1, 64);
  std::uint64_t buf[kBurst];
  for (std::size_t i = 0; i < kBurst; ++i) buf[i] = i;
  std::uint64_t sink = 0;
  for (auto _ : state) {
    for (int s = 0; s < senders; ++s) {
      mesh.at(s, 0).PushBatch(buf, kBurst);
    }
    mesh.Drain(0, [&sink](std::uint64_t v) { sink += v; }, max_batch);
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          senders * static_cast<std::int64_t>(kBurst));
}
BENCHMARK(BM_QueueMeshDrain)
    ->ArgsProduct({{4, 16}, {1, 8}})
    ->ArgNames({"senders", "batch"});

// Adaptive (deepest-first) drain under a skewed burst: sender s holds
// (s+1) * 8 messages, so visit order matters. Compare items/s against
// BM_QueueMeshDrain to price the per-sender depth snapshot + sort.
void BM_QueueMeshDrainAdaptive(benchmark::State& state) {
  const int senders = static_cast<int>(state.range(0));
  const bool adaptive = state.range(1) != 0;
  mp::QueueMesh<std::uint64_t> mesh(senders, 1, 256);
  std::uint64_t buf[256];
  for (std::size_t i = 0; i < 256; ++i) buf[i] = i;
  std::int64_t per_iter = 0;
  for (int s = 0; s < senders; ++s) per_iter += (s + 1) * 8;
  std::uint64_t sink = 0;
  for (auto _ : state) {
    for (int s = 0; s < senders; ++s) {
      mesh.at(s, 0).PushBatch(buf, static_cast<std::size_t>(s + 1) * 8);
    }
    mesh.Drain(
        0, [&sink](std::uint64_t v) { sink += v; },
        mp::QueueMesh<std::uint64_t>::kDefaultBatch,
        adaptive ? mp::DrainOrder::kDeepestFirst
                 : mp::DrainOrder::kRoundRobin);
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          per_iter);
}
BENCHMARK(BM_QueueMeshDrainAdaptive)
    ->ArgsProduct({{4, 16}, {0, 1}})
    ->ArgNames({"senders", "adaptive"});

// Sender-side coalescing: kMsgsPerLine-sized bursts staged through a
// SendBuffer vs. the per-message baseline (stage capacity 1 == unbuffered
// QueueMesh::Send publication behaviour). The `tail_pubs_per_msg` counter
// is the point: coalesced must sit at 1/kMsgsPerLine (>= 4x fewer tail
// publications than the baseline's 1.0); items/s compares the hot paths.
void BM_SpscSendBuffer(benchmark::State& state) {
  const bool coalesced = state.range(0) != 0;
  constexpr std::size_t kBurst = mp::SpscQueue<std::uint64_t>::kMsgsPerLine;
  mp::QueueMesh<std::uint64_t> mesh(1, 1, 256);
  mp::SendBuffer<std::uint64_t> sb(&mesh, 0, coalesced ? kBurst : 1);
  std::uint64_t sink = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < kBurst; ++i) {
      sb.Send(0, i);
    }
    sb.FlushAll();
    mesh.Drain(0, [&sink](std::uint64_t v) { sink += v; });
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBurst));
  state.counters["tail_pubs_per_msg"] =
      sb.messages() != 0
          ? static_cast<double>(sb.publications()) /
                static_cast<double>(sb.messages())
          : 0.0;
}
BENCHMARK(BM_SpscSendBuffer)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"coalesced"});

// MPSC mesh fan-in: `senders` producers share one CAS-reserved ring per
// receiver instead of owning per-pair SPSC queues. Compare items/s against
// BM_QueueMeshDrain at the same sender count to price the reservation CAS
// the dynamic-sender design buys its flexibility with.
void BM_MultiMeshDrain(benchmark::State& state) {
  const int senders = static_cast<int>(state.range(0));
  constexpr std::size_t kBurst = 32;  // messages per sender per iteration
  mp::MultiMesh<std::uint64_t> mesh(1, 2048);
  std::uint64_t buf[kBurst];
  for (std::size_t i = 0; i < kBurst; ++i) buf[i] = i;
  std::uint64_t sink = 0;
  for (auto _ : state) {
    for (int s = 0; s < senders; ++s) {
      std::size_t pushed = 0;
      while (pushed < kBurst) {
        pushed += mesh.at(0).PushBatch(buf + pushed, kBurst - pushed);
      }
    }
    mesh.Drain(0, [&sink](std::uint64_t v) { sink += v; });
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          senders * static_cast<std::int64_t>(kBurst));
}
BENCHMARK(BM_MultiMeshDrain)->Arg(4)->Arg(16)->ArgNames({"senders"});

// Line-aligned MPSC reservations: whole-line reservations with skip
// padding versus the default packed layout, at a given batch depth.
// Shallow batches pay the padding (more ring slots consumed per value,
// hence more head/tail traffic per delivered message); line-deep batches
// are byte-for-byte the packed behaviour. The native counters here show
// the single-threaded overhead floor; the win the mode exists for —
// concurrent producers no longer invalidating each other's payload lines
// mid-line — is a coherence effect priced by the simulator, not visible
// to a one-thread benchmark.
void BM_MpscLineAligned(benchmark::State& state) {
  const bool aligned = state.range(0) != 0;
  const std::size_t batch = static_cast<std::size_t>(state.range(1));
  constexpr std::uint64_t kSkip = ~0ull;
  mp::MpscQueue<std::uint64_t> q(2048, aligned, kSkip);
  std::uint64_t buf[64];
  for (std::size_t i = 0; i < 64; ++i) buf[i] = i;
  std::uint64_t out[64];
  std::uint64_t sink = 0;
  for (auto _ : state) {
    for (int burst = 0; burst < 8; ++burst) {
      std::size_t pushed = 0;
      while (pushed < batch) {
        pushed += q.PushBatch(buf + pushed, batch - pushed);
      }
    }
    std::size_t n;
    while ((n = q.PopBatch(out, 64)) != 0) {
      for (std::size_t i = 0; i < n; ++i) sink += out[i];
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 8 *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_MpscLineAligned)
    ->Args({0, 2})
    ->Args({1, 2})
    ->Args({0, 8})
    ->Args({1, 8})
    ->ArgNames({"aligned", "batch"});

void BM_LockTableAcquireRelease(benchmark::State& state) {
  lock::LockTable::Config cfg;
  cfg.num_buckets = 1 << 12;
  cfg.max_lock_heads = 1 << 16;
  cfg.max_workers = 1;
  lock::LockTable table(cfg);
  WorkerStats stats;
  lock::WorkerLockCtx* ctx = table.RegisterWorker(0, &stats);
  std::uint64_t key = 0;
  for (auto _ : state) {
    table.Acquire(ctx, 0, key++ & 1023, txn::LockMode::kExclusive, nullptr);
    table.ReleaseAll(ctx);
  }
}
BENCHMARK(BM_LockTableAcquireRelease);

// Scalar acquire loop vs AcquireBatch on a Zipf-skewed key stream: the
// batch path's win is one bucket walk per same-key run (skew makes runs)
// plus the prefetch sweep hiding bucket-miss latency on real hardware.
// Shared mode so duplicate keys inside one batch grant instead of
// self-conflicting. arg0: 0 = scalar, 1 = vectorized; arg1: batch size.
void BM_LockTableBatch(benchmark::State& state) {
  const bool vectorized = state.range(0) != 0;
  const std::size_t batch = static_cast<std::size_t>(state.range(1));
  lock::LockTable::Config cfg;
  cfg.num_buckets = 1 << 12;
  cfg.max_lock_heads = 1 << 16;
  cfg.max_workers = 1;
  lock::LockTable table(cfg);
  WorkerStats stats;
  lock::WorkerLockCtx* ctx = table.RegisterWorker(0, &stats);
  Rng rng(42);
  ZipfianGenerator zipf(1024, 0.9);
  std::vector<lock::LockTable::BatchRequest> reqs(batch);
  for (auto _ : state) {
    for (std::size_t i = 0; i < batch; ++i) {
      reqs[i].ctx = ctx;
      reqs[i].table = 0;
      reqs[i].key = zipf.Next(&rng);
      reqs[i].mode = txn::LockMode::kShared;
    }
    if (vectorized) {
      table.AcquireBatch(reqs.data(), batch, nullptr);
    } else {
      for (std::size_t i = 0; i < batch; ++i) {
        reqs[i].result = table.Acquire(reqs[i].ctx, reqs[i].table,
                                       reqs[i].key, reqs[i].mode, nullptr);
      }
    }
    table.ReleaseAll(ctx);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_LockTableBatch)
    ->Args({0, 16})
    ->Args({1, 16})
    ->Args({0, 64})
    ->Args({1, 64})
    ->ArgNames({"vectorized", "batch"});

void BM_FiberSwitchPair(benchmark::State& state) {
  // Round-trip context switch cost: main -> fiber -> main.
  void* main_sp = nullptr;
  hal::Fiber* fp = nullptr;
  bool stop = false;
  hal::Fiber fiber([&] {
    while (!stop) {
      hal::Fiber::SwitchOut(fp->mutable_sp(), main_sp);
    }
  });
  fp = &fiber;
  for (auto _ : state) {
    fiber.SwitchIn(&main_sp);
  }
  stop = true;
  fiber.SwitchIn(&main_sp);
}
BENCHMARK(BM_FiberSwitchPair);

void BM_SimEventDispatch(benchmark::State& state) {
  // Wall-time per simulated scheduling event: N cores ping-ponging on
  // relax. This bounds how much virtual time per second the host can
  // simulate.
  const int cores = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    hal::SimPlatform sim(cores);
    for (int i = 0; i < cores; ++i) {
      sim.Spawn(i, [] {
        for (int k = 0; k < 1000; ++k) hal::CpuRelax();
      });
    }
    state.ResumeTiming();
    sim.Run();
    state.SetItemsProcessed(state.items_processed() + cores * 1000);
  }
}
BENCHMARK(BM_SimEventDispatch)->Arg(4)->Arg(16)->Arg(64);

void BM_SimContendedAtomic(benchmark::State& state) {
  // Simulated contended fetch_add: how expensive is the modeled path.
  for (auto _ : state) {
    state.PauseTiming();
    hal::SimPlatform sim(8);
    auto hot = std::make_unique<hal::Atomic<std::uint64_t>>();
    for (int i = 0; i < 8; ++i) {
      sim.Spawn(i, [&] {
        for (int k = 0; k < 500; ++k) hot->fetch_add(1);
      });
    }
    state.ResumeTiming();
    sim.Run();
    state.SetItemsProcessed(state.items_processed() + 8 * 500);
  }
}
BENCHMARK(BM_SimContendedAtomic);

}  // namespace

BENCHMARK_MAIN();
