// Figure 4: throughput of the three deadlock-handling mechanisms versus
// Deadlock-free locking while varying the number of hot records (contention
// rises left to right as the hot set shrinks), at 10 and at 80 cores.
//
// Expected shape (80 cores): deadlock-free dominates everywhere and its
// advantage grows with contention (paper: 2.2x over wait-die and 5.5x over
// dreadlocks / wait-for graph at 64 hot records); wait-die loses to the
// detection-based schemes under low contention (false-positive aborts) but
// wins under extreme contention (cheaper handling, earlier aborts). At 10
// cores the schemes are close.
#include <memory>
#include <vector>

#include "bench/common/bench_harness.h"

int main() {
  using namespace orthrus;
  using namespace orthrus::bench;

  const std::vector<std::uint64_t> hot_sizes = {8192, 4096, 2048, 1024, 512,
                                                384,  256,  192,  128,  64};
  std::vector<std::string> xs;
  for (auto h : hot_sizes) xs.push_back(std::to_string(h));

  for (int cores : {10, 80}) {
    PrintHeader("Figure 4: deadlock handling overhead, " +
                    std::to_string(cores) + " cores",
                "tput (M/s) @hot", xs);

    auto run_policy = [&](const std::string& label,
                          std::function<std::unique_ptr<engine::Engine>()>
                              make) {
      std::vector<double> tputs;
      for (std::uint64_t hot : hot_sizes) {
        workload::KvConfig kv;
        kv.num_records = KvRecords();
        kv.row_bytes = KvRowBytes();
        kv.hot_records = hot;
        kv.seed = 4;
        workload::KvWorkload wl(kv);
        auto eng = make();
        RunResult r = RunPoint(eng.get(), &wl, cores, 1);
        tputs.push_back(r.Throughput());
      }
      PrintRow(label, tputs);
    };

    run_policy("deadlock-free", [&] {
      return std::make_unique<engine::DeadlockFreeEngine>(BenchOptions(cores));
    });
    run_policy("dreadlocks", [&] {
      return std::make_unique<engine::TwoPlEngine>(
          BenchOptions(cores), engine::DeadlockPolicyKind::kDreadlocks);
    });
    run_policy("wait-die", [&] {
      return std::make_unique<engine::TwoPlEngine>(
          BenchOptions(cores), engine::DeadlockPolicyKind::kWaitDie);
    });
    run_policy("wait-for-graph", [&] {
      return std::make_unique<engine::TwoPlEngine>(
          BenchOptions(cores), engine::DeadlockPolicyKind::kWaitForGraph);
    });
  }
  return 0;
}
