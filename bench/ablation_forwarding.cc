// Ablation: the Section 3.3 forwarding optimization. With forwarding, a
// transaction whose locks live on Ncc CC threads costs Ncc+1 messages (each
// CC forwards the chain directly to the next); without it, the execution
// thread mediates every hop and pays 2*Ncc messages.
//
// Expected shape: no difference at 1 partition per transaction (both are 2
// messages); a growing gap as partitions per transaction rise, with the
// non-forwarding variant also holding contended locks longer (more message
// delays while earlier locks are held).
#include <vector>

#include "bench/common/bench_harness.h"

int main() {
  using namespace orthrus;
  using namespace orthrus::bench;

  const int kCores = 80;
  const int kCc = 16;
  const std::vector<int> parts_per_txn = {1, 2, 4, 8};
  std::vector<std::string> xs;
  for (int p : parts_per_txn) xs.push_back(std::to_string(p));
  PrintHeader("Ablation: CC->CC forwarding (Section 3.3), 80 cores",
              "tput (M/s) @parts", xs);

  for (bool forwarding : {true, false}) {
    std::vector<double> tputs;
    std::vector<double> msgs_per_txn;
    for (int k : parts_per_txn) {
      workload::KvConfig kv;
      kv.num_records = KvRecords();
      kv.row_bytes = KvRowBytes();
      kv.num_partitions = kCc;
      kv.placement = workload::KvConfig::Placement::kFixedCount;
      kv.partitions_per_txn = k;
      kv.seed = 33;
      workload::KvWorkload wl(kv);
      engine::OrthrusOptions oo;
      oo.num_cc = kCc;
      oo.forwarding = forwarding;
      engine::OrthrusEngine eng(BenchOptions(kCores), oo);
      RunResult r = RunPoint(&eng, &wl, kCores, 1);
      tputs.push_back(r.Throughput());
      msgs_per_txn.push_back(
          r.total.committed > 0
              ? static_cast<double>(r.total.messages_sent) /
                    r.total.committed
              : 0.0);
    }
    PrintRow(forwarding ? "forwarding (Ncc+1)" : "no-forward (2Ncc)", tputs);
    std::printf("%-22s", "  messages/txn");
    for (double m : msgs_per_txn) std::printf("%12.1f", m);
    std::printf("\n");
  }
  return 0;
}
