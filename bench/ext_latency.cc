// Extension experiment (not in the paper): commit-latency distributions.
//
// The paper reports throughput only, but the architectural trade-offs have
// a latency face too: ORTHRUS adds message round-trips to every
// transaction (higher uncontended latency) while removing deadlock
// handling and latch convoys (far better tail latency under contention).
// This bench prints p50 / p99 commit latency in microseconds of simulated
// time for each engine at low and high contention, 80 cores.
#include <cstdio>
#include <functional>
#include <memory>

#include "bench/common/bench_harness.h"

int main() {
  using namespace orthrus;
  using namespace orthrus::bench;

  const int kCores = 80;
  const int kCc = 16;

  auto run_one = [&](const char* label, std::uint64_t hot,
                     const std::function<std::unique_ptr<engine::Engine>()>&
                         make,
                     int partitioner_n) {
    workload::KvConfig kv;
    kv.num_records = KvRecords();
    kv.row_bytes = KvRowBytes();
    kv.hot_records = hot;
    kv.num_partitions = kCc;
    kv.seed = 77;
    workload::KvWorkload wl(kv);
    auto eng = make();
    RunResult r = RunPoint(eng.get(), &wl, kCores, 1, partitioner_n);
    const double to_us = 1e6 / 2e9;  // cycles -> microseconds at 2 GHz
    std::printf("  %-18s tput %7.2f M/s   p50 %8.1f us   p99 %8.1f us   "
                "max %9.1f us\n",
                label, r.Throughput() / 1e6,
                r.total.txn_latency.Percentile(0.50) * to_us,
                r.total.txn_latency.Percentile(0.99) * to_us,
                static_cast<double>(r.total.txn_latency.max()) * to_us);
  };

  for (std::uint64_t hot : {0ull, 64ull}) {
    std::printf("\n=== Extension: commit latency, %s contention "
                "(80 cores) ===\n",
                hot == 0 ? "low" : "high");
    run_one("orthrus", hot,
            [&] {
              engine::OrthrusOptions oo;
              oo.num_cc = kCc;
              return std::make_unique<engine::OrthrusEngine>(
                  BenchOptions(kCores), oo);
            },
            0);
    run_one("deadlock-free", hot,
            [&] {
              return std::make_unique<engine::DeadlockFreeEngine>(
                  BenchOptions(kCores));
            },
            0);
    run_one("2pl-waitdie", hot,
            [&] {
              return std::make_unique<engine::TwoPlEngine>(
                  BenchOptions(kCores), engine::DeadlockPolicyKind::kWaitDie);
            },
            0);
    run_one("2pl-dreadlocks", hot,
            [&] {
              return std::make_unique<engine::TwoPlEngine>(
                  BenchOptions(kCores),
                  engine::DeadlockPolicyKind::kDreadlocks);
            },
            0);
  }
  std::printf("\n(aborted-and-retried transactions count their full retry "
              "time toward commit latency)\n");
  return 0;
}
