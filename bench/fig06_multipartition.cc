// Figure 6: throughput as the number of partitions accessed per transaction
// varies (uniform 10-RMW transactions, 80 cores).
//
// Expected shape: Partitioned-store wins at 1 partition/txn and collapses
// sharply from 2 on (coarse partition locks serialize transactions that
// merely share a partition); ORTHRUS degrades gently (more message hops per
// chain: Ncc+1); Deadlock-free is flat (shared-everything: partitions mean
// nothing to it); the SPLIT variants run above their unsplit counterparts
// at low partition counts and converge to them as transactions spread.
#include <vector>

#include "bench/common/bench_harness.h"

int main() {
  using namespace orthrus;
  using namespace orthrus::bench;

  const int kCores = 80;
  const int kCc = 16;
  const std::vector<int> parts_per_txn = {1, 2, 4, 6, 8, 10};
  std::vector<std::string> xs;
  for (int p : parts_per_txn) xs.push_back(std::to_string(p));
  PrintHeader("Figure 6: partitions accessed per transaction (80 cores)",
              "tput (M/s) @parts", xs);

  auto kv_for = [&](int universe, bool local_affinity, int k) {
    workload::KvConfig kv;
    kv.num_records = KvRecords();
    kv.row_bytes = KvRowBytes();
    kv.num_partitions = universe;
    kv.placement = workload::KvConfig::Placement::kFixedCount;
    kv.partitions_per_txn = k;
    kv.local_affinity = local_affinity;
    kv.seed = 6;
    return kv;
  };

  {  // Partitioned-store: 80 partitions (one per worker), split indexes.
    std::vector<double> tputs;
    for (int k : parts_per_txn) {
      workload::KvWorkload wl(kv_for(kCores, true, k));
      engine::PartitionedEngine eng(BenchOptions(kCores));
      RunResult r = RunPoint(&eng, &wl, kCores, kCores);
      tputs.push_back(r.Throughput());
    }
    PrintRow("partitioned-store", tputs);
  }
  {  // SPLIT ORTHRUS: 16 CC threads, split indexes.
    std::vector<double> tputs;
    for (int k : parts_per_txn) {
      workload::KvWorkload wl(kv_for(kCc, false, std::min(k, kCc)));
      engine::OrthrusOptions oo;
      oo.num_cc = kCc;
      oo.split_index = true;
      engine::OrthrusEngine eng(BenchOptions(kCores), oo);
      RunResult r = RunPoint(&eng, &wl, kCores, kCc);
      tputs.push_back(r.Throughput());
    }
    PrintRow("split-orthrus", tputs);
  }
  {  // ORTHRUS: 16 CC threads, shared index.
    std::vector<double> tputs;
    for (int k : parts_per_txn) {
      workload::KvWorkload wl(kv_for(kCc, false, std::min(k, kCc)));
      engine::OrthrusOptions oo;
      oo.num_cc = kCc;
      engine::OrthrusEngine eng(BenchOptions(kCores), oo);
      RunResult r = RunPoint(&eng, &wl, kCores, 1);
      tputs.push_back(r.Throughput());
    }
    PrintRow("orthrus", tputs);
  }
  {  // Split Deadlock-free: shared-everything locking over split indexes.
    std::vector<double> tputs;
    for (int k : parts_per_txn) {
      workload::KvWorkload wl(kv_for(kCores, false, k));
      engine::DeadlockFreeEngine eng(BenchOptions(kCores),
                                     /*split_index=*/true);
      RunResult r = RunPoint(&eng, &wl, kCores, kCores);
      tputs.push_back(r.Throughput());
    }
    PrintRow("split-deadlock-free", tputs);
  }
  {  // Deadlock-free locking: partition count is irrelevant to it.
    std::vector<double> tputs;
    for (int k : parts_per_txn) {
      workload::KvWorkload wl(kv_for(kCores, false, k));
      engine::DeadlockFreeEngine eng(BenchOptions(kCores));
      RunResult r = RunPoint(&eng, &wl, kCores, 1);
      tputs.push_back(r.Throughput());
    }
    PrintRow("deadlock-free", tputs);
  }
  return 0;
}
