// Figure 12 (appendix): YCSB 10-RMW transaction scalability under low and
// high contention — the combined cost of conflated functionality plus
// deadlock handling.
//
// Expected shapes: (a) low contention — same ordering as the read-only
// experiment with lower absolute numbers; (b) high contention — 2PL w/
// wait-die peaks by ~20 cores and declines (handling overhead + aborts);
// deadlock-free plateaus; ORTHRUS single > dual > random, all above the
// locking baselines (paper: 4.65x / 3.35x / 2.3x over 2PL; +90% / +38%
// over deadlock-free for single / dual).
#include <vector>

#include "bench/common/bench_harness.h"

int main() {
  using namespace orthrus;
  using namespace orthrus::bench;

  JsonFigure("fig12_ycsb_rmw");
  const std::vector<int> core_counts = CoreSweep({10, 20, 40, 60, 80});
  std::vector<std::string> xs;
  for (int c : core_counts) xs.push_back(std::to_string(c));

  for (bool high : {false, true}) {
    const std::string tag = high ? "/high" : "/low";
    PrintHeader(std::string("Figure 12: YCSB 10RMW scalability, ") +
                    (high ? "high" : "low") + " contention",
                "tput (M/s) @cores", xs);
    const auto contention = high ? workload::YcsbContention::kHigh
                                 : workload::YcsbContention::kLow;

    auto ycsb = [&](workload::YcsbPlacement placement, int n_cc) {
      workload::YcsbSpec spec;
      spec.contention = contention;
      spec.op = workload::YcsbOp::kRmw;
      spec.placement = placement;
      spec.num_partitions = n_cc;
      spec.num_records = KvRecords();
      spec.row_bytes = KvRowBytes();
      return spec;
    };

    auto orthrus_row = [&](workload::YcsbPlacement placement,
                           const std::string& label, bool snapshot_reads) {
      std::vector<double> tputs;
      for (int cores : core_counts) {
        const int n_cc = std::max(2, cores / 5);
        auto wl = MakeYcsbWorkload(ycsb(placement, n_cc));
        engine::OrthrusOptions oo;
        oo.num_cc = n_cc;
        oo.snapshot_reads = snapshot_reads;
        engine::OrthrusEngine eng(BenchOptions(cores), oo);
        RunResult r = RunPoint(&eng, wl.get(), cores, 1);
        JsonPoint(label + tag, std::to_string(cores), r);
        tputs.push_back(r.Throughput());
      }
      PrintRow(label, tputs);
    };

    orthrus_row(workload::YcsbPlacement::kSingle, "orthrus(single)", false);
    orthrus_row(workload::YcsbPlacement::kDual, "orthrus(dual)", false);
    orthrus_row(workload::YcsbPlacement::kRandom, "orthrus(random)", false);
    // Snapshot arm on a pure-RMW stream: no transaction qualifies for the
    // bypass, so this prices the write-path overhead the feature adds —
    // version installs plus epoch-clock heartbeats.
    orthrus_row(workload::YcsbPlacement::kSingle, "orthrus-snap", true);

    {
      // Sixth architecture: shared-everything shard CC with epoch-versioned
      // storage; pure RMW again prices installs, not the bypass.
      std::vector<double> tputs;
      for (int cores : core_counts) {
        auto wl = MakeYcsbWorkload(ycsb(workload::YcsbPlacement::kRandom, 1));
        engine::MvccEngine eng(BenchOptions(cores));
        RunResult r = RunPoint(&eng, wl.get(), cores, 1);
        JsonPoint("mvcc-snapshot" + tag, std::to_string(cores), r);
        tputs.push_back(r.Throughput());
      }
      PrintRow("mvcc-snapshot", tputs);
    }

    {
      std::vector<double> tputs;
      for (int cores : core_counts) {
        auto wl = MakeYcsbWorkload(ycsb(workload::YcsbPlacement::kRandom, 1));
        engine::DeadlockFreeEngine eng(BenchOptions(cores));
        RunResult r = RunPoint(&eng, wl.get(), cores, 1);
        JsonPoint("deadlock-free" + tag, std::to_string(cores), r);
        tputs.push_back(r.Throughput());
      }
      PrintRow("deadlock-free", tputs);
    }
    {
      std::vector<double> tputs;
      for (int cores : core_counts) {
        auto wl = MakeYcsbWorkload(ycsb(workload::YcsbPlacement::kRandom, 1));
        engine::TwoPlEngine eng(BenchOptions(cores),
                                engine::DeadlockPolicyKind::kWaitDie);
        RunResult r = RunPoint(&eng, wl.get(), cores, 1);
        JsonPoint("2pl-waitdie" + tag, std::to_string(cores), r);
        tputs.push_back(r.Throughput());
      }
      PrintRow("2pl-waitdie", tputs);
    }
  }
  return 0;
}
