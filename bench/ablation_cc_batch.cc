// Ablation: the vectorized CC stage on a single-shard fan-in. One CC
// thread owns the whole lock space while 16 exec threads with deep
// in-flight windows fire ten-op transactions at it — the shape where the
// CC inbox is always deep, so batch drain has material to work with.
//
// Three mechanisms are ablated independently on top of the batch drain:
//
//  * prefetch sweep (`cc_prefetch`): one pass over the drained batch
//    issues bucket/row-header prefetches before any request is processed;
//    the simulator charges one flat `prefetch_sweep_cycles` window per
//    sweep and prices each covered lock walk at `cc_prefetched_op_cycles`
//    instead of `cc_op_cycles`;
//  * per-key combining (`cc_combine`): adjacent same-key requests inside
//    a batch share one bucket walk (`cc_run_op_cycles` for followers) —
//    skew makes the runs, so the hot set feeds this directly;
//  * batch size (`cc_batch`): caps how many messages one drain stages,
//    bounding both the sweep's coverage and the grant-flush deferral.
//
// Expected shape: vectorized beats scalar by well over 10% at the default
// batch size, with prefetch carrying the win (every request walks a
// bucket; only same-key neighbours combine) and deeper batches helping
// until the inbox can no longer fill them (~100 messages at this shape).
// A batch cap far below the inbox depth loses to scalar outright: each
// capped drain pays the quantum's flush overhead — and the grant-stash
// deferral — over too few messages. Combining is run-starved on ten-op
// uniform transactions (panel 2 measures it where runs exist, and finds
// the per-op savings already too small to move end-to-end throughput).
#include <string>
#include <vector>

#include "bench/common/bench_harness.h"

int main() {
  using namespace orthrus;
  using namespace orthrus::bench;

  const int kCores = 17;  // 1 CC + 16 exec: single-shard fan-in
  const int kCc = 1;
  const std::vector<int> batch_sizes = {16, 64, 256, 1024};
  std::vector<std::string> xs;
  for (int b : batch_sizes) xs.push_back(std::to_string(b));
  PrintHeader("Ablation: vectorized CC stage, 1 CC + 16 exec fan-in",
              "tput (M/s) @cc_batch", xs);
  JsonFigure("ablation_cc_batch");

  struct Arm {
    const char* label;
    bool vectorized;
    bool prefetch = true;
    bool combine = true;
  };
  const Arm arms[] = {
      // The scalar baseline drains and handles one message at a time;
      // cc_batch does not apply, so its row is flat by construction.
      {"scalar (per-message)", false},
      {"vectorized", true},
      {"vectorized -prefetch", true, false, true},
      {"vectorized -combine", true, true, false},
      {"vectorized -both", true, false, false},
  };
  for (const Arm& arm : arms) {
    std::vector<double> tputs;
    std::string occ;
    for (int b : batch_sizes) {
      workload::KvConfig kv;
      kv.num_records = KvRecords();
      kv.row_bytes = KvRowBytes();
      kv.num_partitions = kCc;
      // Uniform keys: the point is CC-stage *throughput*, so the inbox
      // must be the bottleneck, not lock-wait stalls on a hot set.
      kv.seed = 77;
      workload::KvWorkload wl(kv);
      engine::OrthrusOptions oo;
      oo.num_cc = kCc;
      // Deep inflight window keeps the single CC inbox saturated — the
      // fan-in point exists to measure the batch path with material in
      // the batch, not drain-idle round trips.
      oo.max_inflight = 64;
      oo.vectorized_cc = arm.vectorized;
      oo.cc_batch = b;
      oo.cc_prefetch = arm.prefetch;
      oo.cc_combine = arm.combine;
      engine::OrthrusEngine eng(BenchOptions(kCores), oo);
      RunResult r = RunPoint(&eng, &wl, kCores, 1);
      tputs.push_back(r.Throughput());
      JsonPoint(std::string(arm.label), std::to_string(b), r);
      if (arm.vectorized && r.total.cc_batches > 0) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), " %.1f",
                      static_cast<double>(r.total.cc_batch_msgs) /
                          static_cast<double>(r.total.cc_batches));
        occ += buf;
      }
    }
    PrintRow(arm.label, tputs);
    if (!occ.empty()) PrintNote("  batch occupancy (msgs/drain):" + occ);
  }

  // Second panel: single-op reads over an 8-key hot set at the default
  // batch size. Ten-op uniform transactions never put the same key in
  // adjacent batch slots, so the panel above isolates the prefetch sweep;
  // single-op hot-set messages collide in adjacent slots one time in
  // eight, and shared mode keeps them grant-instant — this is where
  // same-key runs form and the memoized-lookup arm earns its keep.
  PrintHeader("Ablation: same-key combining, single-op 8-hot-key fan-in",
              "tput (M/s)", {"default"});
  for (const Arm& arm : arms) {
    workload::KvConfig kv;
    kv.num_records = KvRecords();
    kv.row_bytes = KvRowBytes();
    kv.num_partitions = kCc;
    kv.ops_per_txn = 1;
    kv.hot_records = 8;
    kv.hot_ops = 1;
    kv.read_only = true;
    kv.seed = 77;
    workload::KvWorkload wl(kv);
    engine::OrthrusOptions oo;
    oo.num_cc = kCc;
    oo.max_inflight = 64;
    oo.vectorized_cc = arm.vectorized;
    oo.cc_prefetch = arm.prefetch;
    oo.cc_combine = arm.combine;
    engine::OrthrusEngine eng(BenchOptions(kCores), oo);
    RunResult r = RunPoint(&eng, &wl, kCores, 1);
    PrintRow(arm.label, {r.Throughput()});
    JsonPoint(std::string(arm.label) + " hot1op", "default", r);
    if (arm.vectorized && arm.combine && r.total.cc_batch_msgs > 0) {
      char buf[64];
      std::snprintf(buf, sizeof(buf),
                    "  combined runs: %.1f%% of batched msgs",
                    100.0 * static_cast<double>(r.total.cc_key_runs_combined) /
                        static_cast<double>(r.total.cc_batch_msgs));
      PrintNote(buf);
    }
  }
  return 0;
}
