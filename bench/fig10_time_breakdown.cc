// Figure 10: breakdown of CPU time on execution threads into Execution /
// Locking / Waiting, TPC-C with 80 threads, under low contention (128
// warehouses) and high contention (16 warehouses).
//
// Expected shape: under high contention every system waits most of the
// time, but ORTHRUS's execution threads spend a several-fold larger
// fraction doing useful work (paper: 18% vs 7.2% vs 3.7%) despite using
// only 64 of the 80 threads for execution.
#include <cstdio>
#include <vector>

#include "bench/common/bench_harness.h"

int main() {
  using namespace orthrus;
  using namespace orthrus::bench;

  const int kCores = 80;
  const int kCc = 16;

  auto scale_for = [](int w) {
    workload::tpcc::TpccScale s;
    s.warehouses = w;
    s.customers_per_district = 150;
    s.items = 2000;
    s.order_ring_capacity = 16384;
    return s;
  };

  auto print_breakdown = [](const char* label, const WorkerStats& total) {
    std::uint64_t sum = 0;
    for (int i = 0; i < static_cast<int>(TimeCategory::kCount); ++i) {
      sum += total.cycles[i];
    }
    if (sum == 0) sum = 1;
    std::printf("%-22s exec %5.1f%%   locking %5.1f%%   waiting %5.1f%%\n",
                label,
                100.0 * total.Get(TimeCategory::kExecution) / sum,
                100.0 * total.Get(TimeCategory::kLocking) / sum,
                100.0 * total.Get(TimeCategory::kWaiting) / sum);
  };

  for (int w : {128, 16}) {
    std::printf("\n=== Figure 10: execution-thread CPU time, %d warehouses "
                "(%s contention) ===\n",
                w, w == 128 ? "low" : "high");
    {
      workload::tpcc::TpccWorkload wl(scale_for(w));
      engine::OrthrusOptions oo;
      oo.num_cc = kCc;
      engine::OrthrusEngine eng(BenchOptions(kCores), oo);
      RunResult r = RunPoint(&eng, &wl, kCores, 1, kCc);
      // Execution threads only (per_worker[kCc..]) — CC threads are the
      // delegated lock manager, like the paper's measurement.
      WorkerStats exec_total;
      for (int i = kCc; i < kCores; ++i) exec_total.Merge(r.per_worker[i]);
      print_breakdown("orthrus (64 exec)", exec_total);
    }
    {
      workload::tpcc::TpccWorkload wl(scale_for(w));
      engine::OrthrusOptions oo;
      oo.num_cc = kCc;
      oo.vectorized_cc = true;
      engine::OrthrusEngine eng(BenchOptions(kCores), oo);
      RunResult r = RunPoint(&eng, &wl, kCores, 1, kCc);
      WorkerStats exec_total;
      for (int i = kCc; i < kCores; ++i) exec_total.Merge(r.per_worker[i]);
      print_breakdown("orthrus-veccc (64 exec)", exec_total);
      // CC-side vectorization counters live on the CC workers [0, kCc).
      WorkerStats cc_total;
      for (int i = 0; i < kCc; ++i) cc_total.Merge(r.per_worker[i]);
      const double occupancy =
          cc_total.cc_batches == 0
              ? 0.0
              : static_cast<double>(cc_total.cc_batch_msgs) /
                    static_cast<double>(cc_total.cc_batches);
      std::printf("%-22s cc_batch_occupancy %.2f msgs/batch   "
                  "key_runs_combined %llu\n",
                  "", occupancy,
                  static_cast<unsigned long long>(
                      cc_total.cc_key_runs_combined));
    }
    {
      workload::tpcc::TpccWorkload wl(scale_for(w));
      engine::DeadlockFreeEngine eng(BenchOptions(kCores));
      RunResult r = RunPoint(&eng, &wl, kCores, 1);
      print_breakdown("deadlock-free", r.total);
    }
    {
      workload::tpcc::TpccWorkload wl(scale_for(w));
      engine::TwoPlEngine eng(BenchOptions(kCores),
                              engine::DeadlockPolicyKind::kDreadlocks);
      RunResult r = RunPoint(&eng, &wl, kCores, 1);
      print_breakdown("2pl-dreadlocks", r.total);
    }
  }
  std::printf("(paper, high contention: ORTHRUS 18%%, deadlock-free 7.2%%, "
              "2PL 3.7%% execution time)\n");
  return 0;
}
