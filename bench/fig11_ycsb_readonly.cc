// Figure 11 (appendix): YCSB read-only transaction scalability under low
// and high contention. ORTHRUS in single / dual / random partition
// configurations vs Deadlock-free locking and 2PL w/ wait-die.
//
// Expected shapes: (a) low contention — single > dual ORTHRUS > the locking
// baselines > random ORTHRUS (message hops dominate when a transaction's
// locks are scattered); (b) high contention — ORTHRUS configurations keep
// scaling (contended meta-data stays core-local), while both locking
// baselines flatten and then decline past ~60 cores despite the total
// absence of logical conflicts.
#include <vector>

#include "bench/common/bench_harness.h"

int main() {
  using namespace orthrus;
  using namespace orthrus::bench;

  JsonFigure("fig11_ycsb_readonly");
  const std::vector<int> core_counts = CoreSweep({10, 20, 40, 60, 80});
  std::vector<std::string> xs;
  for (int c : core_counts) xs.push_back(std::to_string(c));

  for (bool high : {false, true}) {
    const std::string tag = high ? "/high" : "/low";
    PrintHeader(std::string("Figure 11: YCSB read-only scalability, ") +
                    (high ? "high" : "low") + " contention",
                "tput (M/s) @cores", xs);
    const auto contention = high ? workload::YcsbContention::kHigh
                                 : workload::YcsbContention::kLow;

    auto orthrus_row = [&](workload::YcsbPlacement placement,
                           const std::string& label, bool snapshot_reads) {
      std::vector<double> tputs;
      for (int cores : core_counts) {
        workload::YcsbSpec spec;
        spec.contention = contention;
        spec.op = workload::YcsbOp::kReadOnly;
        spec.placement = placement;
        const int n_cc = std::max(2, cores / 5);
        spec.num_partitions = n_cc;
        spec.num_records = KvRecords();
        spec.row_bytes = KvRowBytes();
        auto wl = MakeYcsbWorkload(spec);
        engine::OrthrusOptions oo;
        oo.num_cc = n_cc;
        oo.snapshot_reads = snapshot_reads;
        engine::OrthrusEngine eng(BenchOptions(cores), oo);
        RunResult r = RunPoint(&eng, wl.get(), cores, 1);
        JsonPoint(label + tag, std::to_string(cores), r);
        tputs.push_back(r.Throughput());
      }
      PrintRow(label, tputs);
    };

    orthrus_row(workload::YcsbPlacement::kSingle, "orthrus(single)", false);
    orthrus_row(workload::YcsbPlacement::kDual, "orthrus(dual)", false);
    orthrus_row(workload::YcsbPlacement::kRandom, "orthrus(random)", false);
    // Snapshot arm: the same read-only stream is classified at admission
    // and served lock-free from the version slabs — no CC messages at all,
    // so placement stops mattering; single stands in for all three.
    orthrus_row(workload::YcsbPlacement::kSingle, "orthrus-snap", true);

    {
      // Sixth architecture: shared-everything shard CC whose read-only
      // transactions take the same epoch-snapshot path.
      std::vector<double> tputs;
      for (int cores : core_counts) {
        workload::YcsbSpec spec;
        spec.contention = contention;
        spec.op = workload::YcsbOp::kReadOnly;
        spec.placement = workload::YcsbPlacement::kRandom;
        spec.num_partitions = 1;
        spec.num_records = KvRecords();
        spec.row_bytes = KvRowBytes();
        auto wl = MakeYcsbWorkload(spec);
        engine::MvccEngine eng(BenchOptions(cores));
        RunResult r = RunPoint(&eng, wl.get(), cores, 1);
        JsonPoint("mvcc-snapshot" + tag, std::to_string(cores), r);
        tputs.push_back(r.Throughput());
      }
      PrintRow("mvcc-snapshot", tputs);
    }

    {
      std::vector<double> tputs;
      for (int cores : core_counts) {
        workload::YcsbSpec spec;
        spec.contention = contention;
        spec.op = workload::YcsbOp::kReadOnly;
        spec.placement = workload::YcsbPlacement::kRandom;
        spec.num_partitions = 1;
        spec.num_records = KvRecords();
        spec.row_bytes = KvRowBytes();
        auto wl = MakeYcsbWorkload(spec);
        engine::DeadlockFreeEngine eng(BenchOptions(cores));
        RunResult r = RunPoint(&eng, wl.get(), cores, 1);
        JsonPoint("deadlock-free" + tag, std::to_string(cores), r);
        tputs.push_back(r.Throughput());
      }
      PrintRow("deadlock-free", tputs);
    }
    {
      std::vector<double> tputs;
      for (int cores : core_counts) {
        workload::YcsbSpec spec;
        spec.contention = contention;
        spec.op = workload::YcsbOp::kReadOnly;
        spec.placement = workload::YcsbPlacement::kRandom;
        spec.num_partitions = 1;
        spec.num_records = KvRecords();
        spec.row_bytes = KvRowBytes();
        auto wl = MakeYcsbWorkload(spec);
        engine::TwoPlEngine eng(BenchOptions(cores),
                                engine::DeadlockPolicyKind::kWaitDie);
        RunResult r = RunPoint(&eng, wl.get(), cores, 1);
        JsonPoint("2pl-waitdie" + tag, std::to_string(cores), r);
        tputs.push_back(r.Throughput());
      }
      PrintRow("2pl-waitdie", tputs);
    }
  }
  return 0;
}
