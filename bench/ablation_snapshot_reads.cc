// Ablation: the snapshot read path — epoch-versioned storage plus CC
// bypass for admission-classified read-only transactions.
//
// Four arms at the top core count over YCSB read-only and a 50/50
// read/RMW mix, low and high contention:
//
//   orthrus-snap   ORTHRUS, snapshot_reads on: classified readers take
//                  zero locks and send zero CC messages (version-slab
//                  copies at the admission epoch).
//   orthrus        the same engine with the knob off — every reader still
//                  pays lock messages to the CC threads.
//   mvcc-snapshot  the shared-everything shard-CC engine whose readers
//                  take the same epoch-snapshot path.
//   2pl-waitdie    the conflated-functionality baseline.
//
// Expected shape: on the read-only points the snapshot arm clears 2x the
// 2PL baseline (the acceptance pin; the ratio is printed) and beats
// snap-off ORTHRUS, since the CC mesh drops out entirely. On the mixed
// points the bypass on the read half keeps the snapshot arm at or above
// the snap-off engine — repeat installs of a hot row stay on the
// same-epoch in-place fast path at the default tick interval, and stalled
// spinners fold the heartbeat mins directly (EpochClock::FoldMins) rather
// than waiting out a tick. fig12's pure-RMW arm bounds the other end
// (installs only, no bypass).
#include <string>
#include <vector>

#include "bench/common/bench_harness.h"

int main() {
  using namespace orthrus;
  using namespace orthrus::bench;

  JsonFigure("ablation_snapshot_reads");
  const std::vector<int> sweep = CoreSweep({80});
  const int cores = sweep.back();
  const int n_cc = std::max(2, cores / 5);

  const std::vector<std::string> xs = {"ro/low", "ro/high", "mix50/low",
                                       "mix50/high"};
  PrintHeader("Ablation: snapshot read path (CC bypass), " +
                  std::to_string(cores) + " cores",
              "tput (M/s)", xs);

  // KvConfig per x point. ORTHRUS arms use the paper's single-partition
  // placement over an n_cc universe; the shared-everything arms see one
  // partition, as in figures 11/12.
  auto make_kv = [&](std::size_t x, bool orthrus_shape) {
    workload::YcsbSpec spec;
    spec.contention = (x % 2 == 1) ? workload::YcsbContention::kHigh
                                   : workload::YcsbContention::kLow;
    const bool mixed = x >= 2;
    spec.op = mixed ? workload::YcsbOp::kRmw : workload::YcsbOp::kReadOnly;
    spec.placement = orthrus_shape ? workload::YcsbPlacement::kSingle
                                   : workload::YcsbPlacement::kRandom;
    spec.num_partitions = orthrus_shape ? n_cc : 1;
    spec.num_records = KvRecords();
    spec.row_bytes = KvRowBytes();
    workload::KvConfig kv = MakeYcsbConfig(spec);
    if (mixed) kv.pct_read_only = 50;
    return kv;
  };

  auto run_row = [&](const std::string& label, bool orthrus_shape,
                     auto make_engine) {
    std::vector<double> tputs;
    for (std::size_t x = 0; x < xs.size(); ++x) {
      workload::KvWorkload wl(make_kv(x, orthrus_shape));
      auto eng = make_engine();
      RunResult r = RunPoint(eng.get(), &wl, cores, 1);
      JsonPoint(label, xs[x], r);
      tputs.push_back(r.Throughput());
    }
    PrintRow(label, tputs);
    return tputs;
  };

  const std::vector<double> snap =
      run_row("orthrus-snap", true, [&]() -> std::unique_ptr<engine::Engine> {
        engine::OrthrusOptions oo;
        oo.num_cc = n_cc;
        oo.snapshot_reads = true;
        return std::make_unique<engine::OrthrusEngine>(BenchOptions(cores),
                                                       oo);
      });
  run_row("orthrus", true, [&]() -> std::unique_ptr<engine::Engine> {
    engine::OrthrusOptions oo;
    oo.num_cc = n_cc;
    return std::make_unique<engine::OrthrusEngine>(BenchOptions(cores), oo);
  });
  run_row("mvcc-snapshot", false, [&]() -> std::unique_ptr<engine::Engine> {
    return std::make_unique<engine::MvccEngine>(BenchOptions(cores));
  });
  const std::vector<double> twopl =
      run_row("2pl-waitdie", false, [&]() -> std::unique_ptr<engine::Engine> {
        return std::make_unique<engine::TwoPlEngine>(
            BenchOptions(cores), engine::DeadlockPolicyKind::kWaitDie);
      });

  // The acceptance pin, in plain sight for the nightly log: read-only
  // snapshot throughput over the 2PL baseline, per contention level.
  for (std::size_t x = 0; x < 2; ++x) {
    const double ratio = twopl[x] > 0 ? snap[x] / twopl[x] : 0.0;
    PrintNote("snapshot/2pl speedup @" + xs[x] + ": " +
              std::to_string(ratio) + "x (target >= 2x at full scale)");
  }
  return 0;
}
