// Figure 9: TPC-C scalability under high contention (16 warehouses) while
// increasing the core count.
//
// Expected shape: deadlock-free and 2PL start equal at 10 cores (validating
// the 2PL substrate); 2PL w/ dreadlocks declines as cores are added;
// ORTHRUS keeps scaling (paper: 2x deadlock-free and ~10x 2PL at 80 cores).
#include <vector>

#include "bench/common/bench_harness.h"

int main() {
  using namespace orthrus;
  using namespace orthrus::bench;

  const std::vector<int> core_counts = CoreSweep({10, 20, 40, 60, 80});
  std::vector<std::string> xs;
  for (int c : core_counts) xs.push_back(std::to_string(c));
  PrintHeader("Figure 9: TPC-C scalability, 16 warehouses", "tput (M/s) @cores",
              xs);

  auto scale16 = [] {
    workload::tpcc::TpccScale s;
    s.warehouses = 16;
    s.customers_per_district = 150;
    s.items = 2000;
    s.order_ring_capacity = 16384;
    return s;
  };

  {
    std::vector<double> tputs;
    for (int cores : core_counts) {
      workload::tpcc::TpccWorkload wl(scale16());
      engine::OrthrusOptions oo;
      // Keep the paper's 1:4 CC:exec split (16 CC threads at 80 cores).
      oo.num_cc = std::max(2, cores / 5);
      engine::OrthrusEngine eng(BenchOptions(cores), oo);
      tputs.push_back(
          RunPoint(&eng, &wl, cores, 1, /*partitioner_n=*/oo.num_cc)
              .Throughput());
    }
    PrintRow("orthrus", tputs);
  }
  {
    std::vector<double> tputs;
    for (int cores : core_counts) {
      workload::tpcc::TpccWorkload wl(scale16());
      engine::DeadlockFreeEngine eng(BenchOptions(cores));
      tputs.push_back(RunPoint(&eng, &wl, cores, 1).Throughput());
    }
    PrintRow("deadlock-free", tputs);
  }
  {
    std::vector<double> tputs;
    for (int cores : core_counts) {
      workload::tpcc::TpccWorkload wl(scale16());
      engine::TwoPlEngine eng(BenchOptions(cores),
                              engine::DeadlockPolicyKind::kDreadlocks);
      tputs.push_back(RunPoint(&eng, &wl, cores, 1).Throughput());
    }
    PrintRow("2pl-dreadlocks", tputs);
  }
  return 0;
}
