// Ablation: NUMA-aware placement (hal::Topology + hal::SlabArena) on a
// modeled two-socket machine, plus backpressure-driven admission against
// a deliberately under-provisioned mesh.
//
// Part 1 — placement. The sim models two sockets (SimConfig::sockets = 2):
// a line transfer whose holder sits on the requester's socket costs
// local_transfer_cycles and bypasses the shared interconnect; a remote one
// pays the full transfer cost plus fabric occupancy. Row reads and writes
// are compute-charged, not coherence-modeled, so what the socket boundary
// actually taxes is the messaging fabric: the atomic words of the MPSC
// rings. The engine runs the elastic single-shard mesh, where every exec
// thread funnels into one reservation-CAS / tail-publication chain per CC
// ring — the most contended atomic lines in the system, and their owner
// chains hop between whichever cores last touched them. The placement arm
// hands the engine a matching hal::Topology: CC threads (plus their lock
// partitions, log streams, and arena-homed ring slabs) pack onto socket 0
// and the exec group onto the remainder — with num_cc = cores/2 the whole
// exec group lands on socket 1, so the exec-side CAS and tail chains stay
// socket-local and the fabric relief feeds back into every remaining
// remote transfer. Without a topology the OS-order identity map scatters
// both roles across sockets and every owner hop is a coin flip.
//
// Part 2 — backpressure. The elastic exec->CC mesh is sized far below its
// provable bound (mesh_capacity_factor = 0.05) and CC consume cost is
// raised so the CC side is the bottleneck, creating a real send-stall
// regime at saturation. The spin arm lets blocking sends busy-wait on the
// full ring; the backpressure arm converts the per-epoch stall rate into
// an AIMD reduction of the in-flight window (runtime::TxnAdmission), so
// transactions queue at admission instead of mid-pipeline — same ring,
// lower p50 and p99 commit latency for a modest throughput cost.
#include <string>
#include <vector>

#include "bench/common/bench_harness.h"
#include "hal/slab_arena.h"
#include "hal/topology.h"

namespace {

using namespace orthrus;
using namespace orthrus::bench;

RunResult RunNumaPoint(engine::Engine* eng, workload::Workload* wl,
                       int cores, int partitioner_n,
                       const hal::SimConfig& cfg, hal::SlabArena* arena) {
  storage::Database db;
  if (arena != nullptr) db.set_arena(arena);
  wl->Load(&db, 1);
  if (partitioner_n != 0) db.partitioner().n = partitioner_n;
  hal::SimPlatform sim(cores, cfg);
  return eng->Run(&sim, &db, *wl);
}

}  // namespace

int main() {
  const int kSockets = 2;

  hal::SimConfig cfg;
  cfg.sockets = kSockets;

  JsonFigure("ablation_numa");

  // --- Part 1: placement on/off across contention levels ---------------
  // 32 cores, 16 CC: the exec group exactly fills socket 1 under
  // placement, and 16 senders per single-shard ring maximizes fan-in
  // contention on the reservation lines.
  const int kCores = 32;
  const int kCc = kCores / 2;
  const hal::Topology topo = hal::Topology::Modeled(kCores, kSockets);

  struct Point {
    const char* label;
    std::uint64_t hot_records;  // 0 = uniform
  };
  const std::vector<Point> points = {
      {"uniform", 0}, {"hot4096", 4096}, {"hot256", 256}};
  std::vector<std::string> xs;
  for (const Point& p : points) xs.push_back(p.label);
  PrintHeader("Ablation: NUMA placement, 32 cores / 2 sockets",
              "tput (M/s) @hotset", xs);

  for (const bool placed : {false, true}) {
    std::vector<double> tputs;
    for (const Point& p : points) {
      workload::KvConfig kv;
      kv.num_records = KvRecords();
      kv.row_bytes = KvRowBytes();
      kv.num_partitions = kCc;
      kv.hot_records = p.hot_records;
      kv.hot_ops = p.hot_records > 0 ? 2 : 0;
      kv.seed = 91;
      workload::KvWorkload wl(kv);
      engine::EngineOptions eo = BenchOptions(kCores);
      // Row slabs from a node-0 arena in the placement arm (the loader
      // runs before workers exist, so the arena's node binding is the only
      // placement lever storage has; in the sim it exercises the same
      // allocation path native NUMA binding uses).
      hal::SlabArena arena;
      if (placed) eo.topology = &topo;
      engine::OrthrusOptions oo;
      oo.num_cc = kCc;
      oo.elastic = true;
      oo.elastic_shards = 1;
      // Freeze the controller: floor == population, so the A/B measures
      // placement, not reallocation dynamics.
      oo.elastic_min_exec = kCores - kCc;
      engine::OrthrusEngine eng(eo, oo);
      RunResult r = RunNumaPoint(&eng, &wl, kCores, kCc, cfg,
                                 placed ? &arena : nullptr);
      tputs.push_back(r.Throughput());
      JsonPoint(placed ? "placement" : "no-placement", p.label, r);
    }
    PrintRow(placed ? "placement (topology)" : "no placement", tputs);
  }

  // --- Part 2: backpressure admission vs spin-on-full at saturation ----
  // 16 cores so each of the 8 scaled-down rings (16 entries at factor
  // 0.05) sees enough pressure to stall; cc_op_cycles = 60 makes the CC
  // side the bottleneck so the rings actually back up.
  const int kBpCores = 16;
  const int kBpCc = kBpCores / 2;
  const hal::Topology bp_topo = hal::Topology::Modeled(kBpCores, kSockets);
  PrintHeader("Backpressure vs spin-on-full (under-provisioned mesh)",
              "", {"tput (M/s)", "p99 (us)"});
  for (const bool bp : {false, true}) {
    workload::KvConfig kv;
    kv.num_records = KvRecords();
    kv.row_bytes = KvRowBytes();
    kv.num_partitions = kBpCc;
    kv.seed = 91;
    workload::KvWorkload wl(kv);
    engine::EngineOptions eo = BenchOptions(kBpCores);
    eo.topology = &bp_topo;
    engine::OrthrusOptions oo;
    oo.num_cc = kBpCc;
    oo.max_inflight = 16;   // deep window: saturates the scaled-down rings
    oo.cc_op_cycles = 60;   // CC-bound: consume slower than produce
    oo.elastic = true;      // mesh_capacity_factor shapes the elastic mesh
    oo.elastic_shards = 1;
    oo.elastic_min_exec = kBpCores - kBpCc;
    oo.mesh_capacity_factor = 0.05;
    oo.backpressure_admission = bp;
    engine::OrthrusEngine eng(eo, oo);
    RunResult r = RunNumaPoint(&eng, &wl, kBpCores, kBpCc, cfg, nullptr);
    const double p99_us =
        static_cast<double>(r.total.txn_latency.Percentile(0.99)) /
        (cfg.ghz * 1e3);
    std::printf("%-22s%12.3f%12.3f\n",
                bp ? "backpressure (AIMD)" : "spin-on-full",
                r.Throughput() / 1e6, p99_us);
    PrintNote("  send stalls: " + std::to_string(r.total.send_stalls));
    JsonPoint(bp ? "backpressure" : "spin-on-full", "saturated", r);
  }
  return 0;
}
