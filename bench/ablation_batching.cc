// Ablation: batched message transport on the CC<->exec hot path. Every
// lock acquire/grant/release is a word-sized message on a per-pair SPSC
// queue (Section 3.1), and both directions of the batching now exist:
//
//  * receive side (`batched_mp`): the batched drain pops up to a cache
//    line of messages per head publication, while the unbatched baseline
//    publishes the consumer index once per message;
//  * send side (`coalesced_send`): senders stage messages in a per-pair
//    mp::SendBuffer and publish the tail once per flushed line, while the
//    baseline publishes once per message.
//
// Note what is and is not ablated: every arm uses the line-packed payload
// layout (one modeled coherence line per 8 messages), so this measures
// index-publication granularity only, not the packing itself.
//
// Expected shape: the receive-side gap grows with message pressure — more
// CC threads per transaction means more messages per commit, and bursts at
// each CC thread deepen, giving batching more to amortize. The send side
// is a genuine trade under the simulator's cost model: coalescing cuts
// tail publications by kMsgsPerLine (see BM_SpscSendBuffer's
// tail_pubs_per_msg counter) but holds staged messages until the sender's
// quantum ends, and at these shapes the added critical-path latency can
// outweigh the saved coherence traffic — which is exactly why it ships as
// an ablation flag rather than a hard-wired behaviour.
#include <vector>

#include "bench/common/bench_harness.h"

int main() {
  using namespace orthrus;
  using namespace orthrus::bench;

  const int kCores = 80;
  const int kCc = 16;
  const std::vector<int> parts_per_txn = {1, 2, 4, 8};
  std::vector<std::string> xs;
  for (int p : parts_per_txn) xs.push_back(std::to_string(p));
  PrintHeader("Ablation: batched queue transport, 80 cores",
              "tput (M/s) @parts", xs);

  struct Arm {
    const char* label;
    bool batched_mp;
    bool coalesced_send;
    bool combined_grants = false;
    bool adaptive_drain_batch = false;
  };
  const Arm arms[] = {
      {"batched+coalesced (default)", true, true},
      {"recv batched only", true, false},
      {"send coalesced only", false, true},
      {"neither (msg/pub)", false, false},
      // CC->exec grant combining on top of the default: packs a quantum's
      // grants per exec thread into single words (fewer words, one extra
      // quantum of grant latency).
      {"default + combined grants", true, true, true},
      // Burst-adaptive drain batch sizing on top of the default: each
      // receiver pops in batches sized by its measured burst depth
      // (mp::detail::BurstEstimator) instead of a full line — the receive
      // side of the same latency/amortization trade adaptive_flush makes
      // on the send side.
      {"default + adaptive drain batch", true, true, false, true},
  };
  for (const Arm& arm : arms) {
    std::vector<double> tputs;
    std::string words;
    for (int k : parts_per_txn) {
      workload::KvConfig kv;
      kv.num_records = KvRecords();
      kv.row_bytes = KvRowBytes();
      kv.num_partitions = kCc;
      kv.placement = workload::KvConfig::Placement::kFixedCount;
      kv.partitions_per_txn = k;
      kv.seed = 77;
      workload::KvWorkload wl(kv);
      engine::OrthrusOptions oo;
      oo.num_cc = kCc;
      oo.batched_mp = arm.batched_mp;
      oo.coalesced_send = arm.coalesced_send;
      oo.combined_grants = arm.combined_grants;
      oo.adaptive_drain_batch = arm.adaptive_drain_batch;
      engine::OrthrusEngine eng(BenchOptions(kCores), oo);
      RunResult r = RunPoint(&eng, &wl, kCores, 1);
      tputs.push_back(r.Throughput());
      if (arm.combined_grants && r.total.committed > 0) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), " %.2f",
                      static_cast<double>(r.total.messages_sent) /
                          static_cast<double>(r.total.committed));
        words += buf;
      }
    }
    PrintRow(arm.label, tputs);
    if (!words.empty()) PrintNote("  msg words/commit:" + words);
  }
  return 0;
}
