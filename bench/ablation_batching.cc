// Ablation: batched message delivery on the CC<->exec hot path. Every lock
// acquire/grant/release is a word-sized message on a per-pair SPSC queue
// (Section 3.1); the batched drain pops up to a cache line of messages per
// index publication, while the unbatched baseline publishes the consumer
// index once per message. Note what is and is not ablated: both arms use
// the line-packed payload layout (one modeled coherence line per 8
// messages), so this measures delivery/index-publication granularity
// only, not the packing itself.
//
// Expected shape: the gap grows with message pressure — more CC threads
// per transaction means more messages per commit, and bursts at each CC
// thread deepen, giving batching more to amortize.
#include <vector>

#include "bench/common/bench_harness.h"

int main() {
  using namespace orthrus;
  using namespace orthrus::bench;

  const int kCores = 80;
  const int kCc = 16;
  const std::vector<int> parts_per_txn = {1, 2, 4, 8};
  std::vector<std::string> xs;
  for (int p : parts_per_txn) xs.push_back(std::to_string(p));
  PrintHeader("Ablation: batched queue delivery, 80 cores",
              "tput (M/s) @parts", xs);

  for (bool batched : {true, false}) {
    std::vector<double> tputs;
    for (int k : parts_per_txn) {
      workload::KvConfig kv;
      kv.num_records = KvRecords();
      kv.row_bytes = KvRowBytes();
      kv.num_partitions = kCc;
      kv.placement = workload::KvConfig::Placement::kFixedCount;
      kv.partitions_per_txn = k;
      kv.seed = 77;
      workload::KvWorkload wl(kv);
      engine::OrthrusOptions oo;
      oo.num_cc = kCc;
      oo.batched_mp = batched;
      engine::OrthrusEngine eng(BenchOptions(kCores), oo);
      RunResult r = RunPoint(&eng, &wl, kCores, 1);
      tputs.push_back(r.Throughput());
    }
    PrintRow(batched ? "batched (line/pop)" : "unbatched (msg/pop)", tputs);
  }
  return 0;
}
