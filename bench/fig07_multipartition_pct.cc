// Figure 7: throughput as the percentage of multi-partition transactions
// varies (multi-partition transactions touch exactly two partitions;
// 80 cores).
//
// Expected shape: Partitioned-store starts highest at 0% and decays fastest
// as multi-partition work grows; ORTHRUS decays gently (extra message hops)
// and stays above Deadlock-free across the whole range, including 100%.
#include <vector>

#include "bench/common/bench_harness.h"

int main() {
  using namespace orthrus;
  using namespace orthrus::bench;

  const int kCores = 80;
  const int kCc = 16;
  const std::vector<int> pct_multi = {0, 20, 40, 60, 80, 100};
  std::vector<std::string> xs;
  for (int p : pct_multi) xs.push_back(std::to_string(p) + "%");
  PrintHeader("Figure 7: percentage of multi-partition txns (80 cores)",
              "tput (M/s) @multi", xs);

  auto kv_for = [&](int universe, bool local_affinity, int pct) {
    workload::KvConfig kv;
    kv.num_records = KvRecords();
    kv.row_bytes = KvRowBytes();
    kv.num_partitions = universe;
    kv.placement = workload::KvConfig::Placement::kPctMulti;
    kv.pct_multi = pct;
    kv.local_affinity = local_affinity;
    kv.seed = 7;
    return kv;
  };

  {
    std::vector<double> tputs;
    for (int pct : pct_multi) {
      workload::KvWorkload wl(kv_for(kCores, true, pct));
      engine::PartitionedEngine eng(BenchOptions(kCores));
      tputs.push_back(RunPoint(&eng, &wl, kCores, kCores).Throughput());
    }
    PrintRow("partitioned-store", tputs);
  }
  {
    std::vector<double> tputs;
    for (int pct : pct_multi) {
      workload::KvWorkload wl(kv_for(kCc, false, pct));
      engine::OrthrusOptions oo;
      oo.num_cc = kCc;
      oo.split_index = true;
      engine::OrthrusEngine eng(BenchOptions(kCores), oo);
      tputs.push_back(RunPoint(&eng, &wl, kCores, kCc).Throughput());
    }
    PrintRow("split-orthrus", tputs);
  }
  {
    std::vector<double> tputs;
    for (int pct : pct_multi) {
      workload::KvWorkload wl(kv_for(kCc, false, pct));
      engine::OrthrusOptions oo;
      oo.num_cc = kCc;
      engine::OrthrusEngine eng(BenchOptions(kCores), oo);
      tputs.push_back(RunPoint(&eng, &wl, kCores, 1).Throughput());
    }
    PrintRow("orthrus", tputs);
  }
  {
    std::vector<double> tputs;
    for (int pct : pct_multi) {
      workload::KvWorkload wl(kv_for(kCores, false, pct));
      engine::DeadlockFreeEngine eng(BenchOptions(kCores),
                                     /*split_index=*/true);
      tputs.push_back(RunPoint(&eng, &wl, kCores, kCores).Throughput());
    }
    PrintRow("split-deadlock-free", tputs);
  }
  {
    std::vector<double> tputs;
    for (int pct : pct_multi) {
      workload::KvWorkload wl(kv_for(kCores, false, pct));
      engine::DeadlockFreeEngine eng(BenchOptions(kCores));
      tputs.push_back(RunPoint(&eng, &wl, kCores, 1).Throughput());
    }
    PrintRow("deadlock-free", tputs);
  }
  return 0;
}
