// Ablation: partitioned vs shared CC lock table (Section 3.4).
//
// ORTHRUS partitions the lock space so each CC thread's meta-data is
// strictly core-local. The paper's alternative shares one latched lock
// table among CC threads: synchronization returns, but only across the
// small set of CC threads, and any single CC thread can acquire a whole
// transaction's lock set (one message round-trip regardless of how many
// partitions the keys would have spanned).
//
// Expected shape: under a uniform workload the partitioned table wins as
// transactions span many partitions are... rather, the shared table wins
// when transactions would chain across many CC threads (it has no chains),
// and loses as CC-thread count grows (bucket-latch contention among CC
// threads) or when the partitioned layout is single-partition-friendly.
// Under Zipfian skew the shared table also self-balances CC load while the
// partitioned table's hottest partition saturates first (Section 3.3's
// utilization-imbalance discussion).
#include <vector>

#include "bench/common/bench_harness.h"

int main() {
  using namespace orthrus;
  using namespace orthrus::bench;

  const int kCores = 80;
  const std::vector<int> cc_counts = {2, 4, 8, 16};
  std::vector<std::string> xs;
  for (int c : cc_counts) xs.push_back(std::to_string(c));

  auto make_kv = [&](int n_cc, double zipf, int parts_per_txn) {
    workload::KvConfig kv;
    kv.num_records = KvRecords();
    kv.row_bytes = KvRowBytes();
    kv.num_partitions = n_cc;
    kv.seed = 55;
    if (zipf > 0) {
      kv.zipf_theta = zipf;
      kv.placement = workload::KvConfig::Placement::kUniform;
    } else {
      kv.placement = workload::KvConfig::Placement::kFixedCount;
      kv.partitions_per_txn = std::min(parts_per_txn, n_cc);
    }
    return kv;
  };

  auto run_sweep = [&](const char* title, double zipf, int parts_per_txn) {
    PrintHeader(title, "tput (M/s) @cc", xs);
    for (bool shared : {false, true}) {
      std::vector<double> tputs;
      for (int n_cc : cc_counts) {
        workload::KvWorkload wl(make_kv(n_cc, zipf, parts_per_txn));
        engine::OrthrusOptions oo;
        oo.num_cc = n_cc;
        oo.shared_cc_table = shared;
        engine::OrthrusEngine eng(BenchOptions(kCores), oo);
        tputs.push_back(RunPoint(&eng, &wl, kCores, 1).Throughput());
      }
      PrintRow(shared ? "shared-cc-table" : "partitioned-cc", tputs);
    }
    // The fifth architecture: the same partition-local lock metadata with
    // no dedicated CC threads at all — every one of the 80 cores both
    // acquires (through per-partition latches; the x-axis is the shard
    // count here) and executes. Prices the dedicated-thread design
    // against doing CC in place on the same partitioned metadata.
    {
      std::vector<double> tputs;
      for (int n_cc : cc_counts) {
        workload::KvWorkload wl(make_kv(n_cc, zipf, parts_per_txn));
        engine::SharedCcEngine eng(BenchOptions(kCores));
        tputs.push_back(RunPoint(&eng, &wl, kCores, 1).Throughput());
      }
      PrintRow("sharedcc-everywhere", tputs);
    }
  };

  run_sweep("Ablation 3.4a: uniform single-partition txns", 0.0, 1);
  run_sweep("Ablation 3.4b: uniform 4-partition txns", 0.0, 4);
  run_sweep("Ablation 3.4c: zipfian skew (theta=0.9, imbalanced CC load)",
            0.9, 0);
  return 0;
}
