// Figure 8: TPC-C (NewOrder + Payment, 50/50) throughput while varying the
// number of warehouses, 80 cores. Contention decreases left to right.
//
// Expected shape: at few warehouses ORTHRUS wins by a wide margin (paper:
// up to an order of magnitude over 2PL w/ dreadlocks); as warehouses grow
// the gap narrows (paper: 1.3x over deadlock-free and 1.5x over 2PL at 128
// warehouses).
#include <vector>

#include "bench/common/bench_harness.h"

int main() {
  using namespace orthrus;
  using namespace orthrus::bench;

  const int kCores = 80;
  const int kCc = 16;
  const std::vector<int> warehouses = {4, 8, 16, 32, 64, 96, 128};
  std::vector<std::string> xs;
  for (int w : warehouses) xs.push_back(std::to_string(w));
  PrintHeader("Figure 8: TPC-C NewOrder+Payment vs warehouses (80 cores)",
              "tput (M/s) @W", xs);

  auto scale_for = [](int w) {
    workload::tpcc::TpccScale s;
    s.warehouses = w;
    s.customers_per_district = 150;
    s.items = 2000;
    s.order_ring_capacity = 16384;
    return s;
  };

  {
    std::vector<double> tputs;
    for (int w : warehouses) {
      workload::tpcc::TpccWorkload wl(scale_for(w));
      engine::OrthrusOptions oo;
      oo.num_cc = kCc;
      engine::OrthrusEngine eng(BenchOptions(kCores), oo);
      tputs.push_back(
          RunPoint(&eng, &wl, kCores, 1, /*partitioner_n=*/kCc).Throughput());
    }
    PrintRow("orthrus", tputs);
  }
  {
    std::vector<double> tputs;
    for (int w : warehouses) {
      workload::tpcc::TpccWorkload wl(scale_for(w));
      engine::DeadlockFreeEngine eng(BenchOptions(kCores));
      tputs.push_back(RunPoint(&eng, &wl, kCores, 1).Throughput());
    }
    PrintRow("deadlock-free", tputs);
  }
  {
    std::vector<double> tputs;
    for (int w : warehouses) {
      workload::tpcc::TpccWorkload wl(scale_for(w));
      engine::TwoPlEngine eng(BenchOptions(kCores),
                              engine::DeadlockPolicyKind::kDreadlocks);
      tputs.push_back(RunPoint(&eng, &wl, kCores, 1).Throughput());
    }
    PrintRow("2pl-dreadlocks", tputs);
  }
  return 0;
}
