// Figure 5 (dynamic variant): elastic exec-thread allocation vs. the best
// static split, across a contention sweep.
//
// The static Figure 5 shows why the CC/exec split matters: each curve
// rises while exec threads are the bottleneck and plateaus (or dips) once
// the fixed CC threads saturate — and the right exec count moves with the
// workload. This driver closes the loop the paper's Section 4.2 sketches:
// `OrthrusOptions::elastic` runs the ElasticController against live
// per-epoch commit counts, parking and resuming exec threads at run time.
//
// Expected shape: for every contention level the elastic row lands within
// ~10% of the best static row (it spends early epochs probing, so exact
// parity is not expected), without being told the workload. The last row
// prints exactly that ratio.
#include <algorithm>
#include <vector>

#include "bench/common/bench_harness.h"

int main() {
  using namespace orthrus;
  using namespace orthrus::bench;

  const int kCc = 4;
  const int kMaxExec = 16;
  const std::vector<int> static_execs = {2, 4, 8, 16};

  struct Point {
    const char* label;
    double zipf_theta;
    std::uint64_t hot_records;
  };
  const std::vector<Point> points = {
      {"uniform", 0.0, 0},
      {"zipf .6", 0.6, 0},
      {"zipf .9", 0.9, 0},
      {"hot64", 0.0, 64},
  };
  std::vector<std::string> xs;
  for (const Point& p : points) xs.push_back(p.label);
  PrintHeader("Figure 5 (dynamic): elastic vs static exec allocation, 4 cc",
              "tput (M/s) @contention", xs);

  const auto make_workload = [&](const Point& p) {
    workload::KvConfig kv;
    kv.num_records = KvRecords();
    kv.row_bytes = KvRowBytes();
    kv.num_partitions = kCc;
    kv.zipf_theta = p.zipf_theta;
    kv.hot_records = p.hot_records;
    kv.seed = 5;
    return kv;
  };

  // Static sweep: one row per fixed exec count.
  std::vector<double> best_static(points.size(), 0.0);
  for (int n_exec : static_execs) {
    std::vector<double> tputs;
    for (std::size_t i = 0; i < points.size(); ++i) {
      workload::KvWorkload wl(make_workload(points[i]));
      engine::OrthrusOptions oo;
      oo.num_cc = kCc;
      engine::OrthrusEngine eng(BenchOptions(kCc + n_exec), oo);
      RunResult r = RunPoint(&eng, &wl, kCc + n_exec, 1, kCc);
      tputs.push_back(r.Throughput());
      best_static[i] = std::max(best_static[i], r.Throughput());
    }
    PrintRow("static " + std::to_string(n_exec) + " exec", tputs);
  }

  // Elastic arm: spawn the full exec budget, let the controller find the
  // split. Whole-run throughput includes the sweep's probing epochs; the
  // steady-state row is the controller's hold-phase EWMA — the converged
  // rate, which is what the 10%-of-best-static acceptance is about.
  std::vector<double> elastic_tputs;
  std::vector<double> whole_run_ratios;
  std::vector<double> steady_ratios;
  std::string targets;
  for (std::size_t i = 0; i < points.size(); ++i) {
    workload::KvWorkload wl(make_workload(points[i]));
    engine::OrthrusOptions oo;
    oo.num_cc = kCc;
    oo.elastic = true;
    oo.elastic_epoch_seconds = PointSeconds() / 20.0;
    oo.elastic_step = 2;
    engine::OrthrusEngine eng(BenchOptions(kCc + kMaxExec), oo);
    RunResult r = RunPoint(&eng, &wl, kCc + kMaxExec, 1, kCc);
    elastic_tputs.push_back(r.Throughput());
    whole_run_ratios.push_back(
        best_static[i] > 0 ? r.Throughput() / best_static[i] : 0.0);
    steady_ratios.push_back(
        best_static[i] > 0 ? eng.steady_state_throughput() / best_static[i]
                           : 0.0);
    targets += " " + std::string(points[i].label) + "->" +
               std::to_string(eng.final_exec_target()) + "exec(" +
               std::to_string(eng.reallocations()) + " moves)";
  }
  PrintRow("elastic (autotune)", elastic_tputs);

  const auto ratio_row = [](const std::vector<double>& ratios) {
    std::vector<double> row;
    for (double x : ratios) row.push_back(x * 1e6);  // PrintRow divides 1e6
    return row;
  };
  PrintRow("whole run / best", ratio_row(whole_run_ratios));
  PrintRow("steady state / best", ratio_row(steady_ratios));
  PrintNote("converged targets:" + targets);
  PrintNote(
      "whole-run pays the sweep's probing epochs; steady state >= 0.9 of "
      "the best static split is the convergence bar.");
  return 0;
}
