// Figure 5 (dynamic variant): elastic thread allocation vs. the best
// static split, across a contention sweep — now in BOTH dimensions.
//
// The static Figure 5 shows why the CC/exec split matters: each curve
// rises while exec threads are the bottleneck and plateaus (or dips) once
// the fixed CC threads saturate — and the right split moves with the
// workload. PR 4 closed half the loop (`OrthrusOptions::elastic` resizes
// the exec population at run time); with `elastic_cc` the lock space is a
// consistent-hash map of partitions onto CC slots (lock::SpaceMap), so the
// controller (engine::ElasticController2D) searches the full
// (cc_count x exec_count) plane, handing lock partitions between CC
// threads under the epoch protocol as it moves.
//
// Expected shape: for every contention level the elastic arm's *steady
// state* (hold-phase EWMA; the whole-run number additionally pays the grid
// sweep's probing epochs) lands within ~10% of the best static (cc, exec)
// grid point, without being told the workload. The last rows print exactly
// those ratios.
#include <algorithm>
#include <vector>

#include "bench/common/bench_harness.h"

int main() {
  using namespace orthrus;
  using namespace orthrus::bench;

  const int kMaxCc = 4;
  const int kMaxExec = 16;
  const int kParts = 2 * kMaxCc;  // elastic_cc lock partitions
  const std::vector<int> static_ccs = {2, 4};
  const std::vector<int> static_execs = {2, 4, 8, 16};

  struct Point {
    const char* label;
    double zipf_theta;
    std::uint64_t hot_records;
  };
  const std::vector<Point> points = {
      {"uniform", 0.0, 0},
      {"zipf .6", 0.6, 0},
      {"zipf .9", 0.9, 0},
      {"hot64", 0.0, 64},
  };
  std::vector<std::string> xs;
  for (const Point& p : points) xs.push_back(p.label);
  PrintHeader(
      "Figure 5 (dynamic): 2-D elastic vs static (cc, exec) allocation",
      "tput (M/s) @contention", xs);

  // Every arm runs the SAME lock-space universe (kParts consistent-hash
  // partitions through lock::SpaceMap): the figure is about *thread
  // allocation*, so the partition granularity — which sets the number of
  // acquisition stages per transaction — must be held constant. A static
  // (cc, exec) grid point is therefore an elastic_cc engine with both
  // populations pinned (floors == ceilings, no controller epochs): the
  // exact routing layer, fixed allocation.
  const auto make_workload = [&](const Point& p) {
    workload::KvConfig kv;
    kv.num_records = KvRecords();
    kv.row_bytes = KvRowBytes();
    kv.num_partitions = kParts;
    kv.zipf_theta = p.zipf_theta;
    kv.hot_records = p.hot_records;
    kv.seed = 5;
    return kv;
  };

  // Static grid: one row per pinned (cc, exec) pair.
  std::vector<double> best_static(points.size(), 0.0);
  for (int n_cc : static_ccs) {
    for (int n_exec : static_execs) {
      std::vector<double> tputs;
      for (std::size_t i = 0; i < points.size(); ++i) {
        workload::KvWorkload wl(make_workload(points[i]));
        engine::OrthrusOptions oo;
        oo.num_cc = n_cc;
        oo.elastic = true;
        oo.elastic_cc = true;
        oo.cc_partitions = kParts;
        oo.elastic_min_cc = n_cc;
        oo.elastic_min_exec = n_exec;
        oo.elastic_epoch_seconds = 1000.0;  // no controller epoch ends
        engine::OrthrusEngine eng(BenchOptions(n_cc + n_exec), oo);
        RunResult r = RunPoint(&eng, &wl, n_cc + n_exec, 1, kParts);
        tputs.push_back(r.Throughput());
        best_static[i] = std::max(best_static[i], r.Throughput());
      }
      PrintRow("static " + std::to_string(n_cc) + "cc/" +
                   std::to_string(n_exec) + "ex",
               tputs);
    }
  }

  // Elastic arm: spawn the full (cc, exec) budget, let the 2-D controller
  // find the split. Epochs are sized so the grid sweep (|cc candidates| x
  // |exec candidates| epochs) fits in a fraction of the run and the hold
  // phase dominates the steady-state EWMA; the loose tolerance keeps
  // single noisy epochs from re-triggering the (expensive) grid sweep.
  std::vector<double> elastic_tputs;
  std::vector<double> whole_run_ratios;
  std::vector<double> steady_ratios;
  std::string targets;
  for (std::size_t i = 0; i < points.size(); ++i) {
    workload::KvWorkload wl(make_workload(points[i]));
    engine::OrthrusOptions oo;
    oo.num_cc = kMaxCc;
    oo.elastic = true;
    oo.elastic_cc = true;
    oo.cc_partitions = kParts;
    oo.elastic_step = 4;  // exec candidates: 16, 12, 8, 4, 1
    oo.elastic_epoch_seconds = PointSeconds() / 50.0;
    oo.elastic_tolerance = 0.1;
    engine::OrthrusEngine eng(BenchOptions(kMaxCc + kMaxExec), oo);
    RunResult r = RunPoint(&eng, &wl, kMaxCc + kMaxExec, 1, kParts);
    elastic_tputs.push_back(r.Throughput());
    whole_run_ratios.push_back(
        best_static[i] > 0 ? r.Throughput() / best_static[i] : 0.0);
    steady_ratios.push_back(
        best_static[i] > 0 ? eng.steady_state_throughput() / best_static[i]
                           : 0.0);
    targets += " " + std::string(points[i].label) + "->" +
               std::to_string(eng.final_cc_target()) + "cc/" +
               std::to_string(eng.final_exec_target()) + "ex(" +
               std::to_string(eng.cc_reallocations()) + "cc+" +
               std::to_string(eng.reallocations() - eng.cc_reallocations()) +
               "ex moves)";
  }
  PrintRow("elastic 2-D (autotune)", elastic_tputs);

  const auto ratio_row = [](const std::vector<double>& ratios) {
    std::vector<double> row;
    for (double x : ratios) row.push_back(x * 1e6);  // PrintRow divides 1e6
    return row;
  };
  PrintRow("whole run / best", ratio_row(whole_run_ratios));
  PrintRow("steady state / best", ratio_row(steady_ratios));
  PrintNote("converged targets:" + targets);
  PrintNote(
      "whole-run pays the grid sweep's probing epochs; steady state >= 0.9 "
      "of the best static (cc, exec) grid point is the convergence bar.");
  return 0;
}
