// Ablation: restart backoff policy under contended 2PL.
//
// Every abort (wait-die "die", detected deadlock) restarts its
// transaction after a policy-chosen delay (`runtime::BackoffPolicy`,
// injected through `EngineOptions::backoff`). This sweeps the three
// classic shapes on wait-die 2PL as contention rises:
//
//   none         retry immediately — maximum pressure on the hot keys;
//                every restart rejoins the same conflict it just lost.
//   constant     a fixed 400-cycle pause + jitter.
//   exponential  the default capped exponential with deterministic
//                per-core jitter (base 100, shift cap 4).
//
// Expected shape: at low contention the policies are indistinguishable
// (few aborts, so the delay never runs). As the hot set shrinks, "none"
// burns cycles re-losing wait-die races, and backoff's throughput edge
// appears; the abort *rate* column makes the mechanism visible.
#include <string>
#include <vector>

#include "bench/common/bench_harness.h"

namespace {

// Retry immediately: the delay is zero regardless of restart count.
class NoBackoff final : public orthrus::runtime::BackoffPolicy {
 public:
  orthrus::hal::Cycles Delay(std::uint32_t, orthrus::Rng*) const override {
    return 0;
  }
};

// Fixed pause with the same deterministic jitter the default uses.
class ConstantBackoff final : public orthrus::runtime::BackoffPolicy {
 public:
  orthrus::hal::Cycles Delay(std::uint32_t, orthrus::Rng*) const override {
    return 400 + orthrus::hal::FastJitter(jitter);
  }
};

}  // namespace

int main() {
  using namespace orthrus;
  using namespace orthrus::bench;

  const int kCores = 16;
  // Shrinking hot sets: every transaction takes 2 hot keys, so fewer hot
  // records means more wait-die losses and more restarts.
  const std::vector<std::uint64_t> hot_sets = {0, 1024, 256, 64, 16};
  std::vector<std::string> xs;
  for (std::uint64_t h : hot_sets) {
    xs.push_back(h == 0 ? "uniform" : "hot" + std::to_string(h));
  }
  PrintHeader("Ablation: restart backoff policy, 2PL wait-die, 16 cores",
              "tput (M/s) @hotset", xs);

  const NoBackoff none;
  const ConstantBackoff constant;
  struct Arm {
    const char* label;
    const runtime::BackoffPolicy* policy;  // null = default exponential
  };
  const Arm arms[] = {
      {"none (immediate)", &none},
      {"constant 400cy", &constant},
      {"exponential (default)", nullptr},
  };

  for (const Arm& arm : arms) {
    std::vector<double> tputs;
    std::string aborts;
    for (std::uint64_t hot : hot_sets) {
      workload::KvConfig kv;
      kv.num_records = KvRecords();
      kv.row_bytes = KvRowBytes();
      kv.hot_records = hot;
      kv.seed = 11;
      workload::KvWorkload wl(kv);
      engine::EngineOptions eo = BenchOptions(kCores);
      eo.backoff = arm.policy;
      engine::TwoPlEngine eng(eo, engine::DeadlockPolicyKind::kWaitDie);
      RunResult r = RunPoint(&eng, &wl, kCores, 1);
      tputs.push_back(r.Throughput());
      char buf[32];
      std::snprintf(buf, sizeof(buf), " %.1f%%", 100.0 * r.AbortRate());
      aborts += buf;
    }
    PrintRow(arm.label, tputs);
    PrintNote("  abort rate:" + aborts);
  }
  return 0;
}
