// Ablation: the execution-thread in-flight window (Section 3.3's
// asynchrony). With window 1 an execution thread blocks on every lock
// grant, wasting its core during queueing delays; wider windows overlap
// those delays with other transactions' work — at the price of holding more
// locks concurrently (which can hurt under extreme contention).
#include <vector>

#include "bench/common/bench_harness.h"

int main() {
  using namespace orthrus;
  using namespace orthrus::bench;

  const int kCores = 80;
  const int kCc = 16;
  const std::vector<int> windows = {1, 2, 4, 8, 16, 32};
  std::vector<std::string> xs;
  for (int w : windows) xs.push_back(std::to_string(w));
  PrintHeader("Ablation: exec-thread in-flight window, 80 cores",
              "tput (M/s) @window", xs);

  for (bool contended : {false, true}) {
    std::vector<double> tputs;
    for (int window : windows) {
      workload::KvConfig kv;
      kv.num_records = KvRecords();
      kv.row_bytes = KvRowBytes();
      kv.num_partitions = kCc;
      kv.hot_records = contended ? 64 : 0;
      kv.seed = 44;
      workload::KvWorkload wl(kv);
      engine::OrthrusOptions oo;
      oo.num_cc = kCc;
      oo.max_inflight = window;
      engine::OrthrusEngine eng(BenchOptions(kCores), oo);
      tputs.push_back(RunPoint(&eng, &wl, kCores, 1).Throughput());
    }
    PrintRow(contended ? "high contention" : "uniform", tputs);
  }
  return 0;
}
