// Figure 5: ORTHRUS execution-thread scalability under fixed concurrency-
// control thread counts. Uniform 10-RMW transactions; every transaction
// acquires its locks from a single CC thread.
//
// Expected shape: each curve rises while execution threads are the
// bottleneck, then plateaus once the fixed CC threads saturate; the plateau
// height is ordered by the number of CC threads.
#include <vector>

#include "bench/common/bench_harness.h"

int main() {
  using namespace orthrus;
  using namespace orthrus::bench;

  const std::vector<int> exec_counts = {4, 8, 16, 24, 32, 48, 64};
  std::vector<std::string> xs;
  for (int e : exec_counts) xs.push_back(std::to_string(e));
  PrintHeader("Figure 5: ORTHRUS thread allocation (uniform 10RMW)",
              "tput (M/s) @exec", xs);

  for (int n_cc : {4, 8, 16}) {
    std::vector<double> tputs;
    for (int n_exec : exec_counts) {
      workload::KvConfig kv;
      kv.num_records = KvRecords();
      kv.row_bytes = KvRowBytes();
      kv.num_partitions = n_cc;
      kv.placement = workload::KvConfig::Placement::kFixedCount;
      kv.partitions_per_txn = 1;  // single CC thread per transaction
      kv.seed = 5;
      workload::KvWorkload wl(kv);

      engine::OrthrusOptions oo;
      oo.num_cc = n_cc;
      engine::OrthrusEngine eng(BenchOptions(n_cc + n_exec), oo);
      RunResult r = RunPoint(&eng, &wl, n_cc + n_exec, 1);
      tputs.push_back(r.Throughput());
    }
    PrintRow(std::to_string(n_cc) + " cc threads", tputs);
  }
  return 0;
}
