// Integration tests: every engine runs real workloads on both platforms and
// must preserve serializability invariants (no lost updates, consistent
// TPC-C aggregates), terminate cleanly, and report sane statistics.
#include <cstdlib>
#include <memory>

#include <gtest/gtest.h>

#include "engine/deadlockfree/deadlockfree_engine.h"
#include "engine/orthrus/orthrus_engine.h"
#include "engine/partitioned/partitioned_engine.h"
#include "engine/sharedcc/sharedcc_engine.h"
#include "engine/twopl/twopl_engine.h"
#include "hal/native_platform.h"
#include "hal/sim_platform.h"
#include "workload/micro.h"
#include "workload/tpcc/tpcc_workload.h"

namespace orthrus {
namespace {

using engine::DeadlockFreeEngine;
using engine::DeadlockPolicyKind;
using engine::EngineOptions;
using engine::OrthrusEngine;
using engine::OrthrusOptions;
using engine::PartitionedEngine;
using engine::TwoPlEngine;
using workload::KvConfig;
using workload::KvWorkload;

std::unique_ptr<hal::Platform> MakePlatform(bool simulated, int cores) {
  if (simulated) {
    hal::SimConfig config;
    // CI race arm: ORTHRUS_RACE_DETECT=1 reruns the whole suite with
    // happens-before checking on and abort-on-first-race. Detection is
    // zero-perturbation, so every assertion below must still hold.
    if (std::getenv("ORTHRUS_RACE_DETECT") != nullptr) {
      config.race_detect = true;
      config.race_report_fatal = true;
    }
    return std::make_unique<hal::SimPlatform>(cores, config);
  }
  return std::make_unique<hal::NativePlatform>(cores);
}

EngineOptions SmallRun(int cores) {
  EngineOptions o;
  o.num_cores = cores;
  o.duration_seconds = 0.05;    // generous deadline; the txn cap binds first
  o.max_txns_per_worker = 150;
  o.lock_buckets = 1 << 12;
  return o;
}

KvConfig SmallKv(int partitions) {
  KvConfig c;
  c.num_records = 5000;
  c.row_bytes = 64;
  c.ops_per_txn = 10;
  c.num_partitions = partitions;
  return c;
}

// Runs the engine on a fresh database and checks the RMW counter invariant:
// every committed transaction bumped exactly ops_per_txn distinct row
// counters, and aborted attempts left no trace.
void RunKvAndCheck(engine::Engine* eng, KvWorkload* wl, bool simulated,
                   int cores, int table_partitions,
                   std::uint64_t* committed_out = nullptr) {
  storage::Database db;
  wl->Load(&db, table_partitions);
  auto platform = MakePlatform(simulated, cores);
  RunResult result = eng->Run(platform.get(), &db, *wl);
  EXPECT_GT(result.total.committed, 0u) << eng->name();
  if (!wl->config().read_only) {
    EXPECT_EQ(wl->SumCounters(db),
              result.total.committed * wl->config().ops_per_txn)
        << "lost or phantom updates in " << eng->name();
  }
  EXPECT_GT(result.elapsed_seconds, 0.0);
  if (committed_out != nullptr) *committed_out = result.total.committed;
}

struct PlatformCase {
  bool simulated;
  const char* name;
};

class EnginesOnPlatform : public ::testing::TestWithParam<PlatformCase> {};

INSTANTIATE_TEST_SUITE_P(
    Platforms, EnginesOnPlatform,
    ::testing::Values(PlatformCase{true, "sim"}, PlatformCase{false, "native"}),
    [](const ::testing::TestParamInfo<PlatformCase>& info) {
      return info.param.name;
    });

// ----------------------------------------------------------------- 2PL

TEST_P(EnginesOnPlatform, TwoPlWaitDieLowContention) {
  KvWorkload wl(SmallKv(1));
  TwoPlEngine eng(SmallRun(4), DeadlockPolicyKind::kWaitDie);
  RunKvAndCheck(&eng, &wl, GetParam().simulated, 4, 1);
}

TEST_P(EnginesOnPlatform, TwoPlWaitDieHighContention) {
  KvConfig c = SmallKv(1);
  c.hot_records = 16;  // heavy conflicts: aborts and restarts exercised
  KvWorkload wl(c);
  TwoPlEngine eng(SmallRun(4), DeadlockPolicyKind::kWaitDie);
  RunKvAndCheck(&eng, &wl, GetParam().simulated, 4, 1);
}

TEST_P(EnginesOnPlatform, TwoPlWaitForGraphHighContention) {
  KvConfig c = SmallKv(1);
  c.hot_records = 16;
  KvWorkload wl(c);
  TwoPlEngine eng(SmallRun(4), DeadlockPolicyKind::kWaitForGraph);
  RunKvAndCheck(&eng, &wl, GetParam().simulated, 4, 1);
}

TEST_P(EnginesOnPlatform, TwoPlDreadlocksHighContention) {
  KvConfig c = SmallKv(1);
  c.hot_records = 16;
  KvWorkload wl(c);
  TwoPlEngine eng(SmallRun(4), DeadlockPolicyKind::kDreadlocks);
  RunKvAndCheck(&eng, &wl, GetParam().simulated, 4, 1);
}

TEST_P(EnginesOnPlatform, TwoPlReadOnlyNeverAborts) {
  KvConfig c = SmallKv(1);
  c.read_only = true;
  c.hot_records = 16;
  KvWorkload wl(c);
  TwoPlEngine eng(SmallRun(4), DeadlockPolicyKind::kDreadlocks);
  storage::Database db;
  wl.Load(&db, 1);
  auto platform = MakePlatform(GetParam().simulated, 4);
  RunResult r = eng.Run(platform.get(), &db, wl);
  EXPECT_GT(r.total.committed, 0u);
  EXPECT_EQ(r.total.aborted, 0u);  // readers never conflict
  EXPECT_EQ(r.total.deadlocks, 0u);
}

// -------------------------------------------------------- deadlock-free

TEST_P(EnginesOnPlatform, DeadlockFreeNeverAborts) {
  KvConfig c = SmallKv(1);
  c.hot_records = 8;  // extreme contention, still zero aborts
  KvWorkload wl(c);
  DeadlockFreeEngine eng(SmallRun(4));
  storage::Database db;
  wl.Load(&db, 1);
  auto platform = MakePlatform(GetParam().simulated, 4);
  RunResult r = eng.Run(platform.get(), &db, wl);
  EXPECT_GT(r.total.committed, 0u);
  EXPECT_EQ(r.total.aborted, 0u);
  EXPECT_EQ(r.total.deadlocks, 0u);
  EXPECT_EQ(wl.SumCounters(db), r.total.committed * 10);
}

TEST_P(EnginesOnPlatform, DeadlockFreeSplitIndex) {
  KvConfig c = SmallKv(4);
  c.placement = KvConfig::Placement::kFixedCount;
  c.partitions_per_txn = 2;
  KvWorkload wl(c);
  DeadlockFreeEngine eng(SmallRun(4), /*split_index=*/true);
  RunKvAndCheck(&eng, &wl, GetParam().simulated, 4, /*table_partitions=*/4);
}

// ---------------------------------------------------- partitioned-store

TEST_P(EnginesOnPlatform, PartitionedStoreSinglePartition) {
  KvConfig c = SmallKv(4);
  c.placement = KvConfig::Placement::kFixedCount;
  c.partitions_per_txn = 1;
  c.local_affinity = true;
  KvWorkload wl(c);
  PartitionedEngine eng(SmallRun(4));
  RunKvAndCheck(&eng, &wl, GetParam().simulated, 4, 4);
}

TEST_P(EnginesOnPlatform, PartitionedStoreMultiPartition) {
  KvConfig c = SmallKv(4);
  c.placement = KvConfig::Placement::kFixedCount;
  c.partitions_per_txn = 3;
  c.local_affinity = true;
  KvWorkload wl(c);
  PartitionedEngine eng(SmallRun(4));
  RunKvAndCheck(&eng, &wl, GetParam().simulated, 4, 4);
}

TEST_P(EnginesOnPlatform, PartitionedStorePctMultiMix) {
  KvConfig c = SmallKv(4);
  c.placement = KvConfig::Placement::kPctMulti;
  c.pct_multi = 30;
  c.local_affinity = true;
  KvWorkload wl(c);
  PartitionedEngine eng(SmallRun(4));
  RunKvAndCheck(&eng, &wl, GetParam().simulated, 4, 4);
}

// ------------------------------------------------- shared-CC everywhere

TEST_P(EnginesOnPlatform, SharedCcEverywhereConserves) {
  KvConfig c = SmallKv(4);
  c.placement = KvConfig::Placement::kFixedCount;
  c.partitions_per_txn = 3;  // every txn crosses partition-shard latches
  KvWorkload wl(c);
  engine::SharedCcEngine eng(SmallRun(4));
  RunKvAndCheck(&eng, &wl, GetParam().simulated, 4, 1);
}

TEST_P(EnginesOnPlatform, SharedCcEverywhereNeverAborts) {
  KvConfig c = SmallKv(2);
  c.hot_records = 8;  // extreme conflicts: FIFO waits, never deadlocks
  KvWorkload wl(c);
  engine::SharedCcEngine eng(SmallRun(4));
  storage::Database db;
  wl.Load(&db, 1);
  auto platform = MakePlatform(GetParam().simulated, 4);
  RunResult r = eng.Run(platform.get(), &db, wl);
  EXPECT_GT(r.total.committed, 0u);
  EXPECT_EQ(r.total.aborted, 0u);  // ordered acquisition
  EXPECT_EQ(r.total.deadlocks, 0u);
  EXPECT_EQ(wl.SumCounters(db), r.total.committed * 10);
}

// ---------------------------------------------------------------- ORTHRUS

TEST_P(EnginesOnPlatform, OrthrusSinglePartitionTxns) {
  KvConfig c = SmallKv(2);
  c.placement = KvConfig::Placement::kFixedCount;
  c.partitions_per_txn = 1;
  KvWorkload wl(c);
  OrthrusOptions oo;
  oo.num_cc = 2;
  OrthrusEngine eng(SmallRun(6), oo);  // 2 CC + 4 exec
  RunKvAndCheck(&eng, &wl, GetParam().simulated, 6, 1);
}

TEST_P(EnginesOnPlatform, OrthrusMultiPartitionChain) {
  KvConfig c = SmallKv(3);
  c.placement = KvConfig::Placement::kFixedCount;
  c.partitions_per_txn = 3;  // every txn chains across all three CC threads
  KvWorkload wl(c);
  OrthrusOptions oo;
  oo.num_cc = 3;
  OrthrusEngine eng(SmallRun(7), oo);
  RunKvAndCheck(&eng, &wl, GetParam().simulated, 7, 1);
}

TEST_P(EnginesOnPlatform, OrthrusHighContention) {
  KvConfig c = SmallKv(2);
  c.hot_records = 16;
  c.placement = KvConfig::Placement::kUniform;
  KvWorkload wl(c);
  OrthrusOptions oo;
  oo.num_cc = 2;
  OrthrusEngine eng(SmallRun(6), oo);
  RunKvAndCheck(&eng, &wl, GetParam().simulated, 6, 1);
}

TEST_P(EnginesOnPlatform, OrthrusNoForwardingEquivalentResults) {
  KvConfig c = SmallKv(2);
  c.placement = KvConfig::Placement::kFixedCount;
  c.partitions_per_txn = 2;
  KvWorkload wl(c);
  OrthrusOptions oo;
  oo.num_cc = 2;
  oo.forwarding = false;  // exec-mediated hops (2*Ncc messages)
  OrthrusEngine eng(SmallRun(6), oo);
  RunKvAndCheck(&eng, &wl, GetParam().simulated, 6, 1);
}

TEST_P(EnginesOnPlatform, OrthrusSplitIndex) {
  KvConfig c = SmallKv(2);
  c.placement = KvConfig::Placement::kFixedCount;
  c.partitions_per_txn = 1;
  KvWorkload wl(c);
  OrthrusOptions oo;
  oo.num_cc = 2;
  oo.split_index = true;
  OrthrusEngine eng(SmallRun(6), oo);
  RunKvAndCheck(&eng, &wl, GetParam().simulated, 6, /*table_partitions=*/2);
}

TEST_P(EnginesOnPlatform, OrthrusNeverAbortsOnStaticAccessSets) {
  KvConfig c = SmallKv(2);
  c.hot_records = 8;
  KvWorkload wl(c);
  OrthrusOptions oo;
  oo.num_cc = 2;
  OrthrusEngine eng(SmallRun(6), oo);
  storage::Database db;
  wl.Load(&db, 1);
  auto platform = MakePlatform(GetParam().simulated, 6);
  RunResult r = eng.Run(platform.get(), &db, wl);
  EXPECT_GT(r.total.committed, 0u);
  EXPECT_EQ(r.total.aborted, 0u);
  EXPECT_EQ(r.total.ollp_aborts, 0u);
}

// ------------------------------------------------------------------ TPC-C

workload::tpcc::TpccScale SmallTpcc(int warehouses) {
  workload::tpcc::TpccScale s;
  s.warehouses = warehouses;
  s.customers_per_district = 60;
  s.items = 200;
  s.order_ring_capacity = 8192;
  return s;
}

void CheckTpccInvariants(const workload::tpcc::TpccWorkload& wl,
                         const storage::Database& db,
                         const RunResult& result) {
  const auto tally = wl.aux()->tallies.Sum();
  EXPECT_EQ(tally.neworders + tally.payments + tally.order_statuses +
                tally.deliveries + tally.stock_levels,
            result.total.committed);
  EXPECT_EQ(wl.TotalWarehouseYtd(db), tally.payment_cents);
  EXPECT_EQ(wl.TotalOrdersPlaced(db), tally.neworders);
  EXPECT_EQ(wl.TotalStockYtd(db), tally.ordered_qty);
  EXPECT_EQ(wl.TotalOrdersDelivered(db), tally.orders_delivered);
  // Balances: deliveries credit order totals, payments debit amounts.
  EXPECT_EQ(wl.TotalCustomerBalance(db),
            static_cast<std::int64_t>(tally.delivered_cents) -
                static_cast<std::int64_t>(tally.payment_cents));
}

TEST_P(EnginesOnPlatform, TpccTwoPlDreadlocks) {
  workload::tpcc::TpccWorkload wl(SmallTpcc(4));
  storage::Database db;
  wl.Load(&db, 1);
  TwoPlEngine eng(SmallRun(4), DeadlockPolicyKind::kDreadlocks);
  auto platform = MakePlatform(GetParam().simulated, 4);
  RunResult r = eng.Run(platform.get(), &db, wl);
  EXPECT_GT(r.total.committed, 0u);
  CheckTpccInvariants(wl, db, r);
}

TEST_P(EnginesOnPlatform, TpccDeadlockFree) {
  workload::tpcc::TpccWorkload wl(SmallTpcc(4));
  storage::Database db;
  wl.Load(&db, 1);
  DeadlockFreeEngine eng(SmallRun(4));
  auto platform = MakePlatform(GetParam().simulated, 4);
  RunResult r = eng.Run(platform.get(), &db, wl);
  EXPECT_GT(r.total.committed, 0u);
  EXPECT_EQ(r.total.deadlocks, 0u);
  CheckTpccInvariants(wl, db, r);
}

TEST_P(EnginesOnPlatform, TpccOrthrus) {
  workload::tpcc::TpccWorkload wl(SmallTpcc(4));
  storage::Database db;
  wl.Load(&db, 1);
  db.partitioner().n = 2;  // 2 CC threads own the 4 warehouses
  OrthrusOptions oo;
  oo.num_cc = 2;
  OrthrusEngine eng(SmallRun(6), oo);
  auto platform = MakePlatform(GetParam().simulated, 6);
  RunResult r = eng.Run(platform.get(), &db, wl);
  EXPECT_GT(r.total.committed, 0u);
  CheckTpccInvariants(wl, db, r);
}

TEST_P(EnginesOnPlatform, TpccSharedCcEverywhere) {
  workload::tpcc::TpccWorkload wl(SmallTpcc(4));
  storage::Database db;
  wl.Load(&db, 1);
  db.partitioner().n = 2;  // two partition shards over four warehouses
  engine::SharedCcEngine eng(SmallRun(4));
  auto platform = MakePlatform(GetParam().simulated, 4);
  RunResult r = eng.Run(platform.get(), &db, wl);
  EXPECT_GT(r.total.committed, 0u);
  EXPECT_EQ(r.total.deadlocks, 0u);
  CheckTpccInvariants(wl, db, r);
}

TEST_P(EnginesOnPlatform, TpccWaitDieSingleWarehouseExtremeContention) {
  workload::tpcc::TpccWorkload wl(SmallTpcc(1));
  storage::Database db;
  wl.Load(&db, 1);
  TwoPlEngine eng(SmallRun(4), DeadlockPolicyKind::kWaitDie);
  auto platform = MakePlatform(GetParam().simulated, 4);
  RunResult r = eng.Run(platform.get(), &db, wl);
  EXPECT_GT(r.total.committed, 0u);
  CheckTpccInvariants(wl, db, r);
}

TEST_P(EnginesOnPlatform, TpccFullMixDeadlockFree) {
  workload::tpcc::TpccScale s = SmallTpcc(4);
  s.mix = workload::tpcc::FullTpccMix();
  workload::tpcc::TpccWorkload wl(s);
  storage::Database db;
  wl.Load(&db, 1);
  DeadlockFreeEngine eng(SmallRun(4));
  auto platform = MakePlatform(GetParam().simulated, 4);
  RunResult r = eng.Run(platform.get(), &db, wl);
  EXPECT_GT(r.total.committed, 0u);
  CheckTpccInvariants(wl, db, r);
  // Delivery's cursor-estimate can go stale under concurrency; any such
  // abort must have been replanned, never silently dropped into the
  // tallies (the invariants above already prove that).
}

TEST_P(EnginesOnPlatform, TpccFullMixOrthrus) {
  workload::tpcc::TpccScale s = SmallTpcc(4);
  s.mix = workload::tpcc::FullTpccMix();
  workload::tpcc::TpccWorkload wl(s);
  storage::Database db;
  wl.Load(&db, 1);
  db.partitioner().n = 2;
  OrthrusOptions oo;
  oo.num_cc = 2;
  OrthrusEngine eng(SmallRun(6), oo);
  auto platform = MakePlatform(GetParam().simulated, 6);
  RunResult r = eng.Run(platform.get(), &db, wl);
  EXPECT_GT(r.total.committed, 0u);
  CheckTpccInvariants(wl, db, r);
}

TEST_P(EnginesOnPlatform, TpccFullMixWaitDieSingleWarehouse) {
  workload::tpcc::TpccScale s = SmallTpcc(1);
  s.mix = workload::tpcc::FullTpccMix();
  workload::tpcc::TpccWorkload wl(s);
  storage::Database db;
  wl.Load(&db, 1);
  TwoPlEngine eng(SmallRun(4), DeadlockPolicyKind::kWaitDie);
  auto platform = MakePlatform(GetParam().simulated, 4);
  RunResult r = eng.Run(platform.get(), &db, wl);
  EXPECT_GT(r.total.committed, 0u);
  CheckTpccInvariants(wl, db, r);
}

// ------------------------------------------------------- sim determinism

TEST(EngineDeterminism, SimRunsAreReproducible) {
  auto run = [] {
    KvConfig c = SmallKv(2);
    c.hot_records = 16;
    KvWorkload wl(c);
    storage::Database db;
    wl.Load(&db, 1);
    OrthrusOptions oo;
    oo.num_cc = 2;
    OrthrusEngine eng(SmallRun(6), oo);
    hal::SimPlatform sim(6);
    RunResult r = eng.Run(&sim, &db, wl);
    return std::make_pair(r.total.committed, sim.GlobalClock());
  };
  auto a = run();
  auto b = run();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

}  // namespace
}  // namespace orthrus
