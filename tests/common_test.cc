// Unit tests for common utilities: RNG, Zipfian, NURand, bitset, histogram,
// stats breakdown.
#include <cmath>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "common/bitset128.h"
#include "common/histogram.h"
#include "common/macros.h"
#include "common/rng.h"
#include "common/stats.h"

namespace orthrus {
namespace {

// ------------------------------------------------------------------ Rng

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 3);
}

TEST(Rng, ZeroSeedRemapped) {
  Rng z(0);
  EXPECT_NE(z.Next(), 0u);  // state must not be stuck at zero
}

TEST(Rng, NextU64RespectsBound) {
  Rng r(7);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 100ull, 1000000ull}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(r.NextU64(bound), bound);
  }
}

TEST(Rng, NextU64CoversRange) {
  Rng r(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(r.NextU64(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, NextInRangeInclusive) {
  Rng r(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v = r.NextInRange(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    saw_lo |= (v == 5);
    saw_hi |= (v == 8);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r(13);
  for (int i = 0; i < 10000; ++i) {
    const double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, PercentFrequency) {
  Rng r(17);
  int hits = 0;
  const int kN = 100000;
  for (int i = 0; i < kN; ++i) hits += r.Percent(30);
  EXPECT_NEAR(hits / static_cast<double>(kN), 0.30, 0.02);
}

TEST(Zipfian, SkewsTowardLowValues) {
  Rng r(19);
  ZipfianGenerator zipf(1000, 0.9);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 50000; ++i) counts[zipf.Next(&r)]++;
  // Rank 0 must be far hotter than rank 100.
  EXPECT_GT(counts[0], 20 * std::max(1, counts[100]));
}

TEST(Zipfian, RespectsDomain) {
  Rng r(23);
  ZipfianGenerator zipf(100, 0.5);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(zipf.Next(&r), 100u);
}

TEST(Zipfian, ThetaZeroIsRoughlyUniform) {
  Rng r(29);
  ZipfianGenerator zipf(10, 0.0);
  std::map<std::uint64_t, int> counts;
  const int kN = 100000;
  for (int i = 0; i < kN; ++i) counts[zipf.Next(&r)]++;
  for (auto& [v, c] : counts) {
    EXPECT_NEAR(c / static_cast<double>(kN), 0.1, 0.03);
  }
}

TEST(NuRand, InRange) {
  Rng r(31);
  for (int i = 0; i < 10000; ++i) {
    const std::uint32_t v = NuRand(&r, 255, 10, 50, 7);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 50u);
  }
}

// ------------------------------------------------------------- Bitset128

TEST(Bitset128, SetTestClear) {
  Bitset128 b;
  EXPECT_TRUE(b.Empty());
  for (int bit : {0, 1, 63, 64, 65, 127}) {
    b.Set(bit);
    EXPECT_TRUE(b.Test(bit));
  }
  EXPECT_EQ(b.Count(), 6);
  b.Clear(64);
  EXPECT_FALSE(b.Test(64));
  EXPECT_EQ(b.Count(), 5);
}

TEST(Bitset128, UnionMerges) {
  Bitset128 a = Bitset128::Single(3);
  Bitset128 b = Bitset128::Single(100);
  a.Union(b);
  EXPECT_TRUE(a.Test(3));
  EXPECT_TRUE(a.Test(100));
  EXPECT_EQ(a.Count(), 2);
}

TEST(Bitset128, AnyOtherThan) {
  Bitset128 b = Bitset128::Single(5);
  EXPECT_FALSE(b.AnyOtherThan(5));
  b.Set(77);
  EXPECT_TRUE(b.AnyOtherThan(5));
  EXPECT_TRUE(b.AnyOtherThan(77));
}

TEST(Bitset128, EqualityAndReset) {
  Bitset128 a = Bitset128::Single(9);
  Bitset128 b = Bitset128::Single(9);
  EXPECT_TRUE(a == b);
  a.Reset();
  EXPECT_TRUE(a.Empty());
  EXPECT_FALSE(a == b);
}

// ------------------------------------------------------------- Histogram

TEST(Histogram, CountSumMinMax) {
  Histogram h;
  for (std::uint64_t v : {5ull, 10ull, 1000ull}) h.Record(v);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 1015u);
  EXPECT_EQ(h.min(), 5u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_NEAR(h.Mean(), 1015.0 / 3, 1e-9);
}

TEST(Histogram, PercentileApproximation) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Record(i);
  // Log-bucketed: allow 25% relative error.
  EXPECT_NEAR(h.Percentile(0.5), 500, 130);
  EXPECT_NEAR(h.Percentile(0.99), 990, 260);
  EXPECT_EQ(h.Percentile(1.0), 1000u);
}

TEST(Histogram, MergeCombines) {
  Histogram a, b;
  a.Record(10);
  b.Record(20);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.sum(), 30u);
  EXPECT_EQ(a.max(), 20u);
}

TEST(Histogram, ResetClears) {
  Histogram h;
  h.Record(42);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(0.5), 0u);
}

TEST(Histogram, ZeroAndHugeValues) {
  Histogram h;
  h.Record(0);
  h.Record(~0ull);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), ~0ull);
}

// ----------------------------------------------------------------- Stats

TEST(WorkerStats, MergeAddsEverything) {
  WorkerStats a, b;
  a.committed = 3;
  a.Add(TimeCategory::kExecution, 100);
  b.committed = 4;
  b.aborted = 2;
  b.Add(TimeCategory::kWaiting, 50);
  a.Merge(b);
  EXPECT_EQ(a.committed, 7u);
  EXPECT_EQ(a.aborted, 2u);
  EXPECT_EQ(a.Get(TimeCategory::kExecution), 100u);
  EXPECT_EQ(a.Get(TimeCategory::kWaiting), 50u);
}

TEST(RunResult, ThroughputAndFractions) {
  RunResult r;
  r.total.committed = 1000;
  r.elapsed_seconds = 0.5;
  r.total.Add(TimeCategory::kExecution, 25);
  r.total.Add(TimeCategory::kLocking, 25);
  r.total.Add(TimeCategory::kWaiting, 50);
  EXPECT_DOUBLE_EQ(r.Throughput(), 2000.0);
  EXPECT_DOUBLE_EQ(r.TimeFraction(TimeCategory::kWaiting), 0.5);
  EXPECT_DOUBLE_EQ(r.TimeFraction(TimeCategory::kExecution), 0.25);
}

TEST(RunResult, AbortRate) {
  RunResult r;
  r.total.committed = 75;
  r.total.aborted = 25;
  EXPECT_DOUBLE_EQ(r.AbortRate(), 0.25);
}

// ----------------------------------------------------------------- Macros

TEST(Macros, PowerOfTwoHelpers) {
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(64));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_FALSE(IsPowerOfTwo(65));
  EXPECT_EQ(NextPowerOfTwo(1), 1u);
  EXPECT_EQ(NextPowerOfTwo(3), 4u);
  EXPECT_EQ(NextPowerOfTwo(64), 64u);
  EXPECT_EQ(NextPowerOfTwo(65), 128u);
}

}  // namespace
}  // namespace orthrus
