// Tests for the transaction layer: access sets, parameter storage, row
// lookup by identity, OLLP planning and replan bookkeeping.
#include <gtest/gtest.h>

#include "txn/ollp.h"
#include "txn/txn.h"

namespace orthrus::txn {
namespace {

struct FakeParams {
  int n = 0;
  std::uint64_t keys[4];
};

// Logic whose access set can be made data-dependent for OLLP tests.
class FakeLogic : public TxnLogic {
 public:
  void BuildAccessSet(Txn* t, storage::Database* /*db*/) override {
    build_calls++;
    const FakeParams* p = t->Params<FakeParams>();
    for (int i = 0; i < p->n; ++i) {
      t->accesses.push_back(
          {0, LockMode::kExclusive, p->keys[i] + key_shift, nullptr});
    }
  }
  bool NeedsReconnaissance() const override { return true; }
  bool Run(Txn* /*t*/, const ExecContext& /*ctx*/) override { return run_ok; }

  int build_calls = 0;
  std::uint64_t key_shift = 0;  // simulates a moving data-dependent target
  bool run_ok = true;
};

TEST(Txn, ParamsRoundTrip) {
  Txn t;
  FakeParams* p = t.Params<FakeParams>();
  p->n = 2;
  p->keys[0] = 11;
  p->keys[1] = 22;
  const FakeParams* q = static_cast<const Txn&>(t).Params<FakeParams>();
  EXPECT_EQ(q->keys[1], 22u);
}

TEST(Txn, RowForFindsByIdentity) {
  Txn t;
  int a = 0, b = 0;
  t.accesses.push_back({1, LockMode::kShared, 100, &a});
  t.accesses.push_back({2, LockMode::kExclusive, 100, &b});
  EXPECT_EQ(t.RowFor(1, 100), &a);
  EXPECT_EQ(t.RowFor(2, 100), &b);
  EXPECT_EQ(t.RowFor(3, 100), nullptr);
}

TEST(Txn, ResetClearsState) {
  Txn t;
  t.accesses.push_back({1, LockMode::kShared, 1, nullptr});
  t.timestamp = 5;
  t.restarts = 3;
  t.ResetForReuse();
  EXPECT_TRUE(t.accesses.empty());
  EXPECT_EQ(t.timestamp, 0u);
  EXPECT_EQ(t.restarts, 0u);
}

TEST(AccessKeyOrder, SortsByTableThenKey) {
  std::vector<Access> v = {
      {2, LockMode::kShared, 1, nullptr},
      {1, LockMode::kShared, 9, nullptr},
      {1, LockMode::kShared, 3, nullptr},
  };
  std::sort(v.begin(), v.end(), AccessKeyOrder());
  EXPECT_EQ(v[0].table, 1u);
  EXPECT_EQ(v[0].key, 3u);
  EXPECT_EQ(v[1].key, 9u);
  EXPECT_EQ(v[2].table, 2u);
}

TEST(LockModeConflicts, CompatibilityMatrix) {
  EXPECT_FALSE(Conflicts(LockMode::kShared, LockMode::kShared));
  EXPECT_TRUE(Conflicts(LockMode::kShared, LockMode::kExclusive));
  EXPECT_TRUE(Conflicts(LockMode::kExclusive, LockMode::kShared));
  EXPECT_TRUE(Conflicts(LockMode::kExclusive, LockMode::kExclusive));
}

TEST(Ollp, PlanBuildsAccessSet) {
  Txn t;
  FakeLogic logic;
  FakeParams* p = t.Params<FakeParams>();
  p->n = 2;
  p->keys[0] = 5;
  p->keys[1] = 6;
  t.logic = &logic;
  storage::Database db;
  OllpPlan(&t, &db);
  EXPECT_EQ(t.accesses.size(), 2u);
  EXPECT_EQ(logic.build_calls, 1);
}

TEST(Ollp, PlanClearsPreviousAccesses) {
  Txn t;
  FakeLogic logic;
  t.Params<FakeParams>()->n = 1;
  t.Params<FakeParams>()->keys[0] = 5;
  t.logic = &logic;
  storage::Database db;
  OllpPlan(&t, &db);
  OllpPlan(&t, &db);  // replanning must not duplicate entries
  EXPECT_EQ(t.accesses.size(), 1u);
}

TEST(Ollp, ReplanPicksUpMovedEstimate) {
  Txn t;
  FakeLogic logic;
  t.Params<FakeParams>()->n = 1;
  t.Params<FakeParams>()->keys[0] = 10;
  t.logic = &logic;
  storage::Database db;
  WorkerStats stats;
  OllpPlan(&t, &db);
  EXPECT_EQ(t.accesses[0].key, 10u);
  logic.key_shift = 7;  // the data-dependent target moved
  EXPECT_TRUE(OllpReplanAfterMismatch(&t, &db, &stats));
  EXPECT_EQ(t.accesses[0].key, 17u);
  EXPECT_EQ(stats.ollp_aborts, 1u);
  EXPECT_EQ(t.restarts, 1u);
}

TEST(Ollp, RetryBudgetExhausts) {
  Txn t;
  FakeLogic logic;
  t.Params<FakeParams>()->n = 1;
  t.Params<FakeParams>()->keys[0] = 1;
  t.logic = &logic;
  storage::Database db;
  WorkerStats stats;
  OllpPlan(&t, &db);
  bool allowed = true;
  for (std::uint32_t i = 0; i <= kMaxOllpRetries + 1 && allowed; ++i) {
    allowed = OllpReplanAfterMismatch(&t, &db, &stats);
  }
  EXPECT_FALSE(allowed);
  EXPECT_GT(stats.ollp_aborts, kMaxOllpRetries);
}

TEST(TxnLogic, DefaultOpCostUsesTableCosts) {
  storage::Database db;
  db.CreateTable(0, "t", 10, 256);
  Txn t;
  FakeLogic logic;
  t.accesses.push_back({0, LockMode::kShared, 1, nullptr});
  const hal::Cycles cost = logic.OpCost(&t, 0, &db);
  const storage::Table* table = db.GetTable(0);
  EXPECT_EQ(cost,
            table->RowAccessCost() + table->cost_model().op_compute_cycles);
}

}  // namespace
}  // namespace orthrus::txn
