// Tests for the workload generators: key distribution guarantees of the KV
// generator (distinctness, hot/cold split, partition targeting), YCSB spec
// materialization, TPC-C generation rules and loader integrity.
#include <set>

#include <gtest/gtest.h>

#include "txn/ollp.h"
#include "workload/micro.h"
#include "workload/tpcc/tpcc_workload.h"
#include "workload/ycsb.h"

namespace orthrus::workload {
namespace {

KvConfig BaseKv() {
  KvConfig c;
  c.num_records = 10000;
  c.ops_per_txn = 10;
  return c;
}

TEST(KvWorkload, KeysAreDistinctWithinTxn) {
  KvWorkload wl(BaseKv());
  auto src = wl.MakeSource(0);
  txn::Txn t;
  storage::Database db;
  wl.Load(&db, 1);
  for (int i = 0; i < 200; ++i) {
    src->Next(&t);
    txn::OllpPlan(&t, &db);
    std::set<std::uint64_t> keys;
    for (const auto& a : t.accesses) keys.insert(a.key);
    EXPECT_EQ(keys.size(), t.accesses.size());
  }
}

TEST(KvWorkload, HotColdSplitRespected) {
  KvConfig c = BaseKv();
  c.hot_records = 64;
  c.hot_ops = 2;
  KvWorkload wl(c);
  storage::Database db;
  wl.Load(&db, 1);
  auto src = wl.MakeSource(1);
  txn::Txn t;
  for (int i = 0; i < 200; ++i) {
    src->Next(&t);
    txn::OllpPlan(&t, &db);
    ASSERT_EQ(t.accesses.size(), 10u);
    // First two accesses hot (locked first, as in the paper), rest cold.
    EXPECT_LT(t.accesses[0].key, 64u);
    EXPECT_LT(t.accesses[1].key, 64u);
    for (int j = 2; j < 10; ++j) EXPECT_GE(t.accesses[j].key, 64u);
  }
}

TEST(KvWorkload, FixedCountPlacementTouchesExactlyKPartitions) {
  for (int k : {1, 2, 4}) {
    KvConfig c = BaseKv();
    c.num_partitions = 8;
    c.placement = KvConfig::Placement::kFixedCount;
    c.partitions_per_txn = k;
    KvWorkload wl(c);
    storage::Database db;
    wl.Load(&db, 1);
    auto src = wl.MakeSource(2);
    txn::Txn t;
    for (int i = 0; i < 100; ++i) {
      src->Next(&t);
      txn::OllpPlan(&t, &db);
      std::set<int> parts;
      for (const auto& a : t.accesses) {
        parts.insert(static_cast<int>(a.key % 8));
      }
      EXPECT_EQ(parts.size(), static_cast<std::size_t>(k)) << "k=" << k;
    }
  }
}

TEST(KvWorkload, PctMultiPlacementFrequency) {
  KvConfig c = BaseKv();
  c.num_partitions = 8;
  c.placement = KvConfig::Placement::kPctMulti;
  c.pct_multi = 40;
  KvWorkload wl(c);
  storage::Database db;
  wl.Load(&db, 1);
  auto src = wl.MakeSource(3);
  txn::Txn t;
  int multi = 0;
  const int kN = 2000;
  for (int i = 0; i < kN; ++i) {
    src->Next(&t);
    txn::OllpPlan(&t, &db);
    std::set<int> parts;
    for (const auto& a : t.accesses) parts.insert(static_cast<int>(a.key % 8));
    EXPECT_LE(parts.size(), 2u);
    if (parts.size() == 2) multi++;
  }
  EXPECT_NEAR(multi / static_cast<double>(kN), 0.40, 0.05);
}

TEST(KvWorkload, LocalAffinityPinsHomePartition) {
  KvConfig c = BaseKv();
  c.num_partitions = 4;
  c.placement = KvConfig::Placement::kFixedCount;
  c.partitions_per_txn = 1;
  c.local_affinity = true;
  KvWorkload wl(c);
  storage::Database db;
  wl.Load(&db, 1);
  for (int worker = 0; worker < 4; ++worker) {
    auto src = wl.MakeSource(worker);
    txn::Txn t;
    for (int i = 0; i < 50; ++i) {
      src->Next(&t);
      txn::OllpPlan(&t, &db);
      for (const auto& a : t.accesses) {
        EXPECT_EQ(static_cast<int>(a.key % 4), worker);
      }
    }
  }
}

TEST(KvWorkload, HotKeysWithinPartitionPlacement) {
  KvConfig c = BaseKv();
  c.num_partitions = 8;
  c.placement = KvConfig::Placement::kFixedCount;
  c.partitions_per_txn = 1;
  c.hot_records = 64;  // 8 hot keys per partition
  KvWorkload wl(c);
  storage::Database db;
  wl.Load(&db, 1);
  auto src = wl.MakeSource(0);
  txn::Txn t;
  for (int i = 0; i < 100; ++i) {
    src->Next(&t);
    txn::OllpPlan(&t, &db);
    const int part = static_cast<int>(t.accesses[0].key % 8);
    EXPECT_LT(t.accesses[0].key, 64u);
    EXPECT_LT(t.accesses[1].key, 64u);
    for (const auto& a : t.accesses) {
      EXPECT_EQ(static_cast<int>(a.key % 8), part);
    }
  }
}

TEST(KvWorkload, ReadOnlyUsesSharedLocks) {
  KvConfig c = BaseKv();
  c.read_only = true;
  KvWorkload wl(c);
  storage::Database db;
  wl.Load(&db, 1);
  auto src = wl.MakeSource(0);
  txn::Txn t;
  src->Next(&t);
  txn::OllpPlan(&t, &db);
  for (const auto& a : t.accesses) {
    EXPECT_EQ(a.mode, txn::LockMode::kShared);
  }
}

TEST(KvWorkload, SourcesAreDeterministicPerWorker) {
  KvWorkload wl(BaseKv());
  storage::Database db;
  wl.Load(&db, 1);
  auto s1 = wl.MakeSource(5);
  auto s2 = wl.MakeSource(5);
  txn::Txn a, b;
  for (int i = 0; i < 20; ++i) {
    s1->Next(&a);
    s2->Next(&b);
    txn::OllpPlan(&a, &db);
    txn::OllpPlan(&b, &db);
    ASSERT_EQ(a.accesses.size(), b.accesses.size());
    for (std::size_t j = 0; j < a.accesses.size(); ++j) {
      EXPECT_EQ(a.accesses[j].key, b.accesses[j].key);
    }
  }
}

TEST(Ycsb, SpecMaterialization) {
  YcsbSpec spec;
  spec.contention = YcsbContention::kHigh;
  spec.op = YcsbOp::kReadOnly;
  spec.placement = YcsbPlacement::kDual;
  spec.num_partitions = 16;
  KvConfig c = MakeYcsbConfig(spec);
  EXPECT_TRUE(c.read_only);
  EXPECT_EQ(c.hot_records, 64u);
  EXPECT_EQ(c.placement, KvConfig::Placement::kFixedCount);
  EXPECT_EQ(c.partitions_per_txn, 2);
  EXPECT_EQ(c.num_partitions, 16);
  EXPECT_EQ(c.ops_per_txn, 10);
}

TEST(Ycsb, LowContentionHasNoHotSet) {
  YcsbSpec spec;
  spec.contention = YcsbContention::kLow;
  EXPECT_EQ(MakeYcsbConfig(spec).hot_records, 0u);
}

// ------------------------------------------------------------------ TPC-C

tpcc::TpccScale TinyScale() {
  tpcc::TpccScale s;
  s.warehouses = 3;
  s.customers_per_district = 30;
  s.items = 100;
  s.order_ring_capacity = 64;
  return s;
}

TEST(TpccLoader, TableSizes) {
  tpcc::TpccWorkload wl(TinyScale());
  storage::Database db;
  wl.Load(&db, 1);
  EXPECT_EQ(db.GetTable(tpcc::kWarehouse)->size(), 3u);
  EXPECT_EQ(db.GetTable(tpcc::kDistrict)->size(), 30u);
  EXPECT_EQ(db.GetTable(tpcc::kCustomer)->size(), 900u);
  EXPECT_EQ(db.GetTable(tpcc::kStock)->size(), 300u);
  EXPECT_EQ(db.GetTable(tpcc::kItem)->size(), 100u);
}

TEST(TpccLoader, SecondaryIndexCoversAllCustomers) {
  tpcc::TpccWorkload wl(TinyScale());
  storage::Database db;
  wl.Load(&db, 1);
  // Every (w, d, name_code) present must resolve to a customer key that
  // exists in the customer table.
  std::size_t found = 0;
  for (int w = 0; w < 3; ++w) {
    for (int d = 0; d < 10; ++d) {
      for (int code = 0; code < 30; ++code) {
        const std::uint64_t key = wl.aux()->customers_by_name.LookupMidpoint(
            tpcc::LastNameAttr(w, d, code));
        if (key == storage::SecondaryIndex::kNoMatch) continue;
        found++;
        EXPECT_NE(db.GetTable(tpcc::kCustomer)->LookupRaw(key), nullptr);
      }
    }
  }
  EXPECT_EQ(found, 3u * 10 * 30);  // code = c % 30 covers all codes
}

TEST(TpccGenerator, NewOrderParamsWellFormed) {
  tpcc::TpccWorkload wl(TinyScale());
  storage::Database db;
  wl.Load(&db, 1);
  auto src = wl.MakeSource(0);
  txn::Txn t;
  int neworders = 0;
  for (int i = 0; i < 400; ++i) {
    src->Next(&t);
    if (t.logic != nullptr && t.Params<tpcc::NewOrderParams>() != nullptr) {
      txn::OllpPlan(&t, &db);
      if (t.accesses.size() < 4) continue;  // Payment has 3 accesses
      neworders++;
      const auto* p = t.Params<tpcc::NewOrderParams>();
      EXPECT_GE(p->ol_cnt, 5);
      EXPECT_LE(p->ol_cnt, 15);
      std::set<std::int32_t> items;
      for (int j = 0; j < p->ol_cnt; ++j) {
        EXPECT_GE(p->quantity[j], 1);
        EXPECT_LE(p->quantity[j], 10);
        EXPECT_LT(p->item_id[j], 100);
        items.insert(p->item_id[j]);
      }
      EXPECT_EQ(items.size(), static_cast<std::size_t>(p->ol_cnt));
      EXPECT_EQ(t.accesses.size(), 3u + p->ol_cnt);
    }
  }
  EXPECT_GT(neworders, 100);  // ~50% of the mix
}

TEST(TpccGenerator, RemoteFractionsApproximatelyMatchSpec) {
  tpcc::TpccScale s = TinyScale();
  s.warehouses = 8;
  tpcc::TpccWorkload wl(s);
  storage::Database db;
  wl.Load(&db, 1);
  auto src = wl.MakeSource(1);
  txn::Txn t;
  int neworder_total = 0, neworder_remote = 0;
  int payment_total = 0, payment_remote = 0, payment_by_name = 0;
  for (int i = 0; i < 6000; ++i) {
    src->Next(&t);
    txn::OllpPlan(&t, &db);
    if (t.accesses.size() > 3) {
      const auto* p = t.Params<tpcc::NewOrderParams>();
      neworder_total++;
      bool remote = false;
      for (int j = 0; j < p->ol_cnt; ++j) remote |= (p->supply_w[j] != p->w);
      neworder_remote += remote;
    } else {
      const auto* p = t.Params<tpcc::PaymentParams>();
      payment_total++;
      payment_remote += (p->c_w != p->w);
      payment_by_name += p->by_last_name;
    }
  }
  EXPECT_NEAR(neworder_remote / double(neworder_total), 0.10, 0.03);
  EXPECT_NEAR(payment_remote / double(payment_total), 0.15, 0.03);
  EXPECT_NEAR(payment_by_name / double(payment_total), 0.60, 0.04);
}

TEST(TpccGenerator, PaymentAccessSetLocksCustomerExclusive) {
  tpcc::TpccWorkload wl(TinyScale());
  storage::Database db;
  wl.Load(&db, 1);
  auto src = wl.MakeSource(2);
  txn::Txn t;
  for (int i = 0; i < 200; ++i) {
    src->Next(&t);
    txn::OllpPlan(&t, &db);
    if (t.accesses.size() == 3) {  // Payment
      for (const auto& a : t.accesses) {
        EXPECT_EQ(a.mode, txn::LockMode::kExclusive);
      }
      const auto* p = t.Params<tpcc::PaymentParams>();
      EXPECT_NE(p->resolved_c_key, 0u);
    }
  }
}

TEST(TpccOllp, StaleEstimateDetectedAndReplanned) {
  tpcc::TpccWorkload wl(TinyScale());
  storage::Database db;
  wl.Load(&db, 1);
  auto payment = tpcc::MakePaymentLogic(wl.aux());

  txn::Txn t;
  t.logic = payment.get();
  auto* p = t.Params<tpcc::PaymentParams>();
  p->w = 0;
  p->d = 0;
  p->c_w = 0;
  p->c_d = 0;
  p->by_last_name = 1;
  p->name_code = 5;
  p->amount_cents = 100;
  txn::OllpPlan(&t, &db);
  const std::uint64_t first = p->resolved_c_key;

  // Force a stale estimate: the index now answers differently.
  const std::uint64_t moved = tpcc::CustomerKey(0, 0, 29);
  ASSERT_NE(moved, first);
  wl.aux()->customers_by_name.OverrideForTest(tpcc::LastNameAttr(0, 0, 5),
                                              {moved});

  // Resolve rows as an engine would, then Run: must refuse to execute.
  for (auto& a : t.accesses) {
    a.row = db.GetTable(a.table)->LookupRaw(a.key);
  }
  txn::ExecContext ec{&db, nullptr, /*charge_cycles=*/false};
  WorkerStats stats;
  ec.stats = &stats;
  EXPECT_FALSE(t.logic->Run(&t, ec));

  // Replan picks up the new target and then executes cleanly.
  EXPECT_TRUE(txn::OllpReplanAfterMismatch(&t, &db, &stats));
  EXPECT_EQ(p->resolved_c_key, moved);
  for (auto& a : t.accesses) {
    a.row = db.GetTable(a.table)->LookupRaw(a.key);
  }
  EXPECT_TRUE(t.logic->Run(&t, ec));
  EXPECT_EQ(stats.ollp_aborts, 1u);
}

TEST(TpccLogic, NewOrderUpdatesStockAndDistrict) {
  tpcc::TpccWorkload wl(TinyScale());
  storage::Database db;
  wl.Load(&db, 1);
  auto neworder = tpcc::MakeNewOrderLogic(wl.aux());

  txn::Txn t;
  t.logic = neworder.get();
  auto* p = t.Params<tpcc::NewOrderParams>();
  p->w = 1;
  p->d = 2;
  p->c = 3;
  p->ol_cnt = 5;
  for (int j = 0; j < 5; ++j) {
    p->item_id[j] = j * 7;
    p->supply_w[j] = 1;
    p->quantity[j] = 2;
  }
  txn::OllpPlan(&t, &db);
  for (auto& a : t.accesses) {
    a.row = db.GetTable(a.table)->LookupRaw(a.key);
    ASSERT_NE(a.row, nullptr);
  }
  auto* dr = static_cast<tpcc::DistrictRow*>(
      db.GetTable(tpcc::kDistrict)->LookupRaw(tpcc::DistrictKey(1, 2)));
  const std::uint32_t o_before = dr->next_o_id;

  txn::ExecContext ec{&db, nullptr, /*charge_cycles=*/false};
  WorkerStats stats;
  ec.stats = &stats;
  ASSERT_TRUE(t.logic->Run(&t, ec));

  EXPECT_EQ(dr->next_o_id, o_before + 1);
  auto* sr = static_cast<tpcc::StockRow*>(
      db.GetTable(tpcc::kStock)->LookupRaw(tpcc::StockKey(1, 0)));
  EXPECT_EQ(sr->ytd, 2u);
  EXPECT_EQ(sr->order_cnt, 1u);
  // Order record landed in the district ring.
  const auto& order =
      wl.aux()->orders[wl.aux()->DistrictIndex(1, 2)][o_before % 64];
  EXPECT_EQ(order.o_id, o_before);
  EXPECT_EQ(order.ol_cnt, 5u);
}


// ------------------------------------------------- TPC-C full mix (ext.)

using tpcc::FullTpccMix;
using tpcc::TpccScale;
using tpcc::TpccWorkload;

TEST(TpccFullMix, MixFrequenciesMatchConfiguration) {
  TpccScale s = TinyScale();
  s.mix = FullTpccMix();  // 45/43/4/4/4
  TpccWorkload wl(s);
  storage::Database db;
  wl.Load(&db, 1);
  auto src = wl.MakeSource(0);
  txn::Txn t;
  int counts[5] = {0, 0, 0, 0, 0};
  const int kN = 5000;
  for (int i = 0; i < kN; ++i) {
    src->Next(&t);
    txn::OllpPlan(&t, &db);
    // Identify by access-set signature.
    if (t.accesses.size() >= 8 &&
        t.accesses[0].table == tpcc::kWarehouse &&
        t.accesses[0].mode == txn::LockMode::kShared) {
      counts[0]++;  // NewOrder: S(warehouse) + X(district) + ... stock
    } else if (t.accesses.size() == 3) {
      counts[1]++;  // Payment
    } else if (t.accesses.size() == 2) {
      counts[2]++;  // OrderStatus
    } else if (t.accesses.size() >= 10 &&
               t.accesses[0].table == tpcc::kDistrict) {
      counts[3]++;  // Delivery (10 district X locks + customers)
    } else {
      counts[4]++;  // StockLevel (district S + stock S)
    }
  }
  EXPECT_NEAR(counts[0] / double(kN), 0.45, 0.03);
  EXPECT_NEAR(counts[1] / double(kN), 0.43, 0.03);
  EXPECT_NEAR(counts[2] / double(kN), 0.04, 0.02);
  EXPECT_NEAR(counts[3] / double(kN), 0.04, 0.02);
  EXPECT_NEAR(counts[4] / double(kN), 0.04, 0.02);
}

TEST(TpccFullMix, InvalidMixDies) {
  TpccScale s = TinyScale();
  s.mix = {50, 30, 0, 0, 0};  // sums to 80
  EXPECT_DEATH(TpccWorkload wl(s), "mix");
}

TEST(TpccDelivery, DeliversOldestOrderAndCreditsCustomer) {
  TpccScale s = TinyScale();
  TpccWorkload wl(s);
  storage::Database db;
  wl.Load(&db, 1);

  // Place one order in (w=0, d=0) by hand.
  auto neworder = tpcc::MakeNewOrderLogic(wl.aux());
  txn::Txn t;
  t.logic = neworder.get();
  auto* np = t.Params<tpcc::NewOrderParams>();
  np->w = 0;
  np->d = 0;
  np->c = 7;
  np->ol_cnt = 5;
  for (int j = 0; j < 5; ++j) {
    np->item_id[j] = j;
    np->supply_w[j] = 0;
    np->quantity[j] = 3;
  }
  txn::OllpPlan(&t, &db);
  for (auto& a : t.accesses) a.row = db.GetTable(a.table)->LookupRaw(a.key);
  txn::ExecContext ec{&db, nullptr, false};
  WorkerStats stats;
  ec.stats = &stats;
  ASSERT_TRUE(t.logic->Run(&t, ec));
  const auto& order = wl.aux()->orders[wl.aux()->DistrictIndex(0, 0)][1 % 64];
  ASSERT_EQ(order.c_id, 7u);

  // Deliver warehouse 0.
  auto delivery = tpcc::MakeDeliveryLogic(wl.aux());
  txn::Txn d;
  d.logic = delivery.get();
  auto* dp = d.Params<tpcc::DeliveryParams>();
  dp->w = 0;
  dp->carrier = 3;
  txn::OllpPlan(&d, &db);
  // Exactly one district has a pending order -> 10 district X + 1 customer.
  EXPECT_EQ(d.accesses.size(), 11u);
  for (auto& a : d.accesses) a.row = db.GetTable(a.table)->LookupRaw(a.key);
  ASSERT_TRUE(d.logic->Run(&d, ec));

  const auto* cr = static_cast<const tpcc::CustomerRow*>(
      db.GetTable(tpcc::kCustomer)->LookupRaw(tpcc::CustomerKey(0, 0, 7)));
  EXPECT_EQ(cr->balance_cents,
            static_cast<std::int64_t>(order.total_cents));
  const auto* dr = static_cast<const tpcc::DistrictRow*>(
      db.GetTable(tpcc::kDistrict)->LookupRaw(tpcc::DistrictKey(0, 0)));
  EXPECT_EQ(dr->delivered_o_id, 2u);
  EXPECT_EQ(wl.TotalOrdersDelivered(db), 1u);
}

TEST(TpccDelivery, StaleCursorDetected) {
  TpccScale s = TinyScale();
  TpccWorkload wl(s);
  storage::Database db;
  wl.Load(&db, 1);
  auto delivery = tpcc::MakeDeliveryLogic(wl.aux());
  txn::Txn d;
  d.logic = delivery.get();
  auto* dp = d.Params<tpcc::DeliveryParams>();
  dp->w = 1;
  dp->carrier = 1;
  txn::OllpPlan(&d, &db);
  // Simulate a concurrent Delivery advancing a cursor after reconnaissance.
  auto* dr = static_cast<tpcc::DistrictRow*>(
      db.GetTable(tpcc::kDistrict)->LookupRaw(tpcc::DistrictKey(1, 4)));
  dr->delivered_o_id++;
  for (auto& a : d.accesses) a.row = db.GetTable(a.table)->LookupRaw(a.key);
  txn::ExecContext ec{&db, nullptr, false};
  WorkerStats stats;
  ec.stats = &stats;
  EXPECT_FALSE(d.logic->Run(&d, ec));  // must refuse to execute
  dr->delivered_o_id--;                // restore
  EXPECT_TRUE(d.logic->Run(&d, ec));
}

TEST(TpccStockLevel, CountsLowStockUnderThreshold) {
  TpccScale s = TinyScale();
  TpccWorkload wl(s);
  storage::Database db;
  wl.Load(&db, 1);

  // Place an order, then force one of its stock rows under the threshold.
  auto neworder = tpcc::MakeNewOrderLogic(wl.aux());
  txn::Txn t;
  t.logic = neworder.get();
  auto* np = t.Params<tpcc::NewOrderParams>();
  np->w = 2;
  np->d = 3;
  np->c = 1;
  np->ol_cnt = 5;
  for (int j = 0; j < 5; ++j) {
    np->item_id[j] = 10 + j;
    np->supply_w[j] = 2;
    np->quantity[j] = 1;
  }
  txn::OllpPlan(&t, &db);
  for (auto& a : t.accesses) a.row = db.GetTable(a.table)->LookupRaw(a.key);
  txn::ExecContext ec{&db, nullptr, false};
  WorkerStats stats;
  ec.stats = &stats;
  ASSERT_TRUE(t.logic->Run(&t, ec));
  auto* sr = static_cast<tpcc::StockRow*>(
      db.GetTable(tpcc::kStock)->LookupRaw(tpcc::StockKey(2, 12)));
  sr->quantity = 5;  // below any threshold in [10, 20]

  auto stock_level = tpcc::MakeStockLevelLogic(wl.aux());
  txn::Txn q;
  q.logic = stock_level.get();
  auto* qp = q.Params<tpcc::StockLevelParams>();
  qp->w = 2;
  qp->d = 3;
  qp->threshold = 10;
  txn::OllpPlan(&q, &db);
  EXPECT_EQ(q.accesses.size(), 6u);  // district + 5 distinct items
  for (auto& a : q.accesses) a.row = db.GetTable(a.table)->LookupRaw(a.key);
  const auto before = wl.aux()->tallies.Sum();
  ASSERT_TRUE(q.logic->Run(&q, ec));
  const auto after = wl.aux()->tallies.Sum();
  EXPECT_EQ(after.stock_levels - before.stock_levels, 1u);
  EXPECT_EQ(after.low_stock_seen - before.low_stock_seen, 1u);
}


}  // namespace
}  // namespace orthrus::workload
