// Tests for the shared-everything lock table and the three deadlock
// policies: grant compatibility, FIFO fairness, wake-ups, wait-die ordering
// rules, and forced-deadlock detection for the graph-based schemes.
#include <memory>

#include <gtest/gtest.h>

#include "hal/native_platform.h"
#include "hal/sim_platform.h"
#include "lock/lock_table.h"
#include "lock/space_map.h"

namespace orthrus::lock {
namespace {

using txn::LockMode;

lock::LockTable::Config SmallConfig() {
  LockTable::Config c;
  c.num_buckets = 256;
  c.max_lock_heads = 4096;
  c.max_workers = 8;
  return c;
}

// Single-threaded grant-path tests (no platform needed: everything is
// immediate when uncontended).
class LockTableBasic : public ::testing::Test {
 protected:
  LockTableBasic() : table_(SmallConfig()) {
    for (int i = 0; i < 4; ++i) {
      ctx_[i] = table_.RegisterWorker(i, &stats_[i]);
      ctx_[i]->txn_timestamp = 100 + i;  // worker 0 oldest
    }
  }
  LockTable table_;
  WorkerStats stats_[4];
  WorkerLockCtx* ctx_[4];
};

TEST_F(LockTableBasic, ExclusiveGrantsImmediately) {
  EXPECT_EQ(table_.Acquire(ctx_[0], 1, 42, LockMode::kExclusive, nullptr),
            LockTable::AcquireResult::kGranted);
  EXPECT_EQ(table_.HeldCount(ctx_[0]), 1u);
  table_.ReleaseAll(ctx_[0]);
  EXPECT_EQ(table_.HeldCount(ctx_[0]), 0u);
}

TEST_F(LockTableBasic, SharedLocksCoexist) {
  EXPECT_EQ(table_.Acquire(ctx_[0], 1, 42, LockMode::kShared, nullptr),
            LockTable::AcquireResult::kGranted);
  EXPECT_EQ(table_.Acquire(ctx_[1], 1, 42, LockMode::kShared, nullptr),
            LockTable::AcquireResult::kGranted);
  EXPECT_EQ(table_.Acquire(ctx_[2], 1, 42, LockMode::kShared, nullptr),
            LockTable::AcquireResult::kGranted);
  table_.ReleaseAll(ctx_[0]);
  table_.ReleaseAll(ctx_[1]);
  table_.ReleaseAll(ctx_[2]);
}

TEST_F(LockTableBasic, WriterBlocksBehindReader) {
  EXPECT_EQ(table_.Acquire(ctx_[0], 1, 42, LockMode::kShared, nullptr),
            LockTable::AcquireResult::kGranted);
  EXPECT_EQ(table_.Acquire(ctx_[1], 1, 42, LockMode::kExclusive, nullptr),
            LockTable::AcquireResult::kWaiting);
  EXPECT_EQ(stats_[1].lock_waits, 1u);
}

TEST_F(LockTableBasic, ReaderBlocksBehindWaitingWriterFifo) {
  // S held; X waits; a later S must NOT bypass the X (FIFO, no starvation).
  ASSERT_EQ(table_.Acquire(ctx_[0], 1, 7, LockMode::kShared, nullptr),
            LockTable::AcquireResult::kGranted);
  ASSERT_EQ(table_.Acquire(ctx_[1], 1, 7, LockMode::kExclusive, nullptr),
            LockTable::AcquireResult::kWaiting);
  EXPECT_EQ(table_.Acquire(ctx_[2], 1, 7, LockMode::kShared, nullptr),
            LockTable::AcquireResult::kWaiting);
}

TEST_F(LockTableBasic, DistinctKeysIndependent) {
  EXPECT_EQ(table_.Acquire(ctx_[0], 1, 1, LockMode::kExclusive, nullptr),
            LockTable::AcquireResult::kGranted);
  EXPECT_EQ(table_.Acquire(ctx_[1], 1, 2, LockMode::kExclusive, nullptr),
            LockTable::AcquireResult::kGranted);
  EXPECT_EQ(table_.Acquire(ctx_[2], 2, 1, LockMode::kExclusive, nullptr),
            LockTable::AcquireResult::kGranted);  // same key, other table
}

TEST_F(LockTableBasic, LockHeadsAreReused) {
  for (int round = 0; round < 10; ++round) {
    ASSERT_EQ(table_.Acquire(ctx_[0], 1, 5, LockMode::kExclusive, nullptr),
              LockTable::AcquireResult::kGranted);
    table_.ReleaseAll(ctx_[0]);
  }
  EXPECT_EQ(table_.lock_heads_in_use(), 1u);
}

// --- wait-die decision rules (single-threaded: we inspect the immediate
// result of Acquire).

TEST_F(LockTableBasic, WaitDieOlderWaitsOnYounger) {
  WaitDiePolicy policy;
  ctx_[1]->txn_timestamp = 200;  // younger holder
  ASSERT_EQ(table_.Acquire(ctx_[1], 1, 9, LockMode::kExclusive, &policy),
            LockTable::AcquireResult::kGranted);
  ctx_[0]->txn_timestamp = 100;  // older requester
  EXPECT_EQ(table_.Acquire(ctx_[0], 1, 9, LockMode::kExclusive, &policy),
            LockTable::AcquireResult::kWaiting);
}

TEST_F(LockTableBasic, WaitDieYoungerDies) {
  WaitDiePolicy policy;
  ctx_[0]->txn_timestamp = 100;  // older holder
  ASSERT_EQ(table_.Acquire(ctx_[0], 1, 9, LockMode::kExclusive, &policy),
            LockTable::AcquireResult::kGranted);
  ctx_[1]->txn_timestamp = 200;  // younger requester
  EXPECT_EQ(table_.Acquire(ctx_[1], 1, 9, LockMode::kExclusive, &policy),
            LockTable::AcquireResult::kDie);
  EXPECT_EQ(table_.HeldCount(ctx_[1]), 0u);
}

TEST_F(LockTableBasic, WaitDieDieReleasesQueueSlot) {
  WaitDiePolicy policy;
  ctx_[0]->txn_timestamp = 100;
  ASSERT_EQ(table_.Acquire(ctx_[0], 1, 9, LockMode::kExclusive, &policy),
            LockTable::AcquireResult::kGranted);
  ctx_[1]->txn_timestamp = 200;
  ASSERT_EQ(table_.Acquire(ctx_[1], 1, 9, LockMode::kExclusive, &policy),
            LockTable::AcquireResult::kDie);
  // The dead request must not block future grants.
  table_.ReleaseAll(ctx_[0]);
  EXPECT_EQ(table_.Acquire(ctx_[2], 1, 9, LockMode::kExclusive, &policy),
            LockTable::AcquireResult::kGranted);
}

// --- Multi-core scenarios on the simulator (deterministic).

TEST(LockTableSim, ReleaseWakesWaiterFifo) {
  LockTable table(SmallConfig());
  WorkerStats stats[2];
  hal::SimPlatform sim(2);
  WorkerLockCtx* c0 = table.RegisterWorker(0, &stats[0]);
  WorkerLockCtx* c1 = table.RegisterWorker(1, &stats[1]);
  std::vector<int> order;
  sim.Spawn(0, [&] {
    ASSERT_EQ(table.Acquire(c0, 1, 5, LockMode::kExclusive, nullptr),
              LockTable::AcquireResult::kGranted);
    hal::ConsumeCycles(20000);  // hold while core 1 queues up
    order.push_back(0);
    table.ReleaseAll(c0);
  });
  sim.Spawn(1, [&] {
    hal::ConsumeCycles(1000);  // ensure core 0 already holds
    auto r = table.Acquire(c1, 1, 5, LockMode::kExclusive, nullptr);
    if (r == LockTable::AcquireResult::kWaiting) {
      ASSERT_TRUE(table.Wait(c1, nullptr));
    }
    order.push_back(1);
    table.ReleaseAll(c1);
  });
  sim.Run();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 1);
  EXPECT_GT(stats[1].Get(TimeCategory::kWaiting), 0u);
}

// Forces a true deadlock (0 holds A wants B; 1 holds B wants A) and checks
// each detection policy resolves it: at least one worker aborts and both
// finish.
template <typename Policy>
void RunForcedDeadlock(Policy* policy) {
  LockTable table(SmallConfig());
  WorkerStats stats[2];
  hal::SimPlatform sim(2);
  WorkerLockCtx* ctx[2] = {table.RegisterWorker(0, &stats[0]),
                           table.RegisterWorker(1, &stats[1])};
  ctx[0]->txn_timestamp = 1;
  ctx[1]->txn_timestamp = 2;
  int aborts = 0;
  auto worker = [&](int me, std::uint64_t first, std::uint64_t second) {
    ASSERT_EQ(table.Acquire(ctx[me], 1, first, LockMode::kExclusive, policy),
              LockTable::AcquireResult::kGranted);
    hal::ConsumeCycles(5000);  // let both sides take their first lock
    auto r = table.Acquire(ctx[me], 1, second, LockMode::kExclusive, policy);
    if (r == LockTable::AcquireResult::kWaiting) {
      if (!table.Wait(ctx[me], policy)) aborts++;
    } else if (r == LockTable::AcquireResult::kDie) {
      aborts++;
    }
    table.ReleaseAll(ctx[me]);
  };
  sim.Spawn(0, [&] { worker(0, 100, 200); });
  sim.Spawn(1, [&] { worker(1, 200, 100); });
  sim.Run();  // termination itself proves the deadlock was broken
  EXPECT_GE(aborts, 1);
}

TEST(LockTableSim, DreadlocksDetectsForcedDeadlock) {
  DreadlocksPolicy policy;
  RunForcedDeadlock(&policy);
}

TEST(LockTableSim, WaitForGraphDetectsForcedDeadlock) {
  WaitForGraphPolicy policy(8);
  RunForcedDeadlock(&policy);
}

TEST(LockTableSim, WaitDieAvoidsForcedDeadlock) {
  WaitDiePolicy policy;
  RunForcedDeadlock(&policy);
}

TEST(LockTableSim, SharedReadersProceedConcurrently) {
  LockTable table(SmallConfig());
  WorkerStats stats[4];
  hal::SimPlatform sim(4);
  WorkerLockCtx* ctx[4];
  for (int i = 0; i < 4; ++i) ctx[i] = table.RegisterWorker(i, &stats[i]);
  int completed = 0;
  for (int i = 0; i < 4; ++i) {
    sim.Spawn(i, [&, i] {
      for (int round = 0; round < 50; ++round) {
        auto r = table.Acquire(ctx[i], 1, 7, LockMode::kShared, nullptr);
        if (r == LockTable::AcquireResult::kWaiting) {
          ASSERT_TRUE(table.Wait(ctx[i], nullptr));
        }
        hal::ConsumeCycles(50);
        table.ReleaseAll(ctx[i]);
      }
      completed++;
    });
  }
  sim.Run();
  EXPECT_EQ(completed, 4);
  // Readers never conflict: no one should have waited.
  for (int i = 0; i < 4; ++i) EXPECT_EQ(stats[i].lock_waits, 0u);
}

TEST(LockTableNative, MutualExclusionUnderRealThreads) {
  LockTable table(SmallConfig());
  WorkerStats stats[4];
  hal::NativePlatform platform(4);
  WorkerLockCtx* ctx[4];
  for (int i = 0; i < 4; ++i) ctx[i] = table.RegisterWorker(i, &stats[i]);
  std::uint64_t counter = 0;  // protected by lock (1, 99)
  constexpr int kIters = 2000;
  for (int i = 0; i < 4; ++i) {
    platform.Spawn(i, [&, i] {
      for (int round = 0; round < kIters; ++round) {
        auto r = table.Acquire(ctx[i], 1, 99, LockMode::kExclusive, nullptr);
        if (r == LockTable::AcquireResult::kWaiting) {
          ASSERT_TRUE(table.Wait(ctx[i], nullptr));
        }
        counter++;
        table.ReleaseAll(ctx[i]);
      }
    });
  }
  platform.Run();
  EXPECT_EQ(counter, 4ull * kIters);
}

TEST(LockTableNative, WaitDieStressEventuallyAllCommit) {
  // High-conflict loop with wait-die: every worker must finish its quota
  // despite aborts (no livelock thanks to age retention).
  LockTable table(SmallConfig());
  WorkerStats stats[4];
  hal::NativePlatform platform(4);
  WaitDiePolicy policy;
  WorkerLockCtx* ctx[4];
  for (int i = 0; i < 4; ++i) ctx[i] = table.RegisterWorker(i, &stats[i]);
  std::uint64_t commits[4] = {0, 0, 0, 0};
  for (int i = 0; i < 4; ++i) {
    platform.Spawn(i, [&, i] {
      std::uint64_t ts = i + 1;
      while (commits[i] < 300) {
        ctx[i]->txn_timestamp = ts;
        bool ok = true;
        for (std::uint64_t key : {7ull, 8ull}) {
          auto r = table.Acquire(ctx[i], 1, key, LockMode::kExclusive,
                                 &policy);
          if (r == LockTable::AcquireResult::kDie) {
            ok = false;
            break;
          }
          if (r == LockTable::AcquireResult::kWaiting &&
              !table.Wait(ctx[i], &policy)) {
            ok = false;
            break;
          }
        }
        table.ReleaseAll(ctx[i]);
        if (ok) {
          commits[i]++;
          ts += 4;  // fresh, still unique timestamp for the next txn
        }
        // Aborted txns retry with the same timestamp: eventual progress.
      }
    });
  }
  platform.Run();
  for (int i = 0; i < 4; ++i) EXPECT_EQ(commits[i], 300u);
}

}  // namespace
}  // namespace orthrus::lock

namespace orthrus::lock {
namespace {

// --- Additional edge cases -------------------------------------------

LockTable::Config EdgeConfig() {
  LockTable::Config c;
  c.num_buckets = 256;
  c.max_lock_heads = 4096;
  c.max_workers = 8;
  return c;
}

TEST(LockTableEdge, SingleWorkerReacquiresFreely) {
  LockTable table(EdgeConfig());
  WorkerStats stats;
  hal::SimPlatform sim(1);
  WorkerLockCtx* ctx = table.RegisterWorker(0, &stats);
  sim.Spawn(0, [&] {
    for (int i = 0; i < 100; ++i) {
      ASSERT_EQ(table.Acquire(ctx, 1, i % 7, LockMode::kExclusive, nullptr),
                LockTable::AcquireResult::kGranted);
      table.ReleaseAll(ctx);
    }
  });
  sim.Run();
  EXPECT_EQ(stats.lock_waits, 0u);
}

TEST(LockTableEdge, DreadlocksDigestResetBetweenTransactions) {
  // After a wait ends, the published digest must collapse back to the
  // worker's own bit — stale closure bits would seed false positives in
  // later transactions.
  LockTable table(EdgeConfig());
  WorkerStats stats[2];
  hal::SimPlatform sim(2);
  WorkerLockCtx* c0 = table.RegisterWorker(0, &stats[0]);
  WorkerLockCtx* c1 = table.RegisterWorker(1, &stats[1]);
  DreadlocksPolicy policy;
  sim.Spawn(0, [&] {
    ASSERT_EQ(table.Acquire(c0, 1, 5, LockMode::kExclusive, &policy),
              LockTable::AcquireResult::kGranted);
    hal::ConsumeCycles(20000);
    table.ReleaseAll(c0);
  });
  sim.Spawn(1, [&] {
    hal::ConsumeCycles(1000);
    auto r = table.Acquire(c1, 1, 5, LockMode::kExclusive, &policy);
    ASSERT_EQ(r, LockTable::AcquireResult::kWaiting);
    ASSERT_TRUE(table.Wait(c1, &policy));
    table.ReleaseAll(c1);
  });
  sim.Run();
  // Worker 1 waited on worker 0; afterwards its digest is just {1}.
  EXPECT_EQ(c1->digest_lo.RawLoad(), 1ull << 1);
  EXPECT_EQ(c1->digest_hi.RawLoad(), 0u);
}

TEST(LockTableEdge, WaitForGraphEdgeClearedAfterGrant) {
  LockTable table(EdgeConfig());
  WorkerStats stats[2];
  hal::SimPlatform sim(2);
  WorkerLockCtx* c0 = table.RegisterWorker(0, &stats[0]);
  WorkerLockCtx* c1 = table.RegisterWorker(1, &stats[1]);
  WaitForGraphPolicy policy(2);
  sim.Spawn(0, [&] {
    ASSERT_EQ(table.Acquire(c0, 1, 9, LockMode::kExclusive, &policy),
              LockTable::AcquireResult::kGranted);
    hal::ConsumeCycles(20000);
    table.ReleaseAll(c0);
  });
  sim.Spawn(1, [&] {
    hal::ConsumeCycles(1000);
    auto r = table.Acquire(c1, 1, 9, LockMode::kExclusive, &policy);
    ASSERT_EQ(r, LockTable::AcquireResult::kWaiting);
    ASSERT_TRUE(table.Wait(c1, &policy));
    table.ReleaseAll(c1);
  });
  sim.Run();
  EXPECT_EQ(c1->waits_for.RawLoad(), 0u);
}

TEST(LockTableEdge, QueueCountersBalanceAfterChurn) {
  // Grant/abort/release churn must leave every queue empty: re-acquiring
  // exclusively must succeed instantly for every key touched.
  LockTable table(EdgeConfig());
  WorkerStats stats[3];
  hal::SimPlatform sim(3);
  WorkerLockCtx* ctx[3];
  for (int i = 0; i < 3; ++i) ctx[i] = table.RegisterWorker(i, &stats[i]);
  WaitDiePolicy policy;
  for (int i = 0; i < 3; ++i) {
    sim.Spawn(i, [&, i] {
      std::uint64_t ts = i + 1;
      for (int round = 0; round < 200; ++round) {
        ctx[i]->txn_timestamp = ts;
        bool ok = true;
        for (std::uint64_t key : {3ull, 4ull, 5ull}) {
          auto r = table.Acquire(ctx[i], 1, key, LockMode::kExclusive,
                                 &policy);
          if (r == LockTable::AcquireResult::kDie ||
              (r == LockTable::AcquireResult::kWaiting &&
               !table.Wait(ctx[i], &policy))) {
            ok = false;
            break;
          }
        }
        table.ReleaseAll(ctx[i]);
        if (ok) ts += 3;
      }
    });
  }
  sim.Run();
  // All queues drained: fresh exclusive acquisitions are instant.
  WorkerStats post;
  WorkerLockCtx* probe = table.RegisterWorker(3, &post);
  hal::SimPlatform sim2(1);
  sim2.Spawn(0, [&] {
    for (std::uint64_t key : {3ull, 4ull, 5ull}) {
      EXPECT_EQ(table.Acquire(probe, 1, key, LockMode::kExclusive, nullptr),
                LockTable::AcquireResult::kGranted);
    }
    table.ReleaseAll(probe);
  });
  sim2.Run();
  EXPECT_EQ(post.lock_waits, 0u);
}

// ------------------------------------------------- lock-space ownership

TEST(HashRing, OwnersAreDeterministicAndInRange) {
  HashRing a(8), b(8);
  for (int active = 1; active <= 8; ++active) {
    for (int p = 0; p < 64; ++p) {
      const int owner = a.OwnerOf(p, active);
      EXPECT_GE(owner, 0);
      EXPECT_LT(owner, active);
      EXPECT_EQ(owner, b.OwnerOf(p, active));  // pure arithmetic: no state
    }
  }
}

TEST(HashRing, ResizingMovesOnlyTheAffectedSlotsPartitions) {
  // The consistent-hash property the handoff cost depends on: stepping the
  // active count from k to k-1 moves only partitions owned by slot k-1;
  // every other partition keeps its owner. (Growing is the same statement
  // read backwards.)
  HashRing ring(8);
  const int kParts = 256;
  for (int k = 8; k >= 2; --k) {
    int moved_from_other_slots = 0;
    int retired_owned = 0;
    for (int p = 0; p < kParts; ++p) {
      const int before = ring.OwnerOf(p, k);
      const int after = ring.OwnerOf(p, k - 1);
      if (before == k - 1) {
        retired_owned++;
        EXPECT_LT(after, k - 1);  // must move somewhere active
      } else if (before != after) {
        moved_from_other_slots++;
      }
    }
    EXPECT_EQ(moved_from_other_slots, 0) << "k=" << k;
    EXPECT_GT(retired_owned, 0) << "k=" << k;  // slots do own partitions
  }
}

TEST(HashRing, OwnersForMatchesOwnerOf) {
  HashRing ring(4);
  const std::vector<std::uint32_t> owners = ring.OwnersFor(32, 3);
  ASSERT_EQ(owners.size(), 32u);
  for (int p = 0; p < 32; ++p) {
    EXPECT_EQ(static_cast<int>(owners[p]), ring.OwnerOf(p, 3));
  }
}

struct ProbeShard {
  int id = 0;
  std::uint64_t writes = 0;
};

TEST(SpaceMap, PublishBumpsVersionAndRetables) {
  HashRing ring(4);
  SpaceMap<ProbeShard> map;
  map.Reset(8, ring.OwnersFor(8, 4), /*routers=*/2, [](int p) {
    auto s = std::make_unique<ProbeShard>();
    s->id = p;
    return s;
  });
  EXPECT_EQ(map.partitions(), 8);
  EXPECT_EQ(map.VersionRaw(), 1u);
  for (int p = 0; p < 8; ++p) {
    EXPECT_EQ(map.shard(p)->id, p);
    EXPECT_EQ(map.ShardOwnerRaw(p),
              static_cast<std::uint64_t>(ring.OwnerOf(p, 4)));
  }
  const std::uint64_t v2 = map.Publish(ring.OwnersFor(8, 2));
  EXPECT_EQ(v2, 2u);
  for (int p = 0; p < 8; ++p) {
    EXPECT_EQ(map.RouteOf(p),
              static_cast<std::uint64_t>(ring.OwnerOf(p, 2)));
    // Publication moves the routing hints only; shard ownership moves when
    // the owner relinquishes.
    EXPECT_EQ(map.ShardOwnerRaw(p),
              static_cast<std::uint64_t>(ring.OwnerOf(p, 4)));
  }
}

TEST(SpaceMap, RouterRefreshObservesEpochsAndBarriers) {
  HashRing ring(4);
  SpaceMap<ProbeShard> map;
  map.Reset(8, ring.OwnersFor(8, 4), /*routers=*/2,
            [](int) { return std::make_unique<ProbeShard>(); });
  LockSpaceRouter<ProbeShard> r0(&map, 0);
  LockSpaceRouter<ProbeShard> r1(&map, 1);
  // Unrefreshed routers count as past every barrier (they cache nothing).
  EXPECT_TRUE(map.AllObservedAtLeast(1));
  EXPECT_TRUE(r0.Refresh());   // first refresh adopts version 1
  EXPECT_FALSE(r0.Refresh());  // unchanged epoch: no copy, no publication
  for (int p = 0; p < 8; ++p) {
    EXPECT_EQ(r0.OwnerOf(p), ring.OwnerOf(p, 4));
  }
  map.Publish(ring.OwnersFor(8, 1));
  EXPECT_TRUE(r1.Refresh());                // jumps straight to version 2
  EXPECT_FALSE(map.AllObservedAtLeast(2));  // r0 still caches version 1
  EXPECT_TRUE(r0.Refresh());
  EXPECT_TRUE(map.AllObservedAtLeast(2));
  for (int p = 0; p < 8; ++p) {
    EXPECT_EQ(r0.OwnerOf(p), 0);  // one active slot owns everything
  }
  // A deactivated router leaves every barrier satisfied until it resumes.
  map.Publish(ring.OwnersFor(8, 3));
  r0.Deactivate();
  EXPECT_TRUE(r1.Refresh());
  EXPECT_TRUE(map.AllObservedAtLeast(3));
  EXPECT_TRUE(r0.Refresh());  // resume: forced refresh rebuilds the view
}

TEST(SpaceMap, RelinquishTransfersShardAuthority) {
  HashRing ring(2);
  SpaceMap<ProbeShard> map;
  std::vector<std::uint32_t> owners(4, 0);  // slot 0 owns everything
  map.Reset(4, owners, /*routers=*/1,
            [](int) { return std::make_unique<ProbeShard>(); });
  map.shard(2)->writes = 7;  // state written by the current owner
  map.Relinquish(2, 1);
  EXPECT_EQ(map.ShardOwnerRaw(2), 1u);
  EXPECT_EQ(map.shard(2)->writes, 7u);  // the pointer moved, not the state
  EXPECT_EQ(map.ShardOwnerRaw(0), 0u);  // untouched shards keep their owner
}

}  // namespace
}  // namespace orthrus::lock
