// Cross-engine equivalence: on the deterministic simulator with a fixed
// seed and a bounded per-worker commit budget, every engine architecture
// must commit exactly the same multiset of transactions — the first K from
// each of the same per-worker YCSB streams (engines retry aborted
// transactions until they commit, and the KV access sets are static, so no
// transaction is ever skipped). Committed RMW effects are commutative
// (row[0] += 1, row[1] ^= key), so identical committed multisets imply
// bit-identical final tables regardless of the execution interleaving each
// architecture produces. This pins the engines to one another: a lost,
// duplicated, or phantom grant anywhere in the lock or message-passing
// plumbing shows up as a digest mismatch.
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/deadlockfree/deadlockfree_engine.h"
#include "engine/orthrus/orthrus_engine.h"
#include "engine/partitioned/partitioned_engine.h"
#include "engine/twopl/twopl_engine.h"
#include "hal/sim_platform.h"
#include "workload/ycsb.h"

namespace orthrus {
namespace {

constexpr int kExecWorkers = 3;   // transaction-issuing workers per engine
constexpr std::uint64_t kTxnsPerWorker = 25;
constexpr int kOrthrusCc = 2;

// ORTHRUS seeds its exec-thread sources with (num_cc + exec_id); the
// shared-everything engines use the bare worker id. This shim realigns the
// streams so every engine consumes sources 0..kExecWorkers-1.
class ShiftedWorkload final : public workload::Workload {
 public:
  ShiftedWorkload(workload::Workload* inner, int shift)
      : inner_(inner), shift_(shift) {}

  void Load(storage::Database* db, int num_table_partitions) override {
    inner_->Load(db, num_table_partitions);
  }
  std::unique_ptr<workload::TxnSource> MakeSource(int worker_id) const
      override {
    return inner_->MakeSource(worker_id - shift_);
  }
  std::string name() const override { return inner_->name(); }

 private:
  workload::Workload* inner_;
  int shift_;
};

workload::YcsbSpec Spec() {
  workload::YcsbSpec spec;
  spec.contention = workload::YcsbContention::kHigh;
  spec.op = workload::YcsbOp::kRmw;
  spec.placement = workload::YcsbPlacement::kRandom;  // keys ignore the
                                                      // partition universe
  spec.num_records = 4000;
  spec.row_bytes = 32;
  spec.seed = 1234;
  return spec;
}

engine::EngineOptions Options(int cores) {
  engine::EngineOptions o;
  o.num_cores = cores;
  // Virtual-time budget far beyond what K transactions need: the commit
  // cap, not the clock, ends every run.
  o.duration_seconds = 1000.0;
  o.max_txns_per_worker = kTxnsPerWorker;
  return o;
}

struct Outcome {
  std::uint64_t committed = 0;
  std::uint64_t counter_sum = 0;
  std::uint64_t digest = 0;
};

// FNV-1a over every row's verifiable words, in slot order.
std::uint64_t TableDigest(const storage::Database& db) {
  const storage::Table* table = db.GetTable(workload::KvWorkload::kTableId);
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xFF;
      h *= 1099511628211ull;
    }
  };
  for (std::uint64_t slot = 0; slot < table->size(); ++slot) {
    const auto* row =
        static_cast<const std::uint64_t*>(table->RowBySlot(slot));
    mix(row[0]);
    mix(row[1]);
  }
  return h;
}

// Loads a fresh database (unsplit table), repoints the partition universe
// at `partitions`, runs the engine, and digests the result.
Outcome RunOne(engine::Engine* eng, workload::Workload* wl, int cores,
               int partitions) {
  workload::KvWorkload kv(workload::MakeYcsbConfig(Spec()));
  storage::Database db;
  kv.Load(&db, 1);
  db.partitioner().n = partitions;
  hal::SimPlatform sim(cores);
  const RunResult r = eng->Run(&sim, &db, *wl);
  Outcome out;
  out.committed = r.total.committed;
  out.counter_sum = kv.SumCounters(db);
  out.digest = TableDigest(db);
  return out;
}

TEST(EngineEquivalence, AllEnginesCommitTheSameTransactionSet) {
  workload::KvWorkload kv(workload::MakeYcsbConfig(Spec()));
  ShiftedWorkload plain(&kv, 0);
  ShiftedWorkload orthrus_aligned(&kv, kOrthrusCc);

  std::vector<std::pair<std::string, Outcome>> outcomes;

  {
    engine::TwoPlEngine eng(Options(kExecWorkers),
                            engine::DeadlockPolicyKind::kWaitDie);
    outcomes.emplace_back(eng.name(),
                          RunOne(&eng, &plain, kExecWorkers, kExecWorkers));
  }
  {
    engine::DeadlockFreeEngine eng(Options(kExecWorkers));
    outcomes.emplace_back(eng.name(),
                          RunOne(&eng, &plain, kExecWorkers, kExecWorkers));
  }
  {
    engine::PartitionedEngine eng(Options(kExecWorkers));
    outcomes.emplace_back(eng.name(),
                          RunOne(&eng, &plain, kExecWorkers, kExecWorkers));
  }
  // ORTHRUS variants: every message-passing configuration (forwarding
  // on/off, batched delivery on/off, shared CC table) must agree with the
  // shared-everything engines.
  struct OrthrusCase {
    bool forwarding;
    bool batched_mp;
    bool shared_cc;
  };
  for (const OrthrusCase& c :
       {OrthrusCase{true, true, false}, OrthrusCase{false, true, false},
        OrthrusCase{true, false, false}, OrthrusCase{true, true, true}}) {
    engine::OrthrusOptions oo;
    oo.num_cc = kOrthrusCc;
    // One transaction in flight per exec thread: the commit cap is checked
    // before each issue, so each worker commits exactly its first K.
    oo.max_inflight = 1;
    oo.forwarding = c.forwarding;
    oo.batched_mp = c.batched_mp;
    oo.shared_cc_table = c.shared_cc;
    engine::OrthrusEngine eng(Options(kOrthrusCc + kExecWorkers), oo);
    outcomes.emplace_back(eng.name(),
                          RunOne(&eng, &orthrus_aligned,
                                 kOrthrusCc + kExecWorkers, kOrthrusCc));
  }

  const std::uint64_t want_committed = kExecWorkers * kTxnsPerWorker;
  const std::uint64_t want_counters = want_committed * 10;  // 10 RMW ops/txn
  for (const auto& [name, out] : outcomes) {
    EXPECT_EQ(out.committed, want_committed) << name;
    EXPECT_EQ(out.counter_sum, want_counters) << name;
    EXPECT_EQ(out.digest, outcomes.front().second.digest)
        << name << " diverged from " << outcomes.front().first;
  }
}

// The same engine run twice must be bit-identical: the simulator is
// deterministic, so any divergence is nondeterminism leaking into an
// engine (e.g. iteration over pointer-keyed containers).
TEST(EngineEquivalence, OrthrusRunsAreDeterministic) {
  workload::KvWorkload kv(workload::MakeYcsbConfig(Spec()));
  ShiftedWorkload aligned(&kv, kOrthrusCc);
  const auto run = [&aligned] {
    engine::OrthrusOptions oo;
    oo.num_cc = kOrthrusCc;
    oo.max_inflight = 1;
    engine::OrthrusEngine eng(Options(kOrthrusCc + kExecWorkers), oo);
    return RunOne(&eng, &aligned, kOrthrusCc + kExecWorkers, kOrthrusCc);
  };
  const Outcome a = run();
  const Outcome b = run();
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.digest, b.digest);
}

}  // namespace
}  // namespace orthrus
