// Cross-engine equivalence: on the deterministic simulator with a fixed
// seed and a bounded per-worker commit budget, every engine architecture
// must commit exactly the same multiset of transactions — the first K from
// each of the same per-worker YCSB streams (engines retry aborted
// transactions until they commit, and the KV access sets are static, so no
// transaction is ever skipped). Committed RMW effects are commutative
// (row[0] += 1, row[1] ^= key), so identical committed multisets imply
// bit-identical final tables regardless of the execution interleaving each
// architecture produces. This pins the engines to one another: a lost,
// duplicated, or phantom grant anywhere in the lock or message-passing
// plumbing shows up as a digest mismatch.
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fnv.h"
#include "engine/deadlockfree/deadlockfree_engine.h"
#include "engine/mvcc/mvcc_engine.h"
#include "engine/orthrus/orthrus_engine.h"
#include "engine/partitioned/partitioned_engine.h"
#include "engine/sharedcc/sharedcc_engine.h"
#include "engine/twopl/twopl_engine.h"
#include "hal/sim_platform.h"
#include "workload/tpcc/tpcc_workload.h"
#include "workload/ycsb.h"

namespace orthrus {
namespace {

// CI race arm: ORTHRUS_RACE_DETECT=1 reruns the equivalence suite with
// happens-before checking on and abort-on-first-race. Detection never
// perturbs the schedule, so the digests must match the plain run's.
hal::SimConfig SimConfigFromEnv() {
  hal::SimConfig config;
  if (std::getenv("ORTHRUS_RACE_DETECT") != nullptr) {
    config.race_detect = true;
    config.race_report_fatal = true;
  }
  return config;
}

constexpr int kExecWorkers = 3;   // transaction-issuing workers per engine
constexpr std::uint64_t kTxnsPerWorker = 25;
constexpr int kOrthrusCc = 2;

// ORTHRUS seeds its exec-thread sources with (num_cc + exec_id); the
// shared-everything engines use the bare worker id. This shim realigns the
// streams so every engine consumes sources 0..kExecWorkers-1.
class ShiftedWorkload final : public workload::Workload {
 public:
  ShiftedWorkload(workload::Workload* inner, int shift)
      : inner_(inner), shift_(shift) {}

  void Load(storage::Database* db, int num_table_partitions) override {
    inner_->Load(db, num_table_partitions);
  }
  std::unique_ptr<workload::TxnSource> MakeSource(int worker_id) const
      override {
    return inner_->MakeSource(worker_id - shift_);
  }
  std::string name() const override { return inner_->name(); }

 private:
  workload::Workload* inner_;
  int shift_;
};

workload::YcsbSpec Spec() {
  workload::YcsbSpec spec;
  spec.contention = workload::YcsbContention::kHigh;
  spec.op = workload::YcsbOp::kRmw;
  spec.placement = workload::YcsbPlacement::kRandom;  // keys ignore the
                                                      // partition universe
  spec.num_records = 4000;
  spec.row_bytes = 32;
  spec.seed = 1234;
  return spec;
}

engine::EngineOptions Options(int cores) {
  engine::EngineOptions o;
  o.num_cores = cores;
  // Virtual-time budget far beyond what K transactions need: the commit
  // cap, not the clock, ends every run.
  o.duration_seconds = 1000.0;
  o.max_txns_per_worker = kTxnsPerWorker;
  return o;
}

struct Outcome {
  std::uint64_t committed = 0;
  std::uint64_t counter_sum = 0;
  std::uint64_t digest = 0;
};

// FNV-1a over every row's verifiable words, in slot order.
std::uint64_t TableDigest(const storage::Database& db) {
  const storage::Table* table = db.GetTable(workload::KvWorkload::kTableId);
  Fnv1a fnv;
  for (std::uint64_t slot = 0; slot < table->size(); ++slot) {
    const auto* row =
        static_cast<const std::uint64_t*>(table->RowBySlot(slot));
    fnv.Mix(row[0]);
    fnv.Mix(row[1]);
  }
  return fnv.digest();
}

// Loads a fresh database (unsplit table), repoints the partition universe
// at `partitions`, runs the engine, and digests the result.
Outcome RunOne(engine::Engine* eng, workload::Workload* wl, int cores,
               int partitions) {
  workload::KvWorkload kv(workload::MakeYcsbConfig(Spec()));
  storage::Database db;
  kv.Load(&db, 1);
  db.partitioner().n = partitions;
  hal::SimPlatform sim(cores, SimConfigFromEnv());
  const RunResult r = eng->Run(&sim, &db, *wl);
  Outcome out;
  out.committed = r.total.committed;
  out.counter_sum = kv.SumCounters(db);
  out.digest = TableDigest(db);
  return out;
}

TEST(EngineEquivalence, AllEnginesCommitTheSameTransactionSet) {
  workload::KvWorkload kv(workload::MakeYcsbConfig(Spec()));
  ShiftedWorkload plain(&kv, 0);
  ShiftedWorkload orthrus_aligned(&kv, kOrthrusCc);

  std::vector<std::pair<std::string, Outcome>> outcomes;

  {
    engine::TwoPlEngine eng(Options(kExecWorkers),
                            engine::DeadlockPolicyKind::kWaitDie);
    outcomes.emplace_back(eng.name(),
                          RunOne(&eng, &plain, kExecWorkers, kExecWorkers));
  }
  {
    engine::DeadlockFreeEngine eng(Options(kExecWorkers));
    outcomes.emplace_back(eng.name(),
                          RunOne(&eng, &plain, kExecWorkers, kExecWorkers));
  }
  {
    engine::PartitionedEngine eng(Options(kExecWorkers));
    outcomes.emplace_back(eng.name(),
                          RunOne(&eng, &plain, kExecWorkers, kExecWorkers));
  }
  {
    // The fifth architecture: partition-latched lock shards, no dedicated
    // CC threads, ordered acquisition — same committed multiset.
    engine::SharedCcEngine eng(Options(kExecWorkers));
    outcomes.emplace_back(eng.name(),
                          RunOne(&eng, &plain, kExecWorkers, kExecWorkers));
  }
  {
    // The sixth architecture: epoch-snapshot MVCC. A pure-RMW stream has
    // no read-only transactions, so this pins the write path — shared-CC
    // locking plus version installs — to the same committed multiset.
    engine::MvccEngine eng(Options(kExecWorkers));
    outcomes.emplace_back(eng.name(),
                          RunOne(&eng, &plain, kExecWorkers, kExecWorkers));
  }
  // ORTHRUS variants: every message-passing configuration (forwarding
  // on/off, batched delivery on/off, sender-side coalescing on/off,
  // adaptive drain order / flush thresholds / drain batch sizing,
  // combined grants, shared CC table) must agree with the
  // shared-everything engines. Every case runs with elastic=false and
  // elastic_cc=false (the OrthrusOptions defaults), so this whole list is
  // the pin that the elastic-roles and lock-space-routing refactors left
  // the static-mesh path producing the exact static-mesh digest; the
  // separate clock-level pins are OrthrusRunsAreDeterministic plus the
  // exact message-count tests and the StaticKnobsAreInert clock probe in
  // orthrus_engine_test.
  struct OrthrusCase {
    bool forwarding;
    bool batched_mp;
    bool shared_cc;
    bool adaptive_drain = false;
    bool coalesced_send = true;
    bool adaptive_flush = false;
    bool combined_grants = false;
    bool adaptive_drain_batch = false;
    bool vectorized_cc = false;
    bool snapshot_reads = false;
  };
  for (const OrthrusCase& c :
       {OrthrusCase{true, true, false}, OrthrusCase{false, true, false},
        OrthrusCase{true, false, false}, OrthrusCase{true, true, true},
        OrthrusCase{true, true, false, /*adaptive_drain=*/true},
        OrthrusCase{true, true, false, false, /*coalesced_send=*/false},
        OrthrusCase{true, true, false, false, true, /*adaptive_flush=*/true},
        OrthrusCase{true, true, false, false, true, false,
                    /*combined_grants=*/true},
        OrthrusCase{true, true, false, false, true, false, false,
                    /*adaptive_drain_batch=*/true},
        OrthrusCase{true, true, false, false, true, false, false, false,
                    /*vectorized_cc=*/true},
        // snapshot_reads over pure RMW: every transaction still runs the
        // lock path, but versions install and the epoch clock ticks —
        // neither may change what commits.
        OrthrusCase{true, true, false, false, true, false, false, false,
                    false, /*snapshot_reads=*/true}}) {
    engine::OrthrusOptions oo;
    oo.num_cc = kOrthrusCc;
    // One transaction in flight per exec thread: the commit cap is checked
    // before each issue, so each worker commits exactly its first K.
    oo.max_inflight = 1;
    oo.forwarding = c.forwarding;
    oo.batched_mp = c.batched_mp;
    oo.shared_cc_table = c.shared_cc;
    oo.adaptive_drain = c.adaptive_drain;
    oo.coalesced_send = c.coalesced_send;
    oo.adaptive_flush = c.adaptive_flush;
    oo.combined_grants = c.combined_grants;
    oo.adaptive_drain_batch = c.adaptive_drain_batch;
    oo.vectorized_cc = c.vectorized_cc;
    oo.snapshot_reads = c.snapshot_reads;
    ORTHRUS_CHECK(!oo.elastic);     // the static-mesh digest pin
    ORTHRUS_CHECK(!oo.elastic_cc);  // the static lock-space pin
    engine::OrthrusEngine eng(Options(kOrthrusCc + kExecWorkers), oo);
    outcomes.emplace_back(eng.name(),
                          RunOne(&eng, &orthrus_aligned,
                                 kOrthrusCc + kExecWorkers, kOrthrusCc));
  }
  {
    // elastic_cc with a pinned CC population (min == max == num_cc, one
    // partition per CC slot would still remap; a consistent-hash map over
    // 2x partitions churns ownership only when the cc target moves, which
    // a pinned range never does): the epoch-routing layer itself must not
    // change what commits. Digest-comparable, though not clock-pinned —
    // router refreshes are modeled work the static path does not do.
    engine::OrthrusOptions oo;
    oo.num_cc = kOrthrusCc;
    oo.max_inflight = 1;
    oo.elastic = true;
    oo.elastic_cc = true;
    oo.elastic_min_cc = kOrthrusCc;
    oo.elastic_min_exec = kExecWorkers;  // pinned exec population too
    oo.elastic_epoch_seconds = 1000.0;   // no controller epoch ever ends
    engine::OrthrusEngine eng(Options(kOrthrusCc + kExecWorkers), oo);
    outcomes.emplace_back(eng.name(),
                          RunOne(&eng, &orthrus_aligned,
                                 kOrthrusCc + kExecWorkers,
                                 2 * kOrthrusCc));
  }

  const std::uint64_t want_committed = kExecWorkers * kTxnsPerWorker;
  const std::uint64_t want_counters = want_committed * 10;  // 10 RMW ops/txn
  for (const auto& [name, out] : outcomes) {
    EXPECT_EQ(out.committed, want_committed) << name;
    EXPECT_EQ(out.counter_sum, want_counters) << name;
    EXPECT_EQ(out.digest, outcomes.front().second.digest)
        << name << " diverged from " << outcomes.front().first;
  }
}

// Mixed read/write stream: half the transactions are read-only, and the
// snapshot-capable engines (MvccEngine always; ORTHRUS with
// snapshot_reads) serve them lock-free from the epoch-versioned slabs
// while the locking engines serialize them through shared locks. Every
// engine still commits exactly the first K transactions of each worker's
// stream, and read-only transactions write nothing — so the commit
// counts, the RMW counter sums, and the final table digests must all
// match the locking reference. This is the cross-engine pin that the
// snapshot protocol serves committed state: a reader observing a torn or
// uncommitted image would still pass here only if it also left the tables
// untouched, which the property test (snapshot_property_test) rules out
// by construction.
TEST(EngineEquivalence, SnapshotReadersMatchLockingEngines) {
  workload::YcsbSpec spec = Spec();
  workload::KvConfig cfg = workload::MakeYcsbConfig(spec);
  cfg.pct_read_only = 50;
  workload::KvWorkload kv(cfg);
  ShiftedWorkload plain(&kv, 0);
  ShiftedWorkload orthrus_aligned(&kv, kOrthrusCc);

  const auto run_plain = [&](engine::Engine* eng) {
    workload::KvWorkload fresh(cfg);
    storage::Database db;
    fresh.Load(&db, 1);
    db.partitioner().n = kExecWorkers;
    hal::SimPlatform sim(kExecWorkers, SimConfigFromEnv());
    const RunResult r = eng->Run(&sim, &db, plain);
    return Outcome{r.total.committed, fresh.SumCounters(db),
                   TableDigest(db)};
  };

  std::vector<std::pair<std::string, Outcome>> outcomes;
  {
    engine::TwoPlEngine eng(Options(kExecWorkers),
                            engine::DeadlockPolicyKind::kWaitDie);
    outcomes.emplace_back(eng.name(), run_plain(&eng));
  }
  {
    engine::SharedCcEngine eng(Options(kExecWorkers));
    outcomes.emplace_back(eng.name(), run_plain(&eng));
  }
  {
    engine::MvccEngine eng(Options(kExecWorkers));
    outcomes.emplace_back(eng.name(), run_plain(&eng));
  }
  for (const bool snap : {false, true}) {
    engine::OrthrusOptions oo;
    oo.num_cc = kOrthrusCc;
    oo.max_inflight = 1;
    oo.snapshot_reads = snap;
    engine::OrthrusEngine eng(Options(kOrthrusCc + kExecWorkers), oo);
    workload::KvWorkload fresh(cfg);
    storage::Database db;
    fresh.Load(&db, 1);
    db.partitioner().n = kOrthrusCc;
    hal::SimPlatform sim(kOrthrusCc + kExecWorkers, SimConfigFromEnv());
    const RunResult r = eng.Run(&sim, &db, orthrus_aligned);
    outcomes.emplace_back(
        eng.name(),
        Outcome{r.total.committed, fresh.SumCounters(db), TableDigest(db)});
  }

  const std::uint64_t want_committed = kExecWorkers * kTxnsPerWorker;
  const Outcome& first = outcomes.front().second;
  // The mix only means anything if both kinds actually committed: pure
  // RMW would sum to 10 * committed, pure reads to 0.
  ASSERT_GT(first.counter_sum, 0u);
  ASSERT_LT(first.counter_sum, want_committed * 10);
  for (const auto& [name, out] : outcomes) {
    EXPECT_EQ(out.committed, want_committed) << name;
    EXPECT_EQ(out.counter_sum, first.counter_sum) << name;
    EXPECT_EQ(out.digest, first.digest)
        << name << " diverged from " << outcomes.front().first;
  }
}

// ----------------------------------------------------------------- TPC-C

// TPC-C equivalence uses the canonical table digest: committed NewOrder /
// Payment effects are commutative on the digested columns (sums, counters,
// and stock subtractions far above the restock threshold), so engines that
// commit the same transaction multiset must agree even though each
// interleaves ring appends differently. Delivery is excluded (its
// customer credit targets depend on which NewOrder drew which order id).
struct TpccOutcome {
  std::uint64_t committed = 0;
  std::uint64_t digest = 0;
  std::uint64_t ring_digest = 0;  // interleaving-dependent; same-engine only
  std::uint64_t canonical_ring_digest = 0;  // order-id-independent
  std::uint64_t tally_total = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t orders_delivered = 0;
  std::uint64_t delivered_cents = 0;
};

// Digest over the order-ring contents the canonical digest excludes:
// which order record landed in which slot depends on the commit
// interleaving, so this is only comparable between runs of the *same*
// engine (the determinism test), never across engines.
std::uint64_t RingDigest(const workload::tpcc::TpccAux& aux) {
  Fnv1a fnv;
  for (const auto& ring : aux.orders) {
    for (const workload::tpcc::OrderRec& o : ring) {
      fnv.Mix(o.o_id);
      fnv.Mix(o.c_id);
      fnv.Mix(o.ol_cnt);
      fnv.Mix(o.total_cents);
    }
  }
  for (const auto& ring : aux.order_lines) {
    for (const workload::tpcc::OrderLineRec& ol : ring) {
      fnv.Mix(ol.i_id);
      fnv.Mix(ol.supply_w);
      fnv.Mix(ol.quantity);
      fnv.Mix(ol.amount_cents);
    }
  }
  return fnv.digest();
}

workload::tpcc::TpccScale EquivTpccScale() {
  workload::tpcc::TpccScale s;
  s.warehouses = 4;
  s.customers_per_district = 60;
  s.items = 200;
  s.order_ring_capacity = 1024;
  return s;  // default mix: NewOrder/Payment 50/50 (the paper's subset)
}

TpccOutcome RunTpccAt(engine::Engine* eng, int cores, int partitions,
                      int source_shift,
                      const workload::tpcc::TpccScale& scale) {
  workload::tpcc::TpccWorkload wl(scale);
  storage::Database db;
  wl.Load(&db, 1);
  db.partitioner().n = partitions;  // mode stays kWarehouseHigh32
  ShiftedWorkload shifted(&wl, source_shift);
  hal::SimPlatform sim(cores, SimConfigFromEnv());
  const RunResult r = eng->Run(&sim, &db, shifted);
  const auto tally = wl.aux()->tallies.Sum();
  TpccOutcome out;
  out.committed = r.total.committed;
  out.digest = wl.CanonicalDigest(db);
  out.ring_digest = RingDigest(*wl.aux());
  out.canonical_ring_digest = wl.CanonicalRingDigest(db);
  out.tally_total = tally.neworders + tally.payments + tally.order_statuses +
                    tally.deliveries + tally.stock_levels;
  out.deliveries = tally.deliveries;
  out.orders_delivered = tally.orders_delivered;
  out.delivered_cents = tally.delivered_cents;
  return out;
}

TpccOutcome RunTpcc(engine::Engine* eng, int cores, int partitions,
                    int source_shift) {
  return RunTpccAt(eng, cores, partitions, source_shift, EquivTpccScale());
}

TEST(EngineEquivalence, AllEnginesCommitTheSameTpccTransactionSet) {
  std::vector<std::pair<std::string, TpccOutcome>> outcomes;

  {
    engine::TwoPlEngine eng(Options(kExecWorkers),
                            engine::DeadlockPolicyKind::kWaitDie);
    outcomes.emplace_back(eng.name(),
                          RunTpcc(&eng, kExecWorkers, kExecWorkers, 0));
  }
  {
    engine::DeadlockFreeEngine eng(Options(kExecWorkers));
    outcomes.emplace_back(eng.name(),
                          RunTpcc(&eng, kExecWorkers, kExecWorkers, 0));
  }
  {
    engine::PartitionedEngine eng(Options(kExecWorkers));
    outcomes.emplace_back(eng.name(),
                          RunTpcc(&eng, kExecWorkers, kExecWorkers, 0));
  }
  {
    engine::SharedCcEngine eng(Options(kExecWorkers));
    outcomes.emplace_back(eng.name(),
                          RunTpcc(&eng, kExecWorkers, kExecWorkers, 0));
  }
  for (const bool adaptive : {false, true}) {
    engine::OrthrusOptions oo;
    oo.num_cc = kOrthrusCc;
    oo.max_inflight = 1;
    oo.adaptive_drain = adaptive;
    engine::OrthrusEngine eng(Options(kOrthrusCc + kExecWorkers), oo);
    outcomes.emplace_back(eng.name(),
                          RunTpcc(&eng, kOrthrusCc + kExecWorkers, kOrthrusCc,
                                  kOrthrusCc));
  }
  {
    // Sender-side coalescing off: per-message tail publications, same
    // committed multiset.
    engine::OrthrusOptions oo;
    oo.num_cc = kOrthrusCc;
    oo.max_inflight = 1;
    oo.coalesced_send = false;
    engine::OrthrusEngine eng(Options(kOrthrusCc + kExecWorkers), oo);
    outcomes.emplace_back(eng.name(),
                          RunTpcc(&eng, kOrthrusCc + kExecWorkers, kOrthrusCc,
                                  kOrthrusCc));
  }
  {
    // Vectorized CC stage: batch drain + prefetch sweep + per-key
    // combining + one grant flush per batch reorders grant *timing*
    // within a quantum, never lock-queue order — the committed TPC-C
    // transaction set is the pin.
    engine::OrthrusOptions oo;
    oo.num_cc = kOrthrusCc;
    oo.max_inflight = 1;
    oo.vectorized_cc = true;
    engine::OrthrusEngine eng(Options(kOrthrusCc + kExecWorkers), oo);
    outcomes.emplace_back(eng.name(),
                          RunTpcc(&eng, kOrthrusCc + kExecWorkers, kOrthrusCc,
                                  kOrthrusCc));
  }
  {
    // Snapshot reads over TPC-C: NewOrder needs reconnaissance and the
    // ring tables carry append regions, so the eligibility gate routes
    // every transaction through ordinary CC — but versions still install
    // on the fixed-population tables and the epoch clock still ticks,
    // neither of which may change what commits.
    engine::OrthrusOptions oo;
    oo.num_cc = kOrthrusCc;
    oo.max_inflight = 1;
    oo.snapshot_reads = true;
    engine::OrthrusEngine eng(Options(kOrthrusCc + kExecWorkers), oo);
    outcomes.emplace_back(eng.name(),
                          RunTpcc(&eng, kOrthrusCc + kExecWorkers, kOrthrusCc,
                                  kOrthrusCc));
  }

  const std::uint64_t want_committed = kExecWorkers * kTxnsPerWorker;
  for (const auto& [name, out] : outcomes) {
    EXPECT_EQ(out.committed, want_committed) << name;
    EXPECT_EQ(out.tally_total, want_committed) << name;
    EXPECT_EQ(out.digest, outcomes.front().second.digest)
        << name << " diverged from " << outcomes.front().first;
  }
}

// Full five-type mix with seeded undelivered orders: the Delivery and
// StockLevel extensions join the cross-engine equivalence once (a) the
// loader seeds more undelivered orders per district than any run can
// deliver — so the delivered order contents, and with them every customer
// credit, are load-deterministic rather than a race against NewOrder — and
// (b) the order rings are compared through the order-id-independent
// canonical digest (which o_id a NewOrder drew is interleaving-dependent;
// the multiset of order contents per district is not).
TEST(EngineEquivalence, FullMixSeededDeliveriesMatchAcrossEngines) {
  workload::tpcc::TpccScale scale;
  scale.warehouses = 2;
  scale.customers_per_district = 60;
  scale.items = 200;
  scale.order_ring_capacity = 1024;
  // Committed deliveries across the whole run are capped by the commit
  // budget (75), and each consumes at most one order per district — far
  // below the seeded backlog, so no Delivery ever reaches a runtime order.
  scale.seeded_orders = 100;
  scale.mix = workload::tpcc::FullTpccMix();

  std::vector<std::pair<std::string, TpccOutcome>> outcomes;
  {
    engine::TwoPlEngine eng(Options(kExecWorkers),
                            engine::DeadlockPolicyKind::kWaitDie);
    outcomes.emplace_back(
        eng.name(), RunTpccAt(&eng, kExecWorkers, kExecWorkers, 0, scale));
  }
  {
    engine::DeadlockFreeEngine eng(Options(kExecWorkers));
    outcomes.emplace_back(
        eng.name(), RunTpccAt(&eng, kExecWorkers, kExecWorkers, 0, scale));
  }
  {
    engine::SharedCcEngine eng(Options(kExecWorkers));
    outcomes.emplace_back(
        eng.name(), RunTpccAt(&eng, kExecWorkers, kExecWorkers, 0, scale));
  }
  {
    engine::OrthrusOptions oo;
    oo.num_cc = kOrthrusCc;
    oo.max_inflight = 1;
    engine::OrthrusEngine eng(Options(kOrthrusCc + kExecWorkers), oo);
    outcomes.emplace_back(eng.name(),
                          RunTpccAt(&eng, kOrthrusCc + kExecWorkers,
                                    kOrthrusCc, kOrthrusCc, scale));
  }
  {
    // Vectorized CC stage over the full five-type mix: the hardest digest
    // pin, since Delivery/StockLevel reads observe grant-order-sensitive
    // state. Batch-deferred grant flushes must not change which orders
    // get delivered.
    engine::OrthrusOptions oo;
    oo.num_cc = kOrthrusCc;
    oo.max_inflight = 1;
    oo.vectorized_cc = true;
    engine::OrthrusEngine eng(Options(kOrthrusCc + kExecWorkers), oo);
    outcomes.emplace_back(eng.name(),
                          RunTpccAt(&eng, kOrthrusCc + kExecWorkers,
                                    kOrthrusCc, kOrthrusCc, scale));
  }
  {
    // Snapshot reads over the full mix: OrderStatus and StockLevel are
    // classified read-only at admission, but both need reconnaissance
    // (ring scans guarded by district locks), so the eligibility gate
    // must route them through CC — a gate miss would run them lock-free
    // against live rings and diverge every digest below.
    engine::OrthrusOptions oo;
    oo.num_cc = kOrthrusCc;
    oo.max_inflight = 1;
    oo.snapshot_reads = true;
    engine::OrthrusEngine eng(Options(kOrthrusCc + kExecWorkers), oo);
    outcomes.emplace_back(eng.name(),
                          RunTpccAt(&eng, kOrthrusCc + kExecWorkers,
                                    kOrthrusCc, kOrthrusCc, scale));
  }

  const std::uint64_t want_committed = kExecWorkers * kTxnsPerWorker;
  const TpccOutcome& first = outcomes.front().second;
  for (const auto& [name, out] : outcomes) {
    EXPECT_EQ(out.committed, want_committed) << name;
    EXPECT_EQ(out.tally_total, want_committed) << name;
    // Lock-managed tables, customer balances included: identical because
    // the delivered orders are the load-deterministic seeded prefix.
    EXPECT_EQ(out.digest, first.digest)
        << name << " diverged from " << outcomes.front().first;
    // Order rings, compared order-id-independently.
    EXPECT_EQ(out.canonical_ring_digest, first.canonical_ring_digest)
        << name << " ring contents diverged from " << outcomes.front().first;
    EXPECT_EQ(out.deliveries, first.deliveries) << name;
    EXPECT_EQ(out.orders_delivered, first.orders_delivered) << name;
    EXPECT_EQ(out.delivered_cents, first.delivered_cents) << name;
  }
}

// Backlog exhaustion: a Delivery-heavy mix against a tiny seeded backlog.
// Every district's three seeded orders are delivered early in the run and
// all later Deliveries find (and must keep finding) nothing to deliver —
// the cursor is capped at the seeded frontier, so no Delivery ever
// consumes a runtime order even though NewOrders keep arriving. The
// delivered order multiset is therefore still load-deterministic, and the
// runs compare on full *contents* across engines: lock-managed tables
// (customer credits included), order rings through the canonical digest,
// and the delivery tallies.
TEST(EngineEquivalence, ExhaustedDeliveryBacklogMatchesAcrossEngines) {
  workload::tpcc::TpccScale scale;
  scale.warehouses = 2;
  scale.customers_per_district = 60;
  scale.items = 200;
  scale.order_ring_capacity = 1024;
  // ~30 committed Deliveries land on 2 warehouses — far beyond 3 seeded
  // orders per district, so the backlog exhausts within the run.
  scale.seeded_orders = 3;
  scale.mix = workload::tpcc::TpccMix{30, 30, 0, 40, 0};

  std::vector<std::pair<std::string, TpccOutcome>> outcomes;
  {
    engine::TwoPlEngine eng(Options(kExecWorkers),
                            engine::DeadlockPolicyKind::kWaitDie);
    outcomes.emplace_back(
        eng.name(), RunTpccAt(&eng, kExecWorkers, kExecWorkers, 0, scale));
  }
  {
    engine::DeadlockFreeEngine eng(Options(kExecWorkers));
    outcomes.emplace_back(
        eng.name(), RunTpccAt(&eng, kExecWorkers, kExecWorkers, 0, scale));
  }
  {
    engine::SharedCcEngine eng(Options(kExecWorkers));
    outcomes.emplace_back(
        eng.name(), RunTpccAt(&eng, kExecWorkers, kExecWorkers, 0, scale));
  }
  {
    engine::OrthrusOptions oo;
    oo.num_cc = kOrthrusCc;
    oo.max_inflight = 1;
    engine::OrthrusEngine eng(Options(kOrthrusCc + kExecWorkers), oo);
    outcomes.emplace_back(eng.name(),
                          RunTpccAt(&eng, kOrthrusCc + kExecWorkers,
                                    kOrthrusCc, kOrthrusCc, scale));
  }

  const std::uint64_t want_committed = kExecWorkers * kTxnsPerWorker;
  const TpccOutcome& first = outcomes.front().second;
  // The scenario only means anything if the backlog actually ran out:
  // every seeded order of both warehouses delivered, and more Deliveries
  // committed than could ever have found a full backlog.
  ASSERT_EQ(first.orders_delivered,
            static_cast<std::uint64_t>(2 * 10 * scale.seeded_orders));
  ASSERT_GT(first.deliveries, first.orders_delivered / 10);
  for (const auto& [name, out] : outcomes) {
    EXPECT_EQ(out.committed, want_committed) << name;
    EXPECT_EQ(out.tally_total, want_committed) << name;
    EXPECT_EQ(out.digest, first.digest)
        << name << " diverged from " << outcomes.front().first;
    EXPECT_EQ(out.canonical_ring_digest, first.canonical_ring_digest)
        << name << " ring contents diverged from " << outcomes.front().first;
    EXPECT_EQ(out.deliveries, first.deliveries) << name;
    EXPECT_EQ(out.orders_delivered, first.orders_delivered) << name;
    EXPECT_EQ(out.delivered_cents, first.delivered_cents) << name;
  }
}

// Same TPC-C run twice on the same architecture must be bit-identical,
// including the rings the canonical digest excludes for cross-engine
// comparison (within one engine the interleaving is deterministic too, so
// ring placement must also reproduce exactly).
TEST(EngineEquivalence, TpccRunsAreDeterministic) {
  const auto run = [] {
    engine::OrthrusOptions oo;
    oo.num_cc = kOrthrusCc;
    oo.max_inflight = 1;
    engine::OrthrusEngine eng(Options(kOrthrusCc + kExecWorkers), oo);
    return RunTpcc(&eng, kOrthrusCc + kExecWorkers, kOrthrusCc, kOrthrusCc);
  };
  const TpccOutcome a = run();
  const TpccOutcome b = run();
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.ring_digest, b.ring_digest);
}

// The same engine run twice must be bit-identical: the simulator is
// deterministic, so any divergence is nondeterminism leaking into an
// engine (e.g. iteration over pointer-keyed containers).
TEST(EngineEquivalence, OrthrusRunsAreDeterministic) {
  workload::KvWorkload kv(workload::MakeYcsbConfig(Spec()));
  ShiftedWorkload aligned(&kv, kOrthrusCc);
  const auto run = [&aligned] {
    engine::OrthrusOptions oo;
    oo.num_cc = kOrthrusCc;
    oo.max_inflight = 1;
    engine::OrthrusEngine eng(Options(kOrthrusCc + kExecWorkers), oo);
    return RunOne(&eng, &aligned, kOrthrusCc + kExecWorkers, kOrthrusCc);
  };
  const Outcome a = run();
  const Outcome b = run();
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.digest, b.digest);
}

}  // namespace
}  // namespace orthrus
