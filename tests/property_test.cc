// Property-based tests: sweeps over engines x contention x seeds x core
// counts asserting the invariants that must hold for *every* configuration:
//
//  * conservation — committed transactions account for exactly all row
//    mutations (no lost updates, no phantom effects from aborted attempts);
//  * liveness — every configuration commits work;
//  * policy contracts — deadlock-free / ORTHRUS never abort on static
//    access sets; read-only workloads never abort anywhere;
//  * determinism — simulated runs are bit-reproducible per configuration.
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "engine/deadlockfree/deadlockfree_engine.h"
#include "engine/orthrus/orthrus_engine.h"
#include "engine/partitioned/partitioned_engine.h"
#include "engine/twopl/twopl_engine.h"
#include "hal/sim_platform.h"
#include "workload/micro.h"

namespace orthrus {
namespace {

using engine::DeadlockPolicyKind;
using engine::EngineOptions;
using workload::KvConfig;
using workload::KvWorkload;

enum class EngineKind {
  kTwoPlWaitDie,
  kTwoPlGraph,
  kTwoPlDreadlocks,
  kDeadlockFree,
  kPartitioned,
  kOrthrus,
  kOrthrusNoFwd,
};

const char* Name(EngineKind k) {
  switch (k) {
    case EngineKind::kTwoPlWaitDie: return "waitdie";
    case EngineKind::kTwoPlGraph: return "graph";
    case EngineKind::kTwoPlDreadlocks: return "dreadlocks";
    case EngineKind::kDeadlockFree: return "deadlockfree";
    case EngineKind::kPartitioned: return "partitioned";
    case EngineKind::kOrthrus: return "orthrus";
    case EngineKind::kOrthrusNoFwd: return "orthrusnofwd";
  }
  return "?";
}

struct PropertyCase {
  EngineKind engine;
  std::uint64_t hot;   // 0 = uniform
  std::uint64_t seed;
};

std::unique_ptr<engine::Engine> MakeEngine(EngineKind kind,
                                           const EngineOptions& options) {
  switch (kind) {
    case EngineKind::kTwoPlWaitDie:
      return std::make_unique<engine::TwoPlEngine>(
          options, DeadlockPolicyKind::kWaitDie);
    case EngineKind::kTwoPlGraph:
      return std::make_unique<engine::TwoPlEngine>(
          options, DeadlockPolicyKind::kWaitForGraph);
    case EngineKind::kTwoPlDreadlocks:
      return std::make_unique<engine::TwoPlEngine>(
          options, DeadlockPolicyKind::kDreadlocks);
    case EngineKind::kDeadlockFree:
      return std::make_unique<engine::DeadlockFreeEngine>(options);
    case EngineKind::kPartitioned:
      return std::make_unique<engine::PartitionedEngine>(options);
    case EngineKind::kOrthrus: {
      engine::OrthrusOptions oo;
      oo.num_cc = 2;
      return std::make_unique<engine::OrthrusEngine>(options, oo);
    }
    case EngineKind::kOrthrusNoFwd: {
      engine::OrthrusOptions oo;
      oo.num_cc = 2;
      oo.forwarding = false;
      return std::make_unique<engine::OrthrusEngine>(options, oo);
    }
  }
  return nullptr;
}

class ConservationProperty : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(ConservationProperty, NoLostOrPhantomUpdates) {
  const PropertyCase& c = GetParam();
  const int kCores = 6;

  KvConfig kv;
  kv.num_records = 4000;
  kv.row_bytes = 64;
  kv.ops_per_txn = 10;
  kv.hot_records = c.hot;
  kv.seed = c.seed;
  const bool partitioned = c.engine == EngineKind::kPartitioned;
  kv.num_partitions = partitioned ? kCores : 2;
  if (partitioned) {
    kv.placement = KvConfig::Placement::kPctMulti;
    kv.pct_multi = 30;
    kv.local_affinity = true;
    kv.hot_records = 0;  // partition targeting replaces the hot set
  }

  KvWorkload wl(kv);
  storage::Database db;
  wl.Load(&db, partitioned ? kCores : 1);

  EngineOptions options;
  options.num_cores = kCores;
  options.duration_seconds = 0.05;
  options.max_txns_per_worker = 80;
  options.lock_buckets = 1 << 12;

  auto eng = MakeEngine(c.engine, options);
  hal::SimPlatform sim(kCores);
  RunResult r = eng->Run(&sim, &db, wl);

  EXPECT_GT(r.total.committed, 0u) << Name(c.engine);
  EXPECT_EQ(wl.SumCounters(db), r.total.committed * 10u)
      << Name(c.engine) << " seed=" << c.seed << " hot=" << c.hot;

  // Contract: engines that know access sets in advance and order their
  // acquisition never abort (static access sets, no OLLP).
  if (c.engine == EngineKind::kDeadlockFree ||
      c.engine == EngineKind::kOrthrus ||
      c.engine == EngineKind::kOrthrusNoFwd ||
      c.engine == EngineKind::kPartitioned) {
    EXPECT_EQ(r.total.aborted, 0u) << Name(c.engine);
    EXPECT_EQ(r.total.ollp_aborts, 0u) << Name(c.engine);
  }
}

std::vector<PropertyCase> AllCases() {
  std::vector<PropertyCase> cases;
  for (EngineKind e :
       {EngineKind::kTwoPlWaitDie, EngineKind::kTwoPlGraph,
        EngineKind::kTwoPlDreadlocks, EngineKind::kDeadlockFree,
        EngineKind::kPartitioned, EngineKind::kOrthrus,
        EngineKind::kOrthrusNoFwd}) {
    for (std::uint64_t hot : {0ull, 128ull, 16ull}) {
      for (std::uint64_t seed : {1ull, 7ull}) {
        cases.push_back({e, hot, seed});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConservationProperty, ::testing::ValuesIn(AllCases()),
    [](const ::testing::TestParamInfo<PropertyCase>& info) {
      return std::string(Name(info.param.engine)) + "_hot" +
             std::to_string(info.param.hot) + "_seed" +
             std::to_string(info.param.seed);
    });

// Read-only workloads never abort under any engine or contention level.
class ReadOnlyNeverAborts
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(ReadOnlyNeverAborts, AnyEngineAnyContention) {
  const auto [engine_idx, hot] = GetParam();
  const EngineKind kinds[] = {EngineKind::kTwoPlWaitDie,
                              EngineKind::kTwoPlDreadlocks,
                              EngineKind::kDeadlockFree, EngineKind::kOrthrus};
  const int kCores = 5;
  KvConfig kv;
  kv.num_records = 4000;
  kv.read_only = true;
  kv.hot_records = hot;
  kv.num_partitions = 2;
  KvWorkload wl(kv);
  storage::Database db;
  wl.Load(&db, 1);
  EngineOptions options;
  options.num_cores = kCores;
  options.duration_seconds = 0.05;
  options.max_txns_per_worker = 60;
  auto eng = MakeEngine(kinds[engine_idx], options);
  hal::SimPlatform sim(kCores);
  RunResult r = eng->Run(&sim, &db, wl);
  EXPECT_GT(r.total.committed, 0u);
  EXPECT_EQ(r.total.aborted, 0u);
  EXPECT_EQ(r.total.deadlocks, 0u);
  // Reads leave no trace.
  EXPECT_EQ(wl.SumCounters(db), 0u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ReadOnlyNeverAborts,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3),
                                            ::testing::Values(0ull, 32ull)));

// Determinism across repeated simulated runs, for every engine.
class DeterminismProperty : public ::testing::TestWithParam<int> {};

TEST_P(DeterminismProperty, RepeatRunsAreIdentical) {
  const EngineKind kinds[] = {
      EngineKind::kTwoPlWaitDie,  EngineKind::kTwoPlGraph,
      EngineKind::kTwoPlDreadlocks, EngineKind::kDeadlockFree,
      EngineKind::kOrthrus};
  const EngineKind kind = kinds[GetParam()];
  auto run = [&] {
    const int kCores = 5;
    KvConfig kv;
    kv.num_records = 3000;
    kv.hot_records = 32;
    kv.num_partitions = 2;
    KvWorkload wl(kv);
    storage::Database db;
    wl.Load(&db, 1);
    EngineOptions options;
    options.num_cores = kCores;
    options.duration_seconds = 0.05;
    options.max_txns_per_worker = 60;
    auto eng = MakeEngine(kind, options);
    hal::SimPlatform sim(kCores);
    RunResult r = eng->Run(&sim, &db, wl);
    return std::make_tuple(r.total.committed, r.total.aborted,
                           sim.GlobalClock(), wl.SumCounters(db));
  };
  EXPECT_EQ(run(), run());
}

INSTANTIATE_TEST_SUITE_P(Sweep, DeterminismProperty,
                         ::testing::Values(0, 1, 2, 3, 4));

}  // namespace
}  // namespace orthrus
