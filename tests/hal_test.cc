// Tests for the hardware abstraction layer: fibers, the discrete-event
// simulator (scheduling, clocks, coherence cost model) and the native
// platform.
#include <algorithm>
#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "hal/fiber.h"
#include "hal/hal.h"
#include "hal/native_platform.h"
#include "hal/sim_platform.h"

namespace orthrus::hal {
namespace {

// ---------------------------------------------------------------- Fiber

TEST(Fiber, RunsToCompletion) {
  bool ran = false;
  Fiber f([&] { ran = true; });
  void* main_sp = nullptr;
  f.SwitchIn(&main_sp);
  EXPECT_TRUE(ran);
  EXPECT_TRUE(f.done());
}

TEST(Fiber, PingPongSwitching) {
  std::vector<int> order;
  void* main_sp = nullptr;
  Fiber* fp = nullptr;
  Fiber f([&] {
    order.push_back(1);
    Fiber::SwitchOut(fp->mutable_sp(), main_sp);
    order.push_back(3);
    Fiber::SwitchOut(fp->mutable_sp(), main_sp);
    order.push_back(5);
  });
  fp = &f;
  f.SwitchIn(&main_sp);
  order.push_back(2);
  EXPECT_FALSE(f.done());
  f.SwitchIn(&main_sp);
  order.push_back(4);
  f.SwitchIn(&main_sp);
  EXPECT_TRUE(f.done());
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(Fiber, PreservesLocalsAcrossSwitches) {
  void* main_sp = nullptr;
  Fiber* fp = nullptr;
  long long sum = 0;
  Fiber f([&] {
    long long local = 42;
    std::vector<int> heap_state{1, 2, 3};
    Fiber::SwitchOut(fp->mutable_sp(), main_sp);
    local += std::accumulate(heap_state.begin(), heap_state.end(), 0);
    sum = local;
  });
  fp = &f;
  f.SwitchIn(&main_sp);
  f.SwitchIn(&main_sp);
  EXPECT_EQ(sum, 48);
}

TEST(Fiber, ManyFibersInterleave) {
  constexpr int kN = 50;
  std::vector<std::unique_ptr<Fiber>> fibers;
  std::vector<int> counts(kN, 0);
  // Pre-sized so the self-pointer slots stay at stable addresses while the
  // fibers below capture them.
  std::vector<Fiber*> selves(kN, nullptr);
  void* main_sp = nullptr;
  for (int i = 0; i < kN; ++i) {
    Fiber** self = &selves[i];
    fibers.push_back(std::make_unique<Fiber>([&counts, i, self, &main_sp] {
      for (int round = 0; round < 3; ++round) {
        counts[i]++;
        Fiber::SwitchOut((*self)->mutable_sp(), main_sp);
      }
    }));
    *self = fibers.back().get();
  }
  // Round-robin until all done.
  bool any = true;
  while (any) {
    any = false;
    for (auto& f : fibers) {
      if (!f->done()) {
        f->SwitchIn(&main_sp);
        any = true;
      }
    }
  }
  for (int i = 0; i < kN; ++i) EXPECT_EQ(counts[i], 3);
}

// ------------------------------------------------------------ Simulator

TEST(SimPlatform, RunsAllCores) {
  SimPlatform sim(4);
  std::vector<int> ran(4, 0);
  for (int i = 0; i < 4; ++i) {
    sim.Spawn(i, [&ran, i] { ran[i] = 1; });
  }
  sim.Run();
  EXPECT_EQ(std::accumulate(ran.begin(), ran.end(), 0), 4);
}

TEST(SimPlatform, CurrentCoreIdentity) {
  SimPlatform sim(3);
  std::vector<int> observed(3, -1);
  for (int i = 0; i < 3; ++i) {
    sim.Spawn(i, [&observed, i] { observed[i] = CoreId(); });
  }
  sim.Run();
  for (int i = 0; i < 3; ++i) EXPECT_EQ(observed[i], i);
  EXPECT_EQ(CoreId(), -1);  // not on a core here
}

TEST(SimPlatform, ConsumeCyclesAdvancesLocalClock) {
  SimPlatform sim(1);
  Cycles before = 0, after = 0;
  sim.Spawn(0, [&] {
    before = Now();
    ConsumeCycles(1000);
    after = Now();
  });
  sim.Run();
  EXPECT_EQ(after - before, 1000u);
}

TEST(SimPlatform, VirtualTimeOrdersExecution) {
  // Core 0 does a lot of work then writes; core 1 does little work then
  // writes. In virtual-time order core 1's write must land first even
  // though core 0 was spawned first.
  SimPlatform sim(2);
  std::vector<int> order;
  Atomic<std::uint64_t> sync;  // forces a scheduling point
  sim.Spawn(0, [&] {
    ConsumeCycles(100000);
    sync.fetch_add(1);
    order.push_back(0);
  });
  sim.Spawn(1, [&] {
    ConsumeCycles(10);
    sync.fetch_add(1);
    order.push_back(1);
  });
  sim.Run();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 0);
}

TEST(SimPlatform, DeterministicAcrossRuns) {
  auto run_once = [] {
    SimPlatform sim(8);
    std::uint64_t checksum = 0;
    Atomic<std::uint64_t> counter;
    for (int i = 0; i < 8; ++i) {
      sim.Spawn(i, [&, i] {
        for (int k = 0; k < 100; ++k) {
          std::uint64_t v = counter.fetch_add(1);
          checksum = checksum * 31 + v * (i + 1);
          ConsumeCycles(10 + i);
        }
      });
    }
    sim.Run();
    return std::make_pair(checksum, sim.GlobalClock());
  };
  auto a = run_once();
  auto b = run_once();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST(SimPlatform, LocalHitCheaperThanRemote) {
  SimConfig cfg;
  SimPlatform sim(2, cfg);
  Atomic<std::uint64_t> shared;
  Cycles local_cost = 0, remote_cost = 0;
  sim.Spawn(0, [&] {
    shared.store(1);  // take ownership
    Cycles t0 = Now();
    shared.store(2);  // exclusive local write
    local_cost = Now() - t0;
  });
  sim.Spawn(1, [&] {
    ConsumeCycles(100000);  // run strictly after core 0
    Cycles t0 = Now();
    shared.store(3);  // remote: line owned by core 0
    remote_cost = Now() - t0;
  });
  sim.Run();
  EXPECT_LT(local_cost, remote_cost);  // store-buffer cost > exclusive L1 hit
}

TEST(SimPlatform, ContendedRmwSerializes) {
  // N cores hammering one line: total virtual time must be at least
  // N_ops * rmw_service_cycles (the line is a serial resource).
  SimConfig cfg;
  constexpr int kCores = 8;
  constexpr int kOpsPerCore = 200;
  SimPlatform sim(kCores, cfg);
  Atomic<std::uint64_t> hot;
  for (int i = 0; i < kCores; ++i) {
    sim.Spawn(i, [&] {
      for (int k = 0; k < kOpsPerCore; ++k) hot.fetch_add(1);
    });
  }
  sim.Run();
  EXPECT_EQ(hot.RawLoad(), static_cast<std::uint64_t>(kCores * kOpsPerCore));
  EXPECT_GE(sim.GlobalClock(),
            static_cast<Cycles>(kCores * kOpsPerCore) *
                cfg.rmw_service_cycles);
}

TEST(SimPlatform, UncontendedLinesScaleLinearly) {
  // Each core hammering its own line: makespan should be roughly the
  // single-core cost, far below the serialized cost.
  SimConfig cfg;
  constexpr int kCores = 8;
  constexpr int kOps = 200;
  SimPlatform sim(kCores, cfg);
  std::vector<std::unique_ptr<Atomic<std::uint64_t>>> lines;
  for (int i = 0; i < kCores; ++i) {
    lines.push_back(std::make_unique<Atomic<std::uint64_t>>());
  }
  for (int i = 0; i < kCores; ++i) {
    sim.Spawn(i, [&, i] {
      for (int k = 0; k < kOps; ++k) lines[i]->fetch_add(1);
    });
  }
  sim.Run();
  // Serial execution would take kCores * kOps * service; private lines
  // should finish in well under half of that.
  EXPECT_LT(sim.GlobalClock(),
            static_cast<Cycles>(kCores) * kOps * cfg.rmw_service_cycles / 2);
}

TEST(SimPlatform, SpinLockMutualExclusionAndProgress) {
  constexpr int kCores = 6;
  constexpr int kIters = 300;
  SimPlatform sim(kCores);
  SpinLock lock;
  std::uint64_t plain_counter = 0;  // protected by `lock`
  for (int i = 0; i < kCores; ++i) {
    sim.Spawn(i, [&] {
      for (int k = 0; k < kIters; ++k) {
        lock.Lock();
        plain_counter++;
        ConsumeCycles(20);
        lock.Unlock();
      }
    });
  }
  sim.Run();
  EXPECT_EQ(plain_counter, static_cast<std::uint64_t>(kCores * kIters));
}

TEST(SimPlatform, StatsCountAccesses) {
  SimPlatform sim(2);
  Atomic<std::uint64_t> a;
  sim.Spawn(0, [&] {
    a.store(1);
    (void)a.load();
  });
  sim.Spawn(1, [&] { ConsumeCycles(10000); (void)a.load(); });
  sim.Run();
  EXPECT_EQ(sim.stats().atomic_stores, 1u);
  EXPECT_EQ(sim.stats().atomic_reads, 2u);
  EXPECT_GE(sim.stats().remote_transfers, 1u);
}

TEST(SimPlatform, IdleBackoffAdvancesTime) {
  SimPlatform sim(1);
  Cycles elapsed = 0;
  sim.Spawn(0, [&] {
    IdleBackoff backoff(/*cap=*/1024);
    Cycles t0 = Now();
    for (int i = 0; i < 20; ++i) backoff.Idle();
    elapsed = Now() - t0;
  });
  sim.Run();
  // 20 idles with exponential backoff capped at 1024 plus relax costs.
  EXPECT_GT(elapsed, 1024u * 10);
}

// --------------------------------------------------------------- Native

TEST(NativePlatform, RunsAllCoresConcurrently) {
  constexpr int kThreads = 4;
  NativePlatform native(kThreads);
  std::atomic<int> started{0};
  std::atomic<int> finished{0};
  for (int i = 0; i < kThreads; ++i) {
    native.Spawn(i, [&] {
      started.fetch_add(1);
      finished.fetch_add(1);
    });
  }
  native.Run();
  EXPECT_EQ(finished.load(), kThreads);
}

TEST(NativePlatform, AtomicIsActuallyAtomic) {
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  NativePlatform native(kThreads);
  Atomic<std::uint64_t> counter;
  for (int i = 0; i < kThreads; ++i) {
    native.Spawn(i, [&] {
      for (int k = 0; k < kIters; ++k) counter.fetch_add(1);
    });
  }
  native.Run();
  EXPECT_EQ(counter.RawLoad(),
            static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(NativePlatform, SpinLockMutualExclusion) {
  constexpr int kThreads = 4;
  constexpr int kIters = 5000;
  NativePlatform native(kThreads);
  SpinLock lock;
  std::uint64_t counter = 0;
  for (int i = 0; i < kThreads; ++i) {
    native.Spawn(i, [&] {
      for (int k = 0; k < kIters; ++k) {
        SpinLockGuard g(lock);
        counter++;
      }
    });
  }
  native.Run();
  EXPECT_EQ(counter, static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(NativePlatform, NowIsMonotonic) {
  NativePlatform native(1);
  bool monotonic = true;
  native.Spawn(0, [&] {
    Cycles prev = Now();
    for (int i = 0; i < 1000; ++i) {
      Cycles t = Now();
      if (t < prev) monotonic = false;
      prev = t;
    }
  });
  native.Run();
  EXPECT_TRUE(monotonic);
}

}  // namespace
}  // namespace orthrus::hal
