// Tests for the storage layer: tables, hash index, split indexes, reserved
// slots, secondary index, database catalog, cost model.
#include <gtest/gtest.h>

#include "storage/database.h"
#include "storage/secondary_index.h"
#include "storage/table.h"

namespace orthrus::storage {
namespace {

TEST(Table, InsertAndLookup) {
  Table t(0, "t", 100, 16);
  std::uint64_t* row = static_cast<std::uint64_t*>(t.Insert(42));
  *row = 7;
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.LookupRaw(42), row);
  EXPECT_EQ(*static_cast<std::uint64_t*>(t.LookupRaw(42)), 7u);
}

TEST(Table, LookupMissingReturnsNull) {
  Table t(0, "t", 10, 16);
  t.Insert(1);
  EXPECT_EQ(t.LookupRaw(2), nullptr);
}

TEST(Table, ManyKeysWithCollisions) {
  // Dense sequential keys force probe chains in the open-addressed index.
  Table t(0, "t", 5000, 16);
  for (std::uint64_t k = 0; k < 5000; ++k) {
    *static_cast<std::uint64_t*>(t.Insert(k)) = k * 3;
  }
  for (std::uint64_t k = 0; k < 5000; ++k) {
    ASSERT_NE(t.LookupRaw(k), nullptr) << k;
    EXPECT_EQ(*static_cast<std::uint64_t*>(t.LookupRaw(k)), k * 3);
  }
}

TEST(Table, DuplicateKeyDies) {
  Table t(0, "t", 10, 16);
  t.Insert(5);
  EXPECT_DEATH(t.Insert(5), "duplicate");
}

TEST(Table, CapacityOverflowDies) {
  Table t(0, "t", 2, 16);
  t.Insert(1);
  t.Insert(2);
  EXPECT_DEATH(t.Insert(3), "full");
}

TEST(Table, SplitIndexRouting) {
  Table t(0, "t", 100, 16, /*num_partitions=*/4);
  for (std::uint64_t k = 0; k < 40; ++k) {
    t.Insert(k, static_cast<int>(k % 4));
  }
  for (std::uint64_t k = 0; k < 40; ++k) {
    EXPECT_NE(t.LookupRaw(k, static_cast<int>(k % 4)), nullptr);
    // Wrong partition must miss: split indexes are disjoint.
    EXPECT_EQ(t.LookupRaw(k, static_cast<int>((k + 1) % 4)), nullptr);
  }
}

TEST(Table, SplitIndexProbeIsCheaperForLargeTables) {
  // A 1M-row index blows the modeled cache; a 16-way split index does not.
  Table big(0, "big", 1 << 20, 16, 1);
  Table split(1, "split", 1 << 20, 16, 16);
  EXPECT_GT(big.ProbeCost(), split.ProbeCost());
}

TEST(Table, RowAccessCostScalesWithRowBytes) {
  Table thin(0, "thin", 10, 64);
  Table fat(1, "fat", 10, 1000);
  EXPECT_GT(fat.RowAccessCost(), thin.RowAccessCost());
}

TEST(Table, ReserveSlotsDisjointFromInserts) {
  Table t(0, "t", 100, 16);
  const std::uint64_t base = t.ReserveSlots(10);
  EXPECT_EQ(base, 90u);
  for (int i = 0; i < 80; ++i) t.Insert(i);
  // Reserved slots live at the top of the slab; inserted rows at the
  // bottom. Writing both must not interfere.
  *static_cast<std::uint64_t*>(t.RowBySlot(base)) = 0xDEAD;
  EXPECT_NE(t.LookupRaw(0), t.RowBySlot(base));
}

TEST(Table, ReserveOverflowDies) {
  Table t(0, "t", 10, 16);
  t.ReserveSlots(10);
  EXPECT_DEATH(t.ReserveSlots(1), "exceeds");
}

TEST(StorageCost, ProbeCostGrowsWithIndexSize) {
  StorageCostModel m;
  EXPECT_EQ(m.ProbeCost(1024), m.probe_base_cycles);
  EXPECT_GT(m.ProbeCost(64ull << 20), m.ProbeCost(2ull << 20));
}

TEST(Database, CatalogRoundTrip) {
  Database db;
  Table* a = db.CreateTable(0, "a", 10, 16);
  Table* b = db.CreateTable(1, "b", 10, 16);
  EXPECT_EQ(db.GetTable(0), a);
  EXPECT_EQ(db.GetTable(1), b);
  EXPECT_EQ(db.num_tables(), 2u);
}

TEST(Database, NonDenseTableIdDies) {
  Database db;
  db.CreateTable(0, "a", 10, 16);
  EXPECT_DEATH(db.CreateTable(5, "b", 10, 16), "dense");
}

TEST(Partitioner, ModuloMode) {
  Partitioner p{4, Partitioner::Mode::kModulo};
  EXPECT_EQ(p.PartOf(0), 0);
  EXPECT_EQ(p.PartOf(5), 1);
  EXPECT_EQ(p.PartOf(7), 3);
}

TEST(Partitioner, WarehouseMode) {
  Partitioner p{4, Partitioner::Mode::kWarehouseHigh32};
  const std::uint64_t key_w5 = (5ull << 32) | 1234;
  EXPECT_EQ(p.PartOf(key_w5), 1);  // 5 % 4
  const std::uint64_t key_w8 = (8ull << 32) | 99;
  EXPECT_EQ(p.PartOf(key_w8), 0);
}

// --------------------------------------------------------- SecondaryIndex

TEST(SecondaryIndex, PostingListsSortedAndComplete) {
  SecondaryIndex idx;
  idx.Add(7, 30);
  idx.Add(7, 10);
  idx.Add(7, 20);
  idx.Add(9, 5);
  idx.Finalize();
  const auto& postings = idx.Lookup(7);
  ASSERT_EQ(postings.size(), 3u);
  EXPECT_EQ(postings[0], 10u);
  EXPECT_EQ(postings[1], 20u);
  EXPECT_EQ(postings[2], 30u);
  EXPECT_EQ(idx.Lookup(9).size(), 1u);
  EXPECT_TRUE(idx.Lookup(999).empty());
}

TEST(SecondaryIndex, MidpointRule) {
  SecondaryIndex idx;
  // TPC-C: position ceil(n/2), 1-based.
  idx.Add(1, 10);
  idx.Add(1, 20);
  idx.Add(1, 30);  // n=3 -> position 2 -> 20
  idx.Add(2, 10);
  idx.Add(2, 20);  // n=2 -> position 1 -> 10
  idx.Add(3, 42);  // n=1 -> 42
  idx.Finalize();
  EXPECT_EQ(idx.LookupMidpoint(1), 20u);
  EXPECT_EQ(idx.LookupMidpoint(2), 10u);
  EXPECT_EQ(idx.LookupMidpoint(3), 42u);
  EXPECT_EQ(idx.LookupMidpoint(99), SecondaryIndex::kNoMatch);
}

TEST(SecondaryIndex, OverrideForTestChangesMidpoint) {
  SecondaryIndex idx;
  idx.Add(1, 10);
  idx.Finalize();
  EXPECT_EQ(idx.LookupMidpoint(1), 10u);
  idx.OverrideForTest(1, {77, 88, 99});
  EXPECT_EQ(idx.LookupMidpoint(1), 88u);
}

}  // namespace
}  // namespace orthrus::storage
