// Adversarial snapshot-consistency properties for the epoch-versioned read
// path. The workload is built so any protocol violation is directly
// observable from inside a reader:
//
//  * rows come in pairs (2p, 2p+1) that straddle lock partitions;
//  * every writer X-locks a pair and stamps ONE value across all words of
//    BOTH rows, so after any committed prefix each row is internally
//    uniform and both rows of a pair are equal;
//  * every reader S-locks a pair — all-shared access sets are classified
//    read-only at admission, so with snapshot_reads on they execute on the
//    lock-free snapshot path — and asserts it saw neither a *torn* row
//    (words within one row disagree: it overlapped a writer mid-install)
//    nor a *mixed-epoch* pair (the two rows disagree: its reads spanned
//    two different snapshots).
//
// Scenarios cover the three adversarial interleavings the protocol must
// survive: plain snapshot runs across seeds (writer mid-install), elastic
// exec/CC role churn (handoff mid-scan), and WAL-attached runs whose epoch
// clock is driven by the logger plus recovery at arbitrary crash points
// (recovery boundary). Run under ORTHRUS_RACE_DETECT=1 the same assertions
// double as a happens-before proof obligation on the version words.
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "engine/orthrus/orthrus_engine.h"
#include "hal/hal.h"
#include "hal/sim_platform.h"
#include "storage/database.h"
#include "txn/txn.h"
#include "wal/wal.h"
#include "workload/workload.h"

namespace orthrus {
namespace {

constexpr std::uint32_t kTableId = 0;
// Few pairs = hot: readers continually overlap in-flight writers.
constexpr std::uint64_t kPairs = 8;
constexpr int kWordsPerRow = 8;
constexpr std::uint32_t kRowBytes = kWordsPerRow * sizeof(std::uint64_t);

struct PairParams {
  std::uint64_t pair = 0;
};

// Shared across all sources/logics of one run; plain std::atomic (invisible
// to the race detector on purpose — it is test instrumentation, not
// protocol state).
struct PairStats {
  std::atomic<std::uint64_t> writes{0};
  std::atomic<std::uint64_t> reads{0};
  std::atomic<std::uint64_t> torn{0};
  std::atomic<std::uint64_t> mixed{0};
};

hal::Cycles PairOpCost(const txn::ExecContext& ctx) {
  const storage::Table* t = ctx.db->GetTable(kTableId);
  return t->RowAccessCost() + t->cost_model().op_compute_cycles;
}

class PairWriteLogic final : public txn::TxnLogic {
 public:
  explicit PairWriteLogic(PairStats* stats) : stats_(stats) {}

  void BuildAccessSet(txn::Txn* t, storage::Database* /*db*/) override {
    const std::uint64_t p = t->Params<PairParams>()->pair;
    t->accesses.reserve(2);
    t->accesses.push_back(
        {kTableId, txn::LockMode::kExclusive, 2 * p, nullptr});
    t->accesses.push_back(
        {kTableId, txn::LockMode::kExclusive, 2 * p + 1, nullptr});
  }

  bool Run(txn::Txn* t, const txn::ExecContext& ctx) override {
    const hal::Cycles op_cost = PairOpCost(ctx);
    auto* a = static_cast<std::uint64_t*>(t->accesses[0].row);
    auto* b = static_cast<std::uint64_t*>(t->accesses[1].row);
    ctx.ChargeOp(op_cost);
    ctx.ChargeOp(op_cost);
    hal::RaceCheck(a, kRowBytes, /*is_write=*/true, "pair.row");
    hal::RaceCheck(b, kRowBytes, /*is_write=*/true, "pair.row");
    // One value over every word of both rows: leaves no state a consistent
    // snapshot could legally report as non-uniform.
    const std::uint64_t v = a[0] + 1;
    for (int w = 0; w < kWordsPerRow; ++w) a[w] = v;
    for (int w = 0; w < kWordsPerRow; ++w) b[w] = v;
    stats_->writes.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

 private:
  PairStats* stats_;
};

class PairReadLogic final : public txn::TxnLogic {
 public:
  explicit PairReadLogic(PairStats* stats) : stats_(stats) {}

  void BuildAccessSet(txn::Txn* t, storage::Database* /*db*/) override {
    const std::uint64_t p = t->Params<PairParams>()->pair;
    t->accesses.reserve(2);
    t->accesses.push_back({kTableId, txn::LockMode::kShared, 2 * p, nullptr});
    t->accesses.push_back(
        {kTableId, txn::LockMode::kShared, 2 * p + 1, nullptr});
  }

  bool Run(txn::Txn* t, const txn::ExecContext& ctx) override {
    const hal::Cycles op_cost = PairOpCost(ctx);
    const auto* a = static_cast<const std::uint64_t*>(t->accesses[0].row);
    const auto* b = static_cast<const std::uint64_t*>(t->accesses[1].row);
    ctx.ChargeOp(op_cost);
    ctx.ChargeOp(op_cost);
    hal::RaceCheck(a, kRowBytes, /*is_write=*/false, "pair.row");
    hal::RaceCheck(b, kRowBytes, /*is_write=*/false, "pair.row");
    bool torn = false;
    for (int w = 1; w < kWordsPerRow; ++w) {
      torn |= a[w] != a[0];
      torn |= b[w] != b[0];
    }
    if (torn) stats_->torn.fetch_add(1, std::memory_order_relaxed);
    if (a[0] != b[0]) stats_->mixed.fetch_add(1, std::memory_order_relaxed);
    stats_->reads.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

 private:
  PairStats* stats_;
};

class PairWorkload final : public workload::Workload {
 public:
  explicit PairWorkload(std::uint64_t seed)
      : seed_(seed),
        writer_(std::make_unique<PairWriteLogic>(&stats_)),
        reader_(std::make_unique<PairReadLogic>(&stats_)) {}

  void Load(storage::Database* db, int /*num_table_partitions*/) override {
    // key % 2 partitioning puts the two rows of every pair on different
    // lock partitions: writers are always cross-partition, so elastic
    // lock-space handoffs land mid-pair.
    db->partitioner().n = 2;
    db->partitioner().mode = storage::Partitioner::Mode::kModulo;
    storage::Table* t =
        db->CreateTable(kTableId, "pair", 2 * kPairs, kRowBytes, 1);
    for (std::uint64_t k = 0; k < 2 * kPairs; ++k) {
      auto* row = static_cast<std::uint64_t*>(t->Insert(k, 0));
      for (int w = 0; w < kWordsPerRow; ++w) row[w] = 0;
    }
  }

  std::unique_ptr<workload::TxnSource> MakeSource(int worker_id) const
      override {
    return std::make_unique<Source>(seed_, worker_id, writer_.get(),
                                    reader_.get());
  }

  std::string name() const override { return "pair-snapshot"; }

  PairStats& stats() { return stats_; }

 private:
  class Source final : public workload::TxnSource {
   public:
    Source(std::uint64_t seed, int worker_id, txn::TxnLogic* writer,
           txn::TxnLogic* reader)
        : rng_(seed * 0x9E3779B97F4A7C15ull + 0x51AF + worker_id),
          writer_(writer),
          reader_(reader) {}

    void Next(txn::Txn* t) override {
      t->ResetForReuse();
      t->logic = rng_.Percent(50) ? reader_ : writer_;
      t->Params<PairParams>()->pair = rng_.NextU64(kPairs);
    }

   private:
    Rng rng_;
    txn::TxnLogic* writer_;
    txn::TxnLogic* reader_;
  };

  std::uint64_t seed_;
  mutable PairStats stats_;
  std::unique_ptr<PairWriteLogic> writer_;
  std::unique_ptr<PairReadLogic> reader_;
};

// Pair invariant over a main slab (post-run / post-recovery): every row
// uniform, both rows of each pair equal. Returns the sum of pair values
// (== committed writer count when checked against the run's own slab).
std::uint64_t CheckSlabPairs(const storage::Database& db) {
  const storage::Table* t = db.GetTable(kTableId);
  std::uint64_t sum = 0;
  for (std::uint64_t p = 0; p < kPairs; ++p) {
    const auto* a = static_cast<const std::uint64_t*>(t->RowBySlot(2 * p));
    const auto* b =
        static_cast<const std::uint64_t*>(t->RowBySlot(2 * p + 1));
    for (int w = 0; w < kWordsPerRow; ++w) {
      EXPECT_EQ(a[w], a[0]) << "torn recovered row, pair " << p;
      EXPECT_EQ(b[w], b[0]) << "torn recovered row, pair " << p;
    }
    EXPECT_EQ(a[0], b[0]) << "mixed recovered pair " << p;
    sum += a[0];
  }
  return sum;
}

engine::EngineOptions BaseOptions(int cores) {
  engine::EngineOptions o;
  o.num_cores = cores;
  o.duration_seconds = 0.05;
  o.max_txns_per_worker = 150;
  o.lock_buckets = 1 << 10;
  return o;
}

// ------------------------------------------------- writer mid-install

TEST(SnapshotProperty, ReadersNeverObserveTornOrMixedPairs) {
  for (const std::uint64_t seed : {1ull, 7ull, 23ull, 51ull, 97ull}) {
    PairWorkload wl(seed);
    storage::Database db;
    wl.Load(&db, 1);

    engine::OrthrusOptions oo;
    oo.num_cc = 2;
    oo.snapshot_reads = true;
    engine::OrthrusEngine eng(BaseOptions(6), oo);
    hal::SimPlatform sim(6);
    const RunResult r = eng.Run(&sim, &db, wl);

    const PairStats& s = wl.stats();
    ASSERT_GT(r.total.committed, 0u) << "seed " << seed;
    EXPECT_GT(s.writes.load(), 0u) << "seed " << seed;
    EXPECT_GT(s.reads.load(), 0u) << "seed " << seed;
    EXPECT_EQ(s.torn.load(), 0u) << "seed " << seed;
    EXPECT_EQ(s.mixed.load(), 0u) << "seed " << seed;
    // Every committed txn ran exactly once, and main-slab state reflects
    // exactly the committed writers.
    EXPECT_EQ(s.writes.load() + s.reads.load(), r.total.committed);
    EXPECT_EQ(CheckSlabPairs(db), s.writes.load());
  }
}

// ---------------------------------------------- elastic handoff mid-scan

TEST(SnapshotProperty, ElasticHandoffMidScan) {
  for (const std::uint64_t seed : {3ull, 11ull}) {
    PairWorkload wl(seed);
    storage::Database db;
    wl.Load(&db, 1);

    engine::OrthrusOptions oo;
    oo.num_cc = 2;
    oo.snapshot_reads = true;
    oo.elastic = true;
    oo.elastic_min_exec = 1;
    oo.elastic_initial_exec = 2;
    oo.elastic_epoch_seconds = 0.002;
    oo.elastic_cc = true;
    // Lock space = the workload's 2-partition universe (pairs straddle it).
    oo.cc_partitions = 2;
    engine::EngineOptions o = BaseOptions(6);
    // Elastic mode parks workers for whole epochs; bound by time, not
    // per-worker caps.
    o.max_txns_per_worker = 0;
    o.duration_seconds = 0.02;
    engine::OrthrusEngine eng(o, oo);
    hal::SimPlatform sim(6);
    const RunResult r = eng.Run(&sim, &db, wl);

    const PairStats& s = wl.stats();
    ASSERT_GT(r.total.committed, 0u) << "seed " << seed;
    EXPECT_GT(s.writes.load(), 0u) << "seed " << seed;
    EXPECT_GT(s.reads.load(), 0u) << "seed " << seed;
    EXPECT_EQ(s.torn.load(), 0u) << "seed " << seed;
    EXPECT_EQ(s.mixed.load(), 0u) << "seed " << seed;
    EXPECT_EQ(CheckSlabPairs(db), s.writes.load());
  }
}

// ------------------------------------------------- WAL recovery boundary

TEST(SnapshotProperty, WalRecoveryBoundary) {
  PairWorkload wl(13);
  storage::Database db;
  wl.Load(&db, 1);

  engine::OrthrusOptions oo;
  oo.num_cc = 2;
  oo.snapshot_reads = true;
  const int n_exec = 8 - oo.num_cc;
  wal::DurabilityOptions dopts;
  dopts.arena_records = 512;
  wal::GroupCommitLog log(dopts, &db, n_exec);
  engine::EngineOptions o = BaseOptions(8);
  o.wal = &log;
  engine::OrthrusEngine eng(o, oo);
  hal::SimPlatform sim(8 + log.loggers());
  const RunResult r = eng.Run(&sim, &db, wl);
  const hal::Cycles end = sim.GlobalClock();

  const PairStats& s = wl.stats();
  ASSERT_GT(r.total.committed, 0u);
  EXPECT_GT(s.writes.load(), 0u);
  EXPECT_GT(s.reads.load(), 0u);
  EXPECT_EQ(s.torn.load(), 0u);
  EXPECT_EQ(s.mixed.load(), 0u);

  // Full recovery reproduces the committed-writer state exactly; crash
  // points land on durable-epoch boundaries, where group commit has
  // applied whole transactions — the pair invariant must hold at every
  // one even though the crash truncates the writer history.
  for (const double frac : {0.25, 0.5, 0.75, 1.0}) {
    PairWorkload rwl(13);
    storage::Database rdb;
    rwl.Load(&rdb, 1);
    const auto images =
        frac == 1.0 ? log.FinalImages()
                    : log.CrashImagesAt(static_cast<hal::Cycles>(
                          frac * static_cast<double>(end)));
    wal::Recover(images, n_exec, &rdb);
    const std::uint64_t recovered = CheckSlabPairs(rdb);
    if (frac == 1.0) {
      // Read-only commits bypass the WAL, so durable state reflects the
      // writer subset of the committed count.
      EXPECT_EQ(recovered, s.writes.load());
    }

    // Recovery boundary for the *snapshot* machinery: reseeding version
    // slabs from the recovered images must give readers a consistent
    // epoch-0 baseline immediately (before any tick or install).
    rdb.EnableSnapshotVersions(/*n_hb_slots=*/1, /*tick_interval_cycles=*/20000);
    storage::Table* t = rdb.GetTable(kTableId);
    const std::uint64_t read_epoch = rdb.epoch_clock()->ReadEpoch();
    std::uint64_t snap[kWordsPerRow];
    for (std::uint64_t p = 0; p < kPairs; ++p) {
      std::uint64_t first = 0;
      for (int side = 0; side < 2; ++side) {
        const std::uint64_t slot = 2 * p + static_cast<std::uint64_t>(side);
        ASSERT_TRUE(t->SnapshotRead(slot, read_epoch, snap));
        for (int w = 0; w < kWordsPerRow; ++w) {
          EXPECT_EQ(snap[w], snap[0]) << "torn reseeded version, slot "
                                      << slot;
        }
        EXPECT_EQ(snap[0],
                  static_cast<const std::uint64_t*>(t->RowBySlot(slot))[0])
            << "reseeded version diverges from recovered slab, slot " << slot;
        if (side == 0) {
          first = snap[0];
        } else {
          EXPECT_EQ(snap[0], first) << "mixed reseeded pair " << p;
        }
      }
    }
  }
}

}  // namespace
}  // namespace orthrus
