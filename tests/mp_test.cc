// Tests for the message-passing layer: the latch-free SPSC queue (FIFO
// order, capacity behaviour, wraparound, batched push/pop, and
// true-concurrency stress on the native platform) and the QueueMesh that
// wires full sender x receiver matrices of queues.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "hal/native_platform.h"
#include "hal/sim_platform.h"
#include "mp/queue_mesh.h"
#include "mp/spsc_queue.h"

namespace orthrus::mp {
namespace {

TEST(SpscQueue, FifoOrder) {
  SpscQueue<std::uint64_t> q(8);
  for (std::uint64_t i = 1; i <= 5; ++i) EXPECT_TRUE(q.TryEnqueue(i));
  std::uint64_t v;
  for (std::uint64_t i = 1; i <= 5; ++i) {
    ASSERT_TRUE(q.TryDequeue(&v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(q.TryDequeue(&v));
}

TEST(SpscQueue, FullRejectsEnqueue) {
  SpscQueue<std::uint64_t> q(4);
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_TRUE(q.TryEnqueue(i));
  EXPECT_FALSE(q.TryEnqueue(99));
  std::uint64_t v;
  EXPECT_TRUE(q.TryDequeue(&v));
  EXPECT_TRUE(q.TryEnqueue(99));  // space freed
}

TEST(SpscQueue, EmptyProbe) {
  SpscQueue<std::uint64_t> q(4);
  EXPECT_TRUE(q.Empty());
  q.TryEnqueue(1);
  EXPECT_FALSE(q.Empty());
  std::uint64_t v;
  q.TryDequeue(&v);
  EXPECT_TRUE(q.Empty());
}

TEST(SpscQueue, SizeConsumerTracksOccupancy) {
  SpscQueue<std::uint64_t> q(8);
  EXPECT_EQ(q.SizeConsumer(), 0u);
  q.TryEnqueue(1);
  q.TryEnqueue(2);
  EXPECT_EQ(q.SizeConsumer(), 2u);  // refreshes the cached tail
  std::uint64_t v;
  q.TryDequeue(&v);
  EXPECT_EQ(q.SizeConsumer(), 1u);
  q.TryDequeue(&v);
  EXPECT_EQ(q.SizeConsumer(), 0u);
}

TEST(SpscQueue, WraparoundManyTimes) {
  SpscQueue<std::uint64_t> q(4);
  std::uint64_t v;
  for (std::uint64_t round = 0; round < 1000; ++round) {
    EXPECT_TRUE(q.TryEnqueue(round));
    EXPECT_TRUE(q.TryEnqueue(round + 1000000));
    ASSERT_TRUE(q.TryDequeue(&v));
    EXPECT_EQ(v, round);
    ASSERT_TRUE(q.TryDequeue(&v));
    EXPECT_EQ(v, round + 1000000);
  }
  EXPECT_EQ(q.SizeRaw(), 0u);
}

TEST(SpscQueue, CapacityMustBePowerOfTwo) {
  EXPECT_DEATH(SpscQueue<std::uint64_t>(3), "CHECK");
  EXPECT_DEATH(SpscQueue<std::uint64_t>(0), "CHECK");
}

TEST(SpscQueue, NativeTwoThreadStress) {
  // Real producer/consumer threads: every value must arrive exactly once,
  // in order.
  constexpr std::uint64_t kN = 200000;
  SpscQueue<std::uint64_t> q(1024);
  hal::NativePlatform platform(2);
  bool ok = true;
  platform.Spawn(0, [&] {
    for (std::uint64_t i = 0; i < kN; ++i) {
      while (!q.TryEnqueue(i)) hal::CpuRelax();
    }
  });
  platform.Spawn(1, [&] {
    std::uint64_t expect = 0;
    while (expect < kN) {
      std::uint64_t v;
      if (q.TryDequeue(&v)) {
        if (v != expect) {
          ok = false;
          return;
        }
        expect++;
      } else {
        hal::CpuRelax();
      }
    }
  });
  platform.Run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(q.SizeRaw(), 0u);
}

TEST(SpscQueue, SimulatedProducerConsumer) {
  constexpr std::uint64_t kN = 2000;
  SpscQueue<std::uint64_t> q(64);
  hal::SimPlatform sim(2);
  std::uint64_t received = 0, sum = 0;
  sim.Spawn(0, [&] {
    for (std::uint64_t i = 1; i <= kN; ++i) {
      while (!q.TryEnqueue(i)) hal::CpuRelax();
      hal::ConsumeCycles(10);
    }
  });
  sim.Spawn(1, [&] {
    while (received < kN) {
      std::uint64_t v;
      if (q.TryDequeue(&v)) {
        received++;
        sum += v;
      } else {
        hal::CpuRelax();
      }
    }
  });
  sim.Run();
  EXPECT_EQ(received, kN);
  EXPECT_EQ(sum, kN * (kN + 1) / 2);
}

TEST(SpscQueue, SimulatedSteadyStatePollingIsCheap) {
  // Polling an idle queue should cost L1 hits, not remote transfers, once
  // the consumer's cached view is warm.
  hal::SimPlatform sim(1);
  SpscQueue<std::uint64_t> q(16);
  hal::Cycles cost = 0;
  sim.Spawn(0, [&] {
    std::uint64_t v;
    (void)q.TryDequeue(&v);  // warm the tail line
    const hal::Cycles t0 = hal::Now();
    for (int i = 0; i < 100; ++i) (void)q.TryDequeue(&v);
    cost = hal::Now() - t0;
  });
  sim.Run();
  EXPECT_LT(cost, 100 * 20);  // ~L1-hit scale per poll
}

// ------------------------------------------------------------- batched API

TEST(SpscQueueBatch, PushPopRoundTrip) {
  SpscQueue<std::uint64_t> q(64);
  std::uint64_t in[10], out[10];
  for (int i = 0; i < 10; ++i) in[i] = 100 + i;
  EXPECT_EQ(q.PushBatch(in, 10), 10u);
  EXPECT_EQ(q.SizeRaw(), 10u);
  EXPECT_EQ(q.PopBatch(out, 10), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(out[i], in[i]);
  EXPECT_EQ(q.SizeRaw(), 0u);
}

TEST(SpscQueueBatch, ZeroSizedBatchesAreNoops) {
  SpscQueue<std::uint64_t> q(8);
  std::uint64_t v = 7;
  EXPECT_EQ(q.PushBatch(&v, 0), 0u);
  EXPECT_EQ(q.PopBatch(&v, 0), 0u);
  EXPECT_EQ(q.SizeRaw(), 0u);
}

TEST(SpscQueueBatch, PartialPushWhenNearlyFull) {
  SpscQueue<std::uint64_t> q(8);
  std::uint64_t in[8];
  for (int i = 0; i < 8; ++i) in[i] = i;
  EXPECT_EQ(q.PushBatch(in, 6), 6u);
  // Only 2 slots remain: an 8-element batch is truncated.
  EXPECT_EQ(q.PushBatch(in, 8), 2u);
  // Ring full: next batch pushes nothing.
  EXPECT_EQ(q.PushBatch(in, 4), 0u);
  std::uint64_t out[8];
  EXPECT_EQ(q.PopBatch(out, 8), 8u);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(out[i], in[i]);
  EXPECT_EQ(out[6], in[0]);
  EXPECT_EQ(out[7], in[1]);
}

TEST(SpscQueueBatch, PartialPopWhenNearlyEmpty) {
  SpscQueue<std::uint64_t> q(16);
  std::uint64_t in[3] = {5, 6, 7};
  EXPECT_EQ(q.PushBatch(in, 3), 3u);
  std::uint64_t out[8];
  EXPECT_EQ(q.PopBatch(out, 8), 3u);  // fewer waiting than asked
  EXPECT_EQ(out[0], 5u);
  EXPECT_EQ(out[1], 6u);
  EXPECT_EQ(out[2], 7u);
  EXPECT_EQ(q.PopBatch(out, 8), 0u);  // empty
}

TEST(SpscQueueBatch, WraparoundAtCapacityBoundary) {
  // Offset the ring so every batch straddles the index wraparound point,
  // including rings both smaller and larger than one payload line.
  for (std::size_t cap : {4u, 8u, 16u, 64u}) {
    SpscQueue<std::uint64_t> q(cap);
    std::uint64_t v;
    // Leave the head/tail 3 short of a multiple of capacity.
    for (std::size_t i = 0; i + 3 < cap; ++i) {
      ASSERT_TRUE(q.TryEnqueue(i));
      ASSERT_TRUE(q.TryDequeue(&v));
    }
    std::uint64_t next = 1000;
    std::uint64_t expect = 1000;
    for (int round = 0; round < 200; ++round) {
      std::uint64_t in[4], out[4];
      for (int i = 0; i < 4; ++i) in[i] = next++;
      ASSERT_EQ(q.PushBatch(in, 4), 4u) << "cap=" << cap;
      std::size_t got = 0;
      while (got < 4) got += q.PopBatch(out + got, 4 - got);
      for (int i = 0; i < 4; ++i) ASSERT_EQ(out[i], expect++);
    }
    EXPECT_EQ(q.SizeRaw(), 0u);
  }
}

TEST(SpscQueueBatch, MixedBatchedAndUnbatchedInterleave) {
  SpscQueue<std::uint64_t> q(8);
  std::uint64_t in[4] = {1, 2, 3, 4};
  EXPECT_EQ(q.PushBatch(in, 4), 4u);
  EXPECT_TRUE(q.TryEnqueue(5));
  std::uint64_t v;
  ASSERT_TRUE(q.TryDequeue(&v));
  EXPECT_EQ(v, 1u);
  std::uint64_t out[8];
  EXPECT_EQ(q.PopBatch(out, 8), 4u);
  EXPECT_EQ(out[0], 2u);
  EXPECT_EQ(out[3], 5u);
}

TEST(SpscQueueBatch, NativeTwoThreadStress) {
  // Batched producer vs batched consumer with coprime batch sizes: every
  // value must arrive exactly once, in FIFO order.
  constexpr std::uint64_t kN = 300000;
  SpscQueue<std::uint64_t> q(256);
  hal::NativePlatform platform(2);
  bool ok = true;
  platform.Spawn(0, [&] {
    std::uint64_t buf[7];
    std::uint64_t next = 0;
    while (next < kN) {
      std::size_t n = 0;
      while (n < 7 && next + n < kN) {
        buf[n] = next + n;
        n++;
      }
      std::size_t pushed = 0;
      while (pushed < n) {
        const std::size_t k = q.PushBatch(buf + pushed, n - pushed);
        if (k == 0) hal::CpuRelax();
        pushed += k;
      }
      next += n;
    }
  });
  platform.Spawn(1, [&] {
    std::uint64_t buf[5];
    std::uint64_t expect = 0;
    while (expect < kN) {
      const std::size_t k = q.PopBatch(buf, 5);
      if (k == 0) {
        hal::CpuRelax();
        continue;
      }
      for (std::size_t i = 0; i < k; ++i) {
        if (buf[i] != expect) {
          ok = false;
          return;
        }
        expect++;
      }
    }
  });
  platform.Run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(q.SizeRaw(), 0u);
}

TEST(SpscQueueBatch, SimBatchedCostsFewerCyclesThanUnbatched) {
  // Same message count, same single core: the batched path publishes the
  // tail/head once per batch instead of once per message, so it must be
  // strictly cheaper in modeled cycles.
  constexpr int kMsgs = 64;
  const auto run = [](bool batched) {
    hal::SimPlatform sim(1);
    SpscQueue<std::uint64_t> q(128);
    hal::Cycles cost = 0;
    sim.Spawn(0, [&] {
      std::uint64_t buf[kMsgs];
      for (int i = 0; i < kMsgs; ++i) buf[i] = i;
      const hal::Cycles t0 = hal::Now();
      if (batched) {
        ASSERT_EQ(q.PushBatch(buf, kMsgs), static_cast<std::size_t>(kMsgs));
        ASSERT_EQ(q.PopBatch(buf, kMsgs), static_cast<std::size_t>(kMsgs));
      } else {
        for (int i = 0; i < kMsgs; ++i) ASSERT_TRUE(q.TryEnqueue(buf[i]));
        std::uint64_t v;
        for (int i = 0; i < kMsgs; ++i) ASSERT_TRUE(q.TryDequeue(&v));
      }
      cost = hal::Now() - t0;
    });
    sim.Run();
    return cost;
  };
  const hal::Cycles batched = run(true);
  const hal::Cycles unbatched = run(false);
  EXPECT_LT(batched, unbatched);
}

// --------------------------------------------------------------- QueueMesh

TEST(QueueMesh, RoutesPairsIndependently) {
  QueueMesh<std::uint64_t> mesh(3, 2, 16);
  EXPECT_EQ(mesh.senders(), 3);
  EXPECT_EQ(mesh.receivers(), 2);
  for (int s = 0; s < 3; ++s) {
    for (int r = 0; r < 2; ++r) {
      mesh.Send(s, r, static_cast<std::uint64_t>(10 * s + r));
    }
  }
  EXPECT_EQ(mesh.SizeRawTotal(), 6u);
  for (int r = 0; r < 2; ++r) {
    std::vector<std::uint64_t> got;
    mesh.Drain(r, [&](std::uint64_t v) { got.push_back(v); });
    ASSERT_EQ(got.size(), 3u);
    for (int s = 0; s < 3; ++s) {
      EXPECT_EQ(got[s], static_cast<std::uint64_t>(10 * s + r));
    }
  }
  EXPECT_EQ(mesh.SizeRawTotal(), 0u);
}

TEST(QueueMesh, DrainPreservesPerSenderFifo) {
  QueueMesh<std::uint64_t> mesh(2, 1, 64);
  for (std::uint64_t i = 0; i < 20; ++i) {
    mesh.Send(0, 0, i);
    mesh.Send(1, 0, 1000 + i);
  }
  std::vector<std::uint64_t> got;
  const std::size_t n = mesh.Drain(0, [&](std::uint64_t v) {
    got.push_back(v);
  });
  EXPECT_EQ(n, 40u);
  std::uint64_t expect0 = 0, expect1 = 1000;
  for (std::uint64_t v : got) {
    if (v < 1000) {
      EXPECT_EQ(v, expect0++);
    } else {
      EXPECT_EQ(v, expect1++);
    }
  }
  EXPECT_EQ(expect0, 20u);
  EXPECT_EQ(expect1, 1020u);
}

TEST(QueueMesh, UnbatchedDrainDeliversTheSameMessages) {
  QueueMesh<std::uint64_t> mesh(4, 1, 32);
  for (int s = 0; s < 4; ++s) {
    for (std::uint64_t i = 0; i < 9; ++i) mesh.Send(s, 0, s * 100 + i);
  }
  std::vector<std::uint64_t> got;
  const std::size_t n = mesh.Drain(
      0, [&](std::uint64_t v) { got.push_back(v); }, /*max_batch=*/1);
  EXPECT_EQ(n, 36u);
  std::size_t idx = 0;
  for (std::uint64_t s = 0; s < 4; ++s) {
    for (std::uint64_t i = 0; i < 9; ++i) {
      EXPECT_EQ(got[idx++], s * 100 + i);
    }
  }
}

TEST(QueueMesh, AdaptiveDrainServesDeepestQueueFirst) {
  // Sender depths 2 / 5 / 3: deepest-first delivery must visit sender 1,
  // then sender 2, then sender 0, preserving per-sender FIFO within each.
  QueueMesh<std::uint64_t> mesh(3, 1, 16);
  const std::size_t depth[3] = {2, 5, 3};
  for (int s = 0; s < 3; ++s) {
    for (std::size_t i = 0; i < depth[s]; ++i) {
      mesh.Send(s, 0, static_cast<std::uint64_t>(s) * 100 + i);
    }
  }
  std::vector<std::uint64_t> got;
  const std::size_t n = mesh.Drain(
      0, [&](std::uint64_t v) { got.push_back(v); },
      QueueMesh<std::uint64_t>::kDefaultBatch, DrainOrder::kDeepestFirst);
  EXPECT_EQ(n, 10u);
  std::vector<std::uint64_t> want;
  for (std::uint64_t i = 0; i < 5; ++i) want.push_back(100 + i);
  for (std::uint64_t i = 0; i < 3; ++i) want.push_back(200 + i);
  for (std::uint64_t i = 0; i < 2; ++i) want.push_back(i);
  EXPECT_EQ(got, want);
  EXPECT_EQ(mesh.SizeRawTotal(), 0u);
}

TEST(QueueMesh, AdaptiveDrainBreaksDepthTiesBySenderId) {
  // Equal depths must fall back to ascending sender order so the adaptive
  // drain stays deterministic.
  QueueMesh<std::uint64_t> mesh(4, 1, 16);
  for (int s = 3; s >= 0; --s) {
    mesh.Send(s, 0, static_cast<std::uint64_t>(s) * 10);
    mesh.Send(s, 0, static_cast<std::uint64_t>(s) * 10 + 1);
  }
  std::vector<std::uint64_t> got;
  mesh.Drain(
      0, [&](std::uint64_t v) { got.push_back(v); },
      QueueMesh<std::uint64_t>::kDefaultBatch, DrainOrder::kDeepestFirst);
  const std::vector<std::uint64_t> want = {0, 1, 10, 11, 20, 21, 30, 31};
  EXPECT_EQ(got, want);
}

TEST(QueueMesh, AdaptiveDrainDeliversEverythingUnderStress) {
  // Skewed native-thread fan-in: adaptivity must never lose, duplicate, or
  // reorder messages within a sender.
  constexpr int kSenders = 3;
  constexpr std::uint64_t kPer = 30000;
  QueueMesh<std::uint64_t> mesh(kSenders, 1, 128);
  hal::NativePlatform platform(kSenders + 1);
  for (int s = 0; s < kSenders; ++s) {
    platform.Spawn(s, [&mesh, s] {
      // Skew: sender s sends (s+1)/3 of the heaviest stream.
      const std::uint64_t mine = kPer * (s + 1) / kSenders;
      for (std::uint64_t i = 0; i < mine; ++i) {
        mesh.Send(s, 0, static_cast<std::uint64_t>(s) * kPer + i);
      }
    });
  }
  std::uint64_t total = 0;
  for (int s = 0; s < kSenders; ++s) total += kPer * (s + 1) / kSenders;
  std::uint64_t received = 0;
  std::uint64_t next_from[kSenders] = {0, 0, 0};
  bool ok = true;
  platform.Spawn(kSenders, [&] {
    while (received < total) {
      const std::size_t n = mesh.Drain(
          0,
          [&](std::uint64_t v) {
            const int s = static_cast<int>(v / kPer);
            if (s >= kSenders || v % kPer != next_from[s]) ok = false;
            next_from[s]++;
          },
          QueueMesh<std::uint64_t>::kDefaultBatch,
          DrainOrder::kDeepestFirst);
      received += n;
      if (n == 0) hal::CpuRelax();
    }
  });
  platform.Run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(received, total);
  EXPECT_EQ(mesh.SizeRawTotal(), 0u);
}

TEST(QueueMesh, NativeManyToOneStress) {
  // Three producers, one consumer draining through the mesh: per-sender
  // FIFO with nothing lost or duplicated.
  constexpr int kSenders = 3;
  constexpr std::uint64_t kPer = 50000;
  QueueMesh<std::uint64_t> mesh(kSenders, 1, 128);
  hal::NativePlatform platform(kSenders + 1);
  for (int s = 0; s < kSenders; ++s) {
    platform.Spawn(s, [&mesh, s] {
      for (std::uint64_t i = 0; i < kPer; ++i) {
        mesh.Send(s, 0, static_cast<std::uint64_t>(s) * kPer + i);
      }
    });
  }
  std::uint64_t received = 0;
  std::uint64_t next_from[kSenders] = {0, 0, 0};
  bool ok = true;
  platform.Spawn(kSenders, [&] {
    while (received < kSenders * kPer) {
      const std::size_t n = mesh.Drain(0, [&](std::uint64_t v) {
        const int s = static_cast<int>(v / kPer);
        if (s >= kSenders || v % kPer != next_from[s]) ok = false;
        next_from[s]++;
      });
      received += n;
      if (n == 0) hal::CpuRelax();
    }
  });
  platform.Run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(received, kSenders * kPer);
  EXPECT_EQ(mesh.SizeRawTotal(), 0u);
}

}  // namespace
}  // namespace orthrus::mp
