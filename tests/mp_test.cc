// Tests for the latch-free SPSC queue: FIFO order, capacity behaviour,
// wraparound, and true-concurrency stress on the native platform.
#include <vector>

#include <gtest/gtest.h>

#include "hal/native_platform.h"
#include "hal/sim_platform.h"
#include "mp/spsc_queue.h"

namespace orthrus::mp {
namespace {

TEST(SpscQueue, FifoOrder) {
  SpscQueue<std::uint64_t> q(8);
  for (std::uint64_t i = 1; i <= 5; ++i) EXPECT_TRUE(q.TryEnqueue(i));
  std::uint64_t v;
  for (std::uint64_t i = 1; i <= 5; ++i) {
    ASSERT_TRUE(q.TryDequeue(&v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(q.TryDequeue(&v));
}

TEST(SpscQueue, FullRejectsEnqueue) {
  SpscQueue<std::uint64_t> q(4);
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_TRUE(q.TryEnqueue(i));
  EXPECT_FALSE(q.TryEnqueue(99));
  std::uint64_t v;
  EXPECT_TRUE(q.TryDequeue(&v));
  EXPECT_TRUE(q.TryEnqueue(99));  // space freed
}

TEST(SpscQueue, EmptyProbe) {
  SpscQueue<std::uint64_t> q(4);
  EXPECT_TRUE(q.Empty());
  q.TryEnqueue(1);
  EXPECT_FALSE(q.Empty());
  std::uint64_t v;
  q.TryDequeue(&v);
  EXPECT_TRUE(q.Empty());
}

TEST(SpscQueue, WraparoundManyTimes) {
  SpscQueue<std::uint64_t> q(4);
  std::uint64_t v;
  for (std::uint64_t round = 0; round < 1000; ++round) {
    EXPECT_TRUE(q.TryEnqueue(round));
    EXPECT_TRUE(q.TryEnqueue(round + 1000000));
    ASSERT_TRUE(q.TryDequeue(&v));
    EXPECT_EQ(v, round);
    ASSERT_TRUE(q.TryDequeue(&v));
    EXPECT_EQ(v, round + 1000000);
  }
  EXPECT_EQ(q.SizeRaw(), 0u);
}

TEST(SpscQueue, CapacityMustBePowerOfTwo) {
  EXPECT_DEATH(SpscQueue<std::uint64_t>(3), "CHECK");
}

TEST(SpscQueue, NativeTwoThreadStress) {
  // Real producer/consumer threads: every value must arrive exactly once,
  // in order.
  constexpr std::uint64_t kN = 200000;
  SpscQueue<std::uint64_t> q(1024);
  hal::NativePlatform platform(2);
  bool ok = true;
  platform.Spawn(0, [&] {
    for (std::uint64_t i = 0; i < kN; ++i) {
      while (!q.TryEnqueue(i)) hal::CpuRelax();
    }
  });
  platform.Spawn(1, [&] {
    std::uint64_t expect = 0;
    while (expect < kN) {
      std::uint64_t v;
      if (q.TryDequeue(&v)) {
        if (v != expect) {
          ok = false;
          return;
        }
        expect++;
      } else {
        hal::CpuRelax();
      }
    }
  });
  platform.Run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(q.SizeRaw(), 0u);
}

TEST(SpscQueue, SimulatedProducerConsumer) {
  constexpr std::uint64_t kN = 2000;
  SpscQueue<std::uint64_t> q(64);
  hal::SimPlatform sim(2);
  std::uint64_t received = 0, sum = 0;
  sim.Spawn(0, [&] {
    for (std::uint64_t i = 1; i <= kN; ++i) {
      while (!q.TryEnqueue(i)) hal::CpuRelax();
      hal::ConsumeCycles(10);
    }
  });
  sim.Spawn(1, [&] {
    while (received < kN) {
      std::uint64_t v;
      if (q.TryDequeue(&v)) {
        received++;
        sum += v;
      } else {
        hal::CpuRelax();
      }
    }
  });
  sim.Run();
  EXPECT_EQ(received, kN);
  EXPECT_EQ(sum, kN * (kN + 1) / 2);
}

TEST(SpscQueue, SimulatedSteadyStatePollingIsCheap) {
  // Polling an idle queue should cost L1 hits, not remote transfers, once
  // the consumer's cached view is warm.
  hal::SimPlatform sim(1);
  SpscQueue<std::uint64_t> q(16);
  hal::Cycles cost = 0;
  sim.Spawn(0, [&] {
    std::uint64_t v;
    (void)q.TryDequeue(&v);  // warm the tail line
    const hal::Cycles t0 = hal::Now();
    for (int i = 0; i < 100; ++i) (void)q.TryDequeue(&v);
    cost = hal::Now() - t0;
  });
  sim.Run();
  EXPECT_LT(cost, 100 * 20);  // ~L1-hit scale per poll
}

}  // namespace
}  // namespace orthrus::mp
