// Tests for the message-passing layer: the latch-free SPSC queue (FIFO
// order, capacity behaviour, wraparound, batched push/pop, and
// true-concurrency stress on the native platform), the CAS-reserved MPSC
// queue and its MultiMesh (dynamic sender populations), the QueueMesh that
// wires full sender x receiver matrices of queues, and the sender-side
// SendBuffer coalescing layer.
#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "hal/native_platform.h"
#include "hal/sim_platform.h"
#include "mp/mpsc_queue.h"
#include "mp/multi_mesh.h"
#include "mp/queue_mesh.h"
#include "mp/send_buffer.h"
#include "mp/spsc_queue.h"

namespace orthrus::mp {
namespace {

TEST(SpscQueue, FifoOrder) {
  SpscQueue<std::uint64_t> q(8);
  for (std::uint64_t i = 1; i <= 5; ++i) EXPECT_TRUE(q.TryEnqueue(i));
  std::uint64_t v;
  for (std::uint64_t i = 1; i <= 5; ++i) {
    ASSERT_TRUE(q.TryDequeue(&v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(q.TryDequeue(&v));
}

TEST(SpscQueue, FullRejectsEnqueue) {
  SpscQueue<std::uint64_t> q(4);
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_TRUE(q.TryEnqueue(i));
  EXPECT_FALSE(q.TryEnqueue(99));
  std::uint64_t v;
  EXPECT_TRUE(q.TryDequeue(&v));
  EXPECT_TRUE(q.TryEnqueue(99));  // space freed
}

TEST(SpscQueue, EmptyProbe) {
  SpscQueue<std::uint64_t> q(4);
  EXPECT_TRUE(q.Empty());
  q.TryEnqueue(1);
  EXPECT_FALSE(q.Empty());
  std::uint64_t v;
  q.TryDequeue(&v);
  EXPECT_TRUE(q.Empty());
}

TEST(SpscQueue, SizeConsumerTracksOccupancy) {
  SpscQueue<std::uint64_t> q(8);
  EXPECT_EQ(q.SizeConsumer(), 0u);
  q.TryEnqueue(1);
  q.TryEnqueue(2);
  EXPECT_EQ(q.SizeConsumer(), 2u);  // refreshes the cached tail
  std::uint64_t v;
  q.TryDequeue(&v);
  EXPECT_EQ(q.SizeConsumer(), 1u);
  q.TryDequeue(&v);
  EXPECT_EQ(q.SizeConsumer(), 0u);
}

TEST(SpscQueue, WraparoundManyTimes) {
  SpscQueue<std::uint64_t> q(4);
  std::uint64_t v;
  for (std::uint64_t round = 0; round < 1000; ++round) {
    EXPECT_TRUE(q.TryEnqueue(round));
    EXPECT_TRUE(q.TryEnqueue(round + 1000000));
    ASSERT_TRUE(q.TryDequeue(&v));
    EXPECT_EQ(v, round);
    ASSERT_TRUE(q.TryDequeue(&v));
    EXPECT_EQ(v, round + 1000000);
  }
  EXPECT_EQ(q.SizeRaw(), 0u);
}

TEST(SpscQueue, CapacityMustBePowerOfTwo) {
  EXPECT_DEATH(SpscQueue<std::uint64_t>(3), "CHECK");
  EXPECT_DEATH(SpscQueue<std::uint64_t>(0), "CHECK");
}

TEST(SpscQueue, NativeTwoThreadStress) {
  // Real producer/consumer threads: every value must arrive exactly once,
  // in order.
  constexpr std::uint64_t kN = 200000;
  SpscQueue<std::uint64_t> q(1024);
  hal::NativePlatform platform(2);
  bool ok = true;
  platform.Spawn(0, [&] {
    for (std::uint64_t i = 0; i < kN; ++i) {
      while (!q.TryEnqueue(i)) hal::CpuRelax();
    }
  });
  platform.Spawn(1, [&] {
    std::uint64_t expect = 0;
    while (expect < kN) {
      std::uint64_t v;
      if (q.TryDequeue(&v)) {
        if (v != expect) {
          ok = false;
          return;
        }
        expect++;
      } else {
        hal::CpuRelax();
      }
    }
  });
  platform.Run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(q.SizeRaw(), 0u);
}

TEST(SpscQueue, SimulatedProducerConsumer) {
  constexpr std::uint64_t kN = 2000;
  SpscQueue<std::uint64_t> q(64);
  hal::SimPlatform sim(2);
  std::uint64_t received = 0, sum = 0;
  sim.Spawn(0, [&] {
    for (std::uint64_t i = 1; i <= kN; ++i) {
      while (!q.TryEnqueue(i)) hal::CpuRelax();
      hal::ConsumeCycles(10);
    }
  });
  sim.Spawn(1, [&] {
    while (received < kN) {
      std::uint64_t v;
      if (q.TryDequeue(&v)) {
        received++;
        sum += v;
      } else {
        hal::CpuRelax();
      }
    }
  });
  sim.Run();
  EXPECT_EQ(received, kN);
  EXPECT_EQ(sum, kN * (kN + 1) / 2);
}

TEST(SpscQueue, SimulatedSteadyStatePollingIsCheap) {
  // Polling an idle queue should cost L1 hits, not remote transfers, once
  // the consumer's cached view is warm.
  hal::SimPlatform sim(1);
  SpscQueue<std::uint64_t> q(16);
  hal::Cycles cost = 0;
  sim.Spawn(0, [&] {
    std::uint64_t v;
    (void)q.TryDequeue(&v);  // warm the tail line
    const hal::Cycles t0 = hal::Now();
    for (int i = 0; i < 100; ++i) (void)q.TryDequeue(&v);
    cost = hal::Now() - t0;
  });
  sim.Run();
  EXPECT_LT(cost, 100 * 20);  // ~L1-hit scale per poll
}

// ------------------------------------------------------------- batched API

TEST(SpscQueueBatch, PushPopRoundTrip) {
  SpscQueue<std::uint64_t> q(64);
  std::uint64_t in[10], out[10];
  for (int i = 0; i < 10; ++i) in[i] = 100 + i;
  EXPECT_EQ(q.PushBatch(in, 10), 10u);
  EXPECT_EQ(q.SizeRaw(), 10u);
  EXPECT_EQ(q.PopBatch(out, 10), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(out[i], in[i]);
  EXPECT_EQ(q.SizeRaw(), 0u);
}

TEST(SpscQueueBatch, ZeroSizedBatchesAreNoops) {
  SpscQueue<std::uint64_t> q(8);
  std::uint64_t v = 7;
  EXPECT_EQ(q.PushBatch(&v, 0), 0u);
  EXPECT_EQ(q.PopBatch(&v, 0), 0u);
  EXPECT_EQ(q.SizeRaw(), 0u);
}

TEST(SpscQueueBatch, PartialPushWhenNearlyFull) {
  SpscQueue<std::uint64_t> q(8);
  std::uint64_t in[8];
  for (int i = 0; i < 8; ++i) in[i] = i;
  EXPECT_EQ(q.PushBatch(in, 6), 6u);
  // Only 2 slots remain: an 8-element batch is truncated.
  EXPECT_EQ(q.PushBatch(in, 8), 2u);
  // Ring full: next batch pushes nothing.
  EXPECT_EQ(q.PushBatch(in, 4), 0u);
  std::uint64_t out[8];
  EXPECT_EQ(q.PopBatch(out, 8), 8u);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(out[i], in[i]);
  EXPECT_EQ(out[6], in[0]);
  EXPECT_EQ(out[7], in[1]);
}

TEST(SpscQueueBatch, PartialPopWhenNearlyEmpty) {
  SpscQueue<std::uint64_t> q(16);
  std::uint64_t in[3] = {5, 6, 7};
  EXPECT_EQ(q.PushBatch(in, 3), 3u);
  std::uint64_t out[8];
  EXPECT_EQ(q.PopBatch(out, 8), 3u);  // fewer waiting than asked
  EXPECT_EQ(out[0], 5u);
  EXPECT_EQ(out[1], 6u);
  EXPECT_EQ(out[2], 7u);
  EXPECT_EQ(q.PopBatch(out, 8), 0u);  // empty
}

TEST(SpscQueueBatch, WraparoundAtCapacityBoundary) {
  // Offset the ring so every batch straddles the index wraparound point,
  // including rings both smaller and larger than one payload line.
  for (std::size_t cap : {4u, 8u, 16u, 64u}) {
    SpscQueue<std::uint64_t> q(cap);
    std::uint64_t v;
    // Leave the head/tail 3 short of a multiple of capacity.
    for (std::size_t i = 0; i + 3 < cap; ++i) {
      ASSERT_TRUE(q.TryEnqueue(i));
      ASSERT_TRUE(q.TryDequeue(&v));
    }
    std::uint64_t next = 1000;
    std::uint64_t expect = 1000;
    for (int round = 0; round < 200; ++round) {
      std::uint64_t in[4], out[4];
      for (int i = 0; i < 4; ++i) in[i] = next++;
      ASSERT_EQ(q.PushBatch(in, 4), 4u) << "cap=" << cap;
      std::size_t got = 0;
      while (got < 4) got += q.PopBatch(out + got, 4 - got);
      for (int i = 0; i < 4; ++i) ASSERT_EQ(out[i], expect++);
    }
    EXPECT_EQ(q.SizeRaw(), 0u);
  }
}

TEST(SpscQueueBatch, MixedBatchedAndUnbatchedInterleave) {
  SpscQueue<std::uint64_t> q(8);
  std::uint64_t in[4] = {1, 2, 3, 4};
  EXPECT_EQ(q.PushBatch(in, 4), 4u);
  EXPECT_TRUE(q.TryEnqueue(5));
  std::uint64_t v;
  ASSERT_TRUE(q.TryDequeue(&v));
  EXPECT_EQ(v, 1u);
  std::uint64_t out[8];
  EXPECT_EQ(q.PopBatch(out, 8), 4u);
  EXPECT_EQ(out[0], 2u);
  EXPECT_EQ(out[3], 5u);
}

TEST(SpscQueueBatch, NativeTwoThreadStress) {
  // Batched producer vs batched consumer with coprime batch sizes: every
  // value must arrive exactly once, in FIFO order.
  constexpr std::uint64_t kN = 300000;
  SpscQueue<std::uint64_t> q(256);
  hal::NativePlatform platform(2);
  bool ok = true;
  platform.Spawn(0, [&] {
    std::uint64_t buf[7];
    std::uint64_t next = 0;
    while (next < kN) {
      std::size_t n = 0;
      while (n < 7 && next + n < kN) {
        buf[n] = next + n;
        n++;
      }
      std::size_t pushed = 0;
      while (pushed < n) {
        const std::size_t k = q.PushBatch(buf + pushed, n - pushed);
        if (k == 0) hal::CpuRelax();
        pushed += k;
      }
      next += n;
    }
  });
  platform.Spawn(1, [&] {
    std::uint64_t buf[5];
    std::uint64_t expect = 0;
    while (expect < kN) {
      const std::size_t k = q.PopBatch(buf, 5);
      if (k == 0) {
        hal::CpuRelax();
        continue;
      }
      for (std::size_t i = 0; i < k; ++i) {
        if (buf[i] != expect) {
          ok = false;
          return;
        }
        expect++;
      }
    }
  });
  platform.Run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(q.SizeRaw(), 0u);
}

TEST(SpscQueueBatch, SimBatchedCostsFewerCyclesThanUnbatched) {
  // Same message count, same single core: the batched path publishes the
  // tail/head once per batch instead of once per message, so it must be
  // strictly cheaper in modeled cycles.
  constexpr int kMsgs = 64;
  const auto run = [](bool batched) {
    hal::SimPlatform sim(1);
    SpscQueue<std::uint64_t> q(128);
    hal::Cycles cost = 0;
    sim.Spawn(0, [&] {
      std::uint64_t buf[kMsgs];
      for (int i = 0; i < kMsgs; ++i) buf[i] = i;
      const hal::Cycles t0 = hal::Now();
      if (batched) {
        ASSERT_EQ(q.PushBatch(buf, kMsgs), static_cast<std::size_t>(kMsgs));
        ASSERT_EQ(q.PopBatch(buf, kMsgs), static_cast<std::size_t>(kMsgs));
      } else {
        for (int i = 0; i < kMsgs; ++i) ASSERT_TRUE(q.TryEnqueue(buf[i]));
        std::uint64_t v;
        for (int i = 0; i < kMsgs; ++i) ASSERT_TRUE(q.TryDequeue(&v));
      }
      cost = hal::Now() - t0;
    });
    sim.Run();
    return cost;
  };
  const hal::Cycles batched = run(true);
  const hal::Cycles unbatched = run(false);
  EXPECT_LT(batched, unbatched);
}

// --------------------------------------------------------------- QueueMesh

TEST(QueueMesh, RoutesPairsIndependently) {
  QueueMesh<std::uint64_t> mesh(3, 2, 16);
  EXPECT_EQ(mesh.senders(), 3);
  EXPECT_EQ(mesh.receivers(), 2);
  for (int s = 0; s < 3; ++s) {
    for (int r = 0; r < 2; ++r) {
      mesh.Send(s, r, static_cast<std::uint64_t>(10 * s + r));
    }
  }
  EXPECT_EQ(mesh.SizeRawTotal(), 6u);
  for (int r = 0; r < 2; ++r) {
    std::vector<std::uint64_t> got;
    mesh.Drain(r, [&](std::uint64_t v) { got.push_back(v); });
    ASSERT_EQ(got.size(), 3u);
    for (int s = 0; s < 3; ++s) {
      EXPECT_EQ(got[s], static_cast<std::uint64_t>(10 * s + r));
    }
  }
  EXPECT_EQ(mesh.SizeRawTotal(), 0u);
}

TEST(QueueMesh, DrainPreservesPerSenderFifo) {
  QueueMesh<std::uint64_t> mesh(2, 1, 64);
  for (std::uint64_t i = 0; i < 20; ++i) {
    mesh.Send(0, 0, i);
    mesh.Send(1, 0, 1000 + i);
  }
  std::vector<std::uint64_t> got;
  const std::size_t n = mesh.Drain(0, [&](std::uint64_t v) {
    got.push_back(v);
  });
  EXPECT_EQ(n, 40u);
  std::uint64_t expect0 = 0, expect1 = 1000;
  for (std::uint64_t v : got) {
    if (v < 1000) {
      EXPECT_EQ(v, expect0++);
    } else {
      EXPECT_EQ(v, expect1++);
    }
  }
  EXPECT_EQ(expect0, 20u);
  EXPECT_EQ(expect1, 1020u);
}

TEST(QueueMesh, UnbatchedDrainDeliversTheSameMessages) {
  QueueMesh<std::uint64_t> mesh(4, 1, 32);
  for (int s = 0; s < 4; ++s) {
    for (std::uint64_t i = 0; i < 9; ++i) mesh.Send(s, 0, s * 100 + i);
  }
  std::vector<std::uint64_t> got;
  const std::size_t n = mesh.Drain(
      0, [&](std::uint64_t v) { got.push_back(v); }, /*max_batch=*/1);
  EXPECT_EQ(n, 36u);
  std::size_t idx = 0;
  for (std::uint64_t s = 0; s < 4; ++s) {
    for (std::uint64_t i = 0; i < 9; ++i) {
      EXPECT_EQ(got[idx++], s * 100 + i);
    }
  }
}

TEST(QueueMesh, AdaptiveDrainServesDeepestQueueFirst) {
  // Sender depths 2 / 5 / 3: deepest-first delivery must visit sender 1,
  // then sender 2, then sender 0, preserving per-sender FIFO within each.
  QueueMesh<std::uint64_t> mesh(3, 1, 16);
  const std::size_t depth[3] = {2, 5, 3};
  for (int s = 0; s < 3; ++s) {
    for (std::size_t i = 0; i < depth[s]; ++i) {
      mesh.Send(s, 0, static_cast<std::uint64_t>(s) * 100 + i);
    }
  }
  std::vector<std::uint64_t> got;
  const std::size_t n = mesh.Drain(
      0, [&](std::uint64_t v) { got.push_back(v); },
      QueueMesh<std::uint64_t>::kDefaultBatch, DrainOrder::kDeepestFirst);
  EXPECT_EQ(n, 10u);
  std::vector<std::uint64_t> want;
  for (std::uint64_t i = 0; i < 5; ++i) want.push_back(100 + i);
  for (std::uint64_t i = 0; i < 3; ++i) want.push_back(200 + i);
  for (std::uint64_t i = 0; i < 2; ++i) want.push_back(i);
  EXPECT_EQ(got, want);
  EXPECT_EQ(mesh.SizeRawTotal(), 0u);
}

TEST(QueueMesh, AdaptiveDrainBreaksDepthTiesBySenderId) {
  // Equal depths must fall back to ascending sender order so the adaptive
  // drain stays deterministic.
  QueueMesh<std::uint64_t> mesh(4, 1, 16);
  for (int s = 3; s >= 0; --s) {
    mesh.Send(s, 0, static_cast<std::uint64_t>(s) * 10);
    mesh.Send(s, 0, static_cast<std::uint64_t>(s) * 10 + 1);
  }
  std::vector<std::uint64_t> got;
  mesh.Drain(
      0, [&](std::uint64_t v) { got.push_back(v); },
      QueueMesh<std::uint64_t>::kDefaultBatch, DrainOrder::kDeepestFirst);
  const std::vector<std::uint64_t> want = {0, 1, 10, 11, 20, 21, 30, 31};
  EXPECT_EQ(got, want);
}

TEST(QueueMesh, AdaptiveDrainDeliversEverythingUnderStress) {
  // Skewed native-thread fan-in: adaptivity must never lose, duplicate, or
  // reorder messages within a sender.
  constexpr int kSenders = 3;
  constexpr std::uint64_t kPer = 30000;
  QueueMesh<std::uint64_t> mesh(kSenders, 1, 128);
  hal::NativePlatform platform(kSenders + 1);
  for (int s = 0; s < kSenders; ++s) {
    platform.Spawn(s, [&mesh, s] {
      // Skew: sender s sends (s+1)/3 of the heaviest stream.
      const std::uint64_t mine = kPer * (s + 1) / kSenders;
      for (std::uint64_t i = 0; i < mine; ++i) {
        mesh.Send(s, 0, static_cast<std::uint64_t>(s) * kPer + i);
      }
    });
  }
  std::uint64_t total = 0;
  for (int s = 0; s < kSenders; ++s) total += kPer * (s + 1) / kSenders;
  std::uint64_t received = 0;
  std::uint64_t next_from[kSenders] = {0, 0, 0};
  bool ok = true;
  platform.Spawn(kSenders, [&] {
    while (received < total) {
      const std::size_t n = mesh.Drain(
          0,
          [&](std::uint64_t v) {
            const int s = static_cast<int>(v / kPer);
            if (s >= kSenders || v % kPer != next_from[s]) ok = false;
            next_from[s]++;
          },
          QueueMesh<std::uint64_t>::kDefaultBatch,
          DrainOrder::kDeepestFirst);
      received += n;
      if (n == 0) hal::CpuRelax();
    }
  });
  platform.Run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(received, total);
  EXPECT_EQ(mesh.SizeRawTotal(), 0u);
}

TEST(QueueMesh, NativeManyToOneStress) {
  // Three producers, one consumer draining through the mesh: per-sender
  // FIFO with nothing lost or duplicated.
  constexpr int kSenders = 3;
  constexpr std::uint64_t kPer = 50000;
  QueueMesh<std::uint64_t> mesh(kSenders, 1, 128);
  hal::NativePlatform platform(kSenders + 1);
  for (int s = 0; s < kSenders; ++s) {
    platform.Spawn(s, [&mesh, s] {
      for (std::uint64_t i = 0; i < kPer; ++i) {
        mesh.Send(s, 0, static_cast<std::uint64_t>(s) * kPer + i);
      }
    });
  }
  std::uint64_t received = 0;
  std::uint64_t next_from[kSenders] = {0, 0, 0};
  bool ok = true;
  platform.Spawn(kSenders, [&] {
    while (received < kSenders * kPer) {
      const std::size_t n = mesh.Drain(0, [&](std::uint64_t v) {
        const int s = static_cast<int>(v / kPer);
        if (s >= kSenders || v % kPer != next_from[s]) ok = false;
        next_from[s]++;
      });
      received += n;
      if (n == 0) hal::CpuRelax();
    }
  });
  platform.Run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(received, kSenders * kPer);
  EXPECT_EQ(mesh.SizeRawTotal(), 0u);
}

// ------------------------------------------------- Drain delivery semantics

// A zero max_batch used to clamp to 0 and silently deliver nothing forever,
// wedging any caller that loops until Drain makes progress. Release builds
// clamp up to 1; debug builds DCHECK the misuse loudly.
TEST(QueueMesh, DrainZeroMaxBatchStillDelivers) {
  QueueMesh<std::uint64_t> mesh(2, 1, 16);
  for (std::uint64_t i = 0; i < 5; ++i) mesh.Send(0, 0, i);
  mesh.Send(1, 0, 100);
#ifdef NDEBUG
  std::vector<std::uint64_t> got;
  const std::size_t n = mesh.Drain(
      0, [&](std::uint64_t v) { got.push_back(v); }, /*max_batch=*/0);
  EXPECT_EQ(n, 6u);
  const std::vector<std::uint64_t> want = {0, 1, 2, 3, 4, 100};
  EXPECT_EQ(got, want);
  EXPECT_EQ(mesh.SizeRawTotal(), 0u);
#else
  EXPECT_DEATH(mesh.Drain(0, [](std::uint64_t) {}, /*max_batch=*/0), "CHECK");
#endif
}

// Deepest-first used to skip senders whose queues were empty at snapshot
// time, so messages landing mid-drain could make one call deliver strictly
// less than the round-robin path. Both orders must now deliver the same
// multiset: every sender is visited at least once per call.
TEST(QueueMesh, DeepestFirstVisitsSnapshotEmptySenders) {
  const auto run = [](DrainOrder order) {
    QueueMesh<std::uint64_t> mesh(3, 1, 16);
    mesh.Send(1, 0, 101);
    mesh.Send(1, 0, 102);
    bool injected = false;
    std::vector<std::uint64_t> got;
    mesh.Drain(
        0,
        [&](std::uint64_t v) {
          if (!injected) {
            // Lands on sender 2, whose queue was empty at snapshot time.
            mesh.Send(2, 0, 777);
            injected = true;
          }
          got.push_back(v);
        },
        QueueMesh<std::uint64_t>::kDefaultBatch, order);
    return got;
  };
  std::vector<std::uint64_t> rr = run(DrainOrder::kRoundRobin);
  std::vector<std::uint64_t> df = run(DrainOrder::kDeepestFirst);
  std::sort(rr.begin(), rr.end());
  std::sort(df.begin(), df.end());
  const std::vector<std::uint64_t> want = {101, 102, 777};
  EXPECT_EQ(rr, want);
  EXPECT_EQ(df, want);
}

// ----------------------------------------------- measured-imbalance drain

TEST(QueueMesh, AdaptiveOrderKeepsSenderOrderWhenBalanced) {
  // Equal depths: max == mean, far below the kImbalanceRatio trigger, so
  // kAdaptive must serve plain sender order (and skip the sort).
  QueueMesh<std::uint64_t> mesh(3, 1, 16);
  for (int s = 2; s >= 0; --s) {
    mesh.Send(s, 0, static_cast<std::uint64_t>(s) * 10);
    mesh.Send(s, 0, static_cast<std::uint64_t>(s) * 10 + 1);
  }
  std::vector<std::uint64_t> got;
  mesh.Drain(
      0, [&](std::uint64_t v) { got.push_back(v); },
      QueueMesh<std::uint64_t>::kDefaultBatch, DrainOrder::kAdaptive);
  const std::vector<std::uint64_t> want = {0, 1, 10, 11, 20, 21};
  EXPECT_EQ(got, want);
  EXPECT_FALSE(mesh.LastDrainWasDeepest(0));
}

TEST(QueueMesh, AdaptiveOrderSkipsSortOnSparseSnapshots) {
  // One lone message among empty queues trivially satisfies the max/mean
  // ratio (the empties drag the mean toward zero) but reordering cannot
  // help — the trigger must not fire on it, nor on a single deep queue
  // with no competing sender.
  QueueMesh<std::uint64_t> mesh(16, 1, 16);
  mesh.Send(3, 0, 42);
  std::vector<std::uint64_t> got;
  mesh.Drain(
      0, [&](std::uint64_t v) { got.push_back(v); },
      QueueMesh<std::uint64_t>::kDefaultBatch, DrainOrder::kAdaptive);
  EXPECT_EQ(got, (std::vector<std::uint64_t>{42}));
  EXPECT_FALSE(mesh.LastDrainWasDeepest(0));

  for (std::uint64_t i = 0; i < 8; ++i) mesh.Send(5, 0, i);
  got.clear();
  mesh.Drain(
      0, [&](std::uint64_t v) { got.push_back(v); },
      QueueMesh<std::uint64_t>::kDefaultBatch, DrainOrder::kAdaptive);
  EXPECT_EQ(got.size(), 8u);
  EXPECT_FALSE(mesh.LastDrainWasDeepest(0));

  // Two active senders at nearly equal depths (4 vs 5) among 14 idle
  // ones: the mean is taken over the non-empty senders, so this is
  // balanced (5 < 2 * 4.5), not skewed — the 14 empties must not drag
  // the mean down and force a pointless sort.
  for (std::uint64_t i = 0; i < 4; ++i) mesh.Send(2, 0, i);
  for (std::uint64_t i = 0; i < 5; ++i) mesh.Send(9, 0, i);
  got.clear();
  mesh.Drain(
      0, [&](std::uint64_t v) { got.push_back(v); },
      QueueMesh<std::uint64_t>::kDefaultBatch, DrainOrder::kAdaptive);
  EXPECT_EQ(got.size(), 9u);
  EXPECT_FALSE(mesh.LastDrainWasDeepest(0));
}

TEST(QueueMesh, AdaptiveOrderGoesDeepestFirstWhenSkewed) {
  // Depths 1 / 8 / 1: max/mean = 2.4 >= kImbalanceRatio, so the snapshot
  // trips the trigger and sender 1 is served first.
  QueueMesh<std::uint64_t> mesh(3, 1, 16);
  mesh.Send(0, 0, 1);
  for (std::uint64_t i = 0; i < 8; ++i) mesh.Send(1, 0, 100 + i);
  mesh.Send(2, 0, 201);
  std::vector<std::uint64_t> got;
  const std::size_t n = mesh.Drain(
      0, [&](std::uint64_t v) { got.push_back(v); },
      QueueMesh<std::uint64_t>::kDefaultBatch, DrainOrder::kAdaptive);
  EXPECT_EQ(n, 10u);
  EXPECT_TRUE(mesh.LastDrainWasDeepest(0));
  std::vector<std::uint64_t> want;
  for (std::uint64_t i = 0; i < 8; ++i) want.push_back(100 + i);
  want.push_back(1);    // ties below the deepest fall back to sender order
  want.push_back(201);
  EXPECT_EQ(got, want);
}

// --------------------------------------------------------------- MpscQueue

TEST(MpscQueue, FifoOrderSingleProducer) {
  MpscQueue<std::uint64_t> q(8);
  for (std::uint64_t i = 1; i <= 5; ++i) EXPECT_TRUE(q.TryEnqueue(i));
  std::uint64_t v;
  for (std::uint64_t i = 1; i <= 5; ++i) {
    ASSERT_TRUE(q.TryDequeue(&v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(q.TryDequeue(&v));
}

TEST(MpscQueue, FullRejectsEnqueue) {
  MpscQueue<std::uint64_t> q(4);
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_TRUE(q.TryEnqueue(i));
  EXPECT_FALSE(q.TryEnqueue(99));
  std::uint64_t v;
  EXPECT_TRUE(q.TryDequeue(&v));
  EXPECT_TRUE(q.TryEnqueue(99));  // space freed
}

TEST(MpscQueue, PartialPushWhenNearlyFull) {
  MpscQueue<std::uint64_t> q(8);
  std::uint64_t in[8];
  for (int i = 0; i < 8; ++i) in[i] = i;
  EXPECT_EQ(q.PushBatch(in, 6), 6u);
  EXPECT_EQ(q.PushBatch(in, 8), 2u);  // only 2 slots remain
  EXPECT_EQ(q.PushBatch(in, 4), 0u);  // ring full
  std::uint64_t out[8];
  EXPECT_EQ(q.PopBatch(out, 8), 8u);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(out[i], in[i]);
  EXPECT_EQ(out[6], in[0]);
  EXPECT_EQ(out[7], in[1]);
}

TEST(MpscQueue, WraparoundManyTimes) {
  MpscQueue<std::uint64_t> q(4);
  std::uint64_t v;
  for (std::uint64_t round = 0; round < 1000; ++round) {
    EXPECT_TRUE(q.TryEnqueue(round));
    EXPECT_TRUE(q.TryEnqueue(round + 1000000));
    ASSERT_TRUE(q.TryDequeue(&v));
    EXPECT_EQ(v, round);
    ASSERT_TRUE(q.TryDequeue(&v));
    EXPECT_EQ(v, round + 1000000);
  }
  EXPECT_EQ(q.SizeRaw(), 0u);
}

TEST(MpscQueue, NativeMultiProducerStress) {
  // Four real producer threads sharing one ring: nothing lost, nothing
  // duplicated, and each producer's own stream arrives in its send order.
  constexpr int kProducers = 4;
  constexpr std::uint64_t kPer = 50000;
  MpscQueue<std::uint64_t> q(1024);
  hal::NativePlatform platform(kProducers + 1);
  for (int p = 0; p < kProducers; ++p) {
    platform.Spawn(p, [&q, p] {
      for (std::uint64_t i = 0; i < kPer; ++i) {
        while (!q.TryEnqueue(static_cast<std::uint64_t>(p) * kPer + i)) {
          hal::CpuRelax();
        }
      }
    });
  }
  std::uint64_t received = 0;
  std::uint64_t next_from[kProducers] = {0, 0, 0, 0};
  bool ok = true;
  platform.Spawn(kProducers, [&] {
    std::uint64_t buf[8];
    while (received < kProducers * kPer) {
      const std::size_t n = q.PopBatch(buf, 8);
      if (n == 0) {
        hal::CpuRelax();
        continue;
      }
      for (std::size_t i = 0; i < n; ++i) {
        const int p = static_cast<int>(buf[i] / kPer);
        if (p >= kProducers || buf[i] % kPer != next_from[p]) ok = false;
        next_from[p]++;
      }
      received += n;
    }
  });
  platform.Run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(received, kProducers * kPer);
  EXPECT_EQ(q.SizeRaw(), 0u);
}

TEST(MpscQueue, NativeBatchedProducersPublishInReservationOrder) {
  // Batched pushes from competing producers: each batch is contiguous in
  // the ring (the consumer never observes a torn or interleaved batch).
  constexpr int kProducers = 3;
  constexpr std::uint64_t kBatches = 20000;
  constexpr std::size_t kBatch = 5;
  MpscQueue<std::uint64_t> q(512);
  hal::NativePlatform platform(kProducers + 1);
  for (int p = 0; p < kProducers; ++p) {
    platform.Spawn(p, [&q, p] {
      std::uint64_t buf[kBatch];
      for (std::uint64_t b = 0; b < kBatches; ++b) {
        for (std::size_t i = 0; i < kBatch; ++i) {
          buf[i] = (static_cast<std::uint64_t>(p) << 32) | (b * kBatch + i);
        }
        std::size_t pushed = 0;
        while (pushed < kBatch) {
          const std::size_t k = q.PushBatch(buf + pushed, kBatch - pushed);
          if (k == 0) hal::CpuRelax();
          pushed += k;
        }
      }
    });
  }
  const std::uint64_t total = kProducers * kBatches * kBatch;
  std::uint64_t received = 0;
  std::uint64_t next_from[kProducers] = {0, 0, 0};
  bool ok = true;
  platform.Spawn(kProducers, [&] {
    std::uint64_t buf[8];
    while (received < total) {
      const std::size_t n = q.PopBatch(buf, 8);
      if (n == 0) {
        hal::CpuRelax();
        continue;
      }
      for (std::size_t i = 0; i < n; ++i) {
        const int p = static_cast<int>(buf[i] >> 32);
        const std::uint64_t seq = buf[i] & 0xFFFFFFFFull;
        if (p >= kProducers || seq != next_from[p]) ok = false;
        next_from[p]++;
      }
      received += n;
    }
  });
  platform.Run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(received, total);
}

TEST(MpscQueue, SimulatedProducersAreDeterministic) {
  const auto run = [] {
    hal::SimPlatform sim(3);
    MpscQueue<std::uint64_t> q(64);
    std::uint64_t sum = 0, received = 0;
    for (int p = 0; p < 2; ++p) {
      sim.Spawn(p, [&q, p] {
        for (std::uint64_t i = 1; i <= 500; ++i) {
          while (!q.TryEnqueue(static_cast<std::uint64_t>(p) * 1000 + i)) {
            hal::CpuRelax();
          }
          hal::ConsumeCycles(7 + 3 * static_cast<hal::Cycles>(p));
        }
      });
    }
    sim.Spawn(2, [&] {
      while (received < 1000) {
        std::uint64_t v;
        if (q.TryDequeue(&v)) {
          received++;
          sum += v;
        } else {
          hal::CpuRelax();
        }
      }
    });
    sim.Run();
    return sum;
  };
  const std::uint64_t a = run();
  const std::uint64_t b = run();
  EXPECT_EQ(a, b);
  // 500 values per producer: p=0 contributes sum 1..500, p=1 the same plus
  // 500 * 1000.
  const std::uint64_t per = 500ull * 501ull / 2;
  EXPECT_EQ(a, 2 * per + 500ull * 1000ull);
}

// --------------------------------------------------------------- MultiMesh

TEST(MultiMesh, RoutesReceiversIndependently) {
  MultiMesh<std::uint64_t> mesh(3, 16);
  EXPECT_EQ(mesh.receivers(), 3);
  for (int r = 0; r < 3; ++r) {
    mesh.Send(r, static_cast<std::uint64_t>(100 + r));
    mesh.Send(r, static_cast<std::uint64_t>(200 + r));
  }
  EXPECT_EQ(mesh.SizeRawTotal(), 6u);
  for (int r = 0; r < 3; ++r) {
    std::vector<std::uint64_t> got;
    const std::size_t n =
        mesh.Drain(r, [&](std::uint64_t v) { got.push_back(v); });
    EXPECT_EQ(n, 2u);
    const std::vector<std::uint64_t> want = {
        static_cast<std::uint64_t>(100 + r),
        static_cast<std::uint64_t>(200 + r)};
    EXPECT_EQ(got, want);
  }
  EXPECT_EQ(mesh.SizeRawTotal(), 0u);
}

TEST(MultiMesh, SenderRegisterRetireAccounting) {
  MultiMesh<std::uint64_t> mesh(2, 16);
  EXPECT_EQ(mesh.ActiveSendersRaw(), 0);
  EXPECT_EQ(mesh.RegisterSender(), 1);
  EXPECT_EQ(mesh.RegisterSender(), 2);
  EXPECT_EQ(mesh.ActiveSendersRaw(), 2);
  mesh.RetireSender();
  EXPECT_EQ(mesh.ActiveSendersRaw(), 1);
  // Re-registration after retire is the park/resume cycle.
  EXPECT_EQ(mesh.RegisterSender(), 2);
  mesh.RetireSender();
  mesh.RetireSender();
  EXPECT_EQ(mesh.ActiveSendersRaw(), 0);
  EXPECT_EQ(mesh.RegistrationsTotalRaw(), 3u);
  EXPECT_DEATH(mesh.RetireSender(), "CHECK");
}

// Register/retire churn mid-traffic on the deterministic simulator: three
// producer cores cycle through register -> send (staged through a
// MultiSendBuffer) -> flush-to-empty -> retire epochs while a consumer
// drains. Nothing may be lost or duplicated, per-logical-sender FIFO must
// hold, and the run must be bit-reproducible.
TEST(MultiMesh, SimChurnRegisterRetireDeliversExactly) {
  constexpr int kProducers = 3;
  constexpr int kWaves = 4;
  constexpr std::uint64_t kPer = 300;
  const auto run = [] {
    // Two shards for three producers: exercises the sharded fan-in path.
    MultiMesh<std::uint64_t> mesh(1, 256, /*shards=*/2);
    hal::SimPlatform sim(kProducers + 1);
    for (int p = 0; p < kProducers; ++p) {
      sim.Spawn(p, [&mesh, p] {
        for (int w = 0; w < kWaves; ++w) {
          mesh.RegisterSender();
          MultiSendBuffer<std::uint64_t> sb(&mesh, /*shard_hint=*/p);
          const std::uint64_t logical =
              static_cast<std::uint64_t>(p) * kWaves + w;
          for (std::uint64_t i = 0; i < kPer; ++i) {
            sb.Send(0, (logical << 32) | i);
            hal::ConsumeCycles(5 + 2 * static_cast<hal::Cycles>(p));
          }
          // Drain-to-empty before retiring: a retiring sender must never
          // strand staged lines.
          sb.FlushAll();
          ORTHRUS_CHECK(sb.Pending() == 0);
          mesh.RetireSender();
        }
      });
    }
    const std::uint64_t total = kProducers * kWaves * kPer;
    std::uint64_t received = 0;
    std::uint64_t order_digest = 14695981039346656037ull;
    std::uint64_t next_from[kProducers * kWaves] = {};
    bool ok = true;
    sim.Spawn(kProducers, [&] {
      while (received < total) {
        const std::size_t n = mesh.Drain(0, [&](std::uint64_t v) {
          const std::uint64_t logical = v >> 32;
          if (logical >= kProducers * kWaves ||
              (v & 0xFFFFFFFFull) != next_from[logical]) {
            ok = false;
          }
          next_from[logical]++;
          order_digest = (order_digest ^ v) * 1099511628211ull;
        });
        received += n;
        if (n == 0) hal::CpuRelax();
      }
    });
    sim.Run();
    EXPECT_TRUE(ok);
    EXPECT_EQ(received, total);
    EXPECT_EQ(mesh.SizeRawTotal(), 0u);
    EXPECT_EQ(mesh.ActiveSendersRaw(), 0);
    EXPECT_EQ(mesh.RegistrationsTotalRaw(),
              static_cast<std::uint64_t>(kProducers) * kWaves);
    return order_digest;
  };
  const std::uint64_t a = run();
  const std::uint64_t b = run();
  EXPECT_EQ(a, b);  // deterministic arrival order under the simulator
}

// Same churn protocol under true concurrency: native threads register,
// stage through MultiSendBuffer, flush to empty, retire, re-register.
TEST(MultiMesh, NativeChurnRegisterRetireStress) {
  constexpr int kThreads = 3;
  constexpr int kWaves = 5;
  constexpr std::uint64_t kPer = 8000;
  MultiMesh<std::uint64_t> mesh(1, 256, /*shards=*/2);
  hal::NativePlatform platform(kThreads + 1);
  for (int t = 0; t < kThreads; ++t) {
    platform.Spawn(t, [&mesh, t] {
      for (int w = 0; w < kWaves; ++w) {
        mesh.RegisterSender();
        MultiSendBuffer<std::uint64_t> sb(&mesh, /*shard_hint=*/t);
        const std::uint64_t logical =
            static_cast<std::uint64_t>(t) * kWaves + w;
        for (std::uint64_t i = 0; i < kPer; ++i) {
          sb.Send(0, (logical << 32) | i);
        }
        sb.FlushAll();
        ORTHRUS_CHECK(sb.Pending() == 0);
        mesh.RetireSender();
      }
    });
  }
  const std::uint64_t total = kThreads * kWaves * kPer;
  std::uint64_t received = 0;
  std::uint64_t next_from[kThreads * kWaves] = {};
  bool ok = true;
  platform.Spawn(kThreads, [&] {
    while (received < total) {
      const std::size_t n = mesh.Drain(0, [&](std::uint64_t v) {
        const std::uint64_t logical = v >> 32;
        if (logical >= kThreads * kWaves ||
            (v & 0xFFFFFFFFull) != next_from[logical]) {
          ok = false;
        }
        next_from[logical]++;
      });
      received += n;
      if (n == 0) hal::CpuRelax();
    }
  });
  platform.Run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(received, total);
  EXPECT_EQ(mesh.SizeRawTotal(), 0u);
  EXPECT_EQ(mesh.ActiveSendersRaw(), 0);
}

TEST(MultiMesh, NativeProducerChurnStress) {
  // The point of the MPSC mesh: logical senders come and go without any
  // mesh rebuild. Three threads each impersonate five successive logical
  // senders (15 distinct sender identities through a mesh that never knew
  // a sender count), and the consumer checks per-logical-sender FIFO.
  constexpr int kThreads = 3;
  constexpr int kWaves = 5;
  constexpr std::uint64_t kPer = 8000;
  MultiMesh<std::uint64_t> mesh(1, 256);
  hal::NativePlatform platform(kThreads + 1);
  for (int t = 0; t < kThreads; ++t) {
    platform.Spawn(t, [&mesh, t] {
      for (int w = 0; w < kWaves; ++w) {
        const std::uint64_t logical =
            static_cast<std::uint64_t>(t) * kWaves + w;
        for (std::uint64_t i = 0; i < kPer; ++i) {
          mesh.Send(0, (logical << 32) | i);
        }
      }
    });
  }
  const std::uint64_t total = kThreads * kWaves * kPer;
  std::uint64_t received = 0;
  std::uint64_t next_from[kThreads * kWaves] = {};
  bool ok = true;
  platform.Spawn(kThreads, [&] {
    while (received < total) {
      const std::size_t n = mesh.Drain(0, [&](std::uint64_t v) {
        const std::uint64_t logical = v >> 32;
        if (logical >= kThreads * kWaves ||
            (v & 0xFFFFFFFFull) != next_from[logical]) {
          ok = false;
        }
        next_from[logical]++;
      });
      received += n;
      if (n == 0) hal::CpuRelax();
    }
  });
  platform.Run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(received, total);
  EXPECT_EQ(mesh.SizeRawTotal(), 0u);
}

// -------------------------------------------------------------- SendBuffer

TEST(SendBuffer, StagesUntilFlushAll) {
  QueueMesh<std::uint64_t> mesh(1, 2, 32);
  SendBuffer<std::uint64_t> sb(&mesh, 0);
  sb.Send(0, 1);
  sb.Send(1, 2);
  sb.Send(0, 3);
  // Nothing visible to receivers until a flush.
  EXPECT_EQ(mesh.SizeRawTotal(), 0u);
  EXPECT_EQ(sb.Pending(), 3u);
  sb.FlushAll();
  EXPECT_EQ(sb.Pending(), 0u);
  EXPECT_EQ(mesh.SizeRawTotal(), 3u);
  std::vector<std::uint64_t> got0, got1;
  mesh.Drain(0, [&](std::uint64_t v) { got0.push_back(v); });
  mesh.Drain(1, [&](std::uint64_t v) { got1.push_back(v); });
  EXPECT_EQ(got0, (std::vector<std::uint64_t>{1, 3}));
  EXPECT_EQ(got1, (std::vector<std::uint64_t>{2}));
  // One publication per flushed pair.
  EXPECT_EQ(sb.messages(), 3u);
  EXPECT_EQ(sb.publications(), 2u);
}

TEST(SendBuffer, AutoFlushesWhenStageFills) {
  QueueMesh<std::uint64_t> mesh(1, 1, 64);
  SendBuffer<std::uint64_t> sb(&mesh, 0);
  const std::size_t stage = sb.stage_capacity();
  EXPECT_EQ(stage, SpscQueue<std::uint64_t>::kMsgsPerLine);
  for (std::size_t i = 0; i < stage - 1; ++i) {
    sb.Send(0, i);
    EXPECT_EQ(mesh.SizeRawTotal(), 0u);
  }
  sb.Send(0, stage - 1);  // fills the stage: flushes without FlushAll
  EXPECT_EQ(mesh.SizeRawTotal(), stage);
  EXPECT_EQ(sb.Pending(), 0u);
  EXPECT_EQ(sb.publications(), 1u);
}

TEST(SendBuffer, CoalescingPublishesFewerTailIndices) {
  // The acceptance bar for sender-side coalescing: at kMsgsPerLine-sized
  // bursts the coalesced sender publishes its tail >= 4x less often than
  // the per-message baseline (stage capacity 1, which degrades to exactly
  // QueueMesh::Send behaviour: one publication per message).
  constexpr std::size_t kBurst = SpscQueue<std::uint64_t>::kMsgsPerLine;
  constexpr int kBursts = 64;
  const auto publications = [](std::size_t stage_capacity) {
    QueueMesh<std::uint64_t> mesh(1, 1, 256);
    SendBuffer<std::uint64_t> sb(&mesh, 0, stage_capacity);
    std::uint64_t sink = 0;
    for (int b = 0; b < kBursts; ++b) {
      for (std::size_t i = 0; i < kBurst; ++i) {
        sb.Send(0, static_cast<std::uint64_t>(b) * kBurst + i);
      }
      sb.FlushAll();
      mesh.Drain(0, [&sink](std::uint64_t v) { sink += v; });
    }
    EXPECT_EQ(sb.messages(), static_cast<std::uint64_t>(kBursts) * kBurst);
    return sb.publications();
  };
  const std::uint64_t coalesced = publications(kBurst);
  const std::uint64_t per_message = publications(1);
  EXPECT_EQ(per_message, static_cast<std::uint64_t>(kBursts) * kBurst);
  EXPECT_EQ(coalesced, static_cast<std::uint64_t>(kBursts));
  EXPECT_GE(per_message, 4 * coalesced);
}

TEST(SendBuffer, NativePartialFlushStress) {
  // A ring as small as one stage forces Flush's partial-PushBatch retry
  // path constantly: the consumer frees slots mid-flush. FIFO must hold
  // and nothing may be lost or duplicated.
  constexpr std::uint64_t kN = 100000;
  QueueMesh<std::uint64_t> mesh(1, 1, 8);
  hal::NativePlatform platform(2);
  std::uint64_t publications = 0;
  platform.Spawn(0, [&] {
    SendBuffer<std::uint64_t> sb(&mesh, 0);
    for (std::uint64_t i = 0; i < kN; ++i) sb.Send(0, i);
    sb.FlushAll();
    publications = sb.publications();
  });
  bool ok = true;
  platform.Spawn(1, [&] {
    std::uint64_t expect = 0;
    while (expect < kN) {
      const std::size_t n = mesh.Drain(0, [&](std::uint64_t v) {
        if (v != expect) ok = false;
        expect++;
      });
      if (n == 0) hal::CpuRelax();
    }
  });
  platform.Run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(mesh.SizeRawTotal(), 0u);
  // Partial flushes can only add publications beyond the one-per-stage
  // floor; they never lose messages.
  EXPECT_GE(publications, kN / SpscQueue<std::uint64_t>::kMsgsPerLine);
}

TEST(SendBuffer, NativeTwoSendersTwoReceiversStress) {
  // Full mesh shape: two coalescing senders fanning out to two receivers,
  // per-(sender, receiver) FIFO checked at both consumers.
  constexpr std::uint64_t kPer = 40000;  // per (sender, receiver) pair
  QueueMesh<std::uint64_t> mesh(2, 2, 16);
  hal::NativePlatform platform(4);
  for (int s = 0; s < 2; ++s) {
    platform.Spawn(s, [&mesh, s] {
      SendBuffer<std::uint64_t> sb(&mesh, s);
      for (std::uint64_t i = 0; i < kPer; ++i) {
        for (int r = 0; r < 2; ++r) {
          sb.Send(r, (static_cast<std::uint64_t>(s) << 32) | i);
        }
      }
      sb.FlushAll();
    });
  }
  bool ok[2] = {true, true};
  for (int r = 0; r < 2; ++r) {
    platform.Spawn(2 + r, [&mesh, &ok, r] {
      std::uint64_t next_from[2] = {0, 0};
      std::uint64_t received = 0;
      while (received < 2 * kPer) {
        const std::size_t n = mesh.Drain(r, [&](std::uint64_t v) {
          const int s = static_cast<int>(v >> 32);
          if (s >= 2 || (v & 0xFFFFFFFFull) != next_from[s]) ok[r] = false;
          next_from[s]++;
        });
        received += n;
        if (n == 0) hal::CpuRelax();
      }
    });
  }
  platform.Run();
  EXPECT_TRUE(ok[0]);
  EXPECT_TRUE(ok[1]);
  EXPECT_EQ(mesh.SizeRawTotal(), 0u);
}

// -------------------------------------------------------- MultiSendBuffer

TEST(MultiSendBuffer, StagesAndCoalescesLikeSendBuffer) {
  MultiMesh<std::uint64_t> mesh(2, 64);
  MultiSendBuffer<std::uint64_t> sb(&mesh);
  sb.Send(0, 1);
  sb.Send(1, 2);
  sb.Send(0, 3);
  EXPECT_EQ(mesh.SizeRawTotal(), 0u);  // nothing visible until a flush
  EXPECT_EQ(sb.Pending(), 3u);
  sb.FlushAll();
  EXPECT_EQ(sb.Pending(), 0u);
  EXPECT_EQ(mesh.SizeRawTotal(), 3u);
  std::vector<std::uint64_t> got0, got1;
  mesh.Drain(0, [&](std::uint64_t v) { got0.push_back(v); });
  mesh.Drain(1, [&](std::uint64_t v) { got1.push_back(v); });
  EXPECT_EQ(got0, (std::vector<std::uint64_t>{1, 3}));
  EXPECT_EQ(got1, (std::vector<std::uint64_t>{2}));
  EXPECT_EQ(sb.messages(), 3u);
  EXPECT_EQ(sb.publications(), 2u);  // one per flushed receiver
}

TEST(MultiSendBuffer, AutoFlushesWhenStageFills) {
  MultiMesh<std::uint64_t> mesh(1, 64);
  MultiSendBuffer<std::uint64_t> sb(&mesh);
  const std::size_t stage = sb.stage_capacity();
  for (std::size_t i = 0; i < stage - 1; ++i) {
    sb.Send(0, i);
    EXPECT_EQ(mesh.SizeRawTotal(), 0u);
  }
  sb.Send(0, stage - 1);
  EXPECT_EQ(mesh.SizeRawTotal(), stage);
  EXPECT_EQ(sb.Pending(), 0u);
  EXPECT_EQ(sb.publications(), 1u);
}

// ------------------------------------------- adaptive flush thresholds

// The measured-burst-depth flush boundary: shallow per-quantum bursts pull
// the threshold down to the observed depth, so messages stop waiting for
// the quantum-end FlushAll; deep bursts grow it back to the full line.
TEST(SendBuffer, AdaptiveFlushTracksBurstDepth) {
  QueueMesh<std::uint64_t> mesh(1, 1, 256);
  SendBuffer<std::uint64_t> sb(&mesh, 0, SendBuffer<std::uint64_t>::kDefaultStage,
                               /*adaptive_flush=*/true);
  const std::size_t line = sb.stage_capacity();
  std::uint64_t sink = 0;
  const auto drain = [&] { mesh.Drain(0, [&](std::uint64_t v) { sink += v; }); };

  // Before any observation the threshold is the full line: a 2-message
  // burst stays staged until FlushAll, exactly the non-adaptive behaviour.
  sb.Send(0, 1);
  sb.Send(0, 2);
  EXPECT_EQ(sb.FlushThreshold(0), line);
  EXPECT_EQ(sb.Pending(), 2u);
  sb.FlushAll();
  drain();

  // Shallow 2-message quanta converge the threshold to 2 (the estimator's
  // first observation IS the depth)...
  EXPECT_EQ(sb.FlushThreshold(0), 2u);
  // ...so the burst now flushes at depth 2 with no FlushAll needed.
  sb.Send(0, 3);
  EXPECT_EQ(sb.Pending(), 1u);
  sb.Send(0, 4);
  EXPECT_EQ(sb.Pending(), 0u);  // auto-flushed at the measured depth
  sb.FlushAll();  // quantum end: observes depth 2 again
  drain();
  EXPECT_EQ(sb.FlushThreshold(0), 2u);

  // Deep quanta (a full line each) grow the threshold back to the line
  // within a few quanta — asymmetric rounding climbs faster than it decays.
  for (int q = 0; q < 8 && sb.FlushThreshold(0) < line; ++q) {
    for (std::size_t i = 0; i < line; ++i) {
      sb.Send(0, 100 + i);
    }
    sb.FlushAll();
    drain();
  }
  EXPECT_EQ(sb.FlushThreshold(0), line);
  // Back at the full line, a partial burst stages again.
  sb.Send(0, 5);
  EXPECT_EQ(sb.Pending(), 1u);
  sb.FlushAll();
  drain();
}

TEST(SendBuffer, AdaptiveFlushOffIsByteIdentical) {
  // adaptive_flush=false must behave exactly as before: full-line staging
  // regardless of burst history.
  QueueMesh<std::uint64_t> mesh(1, 1, 256);
  SendBuffer<std::uint64_t> sb(&mesh, 0);
  std::uint64_t sink = 0;
  for (int q = 0; q < 4; ++q) {
    sb.Send(0, 1);
    sb.Send(0, 2);
    EXPECT_EQ(sb.Pending(), 2u);  // never auto-flushes below a line
    sb.FlushAll();
    mesh.Drain(0, [&](std::uint64_t v) { sink += v; });
  }
  EXPECT_EQ(sb.FlushThreshold(0), sb.stage_capacity());
}

TEST(MultiSendBuffer, AdaptiveFlushTracksBurstDepth) {
  MultiMesh<std::uint64_t> mesh(1, 256);
  MultiSendBuffer<std::uint64_t> sb(
      &mesh, /*shard_hint=*/0, MultiSendBuffer<std::uint64_t>::kDefaultStage,
      /*adaptive_flush=*/true);
  std::uint64_t sink = 0;
  sb.Send(0, 1);
  sb.Send(0, 2);
  sb.FlushAll();
  mesh.Drain(0, [&](std::uint64_t v) { sink += v; });
  EXPECT_EQ(sb.FlushThreshold(0), 2u);
  sb.Send(0, 3);
  sb.Send(0, 4);
  EXPECT_EQ(sb.Pending(), 0u);  // auto-flushed at the measured depth
  sb.FlushAll();
  mesh.Drain(0, [&](std::uint64_t v) { sink += v; });
}

// The estimator itself: climbs with ceil rounding, decays with floor, so
// a line-deep workload recovers full staging quickly while shallow phases
// still pull the threshold down. These exact sequences are pinned.
TEST(BurstEstimator, AsymmetricConvergence) {
  detail::BurstEstimator est;
  EXPECT_EQ(est.Threshold(8), 8u);  // no observation: full line
  est.Observe(2);
  EXPECT_EQ(est.estimate(), 2u);
  EXPECT_EQ(est.Threshold(8), 2u);
  // Climb 2 -> 8 with ceil rounding: 2, 4(ceil 3.75), 5, 6(ceil 5.75), ...
  std::vector<std::size_t> climb;
  for (int i = 0; i < 6; ++i) {
    est.Observe(8);
    climb.push_back(est.estimate());
  }
  EXPECT_EQ(climb, (std::vector<std::size_t>{4, 5, 6, 7, 8, 8}));
  // Decay 8 -> 2 with floor rounding.
  std::vector<std::size_t> decay;
  for (int i = 0; i < 6; ++i) {
    est.Observe(2);
    decay.push_back(est.estimate());
  }
  EXPECT_EQ(decay, (std::vector<std::size_t>{6, 5, 4, 3, 2, 2}));
  // Never below 1.
  for (int i = 0; i < 4; ++i) est.Observe(1);
  EXPECT_EQ(est.estimate(), 1u);
  EXPECT_EQ(est.Threshold(8), 1u);
}

// -------------------------------------- line-aligned MPSC reservations

constexpr std::uint64_t kSkip = ~0ull;

TEST(MpscQueueLineAligned, PadsReservationsToWholeLines) {
  // One message reserves a whole line; the padding occupies ring slots
  // (visible to SizeRaw) but is never delivered.
  MpscQueue<std::uint64_t> q(64, /*line_aligned=*/true, kSkip);
  ASSERT_TRUE(q.TryEnqueue(7));
  EXPECT_EQ(q.SizeRaw(), q.kMsgsPerLine);  // 1 value + line padding
  std::uint64_t buf[16];
  EXPECT_EQ(q.PopBatch(buf, 16), 1u);
  EXPECT_EQ(buf[0], 7u);
  EXPECT_EQ(q.SizeRaw(), 0u);  // padding consumed with the value
}

TEST(MpscQueueLineAligned, FifoAcrossMixedBatchSizes) {
  MpscQueue<std::uint64_t> q(128, /*line_aligned=*/true, kSkip);
  std::uint64_t next = 0;
  std::uint64_t expect = 0;
  for (const std::size_t batch : {1u, 3u, 8u, 11u, 2u, 5u}) {
    std::uint64_t vals[16];
    for (std::size_t i = 0; i < batch; ++i) vals[i] = next++;
    ASSERT_EQ(q.PushBatch(vals, batch), batch);
    std::uint64_t out[16];
    std::size_t got;
    while ((got = q.PopBatch(out, 16)) != 0) {
      for (std::size_t i = 0; i < got; ++i) EXPECT_EQ(out[i], expect++);
    }
  }
  EXPECT_EQ(expect, next);
  EXPECT_EQ(q.SizeRaw(), 0u);
}

TEST(MpscQueueLineAligned, FullRejectsWhenNoWholeLineIsFree) {
  // Capacity 16 = two lines: two single-message pushes (one padded line
  // each) fill the ring even though only two value slots are used.
  MpscQueue<std::uint64_t> q(16, /*line_aligned=*/true, kSkip);
  ASSERT_TRUE(q.TryEnqueue(1));
  ASSERT_TRUE(q.TryEnqueue(2));
  EXPECT_FALSE(q.TryEnqueue(3));
  std::uint64_t out[16];
  EXPECT_EQ(q.PopBatch(out, 16), 2u);
  EXPECT_EQ(out[0], 1u);
  EXPECT_EQ(out[1], 2u);
  EXPECT_TRUE(q.TryEnqueue(3));  // space again once padding drained
}

TEST(MpscQueueLineAligned, NativeProducersNeverShareALine) {
  // The pin for the feature: under true concurrency every producer's
  // values arrive in order, nothing is lost or duplicated, and — the
  // property line alignment exists for — every delivered run of one line's
  // worth of values comes from a single producer (reservations never
  // interleave mid-line). The consumer checks the second property by
  // popping one line at a time and verifying each line is single-owner.
  constexpr int kProducers = 4;
  constexpr std::uint64_t kPer = 30000;
  constexpr std::size_t kLine = MpscQueue<std::uint64_t>::kMsgsPerLine;
  MpscQueue<std::uint64_t> q(1024, /*line_aligned=*/true, kSkip);
  hal::NativePlatform platform(kProducers + 1);
  for (int p = 0; p < kProducers; ++p) {
    platform.Spawn(p, [&q, p] {
      std::uint64_t buf[kLine];
      std::uint64_t i = 0;
      while (i < kPer) {
        // Vary batch depth to exercise padded and unpadded lines.
        const std::size_t want =
            1 + static_cast<std::size_t>((p + i) % kLine);
        std::size_t fill = 0;
        while (fill < want && i + fill < kPer) {
          buf[fill] = (static_cast<std::uint64_t>(p) << 32) | (i + fill);
          fill++;
        }
        std::size_t pushed = 0;
        while (pushed < fill) {
          const std::size_t k = q.PushBatch(buf + pushed, fill - pushed);
          if (k == 0) hal::CpuRelax();
          pushed += k;
        }
        i += fill;
      }
    });
  }
  const std::uint64_t total = kProducers * kPer;
  std::uint64_t received = 0;
  std::uint64_t next_from[kProducers] = {0, 0, 0, 0};
  bool fifo_ok = true;
  platform.Spawn(kProducers, [&] {
    std::uint64_t buf[kLine];
    while (received < total) {
      const std::size_t n = q.PopBatch(buf, kLine);
      if (n == 0) {
        hal::CpuRelax();
        continue;
      }
      for (std::size_t i = 0; i < n; ++i) {
        const int p = static_cast<int>(buf[i] >> 32);
        const std::uint64_t seq = buf[i] & 0xFFFFFFFFull;
        if (p >= kProducers || seq != next_from[p]) fifo_ok = false;
        next_from[p]++;
      }
      received += n;
    }
  });
  platform.Run();
  EXPECT_TRUE(fifo_ok);
  EXPECT_EQ(received, total);
  EXPECT_EQ(q.SizeRaw(), 0u);
}

TEST(MpscQueueLineAligned, SimulatedProducersAreDeterministic) {
  const auto run = [] {
    hal::SimPlatform sim(3);
    MpscQueue<std::uint64_t> q(64, /*line_aligned=*/true, kSkip);
    std::uint64_t sum = 0, received = 0;
    for (int p = 0; p < 2; ++p) {
      sim.Spawn(p, [&q, p] {
        for (std::uint64_t i = 1; i <= 300; ++i) {
          while (!q.TryEnqueue(static_cast<std::uint64_t>(p) * 1000 + i)) {
            hal::CpuRelax();
          }
          hal::ConsumeCycles(5 + 2 * static_cast<hal::Cycles>(p));
        }
      });
    }
    sim.Spawn(2, [&] {
      std::uint64_t buf[8];
      while (received < 600) {
        const std::size_t n = q.PopBatch(buf, 8);
        for (std::size_t i = 0; i < n; ++i) sum += buf[i];
        received += n;
        if (n == 0) hal::CpuRelax();
      }
    });
    sim.Run();
    return std::make_pair(sum, sim.GlobalClock());
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a, b);
}

// ------------------------------------------ adaptive MultiMesh sharding

TEST(MultiMeshAdaptive, RouteModulusTracksThePopulation) {
  MultiMesh<std::uint64_t> mesh(2, 64, /*shards=*/0);
  EXPECT_TRUE(mesh.adaptive());
  EXPECT_EQ(mesh.shards(), MultiMesh<std::uint64_t>::kMaxAutoShards);
  EXPECT_EQ(mesh.RouteShardsRaw(), 1);
  hal::SimPlatform sim(1);
  sim.Spawn(0, [&] {
    for (int s = 0; s < 5; ++s) mesh.RegisterSender();
    EXPECT_EQ(mesh.RouteShardsRaw(), 5);
    EXPECT_EQ(mesh.DrainShardsRaw(), 5);
    for (int s = 0; s < 12; ++s) mesh.RegisterSender();  // cap at 8
    EXPECT_EQ(mesh.RouteShardsRaw(), 8);
    EXPECT_EQ(mesh.DrainShardsRaw(), 8);
    for (int s = 0; s < 15; ++s) mesh.RetireSender();
    // Routing shrinks with the population; the drain high-water never
    // does (a ring that carried a sender may still hold messages).
    EXPECT_EQ(mesh.RouteShardsRaw(), 2);
    EXPECT_EQ(mesh.DrainShardsRaw(), 8);
    for (int s = 0; s < 2; ++s) mesh.RetireSender();
    EXPECT_EQ(mesh.ActiveSendersRaw(), 0);
  });
  sim.Run();
}

TEST(MultiMeshAdaptive, DrainCoversEveryRingEverRouted) {
  // A sender that registered while the modulus was high lands on a high
  // ring; after the population shrinks the receiver must still drain it.
  MultiMesh<std::uint64_t> mesh(1, 64, /*shards=*/0);
  hal::SimPlatform sim(1);
  sim.Spawn(0, [&] {
    for (int s = 0; s < 6; ++s) mesh.RegisterSender();
    const int high_ring = mesh.RingForHint(5);
    EXPECT_GT(high_ring, 0);
    mesh.Send(0, 111, /*shard_hint=*/5);
    for (int s = 0; s < 5; ++s) mesh.RetireSender();
    EXPECT_EQ(mesh.RouteShardsRaw(), 1);
    std::vector<std::uint64_t> got;
    mesh.Drain(0, [&](std::uint64_t v) { got.push_back(v); });
    EXPECT_EQ(got, (std::vector<std::uint64_t>{111}));
    mesh.RetireSender();
  });
  sim.Run();
  EXPECT_EQ(mesh.SizeRawTotal(), 0u);
}

TEST(MultiMeshAdaptive, NativeChurnDeliversExactlyAcrossReshards) {
  // Senders register, send a burst through a MultiSendBuffer (rebinding
  // after every registration), retire, and repeat — while the receiver
  // drains continuously. Nothing lost, nothing duplicated (exact multiset
  // delivery), and FIFO holds *within* a registration. Across
  // registrations order is not promised: a re-registration may land on a
  // different ring whose backlog drains later.
  constexpr int kSenders = 6;
  constexpr int kRounds = 200;
  constexpr std::uint64_t kPerRound = 64;
  MultiMesh<std::uint64_t> mesh(1, 4096, /*shards=*/0);
  hal::NativePlatform platform(kSenders + 1);
  for (int s = 0; s < kSenders; ++s) {
    platform.Spawn(s, [&mesh, s] {
      MultiSendBuffer<std::uint64_t> out(&mesh, /*shard_hint=*/s);
      for (int r = 0; r < kRounds; ++r) {
        mesh.RegisterSender();
        out.Rebind();
        for (std::uint64_t i = 0; i < kPerRound; ++i) {
          out.Send(0, (static_cast<std::uint64_t>(s) << 40) |
                          (static_cast<std::uint64_t>(r) * kPerRound + i));
        }
        out.FlushAll();  // drain-to-empty before retiring
        mesh.RetireSender();
      }
    });
  }
  const std::uint64_t total = kSenders * kRounds * kPerRound;
  std::uint64_t received = 0;
  std::vector<std::vector<std::uint8_t>> seen(
      kSenders, std::vector<std::uint8_t>(kRounds * kPerRound, 0));
  std::vector<std::uint64_t> last_in_round(
      static_cast<std::size_t>(kSenders) * kRounds, 0);
  bool exact_ok = true;
  bool fifo_ok = true;
  platform.Spawn(kSenders, [&] {
    while (received < total) {
      const std::size_t n = mesh.Drain(0, [&](std::uint64_t v) {
        const int s = static_cast<int>(v >> 40);
        const std::uint64_t seq = v & ((1ull << 40) - 1);
        if (s >= kSenders || seq >= kRounds * kPerRound || seen[s][seq]) {
          exact_ok = false;
          return;
        }
        seen[s][seq] = 1;
        // Within one registration (round) a sender's stream is FIFO.
        const std::size_t round = seq / kPerRound;
        std::uint64_t& last =
            last_in_round[static_cast<std::size_t>(s) * kRounds + round];
        const std::uint64_t pos = seq % kPerRound + 1;
        if (pos <= last) fifo_ok = false;
        last = pos;
      });
      received += n;
      if (n == 0) hal::CpuRelax();
    }
  });
  platform.Run();
  EXPECT_TRUE(exact_ok);
  EXPECT_TRUE(fifo_ok);
  EXPECT_EQ(received, total);
  EXPECT_EQ(mesh.ActiveSendersRaw(), 0);
  EXPECT_EQ(mesh.SizeRawTotal(), 0u);
}

TEST(MultiMeshAdaptive, SimChurnIsDeterministic) {
  const auto run = [] {
    hal::SimPlatform sim(3);
    MultiMesh<std::uint64_t> mesh(1, 1024, /*shards=*/0);
    std::uint64_t sum = 0, received = 0;
    constexpr std::uint64_t kTotal = 2 * 40 * 16;
    for (int s = 0; s < 2; ++s) {
      sim.Spawn(s, [&mesh, s] {
        MultiSendBuffer<std::uint64_t> out(&mesh, s);
        for (int r = 0; r < 40; ++r) {
          mesh.RegisterSender();
          out.Rebind();
          for (std::uint64_t i = 0; i < 16; ++i) {
            out.Send(0, static_cast<std::uint64_t>(s * 10000 + r * 16) + i);
          }
          out.FlushAll();
          mesh.RetireSender();
          hal::ConsumeCycles(11 + 5 * static_cast<hal::Cycles>(s));
        }
      });
    }
    sim.Spawn(2, [&] {
      while (received < kTotal) {
        const std::size_t n =
            mesh.Drain(0, [&](std::uint64_t v) { sum += v; });
        received += n;
        if (n == 0) hal::CpuRelax();
      }
    });
    sim.Run();
    return std::make_pair(sum, sim.GlobalClock());
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a, b);
}

// ------------------------------------------------------- stall accounting

// Blocking sends that hit a full ring charge the core's registered
// hal::SpinStallSink: one stall per blocked Send call, plus the cycles the
// wedge-spin waited. Sends that never block charge nothing — the sink is
// pure observability (WorkerPool installs one per worker and folds it into
// WorkerStats::send_stalls; TxnAdmission::StallsDelta reads it live).
TEST(QueueMesh, BlockingSendChargesTheStallSink) {
  constexpr std::size_t kCap = 16;
  constexpr hal::Cycles kConsumerDelay = 20000;
  hal::SimPlatform sim(2);
  QueueMesh<std::uint64_t> mesh(1, 1, kCap);
  hal::SpinStallSink sink;
  std::uint64_t received = 0;
  sim.Spawn(0, [&] {
    hal::CurrentCore()->send_stall_sink = &sink;
    // Fill the ring without blocking: a never-blocked send charges nothing
    // (it never even reads the clock).
    for (std::uint64_t i = 0; i < kCap; ++i) mesh.Send(0, 0, i);
    EXPECT_EQ(sink.stalls, 0u);
    EXPECT_EQ(sink.stall_cycles, 0u);
    // One more send against the full ring: it must wait out the consumer's
    // delay, and however long it spins, it counts as exactly one stall.
    mesh.Send(0, 0, kCap);
    hal::CurrentCore()->send_stall_sink = nullptr;
  });
  sim.Spawn(1, [&] {
    hal::ConsumeCycles(kConsumerDelay);
    while (received < kCap + 1) {
      received += mesh.Drain(0, [&](std::uint64_t) {});
      hal::CpuRelax();
    }
  });
  sim.Run();
  EXPECT_EQ(received, kCap + 1);
  EXPECT_EQ(sink.stalls, 1u);
  // The blocked send waited for most of the consumer's delay.
  EXPECT_GT(sink.stall_cycles, kConsumerDelay / 2);
}

}  // namespace
}  // namespace orthrus::mp
