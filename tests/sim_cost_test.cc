// Focused tests for the simulator's cost-model mechanisms added during
// calibration: the store-buffer (store vs RMW) distinction, the finite
// interconnect, ticket-lock fairness under storms, and jitter determinism.
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "hal/sim_platform.h"

namespace orthrus::hal {
namespace {

TEST(StoreBuffer, StoresAreCheapForTheWriter) {
  // A core storing to a line owned elsewhere must not stall for the full
  // transfer latency (the store buffer absorbs it); an RMW must.
  SimConfig cfg;
  SimPlatform sim(2, cfg);
  Atomic<std::uint64_t> line;
  Cycles store_cost = 0, rmw_cost = 0;
  sim.Spawn(0, [&] { line.store(1); });  // take ownership at t=0
  sim.Spawn(1, [&] {
    ConsumeCycles(50000);
    Cycles t0 = Now();
    line.store(2);  // remote store: store-buffer cost only
    store_cost = Now() - t0;
    ConsumeCycles(50000);
    t0 = Now();
    line.fetch_add(1);  // remote RMW after owner change: full cost
    rmw_cost = Now() - t0;
  });
  sim.Run();
  EXPECT_LE(store_cost, cfg.store_buffer_cycles + 2);
  EXPECT_GE(rmw_cost, 1u);  // rmw on own line after the store is local
}

TEST(StoreBuffer, StoreStillOccupiesTheLine) {
  // A store's coherence transaction occupies the line: an immediately
  // following reader from another core waits out the store service window.
  SimConfig cfg;
  SimPlatform sim(2, cfg);
  Atomic<std::uint64_t> line;
  Cycles read_cost = 0;
  sim.Spawn(0, [&] {
    ConsumeCycles(1000);
    line.store(7);  // at t=1000 (+store service on the line)
  });
  sim.Spawn(1, [&] {
    ConsumeCycles(1002);  // arrive just after the store begins
    Cycles t0 = Now();
    (void)line.load();
    read_cost = Now() - t0;
  });
  sim.Run();
  // Remote transfer plus (most of) the store's line-service window.
  EXPECT_GE(read_cost, cfg.remote_transfer_cycles);
}

TEST(Interconnect, RemoteTrafficQueuesAtHighRates) {
  // Many cores each hammering a *different* line still share the fabric:
  // with enough cores the aggregate transfer rate saturates and per-op
  // latency inflates (Figure 1's flattening mechanism).
  SimConfig cfg;
  auto run = [&](int cores) {
    SimPlatform sim(cores, cfg);
    std::vector<std::unique_ptr<Atomic<std::uint64_t>>> lines;
    std::vector<std::unique_ptr<Atomic<std::uint64_t>>> partners;
    for (int i = 0; i < cores; ++i) {
      lines.push_back(std::make_unique<Atomic<std::uint64_t>>());
      partners.push_back(std::make_unique<Atomic<std::uint64_t>>());
    }
    constexpr int kOps = 100;
    for (int i = 0; i < cores; ++i) {
      // Each core ping-pongs ownership with a phantom second writer by
      // alternating two lines it does not keep exclusive: force remote
      // transfers by having neighbouring cores share pairwise lines.
      sim.Spawn(i, [&, i] {
        Atomic<std::uint64_t>* a = lines[i].get();
        Atomic<std::uint64_t>* b = lines[(i + 1) % cores].get();
        for (int k = 0; k < kOps; ++k) {
          a->fetch_add(1);
          b->fetch_add(1);
        }
      });
    }
    sim.Run();
    return static_cast<double>(sim.GlobalClock()) / kOps;
  };
  // Per-op time per core must grow markedly from 8 to 96 cores (fabric
  // queueing), not stay flat.
  EXPECT_GT(run(96), run(8) * 1.5);
}

TEST(TicketLock, FifoHandoffUnderStorm) {
  // One "victim" core competes for a latch against many cores that acquire
  // it in a tight loop. With a fair (ticket) latch the victim's single
  // acquisition must complete promptly — bounded by roughly one queue
  // round — rather than being starved indefinitely.
  constexpr int kCores = 16;
  SimPlatform sim(kCores);
  SpinLock latch;
  Cycles victim_wait = 0;
  bool victim_done = false;
  for (int i = 0; i < kCores - 1; ++i) {
    sim.Spawn(i, [&] {
      for (int k = 0; k < 400 && !victim_done; ++k) {
        latch.Lock();
        ConsumeCycles(60);
        latch.Unlock();
      }
    });
  }
  sim.Spawn(kCores - 1, [&] {
    ConsumeCycles(5000);  // join mid-storm
    const Cycles t0 = Now();
    latch.Lock();
    victim_wait = Now() - t0;
    latch.Unlock();
    victim_done = true;
  });
  sim.Run();
  EXPECT_TRUE(victim_done);
  // FIFO bound: at most ~one critical section per competitor ahead of us,
  // plus handoff overheads. Generous envelope; an unfair latch would show
  // orders of magnitude more (or never finish).
  EXPECT_LT(victim_wait, 200000u);
}

TEST(Jitter, DeterministicPerCoreAndBounded) {
  SimPlatform sim(2);
  std::vector<Cycles> a, b;
  sim.Spawn(0, [&] {
    for (int i = 0; i < 100; ++i) a.push_back(FastJitter(64));
  });
  sim.Spawn(1, [&] {
    for (int i = 0; i < 100; ++i) b.push_back(FastJitter(64));
  });
  sim.Run();
  for (Cycles v : a) EXPECT_LT(v, 64u);
  ASSERT_EQ(a.size(), b.size());
  // Different cores draw different sequences (seeded by core id).
  EXPECT_NE(a, b);

  // And a re-run reproduces the same sequences exactly.
  SimPlatform sim2(2);
  std::vector<Cycles> a2;
  sim2.Spawn(0, [&] {
    for (int i = 0; i < 100; ++i) a2.push_back(FastJitter(64));
  });
  sim2.Spawn(1, [] {});
  sim2.Run();
  EXPECT_EQ(a, a2);
}

TEST(Jitter, ZeroBoundAndOffCore) {
  EXPECT_EQ(FastJitter(16), 0u);  // not on a core: no jitter state
  SimPlatform sim(1);
  Cycles v = 1;
  sim.Spawn(0, [&] { v = FastJitter(0); });
  sim.Run();
  EXPECT_EQ(v, 0u);
}

TEST(SimStats, CountersDistinguishOps) {
  SimPlatform sim(1);
  Atomic<std::uint64_t> x;
  sim.Spawn(0, [&] {
    (void)x.load();
    x.store(1);
    x.fetch_add(1);
    std::uint64_t expected = 2;
    (void)x.compare_exchange(expected, 3);
    (void)x.exchange(4);
  });
  sim.Run();
  EXPECT_EQ(sim.stats().atomic_reads, 1u);
  EXPECT_EQ(sim.stats().atomic_stores, 1u);
  EXPECT_EQ(sim.stats().atomic_rmws, 3u);
}

}  // namespace
}  // namespace orthrus::hal
